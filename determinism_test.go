package cookiewalk_test

import (
	"runtime"
	"testing"

	"cookiewalk"
)

// TestReportDeterministicAcrossWorkers pins the campaign engine's
// central promise at the facade level: the COMPLETE experiment output
// is byte-identical no matter how many workers or shards execute the
// crawls. Scheduling must never leak into results.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	configs := []cookiewalk.Config{
		{Seed: 42, Scale: 0.02, Reps: 2, Workers: 1},
		{Seed: 42, Scale: 0.02, Reps: 2, Workers: 4, Shards: 5},
		{Seed: 42, Scale: 0.02, Reps: 2, Workers: runtime.GOMAXPROCS(0), Shards: 1},
	}
	var reference string
	for _, cfg := range configs {
		got, err := cookiewalk.New(cfg).Report(cookiewalk.ExpAll)
		if err != nil {
			t.Fatalf("workers=%d shards=%d: %v", cfg.Workers, cfg.Shards, err)
		}
		if got == "" {
			t.Fatalf("workers=%d: empty report", cfg.Workers)
		}
		if reference == "" {
			reference = got
			continue
		}
		if got != reference {
			t.Fatalf("workers=%d shards=%d: report differs from workers=1 output",
				cfg.Workers, cfg.Shards)
		}
	}
}
