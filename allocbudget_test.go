package cookiewalk_test

import (
	"testing"

	"cookiewalk"
	"cookiewalk/internal/core"
	"cookiewalk/internal/measure"
	"cookiewalk/internal/vantage"
)

// Per-visit allocation budgets for the crawl hot path. The PR-2 visit
// path lands around 83 allocs for a cookiewall visit and 70 for a
// regular-banner visit (seed baseline before the zero-copy work:
// ~222); the budgets carry ~75% headroom for toolchain drift while
// still failing tier-1 long before the hot path regresses to its old
// allocation profile.
const (
	cookiewallVisitAllocBudget = 150
	regularVisitAllocBudget    = 125
)

// TestVisitAllocBudget pins the allocation count of the single-visit
// hot path — transport dispatch, parse, detection, classification —
// so allocation regressions fail tier-1 instead of surfacing months
// later in campaign wall-clock time.
func TestVisitAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting is exact; skip in -short/-race runs")
	}
	s := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2})
	vp, ok := vantage.ByName("Germany")
	if !ok {
		t.Fatal("no Germany VP")
	}
	c := s.Crawler()

	wall := s.CookiewallDomains()[0]
	regular := ""
	for _, d := range s.Targets() {
		if o := c.Visit(vp, d, measure.VisitOpts{}); o.Err == "" && o.Kind == core.KindRegular {
			regular = d
			break
		}
	}
	if regular == "" {
		t.Fatal("no regular-banner site found")
	}

	for _, tc := range []struct {
		name, domain string
		budget       float64
	}{
		{"cookiewall", wall, cookiewallVisitAllocBudget},
		{"regular", regular, regularVisitAllocBudget},
	} {
		c.Visit(vp, tc.domain, measure.VisitOpts{}) // warm the render cache
		got := testing.AllocsPerRun(50, func() {
			if o := c.Visit(vp, tc.domain, measure.VisitOpts{}); o.Err != "" {
				t.Fatal(o.Err)
			}
		})
		t.Logf("%s visit: %.1f allocs (budget %.0f)", tc.name, got, tc.budget)
		if got > tc.budget {
			t.Errorf("%s visit allocates %.1f, budget is %.0f — the hot path regressed",
				tc.name, got, tc.budget)
		}
	}
}
