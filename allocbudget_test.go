package cookiewalk_test

import (
	"context"
	"testing"

	"cookiewalk"
	"cookiewalk/internal/core"
	"cookiewalk/internal/measure"
	"cookiewalk/internal/vantage"
)

// Per-visit allocation budgets for the crawl hot path, split by memo
// state since PR 3's analysis cache:
//
//   - cached: the steady-state landscape visit — transport dispatch and
//     a fingerprint lookup, NO parse/detect/classify. Measured 1 alloc
//     (both kinds) since PR 10's scratch-request/adopted-header path.
//   - uncached: the full pipeline a memo miss runs — parse, detection,
//     language, category. Measured ~62 allocs (cookiewall) / ~56
//     (regular) with PR 10's session-owned parser arenas.
//
// Budgets carry generous headroom for toolchain drift while still
// failing tier-1 long before either path regresses to its previous
// profile (PR 9 budgets: 40/30 cached, 150/125 uncached; seed
// baseline: ~222 allocs per visit).
const (
	cookiewallCachedAllocBudget   = 6
	regularCachedAllocBudget      = 6
	cookiewallUncachedAllocBudget = 110
	regularUncachedAllocBudget    = 100
)

// TestVisitAllocBudget pins the allocation count of the single-visit
// hot path in both memo states, so allocation regressions fail tier-1
// instead of surfacing months later in campaign wall-clock time.
func TestVisitAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting is exact; skip in -short/-race runs")
	}
	s := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2})
	noMemo := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2, NoAnalysisCache: true})
	vp, ok := vantage.ByName("Germany")
	if !ok {
		t.Fatal("no Germany VP")
	}

	wall := s.CookiewallDomains()[0]
	regular := ""
	for _, d := range s.Targets() {
		if o := s.Crawler().Visit(context.Background(), vp, d, measure.VisitOpts{}); o.Err == "" && o.Kind == core.KindRegular {
			regular = d
			break
		}
	}
	if regular == "" {
		t.Fatal("no regular-banner site found")
	}

	for _, tc := range []struct {
		name, domain string
		crawler      *measure.Crawler
		budget       float64
	}{
		{"cookiewall-cached", wall, s.Crawler(), cookiewallCachedAllocBudget},
		{"regular-cached", regular, s.Crawler(), regularCachedAllocBudget},
		{"cookiewall-uncached", wall, noMemo.Crawler(), cookiewallUncachedAllocBudget},
		{"regular-uncached", regular, noMemo.Crawler(), regularUncachedAllocBudget},
	} {
		c := tc.crawler
		c.Visit(context.Background(), vp, tc.domain, measure.VisitOpts{}) // warm render + analysis caches
		got := testing.AllocsPerRun(50, func() {
			if o := c.Visit(context.Background(), vp, tc.domain, measure.VisitOpts{}); o.Err != "" {
				t.Fatal(o.Err)
			}
		})
		t.Logf("%s visit: %.1f allocs (budget %.0f)", tc.name, got, tc.budget)
		if got > tc.budget {
			t.Errorf("%s visit allocates %.1f, budget is %.0f — the hot path regressed",
				tc.name, got, tc.budget)
		}
	}
}
