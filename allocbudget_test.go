package cookiewalk_test

import (
	"context"
	"testing"

	"cookiewalk"
	"cookiewalk/internal/core"
	"cookiewalk/internal/measure"
	"cookiewalk/internal/vantage"
)

// Per-visit allocation budgets for the crawl hot path, split by memo
// state since PR 3's analysis cache:
//
//   - cached: the steady-state landscape visit — transport dispatch and
//     a fingerprint lookup, NO parse/detect/classify. Measured ~23
//     allocs (cookiewall) / ~15 (regular).
//   - uncached: the full pipeline a memo miss runs — parse, detection,
//     language, category. Measured ~84 allocs (cookiewall) / ~70
//     (regular), essentially PR 2's visit cost plus the frozen-words
//     copy.
//
// Budgets carry ~65-75% headroom for toolchain drift while still
// failing tier-1 long before either path regresses to its previous
// profile (seed baseline: ~222 allocs per visit).
const (
	cookiewallCachedAllocBudget   = 40
	regularCachedAllocBudget      = 30
	cookiewallUncachedAllocBudget = 150
	regularUncachedAllocBudget    = 125
)

// TestVisitAllocBudget pins the allocation count of the single-visit
// hot path in both memo states, so allocation regressions fail tier-1
// instead of surfacing months later in campaign wall-clock time.
func TestVisitAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting is exact; skip in -short/-race runs")
	}
	s := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2})
	noMemo := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2, NoAnalysisCache: true})
	vp, ok := vantage.ByName("Germany")
	if !ok {
		t.Fatal("no Germany VP")
	}

	wall := s.CookiewallDomains()[0]
	regular := ""
	for _, d := range s.Targets() {
		if o := s.Crawler().Visit(context.Background(), vp, d, measure.VisitOpts{}); o.Err == "" && o.Kind == core.KindRegular {
			regular = d
			break
		}
	}
	if regular == "" {
		t.Fatal("no regular-banner site found")
	}

	for _, tc := range []struct {
		name, domain string
		crawler      *measure.Crawler
		budget       float64
	}{
		{"cookiewall-cached", wall, s.Crawler(), cookiewallCachedAllocBudget},
		{"regular-cached", regular, s.Crawler(), regularCachedAllocBudget},
		{"cookiewall-uncached", wall, noMemo.Crawler(), cookiewallUncachedAllocBudget},
		{"regular-uncached", regular, noMemo.Crawler(), regularUncachedAllocBudget},
	} {
		c := tc.crawler
		c.Visit(context.Background(), vp, tc.domain, measure.VisitOpts{}) // warm render + analysis caches
		got := testing.AllocsPerRun(50, func() {
			if o := c.Visit(context.Background(), vp, tc.domain, measure.VisitOpts{}); o.Err != "" {
				t.Fatal(o.Err)
			}
		})
		t.Logf("%s visit: %.1f allocs (budget %.0f)", tc.name, got, tc.budget)
		if got > tc.budget {
			t.Errorf("%s visit allocates %.1f, budget is %.0f — the hot path regressed",
				tc.name, got, tc.budget)
		}
	}
}
