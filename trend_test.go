package cookiewalk_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"cookiewalk"
	"cookiewalk/internal/campaign"
	"cookiewalk/internal/measure"
	"cookiewalk/internal/trend"
)

// The continuous-measurement acceptance tests: a fixed schedule of
// rounds over the synthetic farm is byte-deterministic (store journal
// bytes AND every query-API response), rounds after the first ride the
// analysis memo, and kill/resume — between rounds or mid-round — never
// re-crawls completed work or changes a single byte.

const (
	trendEpoch    = int64(1700000000)
	trendInterval = time.Hour
)

// trendClock mirrors the runner's schedule clock deterministically:
// sleeping advances time by exactly the requested duration, so round k
// always starts at epoch + k·interval.
type trendClock struct{ t time.Time }

func (c *trendClock) now() time.Time { return c.t }
func (c *trendClock) sleep(ctx context.Context, d time.Duration) error {
	c.t = c.t.Add(d)
	return ctx.Err()
}

// trendConfig is the study configuration of one trendd round: the
// golden study parameters plus the round's checkpoint directory.
func trendConfig(storeDir string, round int) cookiewalk.Config {
	return cookiewalk.Config{
		Seed: 42, Scale: 0.02, Reps: 2,
		CheckpointDir: filepath.Join(storeDir, "rounds", fmt.Sprintf("round-%04d", round)),
		Resume:        true,
	}
}

// openTrendStore opens the round store exactly as cmd/trendd would.
func openTrendStore(t *testing.T, dir string) *trend.Store {
	t.Helper()
	probe := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2})
	targets := probe.Targets()
	store, err := trend.Open(dir, trend.Manifest{
		Seed: 42, Scale: 0.02, Reps: 2,
		Targets:     len(targets),
		TargetsHash: campaign.HashTargets(targets),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

// runTrendRounds drives the runner until the store holds `rounds`
// rounds, returning the per-round stats observed.
func runTrendRounds(t *testing.T, store *trend.Store, dir string, rounds int, clock *trendClock) []trend.RoundStats {
	t.Helper()
	var stats []trend.RoundStats
	r := &trend.Runner{
		Store:    store,
		Interval: trendInterval,
		Rounds:   rounds,
		Now:      clock.now,
		Sleep:    clock.sleep,
		Run: func(ctx context.Context, round int) (measure.RoundSummary, error) {
			return cookiewalk.New(trendConfig(dir, round)).RoundSummary(ctx)
		},
		OnRound: func(st trend.RoundStats) { stats = append(stats, st) },
	}
	if err := r.Loop(context.Background()); err != nil {
		t.Fatal(err)
	}
	return stats
}

func trendGET(t *testing.T, h http.Handler, url string) string {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("GET %s: %d %s", url, w.Code, w.Body)
	}
	return w.Body.String()
}

// trendQueryURLs enumerates every /v1/trends query the determinism
// check compares, derived from the live metric registry so a new
// metric is covered automatically.
func trendQueryURLs() []string {
	urls := []string{"/v1/rounds", "/v1/metrics"}
	for _, m := range trend.Metrics() {
		if m.PerVP {
			urls = append(urls, "/v1/trends/"+m.Name+"?vp=Germany", "/v1/trends/"+m.Name+"?vp=US+East")
			continue
		}
		urls = append(urls, "/v1/trends/"+m.Name)
	}
	return urls
}

// TestTrendGoldenThreeRounds is the acceptance gate for the
// continuous-measurement service: two independent 3-round trendd runs
// at the same seed produce byte-identical store journals and
// byte-identical responses for EVERY query-API endpoint; the full
// /v1/rounds body is additionally pinned by a golden snapshot
// (regenerate deliberately with
// `go test -run TestTrendGoldenThreeRounds -update .`); and rounds
// after the first show the delta-crawl economics — unchanged pages
// cost analysis-memo hits, not fresh analyses.
func TestTrendGoldenThreeRounds(t *testing.T) {
	type run struct {
		storeBytes []byte
		responses  map[string]string
		stats      []trend.RoundStats
	}
	var runs []run
	for i := 0; i < 2; i++ {
		dir := t.TempDir()
		store := openTrendStore(t, dir)
		stats := runTrendRounds(t, store, dir, 3, &trendClock{t: time.Unix(trendEpoch, 0)})
		h := trend.NewServer(trend.ServerConfig{Store: store}).Handler()
		responses := map[string]string{}
		for _, u := range trendQueryURLs() {
			responses[u] = trendGET(t, h, u)
		}
		data, err := os.ReadFile(filepath.Join(dir, "rounds.cwt"))
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{storeBytes: data, responses: responses, stats: stats})
	}

	// Byte-determinism: the store journal and every response.
	if string(runs[0].storeBytes) != string(runs[1].storeBytes) {
		t.Errorf("trend store journals differ across independent runs (%d vs %d bytes)",
			len(runs[0].storeBytes), len(runs[1].storeBytes))
	}
	for _, u := range trendQueryURLs() {
		if runs[0].responses[u] != runs[1].responses[u] {
			t.Errorf("%s differs across independent runs:\n  A: %s\n  B: %s",
				u, runs[0].responses[u], runs[1].responses[u])
		}
	}

	// Golden snapshot of the full round listing.
	got := runs[0].responses["/v1/rounds"]
	if *update {
		if err := os.WriteFile("testdata/golden_trend.json", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden_trend.json updated")
	} else {
		want, err := os.ReadFile("testdata/golden_trend.json")
		if err != nil {
			t.Fatal(err)
		}
		if got != string(want) {
			t.Errorf("/v1/rounds diverges from testdata/golden_trend.json (run with -update after intended changes):\n got: %s\nwant: %s", got, want)
		}
	}

	// Delta-crawl economics: every page is unchanged between rounds, so
	// rounds 1 and 2 are pure memo hits — the fresh-analysis count
	// drops to zero while the hit counter keeps counting visits. (Round
	// 0 may itself be warm when other tests in this process crawled the
	// same universe first, so only the later rounds are asserted.)
	stats := runs[0].stats
	if len(stats) != 3 {
		t.Fatalf("observed %d rounds, want 3", len(stats))
	}
	for _, st := range stats[1:] {
		if st.FreshAnalyses != 0 {
			t.Errorf("round %d ran %d fresh analyses, want 0 (memo reuse)", st.Round, st.FreshAnalyses)
		}
		if st.MemoHits == 0 {
			t.Errorf("round %d recorded no memo hits", st.Round)
		}
	}
	if stats[1].FreshAnalyses > stats[0].FreshAnalyses {
		t.Errorf("fresh analyses grew between rounds: %d then %d", stats[0].FreshAnalyses, stats[1].FreshAnalyses)
	}
}

// TestTrendResumeSkipsCompletedRounds is the SIGKILL-between-rounds
// acceptance check: a store holding two durable rounds, reopened by a
// fresh process (fresh store handle, fresh runner, clock advanced by
// two intervals — exactly what a restarted trendd sees), runs ONLY
// round 2, and the completed store matches the golden 3-round listing
// byte for byte.
func TestTrendResumeSkipsCompletedRounds(t *testing.T) {
	dir := t.TempDir()
	store := openTrendStore(t, dir)
	runTrendRounds(t, store, dir, 2, &trendClock{t: time.Unix(trendEpoch, 0)})
	if store.Len() != 2 {
		t.Fatalf("precondition: %d rounds stored, want 2", store.Len())
	}
	store.Close() // the "kill": nothing of the first process survives but the directory

	resumed := openTrendStore(t, dir)
	if resumed.Len() != 2 {
		t.Fatalf("reopened store lost rounds: %d", resumed.Len())
	}
	var ran []int
	r := &trend.Runner{
		Store:    resumed,
		Interval: trendInterval,
		Rounds:   3,
		Now:      (&trendClock{t: time.Unix(trendEpoch+2*3600, 0)}).now,
		Sleep:    func(ctx context.Context, d time.Duration) error { return ctx.Err() },
		Run: func(ctx context.Context, round int) (measure.RoundSummary, error) {
			if round < 2 {
				t.Errorf("resume re-ran completed round %d", round)
			}
			ran = append(ran, round)
			return cookiewalk.New(trendConfig(dir, round)).RoundSummary(ctx)
		},
	}
	if err := r.Loop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 1 || ran[0] != 2 {
		t.Fatalf("resumed runner ran rounds %v, want [2]", ran)
	}
	h := trend.NewServer(trend.ServerConfig{Store: resumed}).Handler()
	got := trendGET(t, h, "/v1/rounds")
	want, err := os.ReadFile("testdata/golden_trend.json")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("resumed 3-round store diverges from the golden listing:\n got: %s\nwant: %s", got, want)
	}
}

// TestTrendMidRoundResume kills round 0 MID-crawl (context cancel
// after the first progress snapshot — the graceful half of a SIGKILL;
// the journal-level kill matrix lives in the campaign tests) and
// verifies the re-run resumes by journal replay instead of
// re-visiting, producing a store byte-identical to an uninterrupted
// round's.
func TestTrendMidRoundResume(t *testing.T) {
	dir := t.TempDir()
	store := openTrendStore(t, dir)

	// First attempt: cancel as soon as the crawl demonstrably started.
	ctx, cancel := context.WithCancel(context.Background())
	interrupted := trendConfig(dir, 0)
	interrupted.Progress = func(p cookiewalk.Progress) { cancel() }
	r := &trend.Runner{
		Store:    store,
		Interval: trendInterval,
		Rounds:   1,
		Now:      (&trendClock{t: time.Unix(trendEpoch, 0)}).now,
		Sleep:    func(ctx context.Context, d time.Duration) error { return ctx.Err() },
		Run: func(ctx context.Context, round int) (measure.RoundSummary, error) {
			return cookiewalk.New(interrupted).RoundSummary(ctx)
		},
	}
	if err := r.Loop(ctx); err == nil {
		t.Fatal("canceled round reported success")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled round: %v", err)
	}
	if store.Len() != 0 {
		t.Fatalf("aborted round left %d records in the store", store.Len())
	}

	// The re-run: same store dir, so round 0's journals replay. The
	// progress stream proves visits were replayed, not re-crawled.
	var replayed atomic.Int64
	resumeCfg := trendConfig(dir, 0)
	resumeCfg.Progress = func(p cookiewalk.Progress) {
		if p.Replayed > replayed.Load() {
			replayed.Store(p.Replayed)
		}
	}
	r2 := &trend.Runner{
		Store:    store,
		Interval: trendInterval,
		Rounds:   1,
		Now:      (&trendClock{t: time.Unix(trendEpoch, 0)}).now,
		Sleep:    func(ctx context.Context, d time.Duration) error { return ctx.Err() },
		Run: func(ctx context.Context, round int) (measure.RoundSummary, error) {
			return cookiewalk.New(resumeCfg).RoundSummary(ctx)
		},
	}
	if err := r2.Loop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if replayed.Load() == 0 {
		t.Error("resumed round replayed no journaled visits")
	}

	// Byte-identical to an uninterrupted round 0 in a fresh directory.
	cleanDir := t.TempDir()
	cleanStore := openTrendStore(t, cleanDir)
	runTrendRounds(t, cleanStore, cleanDir, 1, &trendClock{t: time.Unix(trendEpoch, 0)})
	got, err := os.ReadFile(filepath.Join(dir, "rounds.cwt"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(cleanDir, "rounds.cwt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("mid-round-resumed store differs from an uninterrupted one (%d vs %d bytes)", len(got), len(want))
	}
}
