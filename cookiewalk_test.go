package cookiewalk

import (
	"strings"
	"sync"
	"testing"
)

var (
	studyOnce sync.Once
	study     *Study
)

func testStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		study = New(Config{Seed: 42, Scale: 0.02, Reps: 2})
	})
	return study
}

func TestAnalyzeCookiewall(t *testing.T) {
	s := testStudy(t)
	walls := s.CookiewallDomains()
	if len(walls) == 0 {
		t.Fatal("no cookiewall domains")
	}
	rep, err := s.Analyze("Germany", walls[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.BannerKind != "cookiewall" {
		t.Fatalf("kind = %q", rep.BannerKind)
	}
	if rep.HasReject {
		t.Fatal("cookiewall with reject")
	}
	if rep.PriceEUR <= 0 {
		t.Fatal("no price detected")
	}
}

func TestAnalyzeUnknownVP(t *testing.T) {
	s := testStudy(t)
	if _, err := s.Analyze("Mars", "example.de"); err == nil {
		t.Fatal("expected error for unknown VP")
	}
}

func TestAnalyzeWithBlocker(t *testing.T) {
	s := testStudy(t)
	// Find an SMP site (blockable).
	var blockable string
	for _, d := range s.CookiewallDomains() {
		rep, err := s.Analyze("Germany", d)
		if err == nil && rep.BannerKind == "cookiewall" {
			rep2, err := s.AnalyzeWithBlocker("Germany", d)
			if err == nil && rep2.BannerKind == "none" {
				blockable = d
				break
			}
		}
	}
	if blockable == "" {
		t.Fatal("no blockable cookiewall found")
	}
}

func TestVantagePoints(t *testing.T) {
	s := testStudy(t)
	vps := s.VantagePoints()
	if len(vps) != 8 || vps[3] != "Germany" {
		t.Fatalf("vps = %v", vps)
	}
}

func TestDetectInHTML(t *testing.T) {
	rep := DetectInHTML(`<html><body><div class="consent-layer" role="dialog" style="position:fixed;top:0">
	<p>Read ad-free for $2.99 per month or accept cookies.</p>
	<button>Accept all</button><button>Subscribe</button></div></body></html>`)
	if rep.BannerKind != "cookiewall" {
		t.Fatalf("kind = %q", rep.BannerKind)
	}
	if rep.PriceEUR <= 2.5 || rep.PriceEUR >= 3 {
		t.Fatalf("price = %g", rep.PriceEUR)
	}
}

func TestReportTable1(t *testing.T) {
	s := testStudy(t)
	text, err := s.Report(ExpTable1)
	if err != nil {
		t.Fatal(err)
	}
	// The facade must reproduce the paper's headline row.
	if !strings.Contains(text, "Germany") || !strings.Contains(text, "280") ||
		!strings.Contains(text, "259") {
		t.Fatalf("table 1:\n%s", text)
	}
}

func TestReportAccuracy(t *testing.T) {
	s := testStudy(t)
	text, err := s.Report(ExpAccuracy)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "98.2%") {
		t.Fatalf("accuracy:\n%s", text)
	}
}

func TestReportUnknown(t *testing.T) {
	s := testStudy(t)
	if _, err := s.Report(Experiment("nonsense")); err == nil {
		t.Fatal("expected error")
	}
}

func TestExperimentsList(t *testing.T) {
	exps := Experiments()
	if len(exps) != 16 {
		t.Fatalf("experiments = %d", len(exps))
	}
	seen := map[Experiment]bool{}
	for _, e := range exps {
		if seen[e] {
			t.Fatalf("duplicate experiment %s", e)
		}
		seen[e] = true
	}
}

func TestNewBrowser(t *testing.T) {
	s := testStudy(t)
	b, err := s.NewBrowser("Sweden")
	if err != nil {
		t.Fatal(err)
	}
	page, err := b.Open("https://" + s.Targets()[0] + "/")
	if err != nil {
		t.Fatal(err)
	}
	if page.Status != 200 {
		t.Fatalf("status = %d", page.Status)
	}
}

func TestHandlerServesPortal(t *testing.T) {
	s := testStudy(t)
	if s.Handler() == nil || s.Transport() == nil || s.Crawler() == nil {
		t.Fatal("accessors returned nil")
	}
}

func TestScreenshot(t *testing.T) {
	s := testStudy(t)
	box, err := s.Screenshot("Germany", s.CookiewallDomains()[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(box, "cookiewall") || !strings.Contains(box, "[ ") {
		t.Fatalf("screenshot:\n%s", box)
	}
	// A no-banner visitor gets the empty box, not an error.
	var geoRestricted string
	for _, d := range s.CookiewallDomains() {
		rep, err := s.Analyze("US East", d)
		if err == nil && rep.BannerKind == "none" {
			geoRestricted = d
			break
		}
	}
	if geoRestricted != "" {
		box, err := s.Screenshot("US East", geoRestricted)
		if err != nil || !strings.Contains(box, "no banner") {
			t.Fatalf("no-banner screenshot: %v\n%s", err, box)
		}
	}
	if _, err := s.Screenshot("Mars", "x.de"); err == nil {
		t.Fatal("unknown VP must error")
	}
}
