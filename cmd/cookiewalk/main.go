// Command cookiewalk runs the paper's experiments end to end and
// prints the tables and figure series.
//
// Usage:
//
//	cookiewalk -exp all                 # every artefact (Table 1, Figures 1-6, ...)
//	cookiewalk -exp table1 -scale 0.05  # one artefact on a reduced web
//	cookiewalk -exp table1,bypass,smp   # a subset, assembled in report order
//	cookiewalk -list                    # experiment ids + their artefact dependencies
//	cookiewalk -exp all -out EXPERIMENTS.md
//
//	# Dependency-aware concurrent scheduling: run independent
//	# experiment campaigns 4 at a time on one shared worker budget
//	# (results are byte-identical to -j 1).
//	cookiewalk -exp all -j 4 -progress
//
//	# Crash-safe crawling: journal EVERY experiment campaign, and
//	# after a kill (OOM, preemption, ^C) resume the whole study —
//	# journaled visits stream from disk, only the missing ones are
//	# crawled, and the report is byte-identical to an uninterrupted
//	# run's.
//	cookiewalk -exp all -checkpoint /tmp/ck -progress
//	cookiewalk -exp all -checkpoint /tmp/ck -resume -progress
//
//	# Distributed crawling: one coordinator leases landscape shard
//	# ranges to any number of workers (same seed/scale!), assembles
//	# the shipped journals under -checkpoint, and reports once every
//	# range has merged. Workers that crash mid-lease are detected by
//	# a missed heartbeat TTL and their ranges re-leased; the report
//	# stays byte-identical to a single-machine run's.
//	cookiewalk -exp all -checkpoint /tmp/ck -serve :8440
//	cookiewalk -worker http://coordinator:8440    # on each worker box
//
//	# The coordinator itself is crash-safe: its lease ledger persists
//	# under -checkpoint, so after a crash (or a graceful ^C) the same
//	# command resumes the fleet — merged ranges stay merged, workers
//	# reconnect on their own. On untrusted networks set a shared
//	# -fleet-token on both sides.
//	cookiewalk -exp all -checkpoint /tmp/ck -serve :8440 -fleet-token S3CRET
//	cookiewalk -worker http://coordinator:8440 -fleet-token S3CRET
//
// Scale 1 (default) reproduces the full 45 222-target universe; the
// eight-VP crawl then takes tens of seconds. Smaller scales keep every
// cookiewall-related number identical and shrink only the filler web.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cookiewalk"
	"cookiewalk/internal/profiling"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 42, "universe seed")
		scale      = flag.Float64("scale", 1, "filler-web scale (1 = paper size)")
		reps       = flag.Int("reps", 5, "repetitions for cookie measurements")
		exp        = flag.String("exp", "all", "comma-separated experiment ids (see -list)")
		list       = flag.Bool("list", false, "list experiment ids with their artefact dependencies and exit")
		out        = flag.String("out", "", "also write the report to this file")
		jsonOut    = flag.String("json", "", "write the machine-readable dataset (JSON) to this file")
		csvOut     = flag.String("csv", "", "write per-cookiewall records (CSV) to this file")
		workers    = flag.Int("workers", 0, "per-shard worker pool size (0 = GOMAXPROCS)")
		shards     = flag.Int("shards", 0, "campaign shard count (0 = derived from target count)")
		jobs       = flag.Int("j", 1, "experiment-level parallelism: independent experiment campaigns running concurrently on one shared worker budget")
		progress   = flag.Bool("progress", false, "stream campaign progress and per-shard error accounting to stderr")
		checkpoint = flag.String("checkpoint", "", "journal every experiment campaign into per-experiment subdirectories of this directory (crash-safe; see -resume)")
		resume     = flag.Bool("resume", false, "replay the journals under -checkpoint from a previous killed run and crawl only what is missing")
		serve      = flag.String("serve", "", "coordinator mode: serve landscape shard-range leases on this address and assemble shipped journals under -checkpoint; implies -resume, so the post-merge report replays the assembled journals instead of re-crawling")
		workerURL  = flag.String("worker", "", "worker mode: lease, crawl and ship landscape shard ranges from the coordinator at this URL (no report); MUST run with the coordinator's -seed and -scale, and its -fleet-token/-fleet-ca when those are set")
		leaseTTL   = flag.Duration("lease-ttl", 30*time.Second, "coordinator lease TTL: a worker silent this long is presumed dead and its range re-leased; never affects results, only how fast a lost range is re-handed out")
		fleetToken = flag.String("fleet-token", "", "shared fleet secret: -serve refuses requests without \"Authorization: Bearer <token>\" (constant-time compare, HTTP 401), -worker sends it on every request (empty = no auth; set the same value on both sides)")

		visitTimeout      = flag.Duration("visit-timeout", 0, "per-visit wall-clock deadline covering navigation + subresources + retries; an overrun surfaces as an ordinary visit error, never a wedged campaign (0 = none)")
		visitRetries      = flag.Int("visit-retries", 0, "extra attempts per request on transient transport failures (timeouts, resets, truncated bodies, 5xx); definitive failures (DNS, 4xx) never retry; results stay byte-identical when faults eventually clear")
		visitRetryBackoff = flag.Duration("visit-retry-backoff", 0, "initial retry delay, doubled per attempt up to 2s with seeded jitter (0 = the 100ms default); timing only, never results")
		perHost           = flag.Float64("per-host", 0, "per-host request rate limit in requests/second, shared across all shards and workers via one token bucket (0 = unlimited); throughput knob only — results are identical at any rate")
		perHostBurst      = flag.Int("per-host-burst", 0, "token-bucket burst size for -per-host (0 = the default of 1)")
		breakerThreshold  = flag.Int("breaker-threshold", 0, "per-host circuit breaker: skip a host (fail fast) after this many consecutive transient failures, until a half-open probe succeeds (0 = breaker off)")
		breakerCooldown   = flag.Duration("breaker-cooldown", 0, "how long an open breaker waits before probing the host again (0 = the 30s default)")

		fleetCert = flag.String("fleet-cert", "", "TLS certificate (PEM) for the coordinator: -serve listens with https:// (requires -fleet-key)")
		fleetKey  = flag.String("fleet-key", "", "TLS private key (PEM) for -fleet-cert")
		fleetCA   = flag.String("fleet-ca", "", "CA bundle (PEM) workers trust when dialing an https:// coordinator (empty = system pool)")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (post-GC live memory) to this file on exit")
	)
	flag.Parse()

	if err := profiling.Start(*cpuProfile, *memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	// Stop is idempotent; exit paths that bypass defers (the fleet
	// coordinator's signal handler) flush explicitly before os.Exit.
	defer profiling.Stop()

	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "error: -resume requires -checkpoint DIR")
		os.Exit(2)
	}
	if *serve != "" && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "error: -serve requires -checkpoint DIR (the journal assembly target)")
		os.Exit(2)
	}
	if *serve != "" && *workerURL != "" {
		fmt.Fprintln(os.Stderr, "error: -serve and -worker are mutually exclusive")
		os.Exit(2)
	}
	if (*fleetCert != "") != (*fleetKey != "") {
		fmt.Fprintln(os.Stderr, "error: -fleet-cert and -fleet-key must be set together")
		os.Exit(2)
	}

	if *list {
		for _, e := range cookiewalk.Experiments() {
			deps := cookiewalk.Dependencies(e)
			if len(deps) == 0 {
				fmt.Printf("%-12s (no dependencies)\n", e)
			} else {
				fmt.Printf("%-12s depends on: %s\n", e, strings.Join(deps, ", "))
			}
			if dirs := cookiewalk.JournalDirs(e); len(dirs) > 0 {
				fmt.Printf("%-12s journals under -checkpoint: %s\n", "", strings.Join(dirs, ", "))
			}
		}
		return
	}

	exps, err := cookiewalk.ParseExperiments(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}

	cfg := cookiewalk.Config{
		Seed: *seed, Scale: *scale, Reps: *reps,
		Workers: *workers, Shards: *shards,
		CheckpointDir: *checkpoint, Resume: *resume,
		ExperimentParallelism: *jobs,
		LeaseTTL:              *leaseTTL,
		FleetToken:            *fleetToken,
		FleetCA:               *fleetCA,
		VisitTimeout:          *visitTimeout,
		VisitRetries:          *visitRetries,
		VisitRetryBackoff:     *visitRetryBackoff,
		PerHostRPS:            *perHost,
		PerHostBurst:          *perHostBurst,
		BreakerThreshold:      *breakerThreshold,
		BreakerCooldown:       *breakerCooldown,
	}
	if *serve != "" {
		// The post-merge report must replay the assembled journals
		// rather than re-crawl, so coordinator mode implies -resume.
		cfg.Resume = true
	}
	if *progress {
		if *jobs > 1 {
			// Concurrent campaigns interleave their snapshots; a
			// carriage-return status line would shred, so print one
			// experiment-prefixed line per snapshot instead.
			cfg.Progress = printProgressLines
		} else {
			cfg.Progress = printProgress
		}
	}

	start := time.Now()
	study := cookiewalk.New(cfg)
	fmt.Fprintf(os.Stderr, "universe ready: %d targets (%.1fs)\n",
		len(study.Targets()), time.Since(start).Seconds())

	if *workerURL != "" {
		runWorker(study, *workerURL)
		fmt.Fprintf(os.Stderr, "total runtime: %.1fs\n", time.Since(start).Seconds())
		return
	}
	if *serve != "" {
		stop := serveFleet(study, *serve, *fleetCert, *fleetKey)
		defer stop()
	}

	text, err := study.ReportContext(context.Background(), exps...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Print(text)
	fmt.Fprintf(os.Stderr, "total runtime: %.1fs\n", time.Since(start).Seconds())
	if *progress {
		printShardAccounting(study)
	}

	if *out != "" {
		header := fmt.Sprintf("# cookiewalk experiment report\n\nseed=%d scale=%g reps=%d\n\n```\n",
			*seed, *scale, *reps)
		if err := os.WriteFile(*out, []byte(header+text+"```\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "write:", err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		writeWith(*jsonOut, study.ExportJSON)
	}
	if *csvOut != "" {
		writeWith(*csvOut, study.ExportWallsCSV)
	}
}

// printProgress is the serial (-j 1) -progress sink: a stderr status
// line per campaign snapshot, terminated when the campaign completes.
// On a resumed crawl it splits the visit counter into journal replays
// and fresh visits, so the operator sees how much work the checkpoint
// saved as it streams by.
func printProgress(p cookiewalk.Progress) {
	if p.Replayed > 0 {
		fmt.Fprintf(os.Stderr, "\r%-24s shard %d/%d  %d/%d visits (%d replayed + %d fresh)  %d errors%s",
			p.Label+":", p.Shard, p.Shards, p.Done, p.Total, p.Replayed, p.Done-p.Replayed, p.Errors, resilienceSuffix(p))
	} else {
		fmt.Fprintf(os.Stderr, "\r%-24s shard %d/%d  %d/%d visits  %d errors%s",
			p.Label+":", p.Shard, p.Shards, p.Done, p.Total, p.Errors, resilienceSuffix(p))
	}
	if p.Done >= p.Total {
		fmt.Fprintln(os.Stderr)
	}
}

// resilienceSuffix renders the retry/breaker counters, empty when the
// resilience layer had nothing to do — the common case — so the
// ordinary status line stays unchanged.
func resilienceSuffix(p cookiewalk.Progress) string {
	if p.Retries == 0 && p.BreakerTrips == 0 && p.BreakerDenials == 0 {
		return ""
	}
	s := fmt.Sprintf("  %d retries", p.Retries)
	if p.BreakerTrips > 0 || p.BreakerDenials > 0 {
		s += fmt.Sprintf("  breaker: %d trips, %d denials", p.BreakerTrips, p.BreakerDenials)
	}
	return s
}

// printProgressLines is the concurrent (-j > 1) -progress sink:
// snapshots from interleaved campaigns each get their own line,
// multiplexed by the campaign label's experiment-name prefix
// ("landscape Germany", "fig4 cookiewall", "bypass", ...).
func printProgressLines(p cookiewalk.Progress) {
	if p.Replayed > 0 {
		fmt.Fprintf(os.Stderr, "%-24s shard %d/%d  %d/%d visits (%d replayed + %d fresh)  %d errors%s\n",
			p.Label+":", p.Shard, p.Shards, p.Done, p.Total, p.Replayed, p.Done-p.Replayed, p.Errors, resilienceSuffix(p))
		return
	}
	fmt.Fprintf(os.Stderr, "%-24s shard %d/%d  %d/%d visits  %d errors%s\n",
		p.Label+":", p.Shard, p.Shards, p.Done, p.Total, p.Errors, resilienceSuffix(p))
}

// printShardAccounting dumps the per-shard visit/error counters of the
// landscape campaign (when one ran) — the engine's failure ledger,
// with replayed-vs-fresh splits for resumed crawls.
func printShardAccounting(study *cookiewalk.Study) {
	l := study.CachedLandscape()
	if l == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "landscape shard accounting:")
	for _, res := range l.PerVP {
		fmt.Fprintf(os.Stderr, "  %-14s", res.VP)
		for _, sh := range res.Stats.Shards {
			if sh.Replayed > 0 {
				fmt.Fprintf(os.Stderr, " [%d: %d/%d (%d replayed), %d err]",
					sh.Shard, sh.Done, sh.Targets, sh.Replayed, sh.Errors)
			} else {
				fmt.Fprintf(os.Stderr, " [%d: %d/%d, %d err]",
					sh.Shard, sh.Done, sh.Targets, sh.Errors)
			}
		}
		fmt.Fprintln(os.Stderr)
		if r := res.Stats.Replayed; r > 0 {
			fmt.Fprintf(os.Stderr, "  %-14s resumed: %d replayed + %d fresh of %d\n",
				"", r, res.Stats.Fresh(), res.Stats.Done)
		}
		if st := res.Stats; st.Retries > 0 || st.BreakerTrips > 0 || st.BreakerDenials > 0 {
			fmt.Fprintf(os.Stderr, "  %-14s resilience: %d retries, %d breaker trips, %d breaker denials\n",
				"", st.Retries, st.BreakerTrips, st.BreakerDenials)
		}
	}
}

// serveFleet runs the study's coordinator until every landscape shard
// range has been leased, crawled (by some worker) and merged into the
// checkpoint dir; the caller then reports off the assembled journals.
// The returned stop func closes the HTTP server; it is left serving
// until then so that workers polling for more work hear "done" and
// exit cleanly instead of finding the port closed mid-poll.
//
// SIGINT/SIGTERM shuts the coordinator down gracefully instead of
// dying mid-write: lease granting stops (workers see 503 and keep
// polling), the lease ledger is fsynced and closed, and the process
// exits nonzero with a reminder that the same -checkpoint resumes the
// fleet exactly where it stopped.
func serveFleet(study *cookiewalk.Study, addr, certFile, keyFile string) (stop func()) {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	fc, err := study.NewFleetCoordinator(logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: fc.Handler()}
	scheme := "http"
	serve := srv.Serve
	if certFile != "" {
		scheme = "https"
		serve = func(l net.Listener) error { return srv.ServeTLS(l, certFile, keyFile) }
	}
	go func() {
		// A serve failure (unreadable -fleet-cert, a key that does not
		// match) must not leave the coordinator "listening" while serving
		// nothing and workers seeing opaque connection failures.
		if err := serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "coordinator serve:", err)
			os.Exit(1)
		}
	}()
	fmt.Fprintf(os.Stderr, "coordinator listening on %s (%s), waiting for workers...\n", ln.Addr(), scheme)

	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if err := fc.Wait(sigCtx); err != nil {
		if sigCtx.Err() != nil {
			st := fc.Status()
			fmt.Fprintf(os.Stderr, "\nsignal received: stopping lease grants and syncing the lease ledger (%d of %d ranges merged)...\n",
				st.Done, st.Units)
			if cerr := fc.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "ledger close:", cerr)
			}
			srv.Close()
			fmt.Fprintln(os.Stderr, "coordinator stopped cleanly — resume with the same -checkpoint to continue the fleet where it left off")
			profiling.Stop() // os.Exit skips defers; flush armed profiles first
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	st := fc.Status()
	fmt.Fprintf(os.Stderr, "fleet complete: %d shard ranges merged (%d lease expiries along the way)\n",
		st.Done, st.Expired)
	if st.Recovered > 0 {
		fmt.Fprintf(os.Stderr, "  resumed fleet: %d ranges were recovered from a previous coordinator (incarnation %d)\n",
			st.Recovered, st.Incarnation)
	}
	return func() { srv.Close() }
}

// runWorker joins the fleet at url and crawls leased ranges until the
// coordinator reports every range merged.
func runWorker(study *cookiewalk.Study, url string) {
	host, _ := os.Hostname()
	name := fmt.Sprintf("%s-%d", host, os.Getpid())
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if err := study.RunFleetWorker(context.Background(), url, name, logf); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// writeWith streams an export function into a file. The Close error is
// checked explicitly: these exports are the tool's dataset artifacts,
// and a buffered write that only fails at close (ENOSPC, quota) must
// not silently ship a truncated file.
func writeWith(path string, export func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "create:", err)
		os.Exit(1)
	}
	if err := export(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "export:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
		os.Exit(1)
	}
}
