// Command trendd is the continuous-measurement daemon: it re-runs the
// study's landscape crawl on a wall-clock schedule, appends each
// round's aggregates (prevalence, paywall share, price statistics,
// per-VP splits) to a time-indexed append-only store, and serves the
// resulting time series over a cached HTTP query API.
//
// Usage:
//
//	trendd -store /var/lib/cookiewalk/trends -interval 24h -addr :8460
//
//	# A bounded campaign: three rounds an hour apart, then keep serving.
//	trendd -store /tmp/trends -interval 1h -rounds 3 -addr :8460
//
//	# Query the API.
//	curl localhost:8460/v1/trends/prevalence
//	curl 'localhost:8460/v1/trends/vp_banner_rate?vp=Germany&from=0&to=10'
//	curl localhost:8460/v1/rounds
//	curl localhost:8460/v1/status
//
// Each round is a delta-crawl: it checkpoints its campaigns under
// <store>/rounds/round-NNNN (so a crash mid-round resumes by journal
// replay) and shares the process-global analysis memo, so pages
// unchanged since the previous round cost a memo hit instead of a
// fresh analysis. The store itself is crash-safe: a round is either
// durably appended or re-run, and a restart with the same -store
// resumes the schedule after the last stored round. Rounds are pure
// functions of (seed, round, universe), so a fixed schedule of rounds
// is byte-deterministic across runs and restarts.
//
// With -fleet-token set, every API request must carry
// "Authorization: Bearer <token>" — the same shared-secret scheme as
// the fleet coordinator's.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"cookiewalk"
	"cookiewalk/internal/campaign"
	"cookiewalk/internal/measure"
	"cookiewalk/internal/profiling"
	"cookiewalk/internal/trend"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 42, "universe seed (must stay fixed for the lifetime of a store)")
		scale    = flag.Float64("scale", 1, "filler-web scale (1 = paper size; must stay fixed per store)")
		reps     = flag.Int("reps", 5, "repetitions for cookie measurements")
		workers  = flag.Int("workers", 0, "per-shard worker pool size (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "campaign shard count (0 = derived from target count)")
		jobs     = flag.Int("j", 1, "experiment-level parallelism within a round")
		storeDir = flag.String("store", "", "trend store directory: the round journal (rounds.cwt), its manifest, and per-round crawl checkpoints live here (required)")
		interval = flag.Duration("interval", 24*time.Hour, "wall-clock period between round starts; an overrunning round starts the next one immediately")
		rounds   = flag.Int("rounds", 0, "stop after the store holds this many rounds (0 = run until signaled)")
		addr     = flag.String("addr", "", "serve the /v1 query API on this address (empty = no API, crawl only)")
		token    = flag.String("fleet-token", "", "bearer token the query API requires (empty = no auth; same scheme as the fleet coordinator)")
		cacheTTL = flag.Duration("cache-ttl", 15*time.Second, "response-cache entry lifetime; new rounds invalidate eagerly regardless")
		prune    = flag.Bool("prune", true, "remove a round's crawl checkpoint journals once its summary is durably stored")
		progress = flag.Bool("progress", false, "stream campaign progress to stderr")

		visitTimeout = flag.Duration("visit-timeout", 0, "per-visit wall-clock deadline, navigation + subresources + retries (0 = none)")
		visitRetries = flag.Int("visit-retries", 0, "extra attempts per request on transient transport failures")
		perHost      = flag.Float64("per-host", 0, "per-host request rate limit in requests/second (0 = unlimited)")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole daemon run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (post-GC live memory) to this file on exit")
	)
	flag.Parse()

	if err := profiling.Start(*cpuProfile, *memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	// Stop is idempotent; the signal path below exits with os.Exit(3),
	// which skips defers, so it flushes explicitly first.
	defer profiling.Stop()

	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "error: -store DIR is required")
		os.Exit(2)
	}
	if *rounds == 0 && *addr == "" && *interval <= 0 {
		fmt.Fprintln(os.Stderr, "error: -interval must be positive")
		os.Exit(2)
	}

	base := cookiewalk.Config{
		Seed: *seed, Scale: *scale, Reps: *reps,
		Workers: *workers, Shards: *shards,
		ExperimentParallelism: *jobs,
		VisitTimeout:          *visitTimeout,
		VisitRetries:          *visitRetries,
		PerHostRPS:            *perHost,
	}
	if *progress {
		base.Progress = func(p cookiewalk.Progress) {
			fmt.Fprintf(os.Stderr, "%-24s shard %d/%d  %d/%d visits  %d errors\n",
				p.Label+":", p.Shard, p.Shards, p.Done, p.Total, p.Errors)
		}
	}

	// Probe the universe once for the store's identity manifest; every
	// round builds its own Study (artefacts are latched per Study, and
	// a round must re-measure, not replay the previous round's memo).
	start := time.Now()
	probe := cookiewalk.New(base)
	targets := probe.Targets()
	fmt.Fprintf(os.Stderr, "universe ready: %d targets (%.1fs)\n", len(targets), time.Since(start).Seconds())

	store, err := trend.Open(*storeDir, trend.Manifest{
		Seed:        *seed,
		Scale:       *scale,
		Reps:        *reps,
		Targets:     len(targets),
		TargetsHash: campaign.HashTargets(targets),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer store.Close()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	roundDir := func(round int) string {
		return filepath.Join(*storeDir, "rounds", fmt.Sprintf("round-%04d", round))
	}
	runner := &trend.Runner{
		Store:    store,
		Interval: *interval,
		Rounds:   *rounds,
		Logf:     logf,
		Run: func(ctx context.Context, round int) (measure.RoundSummary, error) {
			cfg := base
			// Resume is unconditional: a round interrupted mid-crawl
			// replays its journals on the re-run instead of re-visiting.
			cfg.CheckpointDir = roundDir(round)
			cfg.Resume = true
			return cookiewalk.New(cfg).RoundSummary(ctx)
		},
		OnRound: func(st trend.RoundStats) {
			if *prune {
				if err := os.RemoveAll(roundDir(st.Round)); err != nil {
					logf("trend: pruning round %d checkpoints: %v", st.Round, err)
				}
			}
		},
	}

	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var srv *http.Server
	if *addr != "" {
		server := trend.NewServer(trend.ServerConfig{
			Store:    store,
			Runner:   runner,
			Token:    *token,
			CacheTTL: *cacheTTL,
		})
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "listen:", err)
			os.Exit(1)
		}
		srv = &http.Server{Handler: server.Handler()}
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "trend serve:", err)
				os.Exit(1)
			}
		}()
		fmt.Fprintf(os.Stderr, "trend API listening on %s\n", ln.Addr())
		defer srv.Close()
	}

	if err := runner.Loop(sigCtx); err != nil {
		if sigCtx.Err() != nil {
			// The round that was interrupted left its campaign journals
			// under the store; the same command resumes it by replay.
			fmt.Fprintf(os.Stderr, "\nsignal received: %d rounds stored — restart with the same -store to resume the schedule\n", store.Len())
			store.Close()
			profiling.Stop() // os.Exit skips defers; flush armed profiles first
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "schedule complete: %d rounds stored\n", store.Len())
	if srv != nil {
		fmt.Fprintln(os.Stderr, "still serving the query API — ^C to exit")
		<-sigCtx.Done()
	}
}
