// Command doccheck lints intra-repository markdown links.
//
// It walks every .md file under the repository root (skipping .git and
// testdata), extracts [text](target) links, and verifies that each
// relative target resolves to a file or directory that actually
// exists. External links (http, https, mailto) and pure #fragment
// anchors are skipped; a #fragment suffix on a file target is stripped
// before the existence check. Links inside fenced code blocks and
// inline code spans are ignored, since those are examples, not
// navigation.
//
// Usage:
//
//	go run ./cmd/doccheck [root]
//
// With no argument the current directory is the root. Targets starting
// with "/" are resolved against the repository root rather than the
// filesystem root, matching how GitHub renders absolute repo links.
// Exits 1 listing every broken link; exits 0 when all links resolve.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches [text](target). Nested brackets in the text and
// parentheses in the target are rare enough in this repo's docs that
// the simple form is sufficient — doccheck lints links, it does not
// implement CommonMark.
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, target := range extractLinks(string(data)) {
			if ok := checkLink(root, path, target); !ok {
				fmt.Fprintf(os.Stderr, "%s: broken link: %s\n", path, target)
				broken++
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// extractLinks returns the link targets in a markdown document,
// ignoring fenced code blocks and inline code spans.
func extractLinks(doc string) []string {
	var targets []string
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatchIndex(stripCodeSpans(line), -1) {
			targets = append(targets, stripCodeSpans(line)[m[2]:m[3]])
		}
	}
	return targets
}

// stripCodeSpans blanks out `inline code` so links quoted as examples
// inside backticks are not linted.
func stripCodeSpans(line string) string {
	var b strings.Builder
	inSpan := false
	for _, r := range line {
		if r == '`' {
			inSpan = !inSpan
			b.WriteRune(r)
			continue
		}
		if inSpan {
			b.WriteRune(' ')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// checkLink reports whether target (as written in the file at path)
// resolves to something on disk. External schemes and pure anchors
// are vacuously fine.
func checkLink(root, path, target string) bool {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"),
		strings.HasPrefix(target, "#"):
		return true
	}
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
	}
	if target == "" {
		return true
	}
	var resolved string
	if strings.HasPrefix(target, "/") {
		resolved = filepath.Join(root, target)
	} else {
		resolved = filepath.Join(filepath.Dir(path), target)
	}
	_, err := os.Stat(resolved)
	return err == nil
}
