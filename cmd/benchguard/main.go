// Command benchguard is the CI bench-regression gate: it runs (or
// reads) BenchmarkLandscapeCrawl and fails when allocs/op or B/op
// regress by more than the threshold against the most recent
// BENCH_PR<n>.json at the repo root.
//
// The gate compares ALLOCATION metrics only. Wall-clock (s/op) varies
// with the CI machine and is printed purely for information; allocs/op
// and B/op are deterministic for a deterministic workload, so a ratio
// threshold on them catches real hot-path regressions without flaking
// on noisy runners.
//
//	benchguard                 # run the benchmark, compare, exit 1 on regression
//	benchguard -threshold 0.10 # stricter gate
//	go test -bench ... | benchguard -input -   # compare pre-recorded output
//
// The baseline convention (see ROADMAP.md): every PR that touches the
// crawl path records its BenchmarkLandscapeCrawl numbers in a
// BENCH_PR<n>.json; benchguard picks the file with the highest <n>.
// Two schemas are accepted:
//
//   - flat (PR 2-8): a top-level "result" object with sec_per_op,
//     bytes_per_op, allocs_per_op — implicitly a single-core entry,
//     compared against every measured line;
//   - multi-core (PR 10+): a "results" array whose entries each carry
//     a "gomaxprocs" key alongside the three metrics. A measured line
//     is compared like against like: the -N suffix of its benchmark
//     name (Go's GOMAXPROCS suffix; absent = 1) selects the entry
//     with the matching gomaxprocs, and lines with no matching entry
//     are reported but not gated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// benchResult is one (gomaxprocs, metrics) baseline entry.
type benchResult struct {
	Gomaxprocs  int     `json:"gomaxprocs"`
	SecPerOp    float64 `json:"sec_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func (r benchResult) usable() bool { return r.AllocsPerOp > 0 || r.BytesPerOp > 0 }

// benchFile is the subset of BENCH_PR<n>.json benchguard consumes.
// Result is the legacy flat schema, Results the multi-core one; a file
// may carry both (Result doubling as the gomaxprocs=1 summary).
type benchFile struct {
	PR      int           `json:"pr"`
	Bench   string        `json:"benchmark"`
	Result  benchResult   `json:"result"`
	Results []benchResult `json:"results"`
}

// baselineFor selects the entry a measurement taken at procs compares
// against: the matching gomaxprocs entry of the multi-core schema, or
// the flat result — which predates the convention and gates every
// line — when no array is present.
func (bf *benchFile) baselineFor(procs int) (benchResult, bool) {
	for _, r := range bf.Results {
		if r.Gomaxprocs == procs && r.usable() {
			return r, true
		}
	}
	if len(bf.Results) == 0 && bf.Result.usable() {
		return bf.Result, true
	}
	return benchResult{}, false
}

// measurement is one parsed benchmark output line.
type measurement struct {
	Gomaxprocs  int
	SecPerOp    float64
	BytesPerOp  float64
	AllocsPerOp float64
}

func main() {
	var (
		dir       = flag.String("dir", ".", "repo root holding BENCH_PR*.json (and the package to benchmark)")
		threshold = flag.Float64("threshold", 0.15, "maximum tolerated regression ratio for allocs/op and B/op (0.15 = +15%)")
		input     = flag.String("input", "", "parse `go test -bench` output from this file ('-' = stdin) instead of running the benchmark")
		bench     = flag.String("bench", "BenchmarkLandscapeCrawl", "benchmark to run and compare")
		benchtime = flag.String("benchtime", "1x", "-benchtime passed to go test")
	)
	flag.Parse()

	baselinePath, baseline, err := latestBaseline(*dir)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("baseline: %s (PR %d)\n", filepath.Base(baselinePath), baseline.PR)
	for _, r := range baselineEntries(baseline) {
		fmt.Printf("  gomaxprocs=%d: %.2f s/op, %.0f B/op, %.0f allocs/op\n",
			r.Gomaxprocs, r.SecPerOp, r.BytesPerOp, r.AllocsPerOp)
	}

	var output string
	if *input != "" {
		output, err = readInput(*input)
	} else {
		output, err = runBenchmark(*dir, *bench, *benchtime)
	}
	if err != nil {
		fatal(err)
	}
	measurements, err := parseBenchOutput(output, *bench)
	if err != nil {
		fatal(err)
	}

	failed := false
	for _, m := range measurements {
		fmt.Printf("current:  %s (gomaxprocs=%d): %.2f s/op, %.0f B/op, %.0f allocs/op\n",
			*bench, m.Gomaxprocs, m.SecPerOp, m.BytesPerOp, m.AllocsPerOp)
		base, ok := baseline.baselineFor(m.Gomaxprocs)
		if !ok {
			fmt.Printf("  no gomaxprocs=%d baseline entry in %s — informational only\n",
				m.Gomaxprocs, filepath.Base(baselinePath))
			continue
		}
		for _, c := range []struct {
			name     string
			current  float64
			baseline float64
		}{
			{"allocs/op", m.AllocsPerOp, base.AllocsPerOp},
			{"B/op", m.BytesPerOp, base.BytesPerOp},
		} {
			if c.baseline <= 0 {
				fmt.Printf("  skip %s: baseline is %v\n", c.name, c.baseline)
				continue
			}
			ratio := c.current / c.baseline
			verdict := "ok"
			if ratio > 1+*threshold {
				verdict = "REGRESSION"
				failed = true
			}
			fmt.Printf("  %-10s %12.0f -> %12.0f  (%+.1f%%, limit +%.0f%%)  %s\n",
				c.name, c.baseline, c.current, (ratio-1)*100, *threshold*100, verdict)
		}
		if base.SecPerOp > 0 {
			fmt.Printf("  %-10s %12.2f -> %12.2f  (informational only — wall clock is machine-dependent)\n",
				"s/op", base.SecPerOp, m.SecPerOp)
		}
	}
	if failed {
		fmt.Printf("benchguard: FAIL: allocation regression beyond +%.0f%% vs %s\n", *threshold*100, filepath.Base(baselinePath))
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

// baselineEntries lists a file's usable entries for the banner:
// the multi-core array when present, the flat result otherwise.
func baselineEntries(bf benchFile) []benchResult {
	if len(bf.Results) > 0 {
		return bf.Results
	}
	r := bf.Result
	if r.Gomaxprocs == 0 {
		r.Gomaxprocs = 1
	}
	return []benchResult{r}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}

// latestBaseline picks the BENCH_PR<n>.json with the highest n.
var benchFileRe = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

func latestBaseline(dir string) (string, benchFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", benchFile{}, err
	}
	bestN := -1
	bestPath := ""
	for _, e := range entries {
		m := benchFileRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		if n > bestN {
			bestN = n
			bestPath = filepath.Join(dir, e.Name())
		}
	}
	if bestN < 0 {
		return "", benchFile{}, fmt.Errorf("no BENCH_PR*.json baseline in %s", dir)
	}
	data, err := os.ReadFile(bestPath)
	if err != nil {
		return "", benchFile{}, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return "", benchFile{}, fmt.Errorf("parse %s: %w", bestPath, err)
	}
	usable := bf.Result.usable()
	for _, r := range bf.Results {
		usable = usable || r.usable()
	}
	if !usable {
		return "", benchFile{}, fmt.Errorf("%s has no usable result metrics", bestPath)
	}
	return bestPath, bf, nil
}

func readInput(path string) (string, error) {
	if path == "-" {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	data, err := os.ReadFile(path)
	return string(data), err
}

// runBenchmark shells out to go test for one benchmark iteration.
func runBenchmark(dir, bench, benchtime string) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^"+bench+"$", "-benchtime", benchtime, ".")
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	fmt.Printf("running: %s\n", strings.Join(cmd.Args, " "))
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go test -bench: %w\n%s", err, out)
	}
	return string(out), nil
}

// parseBenchOutput extracts every (gomaxprocs, sec/op, B/op,
// allocs/op) result line for bench from go test output, e.g.:
//
//	BenchmarkLandscapeCrawl-8  1  2331148440 ns/op  751924624 B/op  7051896 allocs/op
//
// The -8 is Go's GOMAXPROCS suffix (omitted when it is 1); -cpu runs
// emit one line per setting, all of which are returned.
func parseBenchOutput(output, bench string) ([]measurement, error) {
	var ms []measurement
	for _, line := range strings.Split(output, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		procs := 1
		if name != bench {
			rest, ok := strings.CutPrefix(name, bench+"-")
			if !ok {
				continue
			}
			n, err := strconv.Atoi(rest)
			if err != nil {
				continue
			}
			procs = n
		}
		var m measurement
		m.Gomaxprocs = procs
		found := 0
		for i := 2; i+1 < len(fields); i += 2 {
			v, perr := strconv.ParseFloat(fields[i], 64)
			if perr != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.SecPerOp = v / 1e9
				found++
			case "B/op":
				m.BytesPerOp = v
				found++
			case "allocs/op":
				m.AllocsPerOp = v
				found++
			}
		}
		if found < 3 {
			return nil, fmt.Errorf("benchmark line lacks ns/op + B/op + allocs/op (need b.ReportAllocs or -benchmem): %q", line)
		}
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("no %s result in output", bench)
	}
	return ms, nil
}
