// Command benchguard is the CI bench-regression gate: it runs (or
// reads) BenchmarkLandscapeCrawl and fails when allocs/op or B/op
// regress by more than the threshold against the most recent
// BENCH_PR<n>.json at the repo root.
//
// The gate compares ALLOCATION metrics only. Wall-clock (s/op) varies
// with the CI machine and is printed purely for information; allocs/op
// and B/op are deterministic for a deterministic workload, so a ratio
// threshold on them catches real hot-path regressions without flaking
// on noisy runners.
//
//	benchguard                 # run the benchmark, compare, exit 1 on regression
//	benchguard -threshold 0.10 # stricter gate
//	go test -bench ... | benchguard -input -   # compare pre-recorded output
//
// The baseline convention (see ROADMAP.md): every PR that touches the
// crawl path records its BenchmarkLandscapeCrawl numbers in a
// BENCH_PR<n>.json with a top-level "result" object holding
// sec_per_op, bytes_per_op and allocs_per_op. benchguard picks the
// file with the highest <n>.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// benchFile is the subset of BENCH_PR<n>.json benchguard consumes.
type benchFile struct {
	PR     int    `json:"pr"`
	Bench  string `json:"benchmark"`
	Result struct {
		SecPerOp    float64 `json:"sec_per_op"`
		BytesPerOp  float64 `json:"bytes_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"result"`
}

func main() {
	var (
		dir       = flag.String("dir", ".", "repo root holding BENCH_PR*.json (and the package to benchmark)")
		threshold = flag.Float64("threshold", 0.15, "maximum tolerated regression ratio for allocs/op and B/op (0.15 = +15%)")
		input     = flag.String("input", "", "parse `go test -bench` output from this file ('-' = stdin) instead of running the benchmark")
		bench     = flag.String("bench", "BenchmarkLandscapeCrawl", "benchmark to run and compare")
		benchtime = flag.String("benchtime", "1x", "-benchtime passed to go test")
	)
	flag.Parse()

	baselinePath, baseline, err := latestBaseline(*dir)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("baseline: %s (PR %d): %.2f s/op, %.0f B/op, %.0f allocs/op\n",
		filepath.Base(baselinePath), baseline.PR,
		baseline.Result.SecPerOp, baseline.Result.BytesPerOp, baseline.Result.AllocsPerOp)

	var output string
	if *input != "" {
		output, err = readInput(*input)
	} else {
		output, err = runBenchmark(*dir, *bench, *benchtime)
	}
	if err != nil {
		fatal(err)
	}
	sec, bytesOp, allocsOp, err := parseBenchOutput(output, *bench)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("current:  %s: %.2f s/op, %.0f B/op, %.0f allocs/op\n", *bench, sec, bytesOp, allocsOp)

	failed := false
	for _, m := range []struct {
		name     string
		current  float64
		baseline float64
	}{
		{"allocs/op", allocsOp, baseline.Result.AllocsPerOp},
		{"B/op", bytesOp, baseline.Result.BytesPerOp},
	} {
		if m.baseline <= 0 {
			fmt.Printf("skip %s: baseline is %v\n", m.name, m.baseline)
			continue
		}
		ratio := m.current / m.baseline
		verdict := "ok"
		if ratio > 1+*threshold {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-10s %12.0f -> %12.0f  (%+.1f%%, limit +%.0f%%)  %s\n",
			m.name, m.baseline, m.current, (ratio-1)*100, *threshold*100, verdict)
	}
	if baseline.Result.SecPerOp > 0 {
		fmt.Printf("%-10s %12.2f -> %12.2f  (informational only — wall clock is machine-dependent)\n",
			"s/op", baseline.Result.SecPerOp, sec)
	}
	if failed {
		fmt.Printf("benchguard: FAIL: allocation regression beyond +%.0f%% vs %s\n", *threshold*100, filepath.Base(baselinePath))
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}

// latestBaseline picks the BENCH_PR<n>.json with the highest n.
var benchFileRe = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

func latestBaseline(dir string) (string, benchFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", benchFile{}, err
	}
	bestN := -1
	bestPath := ""
	for _, e := range entries {
		m := benchFileRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		if n > bestN {
			bestN = n
			bestPath = filepath.Join(dir, e.Name())
		}
	}
	if bestN < 0 {
		return "", benchFile{}, fmt.Errorf("no BENCH_PR*.json baseline in %s", dir)
	}
	data, err := os.ReadFile(bestPath)
	if err != nil {
		return "", benchFile{}, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return "", benchFile{}, fmt.Errorf("parse %s: %w", bestPath, err)
	}
	if bf.Result.AllocsPerOp <= 0 && bf.Result.BytesPerOp <= 0 {
		return "", benchFile{}, fmt.Errorf("%s has no usable result metrics", bestPath)
	}
	return bestPath, bf, nil
}

func readInput(path string) (string, error) {
	if path == "-" {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	data, err := os.ReadFile(path)
	return string(data), err
}

// runBenchmark shells out to go test for one benchmark iteration.
func runBenchmark(dir, bench, benchtime string) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^"+bench+"$", "-benchtime", benchtime, ".")
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	fmt.Printf("running: %s\n", strings.Join(cmd.Args, " "))
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go test -bench: %w\n%s", err, out)
	}
	return string(out), nil
}

// parseBenchOutput extracts (sec/op, B/op, allocs/op) from go test
// -bench output, e.g.:
//
//	BenchmarkLandscapeCrawl-8  1  2331148440 ns/op  751924624 B/op  7051896 allocs/op
func parseBenchOutput(output, bench string) (sec, bytesOp, allocsOp float64, err error) {
	for _, line := range strings.Split(output, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if name != bench && !strings.HasPrefix(name, bench+"-") {
			continue
		}
		found := 0
		for i := 2; i+1 < len(fields); i += 2 {
			v, perr := strconv.ParseFloat(fields[i], 64)
			if perr != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				sec = v / 1e9
				found++
			case "B/op":
				bytesOp = v
				found++
			case "allocs/op":
				allocsOp = v
				found++
			}
		}
		if found >= 3 {
			return sec, bytesOp, allocsOp, nil
		}
		return 0, 0, 0, fmt.Errorf("benchmark line lacks ns/op + B/op + allocs/op (need b.ReportAllocs or -benchmem): %q", line)
	}
	return 0, 0, 0, fmt.Errorf("no %s result in output", bench)
}
