// Command bannerstat analyzes a single site of the synthetic web: what
// banner it shows, where it is embedded, which subscription words and
// prices the classifier found, and whether an ad blocker suppresses it.
//
//	bannerstat <domain>
//	bannerstat -vp "US East" -blocker <domain>
//	bannerstat -walls            # list ground-truth cookiewall domains
package main

import (
	"flag"
	"fmt"
	"os"

	"cookiewalk"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 42, "universe seed")
		scale      = flag.Float64("scale", 0.05, "filler-web scale")
		vp         = flag.String("vp", "Germany", "vantage point name")
		blocker    = flag.Bool("blocker", false, "enable the uBlock-style blocker")
		walls      = flag.Bool("walls", false, "list cookiewall domains and exit")
		screenshot = flag.Bool("screenshot", false, "render the banner as an ASCII box (Appendix B style)")
		progress   = flag.Bool("progress", false, "stream campaign progress counters to stderr")
		workers    = flag.Int("workers", 0, "per-shard worker pool size (0 = GOMAXPROCS)")
		shards     = flag.Int("shards", 0, "campaign shard count (0 = derived from target count)")
	)
	flag.Parse()

	cfg := cookiewalk.Config{Seed: *seed, Scale: *scale, Workers: *workers, Shards: *shards}
	if *progress {
		cfg.Progress = func(p cookiewalk.Progress) {
			fmt.Fprintf(os.Stderr, "%s: shard %d/%d, %d/%d visits, %d errors\n",
				p.Label, p.Shard, p.Shards, p.Done, p.Total, p.Errors)
		}
	}
	study := cookiewalk.New(cfg)
	if *walls {
		for _, d := range study.CookiewallDomains() {
			fmt.Println(d)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bannerstat [-vp VP] [-blocker] [-screenshot] <domain>")
		os.Exit(2)
	}
	domain := flag.Arg(0)

	if *screenshot {
		box, err := study.Screenshot(*vp, domain)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Print(box)
		return
	}

	analyze := study.Analyze
	if *blocker {
		analyze = study.AnalyzeWithBlocker
	}
	rep, err := analyze(*vp, domain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("domain:      %s (from %s%s)\n", rep.Domain, rep.VP, blockerSuffix(*blocker))
	fmt.Printf("banner:      %s\n", rep.BannerKind)
	fmt.Printf("embedding:   %s %s\n", rep.Embedding, rep.ShadowMode)
	fmt.Printf("buttons:     accept=%v reject=%v subscribe=%v\n",
		rep.HasAccept, rep.HasReject, rep.HasSub)
	fmt.Printf("corpus hits: %v\n", rep.MatchedWords)
	if rep.PriceEUR > 0 {
		fmt.Printf("price:       %.2f EUR/month\n", rep.PriceEUR)
	}
	fmt.Printf("language:    %s\n", rep.Language)
	fmt.Printf("category:    %s\n", rep.Category)
	if rep.AdblockPlea {
		fmt.Println("quirk:       site asks to disable the ad blocker")
	}
	if rep.ScrollLocked {
		fmt.Println("quirk:       page locked scrolling under the blocker")
	}
}

func blockerSuffix(on bool) string {
	if on {
		return ", blocker on"
	}
	return ""
}
