// Command webfarm serves the synthetic web on a real TCP listener so
// the universe can be explored with curl or a browser:
//
//	webfarm -addr :8080 -scale 0.05
//	curl -H 'Host: <domain>' -H 'X-Vantage: Germany' http://localhost:8080/
//
// The same handler backs the in-process transport used by the crawls,
// so what you see over the wire is exactly what the measurements saw.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"cookiewalk"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		seed  = flag.Uint64("seed", 42, "universe seed")
		scale = flag.Float64("scale", 0.05, "filler-web scale")
	)
	flag.Parse()

	study := cookiewalk.New(cookiewalk.Config{Seed: *seed, Scale: *scale})
	walls := study.CookiewallDomains()
	fmt.Printf("serving %d sites on %s\n", len(study.Targets()), *addr)
	fmt.Println("sample cookiewall sites:")
	for i, d := range walls {
		if i >= 5 {
			break
		}
		fmt.Printf("  curl -H 'Host: %s' -H 'X-Vantage: Germany' http://localhost%s/\n", d, *addr)
	}
	log.Fatal(http.ListenAndServe(*addr, study.Handler()))
}
