package cookiewalk_test

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"cookiewalk"
)

// TestGoldenParallelism pins the multi-core determinism contract: the
// COMPLETE experiment output is byte-identical to the golden snapshot
// at every (GOMAXPROCS, Workers) combination a deployment might pick.
// Shard-affine session pools, batched resequencer delivery and padded
// cache shards (PR 10) are all pure mechanism — if any of them leaked
// scheduling into results, the diff would surface here first.
func TestGoldenParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full scale-0.02 experiment four times")
	}
	want, err := os.ReadFile("testdata/golden_all.txt")
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("gomaxprocs=%d/workers=%d", procs, workers), func(t *testing.T) {
				runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				study := cookiewalk.New(cookiewalk.Config{
					Seed: 42, Scale: 0.02, Reps: 2, Workers: workers,
				})
				got, err := study.Report(cookiewalk.ExpAll)
				if err != nil {
					t.Fatal(err)
				}
				if got == string(want) {
					return
				}
				gotLines := strings.Split(got, "\n")
				wantLines := strings.Split(string(want), "\n")
				for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
					if gotLines[i] != wantLines[i] {
						t.Fatalf("output diverges from golden at line %d:\n got: %q\nwant: %q",
							i+1, gotLines[i], wantLines[i])
					}
				}
				t.Fatalf("output length changed: got %d lines, want %d lines",
					len(gotLines), len(wantLines))
			})
		}
	}
}
