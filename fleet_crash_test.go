package cookiewalk_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cookiewalk"
	"cookiewalk/internal/campaign/dist"
	"cookiewalk/internal/campaign/dist/distfault"
	"cookiewalk/internal/xrand"
)

// TestFleetGoldenCoordinatorCrash is the PR-7 acceptance test: the
// coordinator is killed mid-fleet at a seed-derived point (after the
// K-th merged range, K picked from the chaos seed), a fresh
// coordinator process restarts on the same checkpoint dir and address,
// and the workers — whose every request passes the fault injector —
// ride out the outage in their retry loop and reconnect. The recovered
// fleet must finish, and the report assembled across both coordinator
// incarnations must be byte-identical to testdata/golden_all.txt. The
// fleet also runs with a shared bearer token, so the auth path is
// exercised end to end. CI pins the seed via COOKIEWALK_CHAOS_SEED.
func TestFleetGoldenCoordinatorCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the scale-0.02 landscape across a crash-recovered fleet")
	}
	seed := uint64(1)
	if env := os.Getenv("COOKIEWALK_CHAOS_SEED"); env != "" {
		if _, err := fmt.Sscanf(env, "%d", &seed); err != nil {
			t.Fatalf("COOKIEWALK_CHAOS_SEED=%q: %v", env, err)
		}
	}
	want, err := os.ReadFile("testdata/golden_all.txt")
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "fleet")
	const token = "fleet-chaos-secret"
	cfg := cookiewalk.Config{
		Seed: 42, Scale: 0.02, Reps: 2,
		Shards:        4,
		CheckpointDir: dir,
		Resume:        true,
		LeaseTTL:      500 * time.Millisecond,
		FleetToken:    token,
	}

	// Incarnation 1, on a listener whose address the restart will
	// reclaim (workers keep polling the same URL throughout).
	coord1 := cookiewalk.New(cfg)
	fc1, err := coord1.NewFleetCoordinator(t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	units := fc1.Status().Units
	if units < 2 {
		t.Fatalf("fleet too small to crash mid-way: %d units", units)
	}
	killAfter := 1 + int(seed%uint64(units-1))
	t.Logf("killing coordinator after %d of %d merges (seed %d)", killAfter, units, seed)

	// The middleware counts successful journal merges to find the
	// seed-derived kill point, and tracks in-flight requests so the
	// "crash" can wait for incarnation 1's handlers to actually stop
	// touching the directory (a real SIGKILL stops them instantly; an
	// in-process stand-in has to drain them).
	inner := fc1.Handler()
	var merges, inflight atomic.Int64
	killCh := make(chan struct{})
	srv1 := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inflight.Add(1)
		defer inflight.Add(-1)
		if r.Method == http.MethodPut && strings.HasPrefix(r.URL.Path, "/v1/journal") {
			rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
			inner.ServeHTTP(rec, r)
			if rec.code == http.StatusOK {
				if int(merges.Add(1)) == killAfter {
					close(killCh)
				}
			}
			return
		}
		inner.ServeHTTP(w, r)
	})}
	go srv1.Serve(ln)

	// Three workers, each behind its own seeded fault injector. They
	// are started before the crash and never restarted — surviving the
	// coordinator outage is their whole job.
	workerStudy := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2, FleetToken: token})
	var wg sync.WaitGroup
	workerErrs := make([]error, 3)
	for i := range workerErrs {
		tr := &distfault.Transport{
			Seed:    xrand.Mix64(seed, uint64(i)+7),
			Profile: distfault.DefaultProfile(),
		}
		client := &dist.Client{
			BaseURL:    "http://" + addr,
			Token:      token,
			HTTPClient: &http.Client{Transport: tr},
			Backoff:    10 * time.Millisecond,
			Seed:       xrand.Mix64(seed, uint64(i)),
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("chaos-w%d", i)
			workerErrs[i] = workerStudy.RunFleetWorkerWithClient(context.Background(), client, name, nil)
		}(i)
	}

	// The crash: at the kill point, drop the server without any
	// graceful coordinator shutdown — the fsynced ledger is all the
	// restart gets.
	select {
	case <-killCh:
	case <-time.After(120 * time.Second):
		t.Fatal("fleet never reached the kill point")
	}
	srv1.Close()
	for inflight.Load() != 0 {
		time.Sleep(time.Millisecond)
	}
	t.Logf("coordinator killed after %d merges; restarting on %s", merges.Load(), addr)

	// Incarnation 2: a fresh study (as a restarted process would
	// build), same checkpoint dir, same address.
	coord2 := cookiewalk.New(cfg)
	fc2, err := coord2.NewFleetCoordinator(t.Logf)
	if err != nil {
		saveFleetCrashArtifacts(t, seed, dir)
		t.Fatalf("coordinator restart: %v", err)
	}
	var ln2 net.Listener
	for deadline := time.Now().Add(10 * time.Second); ; {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv2 := &http.Server{Handler: fc2.Handler()}
	go srv2.Serve(ln2)
	defer srv2.Close()

	st := fc2.Status()
	if st.Incarnation != 2 {
		t.Fatalf("restart counted incarnation %d, want 2", st.Incarnation)
	}
	if st.Recovered < 1 {
		t.Fatalf("restart recovered %d merged ranges, want >= 1 (status %+v)", st.Recovered, st)
	}

	waitCtx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := fc2.Wait(waitCtx); err != nil {
		saveFleetCrashArtifacts(t, seed, dir)
		t.Fatalf("recovered fleet never completed: %v", err)
	}
	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			saveFleetCrashArtifacts(t, seed, dir)
			t.Fatalf("worker %d did not survive the coordinator crash: %v", i, err)
		}
	}
	st = fc2.Status()
	if st.Pending != 0 || st.Leased != 0 || st.Done != st.Units {
		t.Fatalf("fleet status = %+v", st)
	}

	got, err := coord2.Report(cookiewalk.ExpAll)
	if err != nil {
		saveFleetCrashArtifacts(t, seed, dir)
		t.Fatalf("post-recovery report: %v", err)
	}
	if got != string(want) {
		saveFleetCrashArtifacts(t, seed, dir)
	}
	firstDiff(t, "crash-recovered fleet report", got, string(want))

	// The landscape must have replayed from the merged journals, not
	// re-crawled.
	for _, res := range coord2.CachedLandscape().PerVP {
		if res.Stats.Fresh() != 0 {
			t.Errorf("VP %s re-crawled %d visits instead of replaying the recovered assembly", res.VP, res.Stats.Fresh())
		}
	}
}

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// saveFleetCrashArtifacts copies the assembly dir — merged journals
// plus the lease ledger — to COOKIEWALK_CHAOS_ARTIFACTS for CI upload
// on failure.
func saveFleetCrashArtifacts(t *testing.T, seed uint64, dir string) {
	t.Helper()
	root := os.Getenv("COOKIEWALK_CHAOS_ARTIFACTS")
	if root == "" {
		return
	}
	dst := filepath.Join(root, fmt.Sprintf("fleet-crash-seed-%d", seed))
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Logf("artifacts: %v", err)
		return
	}
	if err := os.CopyFS(filepath.Join(dst, "checkpoint"), os.DirFS(dir)); err != nil {
		t.Logf("artifacts: copy checkpoint: %v", err)
	}
	t.Logf("fleet-crash failure artifacts saved to %s", dst)
}
