package cookiewalk_test

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cookiewalk"
	"cookiewalk/internal/browser/faulttransport"
)

// visitChaosSeed returns the fault-schedule seed for the flaky-transport
// golden gate (CI pins it via COOKIEWALK_VISITCHAOS_SEED; default 1).
// The seed drives the injector only — the UNIVERSE seed stays 42, so
// every run must reproduce the same golden bytes.
func visitChaosSeed(t *testing.T) uint64 {
	t.Helper()
	seed := uint64(1)
	if env := os.Getenv("COOKIEWALK_VISITCHAOS_SEED"); env != "" {
		if _, err := fmt.Sscanf(env, "%d", &seed); err != nil {
			t.Fatalf("COOKIEWALK_VISITCHAOS_SEED=%q: %v", env, err)
		}
	}
	return seed
}

// visitChaosProfile is the background fault mix for the golden gates:
// every fault kind fires, at rates that hit thousands of requests per
// run, with the per-request cap left at its default of 2 — so a retry
// budget of 3 guarantees every request eventually succeeds.
func visitChaosProfile() faulttransport.Profile {
	return faulttransport.Profile{
		Timeout:  8,
		Reset:    8,
		Err503:   8,
		Truncate: 8,
		Stall:    4,
		StallFor: time.Millisecond,
	}
}

// visitChaosConfig arms the full resilience stack on the golden-test
// study: retries sized to out-last the injector's per-request cap,
// per-visit deadlines, a per-host limiter generous enough never to
// bind, and breakers that can only trip on retry exhaustion (which the
// cap makes impossible) — so every knob is active and none may change
// a single output byte.
func visitChaosConfig() cookiewalk.Config {
	return cookiewalk.Config{
		Seed: 42, Scale: 0.02, Reps: 2,
		VisitTimeout:      time.Minute,
		VisitRetries:      3,
		VisitRetryBackoff: time.Millisecond,
		PerHostRPS:        5000,
		PerHostBurst:      64,
		BreakerThreshold:  8,
	}
}

// TestGoldenFlakyTransport is the tentpole invariant of the resilient
// visit layer: the COMPLETE experiment report, produced over transport
// that injects timeouts, connection resets, 503s, truncated bodies and
// stalls into both transport seams, is byte-identical to
// testdata/golden_all.txt — the same snapshot the clean-transport
// golden test pins. Retries absorb every fault (the injector's
// per-request cap guarantees eventual success), the limiter and
// breakers stay out of the way, and the only admissible difference
// from a clean run is timing.
func TestGoldenFlakyTransport(t *testing.T) {
	seed := visitChaosSeed(t)
	want, err := os.ReadFile("testdata/golden_all.txt")
	if err != nil {
		t.Fatal(err)
	}

	var ft *faulttransport.Transport
	var retries atomic.Int64
	cfg := visitChaosConfig()
	cfg.WrapTransport = func(base http.RoundTripper) http.RoundTripper {
		rt, inj := faulttransport.Wrap(base, seed, visitChaosProfile())
		ft = inj
		return rt
	}
	cfg.Progress = func(p cookiewalk.Progress) {
		if p.Retries > retries.Load() {
			retries.Store(p.Retries)
		}
		if p.BreakerTrips > 0 || p.BreakerDenials > 0 {
			t.Errorf("%s: breaker activity (%d trips, %d denials) on a run where every request eventually succeeds",
				p.Label, p.BreakerTrips, p.BreakerDenials)
		}
	}

	study := cookiewalk.New(cfg)
	got, err := study.Report(cookiewalk.ExpAll)
	if err != nil {
		t.Fatal(err)
	}
	if inj := ft.Injected(); inj.Total() == 0 {
		t.Fatal("injector never fired — the chaos gate is vacuous")
	} else {
		t.Logf("seed %d: injected %d faults (%d timeouts, %d resets, %d 503s, %d truncates, %d stalls), %d retries observed",
			seed, inj.Total(), inj.Timeouts, inj.Resets, inj.Err503s, inj.Truncates, inj.Stalls, retries.Load())
	}
	if retries.Load() == 0 {
		t.Error("no retries surfaced in Progress despite injected faults")
	}
	diffGolden(t, got, string(want))
}

// TestGoldenFlakyCheckpointResume extends the gate across the
// journaling layer: a chaos run journals every campaign to a
// checkpoint dir and reports golden bytes; a second study then REPLAYS
// those journals over clean transport and must report the same bytes
// with zero fresh visits — records written under transport faults are
// exactly the records a clean run would have written.
func TestGoldenFlakyCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full scale-0.02 experiment suite twice")
	}
	seed := visitChaosSeed(t)
	want, err := os.ReadFile("testdata/golden_all.txt")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "chaos-ck")
	t.Cleanup(func() {
		if t.Failed() {
			saveVisitChaosArtifacts(t, seed, dir)
		}
	})

	cfg := visitChaosConfig()
	cfg.CheckpointDir = dir
	cfg.WrapTransport = func(base http.RoundTripper) http.RoundTripper {
		rt, _ := faulttransport.Wrap(base, seed, visitChaosProfile())
		return rt
	}
	got, err := cookiewalk.New(cfg).Report(cookiewalk.ExpAll)
	if err != nil {
		t.Fatal(err)
	}
	diffGolden(t, got, string(want))

	var replayed, fresh atomic.Int64
	rcfg := cookiewalk.Config{
		Seed: 42, Scale: 0.02, Reps: 2,
		CheckpointDir: dir,
		Resume:        true,
		Progress: func(p cookiewalk.Progress) {
			if p.Replayed > replayed.Load() {
				replayed.Store(p.Replayed)
			}
			if f := p.Done - p.Replayed; f > fresh.Load() {
				fresh.Store(f)
			}
		},
	}
	resumed, err := cookiewalk.New(rcfg).Report(cookiewalk.ExpAll)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Load() == 0 {
		t.Error("resume replayed nothing — the journals were not exercised")
	}
	if f := fresh.Load(); f != 0 {
		t.Errorf("resume crawled %d fresh visits; chaos-run journals should cover everything", f)
	}
	diffGolden(t, resumed, string(want))
}

// TestExhaustedRetriesSurfaceAsErrors covers the other half of the
// contract: a host that is down for good (every attempt faulted, no
// per-request cap) exhausts its retry budget and surfaces as an
// ordinary visit error — the campaign completes, nothing wedges, no
// corrupted result — and once the host's breaker trips, further visits
// fail fast with a circuit-open error while other hosts stay reachable.
func TestExhaustedRetriesSurfaceAsErrors(t *testing.T) {
	// A probe study (same seed/scale) supplies the deterministic target
	// list so the victim host is known before the real study is built.
	probe := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2})
	targets := probe.Targets()
	victim, healthy := targets[5], targets[6]

	cfg := cookiewalk.Config{
		Seed: 42, Scale: 0.02, Reps: 2,
		VisitRetries:      2,
		VisitRetryBackoff: time.Millisecond,
		BreakerThreshold:  2,
		BreakerCooldown:   time.Hour,
		WrapTransport: func(base http.RoundTripper) http.RoundTripper {
			rt, inj := faulttransport.Wrap(base, 99, faulttransport.Profile{
				Reset: 1000, MaxPerRequest: -1,
			})
			inj.Hosts = func(host string) bool { return host == victim }
			return rt
		},
	}
	study := cookiewalk.New(cfg)

	// Visits 1 and 2: retries exhaust, the error names the injected
	// fault and the give-up, and each exhaustion feeds the breaker.
	for i := 0; i < 2; i++ {
		_, err := study.Analyze("Germany", victim)
		if err == nil {
			t.Fatalf("visit %d of always-down host succeeded", i+1)
		}
		if !strings.Contains(err.Error(), "giving up after 3 attempts") ||
			!strings.Contains(err.Error(), "injected reset") {
			t.Fatalf("visit %d error does not surface the exhausted retry: %v", i+1, err)
		}
	}

	// Visit 3: the breaker (threshold 2) is open — fail fast.
	if _, err := study.Analyze("Germany", victim); err == nil {
		t.Fatal("visit through an open breaker succeeded")
	} else if !strings.Contains(err.Error(), "circuit open") {
		t.Fatalf("expected a circuit-open error, got: %v", err)
	}

	// Other hosts are untouched by the victim's breaker.
	rep, err := study.Analyze("Germany", healthy)
	if err != nil {
		t.Fatalf("healthy host failed alongside the victim: %v", err)
	}
	if rep.Domain != healthy {
		t.Fatalf("healthy report for %q, want %q", rep.Domain, healthy)
	}
}

// TestBreakerRecoversThroughHalfOpenProbe drives the breaker's full
// lifecycle end to end with retries armed: trip on exhausted retries,
// half-open probe after the cooldown whose OWN retries run inside the
// probe admission (a probe attempt must never be denied against its
// own claimed slot), re-open on probe failure, and recovery once the
// host heals. Regression for the probe/retry deadlock that permanently
// denied a host whenever a half-open probe failed transiently.
func TestBreakerRecoversThroughHalfOpenProbe(t *testing.T) {
	probe := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2})
	victim := probe.Targets()[5]

	const cooldown = 20 * time.Millisecond
	var down atomic.Bool
	down.Store(true)
	cfg := cookiewalk.Config{
		Seed: 42, Scale: 0.02, Reps: 2,
		VisitRetries:      2,
		VisitRetryBackoff: time.Millisecond,
		BreakerThreshold:  2,
		BreakerCooldown:   cooldown,
		WrapTransport: func(base http.RoundTripper) http.RoundTripper {
			rt, inj := faulttransport.Wrap(base, 99, faulttransport.Profile{
				Reset: 1000, MaxPerRequest: -1,
			})
			inj.Hosts = func(host string) bool { return host == victim && down.Load() }
			return rt
		},
	}
	study := cookiewalk.New(cfg)

	// Two exhausted-retry visits trip the breaker (threshold 2).
	for i := 0; i < 2; i++ {
		if _, err := study.Analyze("Germany", victim); err == nil ||
			!strings.Contains(err.Error(), "giving up after 3 attempts") {
			t.Fatalf("visit %d = %v, want retry exhaustion", i+1, err)
		}
	}

	// Cooldown elapsed, host still down: the half-open probe retries
	// within its own admission and exhausts — it must NOT fail fast
	// against its own probe slot, and the breaker must re-open, not
	// wedge.
	time.Sleep(2 * cooldown)
	if _, err := study.Analyze("Germany", victim); err == nil ||
		!strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("probe visit = %v, want retry exhaustion, not a self-denial", err)
	}

	// Host heals: after another cooldown the next probe succeeds, the
	// breaker closes, and the host stays reachable.
	down.Store(false)
	time.Sleep(2 * cooldown)
	for i := 0; i < 2; i++ {
		rep, err := study.Analyze("Germany", victim)
		if err != nil {
			t.Fatalf("post-recovery visit %d: %v", i+1, err)
		}
		if rep.Domain != victim {
			t.Fatalf("post-recovery report for %q, want %q", rep.Domain, victim)
		}
	}
}

// saveVisitChaosArtifacts copies the chaos run's checkpoint journals
// to COOKIEWALK_VISITCHAOS_ARTIFACTS for CI upload on failure — the
// seed fully determines the fault schedule, so the journals plus the
// seed reproduce the failure offline.
func saveVisitChaosArtifacts(t *testing.T, seed uint64, dir string) {
	t.Helper()
	root := os.Getenv("COOKIEWALK_VISITCHAOS_ARTIFACTS")
	if root == "" {
		return
	}
	dst := filepath.Join(root, fmt.Sprintf("visit-chaos-seed-%d", seed))
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Logf("artifacts: %v", err)
		return
	}
	if err := os.CopyFS(filepath.Join(dst, "checkpoint"), os.DirFS(dir)); err != nil {
		t.Logf("artifacts: copy checkpoint: %v", err)
	}
	t.Logf("visit-chaos failure artifacts saved to %s", dst)
}

// diffGolden reports the first divergent line between got and the
// golden snapshot (mirrors TestGoldenAllReport's failure output).
func diffGolden(t *testing.T, got, want string) {
	t.Helper()
	if got == want {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(want, "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("output diverges from golden at line %d:\n got: %q\nwant: %q",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("output length changed: got %d lines, want %d lines", len(gotLines), len(wantLines))
}
