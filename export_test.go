package cookiewalk

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestBuildDataset(t *testing.T) {
	s := testStudy(t)
	ds, err := s.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Targets != len(s.Targets()) {
		t.Fatalf("targets = %d", ds.Targets)
	}
	if len(ds.Table1) != 8 || len(ds.PerVP) != 8 {
		t.Fatalf("table1 = %d, perVP = %d", len(ds.Table1), len(ds.PerVP))
	}
	if len(ds.Walls) != 280 {
		t.Fatalf("walls = %d", len(ds.Walls))
	}
	for _, w := range ds.Walls {
		if w.Domain == "" || w.TLD == "" || w.PriceEUR <= 0 || w.Provider == "" {
			t.Fatalf("incomplete record: %+v", w)
		}
	}
	if ds.Accuracy.Detected != 285 {
		t.Fatalf("accuracy detected = %d", ds.Accuracy.Detected)
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	s := testStudy(t)
	var buf bytes.Buffer
	if err := s.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var ds Dataset
	if err := json.Unmarshal(buf.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds.Walls) != 280 || ds.Seed != 42 {
		t.Fatalf("round trip lost data: %d walls, seed %d", len(ds.Walls), ds.Seed)
	}
	// Spot-check a German SMP wall exists with its platform recorded.
	foundSMP := false
	for _, w := range ds.Walls {
		if w.Provider == "contentpass" && w.Language == "de" {
			foundSMP = true
			break
		}
	}
	if !foundSMP {
		t.Fatal("no contentpass wall in export")
	}
}

func TestExportWallsCSV(t *testing.T) {
	s := testStudy(t)
	var buf bytes.Buffer
	if err := s.ExportWallsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	records, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 281 { // header + 280 walls
		t.Fatalf("csv rows = %d", len(records))
	}
	// The CSV publishes every WallRecord field, in field order — the
	// same facts as the JSON release.
	wantHeader := []string{
		"domain", "tld", "language", "category", "embedding",
		"shadow_mode", "price_eur_month", "corpus_words",
		"has_accept", "has_subscribe", "provider", "toplists",
	}
	if got := strings.Join(records[0], ","); got != strings.Join(wantHeader, ",") {
		t.Fatalf("header = %v, want %v", records[0], wantHeader)
	}
	sawToplist := false
	for _, rec := range records[1:] {
		// Every row parses a positive price.
		if !strings.Contains(rec[6], ".") {
			t.Fatalf("price cell = %q", rec[6])
		}
		if rec[8] != "true" && rec[8] != "false" {
			t.Fatalf("has_accept cell = %q", rec[8])
		}
		if rec[9] != "true" && rec[9] != "false" {
			t.Fatalf("has_subscribe cell = %q", rec[9])
		}
		if rec[11] != "" {
			sawToplist = true
		}
	}
	if !sawToplist {
		t.Fatal("no row lists any toplist membership")
	}
}

// TestExportDeterminism pins the release-integrity guarantee: two
// independently built studies with identical Config produce
// byte-identical JSON and CSV exports, and re-exporting from one study
// is stable too. (This is where the unsorted toplist map iteration
// used to leak nondeterminism into the release files.)
func TestExportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a second scale-0.02 universe")
	}
	export := func(s *Study) (string, string) {
		var j, c bytes.Buffer
		if err := s.ExportJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := s.ExportWallsCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	s1 := testStudy(t)
	json1, csv1 := export(s1)
	json1b, csv1b := export(s1)
	if json1 != json1b || csv1 != csv1b {
		t.Fatal("re-export from the same study differs")
	}
	s2 := New(Config{Seed: 42, Scale: 0.02, Reps: 2})
	json2, csv2 := export(s2)
	if json1 != json2 {
		t.Fatal("independent studies exported different JSON")
	}
	if csv1 != csv2 {
		t.Fatal("independent studies exported different CSV")
	}
}
