package cookiewalk

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestBuildDataset(t *testing.T) {
	s := testStudy(t)
	ds, err := s.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Targets != len(s.Targets()) {
		t.Fatalf("targets = %d", ds.Targets)
	}
	if len(ds.Table1) != 8 || len(ds.PerVP) != 8 {
		t.Fatalf("table1 = %d, perVP = %d", len(ds.Table1), len(ds.PerVP))
	}
	if len(ds.Walls) != 280 {
		t.Fatalf("walls = %d", len(ds.Walls))
	}
	for _, w := range ds.Walls {
		if w.Domain == "" || w.TLD == "" || w.PriceEUR <= 0 || w.Provider == "" {
			t.Fatalf("incomplete record: %+v", w)
		}
	}
	if ds.Accuracy.Detected != 285 {
		t.Fatalf("accuracy detected = %d", ds.Accuracy.Detected)
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	s := testStudy(t)
	var buf bytes.Buffer
	if err := s.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var ds Dataset
	if err := json.Unmarshal(buf.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds.Walls) != 280 || ds.Seed != 42 {
		t.Fatalf("round trip lost data: %d walls, seed %d", len(ds.Walls), ds.Seed)
	}
	// Spot-check a German SMP wall exists with its platform recorded.
	foundSMP := false
	for _, w := range ds.Walls {
		if w.Provider == "contentpass" && w.Language == "de" {
			foundSMP = true
			break
		}
	}
	if !foundSMP {
		t.Fatal("no contentpass wall in export")
	}
}

func TestExportWallsCSV(t *testing.T) {
	s := testStudy(t)
	var buf bytes.Buffer
	if err := s.ExportWallsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	records, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 281 { // header + 280 walls
		t.Fatalf("csv rows = %d", len(records))
	}
	if records[0][0] != "domain" {
		t.Fatalf("header = %v", records[0])
	}
	// Every row parses a positive price.
	for _, rec := range records[1:] {
		if !strings.Contains(rec[6], ".") {
			t.Fatalf("price cell = %q", rec[6])
		}
	}
}
