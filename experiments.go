package cookiewalk

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"cookiewalk/internal/campaign"
	"cookiewalk/internal/measure"
	"cookiewalk/internal/report"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/vantage"
)

// Experiment identifies one reproducible artefact of the paper.
type Experiment string

// The paper's tables and figures, §3 accuracy, §4.1 prevalence, §4.4
// SMP summary and §4.5 bypass.
const (
	ExpTable1     Experiment = "table1"
	ExpFigure1    Experiment = "fig1"
	ExpFigure2    Experiment = "fig2"
	ExpFigure3    Experiment = "fig3"
	ExpFigure4    Experiment = "fig4"
	ExpFigure5    Experiment = "fig5"
	ExpFigure6    Experiment = "fig6"
	ExpAccuracy   Experiment = "accuracy"
	ExpPrevalence Experiment = "prevalence"
	ExpEmbeddings Experiment = "embeddings"
	ExpSMP        Experiment = "smp"
	ExpBypass     Experiment = "bypass"
	// Extensions: the §3/§5 discussion items implemented as experiments.
	ExpAblation   Experiment = "ablation"
	ExpAutoReject Experiment = "autoreject"
	ExpRevocation Experiment = "revocation"
	ExpBotCheck   Experiment = "botcheck"
	ExpAll        Experiment = "all"
)

// Experiments lists every runnable experiment id in report order.
func Experiments() []Experiment {
	return []Experiment{
		ExpTable1, ExpEmbeddings, ExpAccuracy, ExpPrevalence,
		ExpFigure1, ExpFigure2, ExpFigure3, ExpFigure4, ExpFigure5,
		ExpFigure6, ExpSMP, ExpBypass,
		ExpAblation, ExpAutoReject, ExpRevocation, ExpBotCheck,
	}
}

// buildRegistry declares the experiment DAG: the shared artefacts
// (landscape campaign, derived domain lists, the Figure-4 cookie
// campaign that Figure 6 reuses) and one node per experiment rendering
// its report section. Dependency edges mirror how the paper derives
// every analysis from one measurement campaign plus follow-up crawls.
func buildRegistry() map[string]*node {
	m := map[string]*node{}
	art := func(id string, deps []string, run func(ctx context.Context, s *Study) (any, error)) {
		m[id] = &node{id: id, deps: deps, run: run}
	}
	exp := func(e Experiment, deps []string, run func(ctx context.Context, s *Study) (string, error)) {
		m[string(e)] = &node{id: string(e), deps: deps, run: func(ctx context.Context, s *Study) (any, error) {
			return run(ctx, s)
		}}
	}

	// Artefacts.
	art(artLandscape, nil, func(ctx context.Context, s *Study) (any, error) {
		// The error can be non-nil for checkpointed crawls (journal
		// setup or I/O failure) or on cancellation; the landscape value
		// stays valid for inspection either way, so both are latched.
		l, err := s.crawler.Landscape(ctx, vantage.All(), s.reg.TargetList())
		return l, err
	})
	art(artGerman, []string{artLandscape}, func(ctx context.Context, s *Study) (any, error) {
		res, _ := s.landscapeArt(ctx).Result("Germany")
		return s.crawler.Verified(res.Cookiewalls), nil
	})
	art(artWalls, []string{artGerman}, func(ctx context.Context, s *Study) (any, error) {
		german := s.germanObservations(ctx)
		// Exact capacity: the artefact is shared by every consumer, and
		// a full backing array forces any appender (autoreject's sample
		// assembly) to reallocate instead of scribbling into the slice
		// the sibling campaigns crawl.
		walls := make([]string, 0, len(german))
		for _, o := range german {
			walls = append(walls, o.Domain)
		}
		sort.Strings(walls)
		return walls, nil
	})
	art(artSummary, []string{artLandscape, artGerman}, func(ctx context.Context, s *Study) (any, error) {
		return s.crawler.SummarizeRound(s.landscapeArt(ctx), s.germanObservations(ctx)), nil
	})
	art(artFig4, []string{artLandscape}, func(ctx context.Context, s *Study) (any, error) {
		vp, _ := vantage.ByName("Germany")
		f, err := s.crawler.RunFigure4(ctx, s.landscapeArt(ctx), vp, s.cfg.Reps, s.cfg.Seed)
		if err != nil {
			return measure.Figure4{}, err
		}
		return f, nil
	})

	// Experiments.
	exp(ExpTable1, []string{artLandscape}, func(ctx context.Context, s *Study) (string, error) {
		return report.Table1(s.crawler.Table1(s.landscapeArt(ctx))), nil
	})
	exp(ExpEmbeddings, []string{artGerman}, func(ctx context.Context, s *Study) (string, error) {
		return report.EmbeddingReport(s.germanObservations(ctx)), nil
	})
	exp(ExpAccuracy, []string{artLandscape}, func(ctx context.Context, s *Study) (string, error) {
		return report.AccuracyReport(s.crawler.Accuracy(s.landscapeArt(ctx), 1000, s.cfg.Seed)), nil
	})
	exp(ExpPrevalence, []string{artLandscape}, func(ctx context.Context, s *Study) (string, error) {
		l := s.landscapeArt(ctx)
		overall, top1k, perCountry := s.crawler.Prevalence(l)
		text := report.PrevalenceReport(overall, top1k, perCountry)
		text += report.BannerRatesReport(measure.RatesPerVP(l))
		return text, nil
	})
	exp(ExpFigure1, []string{artGerman}, func(ctx context.Context, s *Study) (string, error) {
		shares := measure.CategoryShares(s.germanObservations(ctx), synthweb.Categories)
		return report.Figure1(shares), nil
	})
	exp(ExpFigure2, []string{artGerman}, func(ctx context.Context, s *Study) (string, error) {
		return report.Figure2(measure.Prices(s.germanObservations(ctx))), nil
	})
	exp(ExpFigure3, []string{artGerman}, func(ctx context.Context, s *Study) (string, error) {
		return report.Figure3(measure.CategoryPrices(s.germanObservations(ctx))), nil
	})
	exp(ExpFigure4, []string{artFig4}, func(ctx context.Context, s *Study) (string, error) {
		f, err := s.figure4(ctx)
		if err != nil {
			return "", err
		}
		return report.Figure4(f), nil
	})
	exp(ExpFigure5, nil, func(ctx context.Context, s *Study) (string, error) {
		vp, _ := vantage.ByName("Germany")
		f, err := s.crawler.RunFigure5(ctx, vp, "contentpass", s.cfg.Reps)
		if err != nil {
			return "", err
		}
		return report.Figure5(f), nil
	})
	exp(ExpFigure6, []string{artFig4, artGerman}, func(ctx context.Context, s *Study) (string, error) {
		f, err := s.figure4(ctx)
		if err != nil {
			return "", err
		}
		corr, _, _ := measure.TrackingPriceCorrelation(s.germanObservations(ctx), f.Cookiewall)
		return report.Figure6(corr), nil
	})
	exp(ExpSMP, nil, func(ctx context.Context, s *Study) (string, error) {
		var b strings.Builder
		for _, p := range s.crawler.SMPSummary([]string{"contentpass", "freechoice"}) {
			b.WriteString(report.SMPReport(p.Platform, p.Partners, p.InTargets))
		}
		return b.String(), nil
	})
	exp(ExpBypass, []string{artWalls}, func(ctx context.Context, s *Study) (string, error) {
		vp, _ := vantage.ByName("Germany")
		bp, err := s.crawler.RunBypass(ctx, vp, s.wallDomains(ctx), s.cfg.Reps, DefaultBlocker())
		if err != nil {
			return "", err
		}
		return report.BypassReport(bp), nil
	})
	exp(ExpAblation, []string{artWalls}, func(ctx context.Context, s *Study) (string, error) {
		vp, _ := vantage.ByName("Germany")
		a, err := s.crawler.RunAblation(ctx, vp, s.wallDomains(ctx))
		if err != nil {
			return "", err
		}
		return report.AblationReport(a), nil
	})
	exp(ExpAutoReject, []string{artWalls, artLandscape}, func(ctx context.Context, s *Study) (string, error) {
		vp, _ := vantage.ByName("Germany")
		walls := s.wallDomains(ctx)
		// Assemble the sample in a fresh slice: walls is the shared
		// artefact the bypass/ablation/revocation campaigns crawl.
		sample := make([]string, 0, len(walls)+280)
		sample = append(sample, walls...)
		sample = append(sample, s.regularSample(ctx, 280)...)
		ar, err := s.crawler.RunAutoReject(ctx, vp, sample)
		if err != nil {
			return "", err
		}
		return report.AutoRejectReport(ar), nil
	})
	exp(ExpRevocation, []string{artWalls}, func(ctx context.Context, s *Study) (string, error) {
		vp, _ := vantage.ByName("Germany")
		r, err := s.crawler.RunRevocation(ctx, vp, s.wallDomains(ctx))
		if err != nil {
			return "", err
		}
		return report.RevocationReport(r), nil
	})
	exp(ExpBotCheck, []string{artLandscape}, func(ctx context.Context, s *Study) (string, error) {
		vp, _ := vantage.ByName("Germany")
		sample := s.regularSample(ctx, 1000)
		bc, err := s.crawler.RunBotCheck(ctx, vp, sample)
		if err != nil {
			return "", err
		}
		return report.BotCheckReport(bc), nil
	})
	return m
}

// Landscape runs (or returns the memoized) eight-VP crawl over all
// targets. Every experiment that needs detections shares it, exactly
// like the paper derives its analyses from one measurement campaign.
// The crawl's error, if any, is latched in the artefact store and
// surfaced by Report — the landscape itself stays valid for inspection
// either way.
func (s *Study) Landscape() *measure.Landscape {
	return s.landscapeArt(context.Background())
}

// landscapeArt resolves the landscape artefact, discarding any latched
// crawl error — callers are either DAG nodes running after resolveDeps
// already verified the artefact, or the inspection APIs (Landscape,
// CachedLandscape) whose documented contract is to hand back the
// possibly-partial campaign for post-mortem while Report/BuildDataset
// surface the error. The empty-landscape fallback only triggers when a
// WAITER is canceled before the crawl finishes; its dependent node
// then fails with the cancellation error before any result could
// latch.
func (s *Study) landscapeArt(ctx context.Context) *measure.Landscape {
	v, _ := s.resolve(ctx, artLandscape)
	if l, ok := v.(*measure.Landscape); ok && l != nil {
		return l
	}
	return &measure.Landscape{}
}

// landscapeError returns the latched landscape-crawl error, if any.
func (s *Study) landscapeError() error {
	if st := s.peek(artLandscape); st != nil {
		return st.err
	}
	return nil
}

// CachedLandscape returns the landscape campaign if one has already
// run, without triggering a crawl — e.g. to inspect per-shard visit and
// error accounting (VPResult.Stats) after a report.
func (s *Study) CachedLandscape() *measure.Landscape {
	st := s.peek(artLandscape)
	if st == nil {
		return nil
	}
	l, _ := st.value.(*measure.Landscape)
	return l
}

// germanObservations returns the verified cookiewall observations from
// the Germany VP — the reference population for Figures 1-3 and 6.
func (s *Study) germanObservations(ctx context.Context) []measure.Observation {
	v, _ := s.resolve(ctx, artGerman)
	obs, _ := v.([]measure.Observation)
	return obs
}

// figure4 returns the memoized §4.3 cookie experiment (Figure 6 reuses
// its tallies).
func (s *Study) figure4(ctx context.Context) (measure.Figure4, error) {
	v, err := s.resolve(ctx, artFig4)
	if err != nil {
		return measure.Figure4{}, err
	}
	return v.(measure.Figure4), nil
}

// wallDomains returns the verified cookiewall domains detected from
// Germany, sorted.
func (s *Study) wallDomains(ctx context.Context) []string {
	v, _ := s.resolve(ctx, artWalls)
	walls, _ := v.([]string)
	return walls
}

// regularSample returns up to n regular-banner domains (accept button
// present) from the Germany crawl.
func (s *Study) regularSample(ctx context.Context, n int) []string {
	res, _ := s.landscapeArt(ctx).Result("Germany")
	pool := res.RegularAcceptDomains
	if len(pool) > n {
		pool = pool[:n]
	}
	out := make([]string, len(pool))
	copy(out, pool)
	return out
}

// RoundSummary runs (or resumes) the landscape crawl and condenses it
// into the per-round aggregate bundle the continuous-measurement
// service (internal/trend, cmd/trendd) appends to its time-indexed
// store. Like ReportContext, a landscape failure — cancellation or a
// checkpoint journal error — fails the summary under the same stable
// wrapping: a round is either fully measured and durably journaled or
// it reports an error, never a silently partial aggregate.
func (s *Study) RoundSummary(ctx context.Context) (measure.RoundSummary, error) {
	v, err := s.resolve(ctx, artSummary)
	if lerr := s.landscapeError(); lerr != nil {
		return measure.RoundSummary{}, fmt.Errorf("cookiewalk: landscape crawl: %w", lerr)
	}
	if err != nil {
		return measure.RoundSummary{}, err
	}
	return v.(measure.RoundSummary), nil
}

// JournalDirs lists the checkpoint subdirectories (relative to
// Config.CheckpointDir) that an experiment's campaigns — its own and
// those of the artefacts it depends on — journal under, in the order
// they run. Experiments that only post-process the landscape inherit
// exactly the landscape's directories.
func JournalDirs(exp Experiment) []string {
	var labels []string
	add := func(ls ...string) {
		for _, l := range ls {
			found := false
			for _, have := range labels {
				if have == l {
					found = true
					break
				}
			}
			if !found {
				labels = append(labels, l)
			}
		}
	}
	for _, dep := range Dependencies(exp) {
		if dep == artLandscape {
			add(measure.LandscapeCampaignLabels()...)
		}
		if dep == artFig4 {
			add(measure.LabelFig4Regular, measure.LabelFig4Cookiewall)
		}
	}
	switch exp {
	case ExpFigure4:
		add(measure.LabelFig4Regular, measure.LabelFig4Cookiewall)
	case ExpFigure5:
		accept, subscribe := measure.Fig5Labels("contentpass")
		add(accept, subscribe)
	case ExpBypass:
		add(measure.LabelBypass)
	case ExpAblation:
		add(measure.LabelAblation)
	case ExpAutoReject:
		add(measure.LabelAutoReject)
	case ExpRevocation:
		add(measure.LabelRevocation)
	case ExpBotCheck:
		add(measure.LabelBotCheck)
	}
	dirs := make([]string, len(labels))
	for i, l := range labels {
		dirs[i] = campaign.PathLabel(l)
	}
	return dirs
}

// Report runs an experiment and renders its artefact as text —
// ReportContext with a background context; see there for scheduling,
// memoization and error semantics.
func (s *Study) Report(exp Experiment) (string, error) {
	return s.ReportContext(context.Background(), exp)
}
