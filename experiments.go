package cookiewalk

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"cookiewalk/internal/measure"
	"cookiewalk/internal/report"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/vantage"
)

// Experiment identifies one reproducible artefact of the paper.
type Experiment string

// The paper's tables and figures, §3 accuracy, §4.1 prevalence, §4.4
// SMP summary and §4.5 bypass.
const (
	ExpTable1     Experiment = "table1"
	ExpFigure1    Experiment = "fig1"
	ExpFigure2    Experiment = "fig2"
	ExpFigure3    Experiment = "fig3"
	ExpFigure4    Experiment = "fig4"
	ExpFigure5    Experiment = "fig5"
	ExpFigure6    Experiment = "fig6"
	ExpAccuracy   Experiment = "accuracy"
	ExpPrevalence Experiment = "prevalence"
	ExpEmbeddings Experiment = "embeddings"
	ExpSMP        Experiment = "smp"
	ExpBypass     Experiment = "bypass"
	// Extensions: the §3/§5 discussion items implemented as experiments.
	ExpAblation   Experiment = "ablation"
	ExpAutoReject Experiment = "autoreject"
	ExpRevocation Experiment = "revocation"
	ExpBotCheck   Experiment = "botcheck"
	ExpAll        Experiment = "all"
)

// Experiments lists every runnable experiment id in report order.
func Experiments() []Experiment {
	return []Experiment{
		ExpTable1, ExpEmbeddings, ExpAccuracy, ExpPrevalence,
		ExpFigure1, ExpFigure2, ExpFigure3, ExpFigure4, ExpFigure5,
		ExpFigure6, ExpSMP, ExpBypass,
		ExpAblation, ExpAutoReject, ExpRevocation, ExpBotCheck,
	}
}

// Landscape runs (or returns the cached) eight-VP crawl over all
// targets. Every experiment that needs detections shares it, exactly
// like the paper derives its analyses from one measurement campaign.
func (s *Study) Landscape() *measure.Landscape {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.landscape == nil {
		// The background context never cancels; the error can still be
		// non-nil for checkpointed crawls (journal setup or I/O failure).
		// It is latched here and surfaced by Report — the landscape
		// itself stays valid for inspection either way.
		s.landscape, s.landscapeErr = s.crawler.Landscape(context.Background(), vantage.All(), s.reg.TargetList())
	}
	return s.landscape
}

// landscapeError returns the latched landscape-crawl error, if any.
func (s *Study) landscapeError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.landscapeErr
}

// CachedLandscape returns the landscape campaign if one has already
// run, without triggering a crawl — e.g. to inspect per-shard visit and
// error accounting (VPResult.Stats) after a report.
func (s *Study) CachedLandscape() *measure.Landscape {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.landscape
}

// germanObservations returns verified cookiewall observations from the
// Germany VP — the reference population for Figures 1-3 and 6.
func (s *Study) germanObservations() []measure.Observation {
	l := s.Landscape()
	res, _ := l.Result("Germany")
	return s.crawler.Verified(res.Cookiewalls)
}

// figure4 caches the §4.3 cookie experiment (Figure 6 reuses its
// tallies).
func (s *Study) figure4() (measure.Figure4, error) {
	l := s.Landscape()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fig4 == nil {
		vp, _ := vantage.ByName("Germany")
		f, err := s.crawler.RunFigure4(context.Background(), l, vp, s.cfg.Reps, s.cfg.Seed)
		if err != nil {
			return measure.Figure4{}, err
		}
		s.fig4 = &f
	}
	return *s.fig4, nil
}

// Report runs an experiment and renders its artefact as text. For
// checkpointed studies a landscape journal failure fails the report:
// the numbers would be fine, but the durability the caller asked for
// is not, and silently continuing would let a later -resume replay a
// broken journal.
func (s *Study) Report(exp Experiment) (string, error) {
	text, err := s.report(exp)
	if err != nil {
		return "", err
	}
	if lerr := s.landscapeError(); lerr != nil {
		return "", fmt.Errorf("cookiewalk: landscape crawl: %w", lerr)
	}
	return text, nil
}

func (s *Study) report(exp Experiment) (string, error) {
	switch exp {
	case ExpTable1:
		return report.Table1(s.crawler.Table1(s.Landscape())), nil
	case ExpEmbeddings:
		return report.EmbeddingReport(s.germanObservations()), nil
	case ExpAccuracy:
		return report.AccuracyReport(s.crawler.Accuracy(s.Landscape(), 1000, s.cfg.Seed)), nil
	case ExpPrevalence:
		overall, top1k, perCountry := s.crawler.Prevalence(s.Landscape())
		text := report.PrevalenceReport(overall, top1k, perCountry)
		text += report.BannerRatesReport(measure.RatesPerVP(s.Landscape()))
		return text, nil
	case ExpFigure1:
		shares := measure.CategoryShares(s.germanObservations(), synthweb.Categories)
		return report.Figure1(shares), nil
	case ExpFigure2:
		return report.Figure2(measure.Prices(s.germanObservations())), nil
	case ExpFigure3:
		return report.Figure3(measure.CategoryPrices(s.germanObservations())), nil
	case ExpFigure4:
		f, err := s.figure4()
		if err != nil {
			return "", err
		}
		return report.Figure4(f), nil
	case ExpFigure5:
		vp, _ := vantage.ByName("Germany")
		f, err := s.crawler.RunFigure5(context.Background(), vp, "contentpass", s.cfg.Reps)
		if err != nil {
			return "", err
		}
		return report.Figure5(f), nil
	case ExpFigure6:
		f, err := s.figure4()
		if err != nil {
			return "", err
		}
		corr, _, _ := measure.TrackingPriceCorrelation(s.germanObservations(), f.Cookiewall)
		return report.Figure6(corr), nil
	case ExpSMP:
		return s.smpReport(), nil
	case ExpBypass:
		return s.bypassReport()
	case ExpAblation:
		vp, _ := vantage.ByName("Germany")
		a, err := s.crawler.RunAblation(context.Background(), vp, s.wallDomains())
		if err != nil {
			return "", err
		}
		return report.AblationReport(a), nil
	case ExpAutoReject:
		vp, _ := vantage.ByName("Germany")
		sample := append(s.wallDomains(), s.regularSample(280)...)
		ar, err := s.crawler.RunAutoReject(context.Background(), vp, sample)
		if err != nil {
			return "", err
		}
		return report.AutoRejectReport(ar), nil
	case ExpRevocation:
		vp, _ := vantage.ByName("Germany")
		r, err := s.crawler.RunRevocation(context.Background(), vp, s.wallDomains())
		if err != nil {
			return "", err
		}
		return report.RevocationReport(r), nil
	case ExpBotCheck:
		vp, _ := vantage.ByName("Germany")
		sample := s.regularSample(1000)
		bc, err := s.crawler.RunBotCheck(context.Background(), vp, sample)
		if err != nil {
			return "", err
		}
		return report.BotCheckReport(bc), nil
	case ExpAll:
		var b strings.Builder
		for _, e := range Experiments() {
			text, err := s.Report(e)
			if err != nil {
				return "", fmt.Errorf("cookiewalk: experiment %s: %w", e, err)
			}
			b.WriteString(text)
			b.WriteByte('\n')
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("cookiewalk: unknown experiment %q", exp)
	}
}

func (s *Study) smpReport() string {
	var b strings.Builder
	targets := map[string]bool{}
	for _, d := range s.reg.TargetList() {
		targets[d] = true
	}
	for _, platform := range []string{"contentpass", "freechoice"} {
		partners := s.reg.SMP.Partners(platform)
		inTargets := 0
		for _, p := range partners {
			if targets[p] {
				inTargets++
			}
		}
		b.WriteString(report.SMPReport(platform, len(partners), inTargets))
	}
	return b.String()
}

func (s *Study) bypassReport() (string, error) {
	vp, _ := vantage.ByName("Germany")
	bp, err := s.crawler.RunBypass(context.Background(), vp, s.wallDomains(), s.cfg.Reps, DefaultBlocker())
	if err != nil {
		return "", err
	}
	return report.BypassReport(bp), nil
}

// wallDomains returns the verified cookiewall domains detected from
// Germany, sorted.
func (s *Study) wallDomains() []string {
	var walls []string
	for _, o := range s.germanObservations() {
		walls = append(walls, o.Domain)
	}
	sort.Strings(walls)
	return walls
}

// regularSample returns up to n regular-banner domains (accept button
// present) from the Germany crawl.
func (s *Study) regularSample(n int) []string {
	res, _ := s.Landscape().Result("Germany")
	pool := res.RegularAcceptDomains
	if len(pool) > n {
		pool = pool[:n]
	}
	out := make([]string, len(pool))
	copy(out, pool)
	return out
}
