module cookiewalk

go 1.24
