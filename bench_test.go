// Benchmark harness: one benchmark per paper artefact, at full scale
// (45 222 targets). Each benchmark regenerates its table or figure the
// way the paper's analysis pipeline does — from one shared measurement
// campaign — and logs the artefact (visible with -v) so the rows and
// series can be compared against the paper directly.
//
// Run: go test -bench=. -benchmem
package cookiewalk_test

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"cookiewalk"
	"cookiewalk/internal/core"
	"cookiewalk/internal/measure"
	"cookiewalk/internal/vantage"
)

var (
	fullOnce  sync.Once
	fullStudy *cookiewalk.Study
)

// fullScale returns the shared full-scale study with the landscape
// campaign already run (the expensive one-time setup every analysis
// shares, like the paper's single crawl).
func fullScale(b *testing.B) *cookiewalk.Study {
	b.Helper()
	fullOnce.Do(func() {
		fullStudy = cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 1, Reps: 5})
		fullStudy.Landscape()
	})
	return fullStudy
}

// benchReport regenerates one artefact per iteration.
func benchReport(b *testing.B, exp cookiewalk.Experiment) {
	s := fullScale(b)
	b.ResetTimer()
	var text string
	for i := 0; i < b.N; i++ {
		var err error
		text, err = s.Report(exp)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + text)
}

// BenchmarkLandscapeCrawl measures the raw eight-VP campaign over all
// 45 222 targets (the input to Table 1 and Figures 1-3/6), running
// through the streaming campaign engine.
func BenchmarkLandscapeCrawl(b *testing.B) {
	s := fullScale(b)
	targets := s.Targets()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := s.Crawler().Landscape(context.Background(), vantage.All(), targets)
		if err != nil {
			b.Fatal(err)
		}
		if l.Targets != len(targets) {
			b.Fatal("crawl incomplete")
		}
	}
	// The crawl's scaling dimension: multi-core BENCH entries are keyed
	// by this value (see ROADMAP "Benchmarks"). Unlike the name's -N
	// suffix, the metric records the GOMAXPROCS the iterations actually
	// ran under — with `-benchtime 1x -cpu 1,4` the framework reuses
	// the probe run (executed at the LAST cpu value) for the first
	// entry, so suffix and truth can disagree; record each cpu value in
	// its own `go test` invocation when the numbers matter. Reported
	// after the loop — ResetTimer discards earlier metrics.
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkTable1 regenerates Table 1 (cookiewalls per vantage point).
func BenchmarkTable1(b *testing.B) { benchReport(b, cookiewalk.ExpTable1) }

// BenchmarkEmbeddings regenerates the §3 embedding split (76/132/72).
func BenchmarkEmbeddings(b *testing.B) { benchReport(b, cookiewalk.ExpEmbeddings) }

// BenchmarkAccuracy regenerates the §3 accuracy audit (98.2%).
func BenchmarkAccuracy(b *testing.B) { benchReport(b, cookiewalk.ExpAccuracy) }

// BenchmarkPrevalence regenerates the §4.1 rates (0.6%, 2.9%, 8.5%).
func BenchmarkPrevalence(b *testing.B) { benchReport(b, cookiewalk.ExpPrevalence) }

// BenchmarkFigure1 regenerates the category distribution.
func BenchmarkFigure1(b *testing.B) { benchReport(b, cookiewalk.ExpFigure1) }

// BenchmarkFigure2 regenerates the price heatmap and ECDF.
func BenchmarkFigure2(b *testing.B) { benchReport(b, cookiewalk.ExpFigure2) }

// BenchmarkFigure3 regenerates the category-price analysis.
func BenchmarkFigure3(b *testing.B) { benchReport(b, cookiewalk.ExpFigure3) }

// BenchmarkFigure4 measures the §4.3 cookie experiment end to end:
// 280 cookiewall + 280 regular sites × 5 repetitions, accept clicks,
// cookie counting — uncached, the full workload.
func BenchmarkFigure4(b *testing.B) {
	s := fullScale(b)
	l := s.Landscape()
	vp, _ := vantage.ByName("Germany")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := s.Crawler().RunFigure4(context.Background(), l, vp, 5, 42)
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Cookiewall) == 0 {
			b.Fatal("no cookiewall measurements")
		}
	}
}

// BenchmarkFigure5 measures the §4.4 SMP experiment end to end: all
// 219 contentpass partners × 5 repetitions × accept+subscribe.
func BenchmarkFigure5(b *testing.B) {
	s := fullScale(b)
	vp, _ := vantage.ByName("Germany")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := s.Crawler().RunFigure5(context.Background(), vp, "contentpass", 5)
		if err != nil {
			b.Fatal(err)
		}
		if f.Partners != 219 {
			b.Fatalf("partners = %d", f.Partners)
		}
	}
}

// BenchmarkFigure6 regenerates the tracking-vs-price correlation.
func BenchmarkFigure6(b *testing.B) { benchReport(b, cookiewalk.ExpFigure6) }

// BenchmarkSMP regenerates the §4.4 partner summary.
func BenchmarkSMP(b *testing.B) { benchReport(b, cookiewalk.ExpSMP) }

// BenchmarkBypass measures the §4.5 ad-blocker experiment end to end:
// 280 cookiewalls × 5 repetitions with filter lists active.
func BenchmarkBypass(b *testing.B) { benchReport(b, cookiewalk.ExpBypass) }

// BenchmarkAblation measures the detection-ablation study (280 walls
// re-analyzed under four pipeline configurations).
func BenchmarkAblation(b *testing.B) { benchReport(b, cookiewalk.ExpAblation) }

// BenchmarkAutoReject measures the §5 auto-reject experiment.
func BenchmarkAutoReject(b *testing.B) { benchReport(b, cookiewalk.ExpAutoReject) }

// BenchmarkRevocation measures the §5 revocation experiment
// (accept → revisit → delete cookies → revisit, 280 sites).
func BenchmarkRevocation(b *testing.B) { benchReport(b, cookiewalk.ExpRevocation) }

var (
	smallOnce  sync.Once
	smallStudy *cookiewalk.Study
)

// smallScale returns a shared small study for focused hot-path
// benchmarks: cheap setup (CI runs these with -benchtime 1x as a
// bit-rot smoke test), identical per-visit work.
func smallScale(b *testing.B) *cookiewalk.Study {
	b.Helper()
	smallOnce.Do(func() {
		smallStudy = cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2})
	})
	return smallStudy
}

// BenchmarkVisit measures the campaign's per-visit unit of work on the
// crawl hot path, in both memo states:
//
//   - cookiewall/regular run with the analysis cache DISABLED: the full
//     fetch-parse-detect-classify pipeline of a memo miss, directly
//     comparable to the pre-PR3 per-visit numbers;
//   - cached-repeat runs the default memoizing path on a warm cache —
//     the steady-state cost of the 2nd..8th vantage point loading an
//     identical render (fetch + fingerprint lookup, no parse).
func BenchmarkVisit(b *testing.B) {
	s := smallScale(b)
	vp, _ := vantage.ByName("Germany")
	noMemo := measure.New(s.Crawler().Reg, s.Transport())
	noMemo.NoAnalysisCache = true
	wall := s.CookiewallDomains()[0]
	for _, bc := range []struct {
		name, domain string
		crawler      *measure.Crawler
	}{
		{"cookiewall", wall, noMemo},
		{"regular", regularDomain(b, s), noMemo},
		{"cached-repeat", wall, s.Crawler()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			c := bc.crawler
			c.Visit(context.Background(), vp, bc.domain, measure.VisitOpts{}) // warm render + analysis caches
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if o := c.Visit(context.Background(), vp, bc.domain, measure.VisitOpts{}); o.Err != "" {
					b.Fatal(o.Err)
				}
			}
		})
	}
}

// regularDomain finds a reachable site showing a regular banner.
func regularDomain(b *testing.B, s *cookiewalk.Study) string {
	b.Helper()
	vp, _ := vantage.ByName("Germany")
	c := s.Crawler()
	for _, d := range s.Targets() {
		if o := c.Visit(context.Background(), vp, d, measure.VisitOpts{}); o.Err == "" && o.Kind == core.KindRegular {
			return d
		}
	}
	b.Fatal("no regular-banner site found")
	return ""
}

// BenchmarkReportAll measures the COMPLETE study — universe
// generation, the eight-VP landscape and every follow-up experiment
// campaign, rendered end to end — under the serial schedule
// (ExperimentParallelism 1, the pre-DAG execution order) and the
// concurrent one (one slot per core, campaigns sharing the worker
// budget). Each iteration builds a fresh study: artefacts are memoized
// per Study, so reusing one would only measure the cache. Outputs are
// byte-identical across sub-benchmarks (pinned by
// TestSchedulerDeterminismAcrossParallelism); only wall clock may
// differ, and only on multi-core runs.
func BenchmarkReportAll(b *testing.B) {
	for _, bc := range []struct {
		name string
		par  int
	}{
		{"serial", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := cookiewalk.New(cookiewalk.Config{
					Seed: 42, Scale: 0.02, Reps: 2, ExperimentParallelism: bc.par,
				})
				out, err := s.Report(cookiewalk.ExpAll)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) == 0 {
					b.Fatal("empty report")
				}
			}
		})
	}
}

// BenchmarkSingleVisit measures one stateless site visit including
// detection — the crawl's unit of work.
func BenchmarkSingleVisit(b *testing.B) {
	s := fullScale(b)
	domain := s.CookiewallDomains()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Analyze("Germany", domain); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectHTML measures the detector alone on a static page.
func BenchmarkDetectHTML(b *testing.B) {
	page := `<html><body><main><p>Nachrichten über Politik und Sport.</p></main>
	<div class="cw-overlay" role="dialog" style="position:fixed;top:20%">
	<p>Werbefrei im Abo für nur 2,99 € pro Monat oder mit Cookies akzeptieren.</p>
	<button>Alle akzeptieren</button><button>Jetzt abonnieren</button></div></body></html>`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := cookiewalk.DetectInHTML(page)
		if rep.BannerKind != "cookiewall" {
			b.Fatal("detection failed")
		}
	}
}

// BenchmarkGenerateUniverse measures full-scale registry generation.
func BenchmarkGenerateUniverse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := cookiewalk.New(cookiewalk.Config{Seed: uint64(i + 1), Scale: 1})
		if len(s.Targets()) != 45222 {
			b.Fatalf("targets = %d", len(s.Targets()))
		}
	}
}
