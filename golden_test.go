package cookiewalk_test

import (
	"os"
	"strings"
	"testing"

	"cookiewalk"
)

// TestGoldenAllReport pins the COMPLETE experiment output at seed 42 /
// scale 0.02 / reps 2 against a checked-in snapshot. Any change to the
// universe generator, the crawler, the detector, the statistics or the
// renderers shows up as a diff here — the determinism guarantee the
// whole reproduction rests on.
//
// Regenerate deliberately after intended changes:
//
//	go run ./cmd/cookiewalk -exp all -scale 0.02 -reps 2 2>/dev/null > testdata/golden_all.txt
func TestGoldenAllReport(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_all.txt")
	if err != nil {
		t.Fatal(err)
	}
	study := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2})
	got, err := study.Report(cookiewalk.ExpAll)
	if err != nil {
		t.Fatal(err)
	}
	if got == string(want) {
		return
	}
	// Locate the first divergent line for a useful failure message.
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("output diverges at line %d:\n got: %q\nwant: %q",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("output length changed: got %d lines, want %d lines",
		len(gotLines), len(wantLines))
}
