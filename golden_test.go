package cookiewalk_test

import (
	"flag"
	"os"
	"strings"
	"testing"

	"cookiewalk"
)

// update regenerates golden snapshots instead of diffing against them:
//
//	go test -run TestGoldenAllReport -update .
var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestGoldenAllReport pins the COMPLETE experiment output at seed 42 /
// scale 0.02 / reps 2 against a checked-in snapshot. Any change to the
// universe generator, the crawler, the detector, the statistics or the
// renderers shows up as a diff here — the determinism guarantee the
// whole reproduction rests on.
//
// After an INTENDED output change, regenerate deliberately with
// `go test -run TestGoldenAllReport -update .` and review the diff of
// testdata/golden_all.txt in the commit.
func TestGoldenAllReport(t *testing.T) {
	study := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2})
	got, err := study.Report(cookiewalk.ExpAll)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile("testdata/golden_all.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden_all.txt updated")
		return
	}
	want, err := os.ReadFile("testdata/golden_all.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got == string(want) {
		return
	}
	// Locate the first divergent line for a useful failure message.
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("output diverges at line %d (run with -update after intended changes):\n got: %q\nwant: %q",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("output length changed: got %d lines, want %d lines",
		len(gotLines), len(wantLines))
}

// TestGoldenReportAnalysisCacheOnOff pins the tentpole invariant of
// the analysis memo: the COMPLETE experiment output is byte-identical
// with the content-fingerprint analysis cache enabled (default) and
// disabled (NoAnalysisCache), and both match the golden snapshot. A
// VP-dependence leak into the memoized pipeline, a fingerprint
// collision, or a shared-slice mutation would each surface as a diff
// here.
func TestGoldenReportAnalysisCacheOnOff(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full scale-0.02 experiment twice")
	}
	on := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2})
	off := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2, NoAnalysisCache: true})
	gotOn, err := on.Report(cookiewalk.ExpAll)
	if err != nil {
		t.Fatal(err)
	}
	gotOff, err := off.Report(cookiewalk.ExpAll)
	if err != nil {
		t.Fatal(err)
	}
	if gotOn != gotOff {
		onLines, offLines := strings.Split(gotOn, "\n"), strings.Split(gotOff, "\n")
		for i := 0; i < len(onLines) && i < len(offLines); i++ {
			if onLines[i] != offLines[i] {
				t.Fatalf("cache-on output diverges from cache-off at line %d:\n  on: %q\n off: %q",
					i+1, onLines[i], offLines[i])
			}
		}
		t.Fatalf("cache-on/off outputs differ in length: %d vs %d lines", len(onLines), len(offLines))
	}
	want, err := os.ReadFile("testdata/golden_all.txt")
	if err != nil {
		t.Fatal(err)
	}
	if gotOn != string(want) {
		t.Fatal("cache-on/off outputs agree with each other but not with the golden snapshot")
	}
}
