package cookiewalk_test

import (
	"flag"
	"os"
	"strings"
	"testing"

	"cookiewalk"
)

// update regenerates golden snapshots instead of diffing against them:
//
//	go test -run TestGoldenAllReport -update .
var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestGoldenAllReport pins the COMPLETE experiment output at seed 42 /
// scale 0.02 / reps 2 against a checked-in snapshot. Any change to the
// universe generator, the crawler, the detector, the statistics or the
// renderers shows up as a diff here — the determinism guarantee the
// whole reproduction rests on.
//
// After an INTENDED output change, regenerate deliberately with
// `go test -run TestGoldenAllReport -update .` and review the diff of
// testdata/golden_all.txt in the commit.
func TestGoldenAllReport(t *testing.T) {
	study := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2})
	got, err := study.Report(cookiewalk.ExpAll)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile("testdata/golden_all.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden_all.txt updated")
		return
	}
	want, err := os.ReadFile("testdata/golden_all.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got == string(want) {
		return
	}
	// Locate the first divergent line for a useful failure message.
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("output diverges at line %d (run with -update after intended changes):\n got: %q\nwant: %q",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("output length changed: got %d lines, want %d lines",
		len(gotLines), len(wantLines))
}
