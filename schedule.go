package cookiewalk

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// The experiment DAG scheduler. Every artefact of the study — the
// landscape campaign, derived domain lists, follow-up campaign
// results, and each experiment's rendered report section — is a node
// in a registry declaring the artefacts it consumes. Report,
// ReportContext and BuildDataset resolve the nodes they need; each
// node runs at most once per Study (its result is memoized in the
// study-wide store, replacing the old ad-hoc s.landscape/s.fig4 mutex
// fields), independent nodes run concurrently up to
// Config.ExperimentParallelism, and dependencies are awaited before a
// node claims a parallelism slot, so the scheduler can never deadlock
// on its own semaphore.
//
// Determinism invariant: every node's artefact is a pure function of
// its declared inputs and the study seed — never of scheduling — so
// the assembled report is byte-identical for any parallelism level
// (pinned by TestSchedulerDeterminismAcrossParallelism against the
// golden snapshot).

// Artefact node ids (experiment nodes use their Experiment id).
const (
	artLandscape = "landscape"
	artGerman    = "german"
	artWalls     = "wallDomains"
	artFig4      = "fig4cookies"
	// artSummary is the per-round aggregate bundle the continuous-
	// measurement service stores and serves (Study.RoundSummary).
	artSummary = "roundSummary"
)

// node is one vertex of the experiment DAG.
type node struct {
	id string
	// deps lists every artefact the run func consumes. The scheduler
	// resolves them BEFORE the node takes a parallelism slot; a run
	// func must never touch an undeclared artefact (under
	// ExperimentParallelism 1 that would self-deadlock — which is
	// exactly how the test suite catches a missing declaration).
	deps []string
	run  func(ctx context.Context, s *Study) (any, error)
}

// nodeState is one node's slot in the study-wide artefact store. The
// first resolver becomes the runner; everyone else waits on done.
// value and err are written once, before done closes, and latched for
// the lifetime of the Study.
type nodeState struct {
	done  chan struct{}
	value any
	err   error
}

// resolve returns the memoized artefact of a registry node, running it
// (and, transitively, its dependencies) on first demand. Concurrent
// resolvers of the same node share one execution. A waiter whose ctx
// is canceled returns early; the runner keeps going under ITS ctx and
// latches whatever it produces.
func (s *Study) resolve(ctx context.Context, id string) (any, error) {
	n, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("cookiewalk: unknown artefact %q", id)
	}
	s.mu.Lock()
	st, running := s.nodes[id]
	if !running {
		st = &nodeState{done: make(chan struct{})}
		s.nodes[id] = st
	}
	s.mu.Unlock()
	if running {
		// A completed artefact always wins over a canceled waiter: the
		// two-channel select below picks RANDOMLY when both are ready,
		// and honoring cancellation for an already-latched node would
		// hand a nil value to accessors that discard the error (a node
		// body re-reading a dependency resolveDeps already proved done
		// must never see anything but the memoized result).
		select {
		case <-st.done:
			return st.value, st.err
		default:
		}
		select {
		case <-st.done:
			return st.value, st.err
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
	st.value, st.err = s.runNode(ctx, n)
	close(st.done)
	return st.value, st.err
}

// runNode resolves a node's dependencies (concurrently), then runs its
// body under an experiment-parallelism slot. Slots are held only while
// the body runs — never while waiting on dependencies — so any
// parallelism level schedules the full DAG.
func (s *Study) runNode(ctx context.Context, n *node) (any, error) {
	if err := s.resolveDeps(ctx, n.deps); err != nil {
		return nil, err
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
	defer func() { <-s.sem }()
	return n.run(ctx, s)
}

func (s *Study) resolveDeps(ctx context.Context, deps []string) error {
	if len(deps) == 0 {
		return nil
	}
	errs := make([]error, len(deps))
	var wg sync.WaitGroup
	for i, dep := range deps {
		wg.Add(1)
		go func(i int, dep string) {
			defer wg.Done()
			_, errs[i] = s.resolve(ctx, dep)
		}(i, dep)
	}
	wg.Wait()
	// Any dependency error — cancellation, a campaign failure, or the
	// landscape's latched crawl error — fails the dependent: a failed
	// landscape may be PARTIAL (cancellation aborts remaining vantage
	// points, a journal setup failure aborts mid-crawl), and computing
	// campaigns over partial target sets would waste work and write
	// journals keyed to wrong targets, only for assembly to discard
	// everything anyway. Assembly still reports the landscape error
	// once, under its own stable wrapping.
	for i := range deps {
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// peek returns a completed node's state without triggering a run (nil
// when the node never ran or is still running).
func (s *Study) peek(id string) *nodeState {
	s.mu.Lock()
	st := s.nodes[id]
	s.mu.Unlock()
	if st == nil {
		return nil
	}
	select {
	case <-st.done:
		return st
	default:
		return nil
	}
}

// registry is the experiment DAG, built once at init (assigned there
// rather than in the var initializer: node run funcs call resolve,
// which reads registry — a false initialization cycle to the
// compiler).
var registry map[string]*node

func init() { registry = buildRegistry() }

// expandExperiments validates a requested experiment list, expands
// ExpAll, dedupes, and returns the set in fixed Experiments() order —
// the order report sections are assembled in, independent of request
// order and scheduling.
func expandExperiments(exps []Experiment) ([]Experiment, error) {
	if len(exps) == 0 {
		return nil, fmt.Errorf("cookiewalk: no experiments requested")
	}
	known := make(map[Experiment]bool, len(Experiments()))
	for _, e := range Experiments() {
		known[e] = true
	}
	want := map[Experiment]bool{}
	for _, e := range exps {
		if e == ExpAll {
			for _, all := range Experiments() {
				want[all] = true
			}
			continue
		}
		if !known[e] {
			return nil, fmt.Errorf("cookiewalk: unknown experiment %q", e)
		}
		want[e] = true
	}
	var set []Experiment
	for _, e := range Experiments() {
		if want[e] {
			set = append(set, e)
		}
	}
	return set, nil
}

// ParseExperiments parses a comma-separated experiment list
// ("table1,bypass,smp"; "all" expands to every experiment) and
// validates each id against the registry. Whitespace around ids is
// ignored.
func ParseExperiments(list string) ([]Experiment, error) {
	var exps []Experiment
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return nil, fmt.Errorf("cookiewalk: empty experiment id in %q", list)
		}
		exps = append(exps, Experiment(f))
	}
	if _, err := expandExperiments(exps); err != nil {
		return nil, err
	}
	return exps, nil
}

// Dependencies returns an experiment's artefact dependencies,
// transitively, in topological order (every artefact listed after the
// artefacts it consumes). An experiment with no dependencies returns
// nil.
func Dependencies(exp Experiment) []string {
	n, ok := registry[string(exp)]
	if !ok {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	var walk func(deps []string)
	walk = func(deps []string) {
		for _, dep := range deps {
			if seen[dep] {
				continue
			}
			seen[dep] = true
			if d, ok := registry[dep]; ok {
				walk(d.deps)
			}
			out = append(out, dep)
		}
	}
	walk(n.deps)
	return out
}

// ReportContext runs one or more experiments — ExpAll expands to every
// experiment — and assembles their report sections in fixed
// Experiments() order. Independent experiments (and the campaigns
// behind them) are scheduled concurrently up to
// Config.ExperimentParallelism, sharing one campaign worker budget;
// the assembled output is byte-identical for any parallelism level.
//
// Canceling ctx aborts every in-flight campaign promptly. Artefacts
// are memoized per Study, including failures: after a canceled or
// failed run, later reports on the same Study return the latched
// error — build a fresh Study (with Config.Resume to continue
// checkpointed campaigns) to retry.
//
// For checkpointed studies a campaign journal failure fails the
// report: the numbers would be fine, but the durability the caller
// asked for is not, and silently continuing would let a later -resume
// replay a broken journal.
func (s *Study) ReportContext(ctx context.Context, exps ...Experiment) (string, error) {
	set, err := expandExperiments(exps)
	if err != nil {
		return "", err
	}
	// One experiment (after dedup, and not via ExpAll) renders its raw
	// section; any larger request joins sections with a separating
	// newline. Computed from the deduped set so "table1,table1" is
	// byte-identical to "table1".
	single := len(set) == 1
	for _, e := range exps {
		if e == ExpAll {
			single = false
		}
	}
	texts := make([]string, len(set))
	errs := make([]error, len(set))
	var wg sync.WaitGroup
	for i, e := range set {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			v, err := s.resolve(ctx, string(e))
			if err != nil {
				errs[i] = err
				return
			}
			texts[i] = v.(string)
		}(i, e)
	}
	wg.Wait()
	// One latched-error check for the whole assembly (the landscape's
	// journal error used to be re-checked and re-wrapped by every
	// sub-experiment of ExpAll); the first failing experiment in fixed
	// report order decides the error, so its text is stable for any
	// scheduling.
	if lerr := s.landscapeError(); lerr != nil {
		return "", fmt.Errorf("cookiewalk: landscape crawl: %w", lerr)
	}
	for i, e := range set {
		if errs[i] != nil {
			return "", fmt.Errorf("cookiewalk: experiment %s: %w", e, errs[i])
		}
	}
	if single {
		return texts[0], nil
	}
	var b strings.Builder
	for _, t := range texts {
		b.WriteString(t)
		b.WriteByte('\n')
	}
	return b.String(), nil
}
