package cookiewalk_test

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cookiewalk"
	"cookiewalk/internal/campaign/dist"
)

// TestFleetGoldenWithKilledWorker is the PR-6 acceptance test: a
// coordinator plus three in-process workers run the distributed
// landscape crawl, a fourth "worker" is killed mid-lease — it claims a
// range and then goes silent, exactly the journal-visible state a
// SIGKILL leaves — and the coordinator re-leases the lost range after
// its TTL. The report assembled from the shipped journals must be
// byte-identical to testdata/golden_all.txt, the golden snapshot of an
// uninterrupted single-machine run.
func TestFleetGoldenWithKilledWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the scale-0.02 landscape across a worker fleet")
	}
	want, err := os.ReadFile("testdata/golden_all.txt")
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "fleet")
	coordCfg := cookiewalk.Config{
		Seed: 42, Scale: 0.02, Reps: 2,
		Shards:        4,
		CheckpointDir: dir,
		// Coordinator mode reports off the assembled journals.
		Resume: true,
		// Short TTL so the killed worker's range re-leases within the
		// test's patience; the real workers heartbeat at TTL/3 and are
		// never at risk.
		LeaseTTL: 300 * time.Millisecond,
	}
	coordStudy := cookiewalk.New(coordCfg)
	fc, err := coordStudy.NewFleetCoordinator(t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(fc.Handler())
	defer srv.Close()

	// The doomed worker: claims a lease, then is "SIGKILLed" — no
	// heartbeat, no journal, ever.
	client := &dist.Client{BaseURL: srv.URL}
	reply, err := client.Lease(context.Background(), "doomed")
	if err != nil || reply.Lease == nil {
		t.Fatalf("doomed worker got no lease: %+v, %v", reply, err)
	}
	t.Logf("killed worker held lease %s (%s shard %d [%d,%d))",
		reply.Lease.ID, reply.Lease.Label, reply.Lease.Shard, reply.Lease.Lo, reply.Lease.Hi)

	// Three live workers share one worker-side study (the crawler is
	// concurrency-safe); a real fleet would run one per machine, each
	// generating the same universe from the same seed.
	workerStudy := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2})
	var wg sync.WaitGroup
	workerErrs := make([]error, 3)
	names := []string{"w0", "w1", "w2"}
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = workerStudy.RunFleetWorker(context.Background(), srv.URL, names[i], nil)
		}(i)
	}
	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %s: %v", names[i], err)
		}
	}

	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := fc.Wait(waitCtx); err != nil {
		t.Fatalf("fleet never completed: %v", err)
	}
	st := fc.Status()
	if st.Pending != 0 || st.Leased != 0 || st.Done != st.Units {
		t.Fatalf("fleet status = %+v", st)
	}
	if st.Expired < 1 {
		t.Fatalf("killed worker's lease never expired (status %+v)", st)
	}

	got, err := coordStudy.Report(cookiewalk.ExpAll)
	if err != nil {
		t.Fatalf("post-merge report: %v", err)
	}
	firstDiff(t, "fleet report", got, string(want))

	// The landscape must have replayed from the shipped journals, not
	// re-crawled.
	replayed := int64(0)
	for _, res := range coordStudy.CachedLandscape().PerVP {
		replayed += res.Stats.Replayed
		if res.Stats.Fresh() != 0 {
			t.Errorf("VP %s re-crawled %d visits instead of replaying shipped journals", res.VP, res.Stats.Fresh())
		}
	}
	if replayed == 0 {
		t.Fatal("landscape replayed nothing from the assembled journals")
	}
}

// TestFleetWorkerRefusesForeignUniverse: a worker with a different
// seed or scale computes a different targets hash and must refuse the
// coordinator's campaigns outright instead of shipping alien journals.
func TestFleetWorkerRefusesForeignUniverse(t *testing.T) {
	if testing.Short() {
		t.Skip("generates two universes")
	}
	dir := filepath.Join(t.TempDir(), "fleet")
	coordStudy := cookiewalk.New(cookiewalk.Config{
		Seed: 42, Scale: 0.01, Reps: 1, CheckpointDir: dir, Resume: true,
	})
	fc, err := coordStudy.NewFleetCoordinator(nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(fc.Handler())
	defer srv.Close()

	foreign := cookiewalk.New(cookiewalk.Config{Seed: 43, Scale: 0.01, Reps: 1})
	if err := foreign.RunFleetWorker(context.Background(), srv.URL, "stranger", nil); err == nil {
		t.Fatal("worker for a different universe joined the fleet")
	}
	if st := fc.Status(); st.Done != 0 {
		t.Fatalf("foreign worker completed work: %+v", st)
	}
}
