package cookiewalk

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"cookiewalk/internal/measure"
	"cookiewalk/internal/vantage"
)

// The paper publishes its raw data alongside the tooling
// (doi 10.17617/3.TREBZR). This file is the equivalent release path:
// machine-readable exports of the measurement campaign.
//
// Exports are DETERMINISTIC: two studies built from the same Config
// produce byte-identical JSON and CSV, independent of map iteration
// order, worker count or shard count — diffing two release files is a
// meaningful integrity check.

// WallRecord is one verified cookiewall observation in the data
// release.
type WallRecord struct {
	Domain     string   `json:"domain"`
	TLD        string   `json:"tld"`
	Language   string   `json:"language"`
	Category   string   `json:"category"`
	Embedding  string   `json:"embedding"`
	ShadowMode string   `json:"shadow_mode,omitempty"`
	PriceEUR   float64  `json:"price_eur_month"`
	Words      []string `json:"corpus_words"`
	HasAccept  bool     `json:"has_accept"`
	HasSub     bool     `json:"has_subscribe"`
	Provider   string   `json:"provider"`
	OnToplists []string `json:"toplists"`
}

// VPSummary is a per-vantage-point campaign summary.
type VPSummary struct {
	VP          string `json:"vp"`
	Visited     int    `json:"visited"`
	Errors      int    `json:"errors"`
	NoBanner    int    `json:"no_banner"`
	Regular     int    `json:"regular_banners"`
	Cookiewalls int    `json:"cookiewalls_raw"`
	Verified    int    `json:"cookiewalls_verified"`
}

// Dataset is the full machine-readable release.
type Dataset struct {
	Seed      uint64              `json:"seed"`
	Scale     float64             `json:"scale"`
	Reps      int                 `json:"reps"`
	Targets   int                 `json:"targets"`
	Table1    []measure.Table1Row `json:"table1"`
	PerVP     []VPSummary         `json:"per_vp"`
	Walls     []WallRecord        `json:"cookiewalls"`
	Accuracy  measure.Accuracy    `json:"accuracy"`
	BlockRate float64             `json:"adblock_block_rate,omitempty"`
}

// BuildDataset assembles the release from the memoized campaign
// artefacts (resolving them through the experiment DAG store on first
// use). A failed or canceled landscape crawl fails the build: the
// latched artefact may be PARTIAL, and a data release must never
// silently truncate (the error mirrors what Report surfaces).
func (s *Study) BuildDataset() (Dataset, error) {
	ctx := context.Background()
	l := s.landscapeArt(ctx)
	if err := s.landscapeError(); err != nil {
		return Dataset{}, fmt.Errorf("cookiewalk: landscape crawl: %w", err)
	}
	ds := Dataset{
		Seed:    s.cfg.Seed,
		Scale:   s.cfg.Scale,
		Reps:    s.cfg.Reps,
		Targets: l.Targets,
		Table1:  s.crawler.Table1(l),
	}
	for _, vp := range vantage.All() {
		res, ok := l.Result(vp.Name)
		if !ok {
			continue
		}
		ds.PerVP = append(ds.PerVP, VPSummary{
			VP:          res.VP,
			Visited:     res.Visited,
			Errors:      res.Errors,
			NoBanner:    res.NoBanner,
			Regular:     res.Regular,
			Cookiewalls: len(res.Cookiewalls),
			Verified:    len(s.crawler.Verified(res.Cookiewalls)),
		})
	}
	for _, o := range s.germanObservations(ctx) {
		rec := WallRecord{
			Domain:     o.Domain,
			TLD:        o.TLD(),
			Language:   o.Language,
			Category:   o.Category,
			Embedding:  o.Source.String(),
			ShadowMode: o.ShadowMode,
			PriceEUR:   o.MonthlyEUR,
			// Copied: the observation's slice aliases the analysis memo.
			Words:     append([]string(nil), o.MatchedWords...),
			HasAccept: o.HasAccept,
			HasSub:    o.HasSub,
		}
		if site, ok := s.reg.Site(o.Domain); ok {
			rec.Provider = site.Provider.Name
			for cc := range site.Lists {
				rec.OnToplists = append(rec.OnToplists, cc)
			}
			// Map iteration order is random: without this sort two
			// exports of the same study would differ byte-for-byte.
			sort.Strings(rec.OnToplists)
		}
		ds.Walls = append(ds.Walls, rec)
	}
	ds.Accuracy = s.crawler.Accuracy(l, 1000, s.cfg.Seed)
	return ds, nil
}

// ExportJSON writes the dataset as indented JSON.
func (s *Study) ExportJSON(w io.Writer) error {
	ds, err := s.BuildDataset()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ds); err != nil {
		return fmt.Errorf("cookiewalk: export json: %w", err)
	}
	return nil
}

// ExportWallsCSV writes one CSV row per verified cookiewall.
func (s *Study) ExportWallsCSV(w io.Writer) error {
	ds, err := s.BuildDataset()
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	// One column per WallRecord field, in field order, so the CSV and
	// JSON releases publish the same facts.
	if err := cw.Write([]string{
		"domain", "tld", "language", "category", "embedding",
		"shadow_mode", "price_eur_month", "corpus_words",
		"has_accept", "has_subscribe", "provider", "toplists",
	}); err != nil {
		return err
	}
	for _, rec := range ds.Walls {
		if err := cw.Write([]string{
			rec.Domain, rec.TLD, rec.Language, rec.Category, rec.Embedding,
			rec.ShadowMode, strconv.FormatFloat(rec.PriceEUR, 'f', 4, 64),
			strings.Join(rec.Words, ";"),
			strconv.FormatBool(rec.HasAccept), strconv.FormatBool(rec.HasSub),
			rec.Provider, strings.Join(rec.OnToplists, ";"),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
