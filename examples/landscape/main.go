// Landscape: the paper's Table 1 — crawl every target from all eight
// vantage points and break detections down by toplist, ccTLD and
// language. Cookiewall counts are scale-invariant, so even this
// reduced universe reproduces the paper's numbers exactly
// (280/276/197/… detections, 259 on the German toplist, and so on).
package main

import (
	"fmt"
	"log"
	"time"

	"cookiewalk"
)

func main() {
	study := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02})
	start := time.Now()

	table1, err := study.Report(cookiewalk.ExpTable1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table1)

	embeddings, err := study.Report(cookiewalk.ExpEmbeddings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(embeddings)

	accuracy, err := study.Report(cookiewalk.ExpAccuracy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(accuracy)

	fmt.Printf("\ncrawl + analysis in %.1fs over %d targets × 8 vantage points\n",
		time.Since(start).Seconds(), len(study.Targets()))
}
