// Adblock bypass: the §4.5 experiment. With uBlock-style filter lists
// (tracker base list + the normally-disabled Annoyances list), 70% of
// cookiewalls never materialize because their markup is delivered from
// filter-listed SMP/CMP hosts. Locally-served walls and lesser-known
// kits survive, and two sites fight back (anti-adblock plea,
// scroll lock).
package main

import (
	"fmt"
	"log"

	"cookiewalk"
)

func main() {
	study := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2})

	text, err := study.Report(cookiewalk.ExpBypass)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(text)

	// Show the mechanism on one blockable site.
	for _, domain := range study.CookiewallDomains() {
		plain, err1 := study.Analyze("Germany", domain)
		blocked, err2 := study.AnalyzeWithBlocker("Germany", domain)
		if err1 != nil || err2 != nil {
			continue
		}
		if plain.BannerKind == "cookiewall" && blocked.BannerKind == "none" {
			fmt.Printf("\nexample: %s\n  without blocker: %s (%s)\n  with blocker:    %s\n",
				domain, plain.BannerKind, plain.Embedding, blocked.BannerKind)
			break
		}
	}
}
