// Quickstart: generate a (reduced) synthetic web, analyze one site,
// and detect a cookiewall in raw HTML.
package main

import (
	"fmt"
	"log"

	"cookiewalk"
)

func main() {
	// A small universe: every cookiewall-related number matches the
	// paper, only the filler web shrinks.
	study := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02})
	fmt.Printf("synthetic web ready: %d target sites, %d vantage points\n",
		len(study.Targets()), len(study.VantagePoints()))

	// Analyze a known cookiewall site from Germany.
	domain := study.CookiewallDomains()[0]
	rep, err := study.Analyze("Germany", domain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s (from Germany):\n", domain)
	fmt.Printf("  banner     = %s (embedded in %s %s)\n", rep.BannerKind, rep.Embedding, rep.ShadowMode)
	fmt.Printf("  buttons    = accept:%v reject:%v subscribe:%v\n", rep.HasAccept, rep.HasReject, rep.HasSub)
	fmt.Printf("  price      = %.2f EUR/month, corpus hits %v\n", rep.PriceEUR, rep.MatchedWords)
	fmt.Printf("  language   = %s, category = %q\n", rep.Language, rep.Category)

	// The same site from a vantage point it may geo-target differently.
	repUS, err := study.Analyze("US East", domain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  from US East the banner is: %s\n", repUS.BannerKind)

	// The detector also works on arbitrary HTML.
	raw := cookiewalk.DetectInHTML(`<html><body>
	  <div class="consent-layer" role="dialog" style="position:fixed;top:10%">
	    <p>Mit Werbung weiterlesen oder werbefrei im Abo für nur 1,99 € pro Monat.
	       Wenn Sie akzeptieren, verarbeiten wir Ihre Daten mit Cookies.</p>
	    <button>Alle akzeptieren</button><button>Jetzt abonnieren</button>
	  </div></body></html>`)
	fmt.Printf("\nraw HTML detection: kind=%s price=%.2f EUR words=%v\n",
		raw.BannerKind, raw.PriceEUR, raw.MatchedWords)
}
