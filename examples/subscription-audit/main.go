// Subscription audit: the §4.4 experiment. Buy a contentpass
// subscription at the platform portal, then visit every partner site
// twice — once accepting the cookiewall, once logged in as a
// subscriber — and compare first-party, third-party and tracking
// cookies. Subscribers see zero tracking cookies; accepting users see
// a median of ~16, with extreme sites sending more than one hundred.
package main

import (
	"fmt"
	"log"

	"cookiewalk"
)

func main() {
	study := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2})

	text, err := study.Report(cookiewalk.ExpFigure5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(text)

	smp, err := study.Report(cookiewalk.ExpSMP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(smp)

	// The manual flow, for illustration: a browser session that logs in
	// on one partner site with a purchased token.
	crawler := study.Crawler()
	token, err := crawler.BuySubscription("contentpass", "reader@example.test")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npurchased subscription token: %s...\n", token[:20])
}
