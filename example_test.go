package cookiewalk_test

import (
	"fmt"

	"cookiewalk"
)

// ExampleDetectInHTML classifies a hand-written accept-or-pay banner.
func ExampleDetectInHTML() {
	rep := cookiewalk.DetectInHTML(`<html><body>
	  <div class="consent-layer" role="dialog" style="position:fixed;top:10%">
	    <p>Mit Werbung weiterlesen oder werbefrei im Abo für nur 1,99 € pro Monat.
	       Wenn Sie akzeptieren, verarbeiten wir Ihre Daten mit Cookies.</p>
	    <button>Alle akzeptieren</button>
	    <button>Jetzt abonnieren</button>
	  </div></body></html>`)
	fmt.Println(rep.BannerKind)
	fmt.Println(rep.HasReject)
	fmt.Printf("%.2f EUR\n", rep.PriceEUR)
	fmt.Println(rep.MatchedWords)
	// Output:
	// cookiewall
	// false
	// 1.99 EUR
	// [abo]
}

// ExampleDetectInHTML_regular shows a banner with a reject option.
func ExampleDetectInHTML_regular() {
	rep := cookiewalk.DetectInHTML(`<html><body>
	  <div class="cookie-banner" role="dialog" style="position:fixed;bottom:0">
	    <p>We and our partners use cookies to personalise content.</p>
	    <button>Accept all</button>
	    <button>Reject all</button>
	  </div></body></html>`)
	fmt.Println(rep.BannerKind, rep.HasAccept, rep.HasReject)
	// Output:
	// regular true true
}
