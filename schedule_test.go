package cookiewalk_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cookiewalk"
)

// TestSchedulerDeterminismAcrossParallelism pins the DAG scheduler's
// central promise: the COMPLETE experiment output is byte-identical to
// the golden snapshot for any ExperimentParallelism — serial, a small
// pool, or one slot per core. Scheduling (and the shared worker
// budget) must never leak into results. CI runs one parallelism level
// per matrix job under -race via COOKIEWALK_SCHED_PARALLELISM
// (0 means GOMAXPROCS); without the env var all three levels run.
func TestSchedulerDeterminismAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full scale-0.02 experiment per parallelism level")
	}
	want, err := os.ReadFile("testdata/golden_all.txt")
	if err != nil {
		t.Fatal(err)
	}
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}
	if env := os.Getenv("COOKIEWALK_SCHED_PARALLELISM"); env != "" {
		var p int
		if _, err := fmt.Sscanf(env, "%d", &p); err != nil {
			t.Fatalf("COOKIEWALK_SCHED_PARALLELISM=%q: %v", env, err)
		}
		if p == 0 {
			p = runtime.GOMAXPROCS(0)
		}
		levels = []int{p}
	}
	for _, par := range levels {
		t.Run(fmt.Sprintf("parallelism-%d", par), func(t *testing.T) {
			got, err := cookiewalk.New(cookiewalk.Config{
				Seed: 42, Scale: 0.02, Reps: 2, ExperimentParallelism: par,
			}).Report(cookiewalk.ExpAll)
			if err != nil {
				t.Fatal(err)
			}
			firstDiff(t, fmt.Sprintf("parallelism %d", par), got, string(want))
		})
	}
}

// TestReportContextCancellation cancels a concurrent ExpAll
// mid-campaign and asserts the report aborts promptly with the
// cancellation cause, in-flight campaigns stop, no goroutine is left
// behind, and the latched failure is what later reports on the same
// study observe (retry needs a fresh Study).
func TestReportContextCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("crawls a scale-0.01 universe")
	}
	before := runtime.NumGoroutine()
	cfg := cookiewalk.Config{Seed: 42, Scale: 0.01, Reps: 1, ExperimentParallelism: 4}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	cfg.Progress = func(p cookiewalk.Progress) {
		if p.Done >= 5 {
			once.Do(cancel)
		}
	}
	study := cookiewalk.New(cfg)
	study.Crawler().ProgressEvery = 1

	done := make(chan struct{})
	var got string
	var err error
	go func() {
		defer close(done)
		got, err = study.ReportContext(ctx, cookiewalk.ExpAll)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("ReportContext did not return after cancellation")
	}
	if err == nil {
		t.Fatalf("expected cancellation error, got %d-byte report", len(got))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	// Failures are latched in the artefact store: a later report on the
	// same study returns immediately with the same cause.
	if _, err2 := study.Report(cookiewalk.ExpAll); err2 == nil || !errors.Is(err2, context.Canceled) {
		t.Fatalf("latched error = %v, want the canceled cause", err2)
	}
	// Scheduler and campaign goroutines must all have exited.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReportSubsetAssembly: a requested subset is assembled in fixed
// Experiments() order regardless of request order, each section
// byte-identical to its individually rendered report.
func TestReportSubsetAssembly(t *testing.T) {
	if testing.Short() {
		t.Skip("crawls a scale-0.01 universe")
	}
	s := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.01, Reps: 1})
	table1, err := s.Report(cookiewalk.ExpTable1)
	if err != nil {
		t.Fatal(err)
	}
	smp, err := s.Report(cookiewalk.ExpSMP)
	if err != nil {
		t.Fatal(err)
	}
	// Request order reversed; assembly order must not be.
	combo, err := s.ReportContext(context.Background(), cookiewalk.ExpSMP, cookiewalk.ExpTable1)
	if err != nil {
		t.Fatal(err)
	}
	if want := table1 + "\n" + smp + "\n"; combo != want {
		firstDiff(t, "subset assembly", combo, want)
	}
}

// TestExperimentValidation covers the request-parsing surface: unknown
// ids are refused with the experiment named, ParseExperiments handles
// comma lists and whitespace, and the dependency listing exposes the
// registry's edges in topological order.
func TestExperimentValidation(t *testing.T) {
	s := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.01, Reps: 1})
	if _, err := s.Report(cookiewalk.Experiment("nope")); err == nil ||
		!strings.Contains(err.Error(), `unknown experiment "nope"`) {
		t.Fatalf("unknown experiment error = %v", err)
	}
	// Artefact ids are not runnable experiments.
	if _, err := s.Report(cookiewalk.Experiment("landscape")); err == nil {
		t.Fatal("artefact id accepted as an experiment")
	}

	exps, err := cookiewalk.ParseExperiments("table1, bypass ,smp")
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 3 || exps[0] != cookiewalk.ExpTable1 || exps[1] != cookiewalk.ExpBypass || exps[2] != cookiewalk.ExpSMP {
		t.Fatalf("parsed = %v", exps)
	}
	if _, err := cookiewalk.ParseExperiments("table1,bogus"); err == nil {
		t.Fatal("bogus id accepted")
	}
	if _, err := cookiewalk.ParseExperiments("table1,,smp"); err == nil {
		t.Fatal("empty id accepted")
	}
	if exps, err := cookiewalk.ParseExperiments("all"); err != nil || len(exps) != 1 || exps[0] != cookiewalk.ExpAll {
		t.Fatalf("all = %v, %v", exps, err)
	}
}

// TestDependencies pins the registry's declared edges for the
// experiments the issue names: fig6 reaches fig4's cookie campaign and
// the landscape; the wall-domain experiments reach the landscape
// through the derived domain list; smp depends on nothing.
func TestDependencies(t *testing.T) {
	deps := func(e cookiewalk.Experiment) string {
		return strings.Join(cookiewalk.Dependencies(e), ",")
	}
	if got := deps(cookiewalk.ExpSMP); got != "" {
		t.Fatalf("smp deps = %q", got)
	}
	fig6 := cookiewalk.Dependencies(cookiewalk.ExpFigure6)
	idx := map[string]int{}
	for i, d := range fig6 {
		idx[d] = i + 1
	}
	if idx["landscape"] == 0 || idx["fig4cookies"] == 0 || idx["german"] == 0 {
		t.Fatalf("fig6 deps = %v", fig6)
	}
	if idx["landscape"] > idx["fig4cookies"] {
		t.Fatalf("fig6 deps not topologically ordered: %v", fig6)
	}
	for _, e := range []cookiewalk.Experiment{cookiewalk.ExpBypass, cookiewalk.ExpAblation, cookiewalk.ExpRevocation} {
		got := cookiewalk.Dependencies(e)
		want := []string{"landscape", "german", "wallDomains"}
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Fatalf("%s deps = %v, want %v", e, got, want)
		}
	}
}

// TestConcurrentReportsShareArtefacts: two goroutines reporting
// different experiments on one study share the landscape artefact (it
// runs once), and both outputs match their serial equivalents.
func TestConcurrentReportsShareArtefacts(t *testing.T) {
	if testing.Short() {
		t.Skip("crawls a scale-0.01 universe")
	}
	crawls := 0
	cfg := cookiewalk.Config{Seed: 42, Scale: 0.01, Reps: 1, ExperimentParallelism: 2}
	var mu sync.Mutex
	cfg.Progress = func(p cookiewalk.Progress) {
		if strings.HasPrefix(p.Label, "landscape Germany") && p.Done == p.Total {
			mu.Lock()
			crawls++
			mu.Unlock()
		}
	}
	s := cookiewalk.New(cfg)
	var wg sync.WaitGroup
	outs := make([]string, 2)
	errs := make([]error, 2)
	for i, e := range []cookiewalk.Experiment{cookiewalk.ExpTable1, cookiewalk.ExpPrevalence} {
		wg.Add(1)
		go func(i int, e cookiewalk.Experiment) {
			defer wg.Done()
			outs[i], errs[i] = s.ReportContext(context.Background(), e)
		}(i, e)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
	}
	ref := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.01, Reps: 1})
	for i, e := range []cookiewalk.Experiment{cookiewalk.ExpTable1, cookiewalk.ExpPrevalence} {
		want, err := ref.Report(e)
		if err != nil {
			t.Fatal(err)
		}
		if outs[i] != want {
			firstDiff(t, string(e), outs[i], want)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if crawls != 1 {
		t.Fatalf("landscape Germany campaign completed %d times, want 1 (artefact store must dedupe)", crawls)
	}
}
