// Package cookiewalk is an end-to-end reproduction of "Thou Shalt Not
// Reject: Analyzing Accept-Or-Pay Cookie Banners on the Web" (Rasaii,
// Gosain, Gasser — ACM IMC 2023).
//
// The package bundles three things:
//
//   - a deterministic synthetic web (45 222 target sites with cookie
//     banners, cookiewalls, CMPs, SMPs and trackers) served over
//     net/http — the offline substitute for the live Internet;
//   - an emulated browser and the BannerClick-style detection pipeline
//     (banner discovery across main DOM, iframes and shadow DOMs;
//     accept/reject interaction; cookiewall classification by
//     subscription words and currency-price combinations);
//   - the paper's experiments: the eight-vantage-point landscape crawl
//     (Table 1), category and pricing analyses (Figures 1-3), cookie
//     comparisons (Figures 4-5), correlation analysis (Figure 6),
//     detection accuracy (§3) and the ad-blocker bypass study (§4.5).
//
// Every crawl runs on the streaming campaign engine
// (internal/campaign): the target list is partitioned into shards, each
// shard visits sites on its own worker pool, and observations stream —
// in input order — into incrementally updated tallies. Nothing ever
// materializes the full per-visit result set, outputs are byte-for-byte
// identical for a fixed seed regardless of Workers or Shards, and
// long campaigns report progress and per-shard error counts as they go.
//
// Above the engine, the study layer schedules experiments as a
// dependency DAG (see schedule.go): artefacts are memoized study-wide,
// independent campaigns run concurrently up to
// Config.ExperimentParallelism on one shared worker budget, campaigns
// are cancellable via ReportContext, and with Config.CheckpointDir
// every constituent campaign — not just the landscape — journals its
// progress for crash-safe resumption. None of it changes results: the
// assembled report is byte-identical for any parallelism level.
//
// Quickstart:
//
//	study := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2})
//	rep, err := study.Analyze("Germany", study.CookiewallDomains()[0])
//	fmt.Println(rep.BannerKind, rep.PriceEUR, err)
//
//	// One artefact, or everything (what the golden test pins):
//	text, _ := study.Report(cookiewalk.ExpTable1)
//	all, _ := study.Report(cookiewalk.ExpAll)
//	fmt.Println(text, len(all))
//
// Watch a campaign stream (the cmd/cookiewalk -progress flag does
// exactly this):
//
//	study = cookiewalk.New(cookiewalk.Config{
//		Seed: 42, Scale: 0.02, Reps: 2, Workers: 4,
//		Progress: func(p cookiewalk.Progress) {
//			fmt.Printf("%s: shard %d/%d, %d/%d visits, %d errors\n",
//				p.Label, p.Shard, p.Shards, p.Done, p.Total, p.Errors)
//		},
//	})
//	_, _ = study.Report(cookiewalk.ExpPrevalence)
//
// Scale 1 reproduces the paper's absolute numbers; smaller scales
// shrink the filler web for fast experimentation while keeping the 280
// cookiewall sites and every structural marginal intact. The worker and
// shard counts tune throughput only — never results.
package cookiewalk

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"cookiewalk/internal/adblock"
	"cookiewalk/internal/browser"
	"cookiewalk/internal/campaign"
	"cookiewalk/internal/core"
	"cookiewalk/internal/dom"
	"cookiewalk/internal/hostgate"
	"cookiewalk/internal/measure"
	"cookiewalk/internal/report"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/vantage"
	"cookiewalk/internal/webfarm"
)

// Config parameterizes a Study.
type Config struct {
	// Seed drives every pseudo-random choice; identical seeds yield
	// byte-identical universes and results.
	Seed uint64
	// Scale scales the filler web (default 1 = the paper's 45 222
	// targets). The cookiewall population never scales.
	Scale float64
	// Reps is the repetition count for cookie measurements (default 5,
	// as in the paper).
	Reps int
	// Workers bounds per-shard crawl parallelism (default GOMAXPROCS).
	Workers int
	// Shards overrides the campaign shard count (default: derived from
	// the target-list size). Purely a throughput/accounting knob —
	// results are identical for any value.
	Shards int
	// Progress, when set, receives streaming campaign progress
	// snapshots (shard, visit and error counters) from every crawl the
	// study runs. With ExperimentParallelism > 1 concurrent campaigns
	// invoke it from their own goroutines simultaneously — the handler
	// must be safe for concurrent use (it is called serially otherwise).
	Progress func(Progress)
	// NoAnalysisCache disables the content-fingerprint memoization of
	// page analysis (parse → detect → language → category), forcing
	// every visit through the full pipeline. Results are byte-identical
	// either way; turn this on when debugging a detection change so a
	// stale memo can never mask its effect. Purely a debug/verification
	// knob — leave it off for throughput.
	NoAnalysisCache bool
	// CheckpointDir, when set, makes every experiment campaign
	// crash-safe: each campaign — the landscape's eight vantage-point
	// crawls AND every follow-up experiment (figure4/figure5 cookie
	// measurements, bypass, ablation, autoreject, revocation,
	// botcheck) — journals its completed visits to durable per-shard
	// files under its own subdirectory of this directory, so a study
	// killed by an OOM, a preemption or a power cut can continue
	// instead of starting over. Journaling never changes results.
	CheckpointDir string
	// Resume, together with CheckpointDir, replays the journals a
	// previous (killed) run left behind: journaled visits stream from
	// disk, only the missing ones are crawled — across EVERY
	// constituent experiment campaign — and every report is
	// byte-identical to an uninterrupted run's. An empty or absent
	// checkpoint directory (or subdirectory) degrades to a fresh crawl.
	Resume bool
	// LeaseTTL is the fleet coordinator's lease lifetime (default 30s;
	// see NewFleetCoordinator): a worker that goes silent for LeaseTTL
	// is presumed dead and its shard range is re-leased. Only read in
	// coordinator mode; it never affects results, only how quickly a
	// lost worker's range is handed to someone else.
	LeaseTTL time.Duration
	// FleetToken, when set, locks the fleet protocol behind a shared
	// secret: the coordinator refuses requests without a matching
	// "Authorization: Bearer" header (constant-time compare, HTTP 401),
	// and workers send it on every request. Both sides of a fleet must
	// configure the same token — a 401 is definitive, so a
	// wrong-tokened worker exits instead of retrying forever. Empty
	// disables auth (trusted networks only).
	FleetToken string
	// ExperimentParallelism bounds how many experiment DAG nodes (and
	// therefore independent campaigns) run concurrently during
	// Report/ReportContext (default 1: experiments run one after
	// another, in dependency order). Values above 1 schedule
	// independent campaigns concurrently on a shared worker budget of
	// Workers visit slots, so total CPU pressure never exceeds a
	// single campaign's. Purely a scheduling knob — the assembled
	// report is byte-identical for any value.
	ExperimentParallelism int
	// VisitTimeout, when positive, bounds each visit's wall clock
	// (navigation plus all subresource fetches and retries). A visit
	// that overruns surfaces as an ordinary visit error; it never
	// wedges the campaign. Zero disables the deadline.
	VisitTimeout time.Duration
	// VisitRetries, when positive, retries transient transport
	// failures — timeouts, connection resets, truncated bodies, 5xx —
	// up to that many extra attempts per request with seeded
	// exponential backoff. Definitive failures (DNS, 4xx) are never
	// retried. With flaky transport whose faults eventually clear,
	// results are byte-identical to a clean run; only timing changes.
	VisitRetries int
	// VisitRetryBackoff is the initial retry delay (default 100ms,
	// doubled per attempt, capped at 2s, decorrelated jitter). Timing
	// only — never results.
	VisitRetryBackoff time.Duration
	// PerHostRPS, when positive, rate-limits requests per target host
	// across ALL shards and workers via a shared token bucket.
	// Throughput knob only — results are identical at any rate.
	PerHostRPS float64
	// PerHostBurst is the token-bucket burst size (default 1).
	PerHostBurst int
	// BreakerThreshold, when positive, arms a per-host circuit
	// breaker: after that many consecutive transient failures the host
	// is skipped (visits fail fast with a circuit-open error) until a
	// half-open probe succeeds. A breaker can only trip on hosts that
	// already exhaust their retries, so it never changes results for
	// targets that eventually succeed.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before probing
	// the host again (default 30s).
	BreakerCooldown time.Duration
	// FleetCA, when set, is a PEM file of CA certificates fleet
	// workers trust when dialing an https:// coordinator (see
	// RunFleetWorker). Empty uses the system pool.
	FleetCA string
	// WrapTransport, when set, wraps the synthetic web's transport
	// before the crawler sees it — the seam the flaky-transport chaos
	// tests use to inject deterministic faults between browser and
	// farm. Production studies leave it nil.
	WrapTransport func(http.RoundTripper) http.RoundTripper
}

// Progress is a point-in-time snapshot of a running crawl campaign.
type Progress struct {
	// Label names the campaign ("landscape Germany", "cookies accept").
	Label string
	// Shard/Shards locate the shard in flight (1-based).
	Shard, Shards int
	// Done/Total/Errors count visits across the whole campaign.
	Done, Total, Errors int64
	// Replayed counts deliveries served from a checkpoint journal
	// instead of a fresh visit (always ≤ Done; nonzero only when
	// resuming). Done - Replayed is the fresh-visit count.
	Replayed int64
	// Retries counts transient-failure retry attempts across the
	// campaign (zero unless Config.VisitRetries is set and transport
	// faults occur).
	Retries int64
	// BreakerTrips counts per-host circuit-breaker openings;
	// BreakerDenials counts visits rejected fast because a host's
	// breaker was open (both zero unless Config.BreakerThreshold is
	// set).
	BreakerTrips, BreakerDenials int64
}

// Study owns a generated universe and its measurement machinery.
// Artefacts — the landscape campaign, derived domain lists, follow-up
// campaign results and rendered report sections — are memoized in the
// study-wide DAG store (see schedule.go); each is computed at most
// once per Study.
type Study struct {
	cfg     Config
	reg     *synthweb.Registry
	farm    *webfarm.Farm
	crawler *measure.Crawler

	// sem bounds concurrently RUNNING experiment DAG nodes
	// (Config.ExperimentParallelism slots).
	sem chan struct{}

	mu    sync.Mutex
	nodes map[string]*nodeState
}

// New generates the synthetic web and wires up the crawler.
func New(cfg Config) *Study {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 5
	}
	par := cfg.ExperimentParallelism
	if par < 1 {
		par = 1
	}
	reg := synthweb.Generate(synthweb.Config{Seed: cfg.Seed, FillerScale: cfg.Scale})
	farm := webfarm.New(reg)
	transport := http.RoundTripper(farm.Transport())
	if cfg.WrapTransport != nil {
		transport = cfg.WrapTransport(transport)
	}
	crawler := measure.New(reg, transport)
	crawler.Workers = cfg.Workers
	crawler.Shards = cfg.Shards
	crawler.NoAnalysisCache = cfg.NoAnalysisCache
	crawler.CheckpointDir = cfg.CheckpointDir
	crawler.Resume = cfg.Resume
	crawler.VisitTimeout = cfg.VisitTimeout
	crawler.VisitRetries = cfg.VisitRetries
	crawler.RetryBackoff = cfg.VisitRetryBackoff
	crawler.RetrySeed = cfg.Seed
	if g := hostgate.New(hostgate.Config{
		PerHostRPS:       cfg.PerHostRPS,
		Burst:            cfg.PerHostBurst,
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerCooldown:  cfg.BreakerCooldown,
	}); g != nil {
		// Assigned only when non-nil so the interface stays nil (not a
		// typed-nil) and the browser's fast path can skip it entirely.
		crawler.Gate = g
	}
	if par > 1 {
		// Concurrent campaigns draw visit slots from ONE budget sized
		// like a single campaign's worker pool, so experiment-level
		// parallelism reorders work instead of multiplying it.
		crawler.Budget = campaign.NewBudget(cfg.Workers)
	}
	if cfg.Progress != nil {
		crawler.Progress = func(p campaign.Progress) {
			cfg.Progress(Progress{
				Label: p.Label, Shard: p.Shard, Shards: p.Shards,
				Done: p.Done, Total: p.Total, Errors: p.Errors,
				Replayed: p.Replayed,
				Retries:  p.Retries, BreakerTrips: p.BreakerTrips, BreakerDenials: p.BreakerDenials,
			})
		}
	}
	return &Study{
		cfg: cfg, reg: reg, farm: farm, crawler: crawler,
		sem:   make(chan struct{}, par),
		nodes: map[string]*nodeState{},
	}
}

// Targets returns the measurement target list (sorted domains).
func (s *Study) Targets() []string { return s.reg.TargetList() }

// VantagePoints returns the eight vantage point names in Table 1 order.
func (s *Study) VantagePoints() []string {
	var out []string
	for _, vp := range vantage.All() {
		out = append(out, vp.Name)
	}
	return out
}

// CookiewallDomains returns the ground-truth cookiewall sites on the
// target list (for demos and spot checks; the detector never uses it).
func (s *Study) CookiewallDomains() []string {
	var out []string
	for _, site := range s.reg.CookiewallSites() {
		if len(site.Lists) > 0 {
			out = append(out, site.Domain)
		}
	}
	sort.Strings(out)
	return out
}

// Handler returns the farm as an http.Handler, e.g. to serve the
// synthetic web on a real port (see cmd/webfarm).
func (s *Study) Handler() http.Handler { return s.farm }

// Transport returns the in-process RoundTripper for custom crawls.
func (s *Study) Transport() http.RoundTripper { return s.farm.Transport() }

// Crawler exposes the measurement engine for advanced use (custom
// experiments beyond the paper's).
func (s *Study) Crawler() *measure.Crawler { return s.crawler }

// SiteReport is the public per-site analysis result.
type SiteReport struct {
	Domain string
	VP     string
	// BannerKind is "none", "regular" or "cookiewall".
	BannerKind string
	// Embedding is "none", "main-dom", "iframe" or "shadow-dom".
	Embedding string
	// ShadowMode is "open"/"closed" for shadow embeddings.
	ShadowMode string
	HasAccept  bool
	HasReject  bool
	HasSub     bool
	// MatchedWords are the §3 subscription-corpus hits.
	MatchedWords []string
	// PriceEUR is the normalized monthly subscription price (0 = none
	// detected).
	PriceEUR float64
	// Language and Category are measured from page content.
	Language string
	Category string
	// Blocked quirks (only meaningful with WithBlocker).
	AdblockPlea  bool
	ScrollLocked bool
}

// Analyze visits one site from a vantage point and classifies its
// banner.
func (s *Study) Analyze(vpName, domain string) (SiteReport, error) {
	return s.analyze(vpName, domain, nil)
}

// AnalyzeWithBlocker is Analyze with the uBlock-style blocker enabled
// (base + annoyances lists).
func (s *Study) AnalyzeWithBlocker(vpName, domain string) (SiteReport, error) {
	return s.analyze(vpName, domain, DefaultBlocker())
}

// DefaultBlocker returns the §4.5 filter engine: the default-on
// tracker list plus the Annoyances cookiewall list.
func DefaultBlocker() *adblock.Engine {
	return adblock.NewEngine(adblock.BaseList(), adblock.AnnoyancesList())
}

func (s *Study) analyze(vpName, domain string, blocker *adblock.Engine) (SiteReport, error) {
	vp, ok := vantage.ByName(vpName)
	if !ok {
		return SiteReport{}, fmt.Errorf("cookiewalk: unknown vantage point %q", vpName)
	}
	// Single visits ride the campaign engine too, so progress and error
	// accounting cover them like any crawl.
	o, err := s.crawler.AnalyzeOne(context.Background(), vp, domain, measure.VisitOpts{Blocker: blocker})
	if err != nil {
		return SiteReport{}, fmt.Errorf("cookiewalk: visit %s: %w", domain, err)
	}
	return SiteReport{
		Domain:     o.Domain,
		VP:         o.VP,
		BannerKind: o.Kind.String(),
		Embedding:  o.Source.String(),
		ShadowMode: o.ShadowMode,
		HasAccept:  o.HasAccept,
		HasReject:  o.HasReject,
		HasSub:     o.HasSub,
		// Copied: observations share their word slice with the process-
		// wide analysis memo, and public API consumers own their result.
		MatchedWords: append([]string(nil), o.MatchedWords...),
		PriceEUR:     o.MonthlyEUR,
		Language:     o.Language,
		Category:     o.Category,
		AdblockPlea:  o.AdblockPlea,
		ScrollLocked: o.ScrollLocked,
	}, nil
}

// NewBrowser returns a fresh emulated browser session pointed at the
// synthetic web, for custom interaction flows.
func (s *Study) NewBrowser(vpName string) (*browser.Browser, error) {
	vp, ok := vantage.ByName(vpName)
	if !ok {
		return nil, fmt.Errorf("cookiewalk: unknown vantage point %q", vpName)
	}
	return browser.New(s.farm.Transport(), vp), nil
}

// Screenshot renders the site's detected banner as an ASCII box — the
// textual analogue of the paper's Appendix B screenshots.
func (s *Study) Screenshot(vpName, domain string) (string, error) {
	vp, ok := vantage.ByName(vpName)
	if !ok {
		return "", fmt.Errorf("cookiewalk: unknown vantage point %q", vpName)
	}
	b := browser.New(s.farm.Transport(), vp)
	page, err := b.Open("https://" + domain + "/")
	if err != nil {
		return "", fmt.Errorf("cookiewalk: screenshot %s: %w", domain, err)
	}
	det := core.Detect(page.Doc)
	if det.Kind == core.KindNone {
		return report.BannerBox(domain, "no banner", "(no consent UI shown to this visitor)", nil), nil
	}
	var buttons []string
	for _, btn := range []*dom.Node{det.AcceptButton, det.RejectButton, det.SubscribeButton} {
		if btn != nil {
			buttons = append(buttons, dom.NormalizeSpace(btn.Text()))
		}
	}
	title := fmt.Sprintf("%s (via %s)", domain, det.Source)
	return report.BannerBox(title, det.Kind.String(), det.Text, buttons), nil
}

// DetectInHTML runs the banner detector over raw HTML — the
// library-as-a-tool entry point for analyzing arbitrary pages.
func DetectInHTML(html string) SiteReport {
	det := core.Detect(dom.Parse(html))
	return SiteReport{
		BannerKind:   det.Kind.String(),
		Embedding:    det.Source.String(),
		ShadowMode:   string(det.ShadowMode),
		HasAccept:    det.AcceptButton != nil,
		HasReject:    det.RejectButton != nil,
		HasSub:       det.SubscribeButton != nil,
		MatchedWords: det.MatchedWords,
		PriceEUR:     det.MonthlyEUR,
	}
}
