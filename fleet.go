package cookiewalk

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net/http"
	"os"
	"time"

	"cookiewalk/internal/campaign/dist"
	"cookiewalk/internal/xrand"
)

// Distributed campaigns. A Study can run its landscape crawl — the
// 45k-sites-×-8-vantage-points bulk of the workload — across a fleet:
// one coordinator process serves shard-range leases over HTTP
// (NewFleetCoordinator), any number of worker processes claim leases,
// crawl their ranges and ship the resulting shard journals back
// (RunFleetWorker), and when every range has merged the coordinator
// replays the assembled journals through the ordinary Resume path.
// Because every worker generates the same universe from the same seed
// and visits are deterministic, the assembled Report(ExpAll) is
// byte-identical to a single-machine run's — even when workers crash
// mid-lease and their ranges are re-crawled elsewhere (see
// internal/campaign/dist for the lease/TTL/fencing protocol).
//
// The coordinator is itself restartable: its lease ledger persists in
// the checkpoint directory, so a coordinator killed mid-fleet resumes
// where it died when restarted with the same -checkpoint — merged
// ranges stay merged, unmerged ranges are re-leased, and workers ride
// out the outage in their retry loop (see internal/campaign/dist's
// ledger.go).
//
//	# terminal 1 — coordinator (assembles into -checkpoint, then reports)
//	cookiewalk -seed 42 -checkpoint /tmp/cw -serve :8440
//	# terminals 2..N — workers (same seed/scale!)
//	cookiewalk -seed 42 -worker http://coordinator:8440

// FleetCoordinator serves a study's landscape campaigns as leases and
// assembles worker-shipped journals into the study's checkpoint
// directory. Create with Study.NewFleetCoordinator, expose Handler()
// on an HTTP server, then Wait() before asking the study for reports.
type FleetCoordinator struct {
	co *dist.Coordinator
}

// NewFleetCoordinator prepares a coordinator for this study's
// landscape campaigns. Config.CheckpointDir is required — it is the
// assembly target, laid out exactly as local checkpointing lays it
// out, so the post-merge report replays it natively (set
// Config.Resume on the study that will render reports). If the
// directory already holds a lease ledger from an interrupted fleet run
// of the SAME study, the coordinator resumes it instead of starting
// over. Config.FleetToken, when set, locks the HTTP API behind bearer
// auth.
func (s *Study) NewFleetCoordinator(logf func(format string, args ...any)) (*FleetCoordinator, error) {
	if s.cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("cookiewalk: fleet coordinator requires Config.CheckpointDir")
	}
	co, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Dir:   s.cfg.CheckpointDir,
		Specs: s.crawler.LandscapeSpecs(s.Targets()),
		TTL:   s.cfg.LeaseTTL,
		Token: s.cfg.FleetToken,
		Logf:  logf,
	})
	if err != nil {
		return nil, fmt.Errorf("cookiewalk: fleet coordinator: %w", err)
	}
	return &FleetCoordinator{co: co}, nil
}

// Handler returns the coordinator's HTTP API (mount it on a server of
// your choosing).
func (fc *FleetCoordinator) Handler() http.Handler { return fc.co.Handler() }

// Wait blocks until every shard range of every campaign has been
// shipped and merged, or ctx is canceled.
func (fc *FleetCoordinator) Wait(ctx context.Context) error { return fc.co.Wait(ctx) }

// Status snapshots the coordinator's lease ledger.
func (fc *FleetCoordinator) Status() dist.Status { return fc.co.Status() }

// Close shuts the coordinator down gracefully: state-changing requests
// start answering 503 (workers keep polling until a restart takes
// over) and the lease ledger is fsynced and closed, leaving on-disk
// state exactly what a restart with the same CheckpointDir recovers.
func (fc *FleetCoordinator) Close() error { return fc.co.Close() }

// RunFleetWorker joins the fleet at coordinatorURL as a worker: it
// verifies the coordinator is distributing THIS study's campaigns
// (same labels, target count and targets hash — i.e. the same seed and
// scale), then leases, crawls and ships shard ranges until every range
// has merged. name identifies the worker in coordinator logs (and
// seeds the client's backoff jitter); logf (optional) receives worker
// progress. The returned error is nil on normal fleet completion. A
// coordinator restart mid-fleet is invisible beyond retry log lines —
// the worker polls until the endpoint returns.
func (s *Study) RunFleetWorker(ctx context.Context, coordinatorURL, name string, logf func(format string, args ...any)) error {
	httpClient, err := newFleetHTTPClient(s.cfg.FleetCA)
	if err != nil {
		return fmt.Errorf("cookiewalk: fleet worker: %w", err)
	}
	client := &dist.Client{
		BaseURL:    coordinatorURL,
		Token:      s.cfg.FleetToken,
		Seed:       xrand.Hash64(name),
		HTTPClient: httpClient,
	}
	return s.RunFleetWorkerWithClient(ctx, client, name, logf)
}

// newFleetHTTPClient builds the worker's HTTP client. With no custom CA
// it returns nil (the dist client falls back to http.DefaultClient,
// which already speaks https:// against publicly trusted coordinators).
// With caFile set, the returned client trusts exactly that PEM bundle —
// the self-signed / private-CA deployment the fleet TLS runbook
// describes.
func newFleetHTTPClient(caFile string) (*http.Client, error) {
	if caFile == "" {
		return nil, nil
	}
	pem, err := os.ReadFile(caFile)
	if err != nil {
		return nil, fmt.Errorf("fleet CA: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("fleet CA: no certificates found in %s", caFile)
	}
	return &http.Client{
		Transport: &http.Transport{
			TLSClientConfig: &tls.Config{RootCAs: pool},
		},
	}, nil
}

// RunFleetWorkerWithClient is RunFleetWorker with a caller-supplied
// protocol client — the seam the fault-injection harness uses to put a
// chaos transport under a real worker.
func (s *Study) RunFleetWorkerWithClient(ctx context.Context, client *dist.Client, name string, logf func(format string, args ...any)) error {
	// The identity check tolerates a coordinator that is mid-restart:
	// transient failures poll, definitive ones (bad token, bad URL)
	// fail fast.
	var specs []dist.Spec
	for {
		var err error
		specs, err = client.Campaigns(ctx)
		if err == nil {
			break
		}
		if !dist.IsTransient(err) || ctx.Err() != nil {
			return fmt.Errorf("cookiewalk: fleet worker: %w", err)
		}
		if logf != nil {
			logf("cookiewalk: fleet worker %s: coordinator unreachable (retryable): %v", name, err)
		}
		select {
		case <-time.After(500 * time.Millisecond):
		case <-ctx.Done():
			return context.Cause(ctx)
		}
	}
	targets := s.Targets()
	local := make(map[string]dist.Spec, len(specs))
	for _, spec := range s.crawler.LandscapeSpecs(targets) {
		local[spec.Label] = spec
	}
	for _, remote := range specs {
		want, ok := local[remote.Label]
		if !ok {
			return fmt.Errorf("cookiewalk: fleet worker: coordinator distributes unknown campaign %q", remote.Label)
		}
		// Shard count deliberately unchecked: leases carry explicit
		// ranges, so a coordinator partitioned differently still hands
		// out ranges this worker can run verbatim.
		if remote.Targets != want.Targets || remote.TargetsHash != want.TargetsHash {
			return fmt.Errorf(
				"cookiewalk: fleet worker: campaign %q is a different universe (coordinator: %d targets hash %#x; local: %d targets hash %#x) — seed/scale mismatch?",
				remote.Label, remote.Targets, remote.TargetsHash, want.Targets, want.TargetsHash)
		}
	}
	w := &dist.Worker{
		Client: client,
		Name:   name,
		Logf:   logf,
		Runner: func(ctx context.Context, lease dist.Lease, dir string) (string, error) {
			return s.crawler.RunLandscapeLease(ctx, lease, targets, dir)
		},
	}
	return w.Run(ctx)
}
