// Package categorize assigns websites to content categories, standing
// in for the FortiGuard Web-filter database the paper uses for
// Figure 1. Unlike FortiGuard (a domain->category oracle), this
// classifier works from page text, which is strictly harder and keeps
// the analysis honest: the measurement pipeline categorizes what it
// crawled, not what the registry says.
//
// The taxonomy is the 15 categories Figure 1 reports plus "Others".
// Keywords are multilingual because the study's sites are mostly
// German, with English, Italian, Swedish, French, Spanish, Portuguese,
// Dutch and Danish minorities.
package categorize

import (
	"sort"
	"strings"
	"unicode"
)

// keywords maps category -> distinctive content words (lower-case).
// Page generators in webfarm weave a few of these into body text; the
// classifier counts weighted hits.
var keywords = map[string][]string{
	// "redaktion"/"presse" are deliberately absent: editorial boilerplate
	// mentions them on sites of every category, so they do not
	// discriminate.
	"News and Media": {"nachrichten", "news", "schlagzeilen", "politik",
		"notizie", "nyheter", "actualites", "noticias", "nieuws",
		"breaking", "journalismus", "headline"},
	"Business": {"business", "unternehmen", "firma", "handel", "b2b",
		"industrie", "mittelstand", "azienda", "empresa", "entreprise",
		"commerce", "logistik", "management"},
	"Information Technology": {"software", "hardware", "technik", "tech",
		"computer", "programmierung", "cloud", "server", "digital",
		"tecnologia", "teknik", "informatique", "entwickler", "coding"},
	"Entertainment": {"unterhaltung", "entertainment", "kino", "film",
		"serie", "promi", "stars", "celebrity", "musica", "cinema",
		"konzert", "show", "streaming"},
	"Sports": {"sport", "fussball", "bundesliga", "calcio", "football",
		"tennis", "olympia", "liga", "match", "turnier", "deportes",
		"sporten", "verein", "training"},
	"Reference": {"lexikon", "enzyklopädie", "wörterbuch", "referenz",
		"reference", "dictionary", "wiki", "encyclopedia", "datenbank",
		"archiv", "bibliothek", "nachschlagewerk"},
	"Society and Lifestyles": {"lifestyle", "gesellschaft", "mode",
		"fashion", "wohnen", "familie", "leben", "trends", "beauty",
		"kultur", "sociedad", "samhälle", "stil"},
	"Search Engines and Portals": {"suchmaschine", "portal", "suche",
		"search", "verzeichnis", "startseite", "webkatalog", "index",
		"directory", "links"},
	"Health and Wellness": {"gesundheit", "health", "medizin", "arzt",
		"ernährung", "fitness", "wellness", "salute", "salud", "hälsa",
		"saude", "apotheke", "therapie", "symptome"},
	"Games": {"spiele", "games", "gaming", "konsole", "videospiele",
		"zocken", "giochi", "spel", "jeux", "juegos", "esports",
		"playstation", "nintendo"},
	"Web-based Email": {"email", "e-mail", "webmail", "posteingang",
		"mail", "postfach", "inbox", "correo", "courriel"},
	"Travel": {"reise", "travel", "urlaub", "hotel", "flug", "viaggi",
		"resor", "voyage", "viajes", "viagens", "tourismus", "strand",
		"buchung"},
	"Personal Vehicles": {"auto", "fahrzeug", "motorrad", "pkw", "cars",
		"automobil", "motori", "bil", "voiture", "coche", "carro",
		"werkstatt", "tuning"},
	"Restaurant and Dining": {"restaurant", "rezepte", "kochen", "essen",
		"gastronomie", "cucina", "recept", "recettes", "recetas",
		"culinaria", "menü", "dining", "kulinarisch"},
	"Finance and Banking": {"finanzen", "bank", "börse", "aktien",
		"kredit", "geld", "finance", "banking", "invest", "sparen",
		"finanza", "ekonomi", "bourse", "bolsa", "zinsen"},
}

// Categories returns the taxonomy in Figure 1 display order plus
// "Others" last.
func Categories() []string {
	return []string{
		"News and Media", "Business", "Information Technology",
		"Entertainment", "Sports", "Reference", "Society and Lifestyles",
		"Search Engines and Portals", "Health and Wellness", "Games",
		"Web-based Email", "Travel", "Personal Vehicles",
		"Restaurant and Dining", "Finance and Banking", "Others",
	}
}

// Keywords returns the keyword list for a category ("Others" and
// unknown categories return nil). The returned slice is a copy.
func Keywords(category string) []string {
	ks := keywords[category]
	if ks == nil {
		return nil
	}
	out := make([]string, len(ks))
	copy(out, ks)
	return out
}

// Classify returns the best-matching category for page text, falling
// back to "Others" when no keyword scores. Ties break alphabetically
// for determinism.
func Classify(text string) string {
	words := tokenize(text)
	if len(words) == 0 {
		return "Others"
	}
	counts := make(map[string]int, len(words))
	for _, w := range words {
		counts[w]++
	}
	best, bestScore := "Others", 0
	cats := make([]string, 0, len(keywords))
	for c := range keywords {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, cat := range cats {
		score := 0
		for _, kw := range keywords[cat] {
			score += counts[kw]
		}
		if score > bestScore {
			best, bestScore = cat, score
		}
	}
	return best
}

func tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && r != '-'
	})
}
