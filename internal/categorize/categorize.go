// Package categorize assigns websites to content categories, standing
// in for the FortiGuard Web-filter database the paper uses for
// Figure 1. Unlike FortiGuard (a domain->category oracle), this
// classifier works from page text, which is strictly harder and keeps
// the analysis honest: the measurement pipeline categorizes what it
// crawled, not what the registry says.
//
// The taxonomy is the 15 categories Figure 1 reports plus "Others".
// Keywords are multilingual because the study's sites are mostly
// German, with English, Italian, Swedish, French, Spanish, Portuguese,
// Dutch and Danish minorities.
package categorize

import (
	"sort"
	"unicode"
	"unicode/utf8"
)

// keywords maps category -> distinctive content words (lower-case).
// Page generators in webfarm weave a few of these into body text; the
// classifier counts weighted hits.
var keywords = map[string][]string{
	// "redaktion"/"presse" are deliberately absent: editorial boilerplate
	// mentions them on sites of every category, so they do not
	// discriminate.
	"News and Media": {"nachrichten", "news", "schlagzeilen", "politik",
		"notizie", "nyheter", "actualites", "noticias", "nieuws",
		"breaking", "journalismus", "headline"},
	"Business": {"business", "unternehmen", "firma", "handel", "b2b",
		"industrie", "mittelstand", "azienda", "empresa", "entreprise",
		"commerce", "logistik", "management"},
	"Information Technology": {"software", "hardware", "technik", "tech",
		"computer", "programmierung", "cloud", "server", "digital",
		"tecnologia", "teknik", "informatique", "entwickler", "coding"},
	"Entertainment": {"unterhaltung", "entertainment", "kino", "film",
		"serie", "promi", "stars", "celebrity", "musica", "cinema",
		"konzert", "show", "streaming"},
	"Sports": {"sport", "fussball", "bundesliga", "calcio", "football",
		"tennis", "olympia", "liga", "match", "turnier", "deportes",
		"sporten", "verein", "training"},
	"Reference": {"lexikon", "enzyklopädie", "wörterbuch", "referenz",
		"reference", "dictionary", "wiki", "encyclopedia", "datenbank",
		"archiv", "bibliothek", "nachschlagewerk"},
	"Society and Lifestyles": {"lifestyle", "gesellschaft", "mode",
		"fashion", "wohnen", "familie", "leben", "trends", "beauty",
		"kultur", "sociedad", "samhälle", "stil"},
	"Search Engines and Portals": {"suchmaschine", "portal", "suche",
		"search", "verzeichnis", "startseite", "webkatalog", "index",
		"directory", "links"},
	"Health and Wellness": {"gesundheit", "health", "medizin", "arzt",
		"ernährung", "fitness", "wellness", "salute", "salud", "hälsa",
		"saude", "apotheke", "therapie", "symptome"},
	"Games": {"spiele", "games", "gaming", "konsole", "videospiele",
		"zocken", "giochi", "spel", "jeux", "juegos", "esports",
		"playstation", "nintendo"},
	"Web-based Email": {"email", "e-mail", "webmail", "posteingang",
		"mail", "postfach", "inbox", "correo", "courriel"},
	"Travel": {"reise", "travel", "urlaub", "hotel", "flug", "viaggi",
		"resor", "voyage", "viajes", "viagens", "tourismus", "strand",
		"buchung"},
	"Personal Vehicles": {"auto", "fahrzeug", "motorrad", "pkw", "cars",
		"automobil", "motori", "bil", "voiture", "coche", "carro",
		"werkstatt", "tuning"},
	"Restaurant and Dining": {"restaurant", "rezepte", "kochen", "essen",
		"gastronomie", "cucina", "recept", "recettes", "recetas",
		"culinaria", "menü", "dining", "kulinarisch"},
	"Finance and Banking": {"finanzen", "bank", "börse", "aktien",
		"kredit", "geld", "finance", "banking", "invest", "sparen",
		"finanza", "ekonomi", "bourse", "bolsa", "zinsen"},
}

// Categories returns the taxonomy in Figure 1 display order plus
// "Others" last.
func Categories() []string {
	return []string{
		"News and Media", "Business", "Information Technology",
		"Entertainment", "Sports", "Reference", "Society and Lifestyles",
		"Search Engines and Portals", "Health and Wellness", "Games",
		"Web-based Email", "Travel", "Personal Vehicles",
		"Restaurant and Dining", "Finance and Banking", "Others",
	}
}

// Keywords returns the keyword list for a category ("Others" and
// unknown categories return nil). The returned slice is a copy.
func Keywords(category string) []string {
	ks := keywords[category]
	if ks == nil {
		return nil
	}
	out := make([]string, len(ks))
	copy(out, ks)
	return out
}

// Classify returns the best-matching category for page text, falling
// back to "Others" when no keyword scores. Ties break alphabetically
// for determinism.
//
// Scoring streams over the text in one pass: each token is lower-cased
// into a reusable buffer and looked up once in a combined
// keyword→categories bitmask table — no lowered copy of the whole
// text, no token slice, no per-page word-count map. A category's score
// is the number of tokens belonging to its keyword list, exactly the
// sum the per-category counting computed.
func Classify(text string) string {
	var scores [16]int // indexed by sortedCats position
	tokens := 0
	var buf [64]byte // stack token buffer (no closure, so it never escapes)
	word := buf[:0]
	for i := 0; i < len(text); {
		// ASCII fast path: lower-case and classify bytewise; everything
		// else goes through the same unicode calls as before. Lowering
		// happens before the letter test, exactly like FieldsFunc over
		// strings.ToLower(text).
		if c := text[i]; c < utf8.RuneSelf {
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if (c >= 'a' && c <= 'z') || c == '-' {
				word = append(word, c)
				i++
				continue
			}
			i++
		} else {
			r, size := utf8.DecodeRuneInString(text[i:])
			i += size
			if lr := unicode.ToLower(r); unicode.IsLetter(lr) || lr == '-' {
				word = utf8.AppendRune(word, lr)
				continue
			}
		}
		if len(word) > 0 {
			tokens++
			addCatScores(&scores, word)
			word = word[:0]
		}
	}
	if len(word) > 0 {
		tokens++
		addCatScores(&scores, word)
	}
	if tokens == 0 {
		return "Others"
	}
	best, bestScore := "Others", 0
	for i, cat := range sortedCats {
		if scores[i] > bestScore {
			best, bestScore = cat, scores[i]
		}
	}
	return best
}

// addCatScores credits every category whose keyword list contains the
// token. The map index converts without allocating.
func addCatScores(scores *[16]int, word []byte) {
	mask := keywordCats[string(word)]
	for i := 0; mask != 0; i++ {
		if mask&1 != 0 {
			scores[i]++
		}
		mask >>= 1
	}
}

// sortedCats is the taxonomy in the alphabetical tie-break order
// Classify scans; keywordCats maps each keyword to the bitmask (over
// sortedCats positions) of categories listing it.
var sortedCats = func() []string {
	cats := make([]string, 0, len(keywords))
	for c := range keywords {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	if len(cats) > 16 {
		panic("categorize: more categories than the score array holds")
	}
	return cats
}()

var keywordCats = func() map[string]uint16 {
	m := make(map[string]uint16, 256)
	for i, cat := range sortedCats {
		for _, kw := range keywords[cat] {
			m[kw] |= uint16(1) << i
		}
	}
	return m
}()
