package categorize

import "testing"

func TestClassifyByKeywords(t *testing.T) {
	cases := map[string]string{
		"Aktuelle Nachrichten und Schlagzeilen aus der Politik":   "News and Media",
		"Bundesliga heute: der Verein gewinnt das Match im Sport": "Sports",
		"Neue Software und Cloud Server für Entwickler":           "Information Technology",
		"Rezepte zum Kochen und Essen im Restaurant":              "Restaurant and Dining",
		"Aktien und Börse: Kredit und Zinsen bei der Bank":        "Finance and Banking",
		"Urlaub buchen: Hotel und Flug für die Reise":             "Travel",
		"Gesundheit und Fitness: Tipps vom Arzt":                  "Health and Wellness",
		"Auto und Motorrad: PKW Werkstatt Tuning":                 "Personal Vehicles",
		"Die besten Spiele und Gaming Konsole Tests":              "Games",
	}
	for text, want := range cases {
		if got := Classify(text); got != want {
			t.Errorf("Classify(%q) = %q, want %q", text, got, want)
		}
	}
}

func TestClassifyMultilingual(t *testing.T) {
	cases := map[string]string{
		"Le notizie di oggi: politica e breaking news": "News and Media",
		"Calcio e tennis: la liga in diretta":          "Sports",
		"Resor och hotell: boka din semester idag":     "Travel",
		"Recetas de cocina para toda la familia":       "Restaurant and Dining",
	}
	for text, want := range cases {
		if got := Classify(text); got != want {
			t.Errorf("Classify(%q) = %q, want %q", text, got, want)
		}
	}
}

func TestClassifyFallback(t *testing.T) {
	if got := Classify("lorem ipsum dolor sit amet"); got != "Others" {
		t.Fatalf("fallback = %q", got)
	}
	if got := Classify(""); got != "Others" {
		t.Fatalf("empty = %q", got)
	}
}

func TestClassifyDeterministic(t *testing.T) {
	text := "sport nachrichten"
	first := Classify(text)
	for i := 0; i < 20; i++ {
		if Classify(text) != first {
			t.Fatal("nondeterministic tie-break")
		}
	}
}

func TestCategoriesMatchFigure1(t *testing.T) {
	cats := Categories()
	if len(cats) != 16 {
		t.Fatalf("got %d categories", len(cats))
	}
	if cats[0] != "News and Media" || cats[15] != "Others" {
		t.Fatal("Figure 1 order broken")
	}
	for _, c := range cats[:15] {
		if len(Keywords(c)) == 0 {
			t.Errorf("category %q has no keywords", c)
		}
	}
	if Keywords("Others") != nil {
		t.Fatal("Others must have no keywords")
	}
}

func TestKeywordsReturnsCopy(t *testing.T) {
	k := Keywords("Sports")
	k[0] = "mutated"
	if Keywords("Sports")[0] == "mutated" {
		t.Fatal("Keywords leaks internal slice")
	}
}

func TestKeywordsAreSelfClassifying(t *testing.T) {
	// Every category must be recoverable from a sentence built of its
	// own first three keywords — the generator relies on this.
	for _, cat := range Categories()[:15] {
		ks := Keywords(cat)
		text := ks[0] + " und " + ks[1] + " sowie " + ks[2]
		if got := Classify(text); got != cat {
			t.Errorf("category %q self-classifies as %q", cat, got)
		}
	}
}
