// Package smp models Subscription Management Platforms (§4.4): services
// such as contentpass and freechoice that host accept-or-pay cookiewalls
// for partner websites. One subscription (2.99 €/month in the paper)
// unlocks ad- and tracking-free access to every partner site.
//
// The synthetic platforms live under the reserved .example TLD
// (contentpass.example, freechoice.example) and deliver their cookiewall
// markup from CDN subdomains — exactly the deployment shape that makes
// 70% of cookiewalls blockable by domain filter rules in §4.5.
package smp

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cookiewalk/internal/xrand"
)

// Platform describes one Subscription Management Platform.
type Platform struct {
	// Name is the platform identifier ("contentpass", "freechoice").
	Name string
	// Domain is the platform's apex domain.
	Domain string
	// CDNDomain serves the cookiewall script/markup on partner pages.
	CDNDomain string
	// MonthlyPriceEUR is the all-partner subscription price.
	MonthlyPriceEUR float64
}

// ScriptURL returns the cookiewall loader URL partners embed.
func (p Platform) ScriptURL() string {
	return "https://" + p.CDNDomain + "/cw.js"
}

// Platforms returns the two SMPs of the study, contentpass-like first.
func Platforms() []Platform {
	return []Platform{
		{
			Name:            "contentpass",
			Domain:          "contentpass.example",
			CDNDomain:       "cdn.contentpass.example",
			MonthlyPriceEUR: 2.99,
		},
		{
			Name:            "freechoice",
			Domain:          "freechoice.example",
			CDNDomain:       "cdn.freechoice.example",
			MonthlyPriceEUR: 2.99,
		},
	}
}

// PlatformByName returns the named platform.
func PlatformByName(name string) (Platform, bool) {
	for _, p := range Platforms() {
		if p.Name == name {
			return p, true
		}
	}
	return Platform{}, false
}

// Account is a paid subscription account on a platform.
type Account struct {
	Platform string
	Email    string
	// Token authenticates the subscriber on partner sites; it is
	// deterministic so crawls are reproducible.
	Token string
}

// Registry tracks partner sites and subscription accounts. It is safe
// for concurrent use (the farm consults it on every request).
type Registry struct {
	mu       sync.RWMutex
	partners map[string]string  // site domain -> platform name
	accounts map[string]Account // token -> account
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		partners: make(map[string]string),
		accounts: make(map[string]Account),
	}
}

// RegisterPartner records that site's cookiewall is hosted by platform.
func (r *Registry) RegisterPartner(site, platform string) error {
	if _, ok := PlatformByName(platform); !ok {
		return fmt.Errorf("smp: unknown platform %q", platform)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.partners[strings.ToLower(site)] = platform
	return nil
}

// PlatformOf returns the platform hosting site's cookiewall, if any.
func (r *Registry) PlatformOf(site string) (Platform, bool) {
	r.mu.RLock()
	name, ok := r.partners[strings.ToLower(site)]
	r.mu.RUnlock()
	if !ok {
		return Platform{}, false
	}
	return PlatformByName(name)
}

// Partners returns the sorted partner sites of a platform. The paper
// reports 219 partners for contentpass and 167 for freechoice.
func (r *Registry) Partners(platform string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for site, p := range r.partners {
		if p == platform {
			out = append(out, site)
		}
	}
	sort.Strings(out)
	return out
}

// PartnerCount returns the number of partners of a platform.
func (r *Registry) PartnerCount(platform string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, p := range r.partners {
		if p == platform {
			n++
		}
	}
	return n
}

// Subscribe creates (or returns) a subscription account for email on
// platform — the §4.4 step "we create a contentpass account and buy a
// one-month subscription". The token is a stable function of platform
// and email.
func (r *Registry) Subscribe(platform, email string) (Account, error) {
	if _, ok := PlatformByName(platform); !ok {
		return Account{}, fmt.Errorf("smp: unknown platform %q", platform)
	}
	token := fmt.Sprintf("%s-%016x", platform, xrand.Hash64(platform+"|"+email))
	acct := Account{Platform: platform, Email: email, Token: token}
	r.mu.Lock()
	r.accounts[token] = acct
	r.mu.Unlock()
	return acct, nil
}

// ValidateToken checks a subscriber token presented on a partner site
// of the given platform.
func (r *Registry) ValidateToken(platform, token string) bool {
	r.mu.RLock()
	acct, ok := r.accounts[token]
	r.mu.RUnlock()
	return ok && acct.Platform == platform
}

// SubscriptionCookieName is the first-party cookie a partner site sets
// after a successful subscriber login.
const SubscriptionCookieName = "smp_subscription"
