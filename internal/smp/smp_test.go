package smp

import (
	"strings"
	"testing"
)

func TestPlatforms(t *testing.T) {
	ps := Platforms()
	if len(ps) != 2 {
		t.Fatalf("platforms = %d", len(ps))
	}
	if ps[0].Name != "contentpass" || ps[1].Name != "freechoice" {
		t.Fatalf("order: %v %v", ps[0].Name, ps[1].Name)
	}
	for _, p := range ps {
		if p.MonthlyPriceEUR != 2.99 {
			t.Errorf("%s price = %g, paper says 2.99", p.Name, p.MonthlyPriceEUR)
		}
		if !strings.HasSuffix(p.Domain, ".example") {
			t.Errorf("%s domain %s outside reserved TLD", p.Name, p.Domain)
		}
		if !strings.HasPrefix(p.ScriptURL(), "https://cdn.") {
			t.Errorf("%s script URL %s not CDN-hosted", p.Name, p.ScriptURL())
		}
	}
}

func TestPlatformByName(t *testing.T) {
	if _, ok := PlatformByName("contentpass"); !ok {
		t.Fatal("contentpass missing")
	}
	if _, ok := PlatformByName("quantcast"); ok {
		t.Fatal("unknown platform found")
	}
}

func TestRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterPartner("Spiegel.DE", "contentpass"); err != nil {
		t.Fatal(err)
	}
	p, ok := r.PlatformOf("spiegel.de")
	if !ok || p.Name != "contentpass" {
		t.Fatalf("PlatformOf = %v %v", p.Name, ok)
	}
	if _, ok := r.PlatformOf("unknown.de"); ok {
		t.Fatal("found unregistered site")
	}
}

func TestRegisterUnknownPlatform(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterPartner("a.de", "nosuch"); err == nil {
		t.Fatal("expected error")
	}
}

func TestPartnersSortedAndCounted(t *testing.T) {
	r := NewRegistry()
	for _, s := range []string{"c.de", "a.de", "b.de"} {
		if err := r.RegisterPartner(s, "contentpass"); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.RegisterPartner("x.de", "freechoice"); err != nil {
		t.Fatal(err)
	}
	got := r.Partners("contentpass")
	if len(got) != 3 || got[0] != "a.de" || got[2] != "c.de" {
		t.Fatalf("partners = %v", got)
	}
	if r.PartnerCount("contentpass") != 3 || r.PartnerCount("freechoice") != 1 {
		t.Fatal("counts wrong")
	}
}

func TestSubscribeAndValidate(t *testing.T) {
	r := NewRegistry()
	acct, err := r.Subscribe("contentpass", "crawler@measurement.example")
	if err != nil {
		t.Fatal(err)
	}
	if !r.ValidateToken("contentpass", acct.Token) {
		t.Fatal("valid token rejected")
	}
	if r.ValidateToken("freechoice", acct.Token) {
		t.Fatal("token valid on wrong platform")
	}
	if r.ValidateToken("contentpass", "forged") {
		t.Fatal("forged token accepted")
	}
}

func TestSubscribeDeterministicToken(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	a1, _ := r1.Subscribe("contentpass", "x@y.example")
	a2, _ := r2.Subscribe("contentpass", "x@y.example")
	if a1.Token != a2.Token {
		t.Fatal("tokens must be deterministic")
	}
	b, _ := r1.Subscribe("contentpass", "other@y.example")
	if b.Token == a1.Token {
		t.Fatal("different emails must get different tokens")
	}
}

func TestSubscribeUnknownPlatform(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Subscribe("nosuch", "a@b.c"); err == nil {
		t.Fatal("expected error")
	}
}
