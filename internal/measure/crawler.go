// Package measure orchestrates the paper's experiments on top of the
// emulated browser and the banner detector: the eight-VP landscape
// crawl (Table 1, Figures 1-3), detection-accuracy evaluation (§3),
// the cookie comparisons (Figures 4 and 5), the ad-blocker bypass
// experiment (§4.5), and prevalence rates (§4.1).
//
// Every crawl visits sites with a FRESH browser profile per visit
// (cookie jar and all), matching OpenWPM's stateless mode, and runs
// visits in parallel across a worker pool. Results are deterministic:
// worker scheduling never influences outputs because visits are
// independent and aggregation is order-stable.
package measure

import (
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"

	"cookiewalk/internal/adblock"
	"cookiewalk/internal/browser"
	"cookiewalk/internal/categorize"
	"cookiewalk/internal/cookies"
	"cookiewalk/internal/core"
	"cookiewalk/internal/langdetect"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/trackdb"
	"cookiewalk/internal/vantage"
)

// Crawler runs measurements against a registry through a transport.
type Crawler struct {
	// Reg provides targets, toplists and ground truth for accuracy
	// audits. The detector itself never consults it.
	Reg *synthweb.Registry
	// Transport is normally webfarm.(*Farm).Transport().
	Transport http.RoundTripper
	// Workers bounds crawl parallelism (default: GOMAXPROCS).
	Workers int
}

// New returns a Crawler.
func New(reg *synthweb.Registry, transport http.RoundTripper) *Crawler {
	return &Crawler{Reg: reg, Transport: transport}
}

func (c *Crawler) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Observation is the per-site outcome of one measurement visit.
type Observation struct {
	Domain string
	VP     string
	// Err is the transport error for unreachable/unknown hosts.
	Err string

	Kind       core.Kind
	Source     core.Source
	ShadowMode string
	HasAccept  bool
	HasReject  bool
	HasSub     bool

	// MatchedWords/PriceCount/MonthlyEUR describe the §3 classification
	// evidence.
	MatchedWords []string
	PriceCount   int
	MonthlyEUR   float64

	// Language and Category are MEASURED from page text (CLD3 and
	// FortiGuard substitutes), not read from the registry.
	Language string
	Category string

	// Quirks from the bypass experiment.
	AdblockPlea  bool
	ScrollLocked bool
}

// TLD returns the domain's final label ("de", "com", ...), the unit of
// Figure 2's rows.
func (o Observation) TLD() string {
	idx := strings.LastIndexByte(o.Domain, '.')
	if idx < 0 {
		return o.Domain
	}
	return o.Domain[idx+1:]
}

// VisitOpts configures a single visit.
type VisitOpts struct {
	// Visit labels the repetition for server-side jitter.
	Visit string
	// Blocker enables the uBlock stand-in.
	Blocker *adblock.Engine
}

// Visit loads one site from one vantage point with a fresh profile and
// analyzes its banner.
func (c *Crawler) Visit(vp vantage.VP, domain string, opts VisitOpts) Observation {
	obs := Observation{Domain: domain, VP: vp.Name}
	b := browser.New(c.Transport, vp)
	b.Visit = opts.Visit
	b.Blocker = opts.Blocker
	page, err := b.Open("https://" + domain + "/")
	if err != nil {
		obs.Err = err.Error()
		return obs
	}
	det := core.Detect(page.Doc)
	obs.Kind = det.Kind
	obs.Source = det.Source
	obs.ShadowMode = string(det.ShadowMode)
	obs.HasAccept = det.AcceptButton != nil
	obs.HasReject = det.RejectButton != nil
	obs.HasSub = det.SubscribeButton != nil
	obs.MatchedWords = det.MatchedWords
	obs.PriceCount = len(det.Prices)
	obs.MonthlyEUR = det.MonthlyEUR
	obs.AdblockPlea = page.AdblockPlea
	obs.ScrollLocked = page.ScrollLocked

	if body := page.Doc.Body(); body != nil {
		obs.Language = langdetect.Detect(body.Text()).Lang
		// Categorize from the content area only: headers repeat the
		// site name (which FortiGuard would not score) and banners
		// carry consent vocabulary, both of which pollute keyword
		// counting.
		content := body
		if m := page.Doc.QuerySelector("main"); m != nil {
			content = m
		}
		obs.Category = categorize.Classify(content.Text())
	}
	return obs
}

// parallelMap runs fn over items with the crawler's worker pool and
// returns results in input order.
func parallelMap[T any](workers int, items []string, fn func(string) T) []T {
	out := make([]T, len(items))
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				out[i] = fn(items[i])
			}
		}()
	}
	for i := range items {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return out
}

// CookieTally is the averaged per-site cookie triple of Figures 4/5.
type CookieTally struct {
	FirstParty float64
	ThirdParty float64
	Tracking   float64
}

// SiteCookies pairs a domain with its averaged tally.
type SiteCookies struct {
	Domain string
	Tally  CookieTally
	// Err is set when every repetition failed.
	Err string
}

// InteractionMode selects what to click on the banner.
type InteractionMode int

const (
	// ModeAccept clicks the accept button (consent to tracking).
	ModeAccept InteractionMode = iota
	// ModeSubscribe logs in with an SMP subscription (§4.4).
	ModeSubscribe
)

// MeasureCookies visits each domain reps times from vp, performs the
// interaction, and returns per-site average cookie tallies — the §4.3
// methodology ("we repeat each measurement five times per website and
// calculate the average number of cookies per website").
func (c *Crawler) MeasureCookies(vp vantage.VP, domains []string, reps int, mode InteractionMode, smpToken string) []SiteCookies {
	return parallelMap(c.workers(), domains, func(domain string) SiteCookies {
		var sum CookieTally
		ok := 0
		var lastErr string
		for rep := 0; rep < reps; rep++ {
			tally, err := c.cookieVisit(vp, domain, rep, mode, smpToken)
			if err != nil {
				lastErr = err.Error()
				continue
			}
			sum.FirstParty += float64(tally.FirstParty)
			sum.ThirdParty += float64(tally.ThirdParty)
			sum.Tracking += float64(tally.Tracking)
			ok++
		}
		if ok == 0 {
			return SiteCookies{Domain: domain, Err: lastErr}
		}
		n := float64(ok)
		return SiteCookies{Domain: domain, Tally: CookieTally{
			FirstParty: sum.FirstParty / n,
			ThirdParty: sum.ThirdParty / n,
			Tracking:   sum.Tracking / n,
		}}
	})
}

func (c *Crawler) cookieVisit(vp vantage.VP, domain string, rep int, mode InteractionMode, smpToken string) (cookies.Tally, error) {
	b := browser.New(c.Transport, vp)
	b.Visit = fmt.Sprintf("%s|%d|%s", vp.Name, rep, modeLabel(mode))
	b.SMPToken = smpToken
	page, err := b.Open("https://" + domain + "/")
	if err != nil {
		return cookies.Tally{}, err
	}
	det := core.Detect(page.Doc)
	switch mode {
	case ModeAccept:
		if det.AcceptButton != nil {
			if page, err = b.Click(page, det.AcceptButton); err != nil {
				return cookies.Tally{}, err
			}
		}
	case ModeSubscribe:
		if det.SubscribeButton != nil {
			if page, err = b.Click(page, det.SubscribeButton); err != nil {
				return cookies.Tally{}, err
			}
		}
	}
	_ = page
	return cookies.Count(b.Jar, domain, trackdb.IsTracking), nil
}

func modeLabel(m InteractionMode) string {
	if m == ModeSubscribe {
		return "sub"
	}
	return "accept"
}
