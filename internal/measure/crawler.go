// Package measure orchestrates the paper's experiments on top of the
// emulated browser and the banner detector: the eight-VP landscape
// crawl (Table 1, Figures 1-3), detection-accuracy evaluation (§3),
// the cookie comparisons (Figures 4 and 5), the ad-blocker bypass
// experiment (§4.5), and prevalence rates (§4.1).
//
// Every crawl visits sites with a FRESH browser profile per visit
// (cookie jar and all), matching OpenWPM's stateless mode. Crawls run
// through the internal/campaign engine: targets are sharded, visits run
// on per-shard worker pools, and results stream into order-stable
// incremental aggregators — so outputs are byte-identical for a fixed
// seed regardless of worker or shard count, and campaigns can be
// canceled mid-flight with per-shard accounting of what ran.
//
// Determinism invariant. Every measurement is a pure function of the
// universe seed and the target: never of wall-clock time, scheduling,
// vantage-point visit ORDER, or which sibling campaigns are in
// flight. The analysis memo sharpens this to VP-independence —
// everything analyzePage computes must depend only on page CONTENT
// (equal fingerprints imply equal analyses), so any VP-dependent
// value has to be captured at fetch time and stamped on after memo
// lookup, and the memo is only ever seeded from a complete,
// successful fetch. Results are therefore byte-identical with the
// memo on or off, across kill/resume, distributed fleets, and
// injected transport faults; errors use stable text so journaled
// failures replay byte-identically too.
package measure

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"cookiewalk/internal/adblock"
	"cookiewalk/internal/browser"
	"cookiewalk/internal/campaign"
	"cookiewalk/internal/categorize"
	"cookiewalk/internal/cookies"
	"cookiewalk/internal/core"
	"cookiewalk/internal/dom"
	"cookiewalk/internal/langdetect"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/trackdb"
	"cookiewalk/internal/vantage"
)

// Crawler runs measurements against a registry through a transport.
type Crawler struct {
	// Reg provides targets, toplists and ground truth for accuracy
	// audits. The detector itself never consults it.
	Reg *synthweb.Registry
	// Transport is normally webfarm.(*Farm).Transport().
	Transport http.RoundTripper
	// Workers bounds per-shard crawl parallelism (default: GOMAXPROCS).
	Workers int
	// Shards is the campaign shard count (default: derived from the
	// target-list size, see campaign.DefaultShards). Sharding never
	// changes results.
	Shards int
	// Progress, when set, receives streaming campaign progress
	// (visit/error counters per shard) from every crawl this crawler
	// runs. Purely observational. Campaigns running concurrently (the
	// study's ExperimentParallelism > 1) invoke it from their own
	// delivery goroutines simultaneously — make it concurrency-safe.
	Progress func(campaign.Progress)
	// ProgressEvery overrides the delivery interval between Progress
	// callbacks (default: the engine's, 1000). Purely observational.
	ProgressEvery int
	// NoAnalysisCache disables the content-fingerprint analysis memo:
	// every visit re-runs parse/detect/classify even for page bodies
	// already analyzed. Results are byte-identical either way — flip
	// this on when debugging a detection change so every visit
	// exercises the full pipeline.
	NoAnalysisCache bool
	// CheckpointDir, when set, makes the landscape crawl crash-safe:
	// each vantage point's campaign journals its delivered observations
	// into CheckpointDir/landscape-<vp>/ (see campaign.Checkpoint). A
	// fresh Landscape call starts fresh journals; with Resume set it
	// replays them instead, re-crawling only what is missing. Results
	// are byte-identical either way.
	CheckpointDir string
	// Resume makes every checkpointed campaign replay the journals
	// under CheckpointDir (no-op when CheckpointDir is empty; an
	// empty/missing journal degrades to a fresh crawl).
	Resume bool
	// Budget, when set, is a weighted worker budget shared by every
	// campaign this crawler runs: concurrent experiment campaigns draw
	// visit slots from one bounded pool instead of each saturating its
	// own Workers-sized pool. Purely a scheduling knob — results are
	// identical with or without it.
	Budget *campaign.Budget
	// VisitTimeout, when positive, bounds each visit's wall clock: the
	// deadline context is attached to every request the visit makes, so
	// stalls and slow hosts cut off instead of wedging a worker.
	VisitTimeout time.Duration
	// VisitRetries, when positive, retries transient transport failures
	// per request (timeouts, resets, 5xx, torn bodies) with seeded
	// decorrelated-jitter backoff before giving up. Faults that a retry
	// erases leave results byte-identical to a clean transport's;
	// exhausted budgets surface as visit errors, never partial pages.
	VisitRetries int
	// RetryBackoff is the initial retry delay (default 100ms, doubled
	// per attempt, capped at 2s).
	RetryBackoff time.Duration
	// RetrySeed seeds the retry jitter (timing only, never results).
	RetrySeed uint64
	// Gate, when set, is the shared per-host admission controller
	// (rate limiter + circuit breakers, see internal/hostgate) consulted
	// around every request of every visit.
	Gate browser.HostGate
}

// New returns a Crawler.
func New(reg *synthweb.Registry, transport http.RoundTripper) *Crawler {
	return &Crawler{Reg: reg, Transport: transport}
}

// engine assembles the campaign configuration for one crawl.
func (c *Crawler) engine(label string) campaign.Config {
	return campaign.Config{
		Label:         label,
		Workers:       c.Workers,
		Shards:        c.Shards,
		OnProgress:    c.Progress,
		ProgressEvery: c.ProgressEvery,
		Budget:        c.Budget,
	}
}

// runExperimentCampaign executes one labeled experiment campaign
// through the engine. With Crawler.CheckpointDir set (and a non-nil
// codec), the campaign journals its deliveries into
// CheckpointDir/<path(label)>/ — every experiment gets its own journal
// subdirectory, keyed by its campaign label — and with Crawler.Resume
// additionally set, a previous (killed) run's journal replays instead,
// re-visiting only what is missing. Labels must therefore be unique
// per campaign across the whole study. A nil codec opts the campaign
// out of journaling (single-visit campaigns like AnalyzeOne).
func runExperimentCampaign[R any](ctx context.Context, c *Crawler, label string, codec campaign.Codec, targets []string,
	visit func(context.Context, string) (R, error), sink func(campaign.Result[R])) (campaign.Stats, error) {

	cfg := c.engine(label)
	run := campaign.Run[string, R]
	if c.CheckpointDir != "" && codec != nil {
		cfg.Checkpoint = &campaign.Checkpoint{
			Dir:         filepath.Join(c.CheckpointDir, campaign.PathLabel(label)),
			Codec:       codec,
			TargetsHash: campaign.HashTargets(targets),
		}
		if c.Resume {
			run = campaign.Resume[string, R]
		}
	}
	return run(ctx, cfg, targets, visit, sink)
}

// browserPool recycles emulated-browser sessions — and their cookie-jar
// maps, request scratch and parser arenas — for visits running OUTSIDE
// a campaign worker (direct Visit calls, tests). Campaign visits use
// the worker's Affinity slot instead: each worker goroutine keeps one
// session pinned for its whole lifetime, so session state never
// bounces between cores through a global pool on the crawl hot path.
// Every acquire resets the session to a fresh profile, so reuse is
// invisible to the measurement either way.
var browserPool = sync.Pool{New: func() any { return new(browser.Browser) }}

// acquireBrowser returns a fresh-profile session for one visit — the
// campaign worker's affine session when ctx carries one, the global
// pool's otherwise. Release it with releaseBrowser (passing the same
// affinity slot) when no page state is needed anymore.
func (c *Crawler) acquireBrowser(ctx context.Context, vp vantage.VP) (*browser.Browser, *campaign.Affinity) {
	aff := campaign.AffinityFrom(ctx)
	var b *browser.Browser
	if aff != nil {
		// Take empties the slot, so a (hypothetical) nested acquire on
		// the same worker falls through to a fresh session instead of
		// aliasing this one.
		b, _ = aff.Take().(*browser.Browser)
		if b == nil {
			b = new(browser.Browser)
		}
	} else {
		b = browserPool.Get().(*browser.Browser)
	}
	b.Reset(c.Transport, vp)
	return b, aff
}

func releaseBrowser(b *browser.Browser, aff *campaign.Affinity) {
	if aff != nil {
		aff.Put(b)
		return
	}
	browserPool.Put(b)
}

// session returns a fresh-profile browser armed with the crawler's
// resilience policy (visit deadline, retries, host gate, and the
// campaign meter carried by ctx), plus a cancel that is non-nil
// exactly when a visit timeout was armed — call it (and
// releaseBrowser) when the visit is done. With no policy configured
// it degenerates to acquireBrowser: the zero-Resilience browser pays
// nothing.
func (c *Crawler) session(ctx context.Context, vp vantage.VP) (*browser.Browser, *campaign.Affinity, context.CancelFunc) {
	b, aff := c.acquireBrowser(ctx, vp)
	var cancel context.CancelFunc
	if c.VisitTimeout > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		var tctx context.Context
		tctx, cancel = context.WithTimeout(ctx, c.VisitTimeout)
		b.Resilience.Ctx = tctx
	}
	if c.VisitRetries > 0 || c.Gate != nil {
		b.Resilience.Retries = c.VisitRetries
		b.Resilience.Backoff = c.RetryBackoff
		b.Resilience.Seed = c.RetrySeed
		b.Resilience.Gate = c.Gate
		if ctx != nil {
			if m := campaign.MeterFrom(ctx); m != nil {
				b.Resilience.Meter = m
			}
		}
	}
	return b, aff, cancel
}

// Observation is the per-site outcome of one measurement visit.
type Observation struct {
	Domain string
	VP     string
	// Err is the transport error for unreachable/unknown hosts.
	Err string

	// Fingerprint is the visited page's content token
	// (browser.Page.Fingerprint; zero for failed fetches). It keys the
	// process-wide analysis memo, and the checkpoint codec persists it
	// so a resumed campaign re-seeds the memo from replayed
	// observations — fresh visits after a resume hit the memo exactly
	// as they would have in the uninterrupted run.
	Fingerprint uint64

	Kind       core.Kind
	Source     core.Source
	ShadowMode string
	HasAccept  bool
	HasReject  bool
	HasSub     bool

	// MatchedWords/PriceCount/MonthlyEUR describe the §3 classification
	// evidence. MatchedWords is FROZEN: it aliases the process-wide
	// analysis memo (shared by every visit resolving to the same page
	// content), so consumers must never mutate it in place — copy
	// before sorting or appending (cookiewalk.SiteReport and the
	// dataset export do exactly that).
	MatchedWords []string
	PriceCount   int
	MonthlyEUR   float64

	// Language and Category are MEASURED from page text (CLD3 and
	// FortiGuard substitutes), not read from the registry.
	Language string
	Category string

	// Quirks from the bypass experiment.
	AdblockPlea  bool
	ScrollLocked bool
}

// TLD returns the domain's final label ("de", "com", ...), the unit of
// Figure 2's rows.
func (o Observation) TLD() string {
	idx := strings.LastIndexByte(o.Domain, '.')
	if idx < 0 {
		return o.Domain
	}
	return o.Domain[idx+1:]
}

// VisitOpts configures a single visit.
type VisitOpts struct {
	// Visit labels the repetition for server-side jitter.
	Visit string
	// Blocker enables the uBlock stand-in.
	Blocker *adblock.Engine
}

// Visit loads one site from one vantage point with a fresh profile and
// analyzes its banner. ctx carries the campaign's cancellation,
// deadline base and resilience meter; direct callers pass
// context.Background().
//
// The visit is split in two: a per-visit FETCH (transport dispatch,
// cookies, vantage headers) and a VP-independent ANALYSIS (parse,
// core.Detect, language detection, categorization) memoized by the
// page's content fingerprint. On a memo hit — e.g. the second through
// eighth vantage points of a landscape crawl loading an identical
// render — the visit never parses the page at all; only the per-visit
// Domain/VP fields are stamped onto the shared analysis.
//
// Memo-poisoning invariant: the analysis memo is only ever filled
// from a composition whose every fetch either succeeded (post-retry)
// or failed deterministically. A composition degraded by exhausted
// transient retries is an error — the observation carries Err and a
// zero Fingerprint, nothing is memoized, and concurrent visits
// waiting on the same fingerprint re-claim and recompute.
func (c *Crawler) Visit(ctx context.Context, vp vantage.VP, domain string, opts VisitOpts) Observation {
	obs := Observation{Domain: domain, VP: vp.Name}
	b, aff, cancel := c.session(ctx, vp)
	defer releaseBrowser(b, aff)
	if cancel != nil {
		defer cancel()
	}
	b.Visit = opts.Visit
	b.Blocker = opts.Blocker
	fr, err := b.FetchTopDomain(domain)
	if err != nil {
		obs.Err = err.Error()
		return obs
	}
	var a core.Analysis
	if c.NoAnalysisCache {
		a = analyzePage(b.Compose(fr))
		if cerr := b.ComposeErr(); cerr != nil {
			obs.Err = cerr.Error()
			return obs
		}
	} else {
		var aerr error
		a, aerr = analyses.getChecked(fr.Fingerprint, func() (core.Analysis, error) {
			page := b.Compose(fr)
			if cerr := b.ComposeErr(); cerr != nil {
				return core.Analysis{}, cerr
			}
			return analyzePage(page), nil
		})
		if aerr != nil {
			obs.Err = aerr.Error()
			return obs
		}
	}
	obs.Fingerprint = fr.Fingerprint
	obs.setAnalysis(a)
	return obs
}

// setAnalysis stamps the VP-independent analysis onto a per-visit
// observation. The MatchedWords slice is shared with the cache entry
// (frozen by analyzePage), never copied per visit.
func (o *Observation) setAnalysis(a core.Analysis) {
	o.Kind = a.Kind
	o.Source = a.Source
	o.ShadowMode = a.ShadowMode
	o.HasAccept = a.HasAccept
	o.HasReject = a.HasReject
	o.HasSub = a.HasSub
	o.MatchedWords = a.MatchedWords
	o.PriceCount = a.PriceCount
	o.MonthlyEUR = a.MonthlyEUR
	o.Language = a.Language
	o.Category = a.Category
	o.AdblockPlea = a.AdblockPlea
	o.ScrollLocked = a.ScrollLocked
}

// analyzePage runs the pure post-fetch pipeline — detection,
// classification, language and category measurement — on a composed
// page. It depends on page content only (never on the vantage point,
// visit label or worker), the invariant that makes its result safe to
// memoize by content fingerprint.
func analyzePage(page *browser.Page) core.Analysis {
	det := core.Detect(page.Doc)
	a := core.Analysis{
		Kind:         det.Kind,
		Source:       det.Source,
		ShadowMode:   string(det.ShadowMode),
		HasAccept:    det.AcceptButton != nil,
		HasReject:    det.RejectButton != nil,
		HasSub:       det.SubscribeButton != nil,
		MatchedWords: frozenWords(det.MatchedWords),
		PriceCount:   len(det.Prices),
		MonthlyEUR:   det.MonthlyEUR,
		AdblockPlea:  page.AdblockPlea,
		ScrollLocked: page.ScrollLocked,
	}
	if body := page.Doc.Body(); body != nil {
		a.Language = langdetect.Detect(body.Text()).Lang
		// Categorize from the content area only: headers repeat the
		// site name (which FortiGuard would not score) and banners
		// carry consent vocabulary, both of which pollute keyword
		// counting.
		content := body
		if m := page.Doc.Query(mainSel); m != nil {
			content = m
		}
		a.Category = categorize.Classify(content.Text())
	}
	return a
}

// frozenWords copies the matched words into an exact-capacity slice:
// the analysis is shared across visits, so an append by any future
// consumer must reallocate instead of scribbling on the cache entry.
func frozenWords(ws []string) []string {
	if len(ws) == 0 {
		return nil
	}
	out := make([]string, len(ws))
	copy(out, ws)
	return out
}

// mainSel is compiled once: Visit runs it on every page of every crawl.
var mainSel = dom.MustCompileSelector("main")

// AnalyzeOne runs a single-target campaign: one visit through the same
// engine path (progress callbacks, shard accounting) as full crawls.
// The returned error is the visit's transport error, or the
// cancellation cause when ctx was canceled first.
func (c *Crawler) AnalyzeOne(ctx context.Context, vp vantage.VP, domain string, opts VisitOpts) (Observation, error) {
	var obs Observation
	var visitErr error
	_, err := campaign.Run(ctx, c.engine("analyze "+domain), []string{domain},
		func(ctx context.Context, d string) (Observation, error) {
			o := c.Visit(ctx, vp, d, opts)
			if o.Err != "" {
				return o, errors.New(o.Err)
			}
			return o, nil
		},
		func(r campaign.Result[Observation]) {
			obs = r.Value
			visitErr = r.Err
		})
	if err != nil {
		return obs, err
	}
	return obs, visitErr
}

// CookieTally is the averaged per-site cookie triple of Figures 4/5.
type CookieTally struct {
	FirstParty float64
	ThirdParty float64
	Tracking   float64
}

// SiteCookies pairs a domain with its averaged tally.
type SiteCookies struct {
	Domain string
	Tally  CookieTally
	// Err is set when every repetition failed.
	Err string
}

// InteractionMode selects what to click on the banner.
type InteractionMode int

const (
	// ModeAccept clicks the accept button (consent to tracking).
	ModeAccept InteractionMode = iota
	// ModeSubscribe logs in with an SMP subscription (§4.4).
	ModeSubscribe
)

// MeasureCookies visits each domain reps times from vp, performs the
// interaction, and returns per-site average cookie tallies — the §4.3
// methodology ("we repeat each measurement five times per website and
// calculate the average number of cookies per website"). The returned
// error is non-nil only when ctx is canceled mid-campaign (or on a
// checkpoint journal failure); the tallies streamed before
// cancellation are returned with it. label names the campaign in
// progress snapshots and checkpoint journals ("fig4 cookiewall",
// "fig5 accept", ...) and must be unique per campaign.
//
// Like every other experiment path, this streams through the engine:
// each site's tally is delivered in input order the moment it is
// ready, and the only materialization left is the caller-facing
// result slice itself (Figures 4-6 genuinely need the full per-site
// set for medians and correlations).
func (c *Crawler) MeasureCookies(ctx context.Context, vp vantage.VP, label string, domains []string, reps int, mode InteractionMode, smpToken string) ([]SiteCookies, error) {
	out := make([]SiteCookies, 0, len(domains))
	_, err := runExperimentCampaign(ctx, c, label, SiteCookiesCodec{}, domains,
		func(ctx context.Context, domain string) (SiteCookies, error) {
			var sum CookieTally
			ok := 0
			var lastErr string
			for rep := 0; rep < reps; rep++ {
				tally, err := c.cookieVisit(ctx, vp, domain, rep, mode, smpToken)
				if err != nil {
					lastErr = err.Error()
					continue
				}
				sum.FirstParty += float64(tally.FirstParty)
				sum.ThirdParty += float64(tally.ThirdParty)
				sum.Tracking += float64(tally.Tracking)
				ok++
			}
			if ok == 0 {
				return SiteCookies{Domain: domain, Err: lastErr}, errors.New(lastErr)
			}
			n := float64(ok)
			return SiteCookies{Domain: domain, Tally: CookieTally{
				FirstParty: sum.FirstParty / n,
				ThirdParty: sum.ThirdParty / n,
				Tracking:   sum.Tracking / n,
			}}, nil
		},
		func(r campaign.Result[SiteCookies]) {
			// In-order streaming delivery: appending yields the
			// positional layout (out[i] belongs to domains[i]).
			out = append(out, r.Value)
		})
	return out, err
}

func (c *Crawler) cookieVisit(ctx context.Context, vp vantage.VP, domain string, rep int, mode InteractionMode, smpToken string) (cookies.Tally, error) {
	b, aff, cancel := c.session(ctx, vp)
	defer releaseBrowser(b, aff)
	if cancel != nil {
		defer cancel()
	}
	b.Visit = fmt.Sprintf("%s|%d|%s", vp.Name, rep, modeLabel(mode))
	b.SMPToken = smpToken
	page, err := b.Open("https://" + domain + "/")
	if err != nil {
		return cookies.Tally{}, err
	}
	det := core.Detect(page.Doc)
	switch mode {
	case ModeAccept:
		if det.AcceptButton != nil {
			if page, err = b.Click(page, det.AcceptButton); err != nil {
				return cookies.Tally{}, err
			}
		}
	case ModeSubscribe:
		if det.SubscribeButton != nil {
			if page, err = b.Click(page, det.SubscribeButton); err != nil {
				return cookies.Tally{}, err
			}
		}
	}
	_ = page
	return cookies.Count(b.Jar, domain, trackdb.IsTracking), nil
}

func modeLabel(m InteractionMode) string {
	if m == ModeSubscribe {
		return "sub"
	}
	return "accept"
}
