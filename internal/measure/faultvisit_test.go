package measure

import (
	"context"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"cookiewalk/internal/browser/faulttransport"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/webfarm"
)

// The memo-poisoning tests get their own universe (distinct seed) so
// their fingerprints cannot collide with entries other tests already
// planted in the process-global analysis memo — the first visit of each
// domain here is genuinely the first time its content is analyzed.
func faultFixture(t *testing.T) (*synthweb.Registry, *webfarm.Farm, []string) {
	t.Helper()
	reg := synthweb.Generate(synthweb.Config{Seed: 987654, FillerScale: 0.01})
	farm := webfarm.New(reg)
	targets := reg.TargetList()
	if len(targets) < 4 {
		t.Fatalf("fixture too small: %d targets", len(targets))
	}
	return reg, farm, targets
}

// plainOnly hides the farm's RoundTripBody fast path so the injector
// (and the browser) fall back to the plain http.RoundTripper seam,
// where truncation delivers real partial bytes before the tear.
type plainOnly struct{ rt http.RoundTripper }

func (p plainOnly) RoundTrip(req *http.Request) (*http.Response, error) { return p.rt.RoundTrip(req) }

// TestTruncatedThenRetrySuccessMatchesClean is the memo-poisoning
// invariant on the fast-path seam: a visit whose first attempt is torn
// mid-transfer and whose retry succeeds must produce the same
// Fingerprint and Observation as a visit over clean transport — the
// truncated attempt leaves no trace in the analysis memo.
func TestTruncatedThenRetrySuccessMatchesClean(t *testing.T) {
	reg, farm, targets := faultFixture(t)
	domain := targets[0]

	rt, ft := faulttransport.Wrap(farm.Transport(), 7, faulttransport.Profile{
		Truncate: 1000, MaxPerRequest: 1,
	})
	flaky := New(reg, rt)
	flaky.VisitRetries = 2
	flaky.RetryBackoff = time.Millisecond

	got := flaky.Visit(context.Background(), germanyVP(), domain, VisitOpts{})
	if got.Err != "" {
		t.Fatalf("flaky visit failed despite retries: %s", got.Err)
	}
	if ft.Injected().Truncates == 0 {
		t.Fatal("injector never fired — the test is vacuous")
	}

	clean := New(reg, farm.Transport())
	want := clean.Visit(context.Background(), germanyVP(), domain, VisitOpts{})
	if want.Err != "" {
		t.Fatalf("clean visit failed: %s", want.Err)
	}
	if got.Fingerprint == 0 || got.Fingerprint != want.Fingerprint {
		t.Fatalf("fingerprints diverge: flaky %#x, clean %#x", got.Fingerprint, want.Fingerprint)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("observations diverge:\nflaky: %+v\nclean: %+v", got, want)
	}
}

// TestTornBodyRetryMatchesClean is the same invariant on the plain
// RoundTripper seam, where a torn body hands the reader real partial
// bytes before failing — the nastier poisoning vector, since partial
// content exists that must never reach analysis.
func TestTornBodyRetryMatchesClean(t *testing.T) {
	reg, farm, targets := faultFixture(t)
	domain := targets[1]

	rt, ft := faulttransport.Wrap(plainOnly{farm.Transport()}, 11, faulttransport.Profile{
		Truncate: 1000, MaxPerRequest: 1,
	})
	flaky := New(reg, rt)
	flaky.VisitRetries = 2
	flaky.RetryBackoff = time.Millisecond

	got := flaky.Visit(context.Background(), germanyVP(), domain, VisitOpts{})
	if got.Err != "" {
		t.Fatalf("flaky visit failed despite retries: %s", got.Err)
	}
	if ft.Injected().Truncates == 0 {
		t.Fatal("injector never fired — the test is vacuous")
	}

	clean := New(reg, plainOnly{farm.Transport()})
	want := clean.Visit(context.Background(), germanyVP(), domain, VisitOpts{})
	if want.Err != "" {
		t.Fatalf("clean visit failed: %s", want.Err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("observations diverge:\nflaky: %+v\nclean: %+v", got, want)
	}
}

// TestFailedVisitNeverSeedsMemo drives visits that fail outright (no
// retries, every attempt torn) and then checks a clean visit of the
// same page computes the real analysis: the failures neither published
// a memo entry nor wedged its singleflight slot.
func TestFailedVisitNeverSeedsMemo(t *testing.T) {
	reg, farm, targets := faultFixture(t)
	domain := targets[2]

	rt, _ := faulttransport.Wrap(farm.Transport(), 13, faulttransport.Profile{
		Truncate: 1000, MaxPerRequest: -1,
	})
	broken := New(reg, rt)
	for i := 0; i < 3; i++ {
		if o := broken.Visit(context.Background(), germanyVP(), domain, VisitOpts{}); o.Err == "" {
			t.Fatal("always-torn transport produced a successful visit")
		} else if o.Fingerprint != 0 {
			t.Fatalf("failed visit carries fingerprint %#x", o.Fingerprint)
		}
	}

	clean := New(reg, farm.Transport())
	want := clean.Visit(context.Background(), germanyVP(), domain, VisitOpts{})
	if want.Err != "" {
		t.Fatalf("clean visit after failures: %s", want.Err)
	}
	if want.Fingerprint == 0 || want.Kind.String() == "" {
		t.Fatalf("clean visit degraded: %+v", want)
	}
}

// TestMemoClaimRaceUnderFaults races failing and clean visitors of the
// same page (run with -race): failed singleflight claims must unblock
// concurrent waiters into re-claiming, and whoever succeeds publishes
// the one true analysis. Every successful observation must match the
// clean reference exactly.
func TestMemoClaimRaceUnderFaults(t *testing.T) {
	reg, farm, targets := faultFixture(t)
	domain := targets[3]

	rt, _ := faulttransport.Wrap(farm.Transport(), 17, faulttransport.Profile{
		Truncate: 1000, MaxPerRequest: -1,
	})
	broken := New(reg, rt)
	clean := New(reg, farm.Transport())

	const rounds = 32
	var wg sync.WaitGroup
	obs := make([]Observation, rounds)
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := clean
			if i%2 == 0 {
				c = broken
			}
			obs[i] = c.Visit(context.Background(), germanyVP(), domain, VisitOpts{})
		}(i)
	}
	wg.Wait()

	want := clean.Visit(context.Background(), germanyVP(), domain, VisitOpts{})
	if want.Err != "" {
		t.Fatalf("clean reference visit: %s", want.Err)
	}
	for i, o := range obs {
		if i%2 == 0 {
			if o.Err == "" {
				t.Fatalf("visit %d over always-torn transport succeeded", i)
			}
			continue
		}
		if !reflect.DeepEqual(o, want) {
			t.Fatalf("clean visit %d diverges under racing faults:\ngot:  %+v\nwant: %+v", i, o, want)
		}
	}
}
