package measure

import (
	"context"
	"errors"
	"sort"
	"sync"

	"cookiewalk/internal/campaign"
	"cookiewalk/internal/core"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/vantage"
	"cookiewalk/internal/xrand"
)

// VPResult aggregates one vantage point's crawl over the target list.
type VPResult struct {
	VP       string
	Visited  int
	Errors   int
	NoBanner int
	Regular  int
	// Cookiewalls are the RAW cookiewall-classified detections
	// (including eventual false positives; the accuracy audit separates
	// them).
	Cookiewalls []Observation
	// RegularAcceptDomains is the sampling pool for Figure 4: sites
	// showing a regular banner with an accept button.
	RegularAcceptDomains []string
	// Stats is the campaign engine's per-shard account of this VP's
	// crawl (visit, error and cancellation counters).
	Stats campaign.Stats
}

// Landscape is the full §4.1 crawl: every vantage point over every
// target domain.
type Landscape struct {
	Targets int
	PerVP   []VPResult

	// indexOnce guards the derived lookup structures below, built
	// lazily on first use (and eagerly by Landscape crawls). Table1,
	// Accuracy and Prevalence all resolve VPs and the detection union
	// repeatedly; precomputing turns those per-call scans over every
	// VP's Cookiewalls into map lookups. Populate PerVP fully before
	// the first Result/UnionDetections call.
	indexOnce sync.Once
	byVP      map[string]int
	union     []string
}

// buildIndex derives the VP index and the sorted distinct cookiewall
// union exactly as the former per-call scans did.
func (l *Landscape) buildIndex() {
	l.byVP = make(map[string]int, len(l.PerVP))
	seen := make(map[string]bool)
	for i, r := range l.PerVP {
		if _, dup := l.byVP[r.VP]; !dup {
			l.byVP[r.VP] = i
		}
		for _, o := range r.Cookiewalls {
			if !seen[o.Domain] {
				seen[o.Domain] = true
				l.union = append(l.union, o.Domain)
			}
		}
	}
	sort.Strings(l.union)
}

// Landscape crawls all targets from each vantage point, streaming every
// observation into the per-VP tallies as it arrives — no full
// observation list is ever materialized. The error is non-nil only when
// ctx is canceled mid-campaign (or, for checkpointed crawls, on a
// journal failure); the partial landscape crawled so far (completed VPs
// plus the canceled VP's ledger) is returned with it.
//
// With Crawler.CheckpointDir set, each vantage point's campaign
// journals its observations durably; with Crawler.Resume additionally
// set, journals from a previous (killed) Landscape call replay instead
// of re-crawling, and only the missing visits run — the resulting
// Landscape is byte-identical to an uninterrupted crawl's.
func (c *Crawler) Landscape(ctx context.Context, vps []vantage.VP, targets []string) (*Landscape, error) {
	l := &Landscape{Targets: len(targets)}
	for _, vp := range vps {
		vp := vp
		res := VPResult{VP: vp.Name}
		stats, err := runExperimentCampaign(ctx, c, landscapeLabel(vp), ObservationCodec{}, targets,
			func(ctx context.Context, domain string) (Observation, error) {
				o := c.Visit(ctx, vp, domain, VisitOpts{})
				if o.Err != "" {
					return o, errors.New(o.Err)
				}
				return o, nil
			},
			func(r campaign.Result[Observation]) {
				o := r.Value
				res.Visited++
				switch {
				case o.Err != "":
					res.Errors++
				case o.Kind == core.KindNone:
					res.NoBanner++
				case o.Kind == core.KindRegular:
					res.Regular++
					if o.HasAccept {
						res.RegularAcceptDomains = append(res.RegularAcceptDomains, o.Domain)
					}
				default:
					res.Cookiewalls = append(res.Cookiewalls, o)
				}
			})
		res.Stats = stats
		// Streaming delivery is input-ordered, so these are already
		// sorted for sorted target lists; sort anyway for arbitrary ones.
		sort.Slice(res.Cookiewalls, func(i, j int) bool {
			return res.Cookiewalls[i].Domain < res.Cookiewalls[j].Domain
		})
		sort.Strings(res.RegularAcceptDomains)
		l.PerVP = append(l.PerVP, res)
		if err != nil {
			// Hand back the partial landscape alongside the error: the
			// completed VPs and the canceled campaign's shard ledger are
			// exactly what a caller wants to inspect after an abort.
			l.indexOnce.Do(l.buildIndex)
			return l, err
		}
	}
	// Build the lookup index eagerly now that PerVP is complete; every
	// downstream table and rate computation starts with Result or
	// UnionDetections.
	l.indexOnce.Do(l.buildIndex)
	return l, nil
}

// Result returns the VPResult for a vantage point name.
func (l *Landscape) Result(vpName string) (VPResult, bool) {
	l.indexOnce.Do(l.buildIndex)
	i, ok := l.byVP[vpName]
	if !ok {
		return VPResult{}, false
	}
	return l.PerVP[i], true
}

// Verified filters a VP's raw detections with the ground-truth audit
// (the paper's manual verification step) and returns true positives.
func (c *Crawler) Verified(obs []Observation) []Observation {
	var out []Observation
	for _, o := range obs {
		if s, ok := c.Reg.Site(o.Domain); ok && s.Banner == synthweb.BannerCookiewall {
			out = append(out, o)
		}
	}
	return out
}

// UnionDetections returns the distinct domains classified as
// cookiewalls from ANY vantage point (the paper's 285 candidates),
// sorted. The union is precomputed once per landscape; each call hands
// back a fresh copy (a few hundred entries), preserving the
// caller-owns-result contract.
func (l *Landscape) UnionDetections() []string {
	l.indexOnce.Do(l.buildIndex)
	return append([]string(nil), l.union...)
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	VP string
	// Cookiewalls is the number of verified cookiewall sites detected
	// from this VP.
	Cookiewalls int
	// Toplist: of those, how many are on the VP country's toplist.
	Toplist int
	// CcTLD: how many are hosted on the VP country's ccTLD.
	CcTLD int
	// Language: how many are in the VP country's main language
	// (measured by language detection, not ground truth).
	Language int
}

// Table1 computes the paper's Table 1 from a landscape crawl: per VP,
// verified cookiewall detections broken down by country toplist
// membership, country ccTLD and country language.
func (c *Crawler) Table1(l *Landscape) []Table1Row {
	var rows []Table1Row
	for _, vp := range vantage.All() {
		res, ok := l.Result(vp.Name)
		if !ok {
			continue
		}
		verified := c.Verified(res.Cookiewalls)
		row := Table1Row{VP: vp.Name, Cookiewalls: len(verified)}
		for _, o := range verified {
			if s, ok := c.Reg.Site(o.Domain); ok {
				if _, on := s.OnList(vp.Country); on {
					row.Toplist++
				}
			}
			if o.TLD() == vp.TLD {
				row.CcTLD++
			}
			if o.Language == vp.MainLanguage {
				row.Language++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Accuracy holds the §3 detection-accuracy evaluation.
type Accuracy struct {
	// Full audit over every detection from any VP.
	Detected       int
	TruePositives  int
	FalsePositives int
	Precision      float64

	// Random-sample audit (the paper uses 1000 domains).
	SampleSize        int
	SampleCookiewalls int // ground-truth cookiewalls in the sample
	SampleDetected    int // detected (from any VP) among those
	SampleFalse       int // detections in the sample that are FPs
	SampleRecall      float64
	SamplePrecision   float64
}

// Accuracy audits detections against ground truth — the stand-in for
// the paper's manual screenshot verification.
func (c *Crawler) Accuracy(l *Landscape, sampleSize int, seed uint64) Accuracy {
	a := Accuracy{}
	union := l.UnionDetections()
	a.Detected = len(union)
	detectedSet := map[string]bool{}
	for _, d := range union {
		detectedSet[d] = true
		if s, ok := c.Reg.Site(d); ok && s.Banner == synthweb.BannerCookiewall {
			a.TruePositives++
		} else {
			a.FalsePositives++
		}
	}
	if a.Detected > 0 {
		a.Precision = float64(a.TruePositives) / float64(a.Detected)
	}

	// Random sample of the target list.
	targets := c.Reg.TargetList()
	if sampleSize > len(targets) {
		sampleSize = len(targets)
	}
	rng := xrand.New(xrand.SubSeed(seed, "accuracy-sample"))
	perm := rng.Perm(len(targets))
	a.SampleSize = sampleSize
	for _, idx := range perm[:sampleSize] {
		domain := targets[idx]
		s, _ := c.Reg.Site(domain)
		isWall := s != nil && s.Banner == synthweb.BannerCookiewall
		det := detectedSet[domain]
		if isWall {
			a.SampleCookiewalls++
			if det {
				a.SampleDetected++
			}
		} else if det {
			a.SampleFalse++
		}
	}
	if a.SampleCookiewalls > 0 {
		a.SampleRecall = float64(a.SampleDetected) / float64(a.SampleCookiewalls)
	} else {
		a.SampleRecall = 1
	}
	if a.SampleDetected+a.SampleFalse > 0 {
		a.SamplePrecision = float64(a.SampleDetected) / float64(a.SampleDetected+a.SampleFalse)
	} else {
		a.SamplePrecision = 1
	}
	return a
}

// CountryPrevalence is the §4.1 rate bundle for one country toplist.
type CountryPrevalence struct {
	Country          string
	ListSize         int
	Reachable        int
	Cookiewalls      int
	Rate             float64
	Top1kReachable   int
	Top1kCookiewalls int
	Top1kRate        float64
}

// Prevalence computes §4.1 rates: overall, per-country, and the
// top-1k vs top-10k comparison. Reachability comes from the crawl
// (errors = unreachable); cookiewall detection comes from the VP of
// the respective country (US East for the US list).
func (c *Crawler) Prevalence(l *Landscape) (overall float64, top1k float64, perCountry []CountryPrevalence) {
	var totalWalls int
	unionWalls := map[string]bool{}
	for _, d := range l.UnionDetections() {
		if s, ok := c.Reg.Site(d); ok && s.Banner == synthweb.BannerCookiewall {
			unionWalls[d] = true
		}
	}
	totalWalls = len(unionWalls)
	if l.Targets > 0 {
		overall = float64(totalWalls) / float64(l.Targets)
	}

	var agg1kWalls, agg1kReach int
	seen1k := map[string]bool{}
	for _, cc := range vantage.Countries() {
		vp, _ := vantage.ByCountry(cc)
		res, _ := l.Result(vp.Name)
		verified := map[string]bool{}
		for _, o := range c.Verified(res.Cookiewalls) {
			verified[o.Domain] = true
		}
		p := CountryPrevalence{Country: cc}
		for _, s := range c.Reg.Sites() {
			bucket, on := s.OnList(cc)
			if !on {
				continue
			}
			p.ListSize++
			if !s.Reachable {
				continue
			}
			p.Reachable++
			wall := verified[s.Domain]
			if wall {
				p.Cookiewalls++
			}
			if bucket == 1000 {
				p.Top1kReachable++
				if !seen1k[s.Domain] {
					seen1k[s.Domain] = true
					agg1kReach++
					if unionWalls[s.Domain] {
						agg1kWalls++
					}
				}
				if wall {
					p.Top1kCookiewalls++
				}
			}
		}
		if p.Reachable > 0 {
			p.Rate = float64(p.Cookiewalls) / float64(p.Reachable)
		}
		if p.Top1kReachable > 0 {
			p.Top1kRate = float64(p.Top1kCookiewalls) / float64(p.Top1kReachable)
		}
		perCountry = append(perCountry, p)
	}
	if agg1kReach > 0 {
		top1k = float64(agg1kWalls) / float64(agg1kReach)
	}
	return overall, top1k, perCountry
}
