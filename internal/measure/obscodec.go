package measure

import (
	"encoding/binary"
	"fmt"
	"math"

	"cookiewalk/internal/core"
)

// ObservationCodec serializes Observations for the campaign checkpoint
// journal (campaign.Codec). The encoding is a compact, deterministic
// binary layout — varint lengths, little-endian fixed words — that
// round-trips every field exactly, so a resumed campaign's sink
// observes byte-identical results.
//
// Decoding also re-seeds the process-wide analysis memo: a replayed
// observation carries its page Fingerprint and its full VP-independent
// analysis, so the fresh visits of a resumed crawl (the other vantage
// points of a half-finished landscape) hit the memo exactly as they
// would have in the uninterrupted run, instead of re-parsing pages the
// journal already analyzed.
type ObservationCodec struct{}

// obsCodecVersion guards the layout; bump on any field change so stale
// journals fall back to fresh visits instead of mis-decoding.
const obsCodecVersion = 1

// Encode implements campaign.Codec.
func (ObservationCodec) Encode(v any) ([]byte, error) {
	o, ok := v.(Observation)
	if !ok {
		return nil, fmt.Errorf("measure: ObservationCodec: unexpected type %T", v)
	}
	// Pre-size: strings plus ~6 bytes of framing each, plus fixed words.
	n := 32 + len(o.Domain) + len(o.VP) + len(o.Err) + len(o.ShadowMode) + len(o.Language) + len(o.Category)
	for _, w := range o.MatchedWords {
		n += len(w) + 2
	}
	buf := make([]byte, 0, n)
	buf = append(buf, obsCodecVersion)
	buf = binary.LittleEndian.AppendUint64(buf, o.Fingerprint)
	buf = appendStr(buf, o.Domain)
	buf = appendStr(buf, o.VP)
	buf = appendStr(buf, o.Err)
	buf = binary.AppendUvarint(buf, uint64(o.Kind))
	buf = binary.AppendUvarint(buf, uint64(o.Source))
	buf = appendStr(buf, o.ShadowMode)
	buf = append(buf, packFlags(o))
	buf = binary.AppendUvarint(buf, uint64(len(o.MatchedWords)))
	for _, w := range o.MatchedWords {
		buf = appendStr(buf, w)
	}
	buf = binary.AppendUvarint(buf, uint64(o.PriceCount))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.MonthlyEUR))
	buf = appendStr(buf, o.Language)
	buf = appendStr(buf, o.Category)
	return buf, nil
}

// Decode implements campaign.Codec.
func (ObservationCodec) Decode(data []byte) (any, error) {
	d := obsDecoder{data: data}
	if v := d.byte(); v != obsCodecVersion {
		return nil, fmt.Errorf("measure: ObservationCodec: version %d, want %d", v, obsCodecVersion)
	}
	var o Observation
	o.Fingerprint = d.u64()
	o.Domain = d.str()
	o.VP = d.str()
	o.Err = d.str()
	o.Kind = core.Kind(d.uvarint())
	o.Source = core.Source(d.uvarint())
	o.ShadowMode = d.str()
	unpackFlags(&o, d.byte())
	if n := d.uvarint(); n > 0 {
		if n > uint64(len(d.data)) {
			return nil, fmt.Errorf("measure: ObservationCodec: %d matched words in %d bytes", n, len(d.data))
		}
		words := make([]string, n)
		for i := range words {
			words[i] = d.str()
		}
		o.MatchedWords = words
	}
	o.PriceCount = int(d.uvarint())
	o.MonthlyEUR = math.Float64frombits(d.u64())
	o.Language = d.str()
	o.Category = d.str()
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != 0 {
		return nil, fmt.Errorf("measure: ObservationCodec: %d trailing bytes", len(d.data))
	}
	// Re-seed the analysis memo from the replayed observation, so the
	// resumed campaign's FRESH visits reuse it (the whole point of
	// journaling the fingerprint alongside the analysis).
	if o.Err == "" && o.Fingerprint != 0 {
		analyses.seed(o.Fingerprint, analysisOf(o))
	}
	return o, nil
}

// packFlags folds the observation's booleans into one byte.
func packFlags(o Observation) byte {
	var f byte
	for i, b := range []bool{o.HasAccept, o.HasReject, o.HasSub, o.AdblockPlea, o.ScrollLocked} {
		if b {
			f |= 1 << i
		}
	}
	return f
}

func unpackFlags(o *Observation, f byte) {
	o.HasAccept = f&1 != 0
	o.HasReject = f&2 != 0
	o.HasSub = f&4 != 0
	o.AdblockPlea = f&8 != 0
	o.ScrollLocked = f&16 != 0
}

// analysisOf reconstructs the VP-independent analysis from a decoded
// observation — the exact inverse of Observation.setAnalysis. The
// MatchedWords slice is the decoder's exact-capacity copy, safe to
// share with the memo (nothing else aliases it).
func analysisOf(o Observation) core.Analysis {
	return core.Analysis{
		Kind:         o.Kind,
		Source:       o.Source,
		ShadowMode:   o.ShadowMode,
		HasAccept:    o.HasAccept,
		HasReject:    o.HasReject,
		HasSub:       o.HasSub,
		MatchedWords: o.MatchedWords,
		PriceCount:   o.PriceCount,
		MonthlyEUR:   o.MonthlyEUR,
		Language:     o.Language,
		Category:     o.Category,
		AdblockPlea:  o.AdblockPlea,
		ScrollLocked: o.ScrollLocked,
	}
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// obsDecoder is a cursor over an encoded observation; the first
// malformed read latches err and zero-values every later read.
type obsDecoder struct {
	data []byte
	err  error
}

func (d *obsDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("measure: ObservationCodec: truncated record")
	}
	d.data = nil
}

func (d *obsDecoder) byte() byte {
	if len(d.data) < 1 {
		d.fail()
		return 0
	}
	b := d.data[0]
	d.data = d.data[1:]
	return b
}

func (d *obsDecoder) u64() uint64 {
	if len(d.data) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data)
	d.data = d.data[8:]
	return v
}

func (d *obsDecoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *obsDecoder) str() string {
	n := d.uvarint()
	if n > uint64(len(d.data)) {
		d.fail()
		return ""
	}
	s := string(d.data[:n])
	d.data = d.data[n:]
	return s
}
