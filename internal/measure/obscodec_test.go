package measure

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cookiewalk/internal/campaign"
	"cookiewalk/internal/core"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/vantage"
	"cookiewalk/internal/webfarm"
)

func sampleObservation() Observation {
	return Observation{
		Domain:       "zeitung-a1.de",
		VP:           "Germany",
		Fingerprint:  0xdeadbeefcafe1234,
		Kind:         core.KindCookiewall,
		Source:       core.SourceIFrame,
		ShadowMode:   "open",
		HasAccept:    true,
		HasSub:       true,
		MatchedWords: []string{"abo", "werbefrei", "pur"},
		PriceCount:   2,
		MonthlyEUR:   3.99,
		Language:     "de",
		Category:     "news",
		ScrollLocked: true,
	}
}

// TestObservationCodecRoundTrip: every field survives exactly.
func TestObservationCodecRoundTrip(t *testing.T) {
	cases := []Observation{
		sampleObservation(),
		{},
		{Domain: "down.example", VP: "US East", Err: "webfarm: no such host down.example"},
		{Domain: "plain.se", VP: "Sweden", Fingerprint: 1, Kind: core.KindRegular, HasAccept: true, HasReject: true, Language: "sv", Category: "shopping"},
	}
	var codec ObservationCodec
	for i, want := range cases {
		enc, err := codec.Encode(want)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, err := codec.Decode(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got.(Observation), want) {
			t.Fatalf("case %d: round trip changed the observation\n got: %+v\nwant: %+v", i, got, want)
		}
	}
	if _, err := codec.Encode("not an observation"); err == nil {
		t.Fatal("encode accepted a non-Observation")
	}
}

// TestObservationCodecRejectsCorrupt: truncations and version skew
// decode to errors, never panics or silent misreads.
func TestObservationCodecRejectsCorrupt(t *testing.T) {
	var codec ObservationCodec
	enc, err := codec.Encode(sampleObservation())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := codec.Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 99 // future version
	if _, err := codec.Decode(bad); err == nil {
		t.Fatal("decoded an unknown codec version")
	}
	if _, err := codec.Decode(append(append([]byte(nil), enc...), 0xff)); err == nil {
		t.Fatal("decoded a record with trailing bytes")
	}
}

// FuzzObservationCodec: arbitrary observations round-trip exactly, and
// arbitrary bytes never panic the decoder.
func FuzzObservationCodec(f *testing.F) {
	var codec ObservationCodec
	seedEnc, _ := codec.Encode(sampleObservation())
	f.Add("a.de", "Germany", "", uint64(42), 2, "abo|pur", 3.99, "de", "news", byte(5))
	f.Add("", "", "host down", uint64(0), 0, "", 0.0, "", "", byte(0))
	f.Add(string(seedEnc), "x", "y", uint64(1), 1, "w", -1.5, "zz", "cat", byte(31))
	f.Fuzz(func(t *testing.T, domain, vp, errStr string, fp uint64, kind int, words string, eur float64, lang, cat string, flags byte) {
		var o Observation
		o.Domain, o.VP, o.Err, o.Fingerprint = domain, vp, errStr, fp
		o.Kind = core.Kind(kind & 3)
		o.Source = core.Source(kind >> 2 & 3)
		if words != "" {
			o.MatchedWords = strings.Split(words, "|")
		}
		o.MonthlyEUR = eur
		o.Language, o.Category = lang, cat
		unpackFlags(&o, flags)
		enc, err := codec.Encode(o)
		if err != nil {
			t.Fatal(err)
		}
		got, err := codec.Decode(enc)
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		if !reflect.DeepEqual(got.(Observation), o) {
			t.Fatalf("round trip changed the observation\n got: %+v\nwant: %+v", got, o)
		}
		// The encoding itself, corrupted arbitrarily, must never panic.
		for cut := 0; cut <= len(enc); cut += 7 {
			_, _ = codec.Decode(enc[:cut])
		}
	})
}

// TestDecodeSeedsAnalysisMemo: decoding a successful observation
// publishes its analysis so later visits with the same fingerprint are
// memo hits.
func TestDecodeSeedsAnalysisMemo(t *testing.T) {
	o := sampleObservation()
	o.Fingerprint = 0x5eed5eed5eed0001 // private to this test
	var codec ObservationCodec
	enc, err := codec.Encode(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Decode(enc); err != nil {
		t.Fatal(err)
	}
	computed := false
	a := analyses.get(o.Fingerprint, func() core.Analysis {
		computed = true
		return core.Analysis{}
	})
	if computed {
		t.Fatal("memo miss after decode seeding")
	}
	if a.Kind != o.Kind || a.MonthlyEUR != o.MonthlyEUR || len(a.MatchedWords) != len(o.MatchedWords) {
		t.Fatalf("seeded analysis = %+v", a)
	}
	// Seeding never overwrites: a live entry wins.
	live := core.Analysis{Language: "live"}
	analyses.seed(o.Fingerprint, live)
	if got := analyses.get(o.Fingerprint, func() core.Analysis { return core.Analysis{} }); got.Language == "live" {
		t.Fatal("seed replaced an existing entry")
	}
}

// landscapeFixture builds a small crawler over a fresh universe.
func landscapeFixture(t *testing.T, checkpointDir string) (*Crawler, []string) {
	t.Helper()
	reg := synthweb.Generate(synthweb.Config{Seed: 7, FillerScale: 0.01})
	farm := webfarm.New(reg)
	c := New(reg, farm.Transport())
	c.Workers = 4
	c.Shards = 3
	c.CheckpointDir = checkpointDir
	return c, reg.TargetList()
}

// landscapeKey renders the fields downstream tables consume, for
// whole-landscape equality checks.
func landscapeKey(l *Landscape) string {
	var b strings.Builder
	for _, res := range l.PerVP {
		fmt.Fprintf(&b, "%s|%d,%d,%d,%d,%d,%d", res.VP,
			res.Visited, res.Errors, res.NoBanner, res.Regular,
			len(res.Cookiewalls), len(res.RegularAcceptDomains))
		for _, o := range res.Cookiewalls {
			fmt.Fprintf(&b, ";%s:%s:%s:%.4f:%s",
				o.Domain, o.Language, o.Category, o.MonthlyEUR,
				strings.Join(o.MatchedWords, "+"))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestLandscapeCheckpointResume kills a checkpointed landscape crawl
// mid-campaign and resumes it with a different worker/shard setting:
// the resumed landscape must equal the uninterrupted one field for
// field, with a nonzero replay count in its engine stats.
func TestLandscapeCheckpointResume(t *testing.T) {
	cRef, targets := landscapeFixture(t, "")
	vps := []vantage.VP{mustVP(t, "Germany"), mustVP(t, "Sweden")}
	ref, err := cRef.Landscape(context.Background(), vps, targets)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "ckpt")
	c1, _ := landscapeFixture(t, dir)
	c1.ProgressEvery = 1
	ctx, cancel := context.WithCancel(context.Background())
	kill := len(targets)/2 + 3
	c1.Progress = func(p campaign.Progress) {
		if p.Label == "landscape Sweden" && p.Done >= int64(kill) {
			cancel()
		}
	}
	if _, err := c1.Landscape(ctx, vps, targets); err == nil {
		t.Fatal("interrupted landscape returned nil error")
	}
	cancel()

	c2, _ := landscapeFixture(t, dir)
	c2.Resume = true
	c2.Workers = 2
	c2.Shards = 5
	got, err := c2.Landscape(context.Background(), vps, targets)
	if err != nil {
		t.Fatal(err)
	}
	if landscapeKey(got) != landscapeKey(ref) {
		t.Fatal("resumed landscape differs from uninterrupted crawl")
	}
	// Germany completed before the kill: fully replayed. Sweden was cut
	// mid-campaign: partially replayed.
	gotDE, _ := got.Result("Germany")
	gotSE, _ := got.Result("Sweden")
	if gotDE.Stats.Replayed != int64(len(targets)) || gotDE.Stats.Fresh() != 0 {
		t.Fatalf("Germany stats = %+v", gotDE.Stats)
	}
	if gotSE.Stats.Replayed == 0 || gotSE.Stats.Fresh() == 0 {
		t.Fatalf("Sweden stats replayed=%d fresh=%d, want both nonzero",
			gotSE.Stats.Replayed, gotSE.Stats.Fresh())
	}
}

func mustVP(t *testing.T, name string) vantage.VP {
	t.Helper()
	vp, ok := vantage.ByName(name)
	if !ok {
		t.Fatalf("unknown VP %s", name)
	}
	return vp
}
