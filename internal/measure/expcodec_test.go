package measure

import (
	"testing"

	"cookiewalk/internal/campaign"
)

// TestExperimentCodecRoundTrips pins Decode(Encode(v)) == v for every
// experiment journal codec — the property resumed campaigns rest on.
func TestExperimentCodecRoundTrips(t *testing.T) {
	cases := []struct {
		name  string
		codec campaign.Codec
		vals  []any
	}{
		{"sitecookies", SiteCookiesCodec{}, []any{
			SiteCookies{Domain: "a.example", Tally: CookieTally{FirstParty: 1.5, ThirdParty: 2.25, Tracking: 42}},
			SiteCookies{Domain: "b.example", Err: "webfarm: host not found"},
			SiteCookies{},
		}},
		{"bypass", bypassCodec{}, []any{
			bypassOutcome{Domain: "wall.example", Wall: true, AdblockPlea: true},
			bypassOutcome{Domain: "gone.example", ScrollLocked: true},
			bypassOutcome{},
		}},
		{"ablation", ablationCodec{}, []any{
			ablationCounts{full: true, noShadow: true},
			ablationCounts{mainOnly: true, noFrames: true},
			ablationCounts{},
		}},
		{"autoreject", autoRejectCodec{}, []any{
			outRejected, outNoReject, outNoBanner, outFailed,
		}},
		{"botcheck", botCheckCodec{}, []any{
			botPair{mitigated: true}, botPair{naive: true}, botPair{},
		}},
		{"revocation", revocationCodec{}, []any{
			revOutcome{tested: true, gone: true, persisted: true, back: true},
			revOutcome{tested: true},
			revOutcome{},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, v := range tc.vals {
				enc, err := tc.codec.Encode(v)
				if err != nil {
					t.Fatalf("encode %#v: %v", v, err)
				}
				dec, err := tc.codec.Decode(enc)
				if err != nil {
					t.Fatalf("decode %#v: %v", v, err)
				}
				if dec != v {
					t.Fatalf("round trip: got %#v, want %#v", dec, v)
				}
			}
			// Wrong type refused, never silently encoded.
			if _, err := tc.codec.Encode(struct{}{}); err == nil {
				t.Fatal("encoding a foreign type succeeded")
			}
		})
	}
}

// TestExperimentCodecsRejectCrossWiring: every codec carries a
// distinct tag, so a journal replayed through the wrong campaign's
// codec fails decoding (and the engine degrades that record to a fresh
// visit) instead of mis-decoding.
func TestExperimentCodecsRejectCrossWiring(t *testing.T) {
	enc, err := (ablationCodec{}).Encode(ablationCounts{full: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []campaign.Codec{
		SiteCookiesCodec{}, bypassCodec{}, autoRejectCodec{}, botCheckCodec{}, revocationCodec{}, ObservationCodec{},
	} {
		if _, err := other.Decode(enc); err == nil {
			t.Fatalf("%T decoded an ablation record", other)
		}
	}
	// Truncated and trailing-garbage records are refused too.
	if _, err := (ablationCodec{}).Decode(enc[:1]); err == nil {
		t.Fatal("decoded a truncated record")
	}
	if _, err := (ablationCodec{}).Decode(append(append([]byte(nil), enc...), 0xFF)); err == nil {
		t.Fatal("decoded a record with trailing bytes")
	}
}
