package measure

import (
	"context"
	"sort"
	"strings"
	"testing"

	"cookiewalk/internal/campaign"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/vantage"
	"cookiewalk/internal/webfarm"
)

// TestLandscapeShardErrorAccounting crawls a target list that mixes
// reachable sites with unreachable ones (the webfarm's transport
// returns HostError for them, like timeouts for a real crawler) and
// checks the engine's per-shard ledger against the known failures.
func TestLandscapeShardErrorAccounting(t *testing.T) {
	reg := synthweb.Generate(synthweb.Config{Seed: 7, FillerScale: 0.01})
	farm := webfarm.New(reg)
	c := New(reg, farm.Transport())
	c.Workers = 4
	c.Shards = 3

	// Build a deterministic mixed list: every unreachable registry site
	// plus reachable targets, sorted — so each shard range contains a
	// computable number of failures.
	unreachable := map[string]bool{}
	var targets []string
	for _, s := range reg.Sites() {
		if !s.Reachable {
			unreachable[s.Domain] = true
			targets = append(targets, s.Domain)
		}
	}
	if len(unreachable) == 0 {
		t.Fatal("universe has no unreachable sites")
	}
	targets = append(targets, reg.TargetList()[:2*len(targets)]...)
	sort.Strings(targets)

	vp, _ := vantage.ByName("Germany")
	l, err := c.Landscape(context.Background(), []vantage.VP{vp}, targets)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := l.Result("Germany")
	if !ok {
		t.Fatal("missing VP result")
	}
	if res.Errors != len(unreachable) {
		t.Fatalf("aggregated errors = %d, want %d", res.Errors, len(unreachable))
	}
	if res.Stats.Errors != int64(len(unreachable)) || res.Stats.Done != int64(len(targets)) {
		t.Fatalf("engine stats = %+v", res.Stats)
	}
	if len(res.Stats.Shards) != 3 {
		t.Fatalf("shard count = %d", len(res.Stats.Shards))
	}
	// Recompute each contiguous shard range's expected failures.
	lo := 0
	for i, sh := range res.Stats.Shards {
		hi := lo + sh.Targets
		want := int64(0)
		for _, d := range targets[lo:hi] {
			if unreachable[d] {
				want++
			}
		}
		if sh.Errors != want {
			t.Fatalf("shard %d errors = %d, want %d (range %d:%d)", i, sh.Errors, want, lo, hi)
		}
		if sh.Canceled != 0 || sh.Done != int64(sh.Targets) {
			t.Fatalf("shard %d stats = %+v", i, sh)
		}
		lo = hi
	}
	if lo != len(targets) {
		t.Fatalf("shard ranges cover %d of %d targets", lo, len(targets))
	}
	// The transport failures surface as webfarm HostErrors in the
	// observations the sink aggregated away from the cookiewall path.
	o := c.Visit(context.Background(), vp, targets[sortedFirstUnreachable(targets, unreachable)], VisitOpts{})
	if o.Err == "" || !strings.Contains(o.Err, "webfarm:") {
		t.Fatalf("unreachable visit error = %q", o.Err)
	}
}

func sortedFirstUnreachable(targets []string, unreachable map[string]bool) int {
	for i, d := range targets {
		if unreachable[d] {
			return i
		}
	}
	return 0
}

// TestLandscapeCancellation cancels a crawl mid-campaign (from a
// progress callback, i.e. while visits are streaming) and checks the
// engine hands back the cancellation error instead of a landscape.
func TestLandscapeCancellation(t *testing.T) {
	reg := synthweb.Generate(synthweb.Config{Seed: 11, FillerScale: 0.01})
	farm := webfarm.New(reg)
	c := New(reg, farm.Transport())
	c.Workers = 2
	c.Shards = 4

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Progress = func(p campaign.Progress) {
		if p.Done > 0 {
			cancel()
		}
	}
	l, err := c.Landscape(ctx, vantage.All(), reg.TargetList())
	if err == nil {
		t.Fatalf("expected cancellation error, got landscape %+v", l)
	}
	// The partial landscape survives the abort: the canceled VP's shard
	// ledger must account every target as done or canceled.
	if l == nil || len(l.PerVP) == 0 {
		t.Fatal("canceled crawl must return the partial landscape")
	}
	last := l.PerVP[len(l.PerVP)-1]
	if last.Stats.Canceled == 0 {
		t.Fatalf("canceled VP ledger = %+v", last.Stats)
	}
	if last.Stats.Done+last.Stats.Canceled != int64(len(reg.TargetList())) {
		t.Fatalf("ledger does not cover all targets: %+v", last.Stats)
	}
}
