package measure

import (
	"context"
	"sync"
	"testing"

	"cookiewalk/internal/adblock"
	"cookiewalk/internal/core"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/vantage"
	"cookiewalk/internal/webfarm"
)

// The integration fixture: a reduced-filler registry (cookiewall
// structure is NEVER scaled, so all paper-exact assertions hold) and a
// single landscape crawl shared across tests.
var (
	fixOnce    sync.Once
	fixCrawler *Crawler
	fixLand    *Landscape
)

func fixture(t *testing.T) (*Crawler, *Landscape) {
	t.Helper()
	fixOnce.Do(func() {
		reg := synthweb.Generate(synthweb.Config{Seed: 42, FillerScale: 0.02})
		farm := webfarm.New(reg)
		fixCrawler = New(reg, farm.Transport())
		fixLand, _ = fixCrawler.Landscape(context.Background(), vantage.All(), reg.TargetList())
	})
	return fixCrawler, fixLand
}

func germanyVP() vantage.VP {
	vp, _ := vantage.ByName("Germany")
	return vp
}

func TestTable1MatchesPaper(t *testing.T) {
	c, l := fixture(t)
	rows := c.Table1(l)
	want := map[string]Table1Row{
		"US East":      {VP: "US East", Cookiewalls: 197, Toplist: 0, CcTLD: 0, Language: 9},
		"US West":      {VP: "US West", Cookiewalls: 199, Toplist: 0, CcTLD: 0, Language: 9},
		"Brazil":       {VP: "Brazil", Cookiewalls: 196, Toplist: 0, CcTLD: 0, Language: 0},
		"Germany":      {VP: "Germany", Cookiewalls: 280, Toplist: 259, CcTLD: 233, Language: 252},
		"Sweden":       {VP: "Sweden", Cookiewalls: 276, Toplist: 15, CcTLD: 0, Language: 0},
		"South Africa": {VP: "South Africa", Cookiewalls: 199, Toplist: 0, CcTLD: 0, Language: 0},
		"India":        {VP: "India", Cookiewalls: 192, Toplist: 0, CcTLD: 0, Language: 10},
		"Australia":    {VP: "Australia", Cookiewalls: 190, Toplist: 5, CcTLD: 0, Language: 10},
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		w := want[row.VP]
		if row != w {
			t.Errorf("%s: got %+v, want %+v", row.VP, row, w)
		}
	}
}

func TestAccuracyMatchesPaper(t *testing.T) {
	c, l := fixture(t)
	a := c.Accuracy(l, 1000, 42)
	if a.Detected != 285 || a.TruePositives != 280 || a.FalsePositives != 5 {
		t.Fatalf("audit = %+v", a)
	}
	if a.Precision < 0.982 || a.Precision > 0.983 {
		t.Fatalf("precision = %.4f, paper reports 98.2%%", a.Precision)
	}
	// Random sample: perfect recall and precision within the sample
	// (the paper found 6/6 with no false detections in its sample).
	if a.SampleRecall != 1 {
		t.Fatalf("sample recall = %g (detected %d of %d)",
			a.SampleRecall, a.SampleDetected, a.SampleCookiewalls)
	}
	if a.SampleSize == 0 || a.SampleCookiewalls == 0 {
		t.Fatalf("degenerate sample: %+v", a)
	}
}

func TestEmbeddingSplitMatchesPaper(t *testing.T) {
	c, l := fixture(t)
	res, _ := l.Result("Germany")
	verified := c.Verified(res.Cookiewalls)
	var shadow, iframe, main int
	for _, o := range verified {
		switch o.Source {
		case core.SourceShadowDOM:
			shadow++
		case core.SourceIFrame:
			iframe++
		case core.SourceMainDOM:
			main++
		}
	}
	if shadow != 76 || iframe != 132 || main != 72 {
		t.Fatalf("embedding split = %d shadow / %d iframe / %d main, want 76/132/72",
			shadow, iframe, main)
	}
}

func TestCookiewallsHaveNoRejectButton(t *testing.T) {
	c, l := fixture(t)
	res, _ := l.Result("Germany")
	for _, o := range c.Verified(res.Cookiewalls) {
		if o.HasReject {
			t.Fatalf("%s: cookiewall with reject button", o.Domain)
		}
		if !o.HasAccept {
			t.Fatalf("%s: cookiewall without accept button", o.Domain)
		}
		if !o.HasSub {
			t.Fatalf("%s: cookiewall without subscribe option", o.Domain)
		}
	}
}

func TestPricesMatchFigure2(t *testing.T) {
	c, l := fixture(t)
	res, _ := l.Result("Germany")
	verified := c.Verified(res.Cookiewalls)
	ps := Prices(verified)
	if len(ps.Prices) != 280 {
		t.Fatalf("prices detected on %d of 280 sites", len(ps.Prices))
	}
	if ps.ShareAtMost3 < 0.78 || ps.ShareAtMost3 > 0.82 {
		t.Errorf("P(<=3 EUR) = %.3f, paper ~0.80", ps.ShareAtMost3)
	}
	if ps.ShareAtMost4 < 0.87 || ps.ShareAtMost4 > 0.92 {
		t.Errorf("P(<=4 EUR) = %.3f, paper ~0.90", ps.ShareAtMost4)
	}
	// Heatmap spot checks against Figure 2: the .de column peaks at
	// bucket 3 with 155 sites; .it sites are cheap.
	if got := ps.PerTLDBuckets["de"][3]; got != 155 {
		t.Errorf("de/bucket3 = %d, want 155", got)
	}
	if got := ps.PerTLDBuckets["it"][1]; got != 3 {
		t.Errorf("it/bucket1 = %d, want 3", got)
	}
}

func TestCategorySharesMatchFigure1(t *testing.T) {
	c, l := fixture(t)
	res, _ := l.Result("Germany")
	verified := c.Verified(res.Cookiewalls)
	shares := CategoryShares(verified, synthweb.Categories)
	// News and Media: "more than one-fourth".
	if shares["News and Media"] < 0.25 || shares["News and Media"] > 0.30 {
		t.Errorf("news share = %.3f, paper >0.25", shares["News and Media"])
	}
	if shares["Business"] < 0.07 || shares["Business"] > 0.11 {
		t.Errorf("business share = %.3f, paper ~0.09", shares["Business"])
	}
}

func TestFigure4MatchesPaper(t *testing.T) {
	c, l := fixture(t)
	f, err := c.RunFigure4(context.Background(), l, germanyVP(), 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Cookiewall) != 280 {
		t.Fatalf("cookiewall sites measured = %d", len(f.Cookiewall))
	}
	if len(f.Regular) != 280 {
		t.Fatalf("regular sites measured = %d", len(f.Regular))
	}
	// Medians (paper: FP 15 vs 19, TP 6.8 vs 50.4, tracking 1 vs 43).
	if m := f.RegularMedian.FirstParty; m < 12 || m > 18 {
		t.Errorf("regular FP median = %.1f, paper ~15", m)
	}
	if m := f.CookiewallMedian.FirstParty; m < 15 || m > 23 {
		t.Errorf("cookiewall FP median = %.1f, paper ~19", m)
	}
	if m := f.RegularMedian.ThirdParty; m < 4.5 || m > 9.5 {
		t.Errorf("regular TP median = %.1f, paper ~6.8", m)
	}
	if m := f.CookiewallMedian.ThirdParty; m < 40 || m > 62 {
		t.Errorf("cookiewall TP median = %.1f, paper ~50.4", m)
	}
	if m := f.RegularMedian.Tracking; m < 0.4 || m > 2 {
		t.Errorf("regular tracking median = %.1f, paper ~1", m)
	}
	if m := f.CookiewallMedian.Tracking; m < 33 || m > 53 {
		t.Errorf("cookiewall tracking median = %.1f, paper ~43", m)
	}
	if f.TrackingRatio < 25 || f.TrackingRatio > 70 {
		t.Errorf("tracking ratio = %.1f, paper ~42x", f.TrackingRatio)
	}
	if f.ThirdPartyRatio < 5 || f.ThirdPartyRatio > 11 {
		t.Errorf("third-party ratio = %.1f, paper ~6.4-7.4x", f.ThirdPartyRatio)
	}
}

func TestFigure5MatchesPaper(t *testing.T) {
	c, _ := fixture(t)
	f, err := c.RunFigure5(context.Background(), germanyVP(), "contentpass", 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Partners != 219 {
		t.Fatalf("partners = %d, paper says 219", f.Partners)
	}
	// Subscribers see ZERO tracking cookies (the §4.4 headline).
	if f.SubscriptionMedian.Tracking != 0 {
		t.Fatalf("subscription tracking median = %g, must be 0",
			f.SubscriptionMedian.Tracking)
	}
	for _, s := range f.Subscription {
		if s.Err == "" && s.Tally.Tracking > 0 {
			t.Fatalf("%s: subscriber saw %g tracking cookies", s.Domain, s.Tally.Tracking)
		}
	}
	// Accept mode: median ~16 tracking, ~23.2 TP, ~13 FP; sub: 6 FP / 4.4 TP.
	if m := f.AcceptMedian.Tracking; m < 13 || m > 19 {
		t.Errorf("accept tracking median = %.1f, paper ~16", m)
	}
	if m := f.AcceptMedian.ThirdParty; m < 19 || m > 28 {
		t.Errorf("accept TP median = %.1f, paper ~23.2", m)
	}
	if m := f.AcceptMedian.FirstParty; m < 10 || m > 16 {
		t.Errorf("accept FP median = %.1f, paper ~13", m)
	}
	if m := f.SubscriptionMedian.FirstParty; m < 4 || m > 8 {
		t.Errorf("sub FP median = %.1f, paper ~6", m)
	}
	if m := f.SubscriptionMedian.ThirdParty; m < 3 || m > 6 {
		t.Errorf("sub TP median = %.1f, paper ~4.4", m)
	}
	// "Some websites send more than 100 tracking cookies."
	if f.MaxTrackingAccept <= 100 {
		t.Errorf("max tracking on accept = %.1f, paper >100", f.MaxTrackingAccept)
	}
}

func TestBypassMatchesPaper(t *testing.T) {
	c, l := fixture(t)
	res, _ := l.Result("Germany")
	var walls []string
	for _, o := range c.Verified(res.Cookiewalls) {
		walls = append(walls, o.Domain)
	}
	engine := adblock.NewEngine(adblock.BaseList(), adblock.AnnoyancesList())
	b, err := c.RunBypass(context.Background(), germanyVP(), walls, 2, engine)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != 280 {
		t.Fatalf("total = %d", b.Total)
	}
	if b.FullyBlocked != 196 {
		t.Fatalf("fully blocked = %d, paper says 196 (70%%)", b.FullyBlocked)
	}
	if b.BlockRate < 0.699 || b.BlockRate > 0.701 {
		t.Fatalf("block rate = %.3f", b.BlockRate)
	}
	if len(b.AntiAdblockSites) != 1 || len(b.ScrollLockSites) != 1 {
		t.Fatalf("quirks = %d anti-adblock, %d scroll-lock, want 1/1",
			len(b.AntiAdblockSites), len(b.ScrollLockSites))
	}
}

func TestPrevalenceStructure(t *testing.T) {
	c, l := fixture(t)
	overall, top1k, perCountry := c.Prevalence(l)
	if overall <= 0 || top1k <= 0 {
		t.Fatalf("rates: overall=%g top1k=%g", overall, top1k)
	}
	var de CountryPrevalence
	for _, p := range perCountry {
		if p.Country == "DE" {
			de = p
		}
	}
	if de.Cookiewalls != 259 {
		t.Fatalf("DE cookiewalls = %d, want 259", de.Cookiewalls)
	}
	if de.Top1kCookiewalls != 80 {
		t.Fatalf("DE top-1k cookiewalls = %d, want 80", de.Top1kCookiewalls)
	}
	// Top-1k rate always exceeds the full-list rate (§4.1: "more
	// popular websites are more likely to show cookiewalls").
	if de.Top1kRate <= de.Rate {
		t.Fatalf("DE top1k rate %.4f <= overall %.4f", de.Top1kRate, de.Rate)
	}
}

func TestFigure6NoCorrelation(t *testing.T) {
	c, l := fixture(t)
	res, _ := l.Result("Germany")
	verified := c.Verified(res.Cookiewalls)
	f, err := c.RunFigure4(context.Background(), l, germanyVP(), 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	corr, xs, ys := TrackingPriceCorrelation(verified, f.Cookiewall)
	if len(xs) != len(ys) || corr.N < 200 {
		t.Fatalf("joined %d sites", corr.N)
	}
	// Paper: "no meaningful linear correlation".
	if corr.Pearson > 0.25 || corr.Pearson < -0.25 {
		t.Fatalf("tracking-price Pearson = %.3f, paper finds none", corr.Pearson)
	}
	if corr.Spearman > 0.3 || corr.Spearman < -0.3 {
		t.Fatalf("tracking-price Spearman = %.3f", corr.Spearman)
	}
}

func TestBannerRatesEUHigher(t *testing.T) {
	_, l := fixture(t)
	rates := RatesPerVP(l)
	if len(rates) != 8 {
		t.Fatalf("rates = %d", len(rates))
	}
	var euMin, nonEUMax float64 = 1, 0
	for _, r := range rates {
		if r.BannerRate <= 0 || r.BannerRate >= 1 {
			t.Fatalf("%s: rate %g out of range", r.VP, r.BannerRate)
		}
		if r.EU && r.BannerRate < euMin {
			euMin = r.BannerRate
		}
		if !r.EU && r.BannerRate > nonEUMax {
			nonEUMax = r.BannerRate
		}
	}
	// Consistent with §4.1: EU vantage points see more consent UIs
	// (the farm shows EU-only banners to Germany/Sweden).
	if euMin <= nonEUMax {
		t.Fatalf("EU min rate %.3f <= non-EU max rate %.3f", euMin, nonEUMax)
	}
}

func TestLanguageMeasuredNotAssumed(t *testing.T) {
	// Spot-check that the Language field comes from detection: the
	// Brazilian-list pt site is classified pt by the detector.
	c, l := fixture(t)
	res, _ := l.Result("Germany")
	found := false
	for _, o := range c.Verified(res.Cookiewalls) {
		s, _ := c.Reg.Site(o.Domain)
		if _, on := s.OnList("BR"); on {
			found = true
			if o.Language != "pt" {
				t.Fatalf("BR-list site language measured as %q", o.Language)
			}
		}
	}
	if !found {
		t.Fatal("BR-list cookiewall not detected from Germany")
	}
}

func TestVisitUnreachable(t *testing.T) {
	c, _ := fixture(t)
	var unreachable string
	for _, s := range c.Reg.Sites() {
		if !s.Reachable {
			unreachable = s.Domain
			break
		}
	}
	o := c.Visit(context.Background(), germanyVP(), unreachable, VisitOpts{})
	if o.Err == "" {
		t.Fatal("expected transport error")
	}
}

func TestTable1SeedRobust(t *testing.T) {
	// The measured Table 1 must come out identical for a completely
	// different universe seed: detection results are structural, not
	// seed-lucky. (Domains, page phrasing and jitter all differ; the
	// marginals cannot.)
	reg := synthweb.Generate(synthweb.Config{Seed: 987654321, FillerScale: 0.01})
	farm := webfarm.New(reg)
	c := New(reg, farm.Transport())
	vps := []vantage.VP{}
	for _, name := range []string{"Germany", "Australia"} {
		vp, _ := vantage.ByName(name)
		vps = append(vps, vp)
	}
	l, err := c.Landscape(context.Background(), vps, reg.TargetList())
	if err != nil {
		t.Fatal(err)
	}
	rows := c.Table1(l)
	for _, row := range rows {
		switch row.VP {
		case "Germany":
			want := Table1Row{VP: "Germany", Cookiewalls: 280, Toplist: 259, CcTLD: 233, Language: 252}
			if row != want {
				t.Fatalf("Germany row with new seed: %+v", row)
			}
		case "Australia":
			want := Table1Row{VP: "Australia", Cookiewalls: 190, Toplist: 5, CcTLD: 0, Language: 10}
			if row != want {
				t.Fatalf("Australia row with new seed: %+v", row)
			}
		}
	}
}

func TestSampleStringsDeterministic(t *testing.T) {
	pool := []string{"a", "b", "c", "d", "e", "f"}
	s1 := sampleStrings(pool, 3, 7)
	s2 := sampleStrings(pool, 3, 7)
	if len(s1) != 3 {
		t.Fatalf("len = %d", len(s1))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	all := sampleStrings(pool, 99, 7)
	if len(all) != len(pool) {
		t.Fatal("oversized sample must return pool")
	}
}
