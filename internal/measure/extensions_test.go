package measure

import (
	"context"
	"testing"
)

// wallDomainsFromFixture returns the verified cookiewall domains.
func wallDomainsFromFixture(t *testing.T) []string {
	c, l := fixture(t)
	res, _ := l.Result("Germany")
	var walls []string
	for _, o := range c.Verified(res.Cookiewalls) {
		walls = append(walls, o.Domain)
	}
	return walls
}

func TestAblationQuantifiesWorkaroundValue(t *testing.T) {
	c, _ := fixture(t)
	walls := wallDomainsFromFixture(t)
	a, err := c.RunAblation(context.Background(), germanyVP(), walls)
	if err != nil {
		t.Fatal(err)
	}
	if a.Full != 280 {
		t.Fatalf("full pipeline = %d", a.Full)
	}
	// Without the shadow workaround the 76 shadow-DOM walls are lost.
	if a.Full-a.NoShadow != 76 {
		t.Errorf("shadow ablation missed %d, want 76", a.Full-a.NoShadow)
	}
	// Without iframe traversal the 132 iframe walls are lost.
	if a.Full-a.NoFrames != 132 {
		t.Errorf("frame ablation missed %d, want 132", a.Full-a.NoFrames)
	}
	// Stock tooling sees only the 72 main-DOM walls.
	if a.MainOnly != 72 {
		t.Errorf("main-only = %d, want 72", a.MainOnly)
	}
}

func TestAutoRejectDefeatedByCookiewalls(t *testing.T) {
	c, l := fixture(t)
	walls := wallDomainsFromFixture(t)
	res, _ := l.Result("Germany")
	regulars := res.RegularAcceptDomains
	if len(regulars) > 100 {
		regulars = regulars[:100]
	}
	sample := append(append([]string{}, walls...), regulars...)
	a, err := c.RunAutoReject(context.Background(), germanyVP(), sample)
	if err != nil {
		t.Fatal(err)
	}
	if a.Visited != len(sample) {
		t.Fatalf("visited = %d", a.Visited)
	}
	// Every cookiewall defeats auto-reject; decoy-free regulars reject
	// fine.
	if a.NoRejectOption != 280 {
		t.Errorf("no-reject = %d, want 280 (all cookiewalls)", a.NoRejectOption)
	}
	if a.Rejected != len(regulars) {
		t.Errorf("rejected = %d, want %d", a.Rejected, len(regulars))
	}
	if a.Failed != 0 {
		t.Errorf("failed = %d", a.Failed)
	}
}

func TestBotCheckFindsSensitiveSites(t *testing.T) {
	c, l := fixture(t)
	res, _ := l.Result("Germany")
	sample := res.RegularAcceptDomains
	bc, err := c.RunBotCheck(context.Background(), germanyVP(), sample)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Sample != len(sample) {
		t.Fatalf("sample = %d", bc.Sample)
	}
	// Bot-sensitive sites hide banners from the naive crawler only.
	if bc.BehaviourChanged == 0 {
		t.Fatal("no bot-sensitive behaviour observed")
	}
	if bc.BannersNaive >= bc.BannersMitigated {
		t.Fatalf("naive crawler saw %d >= mitigated %d",
			bc.BannersNaive, bc.BannersMitigated)
	}
	// Ground truth cross-check: the delta equals the number of
	// bot-sensitive sites in the sample.
	wantDelta := 0
	for _, d := range sample {
		if s, ok := c.Reg.Site(d); ok && s.BotSensitive {
			wantDelta++
		}
	}
	if bc.BehaviourChanged != wantDelta {
		t.Fatalf("behaviour changed on %d sites, ground truth %d",
			bc.BehaviourChanged, wantDelta)
	}
}

func TestCookiewallsNeverBotSensitive(t *testing.T) {
	c, _ := fixture(t)
	for _, s := range c.Reg.CookiewallSites() {
		if s.BotSensitive {
			t.Fatalf("%s: cookiewall marked bot-sensitive (would break Table 1)", s.Domain)
		}
	}
}

func TestRevocationRequiresCookieDeletion(t *testing.T) {
	c, _ := fixture(t)
	walls := wallDomainsFromFixture(t)[:25]
	r, err := c.RunRevocation(context.Background(), germanyVP(), walls)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tested != 25 {
		t.Fatalf("tested = %d", r.Tested)
	}
	// Accepting dismisses the wall, revisits stay wall-free while
	// cookies persist, and only deletion brings the choice back — the
	// §5 observation verbatim.
	if r.GoneAfterAccept != r.Tested {
		t.Errorf("gone after accept: %d/%d", r.GoneAfterAccept, r.Tested)
	}
	if r.PersistedWithoutDeletion != r.Tested {
		t.Errorf("persisted: %d/%d", r.PersistedWithoutDeletion, r.Tested)
	}
	if r.BackAfterDeletion != r.Tested {
		t.Errorf("back after deletion: %d/%d", r.BackAfterDeletion, r.Tested)
	}
}
