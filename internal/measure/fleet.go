package measure

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"cookiewalk/internal/campaign"
	"cookiewalk/internal/campaign/dist"
	"cookiewalk/internal/vantage"
)

// Fleet glue: which campaigns a coordinator distributes and how a
// worker executes one leased range of them.
//
// Only the landscape crawl is distributed — eight vantage points over
// the full target list is the study's 45k-sites-×-8 workload, well over
// nine tenths of all visits. The derived experiments (accuracy audit,
// cookie comparisons, bypass) depend on the landscape's output and are
// comparatively tiny, so the coordinator runs them locally after the
// merge, replaying the assembled journals through the ordinary Resume
// path. That keeps the distributed protocol to one shape — pure
// target-range crawls — while still producing a Report byte-identical
// to a single-machine run's.

// landscapeLabel is the campaign label of one vantage point's landscape
// crawl. The coordinator's specs, the worker's lease runner and the
// local Landscape path must mint identical labels — the label keys the
// checkpoint directory and the manifest identity.
func landscapeLabel(vp vantage.VP) string {
	return "landscape " + vp.Name
}

// LandscapeSpecs describes the landscape campaigns over targets as
// distributable specs, partitioned exactly as this crawler's local
// engine would shard them.
func (c *Crawler) LandscapeSpecs(targets []string) []dist.Spec {
	shards := c.engine("").EffectiveShards(len(targets))
	hash := campaign.HashTargets(targets)
	specs := make([]dist.Spec, 0, len(vantage.All()))
	for _, vp := range vantage.All() {
		specs = append(specs, dist.Spec{
			Label:       landscapeLabel(vp),
			Targets:     len(targets),
			TargetsHash: hash,
			Shards:      shards,
		})
	}
	return specs
}

// RunLandscapeLease executes one leased landscape shard range against
// this crawler's universe, journaling into dir, and returns the path
// of the finished shard journal — the dist.Worker Runner for
// cookiewalk studies. The lease's campaign identity (targets count and
// hash) is verified against the local target list first, so a worker
// pointed at a coordinator for a different universe (other seed, other
// scale) refuses every lease instead of shipping alien results.
func (c *Crawler) RunLandscapeLease(ctx context.Context, lease dist.Lease, targets []string, dir string) (string, error) {
	vpName, ok := strings.CutPrefix(lease.Label, "landscape ")
	if !ok {
		return "", fmt.Errorf("measure: lease %s is not a landscape campaign (label %q)", lease.ID, lease.Label)
	}
	vp, ok := vantage.ByName(vpName)
	if !ok {
		return "", fmt.Errorf("measure: lease %s names unknown vantage point %q", lease.ID, vpName)
	}
	hash := campaign.HashTargets(targets)
	if lease.Targets != len(targets) || lease.TargetsHash != hash {
		return "", fmt.Errorf(
			"measure: lease %s is for a different universe: lease (%d targets, hash %#x) vs local (%d targets, hash %#x)",
			lease.ID, lease.Targets, lease.TargetsHash, len(targets), hash)
	}
	cfg := c.engine(lease.Label)
	cfg.Checkpoint = &campaign.Checkpoint{
		Dir:         dir,
		Codec:       ObservationCodec{},
		TargetsHash: hash,
	}
	_, err := campaign.RunRange(ctx, cfg, targets, lease.Shard, lease.Shards, lease.Lo, lease.Hi,
		func(ctx context.Context, domain string) (Observation, error) {
			o := c.Visit(ctx, vp, domain, VisitOpts{})
			if o.Err != "" {
				return o, errors.New(o.Err)
			}
			return o, nil
		}, nil)
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, campaign.ShardFilename(lease.Shard)), nil
}
