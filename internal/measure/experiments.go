package measure

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"

	"cookiewalk/internal/adblock"
	"cookiewalk/internal/campaign"
	"cookiewalk/internal/core"
	"cookiewalk/internal/currency"
	"cookiewalk/internal/stats"
	"cookiewalk/internal/vantage"
	"cookiewalk/internal/xrand"
)

// Figure4 is the §4.3 experiment: cookie behaviour of cookiewall sites
// vs. regular cookie-banner sites after accepting.
type Figure4 struct {
	Regular    []SiteCookies
	Cookiewall []SiteCookies

	RegularMedian    CookieTally
	CookiewallMedian CookieTally

	// Ratios are cookiewall/regular on the medians, the paper's "6.4
	// times more third-party and 42 times more tracking cookies".
	ThirdPartyRatio float64
	TrackingRatio   float64
}

// RunFigure4 measures the verified cookiewall sites against an
// equal-size random sample of regular-banner sites (with accept
// buttons), reps repetitions each, from the given vantage point.
func (c *Crawler) RunFigure4(ctx context.Context, l *Landscape, vp vantage.VP, reps int, seed uint64) (Figure4, error) {
	res, _ := l.Result(vp.Name)
	var wallDomains []string
	for _, o := range c.Verified(res.Cookiewalls) {
		wallDomains = append(wallDomains, o.Domain)
	}
	regular := sampleStrings(res.RegularAcceptDomains, len(wallDomains), seed)

	var f Figure4
	var err error
	if f.Regular, err = c.MeasureCookies(ctx, vp, LabelFig4Regular, regular, reps, ModeAccept, ""); err != nil {
		return f, err
	}
	if f.Cookiewall, err = c.MeasureCookies(ctx, vp, LabelFig4Cookiewall, wallDomains, reps, ModeAccept, ""); err != nil {
		return f, err
	}
	f.RegularMedian = medianTally(f.Regular)
	f.CookiewallMedian = medianTally(f.Cookiewall)
	f.ThirdPartyRatio = stats.Ratio(f.CookiewallMedian.ThirdParty, f.RegularMedian.ThirdParty)
	f.TrackingRatio = stats.Ratio(f.CookiewallMedian.Tracking, f.RegularMedian.Tracking)
	return f, nil
}

// sampleStrings draws n distinct elements deterministically.
func sampleStrings(pool []string, n int, seed uint64) []string {
	if n >= len(pool) {
		out := make([]string, len(pool))
		copy(out, pool)
		return out
	}
	rng := xrand.New(xrand.SubSeed(seed, "sample"))
	perm := rng.Perm(len(pool))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = pool[perm[i]]
	}
	sort.Strings(out)
	return out
}

func medianTally(sc []SiteCookies) CookieTally {
	var fp, tp, tr []float64
	for _, s := range sc {
		if s.Err != "" {
			continue
		}
		fp = append(fp, s.Tally.FirstParty)
		tp = append(tp, s.Tally.ThirdParty)
		tr = append(tr, s.Tally.Tracking)
	}
	return CookieTally{
		FirstParty: stats.Median(fp),
		ThirdParty: stats.Median(tp),
		Tracking:   stats.Median(tr),
	}
}

// Figure5 is the §4.4 experiment: accepting vs. subscribing on every
// partner site of an SMP.
type Figure5 struct {
	Platform     string
	Partners     int
	Accept       []SiteCookies
	Subscription []SiteCookies

	AcceptMedian       CookieTally
	SubscriptionMedian CookieTally
	// MaxTrackingAccept is the worst per-site average — the paper notes
	// "some websites send more than 100 tracking cookies".
	MaxTrackingAccept float64
}

// RunFigure5 buys a subscription at the platform's portal (over HTTP,
// like the paper's §4.4 account purchase), then measures every partner
// site in both modes.
func (c *Crawler) RunFigure5(ctx context.Context, vp vantage.VP, platform string, reps int) (Figure5, error) {
	token, err := c.BuySubscription(platform, "crawler@measurement.example")
	if err != nil {
		return Figure5{}, err
	}
	partners := c.Reg.SMP.Partners(platform)
	f := Figure5{
		Platform: platform,
		Partners: len(partners),
	}
	// Labels carry the platform: a study measuring several SMPs runs
	// one campaign (and one checkpoint journal) per platform and mode.
	acceptLabel, subscribeLabel := Fig5Labels(platform)
	if f.Accept, err = c.MeasureCookies(ctx, vp, acceptLabel, partners, reps, ModeAccept, ""); err != nil {
		return f, err
	}
	if f.Subscription, err = c.MeasureCookies(ctx, vp, subscribeLabel, partners, reps, ModeSubscribe, token); err != nil {
		return f, err
	}
	f.AcceptMedian = medianTally(f.Accept)
	f.SubscriptionMedian = medianTally(f.Subscription)
	for _, s := range f.Accept {
		if s.Err == "" && s.Tally.Tracking > f.MaxTrackingAccept {
			f.MaxTrackingAccept = s.Tally.Tracking
		}
	}
	return f, nil
}

// SMPPlatform summarizes one subscription-management platform (§4.4):
// its partner count and how many partners are on the measurement
// target list.
type SMPPlatform struct {
	Platform  string
	Partners  int
	InTargets int
}

// SMPSummary computes the §4.4 partner-coverage artefact for each
// platform from the registry — pure bookkeeping, no crawling.
func (c *Crawler) SMPSummary(platforms []string) []SMPPlatform {
	targets := map[string]bool{}
	for _, d := range c.Reg.TargetList() {
		targets[d] = true
	}
	out := make([]SMPPlatform, 0, len(platforms))
	for _, platform := range platforms {
		partners := c.Reg.SMP.Partners(platform)
		p := SMPPlatform{Platform: platform, Partners: len(partners)}
		for _, d := range partners {
			if targets[d] {
				p.InTargets++
			}
		}
		out = append(out, p)
	}
	return out
}

// BuySubscription POSTs to the SMP portal's subscribe endpoint and
// returns the account token.
func (c *Crawler) BuySubscription(platform, email string) (string, error) {
	portal := "https://" + platform + ".example/subscribe"
	form := url.Values{"email": {email}}
	req, err := http.NewRequest(http.MethodPost, portal, strings.NewReader(form.Encode()))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, err := c.Transport.RoundTrip(req)
	if err != nil {
		return "", fmt.Errorf("measure: subscribe at %s: %w", portal, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("measure: subscribe returned %d: %s", resp.StatusCode, body)
	}
	return string(body), nil
}

// Bypass is the §4.5 ad-blocker experiment result.
type Bypass struct {
	Total int
	// FullyBlocked sites showed no cookiewall in ANY repetition.
	FullyBlocked int
	BlockRate    float64
	// StillShowing lists domains whose cookiewall survived.
	StillShowing []string
	// AntiAdblockSites ask the user to disable the blocker; ScrollLock
	// sites lock scrolling — the two §4.5 quirk sites.
	AntiAdblockSites []string
	ScrollLockSites  []string
}

// bypassOutcome is one domain's across-repetitions §4.5 verdict — the
// exact value the bypass sink aggregates, and therefore the exact
// value its checkpoint journal records (journaling a synthesized
// Observation instead would re-seed the analysis memo with a falsified
// Kind on replay).
type bypassOutcome struct {
	Domain string
	// Wall reports that the cookiewall survived the blocker in at least
	// one repetition.
	Wall         bool
	AdblockPlea  bool
	ScrollLocked bool
}

// RunBypass visits each cookiewall domain reps times with the blocker
// enabled and counts walls that disappear across all repetitions,
// streaming each domain's verdict into the tally. The error is non-nil
// only when ctx is canceled mid-campaign (or on a checkpoint journal
// failure).
func (c *Crawler) RunBypass(ctx context.Context, vp vantage.VP, wallDomains []string, reps int, engine *adblock.Engine) (Bypass, error) {
	b := Bypass{Total: len(wallDomains)}
	_, err := runExperimentCampaign(ctx, c, LabelBypass, bypassCodec{}, wallDomains,
		func(ctx context.Context, domain string) (bypassOutcome, error) {
			out := bypassOutcome{Domain: domain}
			for rep := 0; rep < reps; rep++ {
				o := c.Visit(ctx, vp, domain, VisitOpts{
					Visit:   fmt.Sprintf("%s|ub%d", vp.Name, rep),
					Blocker: engine,
				})
				if o.Err == "" && o.Kind == core.KindCookiewall {
					out.Wall = true
				}
				out.AdblockPlea = o.AdblockPlea
				out.ScrollLocked = o.ScrollLocked
			}
			return out, nil
		},
		func(r campaign.Result[bypassOutcome]) {
			o := r.Value
			if !o.Wall {
				b.FullyBlocked++
			} else {
				b.StillShowing = append(b.StillShowing, o.Domain)
			}
			if o.AdblockPlea {
				b.AntiAdblockSites = append(b.AntiAdblockSites, o.Domain)
			}
			if o.ScrollLocked {
				b.ScrollLockSites = append(b.ScrollLockSites, o.Domain)
			}
		})
	if err != nil {
		return b, err
	}
	if b.Total > 0 {
		b.BlockRate = float64(b.FullyBlocked) / float64(b.Total)
	}
	sort.Strings(b.StillShowing)
	return b, nil
}

// PriceStats bundles the §4.2 pricing analysis (Figure 2) computed
// from MEASURED banner prices.
type PriceStats struct {
	// Prices are the normalized monthly EUR prices of sites where a
	// price was detected.
	Prices []float64
	// PerTLDBuckets maps TLD -> bucket -> count (the Figure 2 heatmap).
	PerTLDBuckets map[string]map[int]int
	// ECDF of prices (the Figure 2 red line).
	ECDF *stats.ECDF
	// ShareAtMost3 and ShareAtMost4 anchor the paper's "~80% <= 3 EUR"
	// and "~90% <= 4 EUR".
	ShareAtMost3 float64
	ShareAtMost4 float64
}

// Prices computes Figure 2 from verified cookiewall observations.
func Prices(obs []Observation) PriceStats {
	ps := PriceStats{PerTLDBuckets: map[string]map[int]int{}}
	for _, o := range obs {
		if o.MonthlyEUR <= 0 {
			continue
		}
		ps.Prices = append(ps.Prices, o.MonthlyEUR)
		tld := o.TLD()
		if ps.PerTLDBuckets[tld] == nil {
			ps.PerTLDBuckets[tld] = map[int]int{}
		}
		ps.PerTLDBuckets[tld][currency.Bucket(o.MonthlyEUR)]++
	}
	ps.ECDF = stats.NewECDF(ps.Prices)
	ps.ShareAtMost3 = ps.ECDF.At(3.005)
	ps.ShareAtMost4 = ps.ECDF.At(4.005)
	return ps
}

// CategoryShares computes Figure 1: the share of verified cookiewall
// sites per measured category, in display order.
func CategoryShares(obs []Observation, categories []string) map[string]float64 {
	counts := map[string]int{}
	for _, o := range obs {
		counts[o.Category]++
	}
	out := map[string]float64{}
	if len(obs) == 0 {
		return out
	}
	for _, cat := range categories {
		out[cat] = float64(counts[cat]) / float64(len(obs))
	}
	return out
}

// CategoryPrices groups measured monthly prices by category (Figure 3).
func CategoryPrices(obs []Observation) map[string][]float64 {
	out := map[string][]float64{}
	for _, o := range obs {
		if o.MonthlyEUR > 0 {
			out[o.Category] = append(out[o.Category], o.MonthlyEUR)
		}
	}
	return out
}

// Correlation bundles the Figure 6 result with its rank-correlation
// robustness check.
type Correlation struct {
	N        int
	Pearson  float64
	Spearman float64
}

// TrackingPriceCorrelation computes Figure 6: correlation of per-site
// average tracking cookies (accept mode) against subscription price.
// It joins the Figure-4 cookiewall tallies with price observations by
// domain.
func TrackingPriceCorrelation(walls []Observation, tallies []SiteCookies) (Correlation, []float64, []float64) {
	price := map[string]float64{}
	for _, o := range walls {
		if o.MonthlyEUR > 0 {
			price[o.Domain] = o.MonthlyEUR
		}
	}
	var xs, ys []float64
	for _, t := range tallies {
		if t.Err != "" {
			continue
		}
		p, ok := price[t.Domain]
		if !ok {
			continue
		}
		xs = append(xs, t.Tally.Tracking)
		ys = append(ys, p)
	}
	return Correlation{
		N:        len(xs),
		Pearson:  stats.Pearson(xs, ys),
		Spearman: stats.Spearman(xs, ys),
	}, xs, ys
}

// BannerRates is the per-VP consent-UI rate, the §4.1 cross-reference
// to the BannerClick paper's finding that banners are more prevalent
// when visiting from the EU.
type BannerRates struct {
	VP         string
	EU         bool
	BannerRate float64 // (regular + cookiewall) / visited OK
}

// RatesPerVP derives banner rates from a landscape crawl.
func RatesPerVP(l *Landscape) []BannerRates {
	var out []BannerRates
	for _, vp := range vantage.All() {
		res, ok := l.Result(vp.Name)
		if !ok {
			continue
		}
		okVisits := res.Visited - res.Errors
		var rate float64
		if okVisits > 0 {
			rate = float64(res.Regular+len(res.Cookiewalls)) / float64(okVisits)
		}
		out = append(out, BannerRates{VP: vp.Name, EU: vp.IsEU(), BannerRate: rate})
	}
	return out
}
