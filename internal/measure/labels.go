package measure

import "cookiewalk/internal/vantage"

// Exported campaign labels. A label keys a campaign's checkpoint
// directory (via campaign.PathLabel) and its manifest identity, so the
// exact strings are part of the on-disk format: cmd/cookiewalk -list
// derives the journal directory an experiment checkpoints under from
// these, and changing one orphans existing journals.
const (
	LabelFig4Regular    = "fig4 regular"
	LabelFig4Cookiewall = "fig4 cookiewall"
	LabelBypass         = "bypass"
	LabelAblation       = "ablation"
	LabelAutoReject     = "autoreject"
	LabelBotCheck       = "botcheck"
	LabelRevocation     = "revocation"
)

// Fig5Labels returns the accept- and subscribe-arm campaign labels of
// the §4.4 SMP cookie experiment for one platform.
func Fig5Labels(platform string) (accept, subscribe string) {
	return "fig5 " + platform + " accept", "fig5 " + platform + " subscribe"
}

// LandscapeCampaignLabels lists the landscape campaign labels in crawl
// order — one per vantage point.
func LandscapeCampaignLabels() []string {
	var labels []string
	for _, vp := range vantage.All() {
		labels = append(labels, landscapeLabel(vp))
	}
	return labels
}
