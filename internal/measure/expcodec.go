package measure

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Checkpoint codecs for the non-landscape experiment campaigns
// (campaign.Codec implementations). Each campaign journals exactly the
// value its sink aggregates — never a full Observation when the
// experiment only needs a verdict — so replays can never poison the
// process-wide analysis memo with synthesized results (the bypass
// experiment, for instance, overrides Observation.Kind with its
// across-repetitions verdict, which must not be seeded back as a page
// analysis). Every codec carries a distinct leading tag byte, so a
// journal wired to the wrong campaign type fails decoding and degrades
// to fresh visits instead of mis-decoding.

// SiteCookiesCodec serializes SiteCookies for the cookie-measurement
// campaigns (Figures 4 and 5).
type SiteCookiesCodec struct{}

// Codec tag bytes ("versions": bump on any layout change so stale
// journals fall back to fresh visits).
const (
	siteCookiesTag = 0x51
	bypassTag      = 0x52
	ablationTag    = 0x53
	autoRejectTag  = 0x54
	botCheckTag    = 0x55
	revocationTag  = 0x56
)

// Encode implements campaign.Codec.
func (SiteCookiesCodec) Encode(v any) ([]byte, error) {
	sc, ok := v.(SiteCookies)
	if !ok {
		return nil, fmt.Errorf("measure: SiteCookiesCodec: unexpected type %T", v)
	}
	buf := make([]byte, 0, 32+len(sc.Domain)+len(sc.Err))
	buf = append(buf, siteCookiesTag)
	buf = appendStr(buf, sc.Domain)
	buf = appendStr(buf, sc.Err)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(sc.Tally.FirstParty))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(sc.Tally.ThirdParty))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(sc.Tally.Tracking))
	return buf, nil
}

// Decode implements campaign.Codec.
func (SiteCookiesCodec) Decode(data []byte) (any, error) {
	d := obsDecoder{data: data}
	if tag := d.byte(); tag != siteCookiesTag {
		return nil, fmt.Errorf("measure: SiteCookiesCodec: tag %#x, want %#x", tag, siteCookiesTag)
	}
	var sc SiteCookies
	sc.Domain = d.str()
	sc.Err = d.str()
	sc.Tally.FirstParty = math.Float64frombits(d.u64())
	sc.Tally.ThirdParty = math.Float64frombits(d.u64())
	sc.Tally.Tracking = math.Float64frombits(d.u64())
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != 0 {
		return nil, fmt.Errorf("measure: SiteCookiesCodec: %d trailing bytes", len(d.data))
	}
	return sc, nil
}

// flagsCodec is the shared shape of the small verdict codecs: a tag
// byte plus one flags byte (plus an optional domain for the campaigns
// whose sinks report per-domain lists).
func encodeFlags(tag byte, flags byte, domain string) []byte {
	buf := make([]byte, 0, 8+len(domain))
	buf = append(buf, tag, flags)
	buf = appendStr(buf, domain)
	return buf
}

func decodeFlags(codec string, tag byte, data []byte) (flags byte, domain string, err error) {
	d := obsDecoder{data: data}
	if got := d.byte(); got != tag {
		return 0, "", fmt.Errorf("measure: %s: tag %#x, want %#x", codec, got, tag)
	}
	flags = d.byte()
	domain = d.str()
	if d.err != nil {
		return 0, "", d.err
	}
	if len(d.data) != 0 {
		return 0, "", fmt.Errorf("measure: %s: %d trailing bytes", codec, len(d.data))
	}
	return flags, domain, nil
}

func packBools(bs ...bool) byte {
	var f byte
	for i, b := range bs {
		if b {
			f |= 1 << i
		}
	}
	return f
}

// bypassCodec journals the §4.5 per-domain verdict (wall survived the
// blocker across repetitions, plus the two quirk flags).
type bypassCodec struct{}

func (bypassCodec) Encode(v any) ([]byte, error) {
	o, ok := v.(bypassOutcome)
	if !ok {
		return nil, fmt.Errorf("measure: bypassCodec: unexpected type %T", v)
	}
	return encodeFlags(bypassTag, packBools(o.Wall, o.AdblockPlea, o.ScrollLocked), o.Domain), nil
}

func (bypassCodec) Decode(data []byte) (any, error) {
	f, domain, err := decodeFlags("bypassCodec", bypassTag, data)
	if err != nil {
		return nil, err
	}
	return bypassOutcome{Domain: domain, Wall: f&1 != 0, AdblockPlea: f&2 != 0, ScrollLocked: f&4 != 0}, nil
}

// ablationCodec journals the four detector-configuration verdicts of
// one ablation visit.
type ablationCodec struct{}

func (ablationCodec) Encode(v any) ([]byte, error) {
	c, ok := v.(ablationCounts)
	if !ok {
		return nil, fmt.Errorf("measure: ablationCodec: unexpected type %T", v)
	}
	return encodeFlags(ablationTag, packBools(c.full, c.noShadow, c.noFrames, c.mainOnly), ""), nil
}

func (ablationCodec) Decode(data []byte) (any, error) {
	f, _, err := decodeFlags("ablationCodec", ablationTag, data)
	if err != nil {
		return nil, err
	}
	return ablationCounts{full: f&1 != 0, noShadow: f&2 != 0, noFrames: f&4 != 0, mainOnly: f&8 != 0}, nil
}

// autoRejectCodec journals one auto-reject attempt's outcome.
type autoRejectCodec struct{}

func (autoRejectCodec) Encode(v any) ([]byte, error) {
	o, ok := v.(rejectOutcome)
	if !ok {
		return nil, fmt.Errorf("measure: autoRejectCodec: unexpected type %T", v)
	}
	return encodeFlags(autoRejectTag, byte(o), ""), nil
}

func (autoRejectCodec) Decode(data []byte) (any, error) {
	f, _, err := decodeFlags("autoRejectCodec", autoRejectTag, data)
	if err != nil {
		return nil, err
	}
	if f > byte(outFailed) {
		return nil, fmt.Errorf("measure: autoRejectCodec: outcome %d out of range", f)
	}
	return rejectOutcome(f), nil
}

// botCheckCodec journals one domain's banner visibility under the two
// crawler identities.
type botCheckCodec struct{}

func (botCheckCodec) Encode(v any) ([]byte, error) {
	p, ok := v.(botPair)
	if !ok {
		return nil, fmt.Errorf("measure: botCheckCodec: unexpected type %T", v)
	}
	return encodeFlags(botCheckTag, packBools(p.mitigated, p.naive), ""), nil
}

func (botCheckCodec) Decode(data []byte) (any, error) {
	f, _, err := decodeFlags("botCheckCodec", botCheckTag, data)
	if err != nil {
		return nil, err
	}
	return botPair{mitigated: f&1 != 0, naive: f&2 != 0}, nil
}

// revocationCodec journals one domain's accept/revisit/delete/revisit
// outcome.
type revocationCodec struct{}

func (revocationCodec) Encode(v any) ([]byte, error) {
	o, ok := v.(revOutcome)
	if !ok {
		return nil, fmt.Errorf("measure: revocationCodec: unexpected type %T", v)
	}
	return encodeFlags(revocationTag, packBools(o.tested, o.gone, o.persisted, o.back), ""), nil
}

func (revocationCodec) Decode(data []byte) (any, error) {
	f, _, err := decodeFlags("revocationCodec", revocationTag, data)
	if err != nil {
		return nil, err
	}
	return revOutcome{tested: f&1 != 0, gone: f&2 != 0, persisted: f&4 != 0, back: f&8 != 0}, nil
}
