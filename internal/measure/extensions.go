package measure

import (
	"fmt"

	"cookiewalk/internal/browser"
	"cookiewalk/internal/core"
	"cookiewalk/internal/vantage"
)

// This file implements the §5 discussion items as runnable
// experiments: detection ablations (what an unmodified tool would
// miss), Firefox-style automatic reject clicking (and how cookiewalls
// defeat it), and consent revocation by cookie deletion.

// Ablation quantifies detection coverage with parts of the pipeline
// disabled.
type Ablation struct {
	// Full is the verified cookiewall count with the complete pipeline.
	Full int
	// NoShadow: without the shadow-DOM clone workaround.
	NoShadow int
	// NoFrames: without iframe traversal.
	NoFrames int
	// MainOnly: neither (roughly unmodified BannerClick).
	MainOnly int
}

// RunAblation re-analyzes the verified cookiewall sites with reduced
// detector configurations.
func (c *Crawler) RunAblation(vp vantage.VP, wallDomains []string) Ablation {
	type counts struct{ full, noShadow, noFrames, mainOnly bool }
	results := parallelMap(c.workers(), wallDomains, func(domain string) counts {
		b := browser.New(c.Transport, vp)
		page, err := b.Open("https://" + domain + "/")
		if err != nil {
			return counts{}
		}
		wall := func(opts core.Options) bool {
			return core.DetectWith(page.Doc, opts).Kind == core.KindCookiewall
		}
		return counts{
			full:     wall(core.Options{}),
			noShadow: wall(core.Options{SkipShadow: true}),
			noFrames: wall(core.Options{SkipFrames: true}),
			mainOnly: wall(core.Options{SkipShadow: true, SkipFrames: true}),
		}
	})
	var a Ablation
	for _, r := range results {
		if r.full {
			a.Full++
		}
		if r.noShadow {
			a.NoShadow++
		}
		if r.noFrames {
			a.NoFrames++
		}
		if r.mainOnly {
			a.MainOnly++
		}
	}
	return a
}

// AutoReject is the §5 "Firefox may soon reject cookie prompts
// automatically" experiment: attempt to auto-click reject on every
// banner and report where the scheme breaks down.
type AutoReject struct {
	Visited int
	// Rejected: banners with a reject button that was clicked and
	// dismissed the banner without setting tracking cookies.
	Rejected int
	// NoRejectOption: banners without any reject button — every
	// cookiewall lands here, which is the paper's point: auto-reject
	// cannot help against accept-or-pay.
	NoRejectOption int
	// NoBanner / Failed round out the accounting.
	NoBanner int
	Failed   int
}

// RunAutoReject visits each domain and tries the auto-reject policy.
func (c *Crawler) RunAutoReject(vp vantage.VP, domains []string) AutoReject {
	type outcome int
	const (
		outRejected outcome = iota
		outNoReject
		outNoBanner
		outFailed
	)
	results := parallelMap(c.workers(), domains, func(domain string) outcome {
		b := browser.New(c.Transport, vp)
		page, err := b.Open("https://" + domain + "/")
		if err != nil {
			return outFailed
		}
		det := core.Detect(page.Doc)
		if det.Kind == core.KindNone {
			return outNoBanner
		}
		if det.RejectButton == nil {
			return outNoReject
		}
		after, err := b.Click(page, det.RejectButton)
		if err != nil {
			return outFailed
		}
		if core.Detect(after.Doc).Kind != core.KindNone {
			return outFailed // banner survived the reject click
		}
		return outRejected
	})
	var a AutoReject
	a.Visited = len(results)
	for _, r := range results {
		switch r {
		case outRejected:
			a.Rejected++
		case outNoReject:
			a.NoRejectOption++
		case outNoBanner:
			a.NoBanner++
		default:
			a.Failed++
		}
	}
	return a
}

// BotCheck quantifies the §3 limitation: "some websites identify web
// crawlers as bots ... they may behave differently". The same sample
// is visited with the OpenWPM-style mitigated user agent and with an
// honest crawler identity.
type BotCheck struct {
	Sample int
	// BannersMitigated / BannersNaive count sites showing any banner
	// under each identity.
	BannersMitigated int
	BannersNaive     int
	// BehaviourChanged counts sites whose banner appears only to the
	// mitigated identity — the sites a naive crawler under-observes.
	BehaviourChanged int
}

// RunBotCheck compares site behaviour under the two crawler identities.
func (c *Crawler) RunBotCheck(vp vantage.VP, domains []string) BotCheck {
	type pair struct{ mitigated, naive bool }
	results := parallelMap(c.workers(), domains, func(domain string) pair {
		showsBanner := func(ua string) bool {
			b := browser.New(c.Transport, vp)
			b.UserAgent = ua
			page, err := b.Open("https://" + domain + "/")
			if err != nil {
				return false
			}
			return core.Detect(page.Doc).Kind != core.KindNone
		}
		return pair{
			mitigated: showsBanner(browser.DefaultUserAgent),
			naive:     showsBanner(browser.CrawlerUserAgent),
		}
	})
	bc := BotCheck{Sample: len(results)}
	for _, p := range results {
		if p.mitigated {
			bc.BannersMitigated++
		}
		if p.naive {
			bc.BannersNaive++
		}
		if p.mitigated && !p.naive {
			bc.BehaviourChanged++
		}
	}
	return bc
}

// Revocation is the §5 "Revoking Cookiewall Acceptance" experiment:
// after accepting, the banner only returns once cookies and local
// storage are deleted.
type Revocation struct {
	Tested int
	// GoneAfterAccept: banner absent on the post-accept reload.
	GoneAfterAccept int
	// BackAfterDeletion: banner shown again after clearing the jar.
	BackAfterDeletion int
	// PersistedWithoutDeletion: banner still absent on a later visit
	// when cookies are kept — the reason users stay tracked.
	PersistedWithoutDeletion int
}

// RunRevocation runs the accept -> revisit -> delete -> revisit flow.
func (c *Crawler) RunRevocation(vp vantage.VP, domains []string) (Revocation, error) {
	var r Revocation
	for _, domain := range domains {
		b := browser.New(c.Transport, vp)
		page, err := b.Open("https://" + domain + "/")
		if err != nil {
			return r, fmt.Errorf("measure: revocation open %s: %w", domain, err)
		}
		det := core.Detect(page.Doc)
		if det.Kind != core.KindCookiewall || det.AcceptButton == nil {
			continue
		}
		r.Tested++
		after, err := b.Click(page, det.AcceptButton)
		if err != nil {
			return r, fmt.Errorf("measure: revocation accept %s: %w", domain, err)
		}
		if core.Detect(after.Doc).Kind == core.KindNone {
			r.GoneAfterAccept++
		}
		// Later visit with cookies kept: still no banner.
		again, err := b.Open("https://" + domain + "/")
		if err != nil {
			return r, err
		}
		if core.Detect(again.Doc).Kind == core.KindNone {
			r.PersistedWithoutDeletion++
		}
		// The §5 recipe: delete cookies (and local storage), revisit.
		b.Jar.Clear()
		fresh, err := b.Open("https://" + domain + "/")
		if err != nil {
			return r, err
		}
		if core.Detect(fresh.Doc).Kind == core.KindCookiewall {
			r.BackAfterDeletion++
		}
	}
	return r, nil
}
