package measure

import (
	"context"

	"cookiewalk/internal/browser"
	"cookiewalk/internal/campaign"
	"cookiewalk/internal/core"
	"cookiewalk/internal/vantage"
)

// This file implements the §5 discussion items as runnable
// experiments: detection ablations (what an unmodified tool would
// miss), Firefox-style automatic reject clicking (and how cookiewalls
// defeat it), and consent revocation by cookie deletion. Each runs as
// a labeled campaign through the engine, so they stream, cancel,
// report progress and checkpoint exactly like the landscape crawl.

// Ablation quantifies detection coverage with parts of the pipeline
// disabled.
type Ablation struct {
	// Full is the verified cookiewall count with the complete pipeline.
	Full int
	// NoShadow: without the shadow-DOM clone workaround.
	NoShadow int
	// NoFrames: without iframe traversal.
	NoFrames int
	// MainOnly: neither (roughly unmodified BannerClick).
	MainOnly int
}

// ablationCounts is one domain's verdict under the four detector
// configurations (the ablation campaign's journaled value).
type ablationCounts struct{ full, noShadow, noFrames, mainOnly bool }

// RunAblation re-analyzes the verified cookiewall sites with reduced
// detector configurations. The error is non-nil only when ctx is
// canceled mid-campaign (or on a checkpoint journal failure).
func (c *Crawler) RunAblation(ctx context.Context, vp vantage.VP, wallDomains []string) (Ablation, error) {
	var a Ablation
	_, err := runExperimentCampaign(ctx, c, LabelAblation, ablationCodec{}, wallDomains,
		func(ctx context.Context, domain string) (ablationCounts, error) {
			b, aff, cancel := c.session(ctx, vp)
			defer releaseBrowser(b, aff)
			if cancel != nil {
				defer cancel()
			}
			page, err := b.Open("https://" + domain + "/")
			if err != nil {
				return ablationCounts{}, nil
			}
			wall := func(opts core.Options) bool {
				return core.DetectWith(page.Doc, opts).Kind == core.KindCookiewall
			}
			return ablationCounts{
				full:     wall(core.Options{}),
				noShadow: wall(core.Options{SkipShadow: true}),
				noFrames: wall(core.Options{SkipFrames: true}),
				mainOnly: wall(core.Options{SkipShadow: true, SkipFrames: true}),
			}, nil
		},
		func(r campaign.Result[ablationCounts]) {
			if r.Value.full {
				a.Full++
			}
			if r.Value.noShadow {
				a.NoShadow++
			}
			if r.Value.noFrames {
				a.NoFrames++
			}
			if r.Value.mainOnly {
				a.MainOnly++
			}
		})
	return a, err
}

// AutoReject is the §5 "Firefox may soon reject cookie prompts
// automatically" experiment: attempt to auto-click reject on every
// banner and report where the scheme breaks down.
type AutoReject struct {
	Visited int
	// Rejected: banners with a reject button that was clicked and
	// dismissed the banner without setting tracking cookies.
	Rejected int
	// NoRejectOption: banners without any reject button — every
	// cookiewall lands here, which is the paper's point: auto-reject
	// cannot help against accept-or-pay.
	NoRejectOption int
	// NoBanner / Failed round out the accounting.
	NoBanner int
	Failed   int
}

// rejectOutcome is one auto-reject attempt's verdict (the campaign's
// journaled value).
type rejectOutcome byte

const (
	outRejected rejectOutcome = iota
	outNoReject
	outNoBanner
	outFailed
)

// RunAutoReject visits each domain and tries the auto-reject policy.
// The error is non-nil only when ctx is canceled mid-campaign (or on a
// checkpoint journal failure).
func (c *Crawler) RunAutoReject(ctx context.Context, vp vantage.VP, domains []string) (AutoReject, error) {
	var a AutoReject
	_, err := runExperimentCampaign(ctx, c, LabelAutoReject, autoRejectCodec{}, domains,
		func(ctx context.Context, domain string) (rejectOutcome, error) {
			b, aff, cancel := c.session(ctx, vp)
			defer releaseBrowser(b, aff)
			if cancel != nil {
				defer cancel()
			}
			page, err := b.Open("https://" + domain + "/")
			if err != nil {
				return outFailed, nil
			}
			det := core.Detect(page.Doc)
			if det.Kind == core.KindNone {
				return outNoBanner, nil
			}
			if det.RejectButton == nil {
				return outNoReject, nil
			}
			after, err := b.Click(page, det.RejectButton)
			if err != nil {
				return outFailed, nil
			}
			if core.Detect(after.Doc).Kind != core.KindNone {
				return outFailed, nil // banner survived the reject click
			}
			return outRejected, nil
		},
		func(r campaign.Result[rejectOutcome]) {
			a.Visited++
			switch r.Value {
			case outRejected:
				a.Rejected++
			case outNoReject:
				a.NoRejectOption++
			case outNoBanner:
				a.NoBanner++
			default:
				a.Failed++
			}
		})
	return a, err
}

// BotCheck quantifies the §3 limitation: "some websites identify web
// crawlers as bots ... they may behave differently". The same sample
// is visited with the OpenWPM-style mitigated user agent and with an
// honest crawler identity.
type BotCheck struct {
	Sample int
	// BannersMitigated / BannersNaive count sites showing any banner
	// under each identity.
	BannersMitigated int
	BannersNaive     int
	// BehaviourChanged counts sites whose banner appears only to the
	// mitigated identity — the sites a naive crawler under-observes.
	BehaviourChanged int
}

// botPair is one domain's banner visibility under the two crawler
// identities (the campaign's journaled value).
type botPair struct{ mitigated, naive bool }

// RunBotCheck compares site behaviour under the two crawler identities.
// The error is non-nil only when ctx is canceled mid-campaign (or on a
// checkpoint journal failure).
func (c *Crawler) RunBotCheck(ctx context.Context, vp vantage.VP, domains []string) (BotCheck, error) {
	var bc BotCheck
	_, err := runExperimentCampaign(ctx, c, LabelBotCheck, botCheckCodec{}, domains,
		func(ctx context.Context, domain string) (botPair, error) {
			showsBanner := func(ua string) bool {
				b, aff, cancel := c.session(ctx, vp)
				defer releaseBrowser(b, aff)
				if cancel != nil {
					defer cancel()
				}
				b.UserAgent = ua
				page, err := b.Open("https://" + domain + "/")
				if err != nil {
					return false
				}
				return core.Detect(page.Doc).Kind != core.KindNone
			}
			return botPair{
				mitigated: showsBanner(browser.DefaultUserAgent),
				naive:     showsBanner(browser.CrawlerUserAgent),
			}, nil
		},
		func(r campaign.Result[botPair]) {
			bc.Sample++
			if r.Value.mitigated {
				bc.BannersMitigated++
			}
			if r.Value.naive {
				bc.BannersNaive++
			}
			if r.Value.mitigated && !r.Value.naive {
				bc.BehaviourChanged++
			}
		})
	return bc, err
}

// Revocation is the §5 "Revoking Cookiewall Acceptance" experiment:
// after accepting, the banner only returns once cookies and local
// storage are deleted.
type Revocation struct {
	Tested int
	// GoneAfterAccept: banner absent on the post-accept reload.
	GoneAfterAccept int
	// BackAfterDeletion: banner shown again after clearing the jar.
	BackAfterDeletion int
	// PersistedWithoutDeletion: banner still absent on a later visit
	// when cookies are kept — the reason users stay tracked.
	PersistedWithoutDeletion int
}

// revOutcome is one domain's accept/revisit/delete/revisit verdict
// (the campaign's journaled value).
type revOutcome struct{ tested, gone, persisted, back bool }

// RunRevocation runs the accept -> revisit -> delete -> revisit flow.
// The flow is session-stateful per DOMAIN (one browser profile carries
// its cookies through the four steps) but independent across domains,
// so it runs as a campaign like every other experiment. A domain whose
// flow fails mid-way (open or click error) counts as untested and is
// recorded in the campaign's error ledger. The returned error is
// non-nil only when ctx is canceled mid-campaign (or on a checkpoint
// journal failure).
func (c *Crawler) RunRevocation(ctx context.Context, vp vantage.VP, domains []string) (Revocation, error) {
	var r Revocation
	_, err := runExperimentCampaign(ctx, c, LabelRevocation, revocationCodec{}, domains,
		func(ctx context.Context, domain string) (revOutcome, error) {
			b, aff, cancel := c.session(ctx, vp)
			defer releaseBrowser(b, aff)
			if cancel != nil {
				defer cancel()
			}
			page, err := b.Open("https://" + domain + "/")
			if err != nil {
				return revOutcome{}, err
			}
			det := core.Detect(page.Doc)
			if det.Kind != core.KindCookiewall || det.AcceptButton == nil {
				return revOutcome{}, nil
			}
			out := revOutcome{tested: true}
			after, err := b.Click(page, det.AcceptButton)
			if err != nil {
				return revOutcome{}, err
			}
			if core.Detect(after.Doc).Kind == core.KindNone {
				out.gone = true
			}
			// Later visit with cookies kept: still no banner.
			again, err := b.Open("https://" + domain + "/")
			if err != nil {
				return revOutcome{}, err
			}
			if core.Detect(again.Doc).Kind == core.KindNone {
				out.persisted = true
			}
			// The §5 recipe: delete cookies (and local storage), revisit.
			b.Jar.Clear()
			fresh, err := b.Open("https://" + domain + "/")
			if err != nil {
				return revOutcome{}, err
			}
			if core.Detect(fresh.Doc).Kind == core.KindCookiewall {
				out.back = true
			}
			return out, nil
		},
		func(res campaign.Result[revOutcome]) {
			o := res.Value
			if o.tested {
				r.Tested++
			}
			if o.gone {
				r.GoneAfterAccept++
			}
			if o.persisted {
				r.PersistedWithoutDeletion++
			}
			if o.back {
				r.BackAfterDeletion++
			}
		})
	return r, err
}
