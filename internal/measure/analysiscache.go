package measure

import (
	"sync"
	"sync/atomic"

	"cookiewalk/internal/core"
)

// analysisCache memoizes page-analysis results (core.Analysis) by
// content fingerprint: the post-fetch pipeline — parse, core.Detect,
// language detection, categorization — runs ONCE per distinct page
// body instead of once per visit. An eight-vantage-point landscape
// crawl loads at most two distinct renders per site (banner shown or
// not), so up to eight visits collapse onto one analysis.
//
// The cache is process-global (like the browser pool): fingerprints
// are content hashes, so entries from different studies can only
// collide the way any 64-bit content hash can, and byte-identical
// pages genuinely share their analysis.
//
// Concurrency: shards keep worker contention negligible, and each
// entry is a singleflight slot — the first goroutine to claim a
// fingerprint computes the analysis while concurrent claimants for the
// same fingerprint block on the entry's done channel instead of
// duplicating in-flight work. Bounding mirrors the webfarm render
// cache: a shard past analysisShardMax entries is reset (in-flight
// entries survive through their pointers; the next visit repopulates),
// so memory stays bounded with no eviction bookkeeping that could
// affect results.
type analysisCache struct {
	shards [analysisShards]analysisShard

	// hits counts visits served by a published entry; misses counts
	// claims that ran a fresh analysis. Monotonic over the process
	// lifetime — delta-crawl rounds subtract snapshots to report how
	// much of a round the memo absorbed. Seeded entries (checkpoint
	// replay) count as neither: they were never analyzed this process.
	hits   atomic.Uint64
	misses atomic.Uint64
}

const (
	analysisShards = 64
	// analysisShardMax bounds entries per shard (≈260k across the
	// cache; a full-scale crawl's working set is ~2 variants × 45k
	// sites spread over 64 shards).
	analysisShardMax = 4096
)

type analysisShard struct {
	mu sync.Mutex
	m  map[uint64]*analysisEntry
	// _ pads the shard to a full 64-byte cache line (Mutex 8 + map
	// header 8 = 16), so neighbouring shards' locks never false-share a
	// line across workers memoizing different fingerprints.
	_ [48]byte
}

// analysisEntry is one fingerprint's singleflight slot. a and failed
// are written exactly once, before done is closed; readers wait on
// done first, so the channel's happens-before edge publishes both
// race-free.
type analysisEntry struct {
	done chan struct{}
	a    core.Analysis
	// failed marks a claim whose compute errored (a composition
	// degraded by transport faults) or died: the entry was already
	// unpublished, and waiters must re-claim instead of consuming it —
	// a failed fetch can never seed the memo.
	failed bool
}

// get returns the memoized analysis for fp, computing it via compute
// on first claim. compute runs on the claiming goroutine; concurrent
// callers with the same fingerprint block until it finishes and share
// the result.
func (c *analysisCache) get(fp uint64, compute func() core.Analysis) core.Analysis {
	a, _ := c.getChecked(fp, func() (core.Analysis, error) { return compute(), nil })
	return a
}

// getChecked is get for computations that can fail: a compute error is
// returned to the claiming caller only, the entry is unpublished, and
// any concurrent waiters on the same fingerprint loop back to claim
// the slot themselves — their own visit's fetch decides their outcome.
// Nothing about a failure is ever memoized.
func (c *analysisCache) getChecked(fp uint64, compute func() (core.Analysis, error)) (core.Analysis, error) {
	s := &c.shards[fp%analysisShards]
	for {
		s.mu.Lock()
		if e, ok := s.m[fp]; ok {
			s.mu.Unlock()
			<-e.done
			if e.failed {
				continue
			}
			c.hits.Add(1)
			return e.a, nil
		}
		e := &analysisEntry{done: make(chan struct{})}
		if s.m == nil || len(s.m) >= analysisShardMax {
			s.m = make(map[uint64]*analysisEntry, 64)
		}
		s.m[fp] = e
		s.mu.Unlock()
		c.misses.Add(1)
		return c.fill(s, fp, e, compute)
	}
}

// fill runs compute for a freshly claimed entry: success publishes the
// analysis; an error — or a compute that panics or runs runtime.Goexit
// (t.Fatal in a test helper) — unpublishes the entry so later visits
// recompute, marks it failed, and unblocks waiters into re-claiming.
func (c *analysisCache) fill(s *analysisShard, fp uint64, e *analysisEntry, compute func() (core.Analysis, error)) (core.Analysis, error) {
	completed := false
	defer func() {
		if completed {
			return
		}
		s.mu.Lock()
		if s.m[fp] == e {
			delete(s.m, fp)
		}
		s.mu.Unlock()
		e.failed = true
		close(e.done)
	}()
	a, err := compute()
	if err != nil {
		return core.Analysis{}, err
	}
	e.a = a
	completed = true
	close(e.done)
	return a, nil
}

// seededDone is the pre-closed channel shared by every seeded entry:
// a seed is complete the moment it is published, so readers never
// block on it.
var seededDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// seed publishes an already-computed analysis for fp — the
// checkpoint-resume path, where a replayed observation carries the
// analysis its original visit computed. An existing entry (computed or
// in flight) always wins: seeding never replaces live results, it only
// fills holes, so a seeded cache behaves exactly like one warmed by
// real visits.
func (c *analysisCache) seed(fp uint64, a core.Analysis) {
	s := &c.shards[fp%analysisShards]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[fp]; ok {
		return
	}
	if s.m == nil || len(s.m) >= analysisShardMax {
		s.m = make(map[uint64]*analysisEntry, 64)
	}
	s.m[fp] = &analysisEntry{done: seededDone, a: a}
}

// analyses is the process-wide analysis memo shared by all crawlers;
// Crawler.NoAnalysisCache bypasses it for debugging.
var analyses analysisCache
