package measure

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"cookiewalk/internal/core"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/vantage"
	"cookiewalk/internal/webfarm"
)

// TestAnalysisCacheSingleflight pins the dedup contract: many
// goroutines racing on ONE fingerprint run the compute exactly once
// and all observe its result.
func TestAnalysisCacheSingleflight(t *testing.T) {
	var c analysisCache
	var computes atomic.Int64
	const workers = 16
	var wg sync.WaitGroup
	results := make([]core.Analysis, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = c.get(42, func() core.Analysis {
				computes.Add(1)
				return core.Analysis{Kind: core.KindCookiewall, Language: "de", MatchedWords: []string{"abo"}}
			})
		}(w)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for one fingerprint, want 1", n)
	}
	for w, a := range results {
		if a.Kind != core.KindCookiewall || a.Language != "de" || len(a.MatchedWords) != 1 {
			t.Fatalf("worker %d saw analysis %+v", w, a)
		}
	}
}

// TestAnalysisCacheConcurrent hammers the cache from many goroutines
// over many fingerprints, each mapping to a deterministic expected
// analysis. Run with -race, this is the correctness gate for the memo
// under parallel campaigns (the analogue of TestRenderCacheConcurrent).
func TestAnalysisCacheConcurrent(t *testing.T) {
	var c analysisCache
	want := func(fp uint64) core.Analysis {
		return core.Analysis{
			Kind:       core.Kind(fp % 3),
			PriceCount: int(fp % 7),
			Language:   fmt.Sprintf("l%d", fp%5),
		}
	}
	const (
		workers = 8
		fps     = 512
	)
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i := 0; i < fps; i++ {
					// Vary the order per worker so claims and waits
					// interleave across shards.
					fp := uint64((i*131 + w*17 + rep) % fps)
					got := c.get(fp, func() core.Analysis { return want(fp) })
					if !reflect.DeepEqual(got, want(fp)) {
						select {
						case errs <- fmt.Sprintf("worker %d: fp %d diverged under concurrency", w, fp):
						default:
						}
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestAnalysisCacheBounded checks overflow behaviour: shards past
// their entry bound reset and keep serving correct results.
func TestAnalysisCacheBounded(t *testing.T) {
	var c analysisCache
	for i := 0; i < 3*analysisShards*analysisShardMax/2; i++ {
		fp := uint64(i)
		a := c.get(fp, func() core.Analysis { return core.Analysis{PriceCount: int(fp)} })
		if a.PriceCount != int(fp) {
			t.Fatalf("fp %d: wrong analysis after overflow churn", fp)
		}
	}
	for i := range c.shards {
		if n := len(c.shards[i].m); n > analysisShardMax {
			t.Fatalf("shard %d holds %d entries, bound is %d", i, n, analysisShardMax)
		}
	}
	// A fingerprint evicted by a reset is recomputed, not lost.
	recomputed := false
	a := c.get(0, func() core.Analysis { recomputed = true; return core.Analysis{PriceCount: 0} })
	if a.PriceCount != 0 {
		t.Fatal("wrong analysis after reset")
	}
	_ = recomputed // either outcome is legal; correctness is the value
}

// TestVisitAnalysisCacheEquivalence crawls a slice of the universe
// from every vantage point with the memo enabled and disabled and
// requires observation-for-observation identical results — the
// VP-independence invariant the whole tentpole rests on, checked at
// the Observation level (the golden report pins it end to end).
func TestVisitAnalysisCacheEquivalence(t *testing.T) {
	c, _ := fixture(t)
	plain := New(c.Reg, c.Transport)
	plain.NoAnalysisCache = true

	targets := c.Reg.TargetList()
	if len(targets) > 120 {
		targets = targets[:120]
	}
	for _, vp := range vantage.All() {
		for _, domain := range targets {
			cached := c.Visit(context.Background(), vp, domain, VisitOpts{})
			direct := plain.Visit(context.Background(), vp, domain, VisitOpts{})
			if !reflect.DeepEqual(cached, direct) {
				t.Fatalf("%s from %s: cached observation %+v != uncached %+v",
					domain, vp.Name, cached, direct)
			}
		}
	}
}

// rewriteTransport routes the browser's https://domain/ requests to a
// local listener while preserving the Host header — the cmd/webfarm
// deployment mode, where the browser sees a PLAIN http.RoundTripper
// and must derive fingerprints by hashing downloaded bytes.
type rewriteTransport struct {
	addr string // host:port of the test listener
}

func (rt rewriteTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	clone := req.Clone(req.Context())
	clone.URL.Scheme = "http"
	clone.URL.Host = rt.addr
	clone.Host = req.URL.Host // virtual hosting by Host header
	return http.DefaultTransport.RoundTrip(clone)
}

// TestAnalysisFingerprintFallbackHash exercises the plain-RoundTripper
// fingerprint path end to end over cmd/webfarm's real-listener mode:
// visits through a TCP socket must produce byte-identical observations
// to in-process visits — with the memo on AND off — because the
// fallback body hash resolves to the same content token the in-process
// fast path hands out. Distinct sites must keep distinct analyses (no
// false sharing through the fallback hash).
func TestAnalysisFingerprintFallbackHash(t *testing.T) {
	reg := synthweb.Generate(synthweb.Config{Seed: 42, FillerScale: 0.02})
	farm := webfarm.New(reg)
	srv := httptest.NewServer(farm)
	defer srv.Close()

	inproc := New(reg, farm.Transport())
	overWire := New(reg, rewriteTransport{addr: srv.Listener.Addr().String()})
	overWireDirect := New(reg, rewriteTransport{addr: srv.Listener.Addr().String()})
	overWireDirect.NoAnalysisCache = true

	// A handful of structurally distinct sites: cookiewalls in several
	// embeddings plus a regular-banner site.
	var domains []string
	for _, s := range reg.CookiewallSites() {
		if len(domains) < 6 && s.Reachable {
			domains = append(domains, s.Domain)
		}
	}
	for _, s := range reg.Sites() {
		if s.Banner == synthweb.BannerRegular && s.Reachable {
			domains = append(domains, s.Domain)
			break
		}
	}
	if len(domains) < 3 {
		t.Fatal("not enough test sites")
	}

	vpDE, _ := vantage.ByName("Germany")
	vpBR, _ := vantage.ByName("Brazil")
	for _, domain := range domains {
		for _, vp := range []vantage.VP{vpDE, vpBR} {
			// The memo-free overWireDirect visit below is the ground
			// truth: had the fallback hash folded two distinct pages
			// onto one memo entry, the cached observations here would
			// diverge from it for at least one (domain, VP).
			want := inproc.Visit(context.Background(), vp, domain, VisitOpts{})
			got := overWire.Visit(context.Background(), vp, domain, VisitOpts{})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s from %s: real-listener observation %+v != in-process %+v",
					domain, vp.Name, got, want)
			}
			direct := overWireDirect.Visit(context.Background(), vp, domain, VisitOpts{})
			if !reflect.DeepEqual(direct, want) {
				t.Fatalf("%s from %s: real-listener uncached observation diverges", domain, vp.Name)
			}
		}
	}
}

// TestAnalyzeOneUsesCampaignEngine guards the single-target campaign
// path against regressions from the Visit split: one visit through
// AnalyzeOne equals a direct Visit.
func TestAnalyzeOneUsesCampaignEngine(t *testing.T) {
	c, _ := fixture(t)
	domain := c.Reg.TargetList()[0]
	vp := germanyVP()
	direct := c.Visit(context.Background(), vp, domain, VisitOpts{})
	viaEngine, err := c.AnalyzeOne(context.Background(), vp, domain, VisitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, viaEngine) {
		t.Fatalf("AnalyzeOne %+v != Visit %+v", viaEngine, direct)
	}
}
