package measure

import (
	"cookiewalk/internal/stats"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/vantage"
)

// Round summaries: the per-round aggregate bundle the continuous-
// measurement service (internal/trend, cmd/trendd) appends to its
// time-indexed store after every delta-crawl. One RoundSummary distills
// a full landscape crawl plus the verified Germany observations into
// the trends the paper tracks — prevalence, paywall share, price
// statistics, per-VP splits — small enough to persist per round and
// serve precomputed.
//
// Determinism: a RoundSummary is a pure function of the landscape and
// observation inputs. It deliberately contains no maps (JSON encoding
// of maps is order-stable in Go, but slices keep the intent obvious),
// no timestamps and no memo/cache counters — anything that could vary
// between a resumed and an uninterrupted round stays out, so the
// summary bytes are identical however the round's crawl was scheduled,
// sharded, interrupted or replayed.

// VPTrendSplit is one vantage point's slice of a round summary.
type VPTrendSplit struct {
	VP      string `json:"vp"`
	EU      bool   `json:"eu"`
	Visited int    `json:"visited"`
	Errors  int    `json:"errors"`
	// NoBanner/Regular/Cookiewalls partition the successful visits.
	// Cookiewalls counts VERIFIED detections from this VP (the audit
	// the paper applies before reporting).
	NoBanner    int `json:"no_banner"`
	Regular     int `json:"regular"`
	Cookiewalls int `json:"cookiewalls"`
	// BannerRate is (regular + raw cookiewall detections) / successful
	// visits — the §4.2 per-VP banner rate.
	BannerRate float64 `json:"banner_rate"`
}

// RoundSummary is one round's aggregate bundle.
type RoundSummary struct {
	// Targets is the universe size; Cookiewalls the verified cookiewall
	// domains detected from ANY vantage point (the prevalence
	// numerator).
	Targets     int `json:"targets"`
	Cookiewalls int `json:"cookiewalls"`
	// Prevalence and Top1kPrevalence are the §4.1 rates.
	Prevalence      float64 `json:"prevalence"`
	Top1kPrevalence float64 `json:"top1k_prevalence"`
	// PaywallShare is verified cookiewalls / banner-showing sites as
	// seen from Germany — the share of consent UIs that are
	// accept-or-pay.
	PaywallShare float64 `json:"paywall_share"`
	// Price statistics over the verified Germany observations that
	// carry a subscription price (Figure 2's population).
	PriceCount        int     `json:"price_count"`
	PriceMin          float64 `json:"price_min"`
	PriceMedian       float64 `json:"price_median"`
	PriceMean         float64 `json:"price_mean"`
	PriceMax          float64 `json:"price_max"`
	PriceShareAtMost3 float64 `json:"price_share_at_most_3"`
	// PerVP lists every vantage point's split in vantage.All order.
	PerVP []VPTrendSplit `json:"per_vp"`
}

// SummarizeRound condenses a landscape crawl and the verified Germany
// observations into the round aggregates trendd stores and serves.
func (c *Crawler) SummarizeRound(l *Landscape, german []Observation) RoundSummary {
	overall, top1k, _ := c.Prevalence(l)
	sum := RoundSummary{
		Targets:         l.Targets,
		Prevalence:      overall,
		Top1kPrevalence: top1k,
	}
	for _, d := range l.UnionDetections() {
		if s, ok := c.Reg.Site(d); ok && s.Banner == synthweb.BannerCookiewall {
			sum.Cookiewalls++
		}
	}
	if de, ok := l.Result("Germany"); ok {
		walls := len(c.Verified(de.Cookiewalls))
		if banners := de.Regular + walls; banners > 0 {
			sum.PaywallShare = float64(walls) / float64(banners)
		}
	}
	ps := Prices(german)
	sum.PriceCount = len(ps.Prices)
	if sum.PriceCount > 0 {
		sum.PriceMin = stats.Quantile(ps.Prices, 0)
		sum.PriceMedian = stats.Median(ps.Prices)
		sum.PriceMean = stats.Mean(ps.Prices)
		sum.PriceMax = stats.Quantile(ps.Prices, 1)
		sum.PriceShareAtMost3 = ps.ShareAtMost3
	}
	rates := RatesPerVP(l)
	rateByVP := make(map[string]float64, len(rates))
	for _, r := range rates {
		rateByVP[r.VP] = r.BannerRate
	}
	for _, vp := range vantage.All() {
		res, ok := l.Result(vp.Name)
		if !ok {
			continue
		}
		sum.PerVP = append(sum.PerVP, VPTrendSplit{
			VP:          vp.Name,
			EU:          vp.IsEU(),
			Visited:     res.Visited,
			Errors:      res.Errors,
			NoBanner:    res.NoBanner,
			Regular:     res.Regular,
			Cookiewalls: len(c.Verified(res.Cookiewalls)),
			BannerRate:  rateByVP[vp.Name],
		})
	}
	return sum
}

// AnalysisMemoCounters snapshots the process-wide analysis memo: hits
// counts visits whose page analysis was served from the memo, misses
// counts fresh analyses. Both are monotonic; the trend runner subtracts
// snapshots taken around a round to report how much of a delta-crawl
// the memo absorbed (unchanged pages cost a hit, not a re-analysis).
func AnalysisMemoCounters() (hits, misses uint64) {
	return analyses.hits.Load(), analyses.misses.Load()
}
