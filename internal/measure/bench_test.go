package measure

import (
	"testing"

	"cookiewalk/internal/browser"
	"cookiewalk/internal/core"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/webfarm"
)

// BenchmarkAnalyzeMemo isolates the analysis memo itself on a real
// composed cookiewall page:
//
//   - hit: steady-state lookup of an already-analyzed fingerprint —
//     the cost the 2nd..8th vantage point pays instead of the pipeline;
//   - miss: first-claim cost, i.e. the full analyzePage pipeline plus
//     the singleflight bookkeeping (each iteration claims a fresh
//     fingerprint).
func BenchmarkAnalyzeMemo(b *testing.B) {
	reg := synthweb.Generate(synthweb.Config{Seed: 42, FillerScale: 0.02})
	farm := webfarm.New(reg)
	var domain string
	for _, s := range reg.CookiewallSites() {
		if s.Reachable {
			domain = s.Domain
			break
		}
	}
	if domain == "" {
		b.Fatal("no reachable cookiewall site")
	}
	br := browser.New(farm.Transport(), germanyVP())
	page, err := br.Open("https://" + domain + "/")
	if err != nil {
		b.Fatal(err)
	}

	b.Run("hit", func(b *testing.B) {
		var c analysisCache
		c.get(page.Fingerprint, func() core.Analysis { return analyzePage(page) })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := c.get(page.Fingerprint, func() core.Analysis {
				b.Fatal("memo hit ran compute")
				return core.Analysis{}
			})
			if a.Kind != core.KindCookiewall {
				b.Fatal("wrong cached analysis")
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		var c analysisCache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Distinct fingerprint per iteration: every get is a first
			// claim running the full pipeline.
			a := c.get(uint64(i), func() core.Analysis { return analyzePage(page) })
			if a.Kind != core.KindCookiewall {
				b.Fatal("wrong analysis")
			}
		}
	})
}

// BenchmarkAnalysisCacheContention measures concurrent warm-memo
// lookups spread across many fingerprints — what every worker of a
// parallel campaign does for the 2nd..8th vantage point of each site.
// Run with -cpu 1,4: the shards are padded to distinct cache lines, so
// added Ps should add throughput, not lock convoys.
func BenchmarkAnalysisCacheContention(b *testing.B) {
	var c analysisCache
	const keys = 4096
	for i := 0; i < keys; i++ {
		c.get(uint64(i), func() core.Analysis { return core.Analysis{Kind: core.KindRegular} })
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			a := c.get(uint64(i%keys), func() core.Analysis {
				b.Fatal("warm lookup ran compute")
				return core.Analysis{}
			})
			if a.Kind != core.KindRegular {
				b.Fatal("wrong cached analysis")
			}
			i++
		}
	})
}
