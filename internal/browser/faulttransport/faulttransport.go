// Package faulttransport is a deterministic fault injector for the
// browser's transport seam — the visit-path sibling of the fleet's
// distfault. It wraps BOTH seams the browser dispatches on: the
// zero-copy RoundTripBody fast path (the in-process webfarm) and the
// plain http.RoundTripper compatibility path — and injects timeouts,
// connection resets, 5xx responses, truncated bodies and stalls from
// a seeded per-mille Profile.
//
// Determinism contract. Every injection decision is a pure function
// of (Seed, request URL, retry attempt): the browser threads each
// request's attempt ordinal through the request context
// (browser.WithAttempt), and the injector rolls
// Mix64(Mix64(Seed, Hash64(method+url)), attempt) — no mutable state,
// so the fault schedule is immune to goroutine interleaving, worker
// counts and shard geometry. Attempts at or past Profile.MaxPerRequest
// are always clean, so a retry budget of at least MaxPerRequest
// guarantees every request eventually succeeds — which is what makes
// a chaos run's report byte-identical to the clean golden.
package faulttransport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"cookiewalk/internal/browser"
	"cookiewalk/internal/xrand"
)

// Fault kinds, in Profile order.
const (
	FaultTimeout  = "timeout"
	FaultReset    = "reset"
	Fault503      = "503"
	FaultTruncate = "truncate"
	FaultStall    = "stall"
)

// ErrInjected is the sentinel wrapped by every injected failure, so
// tests can tell injected faults from real transport errors with
// errors.Is.
var ErrInjected = errors.New("faulttransport: injected fault")

// Profile sets per-mille probabilities for each fault kind (out of
// requests that are eligible at all). The zero Profile injects
// nothing.
type Profile struct {
	// Timeout‰ of requests fail with a transient timeout error.
	Timeout int
	// Reset‰ fail with a transient connection-reset error.
	Reset int
	// Err503‰ return a synthesized 503 response.
	Err503 int
	// Truncate‰ tear the response body mid-read (plain path) or fail
	// the body transfer outright (fast path) with a transient error.
	Truncate int
	// Stall‰ hang for StallFor (honoring the request context) and then
	// fail transiently — the slow-then-dead connection.
	Stall int
	// StallFor is how long a stall hangs (default 10ms; tests shrink it).
	StallFor time.Duration
	// MaxPerRequest caps how many leading retry attempts of one request
	// may be faulted: attempts >= MaxPerRequest are always clean.
	// 0 means the default of 2; negative means NO cap — every attempt
	// of an eligible request faults, which is how tests build hosts
	// that are down for good.
	MaxPerRequest int
}

// pick maps a per-mille roll to a fault kind ("" = clean) by walking
// cumulative thresholds in declaration order.
func (p Profile) pick(roll uint64) string {
	cum := uint64(0)
	for _, f := range []struct {
		kind string
		pm   int
	}{
		{FaultTimeout, p.Timeout},
		{FaultReset, p.Reset},
		{Fault503, p.Err503},
		{FaultTruncate, p.Truncate},
		{FaultStall, p.Stall},
	} {
		if f.pm <= 0 {
			continue
		}
		cum += uint64(f.pm)
		if roll < cum {
			return f.kind
		}
	}
	return ""
}

func (p Profile) maxPerRequest() int {
	switch {
	case p.MaxPerRequest > 0:
		return p.MaxPerRequest
	case p.MaxPerRequest < 0:
		return int(^uint(0) >> 1) // no cap
	}
	return 2
}

func (p Profile) stallFor() time.Duration {
	if p.StallFor > 0 {
		return p.StallFor
	}
	return 10 * time.Millisecond
}

// Counters are running totals of injected faults by kind.
type Counters struct {
	Timeouts, Resets, Err503s, Truncates, Stalls uint64
}

// Total sums all kinds.
func (c Counters) Total() uint64 {
	return c.Timeouts + c.Resets + c.Err503s + c.Truncates + c.Stalls
}

// Transport injects faults in front of a plain http.RoundTripper.
// Use Wrap to construct one — it picks the seam matching the base.
type Transport struct {
	// Base is the real transport.
	Base http.RoundTripper
	// Seed drives the fault schedule deterministically.
	Seed uint64
	// Profile sets the fault mix.
	Profile Profile
	// Hosts, when non-nil, restricts injection to hosts it returns
	// true for — composable: wrap an always-fail injector scoped to
	// one victim host around a background-noise injector for the rest.
	Hosts func(host string) bool
	// Logf, when non-nil, receives one line per injected fault.
	Logf func(format string, args ...any)

	timeouts, resets, err503s, truncates, stalls atomic.Uint64
}

// Injected returns the fault totals so far.
func (t *Transport) Injected() Counters {
	return Counters{
		Timeouts:  t.timeouts.Load(),
		Resets:    t.resets.Load(),
		Err503s:   t.err503s.Load(),
		Truncates: t.truncates.Load(),
		Stalls:    t.stalls.Load(),
	}
}

// faultError is every injected failure: transient (the browser's
// retry loop classifies it structurally), wrapping ErrInjected, with
// deterministic text — no attempt numbers, so an exhausted-retry
// error journaled by a campaign has stable bytes.
type faultError struct {
	kind string
	url  string
}

func (e *faultError) Error() string {
	return fmt.Sprintf("faulttransport: injected %s: %s", e.kind, e.url)
}
func (e *faultError) Unwrap() error   { return ErrInjected }
func (e *faultError) Transient() bool { return true }
func (e *faultError) Timeout() bool   { return e.kind == FaultTimeout }

// decide returns the fault kind for this (request, attempt), or "".
func (t *Transport) decide(req *http.Request) string {
	if t.Hosts != nil && !t.Hosts(req.URL.Hostname()) {
		return ""
	}
	attempt := browser.AttemptFromContext(req.Context())
	if attempt >= t.Profile.maxPerRequest() {
		return ""
	}
	key := xrand.Hash64(req.Method + " " + req.URL.String())
	roll := xrand.Mix64(xrand.Mix64(t.Seed, key), uint64(attempt)) % 1000
	return t.Profile.pick(roll)
}

func (t *Transport) count(kind string) {
	switch kind {
	case FaultTimeout:
		t.timeouts.Add(1)
	case FaultReset:
		t.resets.Add(1)
	case Fault503:
		t.err503s.Add(1)
	case FaultTruncate:
		t.truncates.Add(1)
	case FaultStall:
		t.stalls.Add(1)
	}
}

func (t *Transport) logf(kind string, req *http.Request) {
	if t.Logf != nil {
		t.Logf("faulttransport: %s %s %s", kind, req.Method, req.URL)
	}
}

// stall hangs for the profile's stall duration, honoring ctx.
func (t *Transport) stall(ctx context.Context) error {
	timer := time.NewTimer(t.Profile.stallFor())
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// RoundTrip implements http.RoundTripper (the compatibility seam).
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	kind := t.decide(req)
	if kind == "" {
		return t.Base.RoundTrip(req)
	}
	t.count(kind)
	t.logf(kind, req)
	switch kind {
	case FaultTimeout, FaultReset:
		return nil, &faultError{kind: kind, url: req.URL.String()}
	case FaultStall:
		if err := t.stall(req.Context()); err != nil {
			return nil, err
		}
		return nil, &faultError{kind: kind, url: req.URL.String()}
	case Fault503:
		body := "injected 503: service unavailable\n"
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case FaultTruncate:
		resp, err := t.Base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// Deliver a real prefix, then tear the connection: readers see
		// partial bytes followed by a transient error, never a clean EOF
		// — exercising exactly the poisoning path the browser must
		// refuse to fingerprint.
		resp.Body = &tornBody{rc: resp.Body, remaining: 1024, err: &faultError{kind: kind, url: req.URL.String()}}
		resp.ContentLength = -1
		return resp, nil
	}
	return t.Base.RoundTrip(req)
}

// tornBody yields up to remaining bytes of the underlying body and
// then fails with the injected error instead of EOF.
type tornBody struct {
	rc        io.ReadCloser
	remaining int
	err       error
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, b.err
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	if err == io.EOF {
		// The body was shorter than the tear point: the fault still
		// fires so the outcome does not depend on body size.
		return n, b.err
	}
	return n, err
}

func (b *tornBody) Close() error { return b.rc.Close() }

// bodyRoundTripper mirrors the browser's structural fast-path probe.
type bodyRoundTripper interface {
	RoundTripBody(req *http.Request) (status int, header http.Header, body string, fp uint64, err error)
}

// BodyTransport is a Transport whose base implements the zero-copy
// RoundTripBody seam; it injects the same faults there so the browser
// keeps its fast path under chaos.
type BodyTransport struct {
	*Transport
	base bodyRoundTripper
}

// RoundTripBody implements the fast-path seam.
func (t *BodyTransport) RoundTripBody(req *http.Request) (status int, header http.Header, body string, fp uint64, err error) {
	kind := t.decide(req)
	if kind == "" {
		return t.base.RoundTripBody(req)
	}
	t.count(kind)
	t.logf(kind, req)
	switch kind {
	case FaultTimeout, FaultReset:
		return 0, nil, "", 0, &faultError{kind: kind, url: req.URL.String()}
	case FaultStall:
		if serr := t.stall(req.Context()); serr != nil {
			return 0, nil, "", 0, serr
		}
		return 0, nil, "", 0, &faultError{kind: kind, url: req.URL.String()}
	case Fault503:
		return http.StatusServiceUnavailable, http.Header{}, "injected 503: service unavailable\n", 0, nil
	case FaultTruncate:
		// The fast path hands bodies over whole, so a torn transfer is
		// an error with no bytes: there is no partial string to leak
		// into fingerprinting.
		return 0, nil, "", 0, &faultError{kind: kind, url: req.URL.String()}
	}
	return t.base.RoundTripBody(req)
}

// Wrap puts a fault injector in front of base, picking the seam that
// matches: a base with the RoundTripBody fast path gets a wrapper
// that preserves it. The returned *Transport carries the counters
// (and is the same object the RoundTripper wraps).
func Wrap(base http.RoundTripper, seed uint64, profile Profile) (http.RoundTripper, *Transport) {
	t := &Transport{Base: base, Seed: seed, Profile: profile}
	if bt, ok := base.(bodyRoundTripper); ok {
		return &BodyTransport{Transport: t, base: bt}, t
	}
	return t, t
}
