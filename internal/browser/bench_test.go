package browser

import (
	"net/url"
	"testing"

	"cookiewalk/internal/adblock"
	"cookiewalk/internal/dom"
)

// cosmeticsPage carries the stock SMP overlay markup the Annoyances
// cosmetic rules target, plus enough surrounding structure that the
// selector scan does real work.
const cosmeticsPage = `<!DOCTYPE html><html><head><title>t</title></head><body>
<header><h1>Site</h1><nav><a href="/">Home</a> <a href="/privacy">Privacy</a></nav></header>
<main><article><h2>head</h2><p>eins zwei drei</p><p>vier fünf sechs</p></article></main>
<div id="cw-banner" class="cw-smp-overlay consent-layer" role="dialog" style="position:fixed;top:20%">
<p class="cw-text">Werbefrei im Abo für 2,99 € pro Monat oder Cookies akzeptieren.</p>
<button id="cw-accept">Alle akzeptieren</button><button id="cw-subscribe">Jetzt abonnieren</button></div>
<footer><p>© example</p></footer></body></html>`

// BenchmarkCosmetics measures applying the blocker's cosmetic rules to
// a parsed page. The first iteration detaches the overlay; following
// iterations measure the steady-state selector scan that every page
// load of the §4.5 bypass experiment pays.
func BenchmarkCosmetics(b *testing.B) {
	eng := adblock.NewEngine(adblock.BaseList(), adblock.AnnoyancesList())
	u, err := url.Parse("https://promi-blick.de/")
	if err != nil {
		b.Fatal(err)
	}
	br := &Browser{Blocker: eng}
	page := &Page{URL: u, Doc: dom.Parse(cosmeticsPage)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.applyCosmetics(page)
	}
}
