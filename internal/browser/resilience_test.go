package browser

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cookiewalk/internal/hostgate"
	"cookiewalk/internal/vantage"
)

// transientErr is a transport failure marked retryable, the way the
// fault injector and real network transports mark timeouts and resets.
type transientErr struct{ msg string }

func (e *transientErr) Error() string   { return e.msg }
func (e *transientErr) Transient() bool { return true }

// countingGate records the browser's gate protocol so tests can assert
// the pairing invariant doRequest guarantees: every admission is
// settled by exactly one Report or Abandon.
type countingGate struct {
	deny     bool
	admits   int
	waits    int
	reports  int
	failures int
	abandons int
}

type deniedErr struct{}

func (e *deniedErr) Error() string     { return "countingGate: circuit open" }
func (e *deniedErr) CircuitOpen() bool { return true }

func (g *countingGate) Admit(host string) error {
	if g.deny {
		return &deniedErr{}
	}
	g.admits++
	return nil
}

func (g *countingGate) Wait(ctx context.Context, host string) error {
	g.waits++
	return ctx.Err()
}

func (g *countingGate) Report(host string, failed bool) bool {
	g.reports++
	if failed {
		g.failures++
	}
	return false
}

func (g *countingGate) Abandon(host string) { g.abandons++ }

func (g *countingGate) settled(t *testing.T) {
	t.Helper()
	if g.reports+g.abandons != g.admits {
		t.Fatalf("gate protocol violated: %d admissions settled by %d reports + %d abandons",
			g.admits, g.reports, g.abandons)
	}
}

// noSleep makes retry backoff free for tests.
func noSleep(context.Context, time.Duration) error { return nil }

// flakyTransport fails the first fails[url] attempts per URL with a
// transient error, then delegates.
type flakyTransport struct {
	rt    http.RoundTripper
	fails map[string]int
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	url := req.URL.String()
	if f.fails[url] > 0 {
		f.fails[url]--
		return nil, &transientErr{msg: "injected reset: " + url}
	}
	return f.rt.RoundTrip(req)
}

// TestRetryErasesTransientFaults: a request that fails transiently
// within the retry budget succeeds, and the gate sees one admission
// settled by one success report — retries never multiply admissions.
func TestRetryErasesTransientFaults(t *testing.T) {
	b, st := scriptedBrowser(map[string]scripted{
		"https://a.de/": {status: 200, body: "<p>ok</p>"},
	})
	b.Transport = &flakyTransport{rt: st, fails: map[string]int{"https://a.de/": 2}}
	gate := &countingGate{}
	b.Resilience = Resilience{Retries: 3, Gate: gate, Sleep: noSleep}

	page, err := b.Open("https://a.de/")
	if err != nil {
		t.Fatal(err)
	}
	if page.Status != 200 {
		t.Fatalf("status = %d", page.Status)
	}
	gate.settled(t)
	if gate.admits != 1 || gate.failures != 0 {
		t.Fatalf("admits = %d, failed reports = %d; want 1 admission, 0 failures", gate.admits, gate.failures)
	}
	if gate.waits != 3 {
		t.Fatalf("waits = %d, want 3 (one politeness token per attempt)", gate.waits)
	}
}

// TestNoRetryBudgetReturnsTransientErrorVerbatim: with a gate armed but
// VisitRetries=0 (only -per-host set), a transient transport error must
// surface exactly as the pre-resilience browser surfaced it — no
// "giving up after 1 attempts" rewrap — while still counting as a
// failed final outcome for the breaker.
func TestNoRetryBudgetReturnsTransientErrorVerbatim(t *testing.T) {
	sentinel := &transientErr{msg: "injected reset: one-shot"}
	b, _ := scriptedBrowser(map[string]scripted{
		"https://a.de/": {err: sentinel},
	})
	gate := &countingGate{}
	b.Resilience = Resilience{Retries: 0, Gate: gate, Sleep: noSleep}

	_, err := b.Open("https://a.de/")
	if err != sentinel {
		t.Fatalf("error rewrapped: got %v, want the transport's error verbatim", err)
	}
	gate.settled(t)
	if gate.failures != 1 {
		t.Fatalf("failed reports = %d, want 1 (a final failure feeds the breaker)", gate.failures)
	}
}

// TestDefinitiveErrorAbandonsAdmission: a definitive transport error is
// no verdict on transport health — the admission is abandoned, not
// reported, so it neither feeds the failure streak nor leaks a probe.
func TestDefinitiveErrorAbandonsAdmission(t *testing.T) {
	b, _ := scriptedBrowser(map[string]scripted{
		"https://a.de/": {err: errors.New("no such host a.de")},
	})
	gate := &countingGate{}
	b.Resilience = Resilience{Retries: 2, Gate: gate, Sleep: noSleep}

	_, err := b.Open("https://a.de/")
	if err == nil || !strings.Contains(err.Error(), "no such host") {
		t.Fatalf("err = %v, want the definitive error verbatim", err)
	}
	gate.settled(t)
	if gate.abandons != 1 || gate.reports != 0 {
		t.Fatalf("abandons = %d, reports = %d; want the admission abandoned", gate.abandons, gate.reports)
	}
}

// TestCanceledBackoffAbandonsAdmission: ctx cancellation between
// attempts exits through the backoff sleep — the admission must still
// be settled (abandoned), or a claimed probe slot would leak.
func TestCanceledBackoffAbandonsAdmission(t *testing.T) {
	b, _ := scriptedBrowser(map[string]scripted{
		"https://a.de/": {err: &transientErr{msg: "injected reset"}},
	})
	gate := &countingGate{}
	b.Resilience = Resilience{
		Retries: 3,
		Gate:    gate,
		Sleep:   func(context.Context, time.Duration) error { return context.Canceled },
	}

	if _, err := b.Open("https://a.de/"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	gate.settled(t)
	if gate.abandons != 1 || gate.reports != 0 {
		t.Fatalf("abandons = %d, reports = %d; cancellation must not feed the breaker", gate.abandons, gate.reports)
	}
}

// TestBreakerDenialNeedsNoSettling: a fail-fast from Admit leaves the
// caller holding nothing — no Report, no Abandon, and the denial is
// metered.
func TestBreakerDenialNeedsNoSettling(t *testing.T) {
	b, _ := scriptedBrowser(map[string]scripted{
		"https://a.de/": {status: 200, body: "<p>ok</p>"},
	})
	gate := &countingGate{deny: true}
	b.Resilience = Resilience{Retries: 2, Gate: gate, Sleep: noSleep}

	_, err := b.Open("https://a.de/")
	if err == nil || !isCircuitOpen(err) {
		t.Fatalf("err = %v, want circuit-open", err)
	}
	gate.settled(t)
	if gate.admits != 0 || gate.waits != 0 {
		t.Fatalf("denied request still touched the gate: %d admits, %d waits", gate.admits, gate.waits)
	}
}

// downTransport serves a page while up and fails transiently while
// down — the half-open probe scenarios' toggleable host.
type downTransport struct {
	mu   sync.Mutex
	down bool
	rt   http.RoundTripper
}

func (d *downTransport) setDown(v bool) {
	d.mu.Lock()
	d.down = v
	d.mu.Unlock()
}

func (d *downTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	d.mu.Lock()
	down := d.down
	d.mu.Unlock()
	if down {
		return nil, &transientErr{msg: "injected reset: " + req.URL.String()}
	}
	return d.rt.RoundTrip(req)
}

// TestHalfOpenProbeRetriesDoNotBrickHost is the regression for the
// probe/retry deadlock: with retries armed, the half-open probe request
// must be able to RETRY inside its own admission. The buggy per-attempt
// admission denied the probe's second attempt against its own claimed
// slot and returned without ever settling it — permanently denying the
// host. The fixed protocol keeps the slot for the whole request: a
// probe that exhausts its retries re-opens the breaker (cooldown
// restarts), and a probe against a healed host closes it.
func TestHalfOpenProbeRetriesDoNotBrickHost(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	st := &scriptedTransport{
		responses: map[string]scripted{"https://h.example/": {status: 200, body: "<p>ok</p>"}},
		hits:      map[string]int{},
	}
	dt := &downTransport{down: true, rt: st}
	g := hostgate.New(hostgate.Config{BreakerThreshold: 1, BreakerCooldown: time.Second, Now: clock})

	vp, _ := vantage.ByName("Germany")
	open := func() error {
		b := New(dt, vp)
		b.Resilience = Resilience{Retries: 2, Gate: g, Sleep: noSleep}
		_, err := b.Open("https://h.example/")
		return err
	}

	// Visit 1: down host, retries exhaust, breaker (threshold 1) trips.
	if err := open(); err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("visit 1 = %v, want retry exhaustion", err)
	}
	// Visit 2, cooldown not elapsed: fail fast.
	if err := open(); !isCircuitOpen(err) {
		t.Fatalf("visit 2 = %v, want circuit-open", err)
	}

	// Visit 3, cooldown elapsed, host still down: the probe request owns
	// the slot across ALL its attempts — it must exhaust its retries
	// ("giving up"), not collide with itself ("circuit open").
	advance(time.Second)
	if err := open(); err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("visit 3 (probe) = %v, want retry exhaustion, not a self-denial", err)
	}
	// The failed probe re-opened the breaker: fail fast again.
	if err := open(); !isCircuitOpen(err) {
		t.Fatalf("visit 4 = %v, want circuit-open after failed probe", err)
	}

	// Host heals; the next probe closes the breaker and traffic flows.
	advance(time.Second)
	dt.setDown(false)
	if err := open(); err != nil {
		t.Fatalf("visit 5 (probe against healed host) = %v", err)
	}
	if err := open(); err != nil {
		t.Fatalf("visit 6 (closed breaker) = %v", err)
	}
	trips, _ := g.Counters()
	if trips != 2 {
		t.Fatalf("trips = %d, want 2 (initial open + failed probe)", trips)
	}
}
