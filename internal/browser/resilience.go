package browser

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"time"

	"cookiewalk/internal/xrand"
)

// Resilience configures the browser's fault tolerance for flaky
// transports: bounded per-request retries with seeded decorrelated
// jitter backoff (the same discipline as the fleet client's), an
// optional per-host admission gate (rate limiter + circuit breaker),
// and a context that carries the per-visit deadline into every
// request. The zero value disables everything and keeps the fetch
// path byte-for-byte identical to the pre-resilience browser — the
// in-process webfarm never fails, so the defaults pay nothing for it.
type Resilience struct {
	// Ctx, when non-nil, is attached to every outgoing request — the
	// per-visit deadline and cancellation reach the transport (real
	// network transports honor it; the fault injector's stalls do too).
	Ctx context.Context
	// Retries bounds retry attempts per request after a transient
	// failure (0 disables retrying).
	Retries int
	// Backoff is the initial retry delay, doubled per attempt and
	// capped at 2s (default 100ms). Each delay is jittered into
	// [base/2, base] from Seed — see xrand.JitterDuration.
	Backoff time.Duration
	// Seed drives the backoff jitter deterministically.
	Seed uint64
	// Gate, when non-nil, is consulted once per logical request for
	// breaker admission, once per attempt for politeness pacing, and
	// settled with exactly one Report or Abandon on every exit path.
	Gate HostGate
	// Meter, when non-nil, receives retry/breaker events for campaign
	// accounting.
	Meter Meter
	// Sleep overrides how retry delays are waited out (tests inject a
	// fake sleeper). nil means a real timer honoring Ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

// HostGate is the per-host admission controller the browser consults
// around each logical request. Matching is structural so this package
// needs no import of internal/hostgate. Admit checks the breaker once
// per request — it either admits (possibly claiming the host's single
// half-open probe slot) or fails fast with a circuit-open error; Wait
// blocks for a politeness token once per wire attempt (honoring ctx);
// and every admitted request is settled with exactly one terminal
// call: Report when its final post-retry outcome is a verdict on
// transport health (returning true when the report tripped a breaker
// open), Abandon when it is not — so a claimed probe slot can never
// outlive the request that holds it.
type HostGate interface {
	Admit(host string) error
	Wait(ctx context.Context, host string) error
	Report(host string, failed bool) bool
	Abandon(host string)
}

// Meter receives resilience events. Implementations must be safe for
// concurrent use (one Meter is shared across a campaign's workers).
type Meter interface {
	// VisitRetry counts one retried request attempt.
	VisitRetry()
	// BreakerTrip counts one breaker open transition.
	BreakerTrip()
	// BreakerDenial counts one request refused by an open breaker.
	BreakerDenial()
}

// IsTransient reports whether err is marked retryable by the
// transport — structurally, via an `interface{ Transient() bool }`
// anywhere in its wrap chain. The fault injector and real network
// transports mark timeouts, resets, torn bodies and stalls this way;
// definitive failures (webfarm's "no such host", bad URLs, HTTP
// status codes) are not marked and are never retried, which keeps a
// clean run's error strings byte-identical with resilience enabled.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// exhaustedError reports a request that burned its whole retry
// budget on transient failures. It stays transient-marked (the
// underlying cause was) so composition degradation detection and
// callers' classification see through it, and its text is
// deterministic — a pure function of the attempt budget and the last
// transport error.
type exhaustedError struct {
	url      string
	attempts int
	err      error
}

func (e *exhaustedError) Error() string {
	return fmt.Sprintf("browser: %s: giving up after %d attempts: %v", e.url, e.attempts, e.err)
}
func (e *exhaustedError) Unwrap() error   { return e.err }
func (e *exhaustedError) Transient() bool { return true }

// statusError is the retry loop's internal representation of a 5xx
// response: retryable while budget remains, and — with retries
// enabled — an error on exhaustion, so an injected 503 body can never
// masquerade as page content in the analysis memo.
type statusError struct {
	url    string
	status int
}

func (e *statusError) Error() string {
	return fmt.Sprintf("browser: %s returned status %d", e.url, e.status)
}
func (e *statusError) Transient() bool { return true }

// isCircuitOpen matches hostgate's fail-fast structurally.
func isCircuitOpen(err error) bool {
	var c interface{ CircuitOpen() bool }
	return errors.As(err, &c) && c.CircuitOpen()
}

// attemptKey threads the retry-attempt ordinal through the request
// context to the fault injector, which keys its fault schedule on
// (URL, attempt) — a pure function of the seed, so injected faults
// are immune to goroutine interleaving.
type attemptKey struct{}

// WithAttempt returns a context carrying a request retry-attempt
// ordinal (0 = first try).
func WithAttempt(ctx context.Context, attempt int) context.Context {
	return context.WithValue(ctx, attemptKey{}, attempt)
}

// AttemptFromContext extracts the retry-attempt ordinal stamped by
// WithAttempt, or 0.
func AttemptFromContext(ctx context.Context) int {
	if v, ok := ctx.Value(attemptKey{}).(int); ok {
		return v
	}
	return 0
}

func (r *Resilience) ctx() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

func (r *Resilience) sleep(d time.Duration) error {
	if r.Sleep != nil {
		return r.Sleep(r.ctx(), d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-r.ctx().Done():
		return context.Cause(r.ctx())
	}
}

// doRequest performs one logical request — newRequest + roundTrip —
// under the Resilience policy: breaker admission once per request,
// politeness pacing per attempt, bounded jittered retries of transient
// failures, and exactly one terminal gate call (Report or Abandon) on
// every exit path. With the zero Resilience it collapses to the
// original single-shot path.
func (b *Browser) doRequest(method string, u *url.URL, form url.Values, cur string, limit int) (response, error) {
	res := &b.Resilience
	if res.Retries <= 0 && res.Gate == nil {
		if res.Ctx == nil && form == nil {
			if _, ok := b.Transport.(bodyTransport); ok {
				// Synchronous in-process dispatch never retains the
				// request, so the session's scratch request/header can be
				// reused across calls with zero per-request allocation.
				return b.roundTrip(b.scratchRequest(method, u), cur, limit)
			}
		}
		req := b.newRequest(method, u, form)
		if res.Ctx != nil {
			req = req.WithContext(res.Ctx)
		}
		return b.roundTrip(req, cur, limit)
	}

	host := u.Hostname()
	if cur == "" {
		// Resilience error text (retry exhaustion, 5xx classification)
		// embeds the request URL; materialize it once per logical
		// request on this (already allocation-heavier) path.
		cur = u.String()
	}
	if res.Gate != nil {
		// Breaker admission is per logical request, not per attempt:
		// the breaker judges final outcomes, and a half-open probe slot
		// belongs to the whole request — an in-request retry re-checking
		// the breaker would collide with its own probe and deny the very
		// request it was admitted to perform. A fail-fast here is
		// deliberately NOT reported back — denials must not feed the
		// failure streak.
		if err := res.Gate.Admit(host); err != nil {
			if isCircuitOpen(err) && res.Meter != nil {
				res.Meter.BreakerDenial()
			}
			return response{}, err
		}
	}
	resp, err := b.attemptRequest(res, method, u, form, cur, limit, host)
	if res.Gate != nil {
		// Settle the admission with exactly one terminal call. A final
		// success or a post-retry transient failure is the breaker's
		// signal; everything else — ctx cancellation (including a
		// transient fault overtaken by the visit deadline), errors that
		// are deterministic web content rather than transport weather —
		// abandons the admission, so a claimed probe slot is always
		// released and the breaker can never wedge past its cooldown.
		switch {
		case err == nil:
			res.Gate.Report(host, false)
		case IsTransient(err) && res.ctx().Err() == nil:
			if res.Gate.Report(host, true) && res.Meter != nil {
				res.Meter.BreakerTrip()
			}
		default:
			res.Gate.Abandon(host)
		}
	}
	return resp, err
}

// attemptRequest runs the bounded retry loop for one admitted request:
// a politeness token per attempt, jittered backoff between attempts,
// and classification of each attempt's outcome. It never talks to the
// breaker — doRequest settles the admission from its return value.
func (b *Browser) attemptRequest(res *Resilience, method string, u *url.URL, form url.Values, cur string, limit int, host string) (response, error) {
	backoff := res.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	b.rtCalls++
	call := b.rtCalls
	var lastErr error
	for attempt := 0; ; attempt++ {
		if res.Gate != nil {
			if err := res.Gate.Wait(res.ctx(), host); err != nil {
				return response{}, err
			}
		}
		req := b.newRequest(method, u, form)
		rctx := res.Ctx
		if attempt > 0 {
			base := rctx
			if base == nil {
				base = context.Background()
			}
			rctx = WithAttempt(base, attempt)
		}
		if rctx != nil {
			req = req.WithContext(rctx)
		}
		resp, err := b.roundTrip(req, cur, limit)
		switch {
		case err == nil && (resp.status < 500 || res.Retries <= 0):
			// Success — including 4xx (deterministic web content) and,
			// without a retry budget, 5xx: both are the pre-resilience
			// behavior.
			return resp, nil
		case err == nil:
			lastErr = &statusError{url: cur, status: resp.status}
		case IsTransient(err) && res.ctx().Err() == nil:
			lastErr = err
		default:
			// Definitive transport error ("no such host", a canceled
			// deadline): returned verbatim so clean-run error strings are
			// unchanged by resilience.
			return response{}, err
		}
		if attempt >= res.Retries {
			if res.Retries <= 0 {
				// Gate armed but no retry budget: the transient error
				// returns verbatim, exactly as the pre-resilience browser
				// surfaced it — no "giving up after 1 attempts" rewrap.
				return response{}, lastErr
			}
			return response{}, &exhaustedError{url: cur, attempts: attempt + 1, err: lastErr}
		}
		if res.Meter != nil {
			res.Meter.VisitRetry()
		}
		if err := res.sleep(xrand.JitterDuration(res.Seed, call, attempt, backoff)); err != nil {
			return response{}, err
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}
