package browser

import (
	"strings"
	"testing"

	"cookiewalk/internal/adblock"
	"cookiewalk/internal/dom"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/trackdb"
	"cookiewalk/internal/vantage"
	"cookiewalk/internal/webfarm"
)

var (
	testReg  = synthweb.Generate(synthweb.Config{Seed: 11, FillerScale: 0.01})
	testFarm = webfarm.New(testReg)
)

func newBrowser(vpName string) *Browser {
	vp, ok := vantage.ByName(vpName)
	if !ok {
		panic("unknown vp " + vpName)
	}
	return New(testFarm.Transport(), vp)
}

func findSite(t *testing.T, pred func(*synthweb.Site) bool) *synthweb.Site {
	t.Helper()
	for _, s := range testReg.Sites() {
		if pred(s) {
			return s
		}
	}
	t.Fatal("no site matches predicate")
	return nil
}

func TestOpenParsesPage(t *testing.T) {
	s := findSite(t, func(s *synthweb.Site) bool {
		return s.Banner == synthweb.BannerCookiewall && s.Provider.Name == "local" &&
			s.Embedding == synthweb.EmbedMainDOM
	})
	b := newBrowser("Germany")
	page, err := b.Open("https://" + s.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	if page.Status != 200 {
		t.Fatalf("status %d", page.Status)
	}
	if page.Doc.QuerySelector("#cw-banner") == nil {
		t.Fatal("banner not in DOM")
	}
	if b.Jar.Len() == 0 {
		t.Fatal("no cookies stored")
	}
}

func TestScriptInjection(t *testing.T) {
	s := findSite(t, func(s *synthweb.Site) bool {
		return s.Banner == synthweb.BannerCookiewall &&
			s.Provider.Name == "contentpass" && s.Embedding == synthweb.EmbedMainDOM
	})
	b := newBrowser("Germany")
	page, err := b.Open("https://" + s.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	// The provider script must have been fetched and its fragment
	// injected into the slot.
	slot := page.Doc.QuerySelector("#cw-slot")
	if slot == nil {
		t.Fatal("slot missing")
	}
	if slot.QuerySelector("#cw-banner") == nil {
		t.Fatal("banner fragment not injected")
	}
	found := false
	for _, u := range page.Fetched {
		if strings.Contains(u, "cdn.contentpass.example/cw.js") {
			found = true
		}
	}
	if !found {
		t.Fatalf("loader not fetched: %v", page.Fetched)
	}
}

func TestShadowDOMMaterialized(t *testing.T) {
	s := findSite(t, func(s *synthweb.Site) bool {
		return s.Banner == synthweb.BannerCookiewall && s.Provider.Name == "local" &&
			s.Embedding == synthweb.EmbedShadowOpen
	})
	b := newBrowser("Germany")
	page, err := b.Open("https://" + s.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	// Banner must NOT be reachable by plain selector...
	if page.Doc.QuerySelector("#cw-banner") != nil {
		t.Fatal("shadow content leaked into light DOM")
	}
	// ...but must exist inside a shadow root.
	roots := page.Doc.ShadowRoots()
	if len(roots) == 0 {
		t.Fatal("no shadow roots")
	}
	found := false
	for _, sr := range roots {
		if sr.Root.QuerySelector("#cw-banner") != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("banner missing from shadow root")
	}
}

func TestInjectedShadowViaProvider(t *testing.T) {
	s := findSite(t, func(s *synthweb.Site) bool {
		return s.Banner == synthweb.BannerCookiewall && s.Provider.Host != "" &&
			s.Embedding == synthweb.EmbedShadowClosed
	})
	b := newBrowser("Germany")
	page, err := b.Open("https://" + s.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	roots := page.Doc.ShadowRoots()
	if len(roots) != 1 || roots[0].Mode != dom.ShadowClosed {
		t.Fatalf("shadow roots = %v", roots)
	}
	if roots[0].Root.QuerySelector("#cw-banner") == nil {
		t.Fatal("closed shadow banner missing")
	}
}

func TestIFrameLoaded(t *testing.T) {
	s := findSite(t, func(s *synthweb.Site) bool {
		return s.Banner == synthweb.BannerCookiewall &&
			s.Embedding == synthweb.EmbedIFrame && s.Provider.Name == "freechoice"
	})
	b := newBrowser("Germany")
	page, err := b.Open("https://" + s.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	frames := page.Doc.FrameDocs()
	if len(frames) == 0 {
		t.Fatal("iframe document not loaded")
	}
	found := false
	for _, fd := range frames {
		if fd.QuerySelector("#cw-banner") != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("banner missing from frame document")
	}
}

func TestAcceptFlowSetsTrackingCookies(t *testing.T) {
	s := findSite(t, func(s *synthweb.Site) bool {
		return s.Banner == synthweb.BannerCookiewall && s.Provider.Name == "local" &&
			s.Embedding == synthweb.EmbedMainDOM && s.Cookies.PostTracking > 5
	})
	b := newBrowser("Germany")
	page, err := b.Open("https://" + s.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	before := b.Jar.Len()
	accept := page.Doc.QuerySelector("#cw-accept")
	if accept == nil {
		t.Fatal("accept button missing")
	}
	after, err := b.Click(page, accept)
	if err != nil {
		t.Fatal(err)
	}
	if after.Doc.QuerySelector("#cw-banner") != nil {
		t.Fatal("banner persists after accept")
	}
	if b.Jar.Len() <= before {
		t.Fatal("no new cookies after accept")
	}
	// Tracking cookies must now exist.
	tracking := 0
	for _, c := range b.Jar.All() {
		if trackdb.IsTracking(c.Domain) {
			tracking++
		}
	}
	if tracking == 0 {
		t.Fatal("no tracking cookies after accepting a cookiewall")
	}
}

func TestRejectFlowOnRegularBanner(t *testing.T) {
	s := findSite(t, func(s *synthweb.Site) bool {
		return s.Banner == synthweb.BannerRegular && !s.Decoy && s.Reachable &&
			len(s.ShowToVPs) == 0 && s.Embedding == synthweb.EmbedMainDOM
	})
	b := newBrowser("Germany")
	page, err := b.Open("https://" + s.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	reject := page.Doc.QuerySelector("#cmp-reject")
	if reject == nil {
		t.Fatal("reject button missing")
	}
	after, err := b.Click(page, reject)
	if err != nil {
		t.Fatal(err)
	}
	if after.Doc.QuerySelector("#cmp-banner") != nil {
		t.Fatal("banner persists after reject")
	}
	for _, c := range b.Jar.All() {
		if trackdb.IsTracking(c.Domain) {
			t.Fatal("tracking cookie set after reject")
		}
	}
}

func TestSubscriptionFlow(t *testing.T) {
	s := findSite(t, func(s *synthweb.Site) bool {
		return s.Provider.Name == "contentpass" && s.Embedding == synthweb.EmbedMainDOM
	})
	acct, err := testReg.SMP.Subscribe("contentpass", "crawler@measurement.example")
	if err != nil {
		t.Fatal(err)
	}
	b := newBrowser("Germany")
	b.SMPToken = acct.Token
	page, err := b.Open("https://" + s.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	var sub *dom.Node
	sub = page.Doc.QuerySelector("#cw-subscribe")
	if sub == nil {
		// banner might be injected into the slot
		for _, sr := range page.Doc.ShadowRoots() {
			if n := sr.Root.QuerySelector("#cw-subscribe"); n != nil {
				sub = n
			}
		}
	}
	if sub == nil {
		t.Fatal("subscribe button missing")
	}
	after, err := b.Click(page, sub)
	if err != nil {
		t.Fatal(err)
	}
	if after.Doc.QuerySelector("#sub-badge") == nil {
		t.Fatal("subscription badge missing after login")
	}
	for _, c := range b.Jar.All() {
		if trackdb.IsTracking(c.Domain) {
			t.Fatal("tracking cookie for subscriber")
		}
	}
}

func TestBlockerSuppressesBannerScript(t *testing.T) {
	s := findSite(t, func(s *synthweb.Site) bool {
		return s.Banner == synthweb.BannerCookiewall && s.Provider.Name == "contentpass"
	})
	b := newBrowser("Germany")
	b.Blocker = adblock.NewEngine(adblock.BaseList(), adblock.AnnoyancesList())
	page, err := b.Open("https://" + s.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	// No banner anywhere: not in DOM, not in shadow roots, not in frames.
	if page.Doc.QuerySelector("#cw-banner") != nil {
		t.Fatal("banner present despite blocker")
	}
	if len(page.Doc.ShadowRoots()) != 0 || len(page.Doc.FrameDocs()) != 0 {
		t.Fatal("banner materialized despite blocker")
	}
	if len(page.Blocked) == 0 {
		t.Fatal("nothing recorded as blocked")
	}
}

func TestBlockerDoesNotAffectLocalBanner(t *testing.T) {
	s := findSite(t, func(s *synthweb.Site) bool {
		return s.Banner == synthweb.BannerCookiewall && s.Provider.Name == "local" &&
			s.Embedding == synthweb.EmbedMainDOM
	})
	b := newBrowser("Germany")
	b.Blocker = adblock.NewEngine(adblock.BaseList(), adblock.AnnoyancesList())
	page, err := b.Open("https://" + s.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	if page.Doc.QuerySelector("#cw-banner") == nil {
		t.Fatal("locally-served banner must survive the blocker")
	}
}

func TestBlockerTrackerSuppression(t *testing.T) {
	s := findSite(t, func(s *synthweb.Site) bool {
		return s.Banner == synthweb.BannerCookiewall && s.Provider.Name == "local" &&
			s.Embedding == synthweb.EmbedMainDOM && s.Cookies.PostTracking > 5
	})
	b := newBrowser("Germany")
	b.Blocker = adblock.NewEngine(adblock.BaseList())
	page, err := b.Open("https://" + s.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	accept := page.Doc.QuerySelector("#cw-accept")
	if _, err := b.Click(page, accept); err != nil {
		t.Fatal(err)
	}
	for _, c := range b.Jar.All() {
		if trackdb.IsTracking(c.Domain) {
			t.Fatal("tracking cookie set despite base list")
		}
	}
}

func TestAdblockQuirks(t *testing.T) {
	var anti, scroll *synthweb.Site
	for _, s := range testReg.CookiewallSites() {
		if s.AntiAdblock {
			anti = s
		}
		if s.ScrollLock {
			scroll = s
		}
	}
	blocker := adblock.NewEngine(adblock.BaseList(), adblock.AnnoyancesList())

	b := newBrowser("Germany")
	b.Blocker = blocker
	page, err := b.Open("https://" + anti.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	if !page.AdblockPlea {
		t.Fatal("anti-adblock plea not detected")
	}
	if page.Doc.QuerySelector("#adblock-plea") == nil {
		t.Fatal("plea element should be revealed")
	}

	b2 := newBrowser("Germany")
	b2.Blocker = blocker
	page2, err := b2.Open("https://" + scroll.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	if !page2.ScrollLocked {
		t.Fatal("scroll lock not detected")
	}

	// Without a blocker, neither quirk manifests.
	b3 := newBrowser("Germany")
	page3, err := b3.Open("https://" + anti.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	if page3.AdblockPlea || page3.Doc.QuerySelector("#adblock-plea") != nil {
		t.Fatal("plea visible without blocker")
	}
}

func TestGeoHidesBanner(t *testing.T) {
	s := findSite(t, func(s *synthweb.Site) bool {
		return len(s.ShowToVPs) == 1 && s.ShowToVPs[0] == "Germany"
	})
	b := newBrowser("US East")
	page, err := b.Open("https://" + s.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	if page.Doc.QuerySelector("#cw-banner, #cw-slot, #cw-host, #cw-frame") != nil {
		t.Fatal("geo-restricted banner visible from US East")
	}
}

func TestUnreachableSiteErrors(t *testing.T) {
	var u *synthweb.Site
	for _, s := range testReg.Sites() {
		if !s.Reachable {
			u = s
			break
		}
	}
	b := newBrowser("Germany")
	if _, err := b.Open("https://" + u.Domain + "/"); err == nil {
		t.Fatal("unreachable site must error")
	}
}

func TestClickErrors(t *testing.T) {
	b := newBrowser("Germany")
	s := findSite(t, func(s *synthweb.Site) bool {
		return s.Banner == synthweb.BannerCookiewall && s.Provider.Name == "local" &&
			s.Embedding == synthweb.EmbedMainDOM
	})
	page, err := b.Open("https://" + s.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Click(page, nil); err == nil {
		t.Fatal("nil button must error")
	}
	// Subscribe without token.
	sub := page.Doc.QuerySelector("#cw-subscribe")
	if _, err := b.Click(page, sub); err == nil {
		t.Fatal("subscribe without token must error")
	}
	// Unknown action.
	bogus := dom.NewElement("button", "data-action", "self-destruct")
	page.Doc.Body().AppendChild(bogus)
	if _, err := b.Click(page, bogus); err == nil {
		t.Fatal("unknown action must error")
	}
}
