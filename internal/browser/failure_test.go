package browser

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"cookiewalk/internal/vantage"
)

// scriptedTransport serves canned responses per URL — the failure
// injection rig: malformed HTML, redirect loops, server errors, huge
// bodies, missing Location headers.
type scriptedTransport struct {
	responses map[string]scripted
	hits      map[string]int
}

type scripted struct {
	status   int
	body     string
	location string
	err      error
}

func (s *scriptedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	url := req.URL.String()
	s.hits[url]++
	sc, ok := s.responses[url]
	if !ok {
		return nil, fmt.Errorf("scripted: no response for %s", url)
	}
	if sc.err != nil {
		return nil, sc.err
	}
	resp := &http.Response{
		StatusCode: sc.status,
		Header:     http.Header{},
		Body:       io.NopCloser(strings.NewReader(sc.body)),
		Request:    req,
	}
	if sc.location != "" {
		resp.Header.Set("Location", sc.location)
	}
	return resp, nil
}

func scriptedBrowser(responses map[string]scripted) (*Browser, *scriptedTransport) {
	st := &scriptedTransport{responses: responses, hits: map[string]int{}}
	vp, _ := vantage.ByName("Germany")
	return New(st, vp), st
}

func TestMalformedHTMLStillParses(t *testing.T) {
	b, _ := scriptedBrowser(map[string]scripted{
		"https://broken.de/": {status: 200,
			body: `<div><p>unclosed <b>mess <table><tr><td>cell &bogus; <script>if(a<b)`},
	})
	page, err := b.Open("https://broken.de/")
	if err != nil {
		t.Fatal(err)
	}
	if page.Doc == nil || page.Doc.Body() == nil {
		t.Fatal("no best-effort tree")
	}
}

func TestRedirectLoopBounded(t *testing.T) {
	b, st := scriptedBrowser(map[string]scripted{
		"https://a.de/": {status: 302, location: "https://b.de/"},
		"https://b.de/": {status: 302, location: "https://a.de/"},
	})
	page, err := b.Open("https://a.de/")
	// The loop must terminate via MaxRedirects; the final response is a
	// redirect status, not an infinite recursion.
	if err != nil {
		t.Fatalf("bounded loop returned error: %v", err)
	}
	if page.Status != 302 {
		t.Fatalf("status = %d", page.Status)
	}
	total := st.hits["https://a.de/"] + st.hits["https://b.de/"]
	if total > b.MaxRedirects+2 {
		t.Fatalf("made %d requests", total)
	}
}

func TestRedirectWithoutLocation(t *testing.T) {
	b, _ := scriptedBrowser(map[string]scripted{
		"https://a.de/": {status: 303},
	})
	if _, err := b.Open("https://a.de/"); err == nil {
		t.Fatal("missing Location must error")
	}
}

func TestRelativeRedirectResolved(t *testing.T) {
	b, _ := scriptedBrowser(map[string]scripted{
		"https://a.de/":     {status: 303, location: "/home"},
		"https://a.de/home": {status: 200, body: "<p>home</p>"},
	})
	page, err := b.Open("https://a.de/")
	if err != nil {
		t.Fatal(err)
	}
	if page.URL.Path != "/home" || page.Status != 200 {
		t.Fatalf("final = %s (%d)", page.URL, page.Status)
	}
}

func TestServerErrorSurfacesStatus(t *testing.T) {
	b, _ := scriptedBrowser(map[string]scripted{
		"https://a.de/": {status: 500, body: "boom"},
	})
	page, err := b.Open("https://a.de/")
	if err != nil {
		t.Fatal(err)
	}
	if page.Status != 500 {
		t.Fatalf("status = %d", page.Status)
	}
}

func TestHugeBodyTruncated(t *testing.T) {
	b, _ := scriptedBrowser(map[string]scripted{
		"https://a.de/": {status: 200,
			body: "<p>" + strings.Repeat("x", 8<<20) + "</p>"},
	})
	page, err := b.Open("https://a.de/")
	if err != nil {
		t.Fatal(err)
	}
	// The 4 MiB read limit must have applied (body not fully resident).
	if len(page.Doc.Body().Text()) > 5<<20 {
		t.Fatal("body not truncated")
	}
}

func TestFailedSubresourceDoesNotFailPage(t *testing.T) {
	b, st := scriptedBrowser(map[string]scripted{
		"https://a.de/": {status: 200,
			body: `<img src="https://gone.example/x.gif"><p>content</p>`},
		"https://gone.example/x.gif": {err: fmt.Errorf("connection refused")},
	})
	page, err := b.Open("https://a.de/")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page.Doc.Body().Text(), "content") {
		t.Fatal("page lost")
	}
	if st.hits["https://gone.example/x.gif"] != 1 {
		t.Fatal("subresource not attempted")
	}
}

func TestBrokenFrameSkipped(t *testing.T) {
	b, _ := scriptedBrowser(map[string]scripted{
		"https://a.de/": {status: 200,
			body: `<iframe src="https://dead.example/frame"></iframe><p>main</p>`},
		"https://dead.example/frame": {status: 404, body: "not found"},
	})
	page, err := b.Open("https://a.de/")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Doc.FrameDocs()) != 0 {
		t.Fatal("404 frame must not attach a document")
	}
}

func TestFrameRecursionBounded(t *testing.T) {
	// A frame that embeds itself: recursion must stop at MaxFrameDepth.
	b, st := scriptedBrowser(map[string]scripted{
		"https://a.de/": {status: 200,
			body: `<iframe src="https://a.de/f"></iframe>`},
		"https://a.de/f": {status: 200,
			body: `<iframe src="https://a.de/f"></iframe>`},
	})
	if _, err := b.Open("https://a.de/"); err != nil {
		t.Fatal(err)
	}
	if st.hits["https://a.de/f"] > b.MaxFrameDepth+1 {
		t.Fatalf("frame fetched %d times", st.hits["https://a.de/f"])
	}
}

func TestInjectTargetMissing(t *testing.T) {
	// A loader script whose inject target does not exist: the fragment
	// fetch is skipped entirely (no target, no work).
	b, st := scriptedBrowser(map[string]scripted{
		"https://a.de/": {status: 200,
			body: `<script src="https://cdn.example/cw.js" data-cw-inject="#nope"></script>`},
		"https://cdn.example/cw.js": {status: 200, body: `<div id="w">wall</div>`},
	})
	page, err := b.Open("https://a.de/")
	if err != nil {
		t.Fatal(err)
	}
	if page.Doc.ByID("w") != nil {
		t.Fatal("fragment injected without a target")
	}
	if st.hits["https://cdn.example/cw.js"] != 0 {
		t.Fatal("loader fetched despite missing target")
	}
}

func TestDataURLsSkipped(t *testing.T) {
	b, _ := scriptedBrowser(map[string]scripted{
		"https://a.de/": {status: 200,
			body: `<img src="data:image/gif;base64,R0lGOD"><p>ok</p>`},
	})
	page, err := b.Open("https://a.de/")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Fetched) != 0 {
		t.Fatalf("fetched = %v", page.Fetched)
	}
}

func TestBadURLErrors(t *testing.T) {
	b, _ := scriptedBrowser(nil)
	if _, err := b.Open("https://bad url with spaces/"); err == nil {
		t.Fatal("bad URL must error")
	}
}
