// Package browser implements the emulated browser that replaces
// Chrome + Selenium + OpenWPM in the paper's measurement stack.
//
// For every page load it: sends the request with the jar's cookies and
// the vantage headers; parses the HTML into a DOM; materializes
// declarative shadow roots; executes the page's declarative script
// directives (the substitution for JavaScript, see DESIGN.md §5.6);
// loads iframe documents recursively — including frames hosted inside
// shadow roots; fetches cookie-setting subresources (images, scripts);
// applies the content blocker to every network fetch and cosmetic rule
// to the DOM; and records which URLs the blocker suppressed.
//
// Clicking a banner button performs the real HTTP flow: consent POSTs,
// SMP login POSTs, redirect following, then a fresh page load — so
// post-consent measurements observe exactly what the server serves a
// consenting user.
package browser

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"cookiewalk/internal/adblock"
	"cookiewalk/internal/cookies"
	"cookiewalk/internal/dom"
	"cookiewalk/internal/vantage"
)

// Browser is an emulated browser session. It is NOT safe for
// concurrent use; crawls create one Browser per worker.
type Browser struct {
	// Transport performs HTTP. Usually webfarm.(*Farm).Transport() or,
	// in cmd/webfarm mode, a real http.Transport.
	Transport http.RoundTripper
	// Jar stores cookies; a fresh jar per site visit reproduces the
	// paper's stateless crawling.
	Jar *cookies.Jar
	// VP stamps requests with the vantage point (geo substitution).
	VP vantage.VP
	// Visit labels the repetition for server-side jitter ("" = none).
	Visit string
	// Blocker, when set, enforces network filter rules and cosmetic
	// hiding — the uBlock Origin stand-in for §4.5.
	Blocker *adblock.Engine
	// SMPToken authenticates subscription logins (§4.4).
	SMPToken string
	// UserAgent is sent on every request. The default imitates the
	// regular Firefox that OpenWPM drives — the paper's bot-detection
	// mitigation. Set a crawler-looking value to study how
	// bot-sensitive sites change behaviour (§3 limitation).
	UserAgent string
	// MaxFrameDepth bounds iframe recursion (default 3).
	MaxFrameDepth int
	// MaxRedirects bounds redirect chains (default 5).
	MaxRedirects int
}

// DefaultUserAgent imitates OpenWPM's instrumented Firefox.
const DefaultUserAgent = "Mozilla/5.0 (X11; Linux x86_64; rv:102.0) Gecko/20100101 Firefox/102.0"

// CrawlerUserAgent is an honest, detectable crawler identity for the
// bot-sensitivity experiment.
const CrawlerUserAgent = "cookiewalk/1.0 (measurement; +https://bannerclick.github.io)"

// New returns a browser with a fresh cookie jar.
func New(rt http.RoundTripper, vp vantage.VP) *Browser {
	b := &Browser{}
	b.Reset(rt, vp)
	return b
}

// Reset reinitializes the session in place to the state New returns: a
// fresh profile (the jar is emptied, not reallocated) and default
// knobs. Pool-based crawls reuse the allocation across visits while
// keeping the paper's fresh-profile-per-visit semantics.
func (b *Browser) Reset(rt http.RoundTripper, vp vantage.VP) {
	if b.Jar == nil {
		b.Jar = cookies.NewJar()
	} else {
		b.Jar.Clear()
	}
	b.Transport = rt
	b.VP = vp
	b.Visit = ""
	b.Blocker = nil
	b.SMPToken = ""
	b.UserAgent = DefaultUserAgent
	b.MaxFrameDepth = 3
	b.MaxRedirects = 5
}

// Page is a fully loaded page.
type Page struct {
	// URL is the final URL after redirects.
	URL *url.URL
	// Doc is the document tree with shadow roots attached, banner
	// fragments injected and iframe documents loaded.
	Doc *dom.Node
	// Status is the final HTTP status code.
	Status int
	// Blocked lists URLs the content blocker suppressed.
	Blocked []string
	// Fetched lists subresource URLs actually requested.
	Fetched []string
	// ScrollLocked reports the §4.5 promipool.de quirk: the page locked
	// scrolling because it detected the blocker.
	ScrollLocked bool
	// AdblockPlea reports the hausbau-forum.de quirk: the page asks the
	// user to disable the blocker.
	AdblockPlea bool
}

// Host returns the page's host without port.
func (p *Page) Host() string { return p.URL.Hostname() }

// Open loads a page: fetch, parse, run directives, frames, resources.
func (b *Browser) Open(rawurl string) (*Page, error) {
	resp, finalURL, err := b.fetch(http.MethodGet, rawurl, nil, b.MaxRedirects)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	bodyBytes, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, fmt.Errorf("browser: read %s: %w", rawurl, err)
	}
	page := &Page{
		URL:    finalURL,
		Doc:    dom.Parse(string(bodyBytes)),
		Status: resp.StatusCode,
	}
	b.runScriptDirectives(page)
	b.loadFrames(page, page.Doc, b.MaxFrameDepth)
	b.fetchSubresources(page)
	b.applyCosmetics(page)
	b.applyAdblockDetectors(page)
	return page, nil
}

// fetch performs one HTTP request with cookies, geo headers, blocker
// bypass (top-level documents are never blocked — blockers filter
// subresources), and redirect following.
func (b *Browser) fetch(method, rawurl string, form url.Values, redirectsLeft int) (*http.Response, *url.URL, error) {
	u, err := url.Parse(rawurl)
	if err != nil {
		return nil, nil, fmt.Errorf("browser: bad url %q: %w", rawurl, err)
	}
	var bodyReader io.Reader
	if form != nil {
		bodyReader = strings.NewReader(form.Encode())
	}
	req, err := http.NewRequest(method, u.String(), bodyReader)
	if err != nil {
		return nil, nil, err
	}
	if form != nil {
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	}
	req.Header.Set("User-Agent", b.UserAgent)
	req.Header.Set(vantage.GeoHeader, b.VP.Name)
	if b.Visit != "" {
		req.Header.Set(vantage.VisitHeader, b.Visit)
	}
	for _, c := range b.Jar.CookiesFor(u.Hostname(), u.Path, u.Scheme == "https") {
		req.AddCookie(&http.Cookie{Name: c.Name, Value: c.Value})
	}
	resp, err := b.Transport.RoundTrip(req)
	if err != nil {
		return nil, nil, err
	}
	b.Jar.SetFromHeaders(u.Hostname(), resp.Header.Values("Set-Cookie"))

	if isRedirect(resp.StatusCode) && redirectsLeft > 0 {
		loc := resp.Header.Get("Location")
		resp.Body.Close()
		if loc == "" {
			return nil, nil, fmt.Errorf("browser: redirect without location from %s", rawurl)
		}
		next, err := u.Parse(loc)
		if err != nil {
			return nil, nil, fmt.Errorf("browser: bad redirect %q: %w", loc, err)
		}
		// 303 (and web convention for 301/302) switches to GET.
		return b.fetch(http.MethodGet, next.String(), nil, redirectsLeft-1)
	}
	return resp, u, nil
}

func isRedirect(code int) bool {
	switch code {
	case http.StatusMovedPermanently, http.StatusFound, http.StatusSeeOther,
		http.StatusTemporaryRedirect, http.StatusPermanentRedirect:
		return true
	}
	return false
}

// fetchBlockable fetches a subresource URL unless the blocker vetoes
// it. It returns (body, fetched, blocked).
func (b *Browser) fetchBlockable(page *Page, rawurl string) (string, bool) {
	abs, err := page.URL.Parse(rawurl)
	if err != nil {
		return "", false
	}
	if b.Blocker != nil && b.Blocker.ShouldBlock(page.Host(), abs.String()) {
		page.Blocked = append(page.Blocked, abs.String())
		return "", false
	}
	resp, _, err := b.fetch(http.MethodGet, abs.String(), nil, 2)
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	page.Fetched = append(page.Fetched, abs.String())
	if resp.StatusCode != http.StatusOK {
		return "", false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", false
	}
	return string(body), true
}

// scriptInjectSel finds declarative banner-loader scripts.
var scriptInjectSel = dom.MustCompileSelector("script[src][data-cw-inject]")

// runScriptDirectives executes <script src data-cw-inject="#sel">: the
// response fragment is parsed and appended to the selector target.
// This models what the provider's JavaScript does in a real browser,
// and — critically for §4.5 — goes through the content blocker.
func (b *Browser) runScriptDirectives(page *Page) {
	for _, script := range page.Doc.QueryAll(scriptInjectSel) {
		src, _ := script.Attr("src")
		targetSel, _ := script.Attr("data-cw-inject")
		target := page.Doc.QuerySelector(targetSel)
		if target == nil {
			continue
		}
		frag, ok := b.fetchBlockable(page, src)
		if !ok {
			continue
		}
		for _, child := range dom.ParseFragment(frag).Children() {
			child.Detach()
			target.AppendChild(child)
		}
	}
}

// loadFrames loads iframe content documents recursively, piercing
// shadow roots (frames inside shadow trees are real frames).
func (b *Browser) loadFrames(page *Page, root *dom.Node, depth int) {
	if depth <= 0 {
		return
	}
	var frames []*dom.Node
	collectFrames(root, &frames)
	for _, fr := range frames {
		if fr.FrameDoc != nil {
			continue
		}
		src, ok := fr.Attr("src")
		if !ok || src == "" || strings.HasPrefix(src, "about:") {
			continue
		}
		body, ok := b.fetchBlockable(page, src)
		if !ok {
			continue
		}
		fr.FrameDoc = dom.Parse(body)
		b.loadFrames(page, fr.FrameDoc, depth-1)
	}
}

// collectFrames gathers iframes in root's light DOM and shadow roots.
func collectFrames(root *dom.Node, out *[]*dom.Node) {
	root.Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode {
			if n.Tag == "iframe" {
				*out = append(*out, n)
			}
			if n.Shadow != nil {
				collectFrames(n.Shadow.Root, out)
			}
		}
		return true
	})
}

var subresourceSel = dom.MustCompileSelector("img[src], script[src], link[href]")

// fetchSubresources requests cookie-setting resources: images, plain
// scripts and stylesheets — across the main document, shadow roots and
// loaded frames.
func (b *Browser) fetchSubresources(page *Page) {
	roots := []*dom.Node{page.Doc}
	for _, sr := range page.Doc.ShadowRoots() {
		roots = append(roots, sr.Root)
	}
	roots = append(roots, page.Doc.FrameDocs()...)
	for _, root := range roots {
		for _, el := range root.QueryAll(subresourceSel) {
			if el.Tag == "script" {
				if _, isInject := el.Attr("data-cw-inject"); isInject {
					continue // already executed as a directive
				}
			}
			attr := "src"
			if el.Tag == "link" {
				attr = "href"
			}
			u, _ := el.Attr(attr)
			if u == "" || strings.HasPrefix(u, "data:") {
				continue
			}
			b.fetchBlockable(page, u)
		}
	}
}

// applyCosmetics removes elements matched by the blocker's cosmetic
// rules (element hiding).
func (b *Browser) applyCosmetics(page *Page) {
	if b.Blocker == nil {
		return
	}
	for _, selSrc := range b.Blocker.CosmeticSelectors(page.Host()) {
		sel, err := dom.CompileSelector(selSrc)
		if err != nil {
			continue
		}
		for _, n := range page.Doc.QueryAll(sel) {
			n.Detach()
		}
	}
}

var (
	ifBlockedSel   = dom.MustCompileSelector("[data-cw-if-blocked]")
	scrollLockSel  = dom.MustCompileSelector("body[data-scroll-lock-if-blocked]")
	blockedAttrSel = "data-cw-if-blocked"
)

// applyAdblockDetectors emulates client-side anti-adblock scripts:
// elements guarded by data-cw-if-blocked become visible when their
// sentinel URL was blocked (and disappear otherwise); a body
// scroll-lock directive freezes scrolling.
func (b *Browser) applyAdblockDetectors(page *Page) {
	blocked := map[string]bool{}
	for _, u := range page.Blocked {
		blocked[u] = true
	}
	wasBlocked := func(sentinel string) bool {
		for u := range blocked {
			if strings.HasPrefix(u, sentinel) {
				return true
			}
		}
		return false
	}
	for _, n := range page.Doc.QueryAll(ifBlockedSel) {
		sentinel, _ := n.Attr(blockedAttrSel)
		if wasBlocked(sentinel) {
			// Reveal the plea.
			var kept []struct{ k, v string }
			for _, a := range n.Attrs {
				if a.Key != "hidden" {
					kept = append(kept, struct{ k, v string }{a.Key, a.Val})
				}
			}
			n.Attrs = n.Attrs[:0]
			for _, a := range kept {
				n.SetAttr(a.k, a.v)
			}
			page.AdblockPlea = true
		} else {
			n.Detach()
		}
	}
	if body := page.Doc.Body(); body != nil {
		if sentinel, ok := body.Attr("data-scroll-lock-if-blocked"); ok && wasBlocked(sentinel) {
			body.SetAttr("data-scroll-locked", "true")
			page.ScrollLocked = true
		}
	}
}

// Click activates a banner button and returns the page that results.
// Supported data-action values:
//
//	consent-accept  — POST choice=accept to data-target, reload
//	consent-reject  — POST choice=reject to data-target, reload
//	smp-subscribe   — POST token=<SMPToken> to data-target, reload
//
// The button may live in the main DOM, a shadow root, or an iframe
// document; data-target is absolute, so the flow works from any of
// them (real CMP frames postMessage to the top window — the HTTP
// effect is the same).
func (b *Browser) Click(page *Page, button *dom.Node) (*Page, error) {
	if button == nil {
		return nil, fmt.Errorf("browser: nil button")
	}
	action, _ := button.Attr("data-action")
	target, _ := button.Attr("data-target")
	if target == "" {
		target = "/consent"
	}
	abs, err := page.URL.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("browser: bad target %q: %w", target, err)
	}
	var form url.Values
	switch action {
	case "consent-accept":
		form = url.Values{"choice": {"accept"}}
	case "consent-reject":
		form = url.Values{"choice": {"reject"}}
	case "smp-subscribe":
		if b.SMPToken == "" {
			return nil, fmt.Errorf("browser: subscribe click without SMP token")
		}
		form = url.Values{"token": {b.SMPToken}}
	default:
		return nil, fmt.Errorf("browser: unsupported action %q", action)
	}
	resp, _, err := b.fetch(http.MethodPost, abs.String(), form, b.MaxRedirects)
	if err != nil {
		return nil, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("browser: %s returned %d", action, resp.StatusCode)
	}
	// Reload the top-level page to observe the post-interaction state.
	return b.Open(page.URL.String())
}
