// Package browser implements the emulated browser that replaces
// Chrome + Selenium + OpenWPM in the paper's measurement stack.
//
// For every page load it: sends the request with the jar's cookies and
// the vantage headers; parses the HTML into a DOM; materializes
// declarative shadow roots; executes the page's declarative script
// directives (the substitution for JavaScript, see DESIGN.md §5.6);
// loads iframe documents recursively — including frames hosted inside
// shadow roots; fetches cookie-setting subresources (images, scripts);
// applies the content blocker to every network fetch and cosmetic rule
// to the DOM; and records which URLs the blocker suppressed.
//
// Clicking a banner button performs the real HTTP flow: consent POSTs,
// SMP login POSTs, redirect following, then a fresh page load — so
// post-consent measurements observe exactly what the server serves a
// consenting user.
//
// Determinism invariant. What a visit OBSERVES is a pure function of
// the request and the (deterministic) server: the resilience layer —
// per-visit deadlines, bounded retries of transient transport
// failures with seeded backoff, the per-host limiter and breakers —
// only changes pacing and which attempt succeeds, never the bytes an
// eventually-successful fetch yields. Partial bodies from torn
// transfers never reach fingerprinting, retry exhaustion produces
// stable error text, and definitive errors (DNS, 4xx) are returned
// verbatim without retry — so campaign results are byte-identical
// whenever faults eventually clear, which CI's visit-chaos gate pins
// against the golden snapshot.
package browser

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"

	"cookiewalk/internal/adblock"
	"cookiewalk/internal/cookies"
	"cookiewalk/internal/dom"
	"cookiewalk/internal/vantage"
	"cookiewalk/internal/xrand"
)

// Browser is an emulated browser session. It is NOT safe for
// concurrent use; crawls create one Browser per worker.
type Browser struct {
	// Transport performs HTTP. Usually webfarm.(*Farm).Transport() or,
	// in cmd/webfarm mode, a real http.Transport.
	Transport http.RoundTripper
	// Jar stores cookies; a fresh jar per site visit reproduces the
	// paper's stateless crawling.
	Jar *cookies.Jar
	// VP stamps requests with the vantage point (geo substitution).
	VP vantage.VP
	// Visit labels the repetition for server-side jitter ("" = none).
	Visit string
	// Blocker, when set, enforces network filter rules and cosmetic
	// hiding — the uBlock Origin stand-in for §4.5.
	Blocker *adblock.Engine
	// SMPToken authenticates subscription logins (§4.4).
	SMPToken string
	// UserAgent is sent on every request. The default imitates the
	// regular Firefox that OpenWPM drives — the paper's bot-detection
	// mitigation. Set a crawler-looking value to study how
	// bot-sensitive sites change behaviour (§3 limitation).
	UserAgent string
	// MaxFrameDepth bounds iframe recursion (default 3).
	MaxFrameDepth int
	// MaxRedirects bounds redirect chains (default 5).
	MaxRedirects int
	// Resilience configures deadlines, retries and the per-host gate
	// (see resilience.go). The zero value keeps the historical
	// fail-on-first-error behavior.
	Resilience Resilience

	// rtCalls numbers logical requests so retry jitter decorrelates
	// across calls, not just across attempts within one call.
	rtCalls uint64
	// composeErr records the first degraded subresource fetch (a
	// transient failure that survived the whole retry budget) during
	// the current composition; see ComposeErr.
	composeErr error
	// parser is the session-owned HTML parser: a Browser is
	// single-goroutine by contract, so its parse state (token stacks,
	// node-arena tail) stays worker-local for the whole session's
	// lifetime instead of bouncing through dom's global pool per page.
	parser *dom.Parser
	// scratch is the reusable request/header state behind the
	// zero-resilience in-process fast path; see scratchRequest.
	scratch reqScratch
	// cookieBuf is the reusable Cookie-header assembly buffer.
	cookieBuf []byte
	// topURL backs FetchTopDomain's parsed-URL fast path. It is only
	// ever handed to request/fetch plumbing that drops every reference
	// before FetchTopDomain returns (redirects re-parse into fresh
	// URLs), so reusing it across visits is invisible.
	topURL url.URL
}

// DefaultUserAgent imitates OpenWPM's instrumented Firefox.
const DefaultUserAgent = "Mozilla/5.0 (X11; Linux x86_64; rv:102.0) Gecko/20100101 Firefox/102.0"

// CrawlerUserAgent is an honest, detectable crawler identity for the
// bot-sensitivity experiment.
const CrawlerUserAgent = "cookiewalk/1.0 (measurement; +https://bannerclick.github.io)"

// New returns a browser with a fresh cookie jar.
func New(rt http.RoundTripper, vp vantage.VP) *Browser {
	b := &Browser{}
	b.Reset(rt, vp)
	return b
}

// Reset reinitializes the session in place to the state New returns: a
// fresh profile (the jar is emptied, not reallocated) and default
// knobs. Pool-based crawls reuse the allocation across visits while
// keeping the paper's fresh-profile-per-visit semantics.
func (b *Browser) Reset(rt http.RoundTripper, vp vantage.VP) {
	if b.Jar == nil {
		b.Jar = cookies.NewJar()
	} else {
		b.Jar.Clear()
	}
	b.Transport = rt
	b.VP = vp
	b.Visit = ""
	b.Blocker = nil
	b.SMPToken = ""
	b.UserAgent = DefaultUserAgent
	b.MaxFrameDepth = 3
	b.MaxRedirects = 5
	b.Resilience = Resilience{}
	b.rtCalls = 0
	b.composeErr = nil
}

// Page is a fully loaded page.
type Page struct {
	// URL is the final URL after redirects.
	URL *url.URL
	// Doc is the document tree with shadow roots attached, banner
	// fragments injected and iframe documents loaded.
	Doc *dom.Node
	// Status is the final HTTP status code.
	Status int
	// Blocked lists URLs the content blocker suppressed.
	Blocked []string
	// Fetched lists subresource URLs actually requested.
	Fetched []string
	// ScrollLocked reports the §4.5 promipool.de quirk: the page locked
	// scrolling because it detected the blocker.
	ScrollLocked bool
	// AdblockPlea reports the hausbau-forum.de quirk: the page asks the
	// user to disable the blocker.
	AdblockPlea bool
	// Fingerprint is the page's content token, carried over from the
	// FetchTop that produced it (see FetchResult.Fingerprint).
	Fingerprint uint64
}

// Host returns the page's host without port.
func (p *Page) Host() string { return p.URL.Hostname() }

// Open loads a page: fetch, parse, run directives, frames, resources.
// With resilience enabled, a composition whose subresource fetches
// exhausted their retry budget is an error — a degraded page must
// never be analyzed or memoized as if it were the page.
func (b *Browser) Open(rawurl string) (*Page, error) {
	fr, err := b.FetchTop(rawurl)
	if err != nil {
		return nil, err
	}
	page := b.Compose(fr)
	if err := b.ComposeErr(); err != nil {
		return nil, err
	}
	return page, nil
}

// FetchResult is a fetched-but-not-yet-composed top-level document:
// the first half of Open. It exists so callers that memoize page
// ANALYSIS by content can stop here on a fingerprint hit and skip
// parsing and composition entirely.
type FetchResult struct {
	// URL is the final URL after redirects.
	URL *url.URL
	// Status is the final HTTP status code.
	Status int
	// Body is the raw top-level document.
	Body string
	// Fingerprint is a stable content token for the page this fetch
	// composes into. It folds together the body's content hash (handed
	// back by fingerprint-aware transports, or hashed from the bytes on
	// the plain http.RoundTripper path), the final URL, the status, the
	// frame-depth limit and the blocker configuration — every input of
	// Compose that is not itself fetched through the transport.
	//
	// Equal fingerprints imply byte-identical composed pages and
	// analysis results PROVIDED the transport is deterministic (equal
	// subresource requests receive equal responses). That holds for the
	// synthetic webfarm in-process and over a real listener; a
	// live-Internet transport offers no such guarantee, and callers
	// there must not memoize by fingerprint.
	Fingerprint uint64
}

// FetchTop performs only the top-level document fetch of Open — no
// parsing, no frames, no subresources.
func (b *Browser) FetchTop(rawurl string) (FetchResult, error) {
	resp, finalURL, err := b.fetch(http.MethodGet, rawurl, nil, b.MaxRedirects, maxPageBody)
	if err != nil {
		return FetchResult{}, err
	}
	return FetchResult{
		URL:         finalURL,
		Status:      resp.status,
		Body:        resp.body,
		Fingerprint: b.pageFingerprint(resp, finalURL),
	}, nil
}

// FetchTopDomain is FetchTop for the canonical crawl entry point
// "https://<domain>/", filling a session-owned url.URL instead of
// re-parsing (and first concatenating) the URL string on every visit.
// The reused URL never outlives the visit: redirects re-parse into
// fresh URLs, and composed pages are dropped before the session's next
// fetch. Callers that retain FetchResult.URL across visits of one
// session must use FetchTop.
func (b *Browser) FetchTopDomain(domain string) (FetchResult, error) {
	b.topURL = url.URL{Scheme: "https", Host: domain, Path: "/"}
	resp, finalURL, err := b.fetchURL(http.MethodGet, &b.topURL, nil, b.MaxRedirects, maxPageBody)
	if err != nil {
		return FetchResult{}, err
	}
	return FetchResult{
		URL:         finalURL,
		Status:      resp.status,
		Body:        resp.body,
		Fingerprint: b.pageFingerprint(resp, finalURL),
	}, nil
}

// pageFingerprint folds every non-fetched Compose input into the
// body's content hash. The URL is mixed component-wise to avoid the
// URL.String allocation on the per-visit hot path.
func (b *Browser) pageFingerprint(resp response, u *url.URL) uint64 {
	fp := resp.fp
	if fp == 0 {
		// Fallback fingerprinting: plain transports (cmd/webfarm's real
		// listener, net/http) hand no token, so hash the bytes we read —
		// the same xrand.Hash64 the farm memoizes, so both paths agree
		// on identical content.
		fp = xrand.Hash64(resp.body)
	}
	h := xrand.Mix64(fp, uint64(resp.status))
	h = xrand.Mix64(h, xrand.Hash64(u.Scheme))
	h = xrand.Mix64(h, xrand.Hash64(u.Host))
	h = xrand.Mix64(h, xrand.Hash64(u.Path))
	h = xrand.Mix64(h, uint64(b.MaxFrameDepth))
	if b.Blocker != nil {
		h = xrand.Mix64(h, b.Blocker.Fingerprint())
	}
	return h
}

// Compose builds the fully loaded page from a fetched document: parse,
// script directives, frames, subresources, cosmetic filtering and
// anti-adblock detectors — the second half of Open.
func (b *Browser) Compose(fr FetchResult) *Page {
	b.composeErr = nil
	page := &Page{
		URL:         fr.URL,
		Doc:         b.parse(fr.Body),
		Status:      fr.Status,
		Fingerprint: fr.Fingerprint,
	}
	b.runScriptDirectives(page)
	b.loadFrames(page, page.Doc, b.MaxFrameDepth)
	b.fetchSubresources(page)
	b.applyCosmetics(page)
	b.applyAdblockDetectors(page)
	return page
}

// parse parses a document through the session-owned parser,
// lazily created on first use and retained across Reset.
func (b *Browser) parse(src string) *dom.Node {
	if b.parser == nil {
		b.parser = dom.NewParser()
	}
	return b.parser.Parse(src)
}

// parseFragment is parse for fragments.
func (b *Browser) parseFragment(src string) *dom.Node {
	if b.parser == nil {
		b.parser = dom.NewParser()
	}
	return b.parser.ParseFragment(src)
}

// ComposeErr reports whether the most recent Compose was degraded by
// transport failure: a subresource fetch (script directive, frame,
// cookie-setting resource) failed transiently even after the whole
// retry budget, so the composed page may be missing content a healthy
// transport would have delivered. Deterministic failures — blocked
// URLs, 404s, unknown hosts — never count: those ARE the page.
// Callers that memoize analysis by fingerprint must check this after
// Compose and treat a non-nil answer as a failed visit.
func (b *Browser) ComposeErr() error { return b.composeErr }

const (
	// maxPageBody bounds top-level document reads (4 MiB, like a
	// crawler's page-size cutoff).
	maxPageBody = 4 << 20
	// maxSubresourceBody bounds subresource reads.
	maxSubresourceBody = 1 << 20
)

// bodyTransport is the zero-copy dispatch fast path implemented by
// webfarm's in-process transport: the response body comes back as a
// string — along with its stable content fingerprint, memoized by the
// server's render cache — with no http.Response reconstruction and no
// io.ReadAll + string(bytes) double copy. Matching is structural, so
// the webfarm package needs no import of this one. Transports that do
// not implement it (cmd/webfarm's real net/http transport) take the
// http.RoundTripper path below, where the fingerprint is recomputed by
// hashing the downloaded bytes with the same function.
type bodyTransport interface {
	RoundTripBody(req *http.Request) (status int, header http.Header, body string, fp uint64, err error)
}

// response is one fetched HTTP response with the body fully read.
type response struct {
	status int
	header http.Header
	body   string
	// fp is the body's content hash as provided by a fingerprint-aware
	// transport (the farm's memoized value), or 0 when the transport
	// handed none — plain RoundTrippers, truncated reads. Only the
	// top-level document's fingerprint is ever consumed, so the
	// missing-hash case is resolved lazily in pageFingerprint instead
	// of hashing every subresource body on the compatibility path.
	fp uint64
}

// fetch performs one HTTP request with cookies, geo headers, blocker
// bypass (top-level documents are never blocked — blockers filter
// subresources), and redirect following. The body is read fully,
// truncated at limit bytes.
func (b *Browser) fetch(method, rawurl string, form url.Values, redirectsLeft, limit int) (response, *url.URL, error) {
	u, err := url.Parse(rawurl)
	if err != nil {
		return response{}, nil, fmt.Errorf("browser: bad url %q: %w", rawurl, err)
	}
	return b.fetchParsed(method, u, form, rawurl, redirectsLeft, limit)
}

// fetchURL is fetch for an already-parsed URL: the hot crawl paths
// build their URL without a string round trip, so the raw form — used
// only in error text — is derived lazily on the (cold) paths that need
// it.
func (b *Browser) fetchURL(method string, u *url.URL, form url.Values, redirectsLeft, limit int) (response, *url.URL, error) {
	return b.fetchParsed(method, u, form, "", redirectsLeft, limit)
}

// fetchParsed is the shared redirect loop. cur is the current URL's raw
// string for error text; "" means "derive from u when needed".
func (b *Browser) fetchParsed(method string, u *url.URL, form url.Values, cur string, redirectsLeft, limit int) (response, *url.URL, error) {
	for {
		resp, err := b.doRequest(method, u, form, cur, limit)
		if err != nil {
			return response{}, nil, err
		}
		b.Jar.SetFromHeaders(u.Hostname(), resp.header.Values("Set-Cookie"))

		if isRedirect(resp.status) && redirectsLeft > 0 {
			loc := resp.header.Get("Location")
			if loc == "" {
				if cur == "" {
					cur = u.String()
				}
				return response{}, nil, fmt.Errorf("browser: redirect without location from %s", cur)
			}
			next, err := u.Parse(loc)
			if err != nil {
				return response{}, nil, fmt.Errorf("browser: bad redirect %q: %w", loc, err)
			}
			// 303 (and web convention for 301/302) switches to GET.
			method, u, form, cur = http.MethodGet, next, nil, next.String()
			redirectsLeft--
			continue
		}
		return resp, u, nil
	}
}

// roundTrip dispatches one request, preferring the zero-copy body path.
func (b *Browser) roundTrip(req *http.Request, rawurl string, limit int) (response, error) {
	if bt, ok := b.Transport.(bodyTransport); ok {
		status, header, body, fp, err := bt.RoundTripBody(req)
		if err != nil {
			return response{}, err
		}
		if len(body) > limit {
			// The transport's fingerprint describes the full body; a
			// truncated read is re-hashed lazily if ever consumed.
			body = body[:limit]
			fp = 0
		}
		return response{status: status, header: header, body: body, fp: fp}, nil
	}
	resp, err := b.Transport.RoundTrip(req)
	if err != nil {
		return response{}, err
	}
	defer resp.Body.Close()
	bodyBytes, err := io.ReadAll(io.LimitReader(resp.Body, int64(limit)))
	if err != nil {
		if rawurl == "" {
			rawurl = req.URL.String()
		}
		return response{}, fmt.Errorf("browser: read %s: %w", rawurl, err)
	}
	return response{status: resp.StatusCode, header: resp.Header, body: string(bodyBytes)}, nil
}

// reqScratch is the reusable request state behind scratchRequest: one
// http.Request, one header map, and fixed single-value slices for each
// header the browser sets — so a steady-state request on the fast path
// allocates nothing but the Cookie string (and that only when the jar
// has cookies to send).
type reqScratch struct {
	req    http.Request
	hdr    http.Header
	ua     [1]string
	geo    [1]string
	visit  [1]string
	cookie [1]string
}

// scratchRequest assembles the session's reusable request in place.
// Callers must only use it on the synchronous in-process fast path
// (bodyTransport) with no form body and no per-request context: such a
// transport never retains the request past the call, so reusing the
// struct and header map across requests is invisible. The header keys
// are written pre-canonicalized (http.Header is a plain map), so farm
// lookups via Header.Get match.
func (b *Browser) scratchRequest(method string, u *url.URL) *http.Request {
	s := &b.scratch
	if s.hdr == nil {
		s.hdr = http.Header{
			"User-Agent":      s.ua[:],
			vantage.GeoHeader: s.geo[:],
		}
		s.req = http.Request{
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     s.hdr,
		}
	}
	s.ua[0] = b.UserAgent
	s.geo[0] = b.VP.Name
	if b.Visit != "" {
		s.visit[0] = b.Visit
		s.hdr[vantage.VisitHeader] = s.visit[:]
	} else {
		delete(s.hdr, vantage.VisitHeader)
	}
	b.cookieBuf = b.Jar.AppendCookieHeader(b.cookieBuf[:0], u.Hostname(), u.Path, u.Scheme == "https")
	if len(b.cookieBuf) > 0 {
		s.cookie[0] = string(b.cookieBuf)
		s.hdr["Cookie"] = s.cookie[:]
	} else {
		delete(s.hdr, "Cookie")
	}
	s.req.Method = method
	s.req.URL = u
	s.req.Host = u.Host
	return &s.req
}

// newRequest assembles the request by hand: the URL is already parsed,
// and the Cookie header is built in a single pass instead of one
// AddCookie round per cookie.
func (b *Browser) newRequest(method string, u *url.URL, form url.Values) *http.Request {
	req := &http.Request{
		Method:     method,
		URL:        u,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     make(http.Header, 5),
		Host:       u.Host,
	}
	if form != nil {
		enc := form.Encode()
		req.Body = io.NopCloser(strings.NewReader(enc))
		req.ContentLength = int64(len(enc))
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	}
	req.Header.Set("User-Agent", b.UserAgent)
	req.Header.Set(vantage.GeoHeader, b.VP.Name)
	if b.Visit != "" {
		req.Header.Set(vantage.VisitHeader, b.Visit)
	}
	b.cookieBuf = b.Jar.AppendCookieHeader(b.cookieBuf[:0], u.Hostname(), u.Path, u.Scheme == "https")
	if len(b.cookieBuf) > 0 {
		req.Header.Set("Cookie", string(b.cookieBuf))
	}
	return req
}

func isRedirect(code int) bool {
	switch code {
	case http.StatusMovedPermanently, http.StatusFound, http.StatusSeeOther,
		http.StatusTemporaryRedirect, http.StatusPermanentRedirect:
		return true
	}
	return false
}

// fetchBlockable fetches a subresource URL unless the blocker vetoes
// it. It returns (body, fetched, blocked).
func (b *Browser) fetchBlockable(page *Page, rawurl string) (string, bool) {
	abs, err := page.URL.Parse(rawurl)
	if err != nil {
		return "", false
	}
	if b.Blocker != nil && b.Blocker.ShouldBlock(page.Host(), abs.String()) {
		page.Blocked = append(page.Blocked, abs.String())
		return "", false
	}
	resp, _, err := b.fetch(http.MethodGet, abs.String(), nil, 2, maxSubresourceBody)
	if err != nil {
		// A transient failure that survived the whole retry budget (or a
		// breaker fail-fast) degrades the composition: record it so the
		// visit fails instead of analyzing a partial page. Deterministic
		// errors — unknown hosts, bad URLs — keep the historical
		// silently-skipped behavior; they are the page, not the weather.
		if b.composeErr == nil && (IsTransient(err) || isCircuitOpen(err)) {
			b.composeErr = fmt.Errorf("browser: subresource %s: %w", abs.String(), err)
		}
		return "", false
	}
	page.Fetched = append(page.Fetched, abs.String())
	if resp.status != http.StatusOK {
		return "", false
	}
	return resp.body, true
}

// scriptInjectSel finds declarative banner-loader scripts.
var scriptInjectSel = dom.MustCompileSelector("script[src][data-cw-inject]")

// injectTargetSels caches compiled data-cw-inject target selectors:
// provider loaders use a fixed slot selector, so every cookiewall page
// load was recompiling the same one. The cache is bounded because the
// selector strings come from page content.
var injectTargetSels struct {
	mu sync.RWMutex
	m  map[string]*dom.Selector
}

const maxInjectTargetSels = 1024

// compileInjectTarget returns the compiled selector for src, or nil
// when it does not compile (the directive is then skipped, exactly as
// an inline compile error was).
func compileInjectTarget(src string) *dom.Selector {
	injectTargetSels.mu.RLock()
	sel, ok := injectTargetSels.m[src]
	injectTargetSels.mu.RUnlock()
	if ok {
		return sel
	}
	sel, _ = dom.CompileSelector(src) // nil on error, cached too
	injectTargetSels.mu.Lock()
	if injectTargetSels.m == nil || len(injectTargetSels.m) >= maxInjectTargetSels {
		injectTargetSels.m = make(map[string]*dom.Selector, 8)
	}
	// Clone the key: src is an attribute value aliasing the source
	// page, and a cached key must not pin whole documents in memory.
	injectTargetSels.m[strings.Clone(src)] = sel
	injectTargetSels.mu.Unlock()
	return sel
}

// runScriptDirectives executes <script src data-cw-inject="#sel">: the
// response fragment is parsed and appended to the selector target.
// This models what the provider's JavaScript does in a real browser,
// and — critically for §4.5 — goes through the content blocker.
func (b *Browser) runScriptDirectives(page *Page) {
	for _, script := range page.Doc.QueryAll(scriptInjectSel) {
		src, _ := script.Attr("src")
		targetSel, _ := script.Attr("data-cw-inject")
		sel := compileInjectTarget(targetSel)
		if sel == nil {
			continue
		}
		target := page.Doc.Query(sel)
		if target == nil {
			continue
		}
		frag, ok := b.fetchBlockable(page, src)
		if !ok {
			continue
		}
		for _, child := range b.parseFragment(frag).Children() {
			child.Detach()
			target.AppendChild(child)
		}
	}
}

// loadFrames loads iframe content documents recursively, piercing
// shadow roots (frames inside shadow trees are real frames).
func (b *Browser) loadFrames(page *Page, root *dom.Node, depth int) {
	if depth <= 0 {
		return
	}
	var frames []*dom.Node
	collectFrames(root, &frames)
	for _, fr := range frames {
		if fr.FrameDoc != nil {
			continue
		}
		src, ok := fr.Attr("src")
		if !ok || src == "" || strings.HasPrefix(src, "about:") {
			continue
		}
		body, ok := b.fetchBlockable(page, src)
		if !ok {
			continue
		}
		fr.FrameDoc = b.parse(body)
		b.loadFrames(page, fr.FrameDoc, depth-1)
	}
}

// collectFrames gathers iframes in root's light DOM and shadow roots.
func collectFrames(root *dom.Node, out *[]*dom.Node) {
	root.Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode {
			if n.Tag == "iframe" {
				*out = append(*out, n)
			}
			if n.Shadow != nil {
				collectFrames(n.Shadow.Root, out)
			}
		}
		return true
	})
}

var subresourceSel = dom.MustCompileSelector("img[src], script[src], link[href]")

// fetchSubresources requests cookie-setting resources: images, plain
// scripts and stylesheets — across the main document, shadow roots and
// loaded frames.
func (b *Browser) fetchSubresources(page *Page) {
	roots := []*dom.Node{page.Doc}
	for _, sr := range page.Doc.ShadowRoots() {
		roots = append(roots, sr.Root)
	}
	roots = append(roots, page.Doc.FrameDocs()...)
	for _, root := range roots {
		for _, el := range root.QueryAll(subresourceSel) {
			if el.Tag == "script" {
				if _, isInject := el.Attr("data-cw-inject"); isInject {
					continue // already executed as a directive
				}
			}
			attr := "src"
			if el.Tag == "link" {
				attr = "href"
			}
			u, _ := el.Attr(attr)
			if u == "" || strings.HasPrefix(u, "data:") {
				continue
			}
			b.fetchBlockable(page, u)
		}
	}
}

// applyCosmetics removes elements matched by the blocker's cosmetic
// rules (element hiding). Selectors come precompiled from the engine —
// compiling per page load used to dominate the blocking profile.
func (b *Browser) applyCosmetics(page *Page) {
	if b.Blocker == nil {
		return
	}
	for _, sel := range b.Blocker.CompiledCosmetics(page.Host()) {
		for _, n := range page.Doc.QueryAll(sel) {
			n.Detach()
		}
	}
}

var (
	ifBlockedSel   = dom.MustCompileSelector("[data-cw-if-blocked]")
	scrollLockSel  = dom.MustCompileSelector("body[data-scroll-lock-if-blocked]")
	blockedAttrSel = "data-cw-if-blocked"
)

// applyAdblockDetectors emulates client-side anti-adblock scripts:
// elements guarded by data-cw-if-blocked become visible when their
// sentinel URL was blocked (and disappear otherwise); a body
// scroll-lock directive freezes scrolling.
//
// Sentinel lookups run against a sorted copy of the blocked-URL list:
// a prefix hit, if any exists, is the binary-search successor of the
// sentinel itself, so each check is O(log blocked) instead of a scan
// of the whole set in nondeterministic map order.
func (b *Browser) applyAdblockDetectors(page *Page) {
	var blocked []string
	if len(page.Blocked) > 0 {
		// Sort a copy: page.Blocked stays in fetch order for reports.
		blocked = append(make([]string, 0, len(page.Blocked)), page.Blocked...)
		sort.Strings(blocked)
	}
	wasBlocked := func(sentinel string) bool {
		i := sort.SearchStrings(blocked, sentinel)
		return i < len(blocked) && strings.HasPrefix(blocked[i], sentinel)
	}
	for _, n := range page.Doc.QueryAll(ifBlockedSel) {
		sentinel, _ := n.Attr(blockedAttrSel)
		if wasBlocked(sentinel) {
			// Reveal the plea.
			var kept []struct{ k, v string }
			for _, a := range n.Attrs {
				if a.Key != "hidden" {
					kept = append(kept, struct{ k, v string }{a.Key, a.Val})
				}
			}
			n.Attrs = n.Attrs[:0]
			for _, a := range kept {
				n.SetAttr(a.k, a.v)
			}
			page.AdblockPlea = true
		} else {
			n.Detach()
		}
	}
	if body := page.Doc.Body(); body != nil {
		if sentinel, ok := body.Attr("data-scroll-lock-if-blocked"); ok && wasBlocked(sentinel) {
			body.SetAttr("data-scroll-locked", "true")
			page.ScrollLocked = true
		}
	}
}

// Click activates a banner button and returns the page that results.
// Supported data-action values:
//
//	consent-accept  — POST choice=accept to data-target, reload
//	consent-reject  — POST choice=reject to data-target, reload
//	smp-subscribe   — POST token=<SMPToken> to data-target, reload
//
// The button may live in the main DOM, a shadow root, or an iframe
// document; data-target is absolute, so the flow works from any of
// them (real CMP frames postMessage to the top window — the HTTP
// effect is the same).
func (b *Browser) Click(page *Page, button *dom.Node) (*Page, error) {
	if button == nil {
		return nil, fmt.Errorf("browser: nil button")
	}
	action, _ := button.Attr("data-action")
	target, _ := button.Attr("data-target")
	if target == "" {
		target = "/consent"
	}
	abs, err := page.URL.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("browser: bad target %q: %w", target, err)
	}
	var form url.Values
	switch action {
	case "consent-accept":
		form = url.Values{"choice": {"accept"}}
	case "consent-reject":
		form = url.Values{"choice": {"reject"}}
	case "smp-subscribe":
		if b.SMPToken == "" {
			return nil, fmt.Errorf("browser: subscribe click without SMP token")
		}
		form = url.Values{"token": {b.SMPToken}}
	default:
		return nil, fmt.Errorf("browser: unsupported action %q", action)
	}
	resp, _, err := b.fetch(http.MethodPost, abs.String(), form, b.MaxRedirects, maxPageBody)
	if err != nil {
		return nil, err
	}
	if resp.status >= 400 {
		return nil, fmt.Errorf("browser: %s returned %d", action, resp.status)
	}
	// Reload the top-level page to observe the post-interaction state.
	return b.Open(page.URL.String())
}
