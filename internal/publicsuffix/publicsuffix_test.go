package publicsuffix

import (
	"testing"
	"testing/quick"
)

func TestETLDPlusOne(t *testing.T) {
	cases := map[string]string{
		"www.spiegel.de":            "spiegel.de",
		"spiegel.de":                "spiegel.de",
		"news.bbc.co.uk":            "bbc.co.uk",
		"bbc.co.uk":                 "bbc.co.uk",
		"a.b.c.example.com.au":      "example.com.au",
		"sync.trackpix1.example":    "trackpix1.example",
		"pt.climate-data.org":       "climate-data.org",
		"WWW.UPPER.DE":              "upper.de",
		"trailing.dot.de.":          "dot.de",
		"with.port.de:8443":         "port.de",
		"deep.sub.domain.houses.at": "houses.at",
	}
	for in, want := range cases {
		got, err := ETLDPlusOne(in)
		if err != nil {
			t.Errorf("ETLDPlusOne(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ETLDPlusOne(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestETLDPlusOneErrors(t *testing.T) {
	for _, in := range []string{"", "de", "co.uk", "com", "example"} {
		if got, err := ETLDPlusOne(in); err == nil {
			t.Errorf("ETLDPlusOne(%q) = %q, want error", in, got)
		}
	}
}

func TestUnknownTLDFallback(t *testing.T) {
	got, err := ETLDPlusOne("foo.bar.unknowntld")
	if err != nil || got != "bar.unknowntld" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestPublicSuffix(t *testing.T) {
	if s, ok := PublicSuffix("www.bbc.co.uk"); !ok || s != "co.uk" {
		t.Fatalf("co.uk: %q %v", s, ok)
	}
	if s, ok := PublicSuffix("x.de"); !ok || s != "de" {
		t.Fatalf("de: %q %v", s, ok)
	}
	if s, ok := PublicSuffix("a.veryunknown"); ok || s != "veryunknown" {
		t.Fatalf("unknown: %q %v", s, ok)
	}
}

func TestSameSite(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"www.spiegel.de", "abo.spiegel.de", true},
		{"spiegel.de", "spiegel.de", true},
		{"www.spiegel.de", "zeit.de", false},
		{"sub.a.co.uk", "other.a.co.uk", true},
		{"a.co.uk", "a.org.uk", false},
		{"tracker.example", "site.de", false},
		// Suffix-only hosts fall back to literal comparison.
		{"de", "de", true},
		{"de", "at", false},
	}
	for _, c := range cases {
		if got := SameSite(c.a, c.b); got != c.want {
			t.Errorf("SameSite(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIsSuffix(t *testing.T) {
	if !IsSuffix("de") || !IsSuffix("co.uk") || IsSuffix("spiegel.de") {
		t.Fatal("IsSuffix misbehaves")
	}
}

// Property: ETLDPlusOne is idempotent — applying it to its own output
// returns the same value.
func TestQuickIdempotent(t *testing.T) {
	hosts := []string{
		"a.b.c.de", "x.y.com.br", "www.site.co.za", "q.example",
		"sub.domain.org", "t.co.in", "deep.nest.net.au",
	}
	for _, h := range hosts {
		e1, err := ETLDPlusOne(h)
		if err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		e2, err := ETLDPlusOne(e1)
		if err != nil || e1 != e2 {
			t.Fatalf("not idempotent: %s -> %s -> %s (%v)", h, e1, e2, err)
		}
	}
}

// Property: SameSite is symmetric.
func TestQuickSameSiteSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return SameSite(a, b) == SameSite(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
