// Package publicsuffix implements effective-TLD-plus-one (eTLD+1)
// computation over an embedded subset of the public suffix list.
//
// The paper classifies cookies as first- or third-party by comparing
// the registrable domain of the cookie with that of the visited site
// (the same rule OpenWPM applies). A full Mozilla PSL import would be
// thousands of entries; we embed the subset that covers every TLD the
// study (and our synthetic web) touches, including multi-label suffixes
// such as co.uk and com.br, so the matching logic is exercised
// identically.
package publicsuffix

import (
	"fmt"
	"strings"
)

// suffixes is the embedded public-suffix subset. Keys are complete
// public suffixes; eTLD+1 is the suffix plus one label.
var suffixes = map[string]bool{
	// Generic TLDs.
	"com": true, "net": true, "org": true, "info": true, "biz": true,
	"news": true, "club": true, "online": true, "site": true, "app": true,
	"dev": true, "io": true, "blog": true, "shop": true, "media": true,
	// RFC 2606 / RFC 6761 reserved — the synthetic web lives here.
	"example": true, "test": true, "invalid": true, "localhost": true,
	// Country-code TLDs relevant to the study's vantage points and
	// detected cookiewalls.
	"de": true, "at": true, "ch": true, "fr": true, "it": true, "es": true,
	"se": true, "nl": true, "dk": true, "be": true, "pl": true, "pt": true,
	"us": true, "in": true, "br": true, "za": true, "au": true, "cn": true,
	"uk": true, "eu": true, "li": true, "lu": true,
	// Multi-label public suffixes.
	"co.uk": true, "org.uk": true, "ac.uk": true, "gov.uk": true,
	"com.au": true, "net.au": true, "org.au": true,
	"com.br": true, "net.br": true, "org.br": true,
	"co.za": true, "org.za": true, "web.za": true,
	"co.in": true, "org.in": true, "net.in": true, "ac.in": true,
	"com.cn": true, "net.cn": true, "org.cn": true,
}

// IsSuffix reports whether s (a lower-case domain without trailing dot)
// is a known public suffix.
func IsSuffix(s string) bool { return suffixes[s] }

// PublicSuffix returns the longest known public suffix of domain, and
// true when one was found. Unknown single-label TLDs are treated as
// suffixes so that eTLD+1 still behaves sensibly on unlisted TLDs.
func PublicSuffix(domain string) (string, bool) {
	d := normalize(domain)
	if d == "" {
		return "", false
	}
	labels := strings.Split(d, ".")
	// Longest match first.
	for i := 0; i < len(labels); i++ {
		candidate := strings.Join(labels[i:], ".")
		if suffixes[candidate] {
			return candidate, true
		}
	}
	// Fallback: the final label acts as an (unlisted) suffix.
	return labels[len(labels)-1], false
}

// ETLDPlusOne returns the registrable domain (public suffix plus one
// label) for the given host. It returns an error when the host IS a
// public suffix (no registrable part) or is empty.
func ETLDPlusOne(host string) (string, error) {
	d := normalize(host)
	if d == "" {
		return "", fmt.Errorf("publicsuffix: empty host")
	}
	suffix, _ := PublicSuffix(d)
	if d == suffix {
		return "", fmt.Errorf("publicsuffix: %q is a public suffix", host)
	}
	rest := strings.TrimSuffix(d, "."+suffix)
	labels := strings.Split(rest, ".")
	return labels[len(labels)-1] + "." + suffix, nil
}

// SameSite reports whether two hosts share a registrable domain, i.e.
// whether a cookie from one is first-party on the other.
func SameSite(a, b string) bool {
	ea, errA := ETLDPlusOne(a)
	eb, errB := ETLDPlusOne(b)
	if errA != nil || errB != nil {
		return normalize(a) == normalize(b)
	}
	return ea == eb
}

func normalize(host string) string {
	h := strings.ToLower(strings.TrimSpace(host))
	h = strings.TrimSuffix(h, ".")
	if i := strings.IndexByte(h, ':'); i >= 0 {
		h = h[:i] // strip port
	}
	return h
}
