// Package webfarm serves the synthetic web over HTTP: one handler
// routes every registered site domain, CMP/SMP provider host, tracker
// host and benign CDN host. Pages are rendered on demand from the
// synthweb registry — language-appropriate article text with category
// keywords, consent banners or cookiewalls in the site's configured
// embedding, tracker subresources after consent, and subscription
// flows for SMP partners.
package webfarm

import (
	"fmt"
	"strings"

	"cookiewalk/internal/currency"
	"cookiewalk/internal/synthweb"
)

// langText bundles the per-language strings used on pages and banners.
type langText struct {
	// article sentences; %s slots take category keywords.
	intro string
	body1 string
	body2 string
	// regular banner.
	consentText string
	accept      string
	reject      string
	settings    string
	// cookiewall extras. walls must contain at least one corpus word
	// (abo, abonnent, abbonamento, abonne, abonné, ad-free, subscribe)
	// or rely on the price combination, as the real sites do.
	wallText  string // %s slot takes the formatted price phrase
	subscribe string
	monthWord string
	yearWord  string
}

var texts = map[string]langText{
	"de": {
		intro:       "Willkommen auf unserer Seite mit aktuellen Beiträgen über %s und %s für alle, die mehr wissen wollen.",
		body1:       "Wir berichten jeden Tag über %s, damit Sie mit unseren Artikeln immer auf dem neuesten Stand sind und nichts verpassen.",
		body2:       "Unsere Redaktion schreibt nicht nur über %s, sondern auch über viele weitere Themen, die unsere Leser im Alltag begleiten.",
		consentText: "Wir und unsere Partner verwenden Cookies und ähnliche Technologien, um Inhalte zu personalisieren und Zugriffe zu analysieren. Sie können Ihre Einwilligung jederzeit widerrufen.",
		accept:      "Alle akzeptieren",
		reject:      "Ablehnen",
		settings:    "Einstellungen verwalten",
		wallText:    "Mit Werbung kostenlos weiterlesen oder werbefrei im Abo für nur %s. Jetzt abonnieren und ganz ohne Tracking lesen. Wenn Sie akzeptieren, verarbeiten wir und unsere Partner Ihre Daten mit Cookies.",
		subscribe:   "Jetzt Abo abschließen",
		monthWord:   "pro Monat",
		yearWord:    "pro Jahr",
	},
	"en": {
		intro:       "Welcome to our site with the latest stories about %s and %s for all of you who want to know more.",
		body1:       "Every day we report about %s so that you are always up to date with our articles and never miss the news that matters.",
		body2:       "Our team writes not only about %s but also about many more topics that our readers care about in their daily lives.",
		consentText: "We and our partners use cookies and similar technologies to personalise content and analyse traffic. You can withdraw your consent at any time.",
		accept:      "Accept all",
		reject:      "Reject all",
		settings:    "Manage settings",
		wallText:    "Keep reading for free with advertising, or go ad-free for just %s. Subscribe now for tracking-free access. If you accept, we and our partners will process your data using cookies.",
		subscribe:   "Subscribe now",
		monthWord:   "per month",
		yearWord:    "per year",
	},
	"it": {
		intro:       "Benvenuti sul nostro sito con gli articoli più recenti su %s e %s per tutti quelli che vogliono saperne di più.",
		body1:       "Ogni giorno scriviamo di %s perché con i nostri articoli siate sempre informati e non vi perdiate le notizie che contano.",
		body2:       "La nostra redazione non scrive solo di %s ma anche di molti altri temi che accompagnano i nostri lettori.",
		consentText: "Noi e i nostri partner utilizziamo i cookie per personalizzare i contenuti e analizzare il traffico. Puoi revocare il consenso in ogni momento.",
		accept:      "Accetta tutto",
		reject:      "Rifiuta",
		settings:    "Gestisci impostazioni",
		wallText:    "Continua a leggere gratis con la pubblicità oppure scegli l'abbonamento senza tracciamento per solo %s. Se accetti, noi e i nostri partner trattiamo i tuoi dati con i cookie.",
		subscribe:   "Abbonati ora",
		monthWord:   "al mese",
		yearWord:    "all'anno",
	},
	"sv": {
		intro:       "Välkommen till vår sida med de senaste artiklarna om %s och %s för alla som vill veta mer.",
		body1:       "Varje dag skriver vi om %s så att du alltid är uppdaterad med våra artiklar och inte missar det som är viktigt.",
		body2:       "Vår redaktion skriver inte bara om %s utan också om många andra ämnen som våra läsare bryr sig om.",
		consentText: "Vi och våra partner använder cookies för att anpassa innehållet och analysera trafiken. Du kan när som helst återkalla ditt samtycke.",
		accept:      "Godkänn alla",
		reject:      "Neka",
		settings:    "Hantera inställningar",
		wallText:    "Läs vidare gratis med annonser eller välj att läsa utan spårning för bara %s. Om du godkänner behandlar vi och våra partner dina uppgifter med cookies.",
		subscribe:   "Prenumerera nu",
		monthWord:   "per månad",
		yearWord:    "per år",
	},
	"fr": {
		intro:       "Bienvenue sur notre site avec les derniers articles sur %s et %s pour tous ceux qui veulent en savoir plus.",
		body1:       "Chaque jour nous écrivons sur %s pour que vous soyez toujours informés avec nos articles et ne manquiez pas les nouvelles qui comptent.",
		body2:       "Notre rédaction n'écrit pas seulement sur %s mais aussi sur beaucoup d'autres sujets qui accompagnent nos lecteurs.",
		consentText: "Nous et nos partenaires utilisons des cookies pour personnaliser les contenus et analyser le trafic. Vous pouvez retirer votre consentement à tout moment.",
		accept:      "Tout accepter",
		reject:      "Refuser",
		settings:    "Gérer les paramètres",
		wallText:    "Continuez à lire gratuitement avec la publicité ou devenez abonné sans suivi pour seulement %s. Si vous acceptez, nous et nos partenaires traitons vos données avec des cookies.",
		subscribe:   "S'abonner",
		monthWord:   "par mois",
		yearWord:    "par an",
	},
	"es": {
		intro:       "Bienvenido a nuestro sitio con los últimos artículos sobre %s y %s para todos los que quieren saber más.",
		body1:       "Cada día escribimos sobre %s para que usted esté siempre informado con nuestros artículos y no se pierda las noticias importantes.",
		body2:       "Nuestra redacción no escribe solo sobre %s sino también sobre muchos otros temas que acompañan a nuestros lectores.",
		consentText: "Nosotros y nuestros socios usamos cookies para personalizar el contenido y analizar el tráfico. Puede retirar su consentimiento en cualquier momento.",
		accept:      "Aceptar todo",
		reject:      "Rechazar",
		settings:    "Gestionar ajustes",
		wallText:    "Siga leyendo gratis con publicidad o lea sin rastreo por solo %s. Si acepta, nosotros y nuestros socios procesamos sus datos con cookies.",
		subscribe:   "Suscribirse ahora",
		monthWord:   "al mes",
		yearWord:    "al año",
	},
	"pt": {
		intro:       "Bem-vindo ao nosso site com os artigos mais recentes sobre %s e %s para todos que querem saber mais.",
		body1:       "Todos os dias escrevemos sobre %s para que você esteja sempre informado com os nossos artigos e não perca as notícias importantes.",
		body2:       "A nossa redação não escreve apenas sobre %s mas também sobre muitos outros temas que acompanham os nossos leitores.",
		consentText: "Nós e os nossos parceiros usamos cookies para personalizar o conteúdo e analisar o tráfego. Você pode retirar o seu consentimento a qualquer momento.",
		accept:      "Aceitar tudo",
		reject:      "Recusar",
		settings:    "Gerir definições",
		wallText:    "Continue lendo grátis com publicidade ou leia sem rastreamento por apenas %s. Se você aceitar, nós e os nossos parceiros processamos os seus dados com cookies.",
		subscribe:   "Assinar agora",
		monthWord:   "por mês",
		yearWord:    "por ano",
	},
	"nl": {
		intro:       "Welkom op onze site met de nieuwste artikelen over %s en %s voor iedereen die meer wil weten.",
		body1:       "Elke dag schrijven wij over %s zodat u met onze artikelen altijd op de hoogte bent en niets mist van het nieuws.",
		body2:       "Onze redactie schrijft niet alleen over %s maar ook over veel andere onderwerpen die onze lezers bezighouden.",
		consentText: "Wij en onze partners gebruiken cookies om inhoud te personaliseren en verkeer te analyseren. U kunt uw toestemming op elk moment intrekken.",
		accept:      "Alles accepteren",
		reject:      "Weigeren",
		settings:    "Instellingen beheren",
		wallText:    "Lees gratis verder met advertenties of kies een abonnement zonder tracking voor slechts %s. Als u accepteert, verwerken wij en onze partners uw gegevens met cookies.",
		subscribe:   "Abonneren",
		monthWord:   "per maand",
		yearWord:    "per jaar",
	},
	"da": {
		intro:       "Velkommen til vores side med de nyeste artikler om %s og %s for alle der vil vide mere.",
		body1:       "Hver dag skriver vi om %s så du altid er opdateret med vores artikler og ikke går glip af de vigtige nyheder.",
		body2:       "Vores redaktion skriver ikke kun om %s men også om mange andre emner som vores læsere har brug for.",
		consentText: "Vi og vores partnere bruger cookies til at tilpasse indholdet og analysere trafikken. Du kan til enhver tid trække dit samtykke tilbage.",
		accept:      "Accepter alle",
		reject:      "Afvis",
		settings:    "Administrer indstillinger",
		wallText:    "Læs videre gratis med annoncer eller vælg et abonnement uden sporing for kun %s. Hvis du accepterer, behandler vi og vores partnere dine data med cookies.",
		subscribe:   "Abonner nu",
		monthWord:   "pr. måned",
		yearWord:    "pr. år",
	},
	"af": {
		intro:       "Welkom op ons webwerf met die nuutste artikels oor %s en %s vir almal wat meer wil weet.",
		body1:       "Elke dag skryf ons oor %s sodat jy altyd op hoogte is met ons artikels en nie die belangrike nuus mis nie.",
		body2:       "Ons redaksie skryf nie net oor %s nie maar ook oor baie ander onderwerpe wat ons lesers raak.",
		consentText: "Ons en ons vennote gebruik koekies om inhoud te verpersoonlik en verkeer te ontleed. Jy kan jou toestemming enige tyd terugtrek.",
		accept:      "Aanvaar alles",
		reject:      "Weier",
		settings:    "Bestuur instellings",
		wallText:    "Lees gratis verder met advertensies of kies ad-free toegang vir net %s. As jy aanvaar, verwerk ons en ons vennote jou data met koekies.",
		subscribe:   "Teken nou in",
		monthWord:   "per maand",
		yearWord:    "per jaar",
	},
}

// textFor returns the language bundle, falling back to English.
func textFor(lang string) langText {
	if t, ok := texts[lang]; ok {
		return t
	}
	return texts["en"]
}

// BannerTexts exposes each language's banner strings (consent text,
// wall text with a sample price, accept/reject/subscribe labels) so
// integration tests can verify the farm's i18n stays detectable by the
// classifier.
func BannerTexts() map[string][5]string {
	out := make(map[string][5]string, len(texts))
	for lang, t := range texts {
		out[lang] = [5]string{
			t.consentText,
			fmt.Sprintf(t.wallText, "2,99 € "+t.monthWord),
			t.accept,
			t.reject,
			t.subscribe,
		}
	}
	return out
}

// decimalCommaLangs write "2,99" instead of "2.99".
var decimalCommaLangs = map[string]bool{
	"de": true, "it": true, "sv": true, "fr": true, "es": true,
	"pt": true, "nl": true, "da": true, "af": true,
}

// formatPricePhrase renders the site's display price the way its
// banner shows it, e.g. "2,99 € pro Monat", "A$4 per month",
// "34 kr per månad", "35,88 € pro Jahr".
func formatPricePhrase(s *synthweb.Site) string {
	t := textFor(s.Language)
	period := t.monthWord
	if s.PricePeriod == currency.PeriodYear {
		period = t.yearWord
	}
	return formatAmount(s.PriceAmount, s.PriceCurrency, s.Language) + " " + period
}

func formatAmount(amount float64, code, lang string) string {
	var num string
	if amount == float64(int64(amount)) {
		num = fmt.Sprintf("%d", int64(amount))
	} else {
		num = fmt.Sprintf("%.2f", amount)
		if decimalCommaLangs[lang] {
			num = strings.Replace(num, ".", ",", 1)
		}
	}
	switch code {
	case "EUR":
		return num + " €"
	case "USD":
		return "$" + num
	case "GBP":
		return "£" + num
	case "AUD":
		return "A$" + num
	case "SEK":
		return num + " kr"
	case "BRL":
		return "R$" + num
	case "INR":
		return "Rs. " + num
	case "CHF":
		return "CHF " + num
	case "ZAR":
		return "R" + num
	case "CNY":
		return "¥" + num
	default:
		return num + " " + code
	}
}

// decoyPromo is the newsletter plug that turns five regular banners
// into the detector's false positives (§3's 98.2% precision).
var decoyPromo = map[string]string{
	"de": "PS: Unser werbefreier Newsletter im Abo kostet nur 1,99 € im Monat — jetzt abonnieren!",
}

func decoyPromoFor(lang string) string {
	if p, ok := decoyPromo[lang]; ok {
		return p
	}
	return decoyPromo["de"]
}
