package webfarm

import (
	"testing"

	"cookiewalk/internal/synthweb"
)

// benchStates mixes the page states a landscape + cookie campaign
// actually requests.
func benchStates(sites []*synthweb.Site) []pageState {
	var sts []pageState
	for _, s := range sites {
		sts = append(sts,
			pageState{site: s, vpName: "Germany"},
			pageState{site: s, vpName: "Brazil"},
			pageState{site: s, consented: true, visit: "Germany|0|accept"},
		)
	}
	return sts
}

// BenchmarkRenderSitePage measures page rendering through the farm's
// memoizing path (steady-state: every request after the first per key
// is a cache hit) against the raw renderer.
func BenchmarkRenderSitePage(b *testing.B) {
	sites := testReg.CookiewallSites()
	sts := benchStates(sites)
	b.Run("cached", func(b *testing.B) {
		farm := New(testReg)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if farm.renderSitePage(sts[i%len(sts)]).body == "" {
				b.Fatal("empty render")
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		farm := New(testReg)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if farm.renderSitePageUncached(sts[i%len(sts)]) == "" {
				b.Fatal("empty render")
			}
		}
	})
}

// BenchmarkRenderCacheContention hammers a warm render cache from
// every P at once — the landscape crawl's steady state, where all
// workers read memoized pages concurrently. Run with -cpu 1,4 to see
// the scaling: the shards are RLock-only and padded to distinct cache
// lines, so throughput should grow near-linearly with P.
func BenchmarkRenderCacheContention(b *testing.B) {
	farm := New(testReg)
	sts := benchStates(testReg.CookiewallSites())
	for _, st := range sts { // warm every key
		if farm.renderSitePage(st).body == "" {
			b.Fatal("empty render")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if farm.renderSitePage(sts[i%len(sts)]).body == "" {
				b.Fatal("empty render")
			}
			i++
		}
	})
}
