package webfarm

import (
	"fmt"
	"sync"
	"testing"

	"cookiewalk/internal/synthweb"
)

// cacheStates enumerates pageState variants that exercise every field
// the render key must capture: consent states, VP-visibility classes,
// bot UAs and jittered visits.
func cacheStates(s *synthweb.Site) []pageState {
	return []pageState{
		{site: s, vpName: "Germany"},
		{site: s, vpName: "Germany", rejected: true},
		{site: s, vpName: "Germany", consented: true},
		{site: s, vpName: "Germany", consented: true, visit: "Germany|0|accept"},
		{site: s, vpName: "Germany", consented: true, visit: "Germany|1|accept"},
		{site: s, vpName: "Germany", subscribed: true, visit: "Germany|0|sub"},
		{site: s, vpName: "Germany", consented: true, subscribed: true, visit: "Germany|2|sub"},
		{site: s, vpName: "Brazil"},
		{site: s, vpName: ""},
		{site: s, vpName: "Germany", botUA: true},
		{site: s, vpName: "US East", botUA: true},
	}
}

// testSites picks a representative site population: cookiewalls in
// every embedding, a VP-restricted wall, a bot-sensitive site and a
// few regular/filler sites.
func testSites(t *testing.T) []*synthweb.Site {
	t.Helper()
	var sites []*synthweb.Site
	sites = append(sites,
		pickCookiewall(t, func(s *synthweb.Site) bool { return s.Provider.Name == "local" }),
		pickCookiewall(t, func(s *synthweb.Site) bool { return s.Provider.Host != "" }),
		pickCookiewall(t, func(s *synthweb.Site) bool { return s.Embedding == synthweb.EmbedIFrame }),
		pickCookiewall(t, func(s *synthweb.Site) bool { return s.Embedding == synthweb.EmbedShadowClosed }),
		pickCookiewall(t, func(s *synthweb.Site) bool { return len(s.ShowToVPs) > 0 }),
	)
	botSensitive, regular := false, 0
	for _, s := range testReg.Sites() {
		if !s.Reachable {
			continue
		}
		if s.BotSensitive && !botSensitive {
			sites = append(sites, s)
			botSensitive = true
		} else if s.Banner == synthweb.BannerRegular && regular < 3 {
			sites = append(sites, s)
			regular++
		}
		if botSensitive && regular >= 3 {
			break
		}
	}
	return sites
}

// TestRenderCacheByteIdentical pins the cache's core contract: for
// every site and page state, the cached render (second call), the
// cache-populating render (first call) and a direct uncached render
// are the same bytes.
func TestRenderCacheByteIdentical(t *testing.T) {
	farm := New(testReg) // fresh farm => empty cache
	for _, s := range testSites(t) {
		for i, st := range cacheStates(s) {
			first := farm.renderSitePage(st)
			second := farm.renderSitePage(st)
			direct := farm.renderSitePageUncached(st)
			if first.body != direct {
				t.Errorf("%s state %d: populating render != uncached render", s.Domain, i)
			}
			if second.body != direct {
				t.Errorf("%s state %d: cached render != uncached render", s.Domain, i)
			}
			// The memoized fingerprint must be exactly the content hash
			// a plain HTTP reader would compute from the same bytes.
			if first.fp != bodyHash(direct) || second.fp != first.fp {
				t.Errorf("%s state %d: memoized fingerprint != bodyHash(render)", s.Domain, i)
			}
		}
		if s.Banner == synthweb.BannerNone {
			continue
		}
		if got, want := farm.bannerDocument(s), farm.bannerDocumentUncached(s); got.body != want || got.fp != bodyHash(want) {
			t.Errorf("%s: cached banner document diverges", s.Domain)
		}
		host := ""
		if s.Provider.Host != "" {
			host = s.Provider.Host
		}
		if got, want := farm.bannerFragment(s, host), farm.bannerFragmentUncached(s, host); got.body != want || got.fp != bodyHash(want) {
			t.Errorf("%s: cached banner fragment diverges", s.Domain)
		}
	}
}

// TestRenderCacheKeyCoversJitter makes sure distinct visit labels on
// consent pages do not collide in the cache (their tracker-embed
// jitter differs), while pre-consent pages ignore the label entirely.
func TestRenderCacheKeyCoversJitter(t *testing.T) {
	farm := New(testReg)
	// Jitter may round to the same counts for one site, so find a
	// (site, label pair) whose UNCACHED renders differ, then check the
	// cache preserves exactly that difference.
	var site *synthweb.Site
	var stA, stB pageState
	for _, s := range testReg.CookiewallSites() {
		if s.Cookies.PostTracking == 0 {
			continue
		}
		for v := 1; v < 6 && site == nil; v++ {
			a := pageState{site: s, consented: true, visit: "Germany|0|accept"}
			b := pageState{site: s, consented: true, visit: fmt.Sprintf("Germany|%d|accept", v)}
			if farm.renderSitePageUncached(a) != farm.renderSitePageUncached(b) {
				site, stA, stB = s, a, b
			}
		}
		if site != nil {
			break
		}
	}
	if site == nil {
		t.Fatal("no site with visit-jitter-distinct consent renders found")
	}
	vA := farm.renderSitePage(stA)
	vB := farm.renderSitePage(stB)
	if vA.body == vB.body {
		t.Fatalf("%s: consent renders for distinct visit labels collide in the cache", site.Domain)
	}
	if vA.fp == vB.fp {
		t.Fatalf("%s: distinct jittered renders share a fingerprint", site.Domain)
	}
	if vA.body != farm.renderSitePageUncached(stA) || vB.body != farm.renderSitePageUncached(stB) {
		t.Fatalf("%s: cached jittered renders diverge from uncached", site.Domain)
	}
	// Pre-consent pages never embed jittered counts: any label must hit
	// the same cache entry and the same bytes.
	p0 := farm.renderSitePage(pageState{site: site, vpName: "Germany"})
	p1 := farm.renderSitePage(pageState{site: site, vpName: "Germany", visit: "Germany|1|accept"})
	if p0.body != p1.body || p0.fp != p1.fp {
		t.Fatalf("%s: pre-consent render depends on visit label", site.Domain)
	}
}

// TestRenderCacheConcurrent hammers one farm's cache from many
// goroutines across sites and states and checks every result against
// an uncached reference render. Run with -race, this is the
// cache-correctness gate for parallel campaigns.
func TestRenderCacheConcurrent(t *testing.T) {
	farm := New(testReg)
	ref := New(testReg) // renders references through its own cache-free path
	sites := testSites(t)

	type job struct {
		st   pageState
		want string
	}
	var jobs []job
	for _, s := range sites {
		for _, st := range cacheStates(s) {
			jobs = append(jobs, job{st: st, want: ref.renderSitePageUncached(st)})
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, j := range jobs {
					// Vary the order per worker so gets and puts interleave.
					j = jobs[(i+w*7+rep)%len(jobs)]
					if got := farm.renderSitePage(j.st); got.body != j.want || got.fp != bodyHash(j.want) {
						select {
						case errs <- fmt.Sprintf("worker %d: %s render diverged under concurrency", w, j.st.site.Domain):
						default:
						}
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestRenderCacheBounded checks the overflow behaviour: a shard that
// exceeds its entry bound resets and keeps serving correct renders.
func TestRenderCacheBounded(t *testing.T) {
	var c renderCache
	for i := 0; i < 3*renderShardMax; i++ {
		k := renderKey{domain: fmt.Sprintf("site-%06d.example", i), kind: kindPage}
		c.put(k, k.domain, nil)
	}
	for i := range c.shards {
		if n := len(c.shards[i].m); n > renderShardMax {
			t.Fatalf("shard %d holds %d entries, bound is %d", i, n, renderShardMax)
		}
	}
	// Entries written after a reset are still served, fingerprint intact.
	k := renderKey{domain: "after-reset.example", kind: kindPage}
	c.put(k, "page", nil)
	if v, ok := c.get(k); !ok || v.body != "page" || v.fp != bodyHash("page") {
		t.Fatal("cache lost an entry written after overflow reset")
	}
}
