package webfarm

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"cookiewalk/internal/smp"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/vantage"
)

var (
	testReg  = synthweb.Generate(synthweb.Config{Seed: 11, FillerScale: 0.01})
	testFarm = New(testReg)
)

// pickCookiewall returns a deterministic cookiewall site matching pred.
func pickCookiewall(t *testing.T, pred func(*synthweb.Site) bool) *synthweb.Site {
	t.Helper()
	for _, s := range testReg.CookiewallSites() {
		if pred(s) {
			return s
		}
	}
	t.Fatal("no cookiewall site matches predicate")
	return nil
}

// get performs a GET through the farm handler with VP and cookies.
func get(t *testing.T, rawurl, vp string, cookies []*http.Cookie) *http.Response {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, rawurl, nil)
	if vp != "" {
		req.Header.Set(vantage.GeoHeader, vp)
	}
	for _, c := range cookies {
		req.AddCookie(c)
	}
	rec := httptest.NewRecorder()
	testFarm.ServeHTTP(rec, req)
	return rec.Result()
}

func body(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSitePagePreConsent(t *testing.T) {
	s := pickCookiewall(t, func(s *synthweb.Site) bool {
		return s.Provider.Name == "local" && s.Embedding == synthweb.EmbedMainDOM && s.Language == "de"
	})
	resp := get(t, "https://"+s.Domain+"/", "Germany", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	html := body(t, resp)
	if !strings.Contains(html, "cw-banner") {
		t.Fatal("local cookiewall banner missing")
	}
	if !strings.Contains(html, "data-action=\"smp-subscribe\"") {
		t.Fatal("subscribe button missing")
	}
	if strings.Contains(html, "cmp-reject") {
		t.Fatal("cookiewall must not have a reject button")
	}
	// Pre-consent pages carry no tracker pixels.
	if strings.Contains(html, "trackpix") || strings.Contains(html, "p.gif") {
		t.Fatal("trackers on pre-consent page")
	}
	// Session cookies set.
	if len(resp.Header.Values("Set-Cookie")) != s.Cookies.PreConsentFP {
		t.Fatalf("pre-consent cookies = %d, want %d",
			len(resp.Header.Values("Set-Cookie")), s.Cookies.PreConsentFP)
	}
}

func TestGeoPolicyHidesBanner(t *testing.T) {
	// A Germany-only cookiewall must not show its banner to US East.
	s := pickCookiewall(t, func(s *synthweb.Site) bool {
		return len(s.ShowToVPs) == 1 && s.ShowToVPs[0] == "Germany"
	})
	de := body(t, get(t, "https://"+s.Domain+"/", "Germany", nil))
	us := body(t, get(t, "https://"+s.Domain+"/", "US East", nil))
	deHas := strings.Contains(de, "cw-banner") || strings.Contains(de, "cw-slot") || strings.Contains(de, "cw-frame") || strings.Contains(de, "cw-host")
	usHas := strings.Contains(us, "cw-banner") || strings.Contains(us, "cw-slot") || strings.Contains(us, "cw-frame") || strings.Contains(us, "cw-host")
	if !deHas {
		t.Fatal("banner missing from Germany")
	}
	if usHas {
		t.Fatal("geo-restricted banner shown to US East")
	}
}

func TestThirdPartyDelivery(t *testing.T) {
	s := pickCookiewall(t, func(s *synthweb.Site) bool {
		return s.Provider.Name == "contentpass" && s.Embedding == synthweb.EmbedIFrame
	})
	html := body(t, get(t, "https://"+s.Domain+"/", "Germany", nil))
	if !strings.Contains(html, "cw-slot") || !strings.Contains(html, "cdn.contentpass.example/cw.js") {
		t.Fatal("third-party loader missing")
	}
	// The provider endpoint returns the iframe fragment.
	resp := get(t, "https://cdn.contentpass.example/cw.js?site="+s.Domain, "", nil)
	frag := body(t, resp)
	if !strings.Contains(frag, "cw-frame") || !strings.Contains(frag, "/frame?site="+s.Domain) {
		t.Fatalf("fragment = %q", frag)
	}
	// And the frame document contains the banner with both buttons.
	frame := body(t, get(t, "https://cdn.contentpass.example/frame?site="+s.Domain, "", nil))
	if !strings.Contains(frame, "cw-accept") || !strings.Contains(frame, "cw-subscribe") {
		t.Fatal("frame document incomplete")
	}
	if !strings.Contains(frame, "2,99") {
		t.Fatalf("SMP price missing from banner: %q", frame)
	}
}

func TestShadowDelivery(t *testing.T) {
	s := pickCookiewall(t, func(s *synthweb.Site) bool {
		return s.Provider.Name == "local" && s.Embedding.InShadow()
	})
	html := body(t, get(t, "https://"+s.Domain+"/", "Germany", nil))
	if !strings.Contains(html, "template shadowrootmode=") {
		t.Fatal("declarative shadow template missing")
	}
}

func TestProviderRejectsMismatchedSite(t *testing.T) {
	cp := pickCookiewall(t, func(s *synthweb.Site) bool {
		return s.Provider.Name == "contentpass"
	})
	// Asking freechoice's CDN for a contentpass site must 404.
	resp := get(t, "https://cdn.freechoice.example/cw.js?site="+cp.Domain, "", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestConsentFlow(t *testing.T) {
	s := pickCookiewall(t, func(s *synthweb.Site) bool {
		return s.Provider.Name == "local" && s.Embedding == synthweb.EmbedMainDOM
	})
	req := httptest.NewRequest(http.MethodPost, "https://"+s.Domain+"/consent",
		strings.NewReader("choice=accept"))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	testFarm.ServeHTTP(rec, req)
	resp := rec.Result()
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var consent *http.Cookie
	for _, c := range resp.Cookies() {
		if c.Name == "consent" {
			consent = c
		}
	}
	if consent == nil || consent.Value != "accepted" {
		t.Fatalf("consent cookie = %+v", consent)
	}

	// Post-consent page: banner gone, trackers present.
	html := body(t, get(t, "https://"+s.Domain+"/", "Germany", []*http.Cookie{consent}))
	if strings.Contains(html, "cw-banner") {
		t.Fatal("banner still shown after consent")
	}
	if !strings.Contains(html, "p.gif") {
		t.Fatal("no tracker pixels after consent")
	}
}

func TestRejectFlow(t *testing.T) {
	// Find a regular-banner filler site.
	var s *synthweb.Site
	for _, site := range testReg.Sites() {
		if site.Banner == synthweb.BannerRegular && !site.Decoy && site.Reachable {
			s = site
			break
		}
	}
	if s == nil {
		t.Fatal("no regular site")
	}
	req := httptest.NewRequest(http.MethodPost, "https://"+s.Domain+"/consent",
		strings.NewReader("choice=reject"))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	testFarm.ServeHTTP(rec, req)
	cookies := rec.Result().Cookies()
	if len(cookies) == 0 || cookies[0].Value != "rejected" {
		t.Fatalf("cookies = %+v", cookies)
	}
	html := body(t, get(t, "https://"+s.Domain+"/", "Germany", cookies))
	if strings.Contains(html, "cmp-banner") {
		t.Fatal("banner shown after reject")
	}
	if strings.Contains(html, "p.gif") {
		t.Fatal("trackers loaded after reject")
	}
}

func TestSMPSubscriptionFlow(t *testing.T) {
	s := pickCookiewall(t, func(s *synthweb.Site) bool {
		return s.Provider.Name == "contentpass"
	})
	// Buy a subscription at the portal.
	req := httptest.NewRequest(http.MethodPost, "https://contentpass.example/subscribe",
		strings.NewReader(url.Values{"email": {"crawler@measurement.example"}}.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	testFarm.ServeHTTP(rec, req)
	token := body(t, rec.Result())
	if token == "" || rec.Result().StatusCode != 200 {
		t.Fatalf("subscribe failed: %d %q", rec.Result().StatusCode, token)
	}

	// Log in on the partner site.
	req = httptest.NewRequest(http.MethodPost, "https://"+s.Domain+"/smp-login",
		strings.NewReader(url.Values{"token": {token}}.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec = httptest.NewRecorder()
	testFarm.ServeHTTP(rec, req)
	resp := rec.Result()
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("login status %d", resp.StatusCode)
	}
	var sub *http.Cookie
	for _, c := range resp.Cookies() {
		if c.Name == smp.SubscriptionCookieName {
			sub = c
		}
	}
	if sub == nil {
		t.Fatal("no subscription cookie")
	}

	// Subscriber page: no banner, no trackers, subscription badge.
	html := body(t, get(t, "https://"+s.Domain+"/", "Germany", []*http.Cookie{sub}))
	if strings.Contains(html, "cw-slot") || strings.Contains(html, "cw-banner") {
		t.Fatal("banner shown to subscriber")
	}
	if strings.Contains(html, "p.gif") {
		t.Fatal("trackers served to subscriber")
	}
	if !strings.Contains(html, "sub-badge") {
		t.Fatal("subscription badge missing")
	}
}

func TestSMPLoginRejectsBadToken(t *testing.T) {
	s := pickCookiewall(t, func(s *synthweb.Site) bool {
		return s.Provider.Name == "freechoice"
	})
	req := httptest.NewRequest(http.MethodPost, "https://"+s.Domain+"/smp-login",
		strings.NewReader(url.Values{"token": {"forged-token"}}.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	testFarm.ServeHTTP(rec, req)
	if rec.Result().StatusCode != http.StatusForbidden {
		t.Fatalf("status %d", rec.Result().StatusCode)
	}
}

func TestTrackerEndpoint(t *testing.T) {
	resp := get(t, "https://trackpix1.example/p.gif?site=a.de&n=3&o=6", "", nil)
	sc := resp.Header.Values("Set-Cookie")
	if len(sc) != 3 {
		t.Fatalf("set-cookie count = %d", len(sc))
	}
	if !strings.HasPrefix(sc[0], "tr06=") {
		t.Fatalf("cookie name = %q", sc[0])
	}
	if resp.Header.Get("Content-Type") != "image/gif" {
		t.Fatal("wrong content type")
	}
}

func TestTrackerEndpointClampsN(t *testing.T) {
	resp := get(t, "https://trackpix1.example/p.gif?n=9999", "", nil)
	if len(resp.Header.Values("Set-Cookie")) != 0 {
		t.Fatal("absurd n must be clamped")
	}
}

func TestTransportErrors(t *testing.T) {
	rt := testFarm.Transport()
	// Unknown host.
	req := httptest.NewRequest(http.MethodGet, "https://no-such-host.invalid/", nil)
	if _, err := rt.RoundTrip(req); err == nil {
		t.Fatal("unknown host must error")
	}
	// Unreachable site.
	var unreachable *synthweb.Site
	for _, s := range testReg.Sites() {
		if !s.Reachable {
			unreachable = s
			break
		}
	}
	if unreachable == nil {
		t.Fatal("no unreachable site in registry")
	}
	req = httptest.NewRequest(http.MethodGet, "https://"+unreachable.Domain+"/", nil)
	_, err := rt.RoundTrip(req)
	he, ok := err.(*HostError)
	if !ok || he.Reason != "unreachable" {
		t.Fatalf("err = %v", err)
	}
	// Reachable site round-trips.
	req = httptest.NewRequest(http.MethodGet, "https://"+testReg.TargetList()[0]+"/", nil)
	req.Header.Set(vantage.GeoHeader, "Germany")
	resp, err := rt.RoundTrip(req)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("round trip: %v %v", err, resp)
	}
}

func TestVisitJitterIsDeterministic(t *testing.T) {
	s := pickCookiewall(t, func(s *synthweb.Site) bool { return s.Provider.Name == "local" })
	consent := &http.Cookie{Name: "consent", Value: "accepted"}
	load := func(visit string) string {
		req := httptest.NewRequest(http.MethodGet, "https://"+s.Domain+"/", nil)
		req.Header.Set(vantage.GeoHeader, "Germany")
		req.Header.Set(vantage.VisitHeader, visit)
		req.AddCookie(consent)
		rec := httptest.NewRecorder()
		testFarm.ServeHTTP(rec, req)
		return rec.Body.String()
	}
	if load("Germany|1") != load("Germany|1") {
		t.Fatal("same visit must render identically")
	}
	if load("Germany|1") == load("Germany|2") {
		t.Fatal("different repetitions should differ (jitter)")
	}
}

func TestDecoyBannerText(t *testing.T) {
	var decoy *synthweb.Site
	for _, s := range testReg.Sites() {
		if s.Decoy {
			decoy = s
			break
		}
	}
	html := body(t, get(t, "https://"+decoy.Domain+"/", "Germany", nil))
	if !strings.Contains(html, "cmp-reject") {
		t.Fatal("decoy must keep its reject button (it IS a regular banner)")
	}
	if !strings.Contains(html, "1,99 €") || !strings.Contains(html, "abonnieren") {
		t.Fatal("decoy promo text missing — no false positive possible")
	}
}

func TestQuirkMarkup(t *testing.T) {
	var anti, scroll *synthweb.Site
	for _, s := range testReg.CookiewallSites() {
		if s.AntiAdblock {
			anti = s
		}
		if s.ScrollLock {
			scroll = s
		}
	}
	if anti == nil || scroll == nil {
		t.Fatal("quirk sites missing")
	}
	h1 := body(t, get(t, "https://"+anti.Domain+"/", "Germany", nil))
	if !strings.Contains(h1, "data-cw-if-blocked") {
		t.Fatal("anti-adblock plea missing")
	}
	h2 := body(t, get(t, "https://"+scroll.Domain+"/", "Germany", nil))
	if !strings.Contains(h2, "data-scroll-lock-if-blocked") {
		t.Fatal("scroll-lock directive missing")
	}
}

func TestPortalPage(t *testing.T) {
	html := body(t, get(t, "https://contentpass.example/", "", nil))
	if !strings.Contains(html, "contentpass") || !strings.Contains(html, "2,99") {
		t.Fatal("portal page incomplete")
	}
}

func TestFormatAmount(t *testing.T) {
	cases := []struct {
		amount float64
		code   string
		lang   string
		want   string
	}{
		{2.99, "EUR", "de", "2,99 €"},
		{2.99, "EUR", "en", "2.99 €"},
		{4, "AUD", "en", "A$4"},
		{34, "SEK", "da", "34 kr"},
		{35.88, "EUR", "de", "35,88 €"},
		{2.5, "USD", "en", "$2.50"},
		{1.99, "GBP", "en", "£1.99"},
		{9.9, "BRL", "pt", "R$9,90"},
		{99, "INR", "en", "Rs. 99"},
		{4.9, "CHF", "de", "CHF 4,90"},
		{49, "ZAR", "af", "R49"},
		{25, "CNY", "en", "¥25"},
		{7, "XXX", "en", "7 XXX"},
	}
	for _, c := range cases {
		if got := formatAmount(c.amount, c.code, c.lang); got != c.want {
			t.Errorf("formatAmount(%g,%s,%s) = %q, want %q",
				c.amount, c.code, c.lang, got, c.want)
		}
	}
}

func TestPortalErrorPaths(t *testing.T) {
	// Missing email.
	req := httptest.NewRequest(http.MethodPost, "https://contentpass.example/subscribe",
		strings.NewReader(""))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	testFarm.ServeHTTP(rec, req)
	if rec.Result().StatusCode != http.StatusBadRequest {
		t.Fatalf("empty email: %d", rec.Result().StatusCode)
	}
	// Unknown portal path.
	resp := get(t, "https://contentpass.example/nothing", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %d", resp.StatusCode)
	}
}

func TestProviderUnknownPath(t *testing.T) {
	cp := pickCookiewall(t, func(s *synthweb.Site) bool {
		return s.Provider.Name == "contentpass"
	})
	resp := get(t, "https://cdn.contentpass.example/other?site="+cp.Domain, "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestSMPLoginOnNonPartner(t *testing.T) {
	local := pickCookiewall(t, func(s *synthweb.Site) bool {
		return s.Provider.Name == "local"
	})
	req := httptest.NewRequest(http.MethodPost, "https://"+local.Domain+"/smp-login",
		strings.NewReader("token=whatever"))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	testFarm.ServeHTTP(rec, req)
	if rec.Result().StatusCode != http.StatusNotFound {
		t.Fatalf("non-partner login: %d", rec.Result().StatusCode)
	}
}

func TestUnknownHost404(t *testing.T) {
	resp := get(t, "https://unregistered.invalid/", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	site := testReg.TargetList()[0]
	req := httptest.NewRequest(http.MethodDelete, "https://"+site+"/", nil)
	rec := httptest.NewRecorder()
	testFarm.ServeHTTP(rec, req)
	if rec.Result().StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", rec.Result().StatusCode)
	}
}

func TestBotSensitiveSiteHidesBanner(t *testing.T) {
	var bot *synthweb.Site
	for _, s := range testReg.Sites() {
		if s.BotSensitive && s.Reachable && len(s.ShowToVPs) == 0 &&
			s.Embedding == synthweb.EmbedMainDOM {
			bot = s
			break
		}
	}
	if bot == nil {
		t.Skip("no bot-sensitive site at this scale/seed")
	}
	// Naive crawler UA: banner hidden.
	req := httptest.NewRequest(http.MethodGet, "https://"+bot.Domain+"/", nil)
	req.Header.Set(vantage.GeoHeader, "Germany")
	req.Header.Set("User-Agent", "cookiewalk-bot/1.0")
	rec := httptest.NewRecorder()
	testFarm.ServeHTTP(rec, req)
	if strings.Contains(rec.Body.String(), "cmp-banner") {
		t.Fatal("bot-sensitive site showed banner to crawler UA")
	}
	// Browser-like UA: banner shown.
	req = httptest.NewRequest(http.MethodGet, "https://"+bot.Domain+"/", nil)
	req.Header.Set(vantage.GeoHeader, "Germany")
	req.Header.Set("User-Agent", "Mozilla/5.0 (X11; Linux x86_64; rv:102.0) Gecko/20100101 Firefox/102.0")
	rec = httptest.NewRecorder()
	testFarm.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "cmp-banner") {
		t.Fatal("bot-sensitive site hid banner from browser UA")
	}
}
