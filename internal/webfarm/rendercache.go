package webfarm

import (
	"net/http"
	"sync"

	"cookiewalk/internal/xrand"
)

// renderCache memoizes rendered documents. Page, banner-fragment and
// banner-document renders are pure functions of a small key — the
// site, the consent state, whether the banner is shown to this
// visitor, and the per-visit jitter label when tracker embeds are on
// the page — so a landscape crawl that visits every site from eight
// vantage points re-renders each distinct page once instead of eight
// times. The cache stores the exact rendered string, which makes
// cached and uncached output byte-identical by construction.
//
// Each entry also carries the render's content fingerprint (a stable
// hash of the body bytes), computed once when the entry is stored.
// The transport hands that fingerprint to the emulated browser so the
// analysis layer can memoize per distinct page without ever hashing a
// cached body again; plain HTTP clients recompute the identical hash
// from the bytes they read (see render.fp).
//
// The map is sharded to keep worker contention negligible and bounded
// per shard: a shard that grows past renderShardMax entries is simply
// reset (the next render repopulates it), so memory stays bounded
// without any eviction bookkeeping that could affect results.
type renderCache struct {
	shards [renderShards]renderShard
}

const (
	renderShards = 64
	// renderShardMax bounds entries per shard (≈260k entries across the
	// cache, comfortably above a full-scale crawl's working set of
	// ~2 variants × 45k sites spread over 64 shards).
	renderShardMax = 4096
)

type renderShard struct {
	mu sync.RWMutex
	m  map[renderKey]render
	// _ pads the shard to a full 64-byte cache line (RWMutex 24 + map
	// header 8 = 32), so adjacent shards' locks never false-share a line
	// when different workers hammer neighbouring shards.
	_ [32]byte
}

// render is one cached rendered document.
type render struct {
	body string
	// fp is bodyHash(body), memoized here so repeat requests for a
	// cached render never rehash multi-kilobyte pages. It is a pure
	// function of the bytes: any reader of the same body — including a
	// real-listener HTTP client hashing what it downloaded — arrives at
	// the same value.
	fp uint64
	// header is the complete, SHARED response header for page renders
	// (Content-Type plus the state's first-party Set-Cookie values) —
	// like the body, a pure function of the render key, built once and
	// adopted read-only by the in-process transport's recorder on every
	// repeat request. nil for fragment/banner-document renders, whose
	// handlers set their one Content-Type themselves. Consumers must
	// never mutate it.
	header http.Header
}

// bodyHash is the canonical content hash shared by the render cache,
// the transport's response tagging and (via the same xrand.Hash64)
// the emulated browser's plain-RoundTripper fallback.
func bodyHash(body string) uint64 { return xrand.Hash64(body) }

// renderKind says which renderer produced an entry.
type renderKind uint8

const (
	kindPage renderKind = iota
	kindFragmentLocal
	kindFragmentProvider
	kindBannerDoc
)

// Page-state flags folded into the key. Everything else a request
// carries (vantage point, bot UA, rejected consent) influences the
// render only through showBanner(), which flagBanner captures.
const (
	flagBanner uint8 = 1 << iota
	flagConsented
	flagSubscribed
)

type renderKey struct {
	domain string
	kind   renderKind
	flags  uint8
	// visit is the jitter label, retained only when the render embeds
	// jittered tracker counts (consented/subscribed pages).
	visit string
}

func (c *renderCache) shard(k renderKey) *renderShard {
	h := fnv32(k.domain)
	if k.visit != "" {
		h = h*31 ^ fnv32(k.visit)
	}
	h ^= uint32(k.kind)<<8 ^ uint32(k.flags)
	return &c.shards[h%renderShards]
}

func (c *renderCache) get(k renderKey) (render, bool) {
	s := c.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// put stores a freshly rendered body (and, for page renders, its
// prebuilt response header) and returns the entry with its memoized
// content fingerprint.
func (c *renderCache) put(k renderKey, body string, header http.Header) render {
	v := render{body: body, fp: bodyHash(body), header: header}
	s := c.shard(k)
	s.mu.Lock()
	if s.m == nil || len(s.m) >= renderShardMax {
		s.m = make(map[renderKey]render, 64)
	}
	s.m[k] = v
	s.mu.Unlock()
	return v
}

// fnv32 is the FNV-1a hash, inlined to keep shard selection
// allocation-free.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
