package webfarm

import "sync"

// renderCache memoizes rendered documents. Page, banner-fragment and
// banner-document renders are pure functions of a small key — the
// site, the consent state, whether the banner is shown to this
// visitor, and the per-visit jitter label when tracker embeds are on
// the page — so a landscape crawl that visits every site from eight
// vantage points re-renders each distinct page once instead of eight
// times. The cache stores the exact rendered string, which makes
// cached and uncached output byte-identical by construction.
//
// The map is sharded to keep worker contention negligible and bounded
// per shard: a shard that grows past renderShardMax entries is simply
// reset (the next render repopulates it), so memory stays bounded
// without any eviction bookkeeping that could affect results.
type renderCache struct {
	shards [renderShards]renderShard
}

const (
	renderShards = 64
	// renderShardMax bounds entries per shard (≈260k entries across the
	// cache, comfortably above a full-scale crawl's working set of
	// ~2 variants × 45k sites spread over 64 shards).
	renderShardMax = 4096
)

type renderShard struct {
	mu sync.RWMutex
	m  map[renderKey]string
}

// renderKind says which renderer produced an entry.
type renderKind uint8

const (
	kindPage renderKind = iota
	kindFragmentLocal
	kindFragmentProvider
	kindBannerDoc
)

// Page-state flags folded into the key. Everything else a request
// carries (vantage point, bot UA, rejected consent) influences the
// render only through showBanner(), which flagBanner captures.
const (
	flagBanner uint8 = 1 << iota
	flagConsented
	flagSubscribed
)

type renderKey struct {
	domain string
	kind   renderKind
	flags  uint8
	// visit is the jitter label, retained only when the render embeds
	// jittered tracker counts (consented/subscribed pages).
	visit string
}

func (c *renderCache) shard(k renderKey) *renderShard {
	h := fnv32(k.domain)
	if k.visit != "" {
		h = h*31 ^ fnv32(k.visit)
	}
	h ^= uint32(k.kind)<<8 ^ uint32(k.flags)
	return &c.shards[h%renderShards]
}

func (c *renderCache) get(k renderKey) (string, bool) {
	s := c.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

func (c *renderCache) put(k renderKey, v string) {
	s := c.shard(k)
	s.mu.Lock()
	if s.m == nil || len(s.m) >= renderShardMax {
		s.m = make(map[renderKey]string, 64)
	}
	s.m[k] = v
	s.mu.Unlock()
}

// fnv32 is the FNV-1a hash, inlined to keep shard selection
// allocation-free.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
