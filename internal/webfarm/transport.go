package webfarm

import (
	"fmt"
	"net/http"
	"net/http/httptest"
)

// Transport returns an http.RoundTripper that dispatches requests to
// the farm in-process — no sockets, no DNS — so a 45k-site × 8-VP crawl
// finishes in seconds. Unknown hosts behave like NXDOMAIN and
// unreachable sites like connection timeouts: the RoundTripper returns
// an error, exactly what a real crawler's HTTP client would surface.
//
// The returned transport also implements the emulated browser's
// zero-copy fast path (RoundTripBody): the handler's response body is
// handed over as a string — usually the farm's cached render, shared
// unsliced — skipping the httptest recorder, the http.Response
// reconstruction and the io.ReadAll round trip entirely. RoundTrip
// remains as the compatibility path for plain net/http clients;
// cmd/webfarm serves the identical handler on a real listener for
// interactive exploration.
func (f *Farm) Transport() http.RoundTripper {
	return &inProcessTransport{farm: f}
}

type inProcessTransport struct {
	farm *Farm
}

// HostError is the transport-level failure for unknown or unreachable
// hosts.
type HostError struct {
	Host string
	// Reason is "no such host" or "unreachable".
	Reason string
}

// Error implements the error interface.
func (e *HostError) Error() string {
	return fmt.Sprintf("webfarm: %s: %s", e.Host, e.Reason)
}

// resolve applies the NXDOMAIN/timeout emulation shared by both
// round-trip paths.
func (t *inProcessTransport) resolve(req *http.Request) error {
	host := req.Host
	if host == "" {
		host = req.URL.Host
	}
	known, reachable := t.farm.KnownHost(host)
	if !known {
		return &HostError{Host: host, Reason: "no such host"}
	}
	if !reachable {
		return &HostError{Host: host, Reason: "unreachable"}
	}
	return nil
}

func (t *inProcessTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := t.resolve(req); err != nil {
		return nil, err
	}
	rec := httptest.NewRecorder()
	t.farm.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// RoundTripBody is the allocation-lean dispatch path: the response body
// comes back as a string with no recorder, reader or double copy in
// between, plus the body's stable content fingerprint when the handler
// served a cached render (the render cache's memoized hash, tagged with
// zero per-request hashing). Untagged responses — portal pages,
// redirects, errors — return fp 0 and the caller hashes the bytes
// lazily if it ever needs the token; the resulting value equals
// bodyHash(body) either way, which is exactly what a plain-HTTP client
// computes from the bytes it reads — so analysis memoization keys agree
// across deployment modes. It matches the structural interface the
// emulated browser probes for.
func (t *inProcessTransport) RoundTripBody(req *http.Request) (status int, header http.Header, body string, fp uint64, err error) {
	if err := t.resolve(req); err != nil {
		return 0, nil, "", 0, err
	}
	var rec fastRecorder
	t.farm.ServeHTTP(&rec, req)
	return rec.status(), rec.header, rec.body(), rec.tag, nil
}

// fastRecorder is a minimal http.ResponseWriter that captures status,
// headers and body. Handlers that write their whole body with a single
// io.WriteString (the farm's page handlers do — their bodies come from
// the render cache) hand the string through without any copy.
type fastRecorder struct {
	header http.Header
	// adopted marks header as a SHARED map handed over by AdoptHeader —
	// owned by the farm's render cache, served to every request hitting
	// the same render. Header() clones it before exposing it for
	// mutation; the response path only ever reads it.
	adopted bool
	code    int
	str     string // body when captured from a single WriteString
	buf     []byte // accumulation fallback
	// tag is the body's memoized content fingerprint, set via TagBody
	// by handlers serving cached renders. Any write after the tag
	// invalidates it: the tag must describe the complete body.
	tag uint64
}

// TagBody implements the farm's bodyTagger: fp is the memoized
// bodyHash of everything written so far (in practice: the single
// cached render the handler just wrote).
func (r *fastRecorder) TagBody(fp uint64) { r.tag = fp }

// AdoptHeader implements the farm's headerAdopter: the complete
// response header arrives as one shared, read-only map — zero Add
// calls, zero per-request header allocation. RoundTripBody returns it
// directly; the emulated browser only reads response headers.
func (r *fastRecorder) AdoptHeader(h http.Header) {
	r.header = h
	r.adopted = h != nil
}

// Header implements http.ResponseWriter. An adopted (shared) header is
// deep-cloned on first access: Header() callers expect a map they may
// mutate, and the shared original must stay frozen.
func (r *fastRecorder) Header() http.Header {
	if r.adopted {
		r.header = r.header.Clone()
		r.adopted = false
	}
	if r.header == nil {
		r.header = make(http.Header, 4)
	}
	return r.header
}

// WriteHeader implements http.ResponseWriter; like the real server,
// only the first call sticks.
func (r *fastRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

// Write implements io.Writer.
func (r *fastRecorder) Write(p []byte) (int, error) {
	r.WriteHeader(http.StatusOK)
	r.tag = 0
	r.flattenStr()
	r.buf = append(r.buf, p...)
	return len(p), nil
}

// WriteString implements io.StringWriter; the first write on a
// response is retained as-is, with no copy.
func (r *fastRecorder) WriteString(s string) (int, error) {
	r.WriteHeader(http.StatusOK)
	r.tag = 0
	if r.str == "" && r.buf == nil {
		r.str = s
		return len(s), nil
	}
	r.flattenStr()
	r.buf = append(r.buf, s...)
	return len(s), nil
}

// flattenStr moves a previously captured zero-copy string into the
// byte buffer when more writes follow.
func (r *fastRecorder) flattenStr() {
	if r.str != "" {
		r.buf = append(r.buf, r.str...)
		r.str = ""
	}
}

func (r *fastRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

func (r *fastRecorder) body() string {
	if r.str != "" {
		return r.str
	}
	return string(r.buf)
}
