package webfarm

import (
	"fmt"
	"net/http"
	"net/http/httptest"
)

// Transport returns an http.RoundTripper that dispatches requests to
// the farm in-process — no sockets, no DNS — so a 45k-site × 8-VP crawl
// finishes in seconds. Unknown hosts behave like NXDOMAIN and
// unreachable sites like connection timeouts: the RoundTripper returns
// an error, exactly what a real crawler's HTTP client would surface.
//
// cmd/webfarm serves the identical handler on a real listener for
// interactive exploration.
func (f *Farm) Transport() http.RoundTripper {
	return &inProcessTransport{farm: f}
}

type inProcessTransport struct {
	farm *Farm
}

// HostError is the transport-level failure for unknown or unreachable
// hosts.
type HostError struct {
	Host string
	// Reason is "no such host" or "unreachable".
	Reason string
}

// Error implements the error interface.
func (e *HostError) Error() string {
	return fmt.Sprintf("webfarm: %s: %s", e.Host, e.Reason)
}

func (t *inProcessTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.Host
	if host == "" {
		host = req.URL.Host
	}
	known, reachable := t.farm.KnownHost(host)
	if !known {
		return nil, &HostError{Host: host, Reason: "no such host"}
	}
	if !reachable {
		return nil, &HostError{Host: host, Reason: "unreachable"}
	}
	rec := httptest.NewRecorder()
	t.farm.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}
