package webfarm

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"cookiewalk/internal/smp"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/trackdb"
	"cookiewalk/internal/vantage"
)

// Farm is the http.Handler serving the entire synthetic web: every
// registered site, the SMP portals and CDNs, CMP hosts, tracker hosts
// and benign CDNs. It is stateless per request (all state lives in the
// visitor's cookies), so it is safe for arbitrary concurrency.
type Farm struct {
	reg  *synthweb.Registry
	seed uint64
	// renders memoizes deterministic page/banner renders; see
	// rendercache.go.
	renders renderCache

	trackerPool []string
	benignPool  []string
	trackers    map[string]bool
	benign      map[string]bool
	// providerHosts maps delivery host -> provider name.
	providerHosts map[string]string
	// portals maps SMP apex domain -> platform.
	portals map[string]smp.Platform
}

// New builds a Farm for a registry.
func New(reg *synthweb.Registry) *Farm {
	f := &Farm{
		reg:           reg,
		seed:          reg.Config().Seed,
		trackerPool:   trackdb.TrackerPool(),
		benignPool:    trackdb.BenignPool(),
		trackers:      map[string]bool{},
		benign:        map[string]bool{},
		providerHosts: map[string]string{},
		portals:       map[string]smp.Platform{},
	}
	for _, d := range f.trackerPool {
		f.trackers[d] = true
	}
	for _, d := range f.benignPool {
		f.benign[d] = true
	}
	for _, name := range []string{"contentpass", "freechoice", "opencmp",
		"consentmango", "usercentrade", "cwkit", "purabo", "adfreepass",
		"nichewall", "tinycmp"} {
		p, ok := synthweb.ProviderByName(name)
		if !ok || p.Host == "" {
			continue
		}
		f.providerHosts[p.Host] = p.Name
	}
	for _, p := range smp.Platforms() {
		f.portals[p.Domain] = p
	}
	return f
}

// Registry returns the farm's backing registry.
func (f *Farm) Registry() *synthweb.Registry { return f.reg }

// bodyTagger is implemented by the in-process transport's recorder:
// handlers that serve a memoized render attach its content fingerprint
// so RoundTripBody can return it without rehashing the body. Writers
// that do not implement it (httptest recorders, the real listener's
// http.ResponseWriter) silently skip the tag — those clients derive
// the identical fingerprint by hashing the bytes they read.
type bodyTagger interface {
	TagBody(fp uint64)
}

// writeRender writes a cached render and tags the writer with the
// render's memoized content fingerprint when supported.
func writeRender(w http.ResponseWriter, r render) {
	io.WriteString(w, r.body)
	if t, ok := w.(bodyTagger); ok {
		t.TagBody(r.fp)
	}
}

// KnownHost reports whether the farm serves the host at all, and
// whether it is currently reachable. Unknown hosts and unreachable
// sites produce transport-level errors, like DNS failures and timeouts
// do for a real crawler.
func (f *Farm) KnownHost(host string) (known, reachable bool) {
	h := canonHost(host)
	if f.trackers[h] || f.benign[h] || f.providerHosts[h] != "" {
		return true, true
	}
	if _, ok := f.portals[h]; ok {
		return true, true
	}
	if s, ok := f.reg.Site(h); ok {
		return true, s.Reachable
	}
	return false, false
}

func canonHost(h string) string {
	h = strings.ToLower(h)
	if i := strings.IndexByte(h, ':'); i >= 0 {
		h = h[:i]
	}
	return strings.TrimSuffix(h, ".")
}

// ServeHTTP routes by Host header.
func (f *Farm) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	host := canonHost(r.Host)
	switch {
	case f.trackers[host]:
		f.serveTracker(w, r, "tr")
	case f.benign[host]:
		f.serveTracker(w, r, "bc")
	case f.providerHosts[host] != "":
		f.serveProvider(w, r, f.providerHosts[host])
	default:
		if p, ok := f.portals[host]; ok {
			f.servePortal(w, r, p)
			return
		}
		if s, ok := f.reg.Site(host); ok {
			f.serveSite(w, r, s)
			return
		}
		http.NotFound(w, r)
	}
}

// --- tracker & benign hosts ------------------------------------------------

// serveTracker sets n cookies (names prefixed tr/bc, indexed from o)
// and returns a pixel. The cookie count is how Figures 4 and 5 are
// physically realized.
func (f *Farm) serveTracker(w http.ResponseWriter, r *http.Request, prefix string) {
	q := r.URL.Query()
	n, _ := strconv.Atoi(q.Get("n"))
	o, _ := strconv.Atoi(q.Get("o"))
	if n < 0 || n > 64 {
		n = 0
	}
	for j := 0; j < n; j++ {
		w.Header().Add("Set-Cookie",
			fmt.Sprintf("%s%02d=%s; Path=/; Max-Age=31536000", prefix, o+j, q.Get("site")))
	}
	w.Header().Set("Content-Type", "image/gif")
	w.Header().Set("Cache-Control", "no-store")
	writeRender(w, gifPixel)
}

// gifPixel is the constant tracker response with its fingerprint
// computed once — trackers answer thousands of requests per campaign.
var gifPixel = render{body: "GIF89a", fp: bodyHash("GIF89a")}

// --- provider hosts ---------------------------------------------------------

// serveProvider handles the CMP/SMP delivery endpoints: /cw.js returns
// the injectable banner fragment, /frame the iframe banner document.
func (f *Farm) serveProvider(w http.ResponseWriter, r *http.Request, providerName string) {
	site, ok := f.reg.Site(canonHost(r.URL.Query().Get("site")))
	if !ok || site.Provider.Name != providerName || site.Banner != synthweb.BannerCookiewall {
		http.NotFound(w, r)
		return
	}
	switch r.URL.Path {
	case "/cw.js":
		// The "script" response is the declarative banner fragment the
		// emulated browser injects (substitution for JS execution).
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeRender(w, f.bannerFragment(site, site.Provider.Host))
	case "/frame":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeRender(w, f.bannerDocument(site))
	default:
		http.NotFound(w, r)
	}
}

// --- SMP portals -------------------------------------------------------------

// servePortal handles the subscription platform's own website:
// GET / is the marketing page, POST /subscribe creates an account and
// returns its token (the §4.4 "buy a one-month subscription" step).
func (f *Farm) servePortal(w http.ResponseWriter, r *http.Request, p smp.Platform) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<!DOCTYPE html><html lang="de"><head><title>%s</title></head><body>
<h1>%s</h1><p>Alle Partnerseiten werbefrei und ohne Tracking für %s €/Monat.</p>
<form method="post" action="/subscribe"><input name="email"><button>Jetzt abonnieren</button></form>
</body></html>`, p.Name, p.Name, strings.Replace(fmt.Sprintf("%.2f", p.MonthlyPriceEUR), ".", ",", 1))
	case r.Method == http.MethodPost && r.URL.Path == "/subscribe":
		if err := r.ParseForm(); err != nil {
			http.Error(w, "bad form", http.StatusBadRequest)
			return
		}
		email := r.PostForm.Get("email")
		if email == "" {
			http.Error(w, "email required", http.StatusBadRequest)
			return
		}
		acct, err := f.reg.SMP.Subscribe(p.Name, email)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, acct.Token)
	default:
		http.NotFound(w, r)
	}
}

// --- sites --------------------------------------------------------------------

func (f *Farm) serveSite(w http.ResponseWriter, r *http.Request, s *synthweb.Site) {
	if !s.Reachable {
		// Normally intercepted at the transport; defense in depth.
		http.Error(w, "unreachable", http.StatusServiceUnavailable)
		return
	}
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/consent":
		f.handleConsent(w, r)
	case r.Method == http.MethodPost && r.URL.Path == "/smp-login":
		f.handleSMPLogin(w, r, s)
	case r.Method == http.MethodGet && r.URL.Path == "/cw-frame.html":
		if s.Banner == synthweb.BannerNone {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeRender(w, f.bannerDocument(s))
	case r.Method == http.MethodGet:
		f.handlePage(w, r, s)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (f *Farm) handleConsent(w http.ResponseWriter, r *http.Request) {
	choice := "accepted"
	if err := r.ParseForm(); err == nil && r.PostForm.Get("choice") == "reject" {
		choice = "rejected"
	}
	http.SetCookie(w, &http.Cookie{
		Name: "consent", Value: choice, Path: "/", MaxAge: 31536000,
	})
	w.Header().Set("Location", "/")
	w.WriteHeader(http.StatusSeeOther)
}

func (f *Farm) handleSMPLogin(w http.ResponseWriter, r *http.Request, s *synthweb.Site) {
	platform, ok := f.reg.SMP.PlatformOf(s.Domain)
	if !ok {
		// Independent cookiewalls take the user to their own checkout;
		// we model that as an unimplemented flow.
		http.Error(w, "no subscription platform", http.StatusNotFound)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, "bad form", http.StatusBadRequest)
		return
	}
	token := r.PostForm.Get("token")
	if !f.reg.SMP.ValidateToken(platform.Name, token) {
		http.Error(w, "invalid subscription token", http.StatusForbidden)
		return
	}
	http.SetCookie(w, &http.Cookie{
		Name: smp.SubscriptionCookieName, Value: token, Path: "/", MaxAge: 2592000,
	})
	w.Header().Set("Location", "/")
	w.WriteHeader(http.StatusSeeOther)
}

// headerAdopter is implemented by the in-process transport's recorder:
// a handler whose complete response header is memoized (the page
// handler's, cached alongside its render) hands the shared header over
// wholesale instead of rebuilding it Add-by-Add per request. Adopted
// headers are shared across requests and must never be mutated.
type headerAdopter interface {
	AdoptHeader(h http.Header)
}

func (f *Farm) handlePage(w http.ResponseWriter, r *http.Request, s *synthweb.Site) {
	st := pageState{
		site:   s,
		vpName: r.Header.Get(vantage.GeoHeader),
		visit:  r.Header.Get(vantage.VisitHeader),
		botUA:  looksLikeBot(r.Header.Get("User-Agent")),
	}
	if c, err := r.Cookie("consent"); err == nil {
		st.consented = c.Value == "accepted"
		st.rejected = c.Value == "rejected"
	}
	if c, err := r.Cookie(smp.SubscriptionCookieName); err == nil {
		if platform, ok := f.reg.SMP.PlatformOf(s.Domain); ok {
			st.subscribed = f.reg.SMP.ValidateToken(platform.Name, c.Value)
		}
	}

	// The page's full response header — first-party Set-Cookie values
	// and Content-Type — is a pure function of the render key, cached
	// with the render itself: the in-process recorder adopts it shared,
	// plain writers (httptest, the real listener) get a copy.
	page := f.renderSitePage(st)
	if a, ok := w.(headerAdopter); ok {
		a.AdoptHeader(page.header)
	} else {
		dst := w.Header()
		for k, vs := range page.header {
			dst[k] = append(dst[k], vs...)
		}
	}
	writeRender(w, page)
}

// pageHeader builds the complete response header for a page render —
// the memoized counterpart of what setFirstPartyCookies plus the
// Content-Type Set used to assemble per request.
func (f *Farm) pageHeader(st pageState) http.Header {
	h := http.Header{"Content-Type": {"text/html; charset=utf-8"}}
	f.setFirstPartyCookies(h, st)
	return h
}

// fpCookieVals precomputes the full Set-Cookie values for the indexed
// first-party cookies — every page view of every site emits a few, so
// formatting them per request would dominate the header path.
var fpCookieVals = func() map[string][]string {
	m := make(map[string][]string, 3)
	for _, prefix := range []string{"sess", "subp", "pref"} {
		vals := make([]string, 64)
		for i := range vals {
			vals[i] = fmt.Sprintf("%s_%02d=1; Path=/; Max-Age=604800", prefix, i)
		}
		m[prefix] = vals
	}
	return m
}()

// setFirstPartyCookies emits the Set-Cookie headers that realize the
// site's first-party profile for the current state.
func (f *Farm) setFirstPartyCookies(h http.Header, st pageState) {
	s := st.site
	set := func(prefix string, i int) {
		vals := fpCookieVals[prefix]
		if i < len(vals) {
			h.Add("Set-Cookie", vals[i])
			return
		}
		h.Add("Set-Cookie",
			fmt.Sprintf("%s_%02d=1; Path=/; Max-Age=604800", prefix, i))
	}
	for i := 0; i < s.Cookies.PreConsentFP; i++ {
		set("sess", i)
	}
	switch {
	case st.subscribed:
		// Total first-party target SubFP: the subscription cookie plus
		// session cookies count toward it.
		extra := f.jitter(s.Cookies.SubFP, s.Domain, st.visit, "sub-fp") -
			s.Cookies.PreConsentFP - 1
		for i := 0; i < extra; i++ {
			set("subp", i)
		}
	case st.consented:
		extra := f.jitter(s.Cookies.PostFP, s.Domain, st.visit, "fp") -
			s.Cookies.PreConsentFP - 1 // consent cookie itself is first-party
		for i := 0; i < extra; i++ {
			set("pref", i)
		}
	}
}
