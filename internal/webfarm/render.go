package webfarm

import (
	"fmt"
	"strings"

	"cookiewalk/internal/categorize"
	"cookiewalk/internal/htmlx"
	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/xrand"
)

// pageState is everything the renderer needs for one site request.
type pageState struct {
	site       *synthweb.Site
	vpName     string // visitor's vantage point ("" = unknown region)
	visit      string // jitter label ("" = no jitter)
	consented  bool
	rejected   bool
	subscribed bool
	// botUA marks crawler-looking user agents; bot-sensitive sites
	// hide their banner from them (§3 limitation).
	botUA bool
}

// showBanner decides whether this request gets a banner.
func (st pageState) showBanner() bool {
	if st.consented || st.rejected || st.subscribed {
		return false
	}
	if st.site.Banner == synthweb.BannerNone {
		return false
	}
	if st.site.BotSensitive && st.botUA {
		return false
	}
	if len(st.site.ShowToVPs) == 0 {
		return true
	}
	return st.site.ShowsBannerTo(st.vpName)
}

// botMarkers are the automation substrings of the farm's naive crawler
// fingerprint, matched case-insensitively.
var botMarkers = []string{"bot", "crawl", "spider", "headless", "measurement", "cookiewalk"}

// looksLikeBot is the farm's naive crawler fingerprint: empty UA or
// one containing the usual automation markers. OpenWPM mitigates this
// in the paper; our emulated browser can impersonate either side.
// Matching scans in place — strings.ToLower on every page request's UA
// was a per-visit allocation for nothing (the markers are ASCII).
func looksLikeBot(ua string) bool {
	if ua == "" {
		return true
	}
	for _, marker := range botMarkers {
		if containsFold(ua, marker) {
			return true
		}
	}
	return false
}

// containsFold reports whether s contains substr under ASCII
// case-folding. substr must be lower-case ASCII (the bot markers are).
func containsFold(s, substr string) bool {
	n := len(substr)
	if n == 0 {
		return true
	}
	for i := 0; i+n <= len(s); i++ {
		j := 0
		for j < n {
			c := s[i+j]
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != substr[j] {
				break
			}
			j++
		}
		if j == n {
			return true
		}
	}
	return false
}

// renderSitePage produces the full HTML document for a site visit,
// memoized per (site, banner visibility, consent state, jitter label):
// every request field the renderer reads is captured by that key, so
// the cached string is byte-identical to a fresh render. The returned
// entry carries the body's memoized content fingerprint for the
// transport to hand to analysis-memoizing clients.
func (f *Farm) renderSitePage(st pageState) render {
	key := renderKey{domain: st.site.Domain, kind: kindPage}
	if st.showBanner() {
		key.flags |= flagBanner
	}
	if st.consented {
		key.flags |= flagConsented
	}
	if st.subscribed {
		key.flags |= flagSubscribed
	}
	if st.consented || st.subscribed {
		// Only consent/subscription pages embed jittered tracker counts;
		// everywhere else the visit label does not reach the renderer.
		key.visit = st.visit
	}
	if page, ok := f.renders.get(key); ok {
		return page
	}
	return f.renders.put(key, f.renderSitePageUncached(st), f.pageHeader(st))
}

func (f *Farm) renderSitePageUncached(st pageState) string {
	s := st.site
	t := textFor(s.Language)
	kw := keywordsFor(s)
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"")
	b.WriteString(s.Language)
	b.WriteString("\">\n<head><meta charset=\"utf-8\"><title>")
	b.WriteString(htmlx.EscapeText(siteTitle(s)))
	b.WriteString("</title></head>\n<body")
	if s.ScrollLock && s.Provider.Listed {
		// Declarative anti-adblock: the browser locks scrolling when the
		// referenced resource was blocked (promipool.de behaviour, §4.5).
		fmt.Fprintf(&b, " data-scroll-lock-if-blocked=%q", s.Provider.ScriptURL())
	}
	b.WriteString(">\n<header><h1>")
	b.WriteString(htmlx.EscapeText(siteTitle(s)))
	b.WriteString("</h1><nav><a href=\"/\">Home</a> <a href=\"/privacy\">Privacy</a></nav></header>\n<main>\n")

	// Article body: three language-typical paragraphs threaded with the
	// site's category keywords (classifier food).
	fmt.Fprintf(&b, "<article><h2>%s</h2>\n", htmlx.EscapeText(kw[0]))
	fmt.Fprintf(&b, "<p>%s</p>\n", htmlx.EscapeText(fmt.Sprintf(t.intro, kw[0], kw[1])))
	fmt.Fprintf(&b, "<p>%s</p>\n", htmlx.EscapeText(fmt.Sprintf(t.body1, kw[2])))
	fmt.Fprintf(&b, "<p>%s</p>\n", htmlx.EscapeText(fmt.Sprintf(t.body2, kw[0])))
	b.WriteString("</article>\n</main>\n")

	if st.subscribed {
		b.WriteString(`<div id="sub-badge" class="subscription-active">✓</div>` + "\n")
	}

	if st.showBanner() {
		f.writeBanner(&b, s)
	}
	if s.AntiAdblock && s.Provider.Listed {
		// hausbau-forum.de behaviour: a plea that the browser reveals
		// when the cookiewall resource was blocked.
		fmt.Fprintf(&b,
			`<div id="adblock-plea" data-cw-if-blocked=%q hidden>Bitte deaktivieren Sie Ihren Werbeblocker, um diese Seite nutzen zu können.</div>`+"\n",
			s.Provider.ScriptURL())
	}

	// Post-consent pages carry the ad/tracking load.
	if st.consented {
		f.writeTrackerEmbeds(&b, st, false)
	}
	if st.subscribed {
		f.writeTrackerEmbeds(&b, st, true)
	}

	b.WriteString("<footer><p>© ")
	b.WriteString(htmlx.EscapeText(s.Domain))
	b.WriteString("</p></footer>\n</body></html>\n")
	return b.String()
}

// siteTitle derives a stable human-ish title from the domain.
func siteTitle(s *synthweb.Site) string {
	name := s.Domain
	if i := strings.IndexByte(name, '.'); i > 0 {
		name = name[:i]
	}
	words := strings.Split(name, "-")
	for i, w := range words {
		if w != "" {
			words[i] = strings.ToUpper(w[:1]) + w[1:]
		}
	}
	return strings.Join(words, " ")
}

// keywordsFor returns three deterministic category keywords for a site.
func keywordsFor(s *synthweb.Site) [3]string {
	ks := categorize.Keywords(s.Category)
	if len(ks) == 0 {
		ks = []string{"themen", "artikel", "beiträge"}
	}
	h := int(xrand.Hash64(s.Domain))
	if h < 0 {
		h = -h
	}
	var out [3]string
	for i := 0; i < 3; i++ {
		out[i] = ks[(h+i)%len(ks)]
	}
	return out
}

// writeBanner emits the banner in the site's configured embedding and
// delivery mode.
func (f *Farm) writeBanner(b *strings.Builder, s *synthweb.Site) {
	if s.Provider.Host != "" {
		// Third-party delivery: a slot plus a provider script. The
		// emulated browser fetches the script URL (subject to content
		// blocking) and injects the returned fragment into the slot.
		fmt.Fprintf(b,
			"<div id=\"cw-slot\"></div>\n<script src=%q data-cw-inject=\"#cw-slot\" async></script>\n",
			providerScriptURL(s))
		return
	}
	// Local (first-party) delivery.
	b.WriteString(f.bannerFragment(s, "").body)
	b.WriteString("\n")
}

// providerScriptURL is the third-party loader URL for a site.
func providerScriptURL(s *synthweb.Site) string {
	return s.Provider.ScriptURL() + "?site=" + s.Domain
}

// bannerFragment renders the injectable banner markup for a site in
// its configured embedding, memoized per (site, delivery mode).
// providerHost is non-empty for third-party delivery and controls
// where iframe documents are served from; it is always either "" or
// the site's own provider host, so the delivery kind fully keys it.
func (f *Farm) bannerFragment(s *synthweb.Site, providerHost string) render {
	kind := kindFragmentLocal
	if providerHost != "" {
		kind = kindFragmentProvider
	}
	key := renderKey{domain: s.Domain, kind: kind}
	if frag, ok := f.renders.get(key); ok {
		return frag
	}
	return f.renders.put(key, f.bannerFragmentUncached(s, providerHost), nil)
}

func (f *Farm) bannerFragmentUncached(s *synthweb.Site, providerHost string) string {
	switch s.Embedding {
	case synthweb.EmbedIFrame:
		src := "/cw-frame.html"
		if providerHost != "" {
			src = "https://" + providerHost + "/frame?site=" + s.Domain
		}
		return fmt.Sprintf(
			`<iframe id="cw-frame" src=%q style="position:fixed;top:15%%;left:10%%;width:80%%;height:60%%;z-index:99999"></iframe>`,
			src)
	case synthweb.EmbedShadowOpen, synthweb.EmbedShadowClosed:
		mode := "open"
		if s.Embedding == synthweb.EmbedShadowClosed {
			mode = "closed"
		}
		return fmt.Sprintf(
			`<div id="cw-host" class=%q><template shadowrootmode=%q>%s</template></div>`,
			overlayClass(s), mode, f.bannerCore(s))
	default:
		return f.bannerCore(s)
	}
}

// bannerDocument renders the standalone HTML document served to banner
// iframes, memoized per site.
func (f *Farm) bannerDocument(s *synthweb.Site) render {
	key := renderKey{domain: s.Domain, kind: kindBannerDoc}
	if doc, ok := f.renders.get(key); ok {
		return doc
	}
	return f.renders.put(key, f.bannerDocumentUncached(s), nil)
}

func (f *Farm) bannerDocumentUncached(s *synthweb.Site) string {
	return "<!DOCTYPE html>\n<html lang=\"" + s.Language +
		"\"><head><meta charset=\"utf-8\"><title>Consent</title></head><body>\n" +
		f.bannerCore(s) + "\n</body></html>\n"
}

// overlayClass picks the banner's CSS class. Only the well-known
// (filter-listed) platforms reuse the stock "cw-smp-overlay" markup
// that the Annoyances cosmetic rule targets; locally-served walls and
// lesser-known kits (nichewall, tinycmp) use bespoke markup and evade
// both network and cosmetic filtering — exactly the §4.5 population
// that survives uBlock Origin.
func overlayClass(s *synthweb.Site) string {
	if s.Provider.Listed {
		return "cw-smp-overlay"
	}
	return "cw-overlay"
}

// bannerCore renders the banner element itself: a cookiewall (accept or
// subscribe, no reject) or a regular banner (accept + reject).
func (f *Farm) bannerCore(s *synthweb.Site) string {
	t := textFor(s.Language)
	consentTarget := "https://" + s.Domain + "/consent"
	var b strings.Builder
	if s.Banner == synthweb.BannerCookiewall {
		loginTarget := "https://" + s.Domain + "/smp-login"
		fmt.Fprintf(&b, `<div id="cw-banner" class="%s consent-layer" role="dialog" aria-modal="true" style="position:fixed;top:20%%;left:10%%;width:80%%;z-index:99999">`,
			overlayClass(s))
		fmt.Fprintf(&b, `<h2>%s</h2>`, htmlx.EscapeText(siteTitle(s)))
		fmt.Fprintf(&b, `<p class="cw-text">%s</p>`,
			htmlx.EscapeText(fmt.Sprintf(t.wallText, formatPricePhrase(s))))
		b.WriteString(`<div class="cw-actions">`)
		fmt.Fprintf(&b, `<button id="cw-accept" class="cw-btn cw-btn-accept" data-action="consent-accept" data-target=%q>%s</button>`,
			consentTarget, htmlx.EscapeText(t.accept))
		fmt.Fprintf(&b, `<button id="cw-subscribe" class="cw-btn cw-btn-sub" data-action="smp-subscribe" data-target=%q>%s</button>`,
			loginTarget, htmlx.EscapeText(t.subscribe))
		b.WriteString(`</div>`)
		if s.Provider.SMP {
			fmt.Fprintf(&b, `<p class="cw-footnote">powered by %s</p>`,
				htmlx.EscapeText(s.Provider.Name))
		}
		b.WriteString(`</div>`)
		return b.String()
	}
	// Regular banner.
	b.WriteString(`<div id="cmp-banner" class="cookie-banner consent-layer" role="dialog" style="position:fixed;bottom:0;left:0;width:100%;z-index:9999">`)
	text := t.consentText
	if s.Decoy {
		text += " " + decoyPromoFor(s.Language)
	}
	fmt.Fprintf(&b, `<p class="cmp-text">%s</p>`, htmlx.EscapeText(text))
	fmt.Fprintf(&b, `<button id="cmp-accept" data-action="consent-accept" data-target=%q>%s</button>`,
		consentTarget, htmlx.EscapeText(t.accept))
	fmt.Fprintf(&b, `<button id="cmp-reject" data-action="consent-reject" data-target=%q>%s</button>`,
		consentTarget, htmlx.EscapeText(t.reject))
	fmt.Fprintf(&b, `<a href="/settings">%s</a>`, htmlx.EscapeText(t.settings))
	b.WriteString(`</div>`)
	return b.String()
}

// writeTrackerEmbeds emits the third-party resources for a consent or
// subscription page view: tracker pixels (blocklisted domains) and
// benign assets. Counts are the site's profile with per-visit jitter.
func (f *Farm) writeTrackerEmbeds(b *strings.Builder, st pageState, subscription bool) {
	s := st.site
	var tracking, benign int
	if subscription {
		tracking = 0
		benign = f.jitter(s.Cookies.SubBenignTP, s.Domain, st.visit, "sub-benign")
	} else {
		tracking = f.jitter(s.Cookies.PostTracking, s.Domain, st.visit, "tracking")
		benign = f.jitter(s.Cookies.PostBenignTP, s.Domain, st.visit, "benign")
	}

	writeSpread(b, f.trackerPool, tracking, 3, s.Domain, "p.gif", "img")
	writeSpread(b, f.benignPool, benign, 2, s.Domain, "tag.js", "script")
}

// writeSpread distributes `total` cookies over a domain pool, perDomain
// at a time, emitting one resource tag per (domain, chunk).
func writeSpread(b *strings.Builder, pool []string, total, perDomain int, site, path, tag string) {
	if total <= 0 {
		return
	}
	start := int(xrand.Hash64(site) % uint64(len(pool)))
	offset := 0
	for total > 0 {
		n := perDomain
		if total < n {
			n = total
		}
		host := pool[(start+offset/perDomain)%len(pool)]
		url := fmt.Sprintf("https://%s/%s?site=%s&n=%d&o=%d", host, path, site, n, offset)
		if tag == "img" {
			fmt.Fprintf(b, "<img src=%q width=\"1\" height=\"1\" alt=\"\">\n", url)
		} else {
			fmt.Fprintf(b, "<script src=%q></script>\n", url)
		}
		offset += n
		total -= n
	}
}

// jitter perturbs a baseline count by ±~7% deterministically per
// (domain, visit, kind); visit "" disables jitter.
func (f *Farm) jitter(base int, domain, visit, kind string) int {
	if base <= 0 || visit == "" {
		return base
	}
	rng := xrand.New(xrand.SubSeed(f.seed, domain, visit, kind))
	v := int(float64(base)*rng.LogNormal(0, 0.07) + 0.5)
	if v < 0 {
		v = 0
	}
	return v
}
