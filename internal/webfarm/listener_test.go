package webfarm

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cookiewalk/internal/synthweb"
	"cookiewalk/internal/vantage"
)

// TestRealListener serves the farm on an actual TCP socket and speaks
// real HTTP to it — proving the handler is not recorder-only and that
// cmd/webfarm's deployment mode works end to end.
func TestRealListener(t *testing.T) {
	srv := httptest.NewServer(testFarm)
	defer srv.Close()

	site := pickCookiewall(t, func(s *synthweb.Site) bool {
		return s.Provider.Name == "local" && s.Embedding == synthweb.EmbedMainDOM
	})

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Host = site.Domain // virtual hosting, as curl -H 'Host: ...'
	req.Header.Set(vantage.GeoHeader, "Germany")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "cw-banner") {
		t.Fatal("banner missing over real HTTP")
	}
	if len(resp.Header.Values("Set-Cookie")) == 0 {
		t.Fatal("no cookies over real HTTP")
	}

	// The consent POST also works over the wire.
	preq, err := http.NewRequest(http.MethodPost, srv.URL+"/consent",
		strings.NewReader("choice=accept"))
	if err != nil {
		t.Fatal(err)
	}
	preq.Host = site.Domain
	preq.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	presp, err := http.DefaultTransport.RoundTrip(preq) // no redirect following
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusSeeOther {
		t.Fatalf("consent status %d", presp.StatusCode)
	}
}
