package trend

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cookiewalk/internal/measure"
)

// The recurring trigger. A Runner owns the wall-clock schedule:
// round k fires at start + k·Interval, runs the study's round callback
// (a full DAG resolution ending in a RoundSummary), and appends the
// result durably before the next tick. Scheduling is deliberately
// dumb — fixed period, no catch-up bursts: a round that overruns its
// slot starts the next round immediately, never concurrently, so two
// crawls can't contend for the same checkpoint directories.
//
// Resume: the store is the schedule's ledger. Loop starts at
// Store.Len() — a process killed between rounds restarts exactly at
// the first round without a durable record, re-running nothing; a
// process killed MID-round re-runs that round, and the round's own
// campaign checkpoint journals (plus the process-global analysis memo)
// make the re-run a replay, not a re-crawl.

// Runner drives rounds on a schedule and appends them to a Store.
type Runner struct {
	// Store receives each completed round. Required.
	Store *Store
	// Interval is the wall-clock period between round starts.
	// Required (trendd defaults it to 24h).
	Interval time.Duration
	// Rounds bounds the run: Loop returns after the store holds this
	// many rounds. 0 means run until ctx is canceled.
	Rounds int
	// Run executes one round and returns its aggregates. Required.
	// It must be a pure function of (study seed, round, universe) —
	// the runner records its result verbatim.
	Run func(ctx context.Context, round int) (measure.RoundSummary, error)
	// OnRound, when set, observes each completed round after its
	// record is durably appended (trendd prunes the round's crawl
	// checkpoints here).
	OnRound func(RoundStats)
	// Now and Sleep are the schedule clock, injectable for tests.
	// Sleep returns early with ctx's cause when canceled.
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error
	// Logf, when set, receives schedule progress lines.
	Logf func(format string, args ...any)

	mu   sync.Mutex
	last RunnerState
}

// RoundStats describes one completed round for observers.
type RoundStats struct {
	Round int
	At    time.Time
	Took  time.Duration
	// MemoHits/FreshAnalyses are the analysis-memo deltas over the
	// round: hits are visits whose page analysis was already memoized
	// (the delta-crawl dividend), fresh ones ran the full pipeline.
	MemoHits      uint64
	FreshAnalyses uint64
}

// RunnerState is the schedule's live state for /v1/status.
type RunnerState struct {
	State         string `json:"state"` // "sleeping" | "crawling" | "done"
	NextRound     int    `json:"next_round"`
	LastAt        int64  `json:"last_at,omitempty"` // Unix s, last completed round
	LastTookMS    int64  `json:"last_took_ms,omitempty"`
	MemoHits      uint64 `json:"memo_hits,omitempty"`
	FreshAnalyses uint64 `json:"fresh_analyses,omitempty"`
}

// State snapshots the runner for /v1/status.
func (r *Runner) State() RunnerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

func (r *Runner) setState(f func(*RunnerState)) {
	r.mu.Lock()
	f(&r.last)
	r.mu.Unlock()
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Loop runs the schedule until Rounds rounds are stored or ctx is
// canceled. A round that fails (crawl error, journal failure, store
// append failure) aborts the loop with that error; nothing partial is
// stored, so a restarted loop re-runs the failed round.
func (r *Runner) Loop(ctx context.Context) error {
	now := r.Now
	if now == nil {
		now = time.Now
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return context.Cause(ctx)
			}
		}
	}
	start := r.Store.Len()
	if start > 0 {
		r.logf("trend: resuming at round %d (%d rounds already stored)", start, start)
	}
	next := now()
	for round := start; r.Rounds == 0 || round < r.Rounds; round++ {
		if round > start {
			next = next.Add(r.Interval)
			if d := next.Sub(now()); d > 0 {
				r.setState(func(st *RunnerState) { st.State = "sleeping"; st.NextRound = round })
				if err := sleep(ctx, d); err != nil {
					return err
				}
			} else {
				r.logf("trend: round %d is %s behind schedule, starting immediately", round, -d)
			}
		}
		at := now()
		r.setState(func(st *RunnerState) { st.State = "crawling"; st.NextRound = round })
		hits0, misses0 := measure.AnalysisMemoCounters()
		sum, err := r.Run(ctx, round)
		if err != nil {
			return fmt.Errorf("trend: round %d: %w", round, err)
		}
		if err := r.Store.Append(Record{Round: round, At: at.Unix(), Summary: sum}); err != nil {
			return err
		}
		hits1, misses1 := measure.AnalysisMemoCounters()
		stats := RoundStats{
			Round:         round,
			At:            at,
			Took:          now().Sub(at),
			MemoHits:      hits1 - hits0,
			FreshAnalyses: misses1 - misses0,
		}
		r.setState(func(st *RunnerState) {
			st.NextRound = round + 1
			st.LastAt = at.Unix()
			st.LastTookMS = stats.Took.Milliseconds()
			st.MemoHits = stats.MemoHits
			st.FreshAnalyses = stats.FreshAnalyses
		})
		r.logf("trend: round %d done: prevalence %.4f, %d cookiewalls, memo %d hits / %d fresh",
			round, sum.Prevalence, sum.Cookiewalls, stats.MemoHits, stats.FreshAnalyses)
		if r.OnRound != nil {
			r.OnRound(stats)
		}
	}
	// NextRound is set explicitly for the no-op path (the store already
	// held Rounds rounds), where the loop body never ran.
	r.setState(func(st *RunnerState) { st.State = "done"; st.NextRound = r.Store.Len() })
	return nil
}
