package trend

import "cookiewalk/internal/measure"

// The metric registry. /v1/trends/<metric> serves one named scalar per
// round, extracted from the stored RoundSummary — precomputed
// aggregates, never raw observations, so a query costs a slice walk
// regardless of crawl size. The registry is a fixed table: adding a
// metric is a code change, which keeps the API surface enumerable (and
// /v1/metrics self-describing).

// Metric is one queryable per-round scalar.
type Metric struct {
	Name string `json:"name"`
	Help string `json:"help"`
	// PerVP marks metrics that additionally require a ?vp= parameter
	// and read one vantage point's split instead of the round total.
	PerVP bool `json:"per_vp"`

	value   func(measure.RoundSummary) float64
	vpValue func(measure.VPTrendSplit) float64
}

// metrics is the registry, in /v1/metrics display order.
var metrics = []Metric{
	{Name: "prevalence", Help: "verified cookiewall share of all targets (§4.1)",
		value: func(s measure.RoundSummary) float64 { return s.Prevalence }},
	{Name: "top1k_prevalence", Help: "verified cookiewall share of top-1k targets (§4.1)",
		value: func(s measure.RoundSummary) float64 { return s.Top1kPrevalence }},
	{Name: "cookiewalls", Help: "verified cookiewall domains detected from any vantage point",
		value: func(s measure.RoundSummary) float64 { return float64(s.Cookiewalls) }},
	{Name: "paywall_share", Help: "verified cookiewalls / banner-showing sites, Germany view",
		value: func(s measure.RoundSummary) float64 { return s.PaywallShare }},
	{Name: "price_count", Help: "verified cookiewalls with a detected subscription price",
		value: func(s measure.RoundSummary) float64 { return float64(s.PriceCount) }},
	{Name: "price_min", Help: "minimum monthly subscription price (EUR)",
		value: func(s measure.RoundSummary) float64 { return s.PriceMin }},
	{Name: "price_median", Help: "median monthly subscription price (EUR)",
		value: func(s measure.RoundSummary) float64 { return s.PriceMedian }},
	{Name: "price_mean", Help: "mean monthly subscription price (EUR)",
		value: func(s measure.RoundSummary) float64 { return s.PriceMean }},
	{Name: "price_max", Help: "maximum monthly subscription price (EUR)",
		value: func(s measure.RoundSummary) float64 { return s.PriceMax }},
	{Name: "price_share_at_most_3", Help: "share of prices ≤ 3 EUR (Figure 2 anchor)",
		value: func(s measure.RoundSummary) float64 { return s.PriceShareAtMost3 }},
	{Name: "vp_banner_rate", Help: "per-VP banner rate (?vp=<name>, §4.2)", PerVP: true,
		vpValue: func(v measure.VPTrendSplit) float64 { return v.BannerRate }},
	{Name: "vp_cookiewalls", Help: "per-VP verified cookiewall detections (?vp=<name>)", PerVP: true,
		vpValue: func(v measure.VPTrendSplit) float64 { return float64(v.Cookiewalls) }},
	{Name: "vp_regular", Help: "per-VP regular-banner sites (?vp=<name>)", PerVP: true,
		vpValue: func(v measure.VPTrendSplit) float64 { return float64(v.Regular) }},
	{Name: "vp_errors", Help: "per-VP visit errors (?vp=<name>)", PerVP: true,
		vpValue: func(v measure.VPTrendSplit) float64 { return float64(v.Errors) }},
}

// metricIndex resolves names to registry entries.
var metricIndex = func() map[string]Metric {
	m := make(map[string]Metric, len(metrics))
	for _, mt := range metrics {
		m[mt.Name] = mt
	}
	return m
}()

// Metrics lists the registry in display order.
func Metrics() []Metric { return append([]Metric(nil), metrics...) }

// eval extracts the metric's value from one record. For per-VP metrics
// the bool reports whether vp names a split present in the summary.
func (m Metric) eval(rec Record, vp string) (float64, bool) {
	if !m.PerVP {
		return m.value(rec.Summary), true
	}
	for _, v := range rec.Summary.PerVP {
		if v.VP == vp {
			return m.vpValue(v), true
		}
	}
	return 0, false
}
