// Package trend is the continuous-measurement layer: it re-runs the
// study on a wall-clock schedule, appends each round's aggregates
// (prevalence, paywall share, price statistics, per-VP splits) to a
// time-indexed append-only store, and serves the resulting time series
// through a cached HTTP query API. The paper is a one-shot snapshot;
// this package is what turns the reproduction into the recurring
// service the ROADMAP's north star describes. cmd/trendd is the
// daemon built from it.
//
// Determinism invariant: every stored round is a pure function of
// (study seed, round index, universe) — never of wall-clock time,
// scheduling, interruption or cache state. The only timestamp in a
// Record is the round's start time, pinned by the runner's injectable
// clock; round aggregates contain no memo counters, durations or other
// process-lifetime state. Consequently a fixed schedule of rounds
// produces byte-identical store journals and byte-identical query
// responses (ETags included) across independent runs, across
// kill/resume boundaries, and at any -race-checked concurrency — the
// property the golden trend test pins.
package trend
