package trend

import (
	"context"
	"errors"
	"testing"
	"time"

	"cookiewalk/internal/measure"
)

// schedClock drives the runner's Now/Sleep pair deterministically:
// sleeping advances the clock by exactly the requested duration.
type schedClock struct{ t time.Time }

func (c *schedClock) now() time.Time { return c.t }
func (c *schedClock) sleep(ctx context.Context, d time.Duration) error {
	c.t = c.t.Add(d)
	return ctx.Err()
}

func TestRunnerScheduleAndTimestamps(t *testing.T) {
	store := newTestStore(t, 0)
	clock := &schedClock{t: time.Unix(1700000000, 0)}
	var ran []int
	r := &Runner{
		Store:    store,
		Interval: time.Hour,
		Rounds:   3,
		Now:      clock.now,
		Sleep:    clock.sleep,
		Run: func(ctx context.Context, round int) (measure.RoundSummary, error) {
			ran = append(ran, round)
			return syntheticSummary(round), nil
		},
	}
	if err := r.Loop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 3 {
		t.Fatalf("ran rounds %v", ran)
	}
	recs := store.Rounds(0, -1)
	for i, rec := range recs {
		want := int64(1700000000 + i*3600)
		if rec.At != want {
			t.Fatalf("round %d At = %d, want %d (fixed-period schedule)", i, rec.At, want)
		}
	}
	if st := r.State(); st.State != "done" || st.NextRound != 3 {
		t.Fatalf("final state: %+v", st)
	}
}

func TestRunnerResumeSkipsStoredRounds(t *testing.T) {
	store := newTestStore(t, 2) // rounds 0 and 1 already durable
	clock := &schedClock{t: time.Unix(1700007200, 0)}
	var ran []int
	r := &Runner{
		Store:    store,
		Interval: time.Hour,
		Rounds:   4,
		Now:      clock.now,
		Sleep:    clock.sleep,
		Run: func(ctx context.Context, round int) (measure.RoundSummary, error) {
			ran = append(ran, round)
			return syntheticSummary(round), nil
		},
	}
	if err := r.Loop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 2 || ran[0] != 2 || ran[1] != 3 {
		t.Fatalf("resumed loop ran %v, want [2 3]", ran)
	}
	if store.Len() != 4 {
		t.Fatalf("store has %d rounds, want 4", store.Len())
	}
}

func TestRunnerRoundErrorAborts(t *testing.T) {
	store := newTestStore(t, 0)
	boom := errors.New("crawl failed")
	r := &Runner{
		Store:    store,
		Interval: time.Hour,
		Rounds:   3,
		Run: func(ctx context.Context, round int) (measure.RoundSummary, error) {
			if round == 1 {
				return measure.RoundSummary{}, boom
			}
			return syntheticSummary(round), nil
		},
		Now:   (&schedClock{t: time.Unix(0, 0)}).now,
		Sleep: func(ctx context.Context, d time.Duration) error { return nil },
	}
	err := r.Loop(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Round 0 is durable, the failed round 1 is not: a restarted loop
	// re-runs it.
	if store.Len() != 1 {
		t.Fatalf("store has %d rounds after failure, want 1", store.Len())
	}
}

func TestRunnerCancelDuringSleep(t *testing.T) {
	store := newTestStore(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	r := &Runner{
		Store:    store,
		Interval: time.Hour,
		Rounds:   2,
		Now:      (&schedClock{t: time.Unix(0, 0)}).now,
		Sleep: func(sctx context.Context, d time.Duration) error {
			cancel()
			return context.Cause(sctx)
		},
		Run: func(ctx context.Context, round int) (measure.RoundSummary, error) {
			return syntheticSummary(round), nil
		},
	}
	if err := r.Loop(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if store.Len() != 1 {
		t.Fatalf("store has %d rounds, want 1 (canceled before round 1)", store.Len())
	}
}
