package trend

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cookiewalk/internal/measure"
)

func testManifest() Manifest {
	return Manifest{Seed: 42, Scale: 0.02, Reps: 2, Targets: 1157, TargetsHash: 0xdeadbeef}
}

// syntheticSummary builds a deterministic per-round summary without
// crawling — store/server tests exercise persistence and serving, not
// measurement.
func syntheticSummary(round int) measure.RoundSummary {
	return measure.RoundSummary{
		Targets:         1157,
		Cookiewalls:     280 + round,
		Prevalence:      0.006 + float64(round)/1000,
		Top1kPrevalence: 0.009,
		PaywallShare:    0.4,
		PriceCount:      200,
		PriceMin:        0.99,
		PriceMedian:     2.5,
		PriceMean:       2.8 + float64(round)/10,
		PriceMax:        9.99,
		PerVP: []measure.VPTrendSplit{
			{VP: "Germany", EU: true, Visited: 1157, Errors: 3, NoBanner: 800, Regular: 70, Cookiewalls: 280 + round, BannerRate: 0.31},
			{VP: "US East", EU: false, Visited: 1157, Errors: 2, NoBanner: 1100, Regular: 30, Cookiewalls: 24, BannerRate: 0.05},
		},
	}
}

func record(round int) Record {
	return Record{Round: round, At: 1700000000 + int64(round)*3600, Summary: syntheticSummary(round)}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 || s.Version() != 3 {
		t.Fatalf("len=%d version=%d, want 3/3", s.Len(), s.Version())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs := r.Rounds(0, -1)
	if len(recs) != 3 {
		t.Fatalf("reopened %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.Round != i || rec.At != 1700000000+int64(i)*3600 || rec.Summary.Cookiewalls != 280+i {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
	// Reopening must keep the append head consistent.
	if err := r.Append(record(3)); err != nil {
		t.Fatal(err)
	}
	if got := r.Rounds(3, 3); len(got) != 1 || got[0].Summary.Cookiewalls != 283 {
		t.Fatalf("round 3 after reopen-append: %+v", got)
	}
}

func TestStoreRangeQueries(t *testing.T) {
	s, err := Open(t.TempDir(), testManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Rounds(1, 3); len(got) != 3 || got[0].Round != 1 || got[2].Round != 3 {
		t.Fatalf("Rounds(1,3) = %+v", got)
	}
	if got := s.Rounds(0, 99); len(got) != 5 {
		t.Fatalf("clamped to = %d records", len(got))
	}
	if got := s.Rounds(4, 2); got != nil {
		t.Fatalf("inverted range = %+v, want nil", got)
	}
}

func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	path := filepath.Join(dir, storeFile)
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append: half a frame of garbage at the tail.
	torn := append(append([]byte{}, intact...), 0x55, 0x03, 0x02, 0x01)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("after torn tail: %d records, want 2", r.Len())
	}
	// The tail must be truncated so the next append lands on a clean
	// frame boundary.
	if err := r.Append(record(2)); err != nil {
		t.Fatal(err)
	}
	r.Close()
	final, err := Open(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if final.Len() != 3 {
		t.Fatalf("after truncate+append+reopen: %d records, want 3", final.Len())
	}
}

func TestStoreCorruptChecksumTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	path := filepath.Join(dir, storeFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the LAST frame's payload: its checksum fails, the
	// first record survives.
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Fatalf("after checksum corruption: %d records, want 1", r.Len())
	}
}

func TestStoreManifestGuard(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	other := testManifest()
	other.Seed = 43
	if _, err := Open(dir, other); err == nil || !strings.Contains(err.Error(), "different study") {
		t.Fatalf("foreign manifest accepted: %v", err)
	}
}

func TestStoreRefusesOutOfOrderAppend(t *testing.T) {
	s, err := Open(t.TempDir(), testManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(record(1)); err == nil {
		t.Fatal("append of round 1 on an empty store succeeded")
	}
	if err := s.Append(record(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(record(0)); err == nil {
		t.Fatal("duplicate round 0 append succeeded")
	}
}

func TestStoreRefusesBadMagic(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, storeFile), []byte("not a store\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testManifest()); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("bad magic accepted: %v", err)
	}
}

// TestStoreByteDeterminism mirrors TestExportDeterminism: two stores
// built independently from the same records are byte-identical on
// disk.
func TestStoreByteDeterminism(t *testing.T) {
	var files [][]byte
	for run := 0; run < 2; run++ {
		dir := t.TempDir()
		s, err := Open(dir, testManifest())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := s.Append(record(i)); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		data, err := os.ReadFile(filepath.Join(dir, storeFile))
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, data)
	}
	if string(files[0]) != string(files[1]) {
		t.Fatalf("store journals differ across independent builds (%d vs %d bytes)", len(files[0]), len(files[1]))
	}
}
