package trend

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"cookiewalk/internal/measure"
)

// The time-indexed round store. One append-only journal file
// (rounds.cwt) holds every completed round's Record as a checksummed
// frame, in round order, using the same framing discipline as the
// campaign checkpoint journals (internal/campaign): a magic header,
// then frames of uvarint(payload length) + fixed64 FNV-1a checksum +
// payload. The payload here is the Record's JSON — rounds are few
// (one per schedule tick, not one per visit), so a self-describing
// encoding wins over the campaign journals' byte-pinched binary.
//
// Durability mirrors the campaign journals: every append is fsynced
// before Append returns, so a round is either fully in the store or
// not in it at all; a torn tail from a mid-write crash is detected by
// length/checksum and truncated away on Open, and the round whose
// frame was torn simply re-runs (its crawl checkpoint journals make
// the re-run cheap). A manifest.json identity guard refuses stores
// built by a different study (seed/scale/reps/universe), exactly as
// campaign manifests refuse foreign checkpoint directories.

const (
	storeMagic   = "cwts1\n"
	storeFile    = "rounds.cwt"
	manifestFile = "manifest.json"
	// maxFrame bounds a frame's declared payload length during scans, so
	// a corrupt length prefix can't ask for gigabytes. Round summaries
	// are a few KB; 16 MiB is beyond generous.
	maxFrame = 16 << 20
)

// Manifest pins the identity of the study a store belongs to. Every
// field must match exactly for Open to accept an existing store —
// appending rounds from a different universe would splice two
// incomparable time series.
type Manifest struct {
	Seed        uint64  `json:"seed"`
	Scale       float64 `json:"scale"`
	Reps        int     `json:"reps"`
	Targets     int     `json:"targets"`
	TargetsHash uint64  `json:"targets_hash"`
}

// Record is one completed round: its index, the wall-clock start time
// (Unix seconds; the only non-deterministic field, pinned by the
// runner's clock) and the round's aggregates.
type Record struct {
	Round   int                  `json:"round"`
	At      int64                `json:"at"`
	Summary measure.RoundSummary `json:"summary"`
}

// Store is the open round store. It is safe for concurrent use: the
// query API reads (Rounds, Len, Version) while the runner appends.
type Store struct {
	dir string

	mu   sync.Mutex
	f    *os.File
	recs []Record

	// version counts completed appends; the response cache compares it
	// to detect that a cached body predates the newest round. Reading
	// it is lock-free so the serving hot path never contends with an
	// in-flight append.
	version atomic.Uint64
}

// Open opens (or creates) the round store in dir and verifies it
// belongs to the study described by m. A torn tail — a frame cut short
// or failing its checksum, from a crash mid-append — is truncated
// away; everything before it is intact by checksum and loaded.
func Open(dir string, m Manifest) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trend: store: %w", err)
	}
	if err := checkManifest(dir, m); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, storeFile)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trend: store: %w", err)
	}
	s := &Store{dir: dir, f: f}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// checkManifest validates an existing manifest against m, or writes m
// for a fresh store.
func checkManifest(dir string, m Manifest) error {
	path := filepath.Join(dir, manifestFile)
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		var have Manifest
		if err := json.Unmarshal(data, &have); err != nil {
			return fmt.Errorf("trend: store manifest %s is corrupt: %w", path, err)
		}
		if have != m {
			return fmt.Errorf(
				"trend: store %s belongs to a different study (store: seed=%d scale=%g reps=%d targets=%d hash=%#x; ours: seed=%d scale=%g reps=%d targets=%d hash=%#x)",
				dir, have.Seed, have.Scale, have.Reps, have.Targets, have.TargetsHash,
				m.Seed, m.Scale, m.Reps, m.Targets, m.TargetsHash)
		}
		return nil
	case errors.Is(err, os.ErrNotExist):
		data, err := json.Marshal(m)
		if err != nil {
			return fmt.Errorf("trend: store manifest: %w", err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("trend: store manifest: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("trend: store manifest: %w", err)
	}
}

// load scans the journal, keeps the valid prefix and truncates any torn
// tail. Records must be consecutive rounds starting at 0; a frame that
// decodes but breaks the sequence marks the valid prefix's end too (it
// can only come from a foreign or corrupt writer).
func (s *Store) load() error {
	data, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("trend: store: %w", err)
	}
	if len(data) == 0 {
		if _, err := s.f.WriteString(storeMagic); err != nil {
			return fmt.Errorf("trend: store: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("trend: store: %w", err)
		}
		return nil
	}
	if len(data) < len(storeMagic) || string(data[:len(storeMagic)]) != storeMagic {
		return fmt.Errorf("trend: %s is not a trend store (bad magic)", filepath.Join(s.dir, storeFile))
	}
	valid := int64(len(storeMagic))
	rest := data[len(storeMagic):]
	for len(rest) > 0 {
		payload, n := nextFrame(rest)
		if n == 0 {
			break // torn or corrupt tail
		}
		var rec Record
		if json.Unmarshal(payload, &rec) != nil || rec.Round != len(s.recs) {
			break
		}
		s.recs = append(s.recs, rec)
		valid += int64(n)
		rest = rest[n:]
	}
	if valid < int64(len(data)) {
		if err := s.f.Truncate(valid); err != nil {
			return fmt.Errorf("trend: store: truncating torn tail: %w", err)
		}
	}
	if _, err := s.f.Seek(valid, io.SeekStart); err != nil {
		return fmt.Errorf("trend: store: %w", err)
	}
	s.version.Store(uint64(len(s.recs)))
	return nil
}

// nextFrame decodes one frame from b, returning its payload and total
// encoded size, or (nil, 0) when b starts with a torn or corrupt frame.
func nextFrame(b []byte) (payload []byte, size int) {
	length, n := binary.Uvarint(b)
	if n <= 0 || length > maxFrame {
		return nil, 0
	}
	if len(b) < n+8+int(length) {
		return nil, 0
	}
	sum := binary.LittleEndian.Uint64(b[n : n+8])
	payload = b[n+8 : n+8+int(length)]
	if hashPayload(payload) != sum {
		return nil, 0
	}
	return payload, n + 8 + int(length)
}

// hashPayload is the frame checksum (64-bit FNV-1a over the payload).
func hashPayload(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

// Append durably appends one round. rec.Round must be exactly the next
// round index — the store is a gap-free time series, and an
// out-of-order append means the caller lost track of what's already
// persisted.
func (s *Store) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.Round != len(s.recs) {
		return fmt.Errorf("trend: store has %d rounds; cannot append round %d", len(s.recs), rec.Round)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("trend: store: %w", err)
	}
	frame := binary.AppendUvarint(nil, uint64(len(payload)))
	frame = binary.LittleEndian.AppendUint64(frame, hashPayload(payload))
	frame = append(frame, payload...)
	if _, err := s.f.Write(frame); err != nil {
		return fmt.Errorf("trend: store: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("trend: store: %w", err)
	}
	s.recs = append(s.recs, rec)
	s.version.Add(1)
	return nil
}

// Len returns the number of completed rounds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Version returns the append counter — it changes exactly when a new
// round lands, so equal versions imply byte-identical query responses.
func (s *Store) Version() uint64 { return s.version.Load() }

// Rounds returns a copy of the records with from ≤ Round ≤ to
// (inclusive; bounds are clamped). to < 0 means "through the latest".
func (s *Store) Rounds(from, to int) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	if to < 0 || to >= len(s.recs) {
		to = len(s.recs) - 1
	}
	if from < 0 {
		from = 0
	}
	if from > to {
		return nil
	}
	return append([]Record(nil), s.recs[from:to+1]...)
}

// Close fsyncs and closes the journal file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
