package trend

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The query API. Routes follow the coordinator API's conventions
// (internal/campaign/dist): Go 1.22 method patterns, optional bearer
// token, JSON bodies. Everything served is precomputed — responses are
// assembled from stored per-round aggregates and memoized in a
// response cache keyed by the canonical query, so heavy read traffic
// costs map lookups, not JSON re-encoding, and conditional requests
// (If-None-Match) cost only an ETag compare.
//
//	GET /v1/trends/{metric}?from=&to=[&vp=]  one metric as a time series
//	GET /v1/rounds?from=&to=                 full round records
//	GET /v1/metrics                          the queryable metric registry
//	GET /v1/status                           store/runner/cache health (uncached)

// ServerConfig configures a trend query server.
type ServerConfig struct {
	// Store is the round store to serve. Required.
	Store *Store
	// Runner, when set, contributes schedule state to /v1/status.
	Runner *Runner
	// Token, when non-empty, locks the API behind bearer auth exactly
	// like the fleet coordinator's -fleet-token.
	Token string
	// CacheTTL bounds a cached response's lifetime (default 15s).
	// Entries are also invalidated eagerly whenever a new round lands,
	// whatever their age; the TTL only bounds how long an idle entry
	// occupies memory.
	CacheTTL time.Duration
	// Now is the cache clock (defaults to time.Now; tests inject).
	Now func() time.Time
}

// CacheStats is the response cache's accounting, served by /v1/status.
type CacheStats struct {
	// Hits are requests served from a cached body (304s included);
	// Misses built a fresh body. Stale counts the misses whose cached
	// entry existed but predated the newest round — the
	// new-round-invalidation path.
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Stale       uint64 `json:"stale"`
	NotModified uint64 `json:"not_modified"`
	Entries     int    `json:"entries"`
}

// Server serves the query API over a Store.
type Server struct {
	cfg ServerConfig
	now func() time.Time
	ttl time.Duration

	mu      sync.Mutex
	entries map[string]*cacheEntry
	stats   CacheStats
}

// cacheEntry is one memoized response body. version pins the store
// state it was computed from; expires bounds its lifetime.
type cacheEntry struct {
	body    []byte
	etag    string
	version uint64
	expires time.Time
}

// NewServer builds a query server over cfg.Store.
func NewServer(cfg ServerConfig) *Server {
	s := &Server{cfg: cfg, now: cfg.Now, ttl: cfg.CacheTTL, entries: map[string]*cacheEntry{}}
	if s.now == nil {
		s.now = time.Now
	}
	if s.ttl <= 0 {
		s.ttl = 15 * time.Second
	}
	return s
}

// Handler returns the API handler (mount it on a server of your
// choosing). With a token configured every route requires
// "Authorization: Bearer <token>"; comparison is constant-time over
// digests, as in the fleet coordinator.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/trends/{metric}", s.handleTrend)
	mux.HandleFunc("GET /v1/rounds", s.handleRounds)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	if s.cfg.Token == "" {
		return mux
	}
	want := sha256.Sum256([]byte(s.cfg.Token))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		got := sha256.Sum256([]byte(tok))
		if !ok || subtle.ConstantTimeCompare(got[:], want[:]) != 1 {
			http.Error(w, "missing or invalid token", http.StatusUnauthorized)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// CacheStats snapshots the response cache accounting.
func (s *Server) CacheStats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	return st
}

// trendReply is one metric's time series.
type trendReply struct {
	Metric string       `json:"metric"`
	VP     string       `json:"vp,omitempty"`
	From   int          `json:"from"`
	To     int          `json:"to"`
	Points []trendPoint `json:"points"`
}

type trendPoint struct {
	Round int     `json:"round"`
	At    int64   `json:"at"`
	Value float64 `json:"value"`
}

// roundsReply is the full-record listing.
type roundsReply struct {
	Rounds []Record `json:"rounds"`
}

// parseRange reads from/to round bounds (inclusive; empty means the
// full series).
func parseRange(r *http.Request) (from, to int, err error) {
	from, to = 0, -1
	if v := r.URL.Query().Get("from"); v != "" {
		if from, err = strconv.Atoi(v); err != nil || from < 0 {
			return 0, 0, fmt.Errorf("bad from=%q (want a round index)", v)
		}
	}
	if v := r.URL.Query().Get("to"); v != "" {
		if to, err = strconv.Atoi(v); err != nil || to < 0 {
			return 0, 0, fmt.Errorf("bad to=%q (want a round index)", v)
		}
	}
	return from, to, nil
}

func (s *Server) handleTrend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("metric")
	m, ok := metricIndex[name]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown metric %q (see /v1/metrics)", name), http.StatusNotFound)
		return
	}
	vp := r.URL.Query().Get("vp")
	if m.PerVP && vp == "" {
		http.Error(w, fmt.Sprintf("metric %q needs ?vp=<vantage point>", name), http.StatusBadRequest)
		return
	}
	if !m.PerVP && vp != "" {
		http.Error(w, fmt.Sprintf("metric %q is not per-VP; drop ?vp=", name), http.StatusBadRequest)
		return
	}
	from, to, err := parseRange(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := fmt.Sprintf("trend|%s|%s|%d|%d", name, vp, from, to)
	s.serveCached(w, r, key, func() ([]byte, error) {
		recs := s.cfg.Store.Rounds(from, to)
		reply := trendReply{Metric: name, VP: vp, From: from, To: to, Points: []trendPoint{}}
		for _, rec := range recs {
			v, ok := m.eval(rec, vp)
			if !ok {
				return nil, fmt.Errorf("unknown vantage point %q", vp)
			}
			reply.Points = append(reply.Points, trendPoint{Round: rec.Round, At: rec.At, Value: v})
		}
		return json.Marshal(reply)
	})
}

func (s *Server) handleRounds(w http.ResponseWriter, r *http.Request) {
	from, to, err := parseRange(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := fmt.Sprintf("rounds|%d|%d", from, to)
	s.serveCached(w, r, key, func() ([]byte, error) {
		recs := s.cfg.Store.Rounds(from, to)
		if recs == nil {
			recs = []Record{}
		}
		return json.Marshal(roundsReply{Rounds: recs})
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, "metrics", func() ([]byte, error) {
		return json.Marshal(struct {
			Metrics []Metric `json:"metrics"`
		}{Metrics: metrics})
	})
}

// statusReply is deliberately uncached and unconditional: it reports
// live health (including the cache's own counters), not round data.
type statusReply struct {
	Rounds       int          `json:"rounds"`
	StoreVersion uint64       `json:"store_version"`
	Cache        CacheStats   `json:"cache"`
	Runner       *RunnerState `json:"runner,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	reply := statusReply{
		Rounds:       s.cfg.Store.Len(),
		StoreVersion: s.cfg.Store.Version(),
		Cache:        s.CacheStats(),
	}
	if s.cfg.Runner != nil {
		st := s.cfg.Runner.State()
		reply.Runner = &st
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(reply)
}

// serveCached answers from the response cache, rebuilding the body when
// no entry exists, the entry predates the newest round, or its TTL
// lapsed. The ETag is a digest of the body, so it is identical across
// server restarts and across independently built stores holding the
// same rounds — byte-determinism extends to conditional requests.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, build func() ([]byte, error)) {
	now := s.now()
	version := s.cfg.Store.Version()
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok && e.version == version && now.Before(e.expires) {
		s.stats.Hits++
		body, etag := e.body, e.etag
		s.mu.Unlock()
		s.reply(w, r, body, etag)
		return
	}
	if ok && e.version != version {
		s.stats.Stale++
	}
	s.stats.Misses++
	s.mu.Unlock()

	// Build outside the lock: a slow encode must not stall cache hits
	// for other keys. Concurrent misses on the same key both build —
	// the bodies are identical, last write wins.
	body, err := build()
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	sum := sha256.Sum256(body)
	etag := fmt.Sprintf(`"%x"`, sum[:8])
	s.mu.Lock()
	s.entries[key] = &cacheEntry{body: body, etag: etag, version: version, expires: now.Add(s.ttl)}
	s.mu.Unlock()
	s.reply(w, r, body, etag)
}

// reply writes body with cache validators, honoring If-None-Match.
func (s *Server) reply(w http.ResponseWriter, r *http.Request, body []byte, etag string) {
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", fmt.Sprintf("max-age=%d", int(s.ttl.Seconds())))
	if r.Header.Get("If-None-Match") == etag {
		s.mu.Lock()
		s.stats.NotModified++
		s.mu.Unlock()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}
