package trend

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for cache-TTL tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

func newTestStore(t *testing.T, rounds int) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), testManifest())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for i := 0; i < rounds; i++ {
		if err := s.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func get(t *testing.T, h http.Handler, url string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestServerTrendQueries(t *testing.T) {
	srv := NewServer(ServerConfig{Store: newTestStore(t, 3)})
	h := srv.Handler()

	w := get(t, h, "/v1/trends/prevalence", nil)
	if w.Code != 200 {
		t.Fatalf("prevalence: %d %s", w.Code, w.Body)
	}
	var reply trendReply
	if err := json.Unmarshal(w.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Points) != 3 || reply.Points[2].Round != 2 {
		t.Fatalf("points: %+v", reply.Points)
	}
	if reply.Points[1].Value != 0.007 {
		t.Fatalf("round 1 prevalence = %v", reply.Points[1].Value)
	}

	// Range bounds are inclusive.
	w = get(t, h, "/v1/trends/cookiewalls?from=1&to=1", nil)
	json.Unmarshal(w.Body.Bytes(), &reply)
	if len(reply.Points) != 1 || reply.Points[0].Value != 281 {
		t.Fatalf("ranged points: %+v", reply.Points)
	}

	// Per-VP metrics need ?vp=.
	w = get(t, h, "/v1/trends/vp_banner_rate?vp=Germany", nil)
	json.Unmarshal(w.Body.Bytes(), &reply)
	if len(reply.Points) != 3 || reply.Points[0].Value != 0.31 {
		t.Fatalf("vp points: %+v", reply.Points)
	}
	if w := get(t, h, "/v1/trends/vp_banner_rate", nil); w.Code != 400 {
		t.Fatalf("missing vp: %d", w.Code)
	}
	if w := get(t, h, "/v1/trends/prevalence?vp=Germany", nil); w.Code != 400 {
		t.Fatalf("vp on scalar metric: %d", w.Code)
	}
	if w := get(t, h, "/v1/trends/vp_banner_rate?vp=Atlantis", nil); w.Code != 404 {
		t.Fatalf("unknown vp: %d", w.Code)
	}
	if w := get(t, h, "/v1/trends/nope", nil); w.Code != 404 {
		t.Fatalf("unknown metric: %d", w.Code)
	}
	if w := get(t, h, "/v1/trends/prevalence?from=x", nil); w.Code != 400 {
		t.Fatalf("bad from: %d", w.Code)
	}

	// /v1/metrics enumerates the registry.
	w = get(t, h, "/v1/metrics", nil)
	if w.Code != 200 || !strings.Contains(w.Body.String(), "vp_banner_rate") {
		t.Fatalf("metrics: %d %s", w.Code, w.Body)
	}
}

func TestServerCacheHitMissAccounting(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	srv := NewServer(ServerConfig{Store: newTestStore(t, 2), Now: clock.now, CacheTTL: 10 * time.Second})
	h := srv.Handler()

	get(t, h, "/v1/trends/prevalence", nil)
	get(t, h, "/v1/trends/prevalence", nil)
	get(t, h, "/v1/trends/prevalence", nil)
	st := srv.CacheStats()
	if st.Misses != 1 || st.Hits != 2 || st.Entries != 1 {
		t.Fatalf("stats after 3 identical queries: %+v", st)
	}

	// A different canonical key is its own entry — but ?from=0 alone is
	// NOT one: it canonicalizes to the same (from, to) as the default.
	get(t, h, "/v1/trends/prevalence?from=0", nil)
	if st := srv.CacheStats(); st.Hits != 3 || st.Entries != 1 {
		t.Fatalf("stats after canonically identical query: %+v", st)
	}
	get(t, h, "/v1/trends/prevalence?from=1", nil)
	if st := srv.CacheStats(); st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats after distinct query: %+v", st)
	}

	// TTL expiry: same version, but the entry aged out.
	clock.t = clock.t.Add(11 * time.Second)
	get(t, h, "/v1/trends/prevalence", nil)
	if st := srv.CacheStats(); st.Misses != 3 || st.Stale != 0 {
		t.Fatalf("stats after TTL expiry: %+v", st)
	}
}

func TestServerCacheInvalidationOnNewRound(t *testing.T) {
	store := newTestStore(t, 2)
	srv := NewServer(ServerConfig{Store: store})
	h := srv.Handler()

	w := get(t, h, "/v1/trends/prevalence", nil)
	var before trendReply
	json.Unmarshal(w.Body.Bytes(), &before)
	if len(before.Points) != 2 {
		t.Fatalf("before: %+v", before.Points)
	}

	// A new round lands: the cached body must not be served again.
	if err := store.Append(record(2)); err != nil {
		t.Fatal(err)
	}
	w = get(t, h, "/v1/trends/prevalence", nil)
	var after trendReply
	json.Unmarshal(w.Body.Bytes(), &after)
	if len(after.Points) != 3 {
		t.Fatalf("after new round: %+v", after.Points)
	}
	st := srv.CacheStats()
	if st.Stale != 1 || st.Misses != 2 {
		t.Fatalf("stats after invalidation: %+v", st)
	}
}

func TestServerETag304RoundTrip(t *testing.T) {
	store := newTestStore(t, 2)
	srv := NewServer(ServerConfig{Store: store})
	h := srv.Handler()

	w := get(t, h, "/v1/rounds", nil)
	etag := w.Header().Get("ETag")
	if w.Code != 200 || etag == "" {
		t.Fatalf("first: %d etag=%q", w.Code, etag)
	}
	w = get(t, h, "/v1/rounds", map[string]string{"If-None-Match": etag})
	if w.Code != http.StatusNotModified || w.Body.Len() != 0 {
		t.Fatalf("conditional: %d body=%q", w.Code, w.Body)
	}
	if st := srv.CacheStats(); st.NotModified != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// After a new round the ETag changes and the stale validator
	// revalidates with a full body.
	if err := store.Append(record(2)); err != nil {
		t.Fatal(err)
	}
	w = get(t, h, "/v1/rounds", map[string]string{"If-None-Match": etag})
	if w.Code != 200 || w.Header().Get("ETag") == etag {
		t.Fatalf("post-append conditional: %d etag=%q", w.Code, w.Header().Get("ETag"))
	}
}

func TestServerAuth(t *testing.T) {
	srv := NewServer(ServerConfig{Store: newTestStore(t, 1), Token: "s3cret"})
	h := srv.Handler()
	if w := get(t, h, "/v1/rounds", nil); w.Code != 401 {
		t.Fatalf("no token: %d", w.Code)
	}
	if w := get(t, h, "/v1/rounds", map[string]string{"Authorization": "Bearer wrong"}); w.Code != 401 {
		t.Fatalf("wrong token: %d", w.Code)
	}
	if w := get(t, h, "/v1/rounds", map[string]string{"Authorization": "Bearer s3cret"}); w.Code != 200 {
		t.Fatalf("right token: %d", w.Code)
	}
}

func TestServerStatus(t *testing.T) {
	store := newTestStore(t, 2)
	srv := NewServer(ServerConfig{Store: store, Runner: &Runner{Store: store}})
	w := get(t, srv.Handler(), "/v1/status", nil)
	if w.Code != 200 {
		t.Fatalf("status: %d", w.Code)
	}
	var reply statusReply
	if err := json.Unmarshal(w.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Rounds != 2 || reply.StoreVersion != 2 || reply.Runner == nil {
		t.Fatalf("status reply: %+v", reply)
	}
}

// TestServerResponseDeterminism mirrors TestExportDeterminism at the
// API layer: two servers over two INDEPENDENTLY built stores holding
// the same rounds answer every query with byte-identical bodies and
// ETags.
func TestServerResponseDeterminism(t *testing.T) {
	urls := []string{
		"/v1/rounds",
		"/v1/rounds?from=1&to=2",
		"/v1/metrics",
		"/v1/trends/prevalence",
		"/v1/trends/price_median?from=0&to=3",
		"/v1/trends/vp_banner_rate?vp=Germany",
		"/v1/trends/vp_errors?vp=US+East",
	}
	type response struct{ body, etag string }
	var runs [][]response
	for run := 0; run < 2; run++ {
		h := NewServer(ServerConfig{Store: newTestStore(t, 4)}).Handler()
		var rs []response
		for _, u := range urls {
			w := get(t, h, u, nil)
			if w.Code != 200 {
				t.Fatalf("run %d %s: %d %s", run, u, w.Code, w.Body)
			}
			rs = append(rs, response{body: w.Body.String(), etag: w.Header().Get("ETag")})
		}
		runs = append(runs, rs)
	}
	for i, u := range urls {
		if runs[0][i].body != runs[1][i].body {
			t.Errorf("%s: bodies differ across independent stores:\n  A: %s\n  B: %s", u, runs[0][i].body, runs[1][i].body)
		}
		if runs[0][i].etag != runs[1][i].etag {
			t.Errorf("%s: ETags differ: %q vs %q", u, runs[0][i].etag, runs[1][i].etag)
		}
	}
}
