package cookies

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2023, 5, 1, 12, 0, 0, 0, time.UTC)

func fixedJar() *Jar {
	j := NewJar()
	j.Now = func() time.Time { return t0 }
	return j
}

func TestParseSetCookieBasic(t *testing.T) {
	c := ParseSetCookie("sid=abc123; Path=/; HttpOnly", "www.spiegel.de", t0)
	if c == nil {
		t.Fatal("nil cookie")
	}
	if c.Name != "sid" || c.Value != "abc123" || !c.HTTPOnly || !c.HostOnly {
		t.Fatalf("cookie = %+v", c)
	}
	if c.Domain != "www.spiegel.de" {
		t.Fatalf("domain = %q", c.Domain)
	}
}

func TestParseSetCookieDomainAttribute(t *testing.T) {
	c := ParseSetCookie("t=1; Domain=.spiegel.de", "www.spiegel.de", t0)
	if c == nil || c.Domain != "spiegel.de" || c.HostOnly {
		t.Fatalf("cookie = %+v", c)
	}
}

func TestParseSetCookieRejectsForeignDomain(t *testing.T) {
	if c := ParseSetCookie("t=1; Domain=zeit.de", "www.spiegel.de", t0); c != nil {
		t.Fatalf("foreign domain accepted: %+v", c)
	}
}

func TestParseSetCookieRejectsPublicSuffixDomain(t *testing.T) {
	if c := ParseSetCookie("t=1; Domain=de", "www.spiegel.de", t0); c != nil {
		t.Fatalf("public suffix domain accepted: %+v", c)
	}
}

func TestParseSetCookieMalformed(t *testing.T) {
	for _, h := range []string{"", "noequals", "=value", "  =x; Path=/"} {
		if c := ParseSetCookie(h, "a.de", t0); c != nil {
			t.Errorf("ParseSetCookie(%q) = %+v, want nil", h, c)
		}
	}
}

func TestParseSetCookieMaxAge(t *testing.T) {
	c := ParseSetCookie("t=1; Max-Age=60", "a.de", t0)
	if c.Expires != t0.Add(60*time.Second) {
		t.Fatalf("expires = %v", c.Expires)
	}
	// Max-Age <= 0 expires immediately.
	c = ParseSetCookie("t=1; Max-Age=0", "a.de", t0)
	if !c.Expired(t0) {
		t.Fatal("Max-Age=0 not expired")
	}
}

func TestParseSetCookieExpires(t *testing.T) {
	h := "t=1; Expires=" + t0.Add(time.Hour).Format(time.RFC1123)
	c := ParseSetCookie(h, "a.de", t0)
	if c.Expired(t0) || !c.Expired(t0.Add(2*time.Hour)) {
		t.Fatalf("expires handling wrong: %+v", c)
	}
}

func TestJarStoreAndRetrieve(t *testing.T) {
	j := fixedJar()
	j.SetFromHeaders("www.spiegel.de", []string{
		"sid=1; Path=/",
		"pref=dark; Domain=spiegel.de",
	})
	got := j.CookiesFor("www.spiegel.de", "/article", false)
	if len(got) != 2 {
		t.Fatalf("got %d cookies", len(got))
	}
	// Host-only cookie must not match a sibling subdomain; domain
	// cookie must.
	got = j.CookiesFor("abo.spiegel.de", "/", false)
	if len(got) != 1 || got[0].Name != "pref" {
		t.Fatalf("sibling got %v", names(got))
	}
}

func TestJarPathMatching(t *testing.T) {
	j := fixedJar()
	j.SetFromHeaders("a.de", []string{"p=1; Path=/shop"})
	if n := len(j.CookiesFor("a.de", "/shop/cart", false)); n != 1 {
		t.Fatalf("/shop/cart: %d", n)
	}
	if n := len(j.CookiesFor("a.de", "/shopping", false)); n != 0 {
		t.Fatalf("/shopping must not match /shop: %d", n)
	}
	if n := len(j.CookiesFor("a.de", "/", false)); n != 0 {
		t.Fatalf("/: %d", n)
	}
}

func TestJarSecure(t *testing.T) {
	j := fixedJar()
	j.SetFromHeaders("a.de", []string{"s=1; Secure"})
	if n := len(j.CookiesFor("a.de", "/", false)); n != 0 {
		t.Fatal("secure cookie sent over insecure channel")
	}
	if n := len(j.CookiesFor("a.de", "/", true)); n != 1 {
		t.Fatal("secure cookie not sent over secure channel")
	}
}

func TestJarOverwrite(t *testing.T) {
	j := fixedJar()
	j.SetFromHeaders("a.de", []string{"k=old"})
	j.SetFromHeaders("a.de", []string{"k=new"})
	all := j.All()
	if len(all) != 1 || all[0].Value != "new" {
		t.Fatalf("all = %+v", all)
	}
}

func TestJarDeleteViaExpiry(t *testing.T) {
	j := fixedJar()
	j.SetFromHeaders("a.de", []string{"k=v"})
	j.SetFromHeaders("a.de", []string{"k=; Max-Age=0"})
	if j.Len() != 0 {
		t.Fatal("expired set must delete")
	}
}

func TestJarExpiryOnRead(t *testing.T) {
	j := NewJar()
	now := t0
	j.Now = func() time.Time { return now }
	j.SetFromHeaders("a.de", []string{"k=v; Max-Age=10"})
	if len(j.All()) != 1 {
		t.Fatal("cookie missing")
	}
	now = t0.Add(time.Minute)
	if len(j.All()) != 0 {
		t.Fatal("expired cookie returned")
	}
}

func TestJarClear(t *testing.T) {
	j := fixedJar()
	j.SetFromHeaders("a.de", []string{"k=v"})
	j.Clear()
	if j.Len() != 0 {
		t.Fatal("clear failed")
	}
}

func TestJarDeterministicOrder(t *testing.T) {
	j := fixedJar()
	j.SetFromHeaders("a.de", []string{"b=2", "a=1", "c=3"})
	var prev string
	for _, c := range j.All() {
		if c.Name < prev {
			t.Fatal("All() not sorted")
		}
		prev = c.Name
	}
}

func TestClassify(t *testing.T) {
	fp := &Cookie{Domain: "abo.spiegel.de"}
	tp := &Cookie{Domain: "trackpix1.example"}
	if Classify(fp, "www.spiegel.de") != FirstParty {
		t.Fatal("same-site cookie must be first-party")
	}
	if Classify(tp, "www.spiegel.de") != ThirdParty {
		t.Fatal("tracker cookie must be third-party")
	}
}

func TestCount(t *testing.T) {
	j := fixedJar()
	j.SetFromHeaders("www.site.de", []string{"own=1"})
	j.SetFromHeaders("cdn.assets.example", []string{"c=1"})
	j.SetFromHeaders("sync.trackpix1.example", []string{"tr=1"})
	isTracking := func(d string) bool { return strings.Contains(d, "trackpix") }
	tally := Count(j, "www.site.de", isTracking)
	if tally.FirstParty != 1 || tally.ThirdParty != 2 || tally.Tracking != 1 {
		t.Fatalf("tally = %+v", tally)
	}
}

func TestClassString(t *testing.T) {
	if FirstParty.String() != "first-party" || ThirdParty.String() != "third-party" {
		t.Fatal("Class.String wrong")
	}
}

func names(cs []*Cookie) []string {
	var out []string
	for _, c := range cs {
		out = append(out, c.Name)
	}
	return out
}

// Property: a stored, unexpired host cookie is always returned for its
// own host and path /.
func TestQuickRoundTrip(t *testing.T) {
	f := func(name, value string) bool {
		name = sanitizeToken(name)
		if name == "" {
			return true
		}
		value = sanitizeToken(value)
		j := fixedJar()
		j.SetFromHeaders("host.de", []string{name + "=" + value})
		cs := j.CookiesFor("host.de", "/", true)
		return len(cs) == 1 && cs[0].Name == name && cs[0].Value == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// sanitizeToken strips separators that the cookie grammar forbids.
func sanitizeToken(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r > ' ' && r < 127 && r != ';' && r != '=' && r != ',' {
			b.WriteRune(r)
		}
	}
	return b.String()
}
