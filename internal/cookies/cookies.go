// Package cookies implements the cookie model of the study: an
// RFC 6265-subset cookie jar for the emulated browser, and the
// first-party / third-party / tracking classification used in §4.3 and
// §4.4 of the paper.
//
// Classification rules (identical to the paper's):
//
//   - a cookie is FIRST-PARTY when its domain shares a registrable
//     domain (eTLD+1) with the visited page, THIRD-PARTY otherwise;
//   - a cookie is TRACKING when its domain matches an entry of the
//     justdomains-style blocklist (package trackdb) — matching the
//     domain itself or any parent registrable domain.
package cookies

import (
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cookiewalk/internal/publicsuffix"
)

// Cookie is a single stored cookie.
type Cookie struct {
	Name  string
	Value string
	// Domain is the cookie's domain attribute, lower-case, without a
	// leading dot. HostOnly marks cookies that had no Domain attribute.
	Domain   string
	Path     string
	Expires  time.Time // zero means session cookie
	Secure   bool
	HTTPOnly bool
	HostOnly bool
}

// Expired reports whether the cookie is expired at now.
func (c *Cookie) Expired(now time.Time) bool {
	return !c.Expires.IsZero() && !now.Before(c.Expires)
}

// ParseSetCookie parses one Set-Cookie header value received from
// requestHost. It returns nil for malformed or rejected cookies
// (empty name, domain not matching the request host).
func ParseSetCookie(header, requestHost string, now time.Time) *Cookie {
	c, ok := parseSetCookie(header, requestHost, now)
	if !ok {
		return nil
	}
	return &c
}

// parseSetCookie is ParseSetCookie returning the cookie by value: the
// jar stores values, so its header-ingest path never allocates a
// per-cookie box. Segments are walked with IndexByte and attribute
// names matched case-insensitively in place — every page view of every
// crawl parses a handful of these headers, so the old
// Split/SplitN/ToLower allocations added up.
func parseSetCookie(header, requestHost string, now time.Time) (Cookie, bool) {
	seg, rest, _ := strings.Cut(header, ";")
	eq := strings.IndexByte(seg, '=')
	if eq < 0 {
		return Cookie{}, false
	}
	name := strings.TrimSpace(seg[:eq])
	if name == "" {
		return Cookie{}, false
	}
	c := Cookie{
		Name:     name,
		Value:    strings.TrimSpace(seg[eq+1:]),
		Domain:   canonicalHost(requestHost),
		Path:     "/",
		HostOnly: true,
	}
	for rest != "" {
		var attr string
		attr, rest, _ = strings.Cut(rest, ";")
		key, val := attr, ""
		if eq := strings.IndexByte(attr, '='); eq >= 0 {
			key, val = attr[:eq], strings.TrimSpace(attr[eq+1:])
		}
		key = strings.TrimSpace(key)
		switch {
		case strings.EqualFold(key, "domain"):
			d := strings.TrimPrefix(strings.ToLower(val), ".")
			if d == "" {
				continue
			}
			// RFC 6265 §5.3: the request host must domain-match the
			// attribute, and the attribute must not be a public suffix.
			if !domainMatch(canonicalHost(requestHost), d) || publicsuffix.IsSuffix(d) {
				return Cookie{}, false
			}
			c.Domain = d
			c.HostOnly = false
		case strings.EqualFold(key, "path"):
			if strings.HasPrefix(val, "/") {
				c.Path = val
			}
		case strings.EqualFold(key, "max-age"):
			if secs, err := strconv.Atoi(val); err == nil {
				if secs <= 0 {
					c.Expires = now.Add(-time.Second)
				} else {
					c.Expires = now.Add(time.Duration(secs) * time.Second)
				}
			}
		case strings.EqualFold(key, "expires"):
			if c.Expires.IsZero() { // Max-Age wins over Expires
				if t, err := time.Parse(time.RFC1123, val); err == nil {
					c.Expires = t
				}
			}
		case strings.EqualFold(key, "secure"):
			c.Secure = true
		case strings.EqualFold(key, "httponly"):
			c.HTTPOnly = true
		}
	}
	return c, true
}

// domainMatch implements RFC 6265 §5.1.3: host domain-matches domain
// when they are equal or host ends with "." + domain.
func domainMatch(host, domain string) bool {
	if host == domain {
		return true
	}
	return strings.HasSuffix(host, "."+domain)
}

func canonicalHost(h string) string {
	h = strings.ToLower(strings.TrimSpace(h))
	if i := strings.IndexByte(h, ':'); i >= 0 {
		h = h[:i]
	}
	return strings.TrimSuffix(h, ".")
}

// defaultPath implements RFC 6265 §5.1.4.
func pathMatch(requestPath, cookiePath string) bool {
	if requestPath == cookiePath {
		return true
	}
	if !strings.HasPrefix(requestPath, cookiePath) {
		return false
	}
	return strings.HasSuffix(cookiePath, "/") ||
		requestPath[len(cookiePath)] == '/'
}

// Jar stores cookies for the emulated browser. It is safe for
// concurrent use. Expiry is evaluated against the Now function, which
// defaults to time.Now but is fixed in tests for determinism.
//
// Storage is by value under a struct key: the per-cookie box and the
// domain+";"+path+";"+name key concatenation used to cost two
// allocations per Set-Cookie header across millions of page views.
type Jar struct {
	mu      sync.Mutex
	cookies map[cookieKey]Cookie
	// scratch is the reusable candidate buffer behind
	// AppendCookieHeader; guarded by mu.
	scratch []Cookie
	Now     func() time.Time
}

// cookieKey identifies a cookie per RFC 6265 storage semantics.
type cookieKey struct {
	domain, path, name string
}

// NewJar returns an empty jar.
func NewJar() *Jar {
	return &Jar{cookies: make(map[cookieKey]Cookie), Now: time.Now}
}

func key(c *Cookie) cookieKey { return cookieKey{c.Domain, c.Path, c.Name} }

// SetFromHeaders stores cookies from Set-Cookie header values received
// in a response from host. Malformed cookies are dropped; expired
// cookies delete existing entries (the RFC deletion idiom).
func (j *Jar) SetFromHeaders(host string, headers []string) {
	now := j.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, h := range headers {
		c, ok := parseSetCookie(h, host, now)
		if !ok {
			continue
		}
		if c.Expired(now) {
			delete(j.cookies, key(&c))
			continue
		}
		j.cookies[key(&c)] = c
	}
}

// Set stores a cookie directly (used by declarative page directives).
func (j *Jar) Set(c *Cookie) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cookies[key(c)] = *c
}

// sendable reports whether c would be sent on a request to (h, path,
// secure) at now; h must already be canonical.
func (c *Cookie) sendable(h, path string, secure bool, now time.Time) bool {
	if c.Expired(now) {
		return false
	}
	if c.Secure && !secure {
		return false
	}
	if c.HostOnly {
		if h != c.Domain {
			return false
		}
	} else if !domainMatch(h, c.Domain) {
		return false
	}
	return pathMatch(path, c.Path)
}

// sendOrder is the deterministic Cookie-header order: longest path,
// then name, then domain.
func sendOrder(a, b *Cookie) bool {
	if len(a.Path) != len(b.Path) {
		return len(a.Path) > len(b.Path)
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.Domain < b.Domain
}

// CookiesFor returns copies of the cookies that would be sent on a
// request to host+path over a connection that is secure when secure is
// true, sorted by longest path then name for deterministic header
// order.
func (j *Jar) CookiesFor(host, path string, secure bool) []*Cookie {
	if path == "" {
		path = "/"
	}
	h := canonicalHost(host)
	now := j.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []*Cookie
	for _, c := range j.cookies {
		if c.sendable(h, path, secure, now) {
			cc := c
			out = append(out, &cc)
		}
	}
	sort.Slice(out, func(a, b int) bool { return sendOrder(out[a], out[b]) })
	return out
}

// AppendCookieHeader appends the Cookie header value for a request to
// host+path — "name1=v1; name2=v2" in the same deterministic order as
// CookiesFor — onto dst and returns it. An empty jar (the stateless
// landscape crawl's steady state) and a reused dst make the whole call
// allocation-free; the emulated browser's request scratch path builds
// its Cookie header here instead of materializing a []*Cookie per
// request.
func (j *Jar) AppendCookieHeader(dst []byte, host, path string, secure bool) []byte {
	if path == "" {
		path = "/"
	}
	h := canonicalHost(host)
	now := j.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.cookies) == 0 {
		return dst
	}
	j.scratch = j.scratch[:0]
	for _, c := range j.cookies {
		if c.sendable(h, path, secure, now) {
			j.scratch = append(j.scratch, c)
		}
	}
	// slices.SortFunc, not sort.Slice: the reflection-based swapper
	// would allocate on every cookied request.
	slices.SortFunc(j.scratch, func(a, b Cookie) int {
		if d := len(b.Path) - len(a.Path); d != 0 {
			return d
		}
		if c := strings.Compare(a.Name, b.Name); c != 0 {
			return c
		}
		return strings.Compare(a.Domain, b.Domain)
	})
	for i := range j.scratch {
		if i > 0 {
			dst = append(dst, "; "...)
		}
		dst = append(dst, j.scratch[i].Name...)
		dst = append(dst, '=')
		dst = append(dst, j.scratch[i].Value...)
	}
	return dst
}

// All returns copies of every live cookie in the jar, deterministically
// ordered.
func (j *Jar) All() []*Cookie {
	now := j.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []*Cookie
	for _, c := range j.cookies {
		if !c.Expired(now) {
			cc := c
			out = append(out, &cc)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Domain != out[b].Domain {
			return out[a].Domain < out[b].Domain
		}
		if out[a].Name != out[b].Name {
			return out[a].Name < out[b].Name
		}
		return out[a].Path < out[b].Path
	})
	return out
}

// Len returns the number of live cookies.
func (j *Jar) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.cookies)
}

// Clear removes all cookies — the paper's §5 note that revoking a
// cookiewall "accept" requires deleting cookies and local storage.
func (j *Jar) Clear() {
	j.mu.Lock()
	defer j.mu.Unlock()
	clear(j.cookies)
}

// Class is the party classification of a cookie relative to a page.
type Class int

const (
	// FirstParty cookies share the page's registrable domain.
	FirstParty Class = iota
	// ThirdParty cookies come from another registrable domain.
	ThirdParty
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == FirstParty {
		return "first-party"
	}
	return "third-party"
}

// Classify returns the party class of cookie c for a page hosted at
// pageHost.
func Classify(c *Cookie, pageHost string) Class {
	if publicsuffix.SameSite(c.Domain, pageHost) {
		return FirstParty
	}
	return ThirdParty
}

// Tally is the per-page cookie count triple reported in Figures 4/5.
type Tally struct {
	FirstParty int
	ThirdParty int
	Tracking   int
}

// Count classifies every cookie in the jar against pageHost. isTracking
// decides blocklist membership (normally trackdb.IsTracking).
func Count(j *Jar, pageHost string, isTracking func(domain string) bool) Tally {
	var t Tally
	for _, c := range j.All() {
		if Classify(c, pageHost) == FirstParty {
			t.FirstParty++
		} else {
			t.ThirdParty++
		}
		if isTracking != nil && isTracking(c.Domain) {
			t.Tracking++
		}
	}
	return t
}
