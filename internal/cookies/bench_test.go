package cookies

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkJarSetAndQuery(b *testing.B) {
	now := time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC)
	headers := make([]string, 0, 40)
	for i := 0; i < 40; i++ {
		headers = append(headers, fmt.Sprintf("c%02d=v; Path=/; Max-Age=3600", i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j := NewJar()
		j.Now = func() time.Time { return now }
		j.SetFromHeaders("www.site.de", headers)
		if len(j.CookiesFor("www.site.de", "/", true)) != 40 {
			b.Fatal("lost cookies")
		}
	}
}

func BenchmarkParseSetCookie(b *testing.B) {
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ParseSetCookie("sid=abc; Domain=.site.de; Path=/; Max-Age=3600; Secure; HttpOnly", "www.site.de", now) == nil {
			b.Fatal("parse failed")
		}
	}
}
