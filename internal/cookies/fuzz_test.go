package cookies

import (
	"testing"
	"time"
)

// FuzzParseSetCookie hardens the Set-Cookie parser: any header either
// parses into a well-formed cookie or is rejected, never panics.
func FuzzParseSetCookie(f *testing.F) {
	for _, s := range []string{
		"a=b",
		"sid=x; Path=/; HttpOnly; Secure",
		"t=1; Domain=.example.de; Max-Age=60",
		"t=1; Expires=Mon, 02 Jan 2034 15:04:05 UTC",
		"=novalue", "; ; ;", "a=b; Domain=", "a=b; Max-Age=notanumber",
		"a=b; Domain=de", "x=y; Path=relative",
	} {
		f.Add(s)
	}
	now := time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC)
	f.Fuzz(func(t *testing.T, header string) {
		c := ParseSetCookie(header, "www.example.de", now)
		if c == nil {
			return
		}
		if c.Name == "" {
			t.Fatal("accepted cookie without name")
		}
		if c.Domain == "" {
			t.Fatal("accepted cookie without domain")
		}
		if c.Path == "" || c.Path[0] != '/' {
			t.Fatalf("bad path %q", c.Path)
		}
		// A stored cookie must round-trip through the jar.
		j := NewJar()
		j.Now = func() time.Time { return now }
		j.Set(c)
		if !c.Expired(now) && len(j.All()) != 1 {
			t.Fatal("jar lost the cookie")
		}
	})
}
