// Package vantage models the measurement vantage points of the study
// (§3): eight AWS regions across six continents, chosen to cover
// different privacy regimes — GDPR (Frankfurt, Stockholm), CCPA
// (San Francisco), LGPD (São Paulo), and no/less-strict regulation
// elsewhere.
//
// In the paper the vantage point is implied by the crawler's source IP;
// here the emulated browser stamps each request with the VP's country
// and the web farm resolves geo-dependent behaviour from it (the
// documented substitution for IP geolocation).
package vantage

// GeoHeader carries the vantage point name on every emulated-browser
// request. It substitutes for IP geolocation: a real crawler's region
// is implied by its source address, which an in-process transport does
// not have.
const GeoHeader = "X-Vantage"

// VisitHeader carries a "vp|repetition" label so the farm can derive
// deterministic per-visit jitter — the stand-in for organic ad-rotation
// variance that the paper averages away with five repetitions.
const VisitHeader = "X-Cw-Visit"

// Regulation is the privacy regime a vantage point falls under.
type Regulation int

const (
	// RegNone marks no or less strict privacy regulation.
	RegNone Regulation = iota
	// RegGDPR is the EU General Data Protection Regulation.
	RegGDPR
	// RegCCPA is the California Consumer Privacy Act.
	RegCCPA
	// RegLGPD is Brazil's Lei Geral de Proteção de Dados.
	RegLGPD
)

// String implements fmt.Stringer.
func (r Regulation) String() string {
	switch r {
	case RegGDPR:
		return "GDPR"
	case RegCCPA:
		return "CCPA"
	case RegLGPD:
		return "LGPD"
	}
	return "none"
}

// VP is one measurement vantage point.
type VP struct {
	// Name is the identifier used throughout results ("Germany",
	// "US East", ... exactly as in Table 1).
	Name string
	// City is the AWS location from §3.
	City string
	// Country is the ISO 3166-1 alpha-2 code; it keys the country
	// toplist and geo policies.
	Country string
	// Regulation is the privacy regime at this VP.
	Regulation Regulation
	// MainLanguage is the most commonly spoken language (ISO 639-1),
	// used for the Language column of Table 1.
	MainLanguage string
	// Currency is the local ISO 4217 currency code.
	Currency string
	// TLD is the country-code TLD associated with the VP's country,
	// used for the ccTLD column of Table 1.
	TLD string
}

// IsEU reports whether the VP is in the European Union.
func (v VP) IsEU() bool {
	return v.Country == "DE" || v.Country == "SE"
}

// all lists the paper's eight vantage points in Table 1 row order.
var all = []VP{
	{Name: "US East", City: "Ashburn", Country: "US", Regulation: RegNone, MainLanguage: "en", Currency: "USD", TLD: "us"},
	{Name: "US West", City: "San Francisco", Country: "US", Regulation: RegCCPA, MainLanguage: "en", Currency: "USD", TLD: "us"},
	{Name: "Brazil", City: "São Paulo", Country: "BR", Regulation: RegLGPD, MainLanguage: "pt", Currency: "BRL", TLD: "br"},
	{Name: "Germany", City: "Frankfurt", Country: "DE", Regulation: RegGDPR, MainLanguage: "de", Currency: "EUR", TLD: "de"},
	{Name: "Sweden", City: "Stockholm", Country: "SE", Regulation: RegGDPR, MainLanguage: "sv", Currency: "SEK", TLD: "se"},
	{Name: "South Africa", City: "Cape Town", Country: "ZA", Regulation: RegNone, MainLanguage: "af", Currency: "ZAR", TLD: "za"},
	{Name: "India", City: "Mumbai", Country: "IN", Regulation: RegNone, MainLanguage: "en", Currency: "INR", TLD: "in"},
	{Name: "Australia", City: "Sydney", Country: "AU", Regulation: RegNone, MainLanguage: "en", Currency: "AUD", TLD: "au"},
}

// All returns the eight vantage points in Table 1 row order. The
// returned slice is a copy.
func All() []VP {
	out := make([]VP, len(all))
	copy(out, all)
	return out
}

// ByName returns the VP with the given Name.
func ByName(name string) (VP, bool) {
	for _, v := range all {
		if v.Name == name {
			return v, true
		}
	}
	return VP{}, false
}

// ByCountry returns the first VP in the given country. Note that the
// two US VPs share a country; ByCountry returns US East.
func ByCountry(code string) (VP, bool) {
	for _, v := range all {
		if v.Country == code {
			return v, true
		}
	}
	return VP{}, false
}

// Countries returns the distinct VP countries in stable order
// (US, BR, DE, SE, ZA, IN, AU) — the countries that have CrUX toplists.
func Countries() []string {
	var out []string
	seen := map[string]bool{}
	for _, v := range all {
		if !seen[v.Country] {
			seen[v.Country] = true
			out = append(out, v.Country)
		}
	}
	return out
}
