package vantage

import "testing"

func TestAllEightVPs(t *testing.T) {
	vps := All()
	if len(vps) != 8 {
		t.Fatalf("got %d VPs", len(vps))
	}
	// Table 1 row order.
	wantOrder := []string{"US East", "US West", "Brazil", "Germany",
		"Sweden", "South Africa", "India", "Australia"}
	for i, w := range wantOrder {
		if vps[i].Name != w {
			t.Errorf("row %d = %s, want %s", i, vps[i].Name, w)
		}
	}
}

func TestRegulations(t *testing.T) {
	checks := map[string]Regulation{
		"Germany": RegGDPR, "Sweden": RegGDPR,
		"US West": RegCCPA, "Brazil": RegLGPD,
		"US East": RegNone, "India": RegNone,
	}
	for name, want := range checks {
		vp, ok := ByName(name)
		if !ok || vp.Regulation != want {
			t.Errorf("%s: regulation %v (found %v)", name, vp.Regulation, ok)
		}
	}
}

func TestIsEU(t *testing.T) {
	for _, v := range All() {
		wantEU := v.Country == "DE" || v.Country == "SE"
		if v.IsEU() != wantEU {
			t.Errorf("%s: IsEU = %v", v.Name, v.IsEU())
		}
	}
}

func TestByNameMissing(t *testing.T) {
	if _, ok := ByName("Atlantis"); ok {
		t.Fatal("found non-existent VP")
	}
}

func TestByCountry(t *testing.T) {
	vp, ok := ByCountry("US")
	if !ok || vp.Name != "US East" {
		t.Fatalf("ByCountry(US) = %v, %v", vp.Name, ok)
	}
	if _, ok := ByCountry("XX"); ok {
		t.Fatal("found non-existent country")
	}
}

func TestCountriesDistinct(t *testing.T) {
	cs := Countries()
	if len(cs) != 7 { // two US VPs share a toplist country
		t.Fatalf("countries = %v", cs)
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if seen[c] {
			t.Fatalf("duplicate country %s", c)
		}
		seen[c] = true
	}
}

func TestRegulationString(t *testing.T) {
	if RegGDPR.String() != "GDPR" || RegNone.String() != "none" ||
		RegCCPA.String() != "CCPA" || RegLGPD.String() != "LGPD" {
		t.Fatal("Regulation.String wrong")
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].Name = "mutated"
	if All()[0].Name == "mutated" {
		t.Fatal("All leaks internal slice")
	}
}

func TestTable1Languages(t *testing.T) {
	// The Language column of Table 1 depends on these assignments:
	// South Africa must NOT be English (its row shows 0), India and
	// Australia must be English (10 each).
	za, _ := ByName("South Africa")
	if za.MainLanguage == "en" {
		t.Fatal("South Africa main language must not be en")
	}
	for _, name := range []string{"India", "Australia", "US East", "US West"} {
		vp, _ := ByName(name)
		if vp.MainLanguage != "en" {
			t.Errorf("%s main language = %s", name, vp.MainLanguage)
		}
	}
}
