package langdetect

import "testing"

var samples = map[string]string{
	"de": "Wir verwenden Cookies und ähnliche Technologien, um Ihnen die Inhalte auf unserer Website anzubieten. Sie können den Dienst ohne Werbung für 2,99 Euro im Monat nutzen oder der Verarbeitung Ihrer Daten zustimmen.",
	"en": "We use cookies and similar technologies to provide you with the content on our website. You can use the service without advertising for a monthly fee or consent to the processing of your data.",
	"it": "Utilizziamo i cookie e tecnologie simili per offrirti i contenuti del nostro sito. Puoi usare il servizio senza pubblicità per un piccolo abbonamento mensile oppure acconsentire al trattamento dei tuoi dati.",
	"sv": "Vi använder cookies och liknande teknik för att kunna erbjuda dig innehållet på vår webbplats. Du kan använda tjänsten utan annonser för en månadsavgift eller samtycka till behandlingen av dina uppgifter.",
	"fr": "Nous utilisons des cookies et des technologies similaires pour vous proposer les contenus de notre site. Vous pouvez utiliser le service sans publicité pour un abonnement mensuel ou consentir au traitement de vos données.",
	"es": "Utilizamos cookies y tecnologías similares para ofrecerle los contenidos de nuestro sitio. Usted puede usar el servicio sin publicidad por una cuota mensual o consentir el tratamiento de sus datos.",
	"pt": "Utilizamos cookies e tecnologias semelhantes para oferecer o conteúdo do nosso site. Você pode usar o serviço sem publicidade por uma mensalidade ou consentir com o processamento dos seus dados.",
	"nl": "Wij gebruiken cookies en vergelijkbare technologieën om u de inhoud van onze website aan te bieden. U kunt de dienst zonder advertenties gebruiken voor een maandelijks bedrag of instemmen met de verwerking van uw gegevens.",
	"da": "Vi bruger cookies og lignende teknologier for at kunne tilbyde dig indholdet på vores hjemmeside. Du kan bruge tjenesten uden annoncer for et månedligt beløb eller samtykke til behandlingen af dine oplysninger.",
}

func TestDetectBannerTexts(t *testing.T) {
	for want, text := range samples {
		got := Detect(text)
		if got.Lang != want {
			t.Errorf("want %s, got %s (conf %.2f) for %q", want, got.Lang, got.Confidence, text[:40])
		}
		if got.Confidence <= 0 || got.Confidence > 1 {
			t.Errorf("%s: confidence out of range: %g", want, got.Confidence)
		}
	}
}

func TestDetectShortInput(t *testing.T) {
	for _, text := range []string{"", "ok", "a b"} {
		if got := Detect(text); got.Lang != "und" {
			t.Errorf("Detect(%q) = %+v, want und", text, got)
		}
	}
}

func TestDetectNoStopwords(t *testing.T) {
	if got := Detect("zzz qqq xxx kwyjibo flurble snark"); got.Lang != "und" {
		t.Errorf("nonsense text detected as %s", got.Lang)
	}
}

func TestDetectDeterministic(t *testing.T) {
	text := samples["de"]
	first := Detect(text)
	for i := 0; i < 10; i++ {
		if got := Detect(text); got != first {
			t.Fatal("Detect is nondeterministic")
		}
	}
}

func TestLanguagesSorted(t *testing.T) {
	langs := Languages()
	if len(langs) < 9 {
		t.Fatalf("only %d languages", len(langs))
	}
	for i := 1; i < len(langs); i++ {
		if langs[i-1] >= langs[i] {
			t.Fatal("Languages not sorted")
		}
	}
}

func TestGermanVsDutchSeparation(t *testing.T) {
	// The de/nl pair is the hardest in our set; diacritics decide.
	de := Detect("Die Nutzer können ohne Werbung lesen, dafür zahlen sie monatlich einen Beitrag über unsere Website.")
	if de.Lang != "de" {
		t.Errorf("German misdetected as %s", de.Lang)
	}
	nl := Detect("De gebruikers kunnen zonder advertenties lezen, daarvoor betalen zij maandelijks een bedrag via onze website.")
	if nl.Lang != "nl" {
		t.Errorf("Dutch misdetected as %s", nl.Lang)
	}
}
