// Package langdetect identifies the language of website text. It
// substitutes for CLD3 in the paper (§4.1, "we inspect the language of
// the cookiewall websites using CLD3 to characterize the main target
// audience").
//
// The classifier is a weighted stopword scorer with diacritic hints:
// function words are near-perfect discriminators for the languages the
// study encounters (German, English, Italian, Swedish, French, Spanish,
// Portuguese, Dutch, Danish, Afrikaans), they are extremely frequent,
// and the approach is fully deterministic — no model files needed.
package langdetect

import (
	"sort"
	"strings"
	"unicode"
)

// Result is a language detection outcome.
type Result struct {
	// Lang is an ISO 639-1 code, or "und" when undetermined.
	Lang string
	// Confidence is the winning share of the total score in [0,1].
	Confidence float64
}

// Languages returns the ISO codes the detector can distinguish, sorted.
func Languages() []string {
	out := make([]string, 0, len(stopwords))
	for l := range stopwords {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// stopwords maps language code to highly frequent function words.
// Words shared between languages (e.g. "in" de/en/it, "de" fr/es/pt/nl)
// are fine: they contribute to several scores and the distinctive rest
// decides.
var stopwords = map[string][]string{
	"de": {"und", "der", "die", "das", "nicht", "mit", "für", "auf", "ist",
		"sie", "wir", "ein", "eine", "von", "zu", "den", "im", "auch",
		"werden", "oder", "bei", "nur", "alle", "wird", "ihre", "unsere",
		"können", "ohne", "mehr", "zur", "zum", "durch", "über"},
	"en": {"the", "and", "of", "to", "in", "is", "you", "that", "it",
		"for", "with", "are", "this", "your", "our", "all", "can",
		"will", "more", "about", "use", "we", "on", "by", "or", "from"},
	"it": {"il", "la", "di", "che", "e", "un", "una", "per", "con", "del",
		"della", "sono", "non", "più", "questo", "nostro", "tutti",
		"anche", "come", "dei", "delle", "gli", "nel", "alla", "senza"},
	"sv": {"och", "att", "det", "som", "på", "är", "av", "för", "med",
		"den", "till", "inte", "om", "ett", "vi", "du", "kan", "din",
		"våra", "alla", "eller", "har", "från", "utan", "mer"},
	"fr": {"le", "la", "les", "des", "et", "est", "vous", "que", "pour",
		"dans", "une", "nous", "avec", "sur", "votre", "nos", "tous",
		"pas", "plus", "aux", "ces", "sans", "être", "sont", "ou"},
	"es": {"el", "la", "los", "las", "de", "que", "y", "en", "un", "una",
		"es", "para", "con", "su", "por", "más", "como", "nuestro",
		"todos", "sin", "usted", "puede", "este", "sobre", "o"},
	"pt": {"o", "a", "os", "as", "de", "que", "e", "em", "um", "uma",
		"é", "para", "com", "seu", "sua", "por", "mais", "como",
		"nosso", "todos", "sem", "você", "pode", "este", "ou", "não"},
	"nl": {"de", "het", "een", "en", "van", "is", "dat", "op", "te",
		"met", "voor", "zijn", "niet", "aan", "ook", "als", "bij",
		"naar", "uw", "onze", "alle", "kunnen", "zonder", "meer", "of"},
	"da": {"og", "det", "at", "en", "den", "til", "er", "som", "på",
		"de", "med", "for", "ikke", "der", "du", "vi", "kan", "din",
		"vores", "alle", "eller", "har", "fra", "uden", "mere"},
	"af": {"die", "en", "van", "het", "is", "vir", "wat", "nie", "met",
		"op", "aan", "om", "ons", "jou", "alle", "kan", "word", "meer",
		"sonder", "hierdie", "deur", "was", "sal", "u"},
}

// diacriticHints gives a bonus when a language-distinctive character
// appears, disambiguating close relatives (sv/da, es/pt, de/nl).
var diacriticHints = map[string][]rune{
	"de": {'ß', 'ä', 'ö', 'ü'},
	"sv": {'å', 'ä', 'ö'},
	"da": {'å', 'æ', 'ø'},
	"fr": {'ç', 'é', 'è', 'ê', 'à', 'ù'},
	"es": {'ñ', '¿', '¡', 'ó', 'í'},
	"pt": {'ã', 'õ', 'ç', 'ê', 'á'},
	"it": {'à', 'è', 'ì', 'ò', 'ù'},
}

const diacriticBonus = 2.0

// Detect identifies the language of text. Short or empty input returns
// ("und", 0). Ties break deterministically in favour of the
// alphabetically first language code.
func Detect(text string) Result {
	words := tokenize(text)
	if len(words) < 3 {
		return Result{Lang: "und"}
	}
	scores := make(map[string]float64, len(stopwords))
	for lang, set := range stopwordSets {
		var s float64
		for _, w := range words {
			if set[w] {
				s++
			}
		}
		scores[lang] = s
	}
	for lang, runes := range diacriticHints {
		for _, r := range runes {
			if strings.ContainsRune(text, r) {
				scores[lang] += diacriticBonus
			}
		}
	}
	var total float64
	best, bestScore := "und", 0.0
	langs := Languages()
	for _, lang := range langs {
		s := scores[lang]
		total += s
		if s > bestScore {
			best, bestScore = lang, s
		}
	}
	if bestScore == 0 || total == 0 {
		return Result{Lang: "und"}
	}
	return Result{Lang: best, Confidence: bestScore / total}
}

// stopwordSets is the set-form of stopwords, built once.
var stopwordSets = func() map[string]map[string]bool {
	m := make(map[string]map[string]bool, len(stopwords))
	for lang, words := range stopwords {
		set := make(map[string]bool, len(words))
		for _, w := range words {
			set[w] = true
		}
		m[lang] = set
	}
	return m
}()

func tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r)
	})
}
