// Package langdetect identifies the language of website text. It
// substitutes for CLD3 in the paper (§4.1, "we inspect the language of
// the cookiewall websites using CLD3 to characterize the main target
// audience").
//
// The classifier is a weighted stopword scorer with diacritic hints:
// function words are near-perfect discriminators for the languages the
// study encounters (German, English, Italian, Swedish, French, Spanish,
// Portuguese, Dutch, Danish, Afrikaans), they are extremely frequent,
// and the approach is fully deterministic — no model files needed.
package langdetect

import (
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Result is a language detection outcome.
type Result struct {
	// Lang is an ISO 639-1 code, or "und" when undetermined.
	Lang string
	// Confidence is the winning share of the total score in [0,1].
	Confidence float64
}

// Languages returns the ISO codes the detector can distinguish, sorted.
func Languages() []string {
	out := make([]string, 0, len(stopwords))
	for l := range stopwords {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// stopwords maps language code to highly frequent function words.
// Words shared between languages (e.g. "in" de/en/it, "de" fr/es/pt/nl)
// are fine: they contribute to several scores and the distinctive rest
// decides.
var stopwords = map[string][]string{
	"de": {"und", "der", "die", "das", "nicht", "mit", "für", "auf", "ist",
		"sie", "wir", "ein", "eine", "von", "zu", "den", "im", "auch",
		"werden", "oder", "bei", "nur", "alle", "wird", "ihre", "unsere",
		"können", "ohne", "mehr", "zur", "zum", "durch", "über"},
	"en": {"the", "and", "of", "to", "in", "is", "you", "that", "it",
		"for", "with", "are", "this", "your", "our", "all", "can",
		"will", "more", "about", "use", "we", "on", "by", "or", "from"},
	"it": {"il", "la", "di", "che", "e", "un", "una", "per", "con", "del",
		"della", "sono", "non", "più", "questo", "nostro", "tutti",
		"anche", "come", "dei", "delle", "gli", "nel", "alla", "senza"},
	"sv": {"och", "att", "det", "som", "på", "är", "av", "för", "med",
		"den", "till", "inte", "om", "ett", "vi", "du", "kan", "din",
		"våra", "alla", "eller", "har", "från", "utan", "mer"},
	"fr": {"le", "la", "les", "des", "et", "est", "vous", "que", "pour",
		"dans", "une", "nous", "avec", "sur", "votre", "nos", "tous",
		"pas", "plus", "aux", "ces", "sans", "être", "sont", "ou"},
	"es": {"el", "la", "los", "las", "de", "que", "y", "en", "un", "una",
		"es", "para", "con", "su", "por", "más", "como", "nuestro",
		"todos", "sin", "usted", "puede", "este", "sobre", "o"},
	"pt": {"o", "a", "os", "as", "de", "que", "e", "em", "um", "uma",
		"é", "para", "com", "seu", "sua", "por", "mais", "como",
		"nosso", "todos", "sem", "você", "pode", "este", "ou", "não"},
	"nl": {"de", "het", "een", "en", "van", "is", "dat", "op", "te",
		"met", "voor", "zijn", "niet", "aan", "ook", "als", "bij",
		"naar", "uw", "onze", "alle", "kunnen", "zonder", "meer", "of"},
	"da": {"og", "det", "at", "en", "den", "til", "er", "som", "på",
		"de", "med", "for", "ikke", "der", "du", "vi", "kan", "din",
		"vores", "alle", "eller", "har", "fra", "uden", "mere"},
	"af": {"die", "en", "van", "het", "is", "vir", "wat", "nie", "met",
		"op", "aan", "om", "ons", "jou", "alle", "kan", "word", "meer",
		"sonder", "hierdie", "deur", "was", "sal", "u"},
}

// diacriticHints gives a bonus when a language-distinctive character
// appears, disambiguating close relatives (sv/da, es/pt, de/nl).
var diacriticHints = map[string][]rune{
	"de": {'ß', 'ä', 'ö', 'ü'},
	"sv": {'å', 'ä', 'ö'},
	"da": {'å', 'æ', 'ø'},
	"fr": {'ç', 'é', 'è', 'ê', 'à', 'ù'},
	"es": {'ñ', '¿', '¡', 'ó', 'í'},
	"pt": {'ã', 'õ', 'ç', 'ê', 'á'},
	"it": {'à', 'è', 'ì', 'ò', 'ù'},
}

const diacriticBonus = 2.0

// Detect identifies the language of text. Short or empty input returns
// ("und", 0). Ties break deterministically in favour of the
// alphabetically first language code.
//
// Scoring streams over the text in a single pass: each token is
// lower-cased into a small reusable buffer and looked up once in a
// combined word→languages bitmask table, instead of materializing the
// full lowered text, the token slice, and one map probe per language
// per token. The scores are identical to the per-language counting by
// construction (a token contributes 1 to exactly the languages whose
// stopword set contains it).
func Detect(text string) Result {
	var scores [16]float64 // indexed by langCodes position
	tokens := 0
	var buf [64]byte // stack token buffer (no closure, so it never escapes)
	word := buf[:0]
	for i := 0; i < len(text); {
		// ASCII fast path: lower-case and classify bytewise; everything
		// else goes through the same unicode calls as before. Lowering
		// happens before the letter test, exactly like FieldsFunc over
		// strings.ToLower(text) (lowering never changes letter-ness).
		if c := text[i]; c < utf8.RuneSelf {
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c >= 'a' && c <= 'z' {
				word = append(word, c)
				i++
				continue
			}
			i++
		} else {
			r, size := utf8.DecodeRuneInString(text[i:])
			i += size
			if lr := unicode.ToLower(r); unicode.IsLetter(lr) {
				word = utf8.AppendRune(word, lr)
				continue
			}
		}
		if len(word) > 0 {
			tokens++
			addLangScores(&scores, word)
			word = word[:0]
		}
	}
	if len(word) > 0 {
		tokens++
		addLangScores(&scores, word)
	}
	if tokens < 3 {
		return Result{Lang: "und"}
	}
	for lang, runes := range diacriticHints {
		for _, r := range runes {
			if strings.ContainsRune(text, r) {
				scores[langIndex[lang]] += diacriticBonus
			}
		}
	}
	var total float64
	best, bestScore := "und", 0.0
	for i, lang := range langCodes {
		s := scores[i]
		total += s
		if s > bestScore {
			best, bestScore = lang, s
		}
	}
	if bestScore == 0 || total == 0 {
		return Result{Lang: "und"}
	}
	return Result{Lang: best, Confidence: bestScore / total}
}

// addLangScores credits every language whose stopword set contains the
// token. The map index converts without allocating.
func addLangScores(scores *[16]float64, word []byte) {
	mask := wordLangs[string(word)]
	for i := 0; mask != 0; i++ {
		if mask&1 != 0 {
			scores[i]++
		}
		mask >>= 1
	}
}

// langCodes is the sorted language list; langIndex its inverse; and
// wordLangs the combined stopword table mapping each word to the
// bitmask (over langCodes positions) of languages that use it.
var langCodes = func() []string {
	ls := Languages()
	if len(ls) > 16 {
		panic("langdetect: more languages than the score array holds")
	}
	return ls
}()

var langIndex = func() map[string]int {
	m := make(map[string]int, len(langCodes))
	for i, l := range langCodes {
		m[l] = i
	}
	return m
}()

var wordLangs = func() map[string]uint16 {
	m := make(map[string]uint16, 256)
	for lang, words := range stopwords {
		bit := uint16(1) << langIndex[lang]
		for _, w := range words {
			m[w] |= bit
		}
	}
	return m
}()
