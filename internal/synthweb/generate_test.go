package synthweb

import (
	"testing"

	"cookiewalk/internal/currency"
	"cookiewalk/internal/vantage"
)

// fullRegistry is generated once; scale-1 generation runs the built-in
// selfCheck, so constructing it at all already validates every paper
// marginal (Table 1 visibility, TLD/language/toplist/embedding splits,
// 196 blockable, 45 222 targets, SMP partner counts).
var fullRegistry = Generate(Config{Seed: 42})

func TestFullScaleMarginals(t *testing.T) {
	r := fullRegistry
	if len(r.TargetList()) != 45222 {
		t.Fatalf("target list = %d", len(r.TargetList()))
	}
	cws := r.CookiewallSites()
	inList := 0
	for _, s := range cws {
		if len(s.Lists) > 0 {
			inList++
		}
	}
	if inList != 280 {
		t.Fatalf("in-list cookiewalls = %d", inList)
	}
	if n := r.SMP.PartnerCount("contentpass"); n != 219 {
		t.Fatalf("contentpass partners = %d", n)
	}
	if n := r.SMP.PartnerCount("freechoice"); n != 167 {
		t.Fatalf("freechoice partners = %d", n)
	}
}

func TestSeedIndependentMarginals(t *testing.T) {
	// Generate passes its built-in selfCheck (every paper marginal) at
	// scale 1 for ANY seed — the universe construction is not tuned to
	// one lucky seed. The generator panics on violation.
	for _, seed := range []uint64{1, 7, 123, 20231024} {
		r := Generate(Config{Seed: seed})
		if len(r.TargetList()) != 45222 {
			t.Fatalf("seed %d: targets = %d", seed, len(r.TargetList()))
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Seed: 7, FillerScale: 0.02})
	b := Generate(Config{Seed: 7, FillerScale: 0.02})
	if len(a.Sites()) != len(b.Sites()) {
		t.Fatal("site counts differ")
	}
	for i := range a.Sites() {
		if a.Sites()[i].Domain != b.Sites()[i].Domain {
			t.Fatalf("site %d differs: %s vs %s", i,
				a.Sites()[i].Domain, b.Sites()[i].Domain)
		}
	}
	c := Generate(Config{Seed: 8, FillerScale: 0.02})
	if a.Sites()[len(a.Sites())-1].Domain == c.Sites()[len(c.Sites())-1].Domain {
		t.Fatal("different seeds produced identical tail site")
	}
}

func TestLanguageVPCells(t *testing.T) {
	// Table 1 Language column: en sites visible per VP.
	r := fullRegistry
	want := map[string]int{
		"US East": 9, "US West": 9, "India": 10, "Australia": 10,
	}
	for vpName, wantN := range want {
		n := 0
		for _, s := range r.CookiewallSites() {
			if len(s.Lists) > 0 && s.Language == "en" && s.ShowsBannerTo(vpName) {
				n++
			}
		}
		if n != wantN {
			t.Errorf("en visible from %s = %d, want %d", vpName, n, wantN)
		}
	}
	// Brazilian-list pt site must not be visible from Brazil (the
	// pt.climate-data.org footnote).
	for _, s := range r.CookiewallSites() {
		if _, ok := s.Lists["BR"]; ok {
			if s.ShowsBannerTo("Brazil") {
				t.Error("BR-list cookiewall visible from Brazil")
			}
			if !s.ShowsBannerTo("Germany") || !s.ShowsBannerTo("Sweden") {
				t.Error("BR-list cookiewall must show from DE/SE")
			}
		}
	}
}

func TestPricesLandInBuckets(t *testing.T) {
	for _, s := range fullRegistry.CookiewallSites() {
		if s.MonthlyEUR <= 0 {
			t.Fatalf("%s: no price", s.Domain)
		}
		b := currency.Bucket(s.MonthlyEUR)
		if b < 1 || b > 10 {
			t.Fatalf("%s: bucket %d", s.Domain, b)
		}
		if s.Provider.SMP && b != 3 {
			t.Fatalf("SMP site %s in bucket %d", s.Domain, b)
		}
	}
}

func TestPriceECDFShape(t *testing.T) {
	// §4.2: ~80% charge <= 3 EUR, ~90% <= 4 EUR, a handful >= 8 EUR.
	var le3, le4, ge8, total int
	for _, s := range fullRegistry.CookiewallSites() {
		if len(s.Lists) == 0 {
			continue
		}
		total++
		if s.MonthlyEUR <= 3.005 {
			le3++
		}
		if s.MonthlyEUR <= 4.005 {
			le4++
		}
		if s.MonthlyEUR > 8 {
			ge8++
		}
	}
	if f := float64(le3) / float64(total); f < 0.78 || f > 0.82 {
		t.Errorf("P(price<=3) = %.3f", f)
	}
	if f := float64(le4) / float64(total); f < 0.87 || f > 0.92 {
		t.Errorf("P(price<=4) = %.3f", f)
	}
	if ge8 < 3 || ge8 > 8 {
		t.Errorf("high-price sites = %d", ge8)
	}
}

func TestDecoys(t *testing.T) {
	n := 0
	for _, s := range fullRegistry.Sites() {
		if s.Decoy {
			n++
			if s.Banner != BannerRegular {
				t.Error("decoy must carry a regular banner")
			}
			if len(s.Lists) == 0 || !s.Reachable {
				t.Error("decoy must be a reachable list member")
			}
		}
	}
	if n != 5 {
		t.Fatalf("decoys = %d", n)
	}
}

func TestQuirkSites(t *testing.T) {
	var anti, scroll int
	for _, s := range fullRegistry.CookiewallSites() {
		if s.AntiAdblock {
			anti++
			if !s.Provider.Listed {
				t.Error("anti-adblock quirk must be on a blocked site")
			}
		}
		if s.ScrollLock {
			scroll++
		}
	}
	if anti != 1 || scroll != 1 {
		t.Fatalf("quirks = %d anti, %d scroll", anti, scroll)
	}
}

func TestGermanOnlySites(t *testing.T) {
	n := 0
	for _, s := range fullRegistry.CookiewallSites() {
		if len(s.Lists) == 0 {
			continue
		}
		if len(s.ShowToVPs) == 1 && s.ShowToVPs[0] == "Germany" {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("Germany-only cookiewalls = %d, want 4 (Sweden sees 276)", n)
	}
}

func TestScaledRegistryStructure(t *testing.T) {
	r := Generate(Config{Seed: 3, FillerScale: 0.02})
	// Cookiewall structure is never scaled.
	inList := 0
	for _, s := range r.CookiewallSites() {
		if len(s.Lists) > 0 {
			inList++
		}
	}
	if inList != 280 {
		t.Fatalf("scaled registry cookiewalls = %d", inList)
	}
	// Filler shrinks.
	if len(r.Sites()) >= len(fullRegistry.Sites())/10 {
		t.Fatalf("scaled registry too large: %d sites", len(r.Sites()))
	}
	// Target list still contains every in-list cookiewall.
	targets := map[string]bool{}
	for _, d := range r.TargetList() {
		targets[d] = true
	}
	for _, s := range r.CookiewallSites() {
		if len(s.Lists) > 0 && !targets[s.Domain] {
			t.Fatalf("cookiewall %s missing from target list", s.Domain)
		}
	}
}

func TestSiteLookup(t *testing.T) {
	r := fullRegistry
	d := r.TargetList()[0]
	s, ok := r.Site(d)
	if !ok || s.Domain != d {
		t.Fatalf("Site(%q) = %v, %v", d, s, ok)
	}
	if _, ok := r.Site("no-such-site.example"); ok {
		t.Fatal("found unregistered site")
	}
}

func TestUniqueDomains(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range fullRegistry.Sites() {
		if seen[s.Domain] {
			t.Fatalf("duplicate domain %s", s.Domain)
		}
		seen[s.Domain] = true
	}
}

func TestTopListBuckets(t *testing.T) {
	// German top-1k: 80 cookiewalls, ~941 reachable entries -> 8.5%.
	r := fullRegistry
	var cw1k, reach1k int
	for _, s := range r.Sites() {
		b, ok := s.Lists["DE"]
		if !ok || b != 1000 {
			continue
		}
		if s.Reachable {
			reach1k++
			if s.Banner == BannerCookiewall {
				cw1k++
			}
		}
	}
	if cw1k != 80 {
		t.Errorf("DE top-1k cookiewalls = %d, want 80", cw1k)
	}
	rate := float64(cw1k) / float64(reach1k)
	if rate < 0.080 || rate > 0.090 {
		t.Errorf("DE top-1k rate = %.4f, want ~0.085", rate)
	}
}

func TestVantageNamesResolve(t *testing.T) {
	// Every VP name used in visibility policies must exist.
	for _, s := range fullRegistry.Sites() {
		for _, name := range s.ShowToVPs {
			if _, ok := vantage.ByName(name); !ok {
				t.Fatalf("site %s references unknown VP %q", s.Domain, name)
			}
		}
	}
}

func TestCookieProfileShapes(t *testing.T) {
	// Medians across the ground-truth profiles should sit near the
	// Figure 4/5 values. Exact medians are asserted at the measurement
	// layer; here we sanity-check the generator's raw profiles.
	var cwTracking, smpTracking, regTracking []int
	for _, s := range fullRegistry.Sites() {
		switch {
		case s.Banner == BannerCookiewall && len(s.Lists) > 0:
			cwTracking = append(cwTracking, s.Cookies.PostTracking)
			if s.Provider.SMP {
				smpTracking = append(smpTracking, s.Cookies.PostTracking)
			}
		case s.Banner == BannerRegular && !s.Decoy:
			regTracking = append(regTracking, s.Cookies.PostTracking)
		}
	}
	if m := medianInt(cwTracking); m < 30 || m > 60 {
		t.Errorf("cookiewall tracking median = %d, want ~43", m)
	}
	if m := medianInt(smpTracking); m < 12 || m > 20 {
		t.Errorf("SMP tracking median = %d, want ~16", m)
	}
	if m := medianInt(regTracking); m > 2 {
		t.Errorf("regular tracking median = %d, want ~1", m)
	}
	// SMP subscription mode: zero tracking by construction.
	for _, s := range fullRegistry.Sites() {
		if s.Provider.SMP && s.Cookies.SubFP == 0 {
			t.Fatalf("SMP site %s lacks subscription profile", s.Domain)
		}
	}
}

func medianInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	c := make([]int, len(xs))
	copy(c, xs)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c[len(c)/2]
}

func BenchmarkGenerateFullScale(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(Config{Seed: uint64(i)})
	}
}
