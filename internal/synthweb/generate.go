package synthweb

import (
	"fmt"
	"math"
	"sort"

	"cookiewalk/internal/currency"
	"cookiewalk/internal/smp"
	"cookiewalk/internal/vantage"
	"cookiewalk/internal/xrand"
)

// Config parameterizes registry generation.
type Config struct {
	// Seed drives all pseudo-randomness. The same seed always produces
	// the identical registry.
	Seed uint64
	// FillerScale scales the filler populations (non-cookiewall sites,
	// unreachable sites, toplist padding). 1.0 reproduces the paper's
	// absolute numbers (45 222 target domains); small values produce
	// fast test registries with intact cookiewall structure.
	FillerScale float64
}

// Registry is the generated synthetic web.
type Registry struct {
	cfg      Config
	sites    []*Site
	byDomain map[string]*Site
	// SMP is the subscription platform registry with all partners
	// registered (219 contentpass, 167 freechoice at scale 1).
	SMP *smp.Registry
	// targets is the sorted measurement target list: reachable sites
	// appearing on at least one country toplist (45 222 at scale 1).
	targets []string
}

// paper-constant population numbers (FillerScale == 1).
const (
	listSize          = 10000 // CrUX list length per country
	unreachablePerCC  = 1070  // unreachable entries per list
	globalTop1k       = 300   // sites on every list, top-1k bucket
	globalTop10k      = 2550  // sites on every list, 10k bucket
	pairSites         = 188   // sites shared by exactly two lists
	unreachableIn1k   = 59    // of the unreachable, how many in top 1k
	extraContentpass  = 143   // contentpass partners outside the lists
	extraFreechoice   = 105   // freechoice partners outside the lists
	targetListLen     = 45222 // paper's unique reachable target count
	cookiewallCount   = 280
	decoyCount        = 5
	germanCount       = 252 // German-language cookiewalls
	germanDEOnly      = 4   // German cookiewalls visible only from DE
	contentpassInList = 76
	freechoiceInList  = 62
)

// Generate builds the synthetic web for a configuration. It panics if
// an internal marginal self-check fails at FillerScale 1 — a broken
// generator must never silently produce a wrong universe.
func Generate(cfg Config) *Registry {
	if cfg.FillerScale <= 0 {
		cfg.FillerScale = 1
	}
	r := &Registry{
		cfg:      cfg,
		byDomain: make(map[string]*Site),
		SMP:      smp.NewRegistry(),
	}
	rng := xrand.New(xrand.SubSeed(cfg.Seed, "synthweb"))
	nf := newNameFactory(rng)

	cws := buildCookiewalls(rng, nf)
	for _, s := range cws {
		r.add(s)
	}
	for _, s := range buildDecoys(rng, nf) {
		r.add(s)
	}
	r.buildExtraPartners(rng, nf)
	r.buildFiller(rng, nf)
	r.registerPartners()
	r.buildTargetList()
	if cfg.FillerScale == 1 {
		r.selfCheck()
	}
	return r
}

func (r *Registry) add(s *Site) {
	if _, dup := r.byDomain[s.Domain]; dup {
		panic("synthweb: duplicate domain " + s.Domain)
	}
	r.sites = append(r.sites, s)
	r.byDomain[s.Domain] = s
}

// Site returns the registered site for a domain.
func (r *Registry) Site(domain string) (*Site, bool) {
	s, ok := r.byDomain[domain]
	return s, ok
}

// Sites returns all sites (shared slice; do not mutate).
func (r *Registry) Sites() []*Site { return r.sites }

// TargetList returns the sorted measurement target domains.
func (r *Registry) TargetList() []string { return r.targets }

// CookiewallSites returns the ground-truth cookiewall sites in
// deterministic order.
func (r *Registry) CookiewallSites() []*Site {
	var out []*Site
	for _, s := range r.sites {
		if s.Banner == BannerCookiewall {
			out = append(out, s)
		}
	}
	return out
}

// Config returns the generation configuration.
func (r *Registry) Config() Config { return r.cfg }

// --- cookiewall construction ---------------------------------------------

// cwShell is a cookiewall site under construction.
type cwShell struct {
	lang     string
	tld      string
	listCC   string // toplist country code
	list1k   bool
	provider string
	bucket   int // price bucket target (1..10); SMP implied 3
	visIdx   int // index within its language group for visibility rules
}

// nonGermanShells enumerates the 28 non-German cookiewall sites with
// exact attributes. Order matters: en sites are indexed 0..10 for the
// per-VP visibility sets that produce Table 1's language column.
func nonGermanShells() []cwShell {
	return []cwShell{
		// Italian (6): all .it, DE toplist, cheap (Fig. 2: .it cheaper).
		{lang: "it", tld: "it", listCC: "DE", provider: "local", bucket: 1},
		{lang: "it", tld: "it", listCC: "DE", provider: "local", bucket: 1},
		{lang: "it", tld: "it", listCC: "DE", provider: "local", bucket: 1},
		{lang: "it", tld: "it", listCC: "DE", provider: "tinycmp", bucket: 2},
		{lang: "it", tld: "it", listCC: "DE", provider: "tinycmp", bucket: 2},
		{lang: "it", tld: "it", listCC: "DE", provider: "opencmp", bucket: 3},
		// French (3).
		{lang: "fr", tld: "fr", listCC: "DE", provider: "local", bucket: 3},
		{lang: "fr", tld: "fr", listCC: "DE", provider: "local", bucket: 4},
		{lang: "fr", tld: "com", listCC: "DE", provider: "nichewall", bucket: 3},
		// Spanish (2).
		{lang: "es", tld: "es", listCC: "DE", provider: "local", bucket: 2},
		{lang: "es", tld: "com", listCC: "DE", provider: "consentmango", bucket: 3},
		// Portuguese (2): first is the pt.climate-data.org analogue —
		// on the Brazilian toplist but shown only from DE/SE.
		{lang: "pt", tld: "org", listCC: "BR", provider: "local", bucket: 3},
		{lang: "pt", tld: "com", listCC: "DE", provider: "tinycmp", bucket: 3},
		// Dutch (2).
		{lang: "nl", tld: "net", listCC: "DE", provider: "opencmp", bucket: 2},
		{lang: "nl", tld: "com", listCC: "DE", provider: "local", bucket: 3},
		// Danish (2): on the Swedish toplist, priced in SEK.
		{lang: "da", tld: "net", listCC: "SE", provider: "local", bucket: 2},
		{lang: "da", tld: "com", listCC: "SE", provider: "cwkit", bucket: 3},
		// English (11): visIdx 0..4 on the Australian toplist, 5..7 on
		// the Swedish, 8..10 on the German.
		{lang: "en", tld: "com", listCC: "AU", provider: "opencmp", bucket: 3, visIdx: 0, list1k: true},
		{lang: "en", tld: "com", listCC: "AU", provider: "usercentrade", bucket: 3, visIdx: 1},
		{lang: "en", tld: "com", listCC: "AU", provider: "local", bucket: 2, visIdx: 2},
		{lang: "en", tld: "net", listCC: "AU", provider: "nichewall", bucket: 4, visIdx: 3},
		{lang: "en", tld: "net", listCC: "AU", provider: "cwkit", bucket: 2, visIdx: 4},
		{lang: "en", tld: "com", listCC: "SE", provider: "opencmp", bucket: 3, visIdx: 5},
		{lang: "en", tld: "com", listCC: "SE", provider: "local", bucket: 9, visIdx: 6},
		{lang: "en", tld: "net", listCC: "SE", provider: "usercentrade", bucket: 2, visIdx: 7},
		{lang: "en", tld: "com", listCC: "DE", provider: "nichewall", bucket: 9, visIdx: 8},
		{lang: "en", tld: "net", listCC: "DE", provider: "adfreepass", bucket: 2, visIdx: 9},
		{lang: "en", tld: "news", listCC: "DE", provider: "local", bucket: 1, visIdx: 10},
	}
}

// germanTLDDeck returns the 114 TLDs of non-SMP German cookiewalls.
func germanTLDDeck() []string {
	var deck []string
	addN := func(n int, tld string) {
		for i := 0; i < n; i++ {
			deck = append(deck, tld)
		}
	}
	addN(105, "de")
	addN(2, "at")
	addN(4, "net")
	addN(1, "com")
	addN(1, "org")
	addN(1, "info")
	return deck
}

// germanProviderDeck returns the 114 providers of non-SMP German sites.
func germanProviderDeck() []string {
	var deck []string
	addN := func(n int, p string) {
		for i := 0; i < n; i++ {
			deck = append(deck, p)
		}
	}
	addN(16, "opencmp")
	addN(19, "consentmango")
	addN(8, "usercentrade")
	addN(2, "cwkit")
	addN(2, "purabo")
	addN(1, "adfreepass")
	addN(9, "nichewall")
	addN(5, "tinycmp")
	addN(52, "local")
	return deck
}

// nonSMPBucketTable is the Figure-2 heatmap minus the SMP contribution
// (all SMP partners sit at 2.99 € = bucket 3): TLD -> bucket -> count.
var nonSMPBucketTable = map[string]map[int]int{
	"de":   {1: 4, 2: 24, 3: 27, 4: 23, 5: 22, 6: 1, 7: 1, 9: 3},
	"com":  {2: 1, 3: 8, 4: 1, 9: 2},
	"net":  {2: 8, 3: 1, 4: 1},
	"org":  {3: 2},
	"it":   {1: 3, 2: 2, 3: 1},
	"at":   {2: 1, 4: 1},
	"fr":   {3: 1, 4: 1},
	"es":   {2: 1},
	"info": {2: 1},
	"news": {1: 1},
}

// embeddingDeck returns the §3 embedding split: 132 iframes, 76 shadow
// DOMs (52 open + 24 closed), 72 main-DOM.
func embeddingDeck(rng *xrand.Rand) []Embedding {
	var deck []Embedding
	addN := func(n int, e Embedding) {
		for i := 0; i < n; i++ {
			deck = append(deck, e)
		}
	}
	addN(132, EmbedIFrame)
	addN(52, EmbedShadowOpen)
	addN(24, EmbedShadowClosed)
	addN(72, EmbedMainDOM)
	shuffleEmbeddings(rng.Fork("embed"), deck)
	return deck
}

func shuffleEmbeddings(rng *xrand.Rand, deck []Embedding) {
	for i := len(deck) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		deck[i], deck[j] = deck[j], deck[i]
	}
}

// categoryDeck returns 280 categories matching Figure 1.
func categoryDeck(rng *xrand.Rand) []string {
	counts := map[string]int{
		"News and Media": 76, "Business": 25, "Information Technology": 20,
		"Entertainment": 17, "Sports": 15, "Reference": 14,
		"Society and Lifestyles": 13, "Search Engines and Portals": 11,
		"Health and Wellness": 10, "Games": 8, "Web-based Email": 7,
		"Travel": 7, "Personal Vehicles": 6, "Restaurant and Dining": 5,
		"Finance and Banking": 5, "Others": 41,
	}
	var deck []string
	for _, cat := range Categories {
		for i := 0; i < counts[cat]; i++ {
			deck = append(deck, cat)
		}
	}
	rng.Fork("cats").ShuffleStrings(deck)
	return deck
}

// nonEUVisTargets is how many of the 248 non-DE-only German cookiewalls
// each non-EU vantage point sees, derived from Table 1 row totals.
var nonEUVisTargets = map[string]struct{ count, offset int }{
	"US East":      {173, 0},
	"US West":      {175, 31},
	"Brazil":       {172, 67},
	"South Africa": {175, 101},
	"India":        {167, 139},
	"Australia":    {165, 177},
}

// enVisibility gives per-VP visibility of the 11 English sites by
// visIdx, producing Table 1's language column (9/9/10/10 for the
// English-speaking VPs).
var enVisibility = map[string]func(i int) bool{
	"US East":      func(i int) bool { return i <= 8 },
	"US West":      func(i int) bool { return i <= 7 || i == 9 },
	"India":        func(i int) bool { return i <= 9 },
	"Australia":    func(i int) bool { return i <= 9 },
	"Brazil":       func(i int) bool { return i <= 8 },
	"South Africa": func(i int) bool { return i <= 8 },
}

func allVPNames() []string {
	var out []string
	for _, v := range vantage.All() {
		out = append(out, v.Name)
	}
	return out
}

func nonEUVPNames() []string {
	var out []string
	for _, v := range vantage.All() {
		if !v.IsEU() {
			out = append(out, v.Name)
		}
	}
	return out
}

// buildCookiewalls constructs the 280 cookiewall sites with exact
// marginals along every reported dimension.
func buildCookiewalls(rng *xrand.Rand, nf *nameFactory) []*Site {
	embeds := embeddingDeck(rng)
	cats := categoryDeck(rng)

	var shells []cwShell

	// SMP partners (all German, price 2.99): 76 contentpass, 62
	// freechoice. TLD split keeps the Fig. 2 heatmap consistent.
	smpTLDs := func(de, at, net, com, org int) []string {
		var out []string
		add := func(n int, t string) {
			for i := 0; i < n; i++ {
				out = append(out, t)
			}
		}
		add(de, "de")
		add(at, "at")
		add(net, "net")
		add(com, "com")
		add(org, "org")
		return out
	}
	for _, t := range smpTLDs(70, 2, 2, 1, 1) {
		shells = append(shells, cwShell{lang: "de", tld: t, listCC: "DE", provider: "contentpass", bucket: 3})
	}
	for _, t := range smpTLDs(58, 0, 2, 1, 1) {
		shells = append(shells, cwShell{lang: "de", tld: t, listCC: "DE", provider: "freechoice", bucket: 3})
	}

	// Non-SMP German sites: 104 on the German toplist, 10 on the
	// Swedish toplist (German-language sites popular in Sweden).
	tlds := germanTLDDeck()
	provs := germanProviderDeck()
	bucketRemaining := map[string]map[int]int{}
	for tld, buckets := range nonSMPBucketTable {
		bucketRemaining[tld] = map[int]int{}
		for b, n := range buckets {
			bucketRemaining[tld][b] = n
		}
	}
	takeBucket := func(tld string) int {
		rem := bucketRemaining[tld]
		for b := 1; b <= 10; b++ {
			if rem[b] > 0 {
				rem[b]--
				return b
			}
		}
		return 3 // exhausted (cannot happen when tables are consistent)
	}
	// Non-German shells consume their buckets from the same residual
	// table first so German sites take exactly the remainder.
	nonGerman := nonGermanShells()
	for _, sh := range nonGerman {
		rem := bucketRemaining[sh.tld]
		if rem == nil || rem[sh.bucket] <= 0 {
			panic(fmt.Sprintf("synthweb: bucket table inconsistent at %s/%d", sh.tld, sh.bucket))
		}
		rem[sh.bucket]--
	}
	for i := 0; i < 114; i++ {
		listCC := "DE"
		if i >= 104 {
			listCC = "SE"
		}
		shells = append(shells, cwShell{
			lang: "de", tld: tlds[i], listCC: listCC,
			provider: provs[i], bucket: takeBucket(tlds[i]),
		})
	}
	shells = append(shells, nonGerman...)

	if len(shells) != cookiewallCount {
		panic(fmt.Sprintf("synthweb: %d cookiewall shells", len(shells)))
	}

	// Top-1k membership: 80 on the German list (8.5% of reachable top
	// 1k), 2 on the Swedish, 1 on the Australian (set in shell spec).
	de1k, se1k := 80, 2
	for i := range shells {
		switch shells[i].listCC {
		case "DE":
			if de1k > 0 {
				shells[i].list1k = true
				de1k--
			}
		case "SE":
			if se1k > 0 && shells[i].lang == "de" {
				shells[i].list1k = true
				se1k--
			}
		}
	}

	// Materialize sites.
	var sites []*Site
	germanIdx := 0
	yearlyQuota := 10 // German sites displaying an annual price
	quirks := 2       // AntiAdblock / ScrollLock quirk sites (listed providers)
	for i, sh := range shells {
		prov, ok := ProviderByName(sh.provider)
		if !ok {
			panic("synthweb: unknown provider " + sh.provider)
		}
		s := &Site{
			Domain:    nf.next(sh.lang, sh.tld),
			TLD:       sh.tld,
			Language:  sh.lang,
			Category:  cats[i],
			Banner:    BannerCookiewall,
			Embedding: embeds[i],
			Provider:  prov,
			Lists:     map[string]int{},
			Reachable: true,
		}
		bucket := 1000
		if !sh.list1k {
			bucket = 10000
		}
		s.Lists[sh.listCC] = bucket

		// Visibility policy.
		switch sh.lang {
		case "de":
			s.ShowToVPs = germanVisibility(germanIdx)
			germanIdx++
		case "en":
			s.ShowToVPs = englishVisibility(sh.visIdx)
		case "pt":
			s.ShowToVPs = []string{"Germany", "Sweden"}
		default:
			s.ShowToVPs = nil // global
		}

		// Price.
		period := currency.PeriodMonth
		if sh.lang == "de" && !prov.SMP && yearlyQuota > 0 && sh.bucket >= 2 {
			period = currency.PeriodYear
			yearlyQuota--
		}
		assignPrice(s, sh, period)

		// Cookie profile.
		profRng := rng.Fork("profile|" + s.Domain)
		if prov.SMP {
			s.Cookies = smpCookieProfile(profRng)
		} else {
			s.Cookies = heavyCookieProfile(profRng)
		}

		// Quirk sites (§4.5): among blocked (listed) providers.
		if quirks > 0 && prov.Listed && !prov.SMP {
			if quirks == 2 {
				s.AntiAdblock = true
			} else {
				s.ScrollLock = true
			}
			quirks--
		}
		sites = append(sites, s)
	}
	return sites
}

// germanVisibility computes the VP set for the i-th German cookiewall:
// the first germanDEOnly sites are Germany-only; the rest are always
// visible from Germany and Sweden plus a rotated window of non-EU VPs
// sized to hit Table 1's row totals.
func germanVisibility(i int) []string {
	if i < germanDEOnly {
		return []string{"Germany"}
	}
	vps := []string{"Germany", "Sweden"}
	j := i - germanDEOnly
	n := germanCount - germanDEOnly
	for _, name := range nonEUVPNames() {
		t := nonEUVisTargets[name]
		if ((j-t.offset)%n+n)%n < t.count {
			vps = append(vps, name)
		}
	}
	return vps
}

func englishVisibility(i int) []string {
	vps := []string{"Germany", "Sweden"}
	for _, name := range nonEUVPNames() {
		if enVisibility[name](i) {
			vps = append(vps, name)
		}
	}
	return vps
}

// bucketPrices maps a price bucket to an interior representative price
// in EUR/month (never on an integer boundary, so currency round-trips
// stay inside the bucket).
var bucketPrices = map[int]float64{
	1: 0.99, 2: 1.99, 3: 2.99, 4: 3.99, 5: 4.99,
	6: 5.49, 7: 6.99, 8: 7.99, 9: 8.99, 10: 9.99,
}

// assignPrice sets the display price fields so that normalization
// reproduces the target bucket exactly.
func assignPrice(s *Site, sh cwShell, period currency.Period) {
	target := bucketPrices[sh.bucket]
	code := "EUR"
	switch {
	case sh.listCC == "SE" && sh.lang != "de":
		code = "SEK" // Swedish-market sites price in kronor
	case sh.listCC == "AU":
		code = "AUD"
	}
	rate := currency.EURRate(code)
	display := math.Round(target/rate*100) / 100
	if code != "EUR" {
		// Integer display amounts are idiomatic for SEK; adjust to stay
		// inside the bucket after conversion.
		display = math.Floor(target / rate)
		if display < 1 {
			display = 1
		}
		for display*rate > float64(sh.bucket) && display > 1 {
			display--
		}
		for display*rate <= float64(sh.bucket-1) {
			display++
		}
	}
	if period == currency.PeriodYear {
		display = math.Round(display*12*100) / 100
	}
	s.PriceAmount = display
	s.PriceCurrency = code
	s.PricePeriod = period
	monthly := display * rate
	if period == currency.PeriodYear {
		monthly /= 12
	}
	s.MonthlyEUR = monthly
	if got := currency.Bucket(monthly); got != sh.bucket {
		panic(fmt.Sprintf("synthweb: price %g %s lands in bucket %d, want %d",
			display, code, got, sh.bucket))
	}
}

// --- cookie profiles ------------------------------------------------------

func clampInt(v, lo int) int {
	if v < lo {
		return lo
	}
	return v
}

// regularCookieProfile draws a Figure-4 "regular banner" profile:
// median 15 first-party, ~5.8 benign third-party, ~1 tracking.
func regularCookieProfile(rng *xrand.Rand) CookieProfile {
	return CookieProfile{
		PreConsentFP: rng.IntRange(1, 3),
		PostFP:       clampInt(int(math.Round(rng.LogNormal(math.Log(15), 0.45))), 1),
		PostBenignTP: clampInt(int(math.Round(rng.LogNormal(math.Log(5.8), 0.6))), 0),
		PostTracking: clampInt(int(math.Round(rng.LogNormal(math.Log(1.1), 0.9))), 0),
	}
}

// heavyCookieProfile draws a non-SMP cookiewall profile. Together with
// smpCookieProfile it yields the Figure-4 cookiewall medians
// (~19 FP / ~50 TP / ~43 tracking across the 280 sites).
func heavyCookieProfile(rng *xrand.Rand) CookieProfile {
	return CookieProfile{
		PreConsentFP: rng.IntRange(1, 4),
		PostFP:       clampInt(int(math.Round(rng.LogNormal(math.Log(19), 0.4))), 1),
		PostBenignTP: clampInt(int(math.Round(rng.LogNormal(math.Log(9), 0.5))), 0),
		PostTracking: clampInt(int(math.Round(rng.LogNormal(math.Log(110), 0.5))), 2),
	}
}

// smpCookieProfile draws an SMP partner profile matching Figure 5:
// accept → median 13 FP / 23.2 TP / 16 tracking; subscription →
// 6 FP / 4.4 TP / 0 tracking. A small fraction of partners are extreme
// trackers ("some websites send more than 100 tracking cookies when
// accessing these websites without a subscription", §4.4).
func smpCookieProfile(rng *xrand.Rand) CookieProfile {
	tracking := clampInt(int(math.Round(rng.LogNormal(math.Log(16), 0.45))), 1)
	if rng.Bool(0.03) {
		tracking = rng.IntRange(105, 170)
	}
	return CookieProfile{
		PreConsentFP: rng.IntRange(1, 3),
		PostFP:       clampInt(int(math.Round(rng.LogNormal(math.Log(13), 0.35))), 1),
		PostBenignTP: clampInt(int(math.Round(rng.LogNormal(math.Log(7.2), 0.45))), 0),
		PostTracking: tracking,
		SubFP:        clampInt(int(math.Round(rng.LogNormal(math.Log(6), 0.35))), 1),
		SubBenignTP:  clampInt(int(math.Round(rng.LogNormal(math.Log(4.4), 0.4))), 0),
	}
}

// --- decoys, partners, filler --------------------------------------------

// buildDecoys creates the five §3 false positives: regular banners (with
// a reject button) whose text advertises a priced newsletter.
func buildDecoys(rng *xrand.Rand, nf *nameFactory) []*Site {
	var out []*Site
	for i := 0; i < decoyCount; i++ {
		bucket := 10000
		if i < 2 {
			bucket = 1000
		}
		s := &Site{
			Domain:    nf.next("de", "de"),
			TLD:       "de",
			Language:  "de",
			Category:  "News and Media",
			Banner:    BannerRegular,
			Embedding: EmbedMainDOM,
			Provider:  mustProvider("local"),
			Lists:     map[string]int{"DE": bucket},
			Reachable: true,
			Decoy:     true,
			Cookies:   regularCookieProfile(rng.Fork(fmt.Sprintf("decoy%d", i))),
		}
		out = append(out, s)
	}
	return out
}

func mustProvider(name string) Provider {
	p, ok := ProviderByName(name)
	if !ok {
		panic("synthweb: unknown provider " + name)
	}
	return p
}

// buildExtraPartners creates the SMP partner sites that are NOT on any
// toplist (contentpass: 219-76=143, freechoice: 167-62=105). They are
// crawled in the Figure-5 experiment only.
func (r *Registry) buildExtraPartners(rng *xrand.Rand, nf *nameFactory) {
	embedRng := rng.Fork("extra-embed")
	build := func(n int, provider string) {
		for i := 0; i < n; i++ {
			emb := EmbedIFrame
			switch embedRng.Intn(4) {
			case 0:
				emb = EmbedMainDOM
			case 1:
				emb = EmbedShadowOpen
			}
			s := &Site{
				Domain:    nf.next("de", "de"),
				TLD:       "de",
				Language:  "de",
				Category:  Categories[embedRng.Intn(len(Categories))],
				Banner:    BannerCookiewall,
				Embedding: emb,
				Provider:  mustProvider(provider),
				Lists:     map[string]int{},
				Reachable: true,
			}
			sh := cwShell{lang: "de", tld: "de", bucket: 3}
			assignPrice(s, sh, currency.PeriodMonth)
			s.Cookies = smpCookieProfile(rng.Fork("profile|" + s.Domain))
			r.add(s)
		}
	}
	// Out-of-list partners are cookiewall structure, not filler: they
	// never scale, so Figure 5 measures 219/167 partners at any scale.
	build(extraContentpass, "contentpass")
	build(extraFreechoice, "freechoice")
}

func scaleCount(n int, scale float64) int {
	if scale == 1 {
		return n
	}
	v := int(math.Round(float64(n) * scale))
	if v < 1 {
		v = 1
	}
	return v
}

// fillerLanguage picks a language for a filler site in a country.
var countryLanguage = map[string]string{
	"US": "en", "BR": "pt", "DE": "de", "SE": "sv",
	"ZA": "af", "IN": "en", "AU": "en",
}

var countryTLD = map[string]string{
	"US": "us", "BR": "br", "DE": "de", "SE": "se",
	"ZA": "za", "IN": "in", "AU": "au",
}

var genericTLDs = []string{"com", "net", "org", "info", "online", "site"}

// buildFiller populates the country toplists with regular/no-banner
// sites, shared "global" sites, paired sites, and unreachable entries.
func (r *Registry) buildFiller(rng *xrand.Rand, nf *nameFactory) {
	scale := r.cfg.FillerScale
	countries := vantage.Countries()
	frng := rng.Fork("filler")

	newFiller := func(lang, tld string) *Site {
		s := &Site{
			Domain:    nf.next(lang, tld),
			TLD:       tld,
			Language:  lang,
			Category:  pickCategory(frng),
			Lists:     map[string]int{},
			Reachable: true,
		}
		if frng.Bool(0.62) {
			s.Banner = BannerRegular
			s.Embedding = EmbedMainDOM
			if frng.Bool(0.25) {
				s.Embedding = EmbedIFrame
			}
			if frng.Bool(0.30) {
				s.ShowToVPs = []string{"Germany", "Sweden"} // EU-only banner
			}
			// A small share of sites detect crawlers and hide their
			// banner (the §3 bot-detection limitation).
			s.BotSensitive = frng.Bool(0.02)
			s.Cookies = regularCookieProfile(frng.Fork("p|" + s.Domain))
		} else {
			s.Banner = BannerNone
			s.Cookies = CookieProfile{
				PreConsentFP: frng.IntRange(1, 4),
				PostFP:       frng.IntRange(2, 8),
			}
		}
		return s
	}

	// Global sites: on every country list.
	n1k := scaleCount(globalTop1k, scale)
	n10k := scaleCount(globalTop10k, scale)
	for i := 0; i < n1k+n10k; i++ {
		s := newFiller("en", genericTLDs[frng.Intn(3)])
		bucket := 10000
		if i < n1k {
			bucket = 1000
		}
		for _, cc := range countries {
			s.Lists[cc] = bucket
		}
		r.add(s)
	}

	// Paired sites: shared by exactly two country lists, round-robin
	// over the 21 country pairs.
	var pairs [][2]string
	for i := 0; i < len(countries); i++ {
		for j := i + 1; j < len(countries); j++ {
			pairs = append(pairs, [2]string{countries[i], countries[j]})
		}
	}
	nPairs := scaleCount(pairSites, scale)
	for i := 0; i < nPairs; i++ {
		p := pairs[i%len(pairs)]
		lang := countryLanguage[p[0]]
		s := newFiller(lang, genericTLDs[frng.Intn(len(genericTLDs))])
		s.Lists[p[0]] = 10000
		s.Lists[p[1]] = 10000
		r.add(s)
	}

	// Per-country singles and unreachable entries: fill each list to
	// its nominal size.
	lSize := scaleCount(listSize, scale)
	nUnreach := scaleCount(unreachablePerCC, scale)
	nUnreach1k := scaleCount(unreachableIn1k, scale)
	for _, cc := range countries {
		assigned1k, assignedTotal := 0, 0
		for _, s := range r.sites {
			if b, ok := s.Lists[cc]; ok {
				assignedTotal++
				if b == 1000 {
					assigned1k++
				}
			}
		}
		// Unreachable entries.
		for i := 0; i < nUnreach; i++ {
			s := newFiller(countryLanguage[cc], pickTLD(frng, cc))
			s.Reachable = false
			bucket := 10000
			if i < nUnreach1k {
				bucket = 1000
				assigned1k++
			}
			s.Lists[cc] = bucket
			r.add(s)
			assignedTotal++
		}
		// Reachable singles, topping up the 1k bucket first.
		want1k := lSize / 10
		for assignedTotal < lSize {
			s := newFiller(fillerLang(frng, cc), pickTLD(frng, cc))
			bucket := 10000
			if assigned1k < want1k {
				bucket = 1000
				assigned1k++
			}
			s.Lists[cc] = bucket
			r.add(s)
			assignedTotal++
		}
	}
}

func fillerLang(rng *xrand.Rand, cc string) string {
	if rng.Bool(0.8) {
		return countryLanguage[cc]
	}
	return "en"
}

func pickTLD(rng *xrand.Rand, cc string) string {
	if rng.Bool(0.55) {
		return countryTLD[cc]
	}
	return genericTLDs[rng.Intn(len(genericTLDs))]
}

// categoryWeights shape the filler category mix (News-heavy, long tail).
var categoryWeights = []float64{18, 10, 9, 8, 7, 6, 6, 5, 5, 4, 3, 4, 3, 3, 4, 5}

func pickCategory(rng *xrand.Rand) string {
	return Categories[rng.WeightedIndex(categoryWeights)]
}

// registerPartners records every SMP partner site in the smp.Registry.
func (r *Registry) registerPartners() {
	for _, s := range r.sites {
		if s.Provider.SMP {
			if err := r.SMP.RegisterPartner(s.Domain, s.Provider.Name); err != nil {
				panic(err)
			}
		}
	}
}

// buildTargetList computes the sorted measurement target list.
func (r *Registry) buildTargetList() {
	var t []string
	for _, s := range r.sites {
		if s.Reachable && len(s.Lists) > 0 {
			t = append(t, s.Domain)
		}
	}
	sort.Strings(t)
	r.targets = t
}

// --- self checks ----------------------------------------------------------

// selfCheck validates the generated universe against the paper's
// marginals; it runs only at FillerScale 1.
func (r *Registry) selfCheck() {
	cws := r.CookiewallSites()
	inList := 0
	for _, s := range cws {
		if len(s.Lists) > 0 {
			inList++
		}
	}
	check := func(name string, got, want int) {
		if got != want {
			panic(fmt.Sprintf("synthweb selfCheck: %s = %d, want %d", name, got, want))
		}
	}
	check("in-list cookiewalls", inList, cookiewallCount)
	check("target list length", len(r.targets), targetListLen)
	check("contentpass partners", r.SMP.PartnerCount("contentpass"), 219)
	check("freechoice partners", r.SMP.PartnerCount("freechoice"), 167)

	// Per-VP visibility totals (Table 1, column "Cookiewalls").
	wantVis := map[string]int{
		"US East": 197, "US West": 199, "Brazil": 196, "Germany": 280,
		"Sweden": 276, "South Africa": 199, "India": 192, "Australia": 190,
	}
	for _, vp := range vantage.All() {
		n := 0
		for _, s := range cws {
			if len(s.Lists) > 0 && s.ShowsBannerTo(vp.Name) {
				n++
			}
		}
		check("visible from "+vp.Name, n, wantVis[vp.Name])
	}

	// TLD marginal (Figure 2 rows).
	wantTLD := map[string]int{"de": 233, "com": 14, "net": 14, "org": 4,
		"it": 6, "at": 4, "fr": 2, "es": 1, "info": 1, "news": 1}
	gotTLD := map[string]int{}
	for _, s := range cws {
		if len(s.Lists) > 0 {
			gotTLD[s.TLD]++
		}
	}
	for tld, want := range wantTLD {
		check("tld "+tld, gotTLD[tld], want)
	}

	// Language marginal.
	wantLang := map[string]int{"de": 252, "en": 11, "it": 6, "fr": 3,
		"es": 2, "pt": 2, "nl": 2, "da": 2}
	gotLang := map[string]int{}
	for _, s := range cws {
		if len(s.Lists) > 0 {
			gotLang[s.Language]++
		}
	}
	for lang, want := range wantLang {
		check("lang "+lang, gotLang[lang], want)
	}

	// Toplist marginal.
	wantList := map[string]int{"DE": 259, "SE": 15, "AU": 5, "BR": 1}
	gotList := map[string]int{}
	for _, s := range cws {
		for cc := range s.Lists {
			gotList[cc]++
		}
	}
	for cc, want := range wantList {
		check("toplist "+cc, gotList[cc], want)
	}

	// Embedding marginal (§3).
	var shadow, iframe, main int
	for _, s := range cws {
		if len(s.Lists) == 0 {
			continue
		}
		switch {
		case s.Embedding.InShadow():
			shadow++
		case s.Embedding == EmbedIFrame:
			iframe++
		default:
			main++
		}
	}
	check("shadow embeddings", shadow, 76)
	check("iframe embeddings", iframe, 132)
	check("main-DOM embeddings", main, 72)

	// Blockable share (§4.5): 196 of 280 use listed providers.
	listed := 0
	for _, s := range cws {
		if len(s.Lists) > 0 && s.Provider.Listed {
			listed++
		}
	}
	check("listed providers", listed, 196)

	// Per-country list sizes.
	listTotals := map[string]int{}
	for _, s := range r.sites {
		for cc := range s.Lists {
			listTotals[cc]++
		}
	}
	for _, cc := range vantage.Countries() {
		check("list size "+cc, listTotals[cc], listSize)
	}
}
