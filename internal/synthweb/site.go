// Package synthweb generates the synthetic web that stands in for the
// live Internet: a deterministic registry of ~50k websites whose joint
// attribute distribution (toplist country, TLD, language, category,
// banner kind, cookiewall embedding, delivery provider, price, geo
// policy, cookie behaviour) reproduces the marginals the paper reports.
//
// Ground truth lives here and is used for two things only: page
// generation in package webfarm, and accuracy evaluation (§3's manual
// verification). The detector never reads it.
package synthweb

import (
	"cookiewalk/internal/currency"
)

// BannerKind is the ground-truth banner class of a site.
type BannerKind int

const (
	// BannerNone means the site shows no consent UI.
	BannerNone BannerKind = iota
	// BannerRegular is a standard accept/reject cookie banner.
	BannerRegular
	// BannerCookiewall is an accept-or-pay banner without reject.
	BannerCookiewall
)

// String implements fmt.Stringer.
func (k BannerKind) String() string {
	switch k {
	case BannerRegular:
		return "regular"
	case BannerCookiewall:
		return "cookiewall"
	}
	return "none"
}

// Embedding is how the banner is placed in the page (§3: of 280
// cookiewalls, 76 use a shadow DOM, 132 iframes, 72 the main DOM).
type Embedding int

const (
	// EmbedNone for sites without banners.
	EmbedNone Embedding = iota
	// EmbedMainDOM places banner markup directly in the document.
	EmbedMainDOM
	// EmbedIFrame loads the banner document from the provider origin.
	EmbedIFrame
	// EmbedShadowOpen uses an open declarative shadow root.
	EmbedShadowOpen
	// EmbedShadowClosed uses a closed declarative shadow root.
	EmbedShadowClosed
)

// String implements fmt.Stringer.
func (e Embedding) String() string {
	switch e {
	case EmbedMainDOM:
		return "main-dom"
	case EmbedIFrame:
		return "iframe"
	case EmbedShadowOpen:
		return "shadow-open"
	case EmbedShadowClosed:
		return "shadow-closed"
	}
	return "none"
}

// InShadow reports whether the embedding uses a shadow root.
func (e Embedding) InShadow() bool {
	return e == EmbedShadowOpen || e == EmbedShadowClosed
}

// Provider identifies who delivers the banner markup. Providers with a
// Host deliver from a third-party origin (blockable by filter lists);
// the "local" provider serves everything first-party.
type Provider struct {
	// Name: "contentpass", "freechoice", "opencmp", "consentmango",
	// "usercentrade", "cwkit", "purabo", "adfreepass", "nichewall",
	// "tinycmp", or "local".
	Name string
	// Host is the third-party delivery host ("" for local delivery).
	Host string
	// Listed marks providers covered by the Annoyances filter list.
	Listed bool
	// SMP marks Subscription Management Platforms.
	SMP bool
}

// ScriptURL returns the loader URL partner pages reference, or "" for
// local delivery.
func (p Provider) ScriptURL() string {
	if p.Host == "" {
		return ""
	}
	return "https://" + p.Host + "/cw.js"
}

// Providers in deterministic order. The Listed flags must stay in sync
// with adblock.AnnoyancesList.
var providerTable = []Provider{
	{Name: "contentpass", Host: "cdn.contentpass.example", Listed: true, SMP: true},
	{Name: "freechoice", Host: "cdn.freechoice.example", Listed: true, SMP: true},
	{Name: "opencmp", Host: "cdn.opencmp.example", Listed: true},
	{Name: "consentmango", Host: "cmp.consentmango.example", Listed: true},
	{Name: "usercentrade", Host: "app.usercentrade.example", Listed: true},
	{Name: "cwkit", Host: "cwkit.example", Listed: true},
	{Name: "purabo", Host: "purabo.example", Listed: true},
	{Name: "adfreepass", Host: "adfreepass.example", Listed: true},
	{Name: "nichewall", Host: "nichewall.example", Listed: false},
	{Name: "tinycmp", Host: "tinycmp.example", Listed: false},
	{Name: "local", Host: "", Listed: false},
}

// ProviderByName returns the named provider definition.
func ProviderByName(name string) (Provider, bool) {
	for _, p := range providerTable {
		if p.Name == name {
			return p, true
		}
	}
	return Provider{}, false
}

// CookieProfile is a site's per-visit cookie-count baseline. Actual
// counts per visit get deterministic per-repetition jitter.
type CookieProfile struct {
	// PreConsentFP first-party cookies before any interaction.
	PreConsentFP int
	// PostFP first-party cookies after accepting.
	PostFP int
	// PostBenignTP third-party cookies from non-blocklisted domains
	// after accepting.
	PostBenignTP int
	// PostTracking cookies from blocklisted tracker domains after
	// accepting.
	PostTracking int
	// SubFP / SubBenignTP apply when visiting with a valid SMP
	// subscription (tracking is zero by construction, §4.4).
	SubFP       int
	SubBenignTP int
}

// Site is one synthetic website.
type Site struct {
	// Domain is the registrable domain, e.g. "nachrichten-heute24.de".
	Domain string
	// TLD is the effective TLD label used in Figure 2 ("de", "com", ...).
	TLD string
	// Language is the ISO 639-1 code of the page text.
	Language string
	// Category is one of the 15 FortiGuard-style categories + "Others".
	Category string

	Banner    BannerKind
	Embedding Embedding
	Provider  Provider

	// Price fields are set for cookiewalls only. PriceAmount is in the
	// display currency; MonthlyEUR is the normalized ground truth.
	PriceAmount   float64
	PriceCurrency string
	PricePeriod   currency.Period
	MonthlyEUR    float64

	// ShowToVPs restricts cookiewall/banner display to these VP names;
	// nil means show everywhere. Regular banners use the same policy
	// mechanism (EU-only banners are common).
	ShowToVPs []string

	// Lists maps country code -> rank bucket (1000 or 10000) for the
	// CrUX-style toplists the site appears on.
	Lists map[string]int
	// Reachable marks the site as crawlable; unreachable sites fail
	// every request (the paper's ~11% per-list unreachable share).
	Reachable bool

	Cookies CookieProfile

	// Decoy marks the five regular-banner sites whose text advertises a
	// priced newsletter subscription — the detector's false positives.
	Decoy bool
	// BotSensitive sites detect crawler user agents and hide their
	// banner — the §3 limitation ("websites may behave differently"
	// when they detect a crawler). Never set on cookiewall sites.
	BotSensitive bool
	// AntiAdblock: detects content blockers and asks for deactivation
	// (the hausbau-forum.de case in §4.5).
	AntiAdblock bool
	// ScrollLock: page is clickable but not scrollable under a blocker
	// (the promipool.de case in §4.5).
	ScrollLock bool
}

// ShowsBannerTo reports whether the site presents its banner to a
// visitor from the named vantage point.
func (s *Site) ShowsBannerTo(vpName string) bool {
	if s.Banner == BannerNone {
		return false
	}
	if len(s.ShowToVPs) == 0 {
		return true
	}
	for _, v := range s.ShowToVPs {
		if v == vpName {
			return true
		}
	}
	return false
}

// OnList reports whether the site is on the country's toplist, and in
// which bucket (1000 or 10000).
func (s *Site) OnList(country string) (int, bool) {
	b, ok := s.Lists[country]
	return b, ok
}
