package synthweb

import (
	"fmt"
	"strings"

	"cookiewalk/internal/xrand"
)

// Domain name generation: plausible, language-flavoured, unique,
// deterministic. Names never collide with infrastructure domains
// (trackers, CMPs, SMPs) because those all live on fixed hosts under
// .example that contain reserved words we never emit here.

var nameStems = map[string][]string{
	"de": {"nachrichten", "zeitung", "sport", "auto", "finanz", "wetter",
		"gesundheit", "reise", "technik", "boerse", "kino", "rezepte",
		"immobilien", "spiele", "mode", "politik", "wirtschaft", "garten",
		"musik", "foto", "bau", "tier", "recht", "familie", "stadt"},
	"en": {"daily", "herald", "tribune", "gazette", "sports", "tech",
		"finance", "travel", "health", "games", "recipes", "motor",
		"weather", "market", "stream", "review", "insider", "pulse",
		"wire", "digest", "journal", "chronicle", "beacon", "monitor"},
	"it": {"notizie", "giornale", "calcio", "cucina", "viaggi", "salute",
		"tecnologia", "economia", "meteo", "motori", "moda", "musica"},
	"sv": {"nyheter", "tidning", "sporten", "resor", "halsa", "teknik",
		"ekonomi", "vader", "matlagning", "musik", "bostad", "spel"},
	"fr": {"actualites", "journal", "sportif", "cuisine", "voyage",
		"sante", "technologie", "economie", "meteo", "musique"},
	"es": {"noticias", "diario", "deportes", "cocina", "viajes", "salud",
		"tecnologia", "economia", "tiempo", "musica"},
	"pt": {"noticias", "diario", "esportes", "culinaria", "viagens",
		"saude", "tecnologia", "economia", "clima", "musica"},
	"nl": {"nieuws", "krant", "sporten", "koken", "reizen", "gezond",
		"techniek", "economie", "weerbericht", "muziek"},
	"da": {"nyheder", "avisen", "sporten", "rejser", "sundhed", "teknik",
		"okonomi", "vejret", "madlavning", "musikken"},
	"af": {"nuus", "koerant", "sporte", "reise", "gesondheid", "tegnologie",
		"ekonomie", "weerberig", "kos", "musiek"},
}

var nameSuffixes = []string{"", "24", "-heute", "-online", "-aktuell",
	"-live", "-plus", "-now", "-hub", "-net", "-today", "-info", "-zone",
	"-base", "-point", "-world", "-land", "-direct", "-go", "-pro"}

// nameFactory issues unique domain names.
type nameFactory struct {
	used map[string]bool
	rng  *xrand.Rand
	n    int
}

func newNameFactory(rng *xrand.Rand) *nameFactory {
	return &nameFactory{used: make(map[string]bool), rng: rng.Fork("names")}
}

// next returns a fresh domain for the given language and TLD.
func (f *nameFactory) next(lang, tld string) string {
	stems := nameStems[lang]
	if len(stems) == 0 {
		stems = nameStems["en"]
	}
	for attempt := 0; attempt < 64; attempt++ {
		stem := stems[f.rng.Intn(len(stems))]
		suffix := nameSuffixes[f.rng.Intn(len(nameSuffixes))]
		name := stem + suffix
		if attempt > 8 {
			name = fmt.Sprintf("%s%d", name, f.rng.Intn(1000))
		}
		domain := name + "." + tld
		if !f.used[domain] && !strings.Contains(domain, "example") {
			f.used[domain] = true
			return domain
		}
	}
	// Guaranteed-unique fallback.
	f.n++
	domain := fmt.Sprintf("site-%s-%06d.%s", lang, f.n, tld)
	f.used[domain] = true
	return domain
}

// Categories of Figure 1, in display order, plus "Others".
var Categories = []string{
	"News and Media",
	"Business",
	"Information Technology",
	"Entertainment",
	"Sports",
	"Reference",
	"Society and Lifestyles",
	"Search Engines and Portals",
	"Health and Wellness",
	"Games",
	"Web-based Email",
	"Travel",
	"Personal Vehicles",
	"Restaurant and Dining",
	"Finance and Banking",
	"Others",
}
