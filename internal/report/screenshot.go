package report

import (
	"strings"
)

// BannerBox renders a detected banner as an ASCII "screenshot" — the
// textual analogue of the paper's Appendix B (Figures 7 and 8, the
// spiegel.de cookiewall and the guardian.co.uk regular banner).
// Buttons are drawn as [ label ] chips under the wrapped banner text.
func BannerBox(title, kind, text string, buttons []string) string {
	const inner = 66
	var b strings.Builder
	border := "+" + strings.Repeat("-", inner+2) + "+\n"
	writeLine := func(s string) {
		b.WriteString("| ")
		b.WriteString(s)
		b.WriteString(strings.Repeat(" ", inner-lineWidth(s)))
		b.WriteString(" |\n")
	}
	b.WriteString(title + " — " + kind + "\n")
	b.WriteString(border)
	for _, line := range wrap(text, inner) {
		writeLine(line)
	}
	if len(buttons) > 0 {
		writeLine("")
		var chips []string
		for _, label := range buttons {
			chips = append(chips, "[ "+label+" ]")
		}
		for _, line := range wrap(strings.Join(chips, "   "), inner) {
			writeLine(line)
		}
	}
	b.WriteString(border)
	return b.String()
}

// wrap breaks text into lines of at most width cells (rune-counted).
func wrap(text string, width int) []string {
	words := strings.Fields(text)
	if len(words) == 0 {
		return []string{""}
	}
	var lines []string
	cur := ""
	for _, w := range words {
		switch {
		case cur == "":
			cur = w
		case lineWidth(cur)+1+lineWidth(w) <= width:
			cur += " " + w
		default:
			lines = append(lines, cur)
			cur = w
		}
		// Hard-break pathological words.
		for lineWidth(cur) > width {
			r := []rune(cur)
			lines = append(lines, string(r[:width]))
			cur = string(r[width:])
		}
	}
	lines = append(lines, cur)
	return lines
}

// lineWidth counts runes (close enough for terminal alignment of the
// languages in use).
func lineWidth(s string) int { return len([]rune(s)) }
