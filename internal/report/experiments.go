package report

import (
	"fmt"
	"sort"
	"strings"

	"cookiewalk/internal/measure"
	"cookiewalk/internal/stats"
	"cookiewalk/internal/synthweb"
)

// Table1 renders the paper's Table 1.
func Table1(rows []measure.Table1Row) string {
	t := NewTable("Table 1: detected cookiewalls per vantage point",
		"VP", "Cookiewalls", "Toplist", "ccTLD", "Language")
	for _, r := range rows {
		t.AddRow(r.VP, r.Cookiewalls, r.Toplist, r.CcTLD, r.Language)
	}
	return t.String()
}

// Figure1 renders the category distribution of cookiewall sites.
func Figure1(shares map[string]float64) string {
	t := NewTable("Figure 1: categories of websites showing cookiewalls",
		"Category", "Share", "")
	var max float64
	for _, cat := range synthweb.Categories {
		if shares[cat] > max {
			max = shares[cat]
		}
	}
	for _, cat := range synthweb.Categories {
		t.AddRow(cat, fmt.Sprintf("%5.1f%%", shares[cat]*100), Bar(shares[cat], max, 30))
	}
	return t.String()
}

// Figure2 renders the price heatmap per TLD plus the ECDF line.
func Figure2(ps measure.PriceStats) string {
	var b strings.Builder
	b.WriteString("Figure 2: monthly subscription price distribution\n")

	// Heatmap: TLD rows sorted by site count ascending (paper order has
	// .de last/largest).
	type tldCount struct {
		tld string
		n   int
	}
	var tlds []tldCount
	for tld, buckets := range ps.PerTLDBuckets {
		n := 0
		for _, c := range buckets {
			n += c
		}
		tlds = append(tlds, tldCount{tld, n})
	}
	sort.Slice(tlds, func(i, j int) bool {
		if tlds[i].n != tlds[j].n {
			return tlds[i].n < tlds[j].n
		}
		return tlds[i].tld < tlds[j].tld
	})
	t := NewTable("  price buckets [EUR/month]",
		"TLD", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10")
	for _, tc := range tlds {
		cells := []interface{}{tc.tld}
		for bucket := 1; bucket <= 10; bucket++ {
			if n := ps.PerTLDBuckets[tc.tld][bucket]; n > 0 {
				cells = append(cells, n)
			} else {
				cells = append(cells, ".")
			}
		}
		t.AddRow(cells...)
	}
	b.WriteString(t.String())

	// ECDF series.
	b.WriteString("  ECDF: ")
	for bucket := 1; bucket <= 10; bucket++ {
		fmt.Fprintf(&b, "P(<=%d)=%.2f ", bucket, ps.ECDF.At(float64(bucket)+0.005))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  share <=3 EUR: %.1f%% (paper ~80%%), <=4 EUR: %.1f%% (paper ~90%%)\n",
		ps.ShareAtMost3*100, ps.ShareAtMost4*100)
	return b.String()
}

// Figure3 renders price-by-category (point sizes and means).
func Figure3(byCat map[string][]float64) string {
	t := NewTable("Figure 3: subscription price by website category",
		"Category", "Sites", "MeanPrice", "MedianPrice", "Min", "Max")
	for _, cat := range synthweb.Categories {
		prices := byCat[cat]
		if len(prices) == 0 {
			continue
		}
		t.AddRow(cat, len(prices),
			stats.Mean(prices), stats.Median(prices),
			stats.Quantile(prices, 0), stats.Quantile(prices, 1))
	}
	return t.String()
}

// Figure4 renders the regular-vs-cookiewall cookie comparison.
func Figure4(f measure.Figure4) string {
	t := NewTable("Figure 4: average cookies, regular banner vs cookiewall sites (medians)",
		"Population", "Sites", "FirstParty", "ThirdParty", "Tracking")
	t.AddRow("Regular banner", len(f.Regular),
		f.RegularMedian.FirstParty, f.RegularMedian.ThirdParty, f.RegularMedian.Tracking)
	t.AddRow("Cookiewall", len(f.Cookiewall),
		f.CookiewallMedian.FirstParty, f.CookiewallMedian.ThirdParty, f.CookiewallMedian.Tracking)
	return t.String() + fmt.Sprintf(
		"  third-party ratio: %.1fx   tracking ratio: %.1fx (paper: 6.4x / 42x)\n",
		f.ThirdPartyRatio, f.TrackingRatio)
}

// Figure5 renders the SMP accept-vs-subscription comparison.
func Figure5(f measure.Figure5) string {
	t := NewTable(fmt.Sprintf("Figure 5: cookies on %s partner sites (%d partners, medians)",
		f.Platform, f.Partners),
		"Mode", "FirstParty", "ThirdParty", "Tracking")
	t.AddRow("Accept", f.AcceptMedian.FirstParty, f.AcceptMedian.ThirdParty, f.AcceptMedian.Tracking)
	t.AddRow("Subscription", f.SubscriptionMedian.FirstParty, f.SubscriptionMedian.ThirdParty, f.SubscriptionMedian.Tracking)
	return t.String() + fmt.Sprintf(
		"  max tracking cookies on accept: %.1f (paper: some sites >100)\n", f.MaxTrackingAccept)
}

// Figure6 renders the tracking-vs-price correlation.
func Figure6(c measure.Correlation) string {
	return fmt.Sprintf(
		"Figure 6: tracking cookies vs subscription price\n  sites: %d   Pearson r = %+.3f   Spearman rho = %+.3f (paper: no meaningful linear correlation)\n",
		c.N, c.Pearson, c.Spearman)
}

// BannerRatesReport renders per-VP consent-UI rates (§4.1's EU vs
// non-EU prevalence cross-reference).
func BannerRatesReport(rates []measure.BannerRates) string {
	t := NewTable("Banner rates per vantage point (EU VPs see more consent UIs)",
		"VP", "EU", "BannerRate")
	for _, r := range rates {
		t.AddRow(r.VP, r.EU, fmt.Sprintf("%.1f%%", r.BannerRate*100))
	}
	return t.String()
}

// AccuracyReport renders the §3 detection accuracy numbers.
func AccuracyReport(a measure.Accuracy) string {
	var b strings.Builder
	b.WriteString("Detection accuracy (Section 3)\n")
	fmt.Fprintf(&b, "  full audit:    %d detected, %d true / %d false -> precision %.1f%% (paper: 98.2%%)\n",
		a.Detected, a.TruePositives, a.FalsePositives, a.Precision*100)
	fmt.Fprintf(&b, "  random sample: %d domains, %d cookiewalls present, %d detected -> recall %.0f%%, precision %.0f%% (paper: 100%%/100%%)\n",
		a.SampleSize, a.SampleCookiewalls, a.SampleDetected,
		a.SampleRecall*100, a.SamplePrecision*100)
	return b.String()
}

// BypassReport renders the §4.5 ad-blocker experiment.
func BypassReport(bp measure.Bypass) string {
	var b strings.Builder
	b.WriteString("Bypassing cookiewalls with uBlock-style filter lists (Section 4.5)\n")
	fmt.Fprintf(&b, "  %d of %d cookiewalls no longer displayed -> %.0f%% (paper: 196/280 = 70%%)\n",
		bp.FullyBlocked, bp.Total, bp.BlockRate*100)
	fmt.Fprintf(&b, "  still showing: %d sites\n", len(bp.StillShowing))
	for _, d := range bp.AntiAdblockSites {
		fmt.Fprintf(&b, "  quirk: %s detects the blocker and asks for deactivation\n", d)
	}
	for _, d := range bp.ScrollLockSites {
		fmt.Fprintf(&b, "  quirk: %s is clickable but not scrollable\n", d)
	}
	return b.String()
}

// PrevalenceReport renders the §4.1 rates.
func PrevalenceReport(overall, top1k float64, perCountry []measure.CountryPrevalence) string {
	var b strings.Builder
	b.WriteString("Cookiewall prevalence (Section 4.1)\n")
	fmt.Fprintf(&b, "  overall: %.2f%% of targets (paper: 0.6%%)   top-1k aggregate: %.1f%% (paper: 1.7%%)\n",
		overall*100, top1k*100)
	t := NewTable("", "Country", "List", "Reachable", "Cookiewalls", "Rate", "Top1kRate")
	for _, p := range perCountry {
		t.AddRow(p.Country, p.ListSize, p.Reachable, p.Cookiewalls,
			fmt.Sprintf("%.2f%%", p.Rate*100),
			fmt.Sprintf("%.2f%%", p.Top1kRate*100))
	}
	b.WriteString(t.String())
	return b.String()
}

// EmbeddingReport renders the §3 embedding split from verified
// observations.
func EmbeddingReport(obs []measure.Observation) string {
	var shadow, iframe, main int
	for _, o := range obs {
		switch o.Source.String() {
		case "shadow-dom":
			shadow++
		case "iframe":
			iframe++
		case "main-dom":
			main++
		}
	}
	return fmt.Sprintf(
		"Banner embeddings (Section 3): %d shadow DOM, %d iframe, %d main DOM (paper: 76/132/72)\n",
		shadow, iframe, main)
}

// SMPReport summarizes §4.4 platform partner counts.
func SMPReport(platform string, partners, inTargets int) string {
	return fmt.Sprintf("SMP %s: %d partner sites, %d within the top-10k target list\n",
		platform, partners, inTargets)
}
