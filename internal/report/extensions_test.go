package report

import (
	"strings"
	"testing"

	"cookiewalk/internal/measure"
)

func TestAblationReport(t *testing.T) {
	out := AblationReport(measure.Ablation{Full: 280, NoShadow: 204, NoFrames: 148, MainOnly: 72})
	for _, want := range []string{"280", "204", "148", "72", "76", "132"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation missing %q:\n%s", want, out)
		}
	}
}

func TestAutoRejectReport(t *testing.T) {
	out := AutoRejectReport(measure.AutoReject{
		Visited: 560, Rejected: 280, NoRejectOption: 280,
	})
	if !strings.Contains(out, "560") || !strings.Contains(out, "NO REJECT OPTION") {
		t.Fatalf("autoreject:\n%s", out)
	}
}

func TestRevocationReport(t *testing.T) {
	out := RevocationReport(measure.Revocation{
		Tested: 280, GoneAfterAccept: 280,
		PersistedWithoutDeletion: 280, BackAfterDeletion: 280,
	})
	if !strings.Contains(out, "280 cookiewall sites") ||
		!strings.Contains(out, "only revocation path") {
		t.Fatalf("revocation:\n%s", out)
	}
}

func TestBotCheckReport(t *testing.T) {
	out := BotCheckReport(measure.BotCheck{
		Sample: 1000, BannersMitigated: 1000, BannersNaive: 982, BehaviourChanged: 18,
	})
	if !strings.Contains(out, "1000") || !strings.Contains(out, "18") {
		t.Fatalf("botcheck:\n%s", out)
	}
}

func TestBannerRatesReport(t *testing.T) {
	out := BannerRatesReport([]measure.BannerRates{
		{VP: "Germany", EU: true, BannerRate: 0.81},
		{VP: "India", EU: false, BannerRate: 0.62},
	})
	if !strings.Contains(out, "81.0%") || !strings.Contains(out, "62.0%") {
		t.Fatalf("rates:\n%s", out)
	}
}

func TestFigure3Render(t *testing.T) {
	out := Figure3(map[string][]float64{
		"News and Media": {2.99, 2.99, 8.99},
		"Sports":         {1.99},
	})
	if !strings.Contains(out, "News and Media") || !strings.Contains(out, "Sports") {
		t.Fatalf("figure 3:\n%s", out)
	}
	if !strings.Contains(out, "8.99") {
		t.Fatalf("max price missing:\n%s", out)
	}
	// Categories without prices are omitted.
	if strings.Contains(out, "Web-based Email") {
		t.Fatal("empty category rendered")
	}
}

func TestEmbeddingReportCounts(t *testing.T) {
	// Construct observations through the measure types to exercise the
	// counting path (not just the static footer).
	obs := []measure.Observation{}
	out := EmbeddingReport(obs)
	if !strings.Contains(out, "0 shadow DOM, 0 iframe, 0 main DOM") {
		t.Fatalf("embedding zero case:\n%s", out)
	}
}
