package report

import (
	"strings"
	"testing"

	"cookiewalk/internal/measure"
	"cookiewalk/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Title", "A", "LongHeader")
	tb.AddRow("x", 1)
	tb.AddRow("longer-cell", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("title line = %q", lines[0])
	}
	// Header, rule, two rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[1], "LongHeader") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(out, "2.5") {
		t.Fatal("float cell missing")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		2.50:  "2.5",
		3.00:  "3",
		0.125: "0.12", // %.2f rounds half to even
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != "#####" {
		t.Fatalf("bar = %q", Bar(5, 10, 10))
	}
	if Bar(0, 10, 10) != "" {
		t.Fatal("zero bar")
	}
	if Bar(100, 10, 10) != "##########" {
		t.Fatal("clamped bar")
	}
	if Bar(0.01, 10, 10) != "#" {
		t.Fatal("minimum bar")
	}
}

func TestTable1Render(t *testing.T) {
	out := Table1([]measure.Table1Row{
		{VP: "Germany", Cookiewalls: 280, Toplist: 259, CcTLD: 233, Language: 252},
	})
	for _, want := range []string{"Germany", "280", "259", "233", "252", "Toplist"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1Render(t *testing.T) {
	out := Figure1(map[string]float64{"News and Media": 0.27, "Business": 0.09})
	if !strings.Contains(out, "News and Media") || !strings.Contains(out, "27.0%") {
		t.Fatalf("figure 1 output:\n%s", out)
	}
	// The largest share gets the longest bar.
	newsLine, bizLine := "", ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "News and Media") {
			newsLine = l
		}
		if strings.Contains(l, "Business") {
			bizLine = l
		}
	}
	if strings.Count(newsLine, "#") <= strings.Count(bizLine, "#") {
		t.Fatal("bar lengths not proportional")
	}
}

func TestFigure2Render(t *testing.T) {
	ps := measure.PriceStats{
		Prices:        []float64{2.99, 2.99, 8.99},
		PerTLDBuckets: map[string]map[int]int{"de": {3: 2}, "com": {9: 1}},
	}
	ps.ECDF = stats.NewECDF(ps.Prices)
	ps.ShareAtMost3 = ps.ECDF.At(3.005)
	ps.ShareAtMost4 = ps.ECDF.At(4.005)
	out := Figure2(ps)
	if !strings.Contains(out, "de") || !strings.Contains(out, "ECDF") {
		t.Fatalf("figure 2 output:\n%s", out)
	}
	if !strings.Contains(out, "66.7%") {
		t.Fatalf("share <=3 missing:\n%s", out)
	}
}

func TestFigure4And5Render(t *testing.T) {
	f4 := measure.Figure4{
		RegularMedian:    measure.CookieTally{FirstParty: 15, ThirdParty: 6.8, Tracking: 1},
		CookiewallMedian: measure.CookieTally{FirstParty: 19, ThirdParty: 50.4, Tracking: 43},
		ThirdPartyRatio:  7.4, TrackingRatio: 43,
	}
	out := Figure4(f4)
	if !strings.Contains(out, "50.4") || !strings.Contains(out, "43.0x") {
		t.Fatalf("figure 4 output:\n%s", out)
	}
	f5 := measure.Figure5{Platform: "contentpass", Partners: 219,
		AcceptMedian:       measure.CookieTally{FirstParty: 13, ThirdParty: 23.2, Tracking: 16},
		SubscriptionMedian: measure.CookieTally{FirstParty: 6, ThirdParty: 4.4},
		MaxTrackingAccept:  133,
	}
	out5 := Figure5(f5)
	if !strings.Contains(out5, "contentpass") || !strings.Contains(out5, "219") {
		t.Fatalf("figure 5 output:\n%s", out5)
	}
}

func TestAccuracyAndBypassRender(t *testing.T) {
	a := measure.Accuracy{Detected: 285, TruePositives: 280, FalsePositives: 5,
		Precision: 0.98245, SampleSize: 1000, SampleCookiewalls: 6,
		SampleDetected: 6, SampleRecall: 1, SamplePrecision: 1}
	out := AccuracyReport(a)
	if !strings.Contains(out, "98.2%") || !strings.Contains(out, "285") {
		t.Fatalf("accuracy output:\n%s", out)
	}
	bp := measure.Bypass{Total: 280, FullyBlocked: 196, BlockRate: 0.7,
		AntiAdblockSites: []string{"hausbau.de"}, ScrollLockSites: []string{"promi.de"}}
	out2 := BypassReport(bp)
	if !strings.Contains(out2, "196") || !strings.Contains(out2, "70%") ||
		!strings.Contains(out2, "hausbau.de") {
		t.Fatalf("bypass output:\n%s", out2)
	}
}

func TestPrevalenceRender(t *testing.T) {
	out := PrevalenceReport(0.0062, 0.017, []measure.CountryPrevalence{
		{Country: "DE", ListSize: 10000, Reachable: 8930, Cookiewalls: 259,
			Rate: 0.029, Top1kRate: 0.085},
	})
	if !strings.Contains(out, "0.62%") || !strings.Contains(out, "2.90%") ||
		!strings.Contains(out, "8.50%") {
		t.Fatalf("prevalence output:\n%s", out)
	}
}

func TestFigure6AndEmbeddingRender(t *testing.T) {
	out6 := Figure6(measure.Correlation{N: 280, Pearson: -0.02, Spearman: 0.01})
	if !strings.Contains(out6, "-0.020") || !strings.Contains(out6, "+0.010") {
		t.Fatalf("figure 6: %s", out6)
	}
	out := EmbeddingReport(nil)
	if !strings.Contains(out, "76/132/72") {
		t.Fatalf("embedding: %s", out)
	}
}

func TestSMPReportRender(t *testing.T) {
	out := SMPReport("contentpass", 219, 76)
	if !strings.Contains(out, "219") || !strings.Contains(out, "76") {
		t.Fatalf("smp: %s", out)
	}
}

func TestBannerBox(t *testing.T) {
	out := BannerBox("spiegel.de (via iframe)", "cookiewall",
		"Mit Werbung weiterlesen oder werbefrei im Abo für 4,99 € pro Monat.",
		[]string{"Akzeptieren", "Abonnieren"})
	if !strings.Contains(out, "cookiewall") {
		t.Fatal("kind missing")
	}
	if !strings.Contains(out, "[ Akzeptieren ]") || !strings.Contains(out, "[ Abonnieren ]") {
		t.Fatalf("buttons missing:\n%s", out)
	}
	// Frame integrity: every body line has the same width.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var width int
	for i, l := range lines[1:] { // skip title
		if i == 0 {
			width = len([]rune(l))
		}
		if len([]rune(l)) != width {
			t.Fatalf("ragged box line %d: %q (want width %d)", i, l, width)
		}
	}
}

func TestBannerBoxLongWord(t *testing.T) {
	out := BannerBox("x", "regular", strings.Repeat("ß", 200), nil)
	for _, l := range strings.Split(out, "\n") {
		if len([]rune(l)) > 72 {
			t.Fatalf("overlong line: %q", l)
		}
	}
}

func TestWrapEmpty(t *testing.T) {
	if got := wrap("", 10); len(got) != 1 || got[0] != "" {
		t.Fatalf("wrap empty = %v", got)
	}
}
