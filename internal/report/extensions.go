package report

import (
	"fmt"
	"strings"

	"cookiewalk/internal/measure"
)

// AblationReport renders the detection-ablation study.
func AblationReport(a measure.Ablation) string {
	var b strings.Builder
	b.WriteString("Detection ablation: cookiewalls found with reduced pipelines\n")
	t := NewTable("", "Pipeline", "Detected", "Missed")
	row := func(name string, n int) {
		t.AddRow(name, n, a.Full-n)
	}
	row("full (shadow DOM + iframes)", a.Full)
	row("without shadow workaround", a.NoShadow)
	row("without iframe traversal", a.NoFrames)
	row("main DOM only (stock tooling)", a.MainOnly)
	b.WriteString(t.String())
	b.WriteString("  the paper's §3 extensions exist precisely because stock tools miss\n")
	b.WriteString("  the shadow-DOM (76) and iframe (132) populations\n")
	return b.String()
}

// AutoRejectReport renders the §5 automatic-reject experiment.
func AutoRejectReport(a measure.AutoReject) string {
	var b strings.Builder
	b.WriteString("Automatic reject clicking (Section 5, Firefox-style)\n")
	fmt.Fprintf(&b, "  visited: %d   rejected OK: %d   no banner: %d   failed: %d\n",
		a.Visited, a.Rejected, a.NoBanner, a.Failed)
	fmt.Fprintf(&b, "  NO REJECT OPTION (auto-reject defeated): %d — every accept-or-pay banner\n",
		a.NoRejectOption)
	return b.String()
}

// BotCheckReport renders the §3 bot-detection limitation experiment.
func BotCheckReport(bc measure.BotCheck) string {
	var b strings.Builder
	b.WriteString("Bot-detection limitation (Section 3)\n")
	fmt.Fprintf(&b, "  sample: %d sites   banners seen with mitigated UA: %d   with naive crawler UA: %d\n",
		bc.Sample, bc.BannersMitigated, bc.BannersNaive)
	fmt.Fprintf(&b, "  sites hiding their banner from the naive crawler: %d — why OpenWPM-style mitigation matters\n",
		bc.BehaviourChanged)
	return b.String()
}

// RevocationReport renders the §5 consent-revocation experiment.
func RevocationReport(r measure.Revocation) string {
	var b strings.Builder
	b.WriteString("Revoking cookiewall acceptance (Section 5)\n")
	fmt.Fprintf(&b, "  tested: %d cookiewall sites\n", r.Tested)
	fmt.Fprintf(&b, "  banner gone after accept:             %d\n", r.GoneAfterAccept)
	fmt.Fprintf(&b, "  still gone on revisit (cookies kept): %d — users stay tracked\n",
		r.PersistedWithoutDeletion)
	fmt.Fprintf(&b, "  banner back after deleting cookies:   %d — the only revocation path\n",
		r.BackAfterDeletion)
	return b.String()
}
