// Package report renders the measurement results as the tables and
// figure-series the paper publishes: Table 1, Figures 1-6, the §3
// accuracy numbers, the §4.5 bypass results and the §4.1 prevalence
// rates — as aligned ASCII suitable for terminals and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
	title  string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Bar renders a horizontal bar of width proportional to value/max.
func Bar(value, max float64, width int) string {
	if max <= 0 || value <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	if n == 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}
