// Package stats provides the small statistical toolkit the paper's
// analysis needs: medians and means for Figures 4/5, ECDFs for
// Figure 2, Pearson correlation for Figures 3/6, and histogram
// bucketing helpers.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median (0 for empty input). For even lengths it
// returns the mean of the two central values.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := sorted(xs)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q <= 0 {
		return min(xs)
	}
	if q >= 1 {
		return max(xs)
	}
	s := sorted(xs)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

func min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func sorted(xs []float64) []float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return s
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF over the sample.
func NewECDF(xs []float64) *ECDF {
	return &ECDF{sorted: sorted(xs)}
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Count of values <= x via binary search for the first value > x.
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Points returns (x, P(X<=x)) pairs at every distinct sample value, for
// plotting the Figure-2 red line.
func (e *ECDF) Points() ([]float64, []float64) {
	var xs, ps []float64
	n := float64(len(e.sorted))
	for i, v := range e.sorted {
		if i+1 < len(e.sorted) && e.sorted[i+1] == v {
			continue // emit each distinct value once, at its last index
		}
		xs = append(xs, v)
		ps = append(ps, float64(i+1)/n)
	}
	return xs, ps
}

// Pearson returns the Pearson correlation coefficient of paired
// samples. It returns 0 when fewer than two pairs exist or either
// variance is zero.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of paired samples —
// the robustness companion to Pearson for Figure 6 (rank correlation
// is insensitive to the heavy-tailed tracking-cookie distribution).
func Spearman(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns average ranks (ties share the mean of their positions).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// Histogram counts values per integer bucket produced by bucketOf.
func Histogram(xs []float64, bucketOf func(float64) int) map[int]int {
	h := make(map[int]int)
	for _, x := range xs {
		h[bucketOf(x)]++
	}
	return h
}

// IntsToFloats converts a []int sample.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Ratio returns a/b, or 0 when b is 0 — for "42 times more tracking
// cookies" style comparisons.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
