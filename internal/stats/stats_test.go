package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
}

func TestMedian(t *testing.T) {
	if !almost(Median([]float64{5, 1, 3}), 3) {
		t.Fatal("odd median")
	}
	if !almost(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if !almost(Quantile(xs, 0.5), 5) {
		t.Fatal("q50")
	}
	if !almost(Quantile(xs, 0.9), 9) {
		t.Fatal("q90")
	}
	if !almost(Quantile(xs, 0), 0) || !almost(Quantile(xs, 1), 10) {
		t.Fatal("extremes")
	}
	if !almost(Quantile([]float64{1, 2}, 0.5), 1.5) {
		t.Fatal("interpolation")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := map[float64]float64{0.5: 0, 1: 0.25, 2: 0.75, 2.5: 0.75, 3: 1, 99: 1}
	for x, want := range cases {
		if got := e.At(x); !almost(got, want) {
			t.Errorf("ECDF(%g) = %g, want %g", x, got, want)
		}
	}
	xs, ps := e.Points()
	if len(xs) != 3 || !almost(ps[len(ps)-1], 1) {
		t.Fatalf("points = %v %v", xs, ps)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(5) != 0 {
		t.Fatal("empty ECDF")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if !almost(Pearson(xs, ys), 1) {
		t.Fatal("perfect positive")
	}
	neg := []float64{10, 8, 6, 4, 2}
	if !almost(Pearson(xs, neg), -1) {
		t.Fatal("perfect negative")
	}
	if Pearson(xs, []float64{7, 7, 7, 7, 7}) != 0 {
		t.Fatal("zero variance must be 0")
	}
	if Pearson(xs, ys[:3]) != 0 {
		t.Fatal("length mismatch must be 0")
	}
}

func TestSpearman(t *testing.T) {
	// Monotone but non-linear: Spearman 1, Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	if !almost(Spearman(xs, ys), 1) {
		t.Fatalf("spearman = %g", Spearman(xs, ys))
	}
	if Pearson(xs, ys) >= 1 {
		t.Fatal("pearson should be < 1 here")
	}
	// Reversed order: -1.
	rev := []float64{5, 4, 3, 2, 1}
	if !almost(Spearman(xs, rev), -1) {
		t.Fatal("reversed spearman")
	}
	if Spearman(xs, ys[:3]) != 0 {
		t.Fatal("length mismatch must be 0")
	}
}

func TestRanksWithTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almost(r[i], want[i]) {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.5, 1.5, 1.7, 9}, func(x float64) int { return int(math.Ceil(x)) })
	if h[1] != 1 || h[2] != 2 || h[9] != 1 {
		t.Fatalf("h = %v", h)
	}
}

func TestRatio(t *testing.T) {
	if !almost(Ratio(42, 1), 42) || Ratio(1, 0) != 0 {
		t.Fatal("ratio")
	}
}

func TestIntsToFloats(t *testing.T) {
	f := IntsToFloats([]int{1, 2})
	if len(f) != 2 || f[1] != 2.0 {
		t.Fatal("conversion")
	}
}

// Property: median lies between min and max; ECDF is monotone.
func TestQuickMedianBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// The even-length midpoint (a+b)/2 overflows near
			// MaxFloat64; bound the domain like the Pearson test.
			if !math.IsNaN(x) && math.Abs(x) < 1e300 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Median(clean)
		return m >= min(clean) && m <= max(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickECDFMonotone(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		e := NewECDF(xs)
		return e.At(a) <= e.At(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPearsonSymmetricAndBounded(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		if len(pairs) < 2 {
			return true
		}
		var xs, ys []float64
		for _, p := range pairs {
			// Bound magnitudes: the intermediate sums overflow near
			// MaxFloat64, which is far outside this library's domain
			// (cookie counts, euro prices).
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) ||
				math.Abs(p[0]) > 1e150 || math.Abs(p[1]) > 1e150 {
				return true
			}
			xs = append(xs, p[0])
			ys = append(ys, p[1])
		}
		r1, r2 := Pearson(xs, ys), Pearson(ys, xs)
		return math.Abs(r1-r2) < 1e-9 && r1 >= -1.0000001 && r1 <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
