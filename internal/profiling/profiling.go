// Package profiling wires the standard pprof CPU/heap profile capture
// into the long-running binaries (cmd/cookiewalk, cmd/trendd), with
// one twist the stock idiom lacks: Stop is a package-level, idempotent
// flush, so exit paths that bypass deferred calls — the daemons'
// signal handlers end in os.Exit(3) — can still land complete,
// readable profiles before the process dies. A truncated CPU profile
// is worse than none: pprof refuses the file and the whole run's
// evidence is gone.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

var (
	mu      sync.Mutex
	cpuFile *os.File
	memPath string
)

// Start begins CPU profiling into cpuPath (when non-empty) and arms a
// heap-profile write to memPath (when non-empty) for the next Stop.
// Either path may be empty independently; both empty makes Start and
// Stop no-ops.
func Start(cpuPath, memPathArg string) error {
	mu.Lock()
	defer mu.Unlock()
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	memPath = memPathArg
	return nil
}

// Stop flushes and closes everything Start armed: it stops the CPU
// profile and writes the heap profile (after a GC, so the numbers
// describe live memory, not garbage awaiting collection). Safe to call
// any number of times from any exit path; only the first call acts.
func Stop() {
	mu.Lock()
	defer mu.Unlock()
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "profiling: cpu profile:", err)
		}
		cpuFile = nil
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "profiling: heap profile:", err)
		} else {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: heap profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: heap profile:", err)
			}
		}
		memPath = ""
	}
}
