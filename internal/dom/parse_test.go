package dom

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasicDocument(t *testing.T) {
	doc := Parse(`<!DOCTYPE html><html><head><title>T</title></head><body><p>hi</p></body></html>`)
	if doc.DocumentElement() == nil {
		t.Fatal("no <html>")
	}
	body := doc.Body()
	if body == nil {
		t.Fatal("no <body>")
	}
	p := body.QuerySelector("p")
	if p == nil || p.Text() != "hi" {
		t.Fatalf("p = %v", p)
	}
}

func TestParseScaffoldsSparseInput(t *testing.T) {
	doc := Parse(`<p>bare paragraph</p>`)
	if doc.Body() == nil {
		t.Fatal("body not synthesized")
	}
	if doc.Body().QuerySelector("p") == nil {
		t.Fatal("content not placed in body")
	}
	if doc.DocumentElement().QuerySelector("head") == nil {
		t.Fatal("head not synthesized")
	}
}

func TestParseHeadOnlyElements(t *testing.T) {
	doc := Parse(`<meta charset="utf-8"><title>x</title><div>content</div>`)
	html := doc.DocumentElement()
	head := childElement(html, "head")
	if head == nil || len(head.ElementsByTag("meta")) != 1 {
		t.Fatal("meta not in head")
	}
	if doc.Body().QuerySelector("div") == nil {
		t.Fatal("div not in body")
	}
}

func TestParseNesting(t *testing.T) {
	doc := Parse(`<div><ul><li>a</li><li>b<li>c</ul></div>`)
	lis := doc.QuerySelectorAll("ul > li")
	if len(lis) != 3 {
		t.Fatalf("want 3 li (implied close), got %d", len(lis))
	}
	if lis[2].Text() != "c" {
		t.Fatalf("li[2] = %q", lis[2].Text())
	}
}

func TestParseImpliedParagraphClose(t *testing.T) {
	doc := Parse(`<p>one<p>two<div>three</div>`)
	ps := doc.QuerySelectorAll("p")
	if len(ps) != 2 {
		t.Fatalf("want 2 p, got %d", len(ps))
	}
	// div must be a sibling of the p's, not nested inside.
	div := doc.QuerySelector("div")
	if div.Parent.Tag != "body" {
		t.Fatalf("div parent = %q", div.Parent.Tag)
	}
}

func TestParseTableCells(t *testing.T) {
	doc := Parse(`<table><tr><td>a<td>b<tr><td>c</table>`)
	if n := len(doc.QuerySelectorAll("td")); n != 3 {
		t.Fatalf("want 3 td, got %d", n)
	}
	if n := len(doc.QuerySelectorAll("tr")); n != 2 {
		t.Fatalf("want 2 tr, got %d", n)
	}
}

func TestParseUnmatchedEndTagIgnored(t *testing.T) {
	doc := Parse(`<div>a</span>b</div>`)
	div := doc.QuerySelector("div")
	if got := div.Text(); got != "ab" {
		t.Fatalf("text = %q", got)
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := Parse(`<div><img src="x"><br><input type="text">after</div>`)
	img := doc.QuerySelector("img")
	if img.FirstChild != nil {
		t.Fatal("img must not take children")
	}
	if doc.QuerySelector("div").Text() != "after" {
		t.Fatalf("text = %q", doc.QuerySelector("div").Text())
	}
}

func TestParseDeclarativeShadowOpen(t *testing.T) {
	doc := Parse(`<div id="host"><template shadowrootmode="open"><p class="inner">shadow text</p></template><span>light</span></div>`)
	host := doc.ByID("host")
	if host == nil || host.Shadow == nil {
		t.Fatal("shadow root not attached")
	}
	if host.Shadow.Mode != ShadowOpen {
		t.Fatalf("mode = %q", host.Shadow.Mode)
	}
	// Shadow content is in the fragment, not the light DOM.
	if host.QuerySelector("p.inner") != nil {
		t.Fatal("selector must not cross shadow boundary")
	}
	if p := host.Shadow.Root.QuerySelector("p.inner"); p == nil || p.Text() != "shadow text" {
		t.Fatal("shadow content missing")
	}
	// Light DOM sibling preserved.
	if host.QuerySelector("span") == nil {
		t.Fatal("light DOM lost")
	}
}

func TestParseDeclarativeShadowClosed(t *testing.T) {
	doc := Parse(`<div id="h"><template shadowrootmode="closed"><button>Subscribe</button></template></div>`)
	h := doc.ByID("h")
	if h.Shadow == nil || h.Shadow.Mode != ShadowClosed {
		t.Fatalf("shadow = %+v", h.Shadow)
	}
}

func TestParseLegacyShadowRootAttr(t *testing.T) {
	doc := Parse(`<div id="h"><template shadowroot="open"><i>x</i></template></div>`)
	if doc.ByID("h").Shadow == nil {
		t.Fatal("legacy shadowroot attribute not honoured")
	}
}

func TestParseNestedShadow(t *testing.T) {
	doc := Parse(`<div id="outer"><template shadowrootmode="open"><div id="inner"><template shadowrootmode="closed"><b>deep</b></template></div></template></div>`)
	outer := doc.ByID("outer")
	if outer.Shadow == nil {
		t.Fatal("outer shadow missing")
	}
	inner := outer.Shadow.Root.ByID("inner")
	if inner == nil || inner.Shadow == nil {
		t.Fatal("inner shadow missing")
	}
	if inner.Shadow.Root.Text() != "deep" {
		t.Fatalf("deep text = %q", inner.Shadow.Root.Text())
	}
	roots := doc.ShadowRoots()
	if len(roots) != 2 {
		t.Fatalf("ShadowRoots = %d", len(roots))
	}
}

func TestParsePlainTemplateIsElement(t *testing.T) {
	doc := Parse(`<div><template><p>inert</p></template></div>`)
	div := doc.QuerySelector("div")
	if div.Shadow != nil {
		t.Fatal("plain template must not attach shadow")
	}
	if doc.QuerySelector("template") == nil {
		t.Fatal("template element missing")
	}
}

func TestParseFragment(t *testing.T) {
	frag := ParseFragment(`<div class="cw"><button>Accept</button></div>`)
	if frag.QuerySelector("div.cw > button") == nil {
		t.Fatal("fragment structure wrong")
	}
	if frag.DocumentElement() != nil {
		t.Fatal("fragment must not scaffold html")
	}
}

func TestParseScriptContentPreserved(t *testing.T) {
	doc := Parse(`<script>var x = "<div>"; if (1<2) {}</script>`)
	scripts := doc.ElementsByTag("script")
	if len(scripts) != 1 {
		t.Fatalf("scripts = %d", len(scripts))
	}
	content := scripts[0].FirstChild
	if content == nil || !strings.Contains(content.Data, `"<div>"`) {
		t.Fatal("script content mangled")
	}
	// Script text must NOT appear in extracted text.
	if strings.Contains(doc.Root().Text(), "div") {
		t.Fatal("script text leaked into Text()")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	src := `<!DOCTYPE html><html><head><title>x</title></head><body><div id="a" class="b c"><p>Text &amp; more</p><img src="i.png"><template shadowrootmode="open"><b>s</b></template></div></body></html>`
	doc := Parse(src)
	out := Render(doc)
	doc2 := Parse(out)
	// Compare structure via a second render (idempotent serialization).
	if Render(doc2) != out {
		t.Fatalf("render not stable:\n1: %s\n2: %s", out, Render(doc2))
	}
	// Shadow preserved through the round trip.
	host := doc2.ByID("a")
	if host == nil || host.Shadow == nil {
		t.Fatal("shadow lost in round trip")
	}
}

func TestCloneWithMap(t *testing.T) {
	doc := Parse(`<div id="host"><template shadowrootmode="open"><button id="btn">Pay</button></template><span>light</span></div>`)
	host := doc.ByID("host")
	clone, back := host.CloneWithMap()
	// The clone's shadow button maps back to the original.
	cb := clone.Shadow.Root.ByID("btn")
	if cb == nil {
		t.Fatal("clone lost shadow content")
	}
	orig := back[cb]
	if orig == nil || orig != host.Shadow.Root.ByID("btn") {
		t.Fatal("back-map does not reach original button")
	}
	// Mutating the clone must not touch the original.
	cb.SetAttr("id", "changed")
	if host.Shadow.Root.ByID("btn") == nil {
		t.Fatal("original mutated through clone")
	}
}

func TestDetachAndInsertBefore(t *testing.T) {
	doc := Parse(`<ul><li id="a">a</li><li id="b">b</li><li id="c">c</li></ul>`)
	ul := doc.QuerySelector("ul")
	c := doc.ByID("c")
	a := doc.ByID("a")
	c.Detach()
	ul.InsertBefore(c, a)
	var order []string
	for _, li := range ul.QuerySelectorAll("li") {
		order = append(order, li.ID())
	}
	if strings.Join(order, "") != "cab" {
		t.Fatalf("order = %v", order)
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		return doc != nil && doc.Body() != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestParseEndTagCannotCrossShadow(t *testing.T) {
	// A stray </div> inside a shadow template must not close the host's
	// ancestors.
	doc := Parse(`<div id="outer"><div id="host"><template shadowrootmode="open"></div></template><span id="s">x</span></div></div>`)
	s := doc.ByID("s")
	if s == nil {
		t.Fatal("span lost")
	}
}
