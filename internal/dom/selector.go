package dom

import (
	"fmt"
	"strings"
)

// The selector engine supports the subset of CSS used by banner
// detection, cosmetic ad-block filters, and tests:
//
//	tag  #id  .class  [attr]  [attr=v]  [attr^=v]  [attr$=v]  [attr*=v]
//	compound selectors (div.banner#x[role=dialog])
//	descendant (A B) and child (A > B) combinators
//	comma-separated selector groups
//	the universal selector (*)
//
// Selectors never cross shadow or iframe boundaries (standard CSS
// scoping); that limitation is what the paper's shadow workaround
// exists to overcome.

// Selector is a compiled selector group.
type Selector struct {
	alternatives []complexSelector
	src          string
}

type complexSelector struct {
	// compounds[0] is the leftmost; combinators[i] joins compounds[i]
	// and compounds[i+1] and is either ' ' (descendant) or '>' (child).
	compounds   []compound
	combinators []byte
}

type compound struct {
	tag     string // "" or "*" match any
	id      string
	classes []string
	attrs   []attrMatcher
}

type attrMatcher struct {
	key string
	op  byte // 0: present, '=': equals, '^', '$', '*'
	val string
}

// CompileSelector parses a selector group.
func CompileSelector(src string) (*Selector, error) {
	sel := &Selector{src: src}
	for _, part := range splitTopLevel(src, ',') {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("dom: empty selector in %q", src)
		}
		cx, err := parseComplex(part)
		if err != nil {
			return nil, err
		}
		sel.alternatives = append(sel.alternatives, cx)
	}
	if len(sel.alternatives) == 0 {
		return nil, fmt.Errorf("dom: empty selector %q", src)
	}
	return sel, nil
}

// MustCompileSelector is CompileSelector but panics on error; for
// package-level selector constants.
func MustCompileSelector(src string) *Selector {
	s, err := CompileSelector(src)
	if err != nil {
		panic(err)
	}
	return s
}

// String returns the source text of the selector.
func (s *Selector) String() string { return s.src }

// splitTopLevel splits on sep outside [...] brackets.
func splitTopLevel(s string, sep byte) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			if depth > 0 {
				depth--
			}
		case sep:
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parseComplex(src string) (complexSelector, error) {
	var cx complexSelector
	// Tokenize into compounds and combinators.
	i := 0
	expectCompound := true
	for i < len(src) {
		// Skip whitespace, remembering that whitespace between
		// compounds is the descendant combinator.
		ws := i
		for i < len(src) && src[i] == ' ' {
			i++
		}
		sawSpace := i > ws
		if i >= len(src) {
			break
		}
		if src[i] == '>' {
			if expectCompound && len(cx.compounds) == 0 {
				return cx, fmt.Errorf("dom: selector %q starts with combinator", src)
			}
			cx.combinators = append(cx.combinators, '>')
			i++
			expectCompound = true
			continue
		}
		if !expectCompound {
			if !sawSpace {
				return cx, fmt.Errorf("dom: malformed selector %q", src)
			}
			cx.combinators = append(cx.combinators, ' ')
		}
		cp, n, err := parseCompound(src[i:])
		if err != nil {
			return cx, fmt.Errorf("dom: %v in selector %q", err, src)
		}
		cx.compounds = append(cx.compounds, cp)
		i += n
		expectCompound = false
	}
	if len(cx.compounds) == 0 {
		return cx, fmt.Errorf("dom: empty selector %q", src)
	}
	if len(cx.combinators) != len(cx.compounds)-1 {
		return cx, fmt.Errorf("dom: trailing combinator in %q", src)
	}
	return cx, nil
}

func parseCompound(s string) (compound, int, error) {
	var cp compound
	i := 0
	// Optional leading tag or universal.
	if i < len(s) && (isIdentByte(s[i]) || s[i] == '*') {
		if s[i] == '*' {
			cp.tag = "*"
			i++
		} else {
			start := i
			for i < len(s) && isIdentByte(s[i]) {
				i++
			}
			cp.tag = strings.ToLower(s[start:i])
		}
	}
	for i < len(s) {
		switch s[i] {
		case '#':
			i++
			start := i
			for i < len(s) && isIdentByte(s[i]) {
				i++
			}
			if start == i {
				return cp, i, fmt.Errorf("empty id")
			}
			cp.id = s[start:i]
		case '.':
			i++
			start := i
			for i < len(s) && isIdentByte(s[i]) {
				i++
			}
			if start == i {
				return cp, i, fmt.Errorf("empty class")
			}
			cp.classes = append(cp.classes, s[start:i])
		case '[':
			m, n, err := parseAttrMatcher(s[i:])
			if err != nil {
				return cp, i, err
			}
			cp.attrs = append(cp.attrs, m)
			i += n
		default:
			if cp.tag == "" && cp.id == "" && len(cp.classes) == 0 && len(cp.attrs) == 0 {
				return cp, i, fmt.Errorf("unexpected %q", s[i])
			}
			return cp, i, nil
		}
	}
	return cp, i, nil
}

func parseAttrMatcher(s string) (attrMatcher, int, error) {
	// s starts with '['.
	var m attrMatcher
	end := strings.IndexByte(s, ']')
	if end < 0 {
		return m, 0, fmt.Errorf("unterminated attribute selector")
	}
	inner := s[1:end]
	opIdx := -1
	for j := 0; j < len(inner); j++ {
		if inner[j] == '=' {
			opIdx = j
			break
		}
	}
	if opIdx < 0 {
		m.key = strings.ToLower(strings.TrimSpace(inner))
		if m.key == "" {
			return m, 0, fmt.Errorf("empty attribute name")
		}
		return m, end + 1, nil
	}
	key := inner[:opIdx]
	m.op = '='
	if len(key) > 0 {
		switch key[len(key)-1] {
		case '^', '$', '*':
			m.op = key[len(key)-1]
			key = key[:len(key)-1]
		}
	}
	m.key = strings.ToLower(strings.TrimSpace(key))
	if m.key == "" {
		return m, 0, fmt.Errorf("empty attribute name")
	}
	val := strings.TrimSpace(inner[opIdx+1:])
	val = strings.Trim(val, `"'`)
	m.val = val
	return m, end + 1, nil
}

func isIdentByte(c byte) bool {
	return c == '-' || c == '_' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// --- matching -----------------------------------------------------------

func (cp *compound) matches(n *Node) bool {
	if n.Type != ElementNode {
		return false
	}
	if cp.tag != "" && cp.tag != "*" && n.Tag != cp.tag {
		return false
	}
	if cp.id != "" && n.ID() != cp.id {
		return false
	}
	for _, c := range cp.classes {
		if !n.HasClass(c) {
			return false
		}
	}
	for _, am := range cp.attrs {
		v, ok := n.Attr(am.key)
		if !ok {
			return false
		}
		switch am.op {
		case 0:
			// presence only
		case '=':
			if v != am.val {
				return false
			}
		case '^':
			if !strings.HasPrefix(v, am.val) {
				return false
			}
		case '$':
			if !strings.HasSuffix(v, am.val) {
				return false
			}
		case '*':
			if !strings.Contains(v, am.val) {
				return false
			}
		}
	}
	return true
}

// matchesComplex checks the full compound chain by walking ancestors.
func (cx *complexSelector) matches(n *Node, scope *Node) bool {
	last := len(cx.compounds) - 1
	if !cx.compounds[last].matches(n) {
		return false
	}
	return matchRest(cx, last-1, n.Parent, scope)
}

func matchRest(cx *complexSelector, idx int, n *Node, scope *Node) bool {
	if idx < 0 {
		return true
	}
	comb := cx.combinators[idx]
	for cur := n; cur != nil && cur != scope.Parent; cur = cur.Parent {
		if cur.Type != ElementNode {
			if comb == '>' {
				return false
			}
			continue
		}
		if cx.compounds[idx].matches(cur) {
			if matchRest(cx, idx-1, cur.Parent, scope) {
				return true
			}
		}
		if comb == '>' {
			return false // child combinator: only the immediate parent
		}
	}
	return false
}

// Matches reports whether element n matches the selector (with n's
// document as scope).
func (s *Selector) Matches(n *Node) bool {
	for i := range s.alternatives {
		if s.alternatives[i].matches(n, n.Root()) {
			return true
		}
	}
	return false
}

// Query returns the first descendant of n (excluding n) matching the
// selector, in document order, or nil. Matching follows querySelector
// semantics: the selector is evaluated against the whole tree (ancestor
// parts may match nodes above n, including n itself) and results are
// filtered to descendants of n.
func (n *Node) Query(sel *Selector) *Node {
	var found *Node
	n.Walk(func(d *Node) bool {
		if d != n && d.Type == ElementNode {
			for i := range sel.alternatives {
				if sel.alternatives[i].matches(d, d.Root()) {
					found = d
					return false
				}
			}
		}
		return true
	})
	return found
}

// QueryAll returns all descendants of n matching the selector in
// document order. See Query for scoping semantics.
func (n *Node) QueryAll(sel *Selector) []*Node {
	var out []*Node
	n.Walk(func(d *Node) bool {
		if d != n && d.Type == ElementNode {
			for i := range sel.alternatives {
				if sel.alternatives[i].matches(d, d.Root()) {
					out = append(out, d)
					break
				}
			}
		}
		return true
	})
	return out
}

// QuerySelector compiles src and runs Query; it returns nil on a bad
// selector. Convenience for tests and tools.
func (n *Node) QuerySelector(src string) *Node {
	sel, err := CompileSelector(src)
	if err != nil {
		return nil
	}
	return n.Query(sel)
}

// QuerySelectorAll compiles src and runs QueryAll; nil on a bad selector.
func (n *Node) QuerySelectorAll(src string) []*Node {
	sel, err := CompileSelector(src)
	if err != nil {
		return nil
	}
	return n.QueryAll(sel)
}
