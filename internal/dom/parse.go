package dom

import (
	"strings"
	"sync"

	"cookiewalk/internal/htmlx"
)

// Parse builds a document tree from HTML source. It implements a
// pragmatic subset of the WHATWG tree-construction algorithm:
//
//   - missing html/head/body elements are synthesized so that Body()
//     always works on well-formed-ish pages;
//   - void elements never take children;
//   - a small implied-end-tag table closes <p>, <li>, <option>, <tr>,
//     <td>/<th> the way browsers do;
//   - unmatched end tags are ignored; unclosed elements are closed at
//     EOF;
//   - <template shadowrootmode="open|closed"> attaches a declarative
//     shadow root to its parent element (the template element itself
//     does not appear in the tree, matching browser behaviour).
//
// Parse never fails: like a browser, it produces a best-effort tree for
// arbitrary input.
func Parse(src string) *Node {
	return pooledParse(src, false)
}

// ParseFragment parses src as a fragment (no html/head/body synthesis)
// and returns the fragment root. Used for banner markup delivered by
// CMP/SMP scripts, which is injected into an existing page.
func ParseFragment(src string) *Node {
	return pooledParse(src, true)
}

// parserPool recycles parser state — token stacks, the embedded
// tokenizer, and the tail of the current node arena — for callers of
// the package-level Parse/ParseFragment functions. Nothing handed out
// to a document is ever reused: arenas are consumed, never rewound.
// Worker-affine callers (the emulated browser) hold their own Parser
// instead, so their arenas never bounce between cores through here.
var parserPool = sync.Pool{New: func() any { return new(parser) }}

func pooledParse(src string, fragment bool) *Node {
	p := parserPool.Get().(*parser)
	doc := p.parse(src, fragment)
	parserPool.Put(p)
	return doc
}

// Parser is a reusable HTML parser owning its token stacks, tokenizer
// and node-arena tail. It is NOT safe for concurrent use: it exists so
// a single-goroutine session (one crawl worker's browser) can keep its
// parse state core-local across visits instead of round-tripping it
// through the global pool on every page. Produced trees are identical
// to the package-level Parse/ParseFragment results.
type Parser struct {
	p parser
}

// NewParser returns an empty reusable parser.
func NewParser() *Parser { return &Parser{} }

// Parse is Parse using this parser's recycled state.
func (ps *Parser) Parse(src string) *Node { return ps.p.parse(src, false) }

// ParseFragment is ParseFragment using this parser's recycled state.
func (ps *Parser) ParseFragment(src string) *Node { return ps.p.parse(src, true) }

// parse runs one full parse and resets the parser's reusable state.
func (p *parser) parse(src string, fragment bool) *Node {
	p.fragment = fragment
	p.doc = p.newNode()
	p.doc.Type = DocumentNode
	p.stack = append(p.stack, p.doc)
	p.z.Reset(src)
	for {
		tok := p.z.Next()
		if tok.Type == htmlx.ErrorToken {
			break
		}
		p.process(tok)
	}
	if !fragment {
		p.ensureScaffold()
	}
	doc := p.doc
	p.reset()
	return doc
}

type parser struct {
	doc      *Node
	stack    []*Node
	fragment bool
	// shadowStack tracks the declarative shadow templates currently
	// open, so end tags close the right scope.
	shadowStack []*Node // the shadow Root fragments acting as insertion points
	// arena is the tail of the current node-allocation chunk: nodes are
	// handed out from it one by one so a page's worth of nodes costs a
	// few chunk allocations instead of one per node.
	arena []Node
	z     htmlx.Tokenizer
}

// nodeArenaChunk is sized so a typical farm page (≈80 nodes) consumes
// one or two chunks.
const nodeArenaChunk = 64

// newNode hands out a zeroed node from the arena.
func (p *parser) newNode() *Node {
	if len(p.arena) == 0 {
		p.arena = make([]Node, nodeArenaChunk)
	}
	n := &p.arena[0]
	p.arena = p.arena[1:]
	return n
}

// newElement hands out an element node from the arena.
func (p *parser) newElement(tag string, attrs []htmlx.Attribute) *Node {
	n := p.newNode()
	n.Type = ElementNode
	n.Tag = tag
	n.Attrs = attrs
	return n
}

// reset clears the parser for its next parse. Stacks are cleared so an
// idle parser does not pin finished documents; the arena tail is kept —
// its handed-out prefix belongs to the returned tree, the rest feeds
// the next parse.
func (p *parser) reset() {
	clear(p.stack)
	p.stack = p.stack[:0]
	clear(p.shadowStack)
	p.shadowStack = p.shadowStack[:0]
	p.doc = nil
	p.z.Reset("")
}

func (p *parser) top() *Node { return p.stack[len(p.stack)-1] }

func (p *parser) push(n *Node) { p.stack = append(p.stack, n) }

func (p *parser) pop() { p.stack = p.stack[:len(p.stack)-1] }

func (p *parser) process(tok htmlx.Token) {
	switch tok.Type {
	case htmlx.TextToken:
		if strings.TrimSpace(tok.Data) == "" && p.top().Type == DocumentNode {
			return // inter-element whitespace at document level
		}
		p.ensureBodyForContent()
		t := p.newNode()
		t.Type = TextNode
		t.Data = tok.Data
		p.top().AppendChild(t)
	case htmlx.CommentToken:
		c := p.newNode()
		c.Type = CommentNode
		c.Data = tok.Data
		p.top().AppendChild(c)
	case htmlx.DoctypeToken:
		d := p.newNode()
		d.Type = DoctypeNode
		d.Data = tok.Data
		p.doc.AppendChild(d)
	case htmlx.StartTagToken, htmlx.SelfClosingTagToken:
		p.startTag(tok)
	case htmlx.EndTagToken:
		p.endTag(tok.Data)
	}
}

// blockish elements implicitly close an open <p>.
var closesP = map[string]bool{
	"address": true, "article": true, "aside": true, "blockquote": true,
	"div": true, "dl": true, "fieldset": true, "footer": true, "form": true,
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"header": true, "hr": true, "main": true, "nav": true, "ol": true,
	"p": true, "pre": true, "section": true, "table": true, "ul": true,
}

func (p *parser) startTag(tok htmlx.Token) {
	name := tok.Data
	if !p.fragment {
		switch name {
		case "html", "head", "body":
			p.scaffoldElement(name, tok.Attr)
			return
		}
		p.ensureBodyForElement(name)
	}

	// Implied end tags.
	switch {
	case closesP[name]:
		p.closeImplied("p")
	case name == "li":
		p.closeImplied("li")
	case name == "option":
		p.closeImplied("option")
	case name == "tr":
		p.closeImplied("tr")
	case name == "td" || name == "th":
		p.closeImplied("td")
		p.closeImplied("th")
	}

	// Declarative shadow DOM.
	if name == "template" {
		mode := shadowMode(tok)
		if mode != "" && p.top().Type == ElementNode {
			sr := p.top().AttachShadow(ShadowMode(mode))
			p.push(sr.Root)
			p.shadowStack = append(p.shadowStack, sr.Root)
			return
		}
	}

	el := p.newElement(name, tok.Attr)
	p.top().AppendChild(el)
	if tok.Type == htmlx.SelfClosingTagToken || htmlx.IsVoid(name) {
		return
	}
	p.push(el)
}

func shadowMode(tok htmlx.Token) string {
	if v, ok := tok.AttrVal("shadowrootmode"); ok {
		v = strings.ToLower(v)
		if v == "open" || v == "closed" {
			return v
		}
	}
	// Legacy attribute name used by early Chromium releases.
	if v, ok := tok.AttrVal("shadowroot"); ok {
		v = strings.ToLower(v)
		if v == "open" || v == "closed" {
			return v
		}
	}
	return ""
}

// closeImplied pops the stack if the current node is the given tag.
func (p *parser) closeImplied(tag string) {
	if len(p.stack) > 1 && p.top().Type == ElementNode && p.top().Tag == tag {
		p.pop()
	}
}

func (p *parser) endTag(name string) {
	if name == "template" && len(p.shadowStack) > 0 {
		// Close the innermost declarative shadow scope: pop the stack
		// down to (and including) the shadow fragment root.
		root := p.shadowStack[len(p.shadowStack)-1]
		for len(p.stack) > 1 {
			t := p.top()
			p.pop()
			if t == root {
				break
			}
		}
		p.shadowStack = p.shadowStack[:len(p.shadowStack)-1]
		return
	}
	// Find a matching open element; ignore the end tag if none.
	for i := len(p.stack) - 1; i >= 1; i-- {
		n := p.stack[i]
		if n.Type == ElementNode && n.Tag == name {
			p.stack = p.stack[:i]
			return
		}
		if n.Type == DocumentNode {
			return // never pop across a shadow boundary
		}
	}
}

// --- html/head/body scaffolding ----------------------------------------

func (p *parser) htmlNode() *Node {
	for c := p.doc.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == ElementNode && c.Tag == "html" {
			return c
		}
	}
	return nil
}

func childElement(n *Node, tag string) *Node {
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == ElementNode && c.Tag == tag {
			return c
		}
	}
	return nil
}

func (p *parser) scaffoldElement(name string, attrs []htmlx.Attribute) {
	switch name {
	case "html":
		html := p.htmlNode()
		if html == nil {
			html = p.newElement("html", attrs)
			p.doc.AppendChild(html)
		}
		p.setStack(p.doc, html)
	case "head":
		html := p.requireHTML()
		head := childElement(html, "head")
		if head == nil {
			head = p.newElement("head", attrs)
			html.AppendChild(head)
		}
		p.setStack(p.doc, html, head)
	case "body":
		html := p.requireHTML()
		body := childElement(html, "body")
		if body == nil {
			body = p.newElement("body", attrs)
			html.AppendChild(body)
		}
		p.setStack(p.doc, html, body)
	}
}

// setStack replaces the open-element stack in place, reusing its
// backing array.
func (p *parser) setStack(nodes ...*Node) {
	p.stack = append(p.stack[:0], nodes...)
}

func (p *parser) requireHTML() *Node {
	html := p.htmlNode()
	if html == nil {
		html = p.newElement("html", nil)
		p.doc.AppendChild(html)
	}
	return html
}

// headOnly elements belong in <head> when no body is open yet.
var headOnly = map[string]bool{
	"title": true, "meta": true, "link": true, "style": true, "base": true,
}

// ensureBodyForElement makes sure an appropriate insertion point exists
// before a non-scaffold element start tag: content at document level is
// placed into head or body depending on the element, and a flow element
// arriving while <head> is open closes head and opens body, the way
// browsers do.
func (p *parser) ensureBodyForElement(name string) {
	top := p.top()
	switch {
	case top == p.doc:
		html := p.requireHTML()
		if headOnly[name] {
			head := childElement(html, "head")
			if head == nil {
				head = p.newElement("head", nil)
				html.AppendChild(head)
			}
			p.setStack(p.doc, html, head)
			return
		}
		p.switchToBody(html)
	case top.Type == ElementNode && top.Tag == "head" && !headOnly[name]:
		p.switchToBody(p.requireHTML())
	}
}

func (p *parser) switchToBody(html *Node) {
	body := childElement(html, "body")
	if body == nil {
		body = p.newElement("body", nil)
		html.AppendChild(body)
	}
	p.setStack(p.doc, html, body)
}

func (p *parser) ensureBodyForContent() {
	if p.fragment {
		return
	}
	if top := p.top(); top == p.doc || (top.Type == ElementNode && top.Tag == "head") {
		p.switchToBody(p.requireHTML())
	}
}

// ensureScaffold guarantees html/head/body exist after parsing.
func (p *parser) ensureScaffold() {
	if p.fragment {
		return
	}
	html := p.requireHTML()
	if childElement(html, "head") == nil {
		html.InsertBefore(p.newElement("head", nil), html.FirstChild)
	}
	if childElement(html, "body") == nil {
		html.AppendChild(p.newElement("body", nil))
	}
}
