package dom

import (
	"strings"

	"cookiewalk/internal/htmlx"
)

// Parse builds a document tree from HTML source. It implements a
// pragmatic subset of the WHATWG tree-construction algorithm:
//
//   - missing html/head/body elements are synthesized so that Body()
//     always works on well-formed-ish pages;
//   - void elements never take children;
//   - a small implied-end-tag table closes <p>, <li>, <option>, <tr>,
//     <td>/<th> the way browsers do;
//   - unmatched end tags are ignored; unclosed elements are closed at
//     EOF;
//   - <template shadowrootmode="open|closed"> attaches a declarative
//     shadow root to its parent element (the template element itself
//     does not appear in the tree, matching browser behaviour).
//
// Parse never fails: like a browser, it produces a best-effort tree for
// arbitrary input.
func Parse(src string) *Node {
	doc := NewDocument()
	p := &parser{doc: doc, stack: []*Node{doc}}
	z := htmlx.NewTokenizer(src)
	for {
		tok := z.Next()
		if tok.Type == htmlx.ErrorToken {
			break
		}
		p.process(tok)
	}
	p.ensureScaffold()
	return doc
}

// ParseFragment parses src as a fragment (no html/head/body synthesis)
// and returns the fragment root. Used for banner markup delivered by
// CMP/SMP scripts, which is injected into an existing page.
func ParseFragment(src string) *Node {
	frag := NewDocument()
	p := &parser{doc: frag, stack: []*Node{frag}, fragment: true}
	z := htmlx.NewTokenizer(src)
	for {
		tok := z.Next()
		if tok.Type == htmlx.ErrorToken {
			break
		}
		p.process(tok)
	}
	return frag
}

type parser struct {
	doc      *Node
	stack    []*Node
	fragment bool
	// shadowDepth tracks how many declarative shadow templates are
	// currently open, so end tags close the right scope.
	shadowStack []*Node // the shadow Root fragments acting as insertion points
}

func (p *parser) top() *Node { return p.stack[len(p.stack)-1] }

func (p *parser) push(n *Node) { p.stack = append(p.stack, n) }

func (p *parser) pop() { p.stack = p.stack[:len(p.stack)-1] }

func (p *parser) process(tok htmlx.Token) {
	switch tok.Type {
	case htmlx.TextToken:
		if strings.TrimSpace(tok.Data) == "" && p.top().Type == DocumentNode {
			return // inter-element whitespace at document level
		}
		p.ensureBodyForContent()
		p.top().AppendChild(NewText(tok.Data))
	case htmlx.CommentToken:
		p.top().AppendChild(&Node{Type: CommentNode, Data: tok.Data})
	case htmlx.DoctypeToken:
		p.doc.AppendChild(&Node{Type: DoctypeNode, Data: tok.Data})
	case htmlx.StartTagToken, htmlx.SelfClosingTagToken:
		p.startTag(tok)
	case htmlx.EndTagToken:
		p.endTag(tok.Data)
	}
}

// blockish elements implicitly close an open <p>.
var closesP = map[string]bool{
	"address": true, "article": true, "aside": true, "blockquote": true,
	"div": true, "dl": true, "fieldset": true, "footer": true, "form": true,
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"header": true, "hr": true, "main": true, "nav": true, "ol": true,
	"p": true, "pre": true, "section": true, "table": true, "ul": true,
}

func (p *parser) startTag(tok htmlx.Token) {
	name := tok.Data
	if !p.fragment {
		switch name {
		case "html", "head", "body":
			p.scaffoldElement(name, tok.Attr)
			return
		}
		p.ensureBodyForElement(name)
	}

	// Implied end tags.
	switch {
	case closesP[name]:
		p.closeImplied("p")
	case name == "li":
		p.closeImplied("li")
	case name == "option":
		p.closeImplied("option")
	case name == "tr":
		p.closeImplied("tr")
	case name == "td" || name == "th":
		p.closeImplied("td")
		p.closeImplied("th")
	}

	// Declarative shadow DOM.
	if name == "template" {
		mode := shadowMode(tok)
		if mode != "" && p.top().Type == ElementNode {
			sr := p.top().AttachShadow(ShadowMode(mode))
			p.push(sr.Root)
			p.shadowStack = append(p.shadowStack, sr.Root)
			return
		}
	}

	el := &Node{Type: ElementNode, Tag: name, Attrs: tok.Attr}
	p.top().AppendChild(el)
	if tok.Type == htmlx.SelfClosingTagToken || htmlx.IsVoid(name) {
		return
	}
	p.push(el)
}

func shadowMode(tok htmlx.Token) string {
	if v, ok := tok.AttrVal("shadowrootmode"); ok {
		v = strings.ToLower(v)
		if v == "open" || v == "closed" {
			return v
		}
	}
	// Legacy attribute name used by early Chromium releases.
	if v, ok := tok.AttrVal("shadowroot"); ok {
		v = strings.ToLower(v)
		if v == "open" || v == "closed" {
			return v
		}
	}
	return ""
}

// closeImplied pops the stack if the current node is the given tag.
func (p *parser) closeImplied(tag string) {
	if len(p.stack) > 1 && p.top().Type == ElementNode && p.top().Tag == tag {
		p.pop()
	}
}

func (p *parser) endTag(name string) {
	if name == "template" && len(p.shadowStack) > 0 {
		// Close the innermost declarative shadow scope: pop the stack
		// down to (and including) the shadow fragment root.
		root := p.shadowStack[len(p.shadowStack)-1]
		for len(p.stack) > 1 {
			t := p.top()
			p.pop()
			if t == root {
				break
			}
		}
		p.shadowStack = p.shadowStack[:len(p.shadowStack)-1]
		return
	}
	// Find a matching open element; ignore the end tag if none.
	for i := len(p.stack) - 1; i >= 1; i-- {
		n := p.stack[i]
		if n.Type == ElementNode && n.Tag == name {
			p.stack = p.stack[:i]
			return
		}
		if n.Type == DocumentNode {
			return // never pop across a shadow boundary
		}
	}
}

// --- html/head/body scaffolding ----------------------------------------

func (p *parser) htmlNode() *Node {
	for c := p.doc.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == ElementNode && c.Tag == "html" {
			return c
		}
	}
	return nil
}

func childElement(n *Node, tag string) *Node {
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == ElementNode && c.Tag == tag {
			return c
		}
	}
	return nil
}

func (p *parser) scaffoldElement(name string, attrs []htmlx.Attribute) {
	switch name {
	case "html":
		html := p.htmlNode()
		if html == nil {
			html = &Node{Type: ElementNode, Tag: "html", Attrs: attrs}
			p.doc.AppendChild(html)
		}
		p.stack = []*Node{p.doc, html}
	case "head":
		html := p.requireHTML()
		head := childElement(html, "head")
		if head == nil {
			head = &Node{Type: ElementNode, Tag: "head", Attrs: attrs}
			html.AppendChild(head)
		}
		p.stack = []*Node{p.doc, html, head}
	case "body":
		html := p.requireHTML()
		body := childElement(html, "body")
		if body == nil {
			body = &Node{Type: ElementNode, Tag: "body", Attrs: attrs}
			html.AppendChild(body)
		}
		p.stack = []*Node{p.doc, html, body}
	}
}

func (p *parser) requireHTML() *Node {
	html := p.htmlNode()
	if html == nil {
		html = &Node{Type: ElementNode, Tag: "html"}
		p.doc.AppendChild(html)
	}
	return html
}

// headOnly elements belong in <head> when no body is open yet.
var headOnly = map[string]bool{
	"title": true, "meta": true, "link": true, "style": true, "base": true,
}

// ensureBodyForElement makes sure an appropriate insertion point exists
// before a non-scaffold element start tag: content at document level is
// placed into head or body depending on the element, and a flow element
// arriving while <head> is open closes head and opens body, the way
// browsers do.
func (p *parser) ensureBodyForElement(name string) {
	top := p.top()
	switch {
	case top == p.doc:
		html := p.requireHTML()
		if headOnly[name] {
			head := childElement(html, "head")
			if head == nil {
				head = &Node{Type: ElementNode, Tag: "head"}
				html.AppendChild(head)
			}
			p.stack = []*Node{p.doc, html, head}
			return
		}
		p.switchToBody(html)
	case top.Type == ElementNode && top.Tag == "head" && !headOnly[name]:
		p.switchToBody(p.requireHTML())
	}
}

func (p *parser) switchToBody(html *Node) {
	body := childElement(html, "body")
	if body == nil {
		body = &Node{Type: ElementNode, Tag: "body"}
		html.AppendChild(body)
	}
	p.stack = []*Node{p.doc, html, body}
}

func (p *parser) ensureBodyForContent() {
	if p.fragment {
		return
	}
	if top := p.top(); top == p.doc || (top.Type == ElementNode && top.Tag == "head") {
		p.switchToBody(p.requireHTML())
	}
}

// ensureScaffold guarantees html/head/body exist after parsing.
func (p *parser) ensureScaffold() {
	if p.fragment {
		return
	}
	html := p.requireHTML()
	if childElement(html, "head") == nil {
		head := &Node{Type: ElementNode, Tag: "head"}
		html.InsertBefore(head, html.FirstChild)
	}
	if childElement(html, "body") == nil {
		html.AppendChild(&Node{Type: ElementNode, Tag: "body"})
	}
}
