package dom

import (
	"testing"
	"testing/quick"
)

const selectorFixture = `
<html><body>
  <div id="wrap" class="outer">
    <div class="banner consent" role="dialog" data-cmp="acme">
      <p class="msg">We use cookies</p>
      <button id="accept" class="btn primary" data-action="accept">Accept all</button>
      <button id="reject" class="btn" data-action="reject">Reject</button>
    </div>
    <section>
      <p>article text</p>
      <a href="https://example.com/page">link</a>
      <a href="/local">local</a>
    </section>
  </div>
</body></html>`

func fixture(t *testing.T) *Node {
	t.Helper()
	return Parse(selectorFixture)
}

func TestSelectorTag(t *testing.T) {
	doc := fixture(t)
	if n := len(doc.QuerySelectorAll("button")); n != 2 {
		t.Fatalf("buttons = %d", n)
	}
}

func TestSelectorID(t *testing.T) {
	doc := fixture(t)
	n := doc.QuerySelector("#accept")
	if n == nil || n.Tag != "button" {
		t.Fatalf("n = %v", n)
	}
}

func TestSelectorClass(t *testing.T) {
	doc := fixture(t)
	if n := len(doc.QuerySelectorAll(".btn")); n != 2 {
		t.Fatalf(".btn = %d", n)
	}
	if n := len(doc.QuerySelectorAll(".btn.primary")); n != 1 {
		t.Fatalf(".btn.primary = %d", n)
	}
}

func TestSelectorCompound(t *testing.T) {
	doc := fixture(t)
	n := doc.QuerySelector(`button.btn#accept[data-action=accept]`)
	if n == nil {
		t.Fatal("compound selector failed")
	}
}

func TestSelectorAttr(t *testing.T) {
	doc := fixture(t)
	cases := map[string]int{
		`[role]`:                 1,
		`[role=dialog]`:          1,
		`[data-action]`:          2,
		`[data-action="reject"]`: 1,
		`a[href^="https://"]`:    1,
		`a[href$="/local"]`:      1,
		`a[href*="example.com"]`: 1,
		`[data-cmp*=acm]`:        1,
		`[role=banner]`:          0,
	}
	for sel, want := range cases {
		if got := len(doc.QuerySelectorAll(sel)); got != want {
			t.Errorf("%s: got %d want %d", sel, got, want)
		}
	}
}

func TestSelectorDescendant(t *testing.T) {
	doc := fixture(t)
	if n := len(doc.QuerySelectorAll("div.banner button")); n != 2 {
		t.Fatalf("descendant = %d", n)
	}
	if n := len(doc.QuerySelectorAll("section button")); n != 0 {
		t.Fatalf("wrong scope = %d", n)
	}
}

func TestSelectorChild(t *testing.T) {
	doc := fixture(t)
	if n := len(doc.QuerySelectorAll("#wrap > div.banner")); n != 1 {
		t.Fatalf("child = %d", n)
	}
	// p.msg is a grandchild of #wrap, not a child.
	if n := len(doc.QuerySelectorAll("#wrap > p.msg")); n != 0 {
		t.Fatalf("child over-matched: %d", n)
	}
	if n := len(doc.QuerySelectorAll("#wrap p.msg")); n != 1 {
		t.Fatalf("descendant fallback = %d", n)
	}
}

func TestSelectorGroup(t *testing.T) {
	doc := fixture(t)
	if n := len(doc.QuerySelectorAll("#accept, #reject, section a")); n != 4 {
		t.Fatalf("group = %d", n)
	}
}

func TestSelectorUniversal(t *testing.T) {
	doc := fixture(t)
	banner := doc.QuerySelector("div.banner")
	if n := len(banner.QuerySelectorAll("*")); n != 3 {
		t.Fatalf("universal inside banner = %d", n)
	}
}

func TestSelectorCaseInsensitiveTag(t *testing.T) {
	doc := fixture(t)
	if doc.QuerySelector("BUTTON#accept") == nil {
		t.Fatal("upper-case tag must match")
	}
}

func TestSelectorScope(t *testing.T) {
	doc := fixture(t)
	section := doc.QuerySelector("section")
	if n := section.QuerySelector("a"); n == nil {
		t.Fatal("scoped query failed")
	}
	// querySelector semantics: ancestor compounds may match nodes at or
	// above the context element, results are filtered to descendants.
	if section.QuerySelector("section a") == nil {
		t.Fatal("anchor element itself should satisfy ancestor compound")
	}
	if section.QuerySelector("#wrap a") == nil {
		t.Fatal("ancestors above the anchor should satisfy ancestor compound")
	}
	// But results are always descendants of the context node.
	if section.QuerySelector("div.banner button") != nil {
		t.Fatal("query returned a non-descendant")
	}
}

func TestSelectorMatches(t *testing.T) {
	doc := fixture(t)
	btn := doc.ByID("accept")
	sel := MustCompileSelector("div.banner > button.primary")
	if !sel.Matches(btn) {
		t.Fatal("Matches failed")
	}
	sel2 := MustCompileSelector("section > button")
	if sel2.Matches(btn) {
		t.Fatal("Matches over-matched")
	}
}

func TestSelectorErrors(t *testing.T) {
	bad := []string{"", "  ", ">", "div >", "#", ".", "[", "[=x]", "a,,b", "!!"}
	for _, src := range bad {
		if _, err := CompileSelector(src); err == nil {
			t.Errorf("CompileSelector(%q) succeeded, want error", src)
		}
	}
}

func TestSelectorDoesNotCrossShadow(t *testing.T) {
	doc := Parse(`<div id="host"><template shadowrootmode="open"><button class="pay">Pay</button></template></div>`)
	if doc.QuerySelector("button.pay") != nil {
		t.Fatal("selector crossed shadow boundary")
	}
	host := doc.ByID("host")
	if host.Shadow.Root.QuerySelector("button.pay") == nil {
		t.Fatal("direct shadow query failed")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCompileSelector(">")
}

// Property: any selector that compiles can run against any document
// without panicking.
func TestQuickSelectorTotal(t *testing.T) {
	doc := fixture(t)
	f := func(s string) bool {
		sel, err := CompileSelector(s)
		if err != nil {
			return true
		}
		_ = doc.QueryAll(sel)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
