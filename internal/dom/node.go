// Package dom implements the document object model used by the emulated
// browser and the banner detector: an element tree parsed from HTML
// (via package htmlx), a CSS selector subset, declarative shadow DOM,
// iframe content documents, inline-style visibility heuristics, and
// text extraction.
//
// Two boundaries are modelled faithfully because the paper's detection
// technique depends on them:
//
//   - CSS selectors do NOT cross shadow roots. BannerClick's shadow-DOM
//     workaround (clone shadow children into the light DOM, search the
//     clone, then map hits back to the originals) exists precisely
//     because XPath/CSS cannot see into shadow roots; see
//     Node.CloneWithMap and core.ExpandShadowDOM.
//   - iframes are separate documents (Node.FrameDoc), loaded by the
//     browser, and must be searched explicitly.
package dom

import (
	"strings"

	"cookiewalk/internal/htmlx"
)

// NodeType discriminates tree nodes.
type NodeType int

const (
	// DocumentNode is the root of a document or shadow-root fragment.
	DocumentNode NodeType = iota
	// ElementNode is an element such as <div>.
	ElementNode
	// TextNode is character data.
	TextNode
	// CommentNode is <!-- ... -->.
	CommentNode
	// DoctypeNode is <!DOCTYPE ...>.
	DoctypeNode
)

// ShadowMode is the mode of an attached shadow root.
type ShadowMode string

const (
	// ShadowOpen roots are reachable from page script.
	ShadowOpen ShadowMode = "open"
	// ShadowClosed roots are hidden from page script; a real crawler
	// needs DevTools piercing to reach them.
	ShadowClosed ShadowMode = "closed"
)

// ShadowRoot is a shadow tree attached to a host element.
type ShadowRoot struct {
	Mode ShadowMode
	Host *Node
	// Root is a DocumentNode fragment holding the shadow children.
	Root *Node
}

// Node is a single DOM node. The zero value is not useful; create nodes
// with NewElement/NewText/NewDocument or by parsing.
type Node struct {
	Type NodeType
	// Tag is the lower-case element name for ElementNode.
	Tag string
	// Data holds text for TextNode, comment text for CommentNode, and
	// the doctype string for DoctypeNode.
	Data string
	// Attrs are the element attributes in source order.
	Attrs []htmlx.Attribute

	Parent      *Node
	FirstChild  *Node
	LastChild   *Node
	PrevSibling *Node
	NextSibling *Node

	// Shadow is the attached shadow root, if any (elements only).
	Shadow *ShadowRoot
	// FrameDoc is the loaded content document for <iframe> elements.
	// It is populated by the browser, not the parser.
	FrameDoc *Node

	// shadowHost points from a shadow fragment root back to its host,
	// so visibility checks can climb out of shadow trees.
	shadowHost *Node
}

// NewDocument returns an empty document root.
func NewDocument() *Node { return &Node{Type: DocumentNode} }

// NewElement returns a detached element with the given tag and
// alternating key/value attribute pairs.
func NewElement(tag string, kv ...string) *Node {
	n := &Node{Type: ElementNode, Tag: strings.ToLower(tag)}
	for i := 0; i+1 < len(kv); i += 2 {
		n.Attrs = append(n.Attrs, htmlx.Attribute{Key: strings.ToLower(kv[i]), Val: kv[i+1]})
	}
	return n
}

// NewText returns a detached text node.
func NewText(data string) *Node { return &Node{Type: TextNode, Data: data} }

// AppendChild adds c as the last child of n. c is detached first if
// necessary.
func (n *Node) AppendChild(c *Node) {
	if c.Parent != nil {
		c.Detach()
	}
	c.Parent = n
	c.PrevSibling = n.LastChild
	if n.LastChild != nil {
		n.LastChild.NextSibling = c
	} else {
		n.FirstChild = c
	}
	n.LastChild = c
}

// InsertBefore inserts c as a child of n immediately before ref.
// If ref is nil it appends.
func (n *Node) InsertBefore(c, ref *Node) {
	if ref == nil {
		n.AppendChild(c)
		return
	}
	if ref.Parent != n {
		panic("dom: InsertBefore reference is not a child")
	}
	if c.Parent != nil {
		c.Detach()
	}
	c.Parent = n
	c.NextSibling = ref
	c.PrevSibling = ref.PrevSibling
	if ref.PrevSibling != nil {
		ref.PrevSibling.NextSibling = c
	} else {
		n.FirstChild = c
	}
	ref.PrevSibling = c
}

// Detach removes n from its parent, leaving its own subtree intact.
func (n *Node) Detach() {
	if n.Parent == nil {
		return
	}
	if n.PrevSibling != nil {
		n.PrevSibling.NextSibling = n.NextSibling
	} else {
		n.Parent.FirstChild = n.NextSibling
	}
	if n.NextSibling != nil {
		n.NextSibling.PrevSibling = n.PrevSibling
	} else {
		n.Parent.LastChild = n.PrevSibling
	}
	n.Parent, n.PrevSibling, n.NextSibling = nil, nil, nil
}

// Children returns the direct children as a slice.
func (n *Node) Children() []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		out = append(out, c)
	}
	return out
}

// Attr returns the value of the named attribute (lower-case key) and
// whether it is present.
func (n *Node) Attr(key string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// AttrOr returns the attribute value or def when absent.
func (n *Node) AttrOr(key, def string) string {
	if v, ok := n.Attr(key); ok {
		return v
	}
	return def
}

// SetAttr sets or replaces an attribute.
func (n *Node) SetAttr(key, val string) {
	key = strings.ToLower(key)
	for i, a := range n.Attrs {
		if a.Key == key {
			n.Attrs[i].Val = val
			return
		}
	}
	n.Attrs = append(n.Attrs, htmlx.Attribute{Key: key, Val: val})
}

// ID returns the element id attribute.
func (n *Node) ID() string { return n.AttrOr("id", "") }

// HasClass reports whether the element's class list contains name.
func (n *Node) HasClass(name string) bool {
	cls, ok := n.Attr("class")
	if !ok {
		return false
	}
	for _, c := range strings.Fields(cls) {
		if c == name {
			return true
		}
	}
	return false
}

// AttachShadow attaches a shadow root of the given mode and returns it.
// Attaching to a host that already has one replaces the old root,
// which is sufficient for our parser (real DOM would throw).
func (n *Node) AttachShadow(mode ShadowMode) *ShadowRoot {
	sr := &ShadowRoot{Mode: mode, Host: n, Root: NewDocument()}
	sr.Root.shadowHost = n
	n.Shadow = sr
	return sr
}

// Walk calls fn for n and every descendant in document order. It does
// not descend into shadow roots or iframe documents; callers that need
// to pierce those boundaries must recurse explicitly (as the paper's
// tooling does).
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// Descendants returns all element descendants in document order
// (light DOM only).
func (n *Node) Descendants() []*Node {
	var out []*Node
	n.Walk(func(d *Node) bool {
		if d != n && d.Type == ElementNode {
			out = append(out, d)
		}
		return true
	})
	return out
}

// ElementsByTag returns descendant elements with the given tag.
func (n *Node) ElementsByTag(tag string) []*Node {
	tag = strings.ToLower(tag)
	var out []*Node
	n.Walk(func(d *Node) bool {
		if d.Type == ElementNode && d.Tag == tag {
			out = append(out, d)
		}
		return true
	})
	return out
}

// ByID returns the first descendant element with the given id, or nil.
func (n *Node) ByID(id string) *Node {
	var found *Node
	n.Walk(func(d *Node) bool {
		if d.Type == ElementNode && d.ID() == id {
			found = d
			return false
		}
		return true
	})
	return found
}

// Root returns the highest ancestor of n (the document for attached
// nodes, or the shadow fragment root inside a shadow tree).
func (n *Node) Root() *Node {
	r := n
	for r.Parent != nil {
		r = r.Parent
	}
	return r
}

// DocumentElement returns the <html> element of a document, or nil.
func (n *Node) DocumentElement() *Node {
	for c := n.Root().FirstChild; c != nil; c = c.NextSibling {
		if c.Type == ElementNode && c.Tag == "html" {
			return c
		}
	}
	return nil
}

// Body returns the <body> element of the document containing n, or nil.
func (n *Node) Body() *Node {
	html := n.DocumentElement()
	if html == nil {
		return nil
	}
	for c := html.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == ElementNode && c.Tag == "body" {
			return c
		}
	}
	return nil
}

// Clone returns a deep copy of n's subtree. Shadow roots are cloned;
// FrameDoc pointers are shared (frames are separate documents owned by
// the browser, and cloning a host must not re-load the frame).
func (n *Node) Clone() *Node {
	c, _ := n.CloneWithMap()
	return c
}

// CloneWithMap deep-copies n's subtree and returns a map from each
// clone back to its original node. This is the primitive behind the
// BannerClick shadow-DOM workaround: search the clone with ordinary
// selectors, then interact with mapped originals.
func (n *Node) CloneWithMap() (*Node, map[*Node]*Node) {
	backMap := make(map[*Node]*Node)
	return cloneInto(n, backMap), backMap
}

func cloneInto(n *Node, backMap map[*Node]*Node) *Node {
	c := &Node{
		Type:     n.Type,
		Tag:      n.Tag,
		Data:     n.Data,
		FrameDoc: n.FrameDoc,
	}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]htmlx.Attribute, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	backMap[c] = n
	if n.Shadow != nil {
		c.Shadow = &ShadowRoot{
			Mode: n.Shadow.Mode,
			Host: c,
			Root: cloneInto(n.Shadow.Root, backMap),
		}
		c.Shadow.Root.shadowHost = c
	}
	for ch := n.FirstChild; ch != nil; ch = ch.NextSibling {
		c.AppendChild(cloneInto(ch, backMap))
	}
	return c
}

// ShadowRoots returns every shadow root hosted anywhere in n's subtree
// (including roots hosted inside other shadow trees), in document order.
func (n *Node) ShadowRoots() []*ShadowRoot {
	var out []*ShadowRoot
	var visit func(*Node)
	visit = func(d *Node) {
		d.Walk(func(e *Node) bool {
			if e.Shadow != nil {
				out = append(out, e.Shadow)
				visit(e.Shadow.Root)
			}
			return true
		})
	}
	visit(n)
	return out
}

// FrameDocs returns the content documents of all iframes in n's subtree
// that have been loaded, including frames hosted inside shadow roots.
func (n *Node) FrameDocs() []*Node {
	var out []*Node
	var visit func(*Node)
	visit = func(d *Node) {
		d.Walk(func(e *Node) bool {
			if e.Type == ElementNode && e.FrameDoc != nil {
				out = append(out, e.FrameDoc)
			}
			if e.Shadow != nil {
				visit(e.Shadow.Root)
			}
			return true
		})
	}
	visit(n)
	return out
}
