package dom

import "testing"

var benchPage = `<!DOCTYPE html><html><head><title>t</title></head><body>
<header><h1>Site</h1><nav><a href="/">Home</a></nav></header>
<main><article><h2>head</h2><p>one two three</p><p>four five six</p></article></main>
<div id="cw-banner" class="cw-overlay consent-layer" role="dialog" style="position:fixed;top:20%">
<p>Werbefrei im Abo für 2,99 € pro Monat oder Cookies akzeptieren.</p>
<button id="a">Alle akzeptieren</button><button id="s">Abonnieren</button></div>
<div id="host"><template shadowrootmode="open"><p class="inner">shadow</p></template></div>
<footer>© site</footer></body></html>`

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(benchPage)))
	for i := 0; i < b.N; i++ {
		Parse(benchPage)
	}
}

// BenchmarkDOMParse is the crawl-facing alias of BenchmarkParse used
// by the hot-path benchmark suite (BenchmarkVisit /
// BenchmarkRenderSitePage / BenchmarkDOMParse / BenchmarkCosmetics):
// one full farm-shaped page through the pooled parser.
func BenchmarkDOMParse(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(benchPage)))
	for i := 0; i < b.N; i++ {
		if doc := Parse(benchPage); doc.Body() == nil {
			b.Fatal("no body")
		}
	}
}

func BenchmarkRender(b *testing.B) {
	doc := Parse(benchPage)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Render(doc)
	}
}

func BenchmarkQuerySelector(b *testing.B) {
	doc := Parse(benchPage)
	sel := MustCompileSelector("div.consent-layer > button")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if doc.Query(sel) == nil {
			b.Fatal("not found")
		}
	}
}

func BenchmarkDeepText(b *testing.B) {
	doc := Parse(benchPage)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if doc.Body().DeepText() == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkCloneWithMap(b *testing.B) {
	doc := Parse(benchPage)
	host := doc.ByID("host")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c, _ := host.CloneWithMap(); c == nil {
			b.Fatal("nil clone")
		}
	}
}
