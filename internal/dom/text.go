package dom

import (
	"strings"
	"unicode"
)

// skipTextTags are elements whose text content is never user-visible.
var skipTextTags = map[string]bool{
	"script": true, "style": true, "template": true, "noscript": true,
	"head": true, "title": true,
}

// blockTags separate words when extracting text, mirroring layout.
var blockTags = map[string]bool{
	"address": true, "article": true, "aside": true, "blockquote": true,
	"br": true, "button": true, "div": true, "dl": true, "dt": true,
	"dd": true, "fieldset": true, "footer": true, "form": true,
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"header": true, "hr": true, "li": true, "main": true, "nav": true,
	"ol": true, "option": true, "p": true, "pre": true, "section": true,
	"select": true, "table": true, "td": true, "th": true, "tr": true,
	"ul": true,
}

// Text returns the user-visible text of n's subtree with whitespace
// normalized: runs of Unicode space (including NBSP from &nbsp;)
// collapse to single ASCII spaces and block boundaries insert spaces.
// It does not descend into shadow roots or iframes — callers that need
// pierced text (the cookiewall detector) collect those explicitly.
func (n *Node) Text() string {
	var b strings.Builder
	appendText(&b, n)
	return NormalizeSpace(b.String())
}

func appendText(b *strings.Builder, n *Node) {
	switch n.Type {
	case TextNode:
		b.WriteString(n.Data)
		return
	case CommentNode, DoctypeNode:
		return
	case ElementNode:
		if skipTextTags[n.Tag] {
			return
		}
		if blockTags[n.Tag] {
			b.WriteByte(' ')
		}
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		appendText(b, c)
	}
	if n.Type == ElementNode && blockTags[n.Tag] {
		b.WriteByte(' ')
	}
}

// DeepText returns the text of n's subtree including all shadow roots
// and loaded iframe documents beneath it. This is what a screenshot
// shows, and what manual annotation in the paper would read.
func (n *Node) DeepText() string {
	var parts []string
	if t := n.Text(); t != "" {
		parts = append(parts, t)
	}
	for _, sr := range n.ShadowRoots() {
		if t := sr.Root.Text(); t != "" {
			parts = append(parts, t)
		}
	}
	for _, fd := range n.FrameDocs() {
		if t := fd.Text(); t != "" {
			parts = append(parts, t)
		}
	}
	return NormalizeSpace(strings.Join(parts, " "))
}

// NormalizeSpace folds every run of Unicode whitespace (including
// non-breaking spaces) into a single ASCII space and trims the ends.
// Price matching depends on this: "3,99&nbsp;€" must compare equal to
// "3,99 €".
func NormalizeSpace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := false
	wrote := false
	for _, r := range s {
		if unicode.IsSpace(r) {
			space = true
			continue
		}
		if space && wrote {
			b.WriteByte(' ')
		}
		space = false
		wrote = true
		b.WriteRune(r)
	}
	return b.String()
}

// --- inline style and visibility heuristics ------------------------------

// StyleProps parses the element's style attribute into a property map
// with lower-cased keys and trimmed values. Malformed declarations are
// skipped.
func (n *Node) StyleProps() map[string]string {
	style, ok := n.Attr("style")
	if !ok || style == "" {
		return nil
	}
	props := make(map[string]string)
	for _, decl := range strings.Split(style, ";") {
		colon := strings.IndexByte(decl, ':')
		if colon < 0 {
			continue
		}
		key := strings.ToLower(strings.TrimSpace(decl[:colon]))
		val := strings.TrimSpace(decl[colon+1:])
		if key != "" && val != "" {
			props[key] = val
		}
	}
	return props
}

// Style returns one inline style property value ("" when absent).
func (n *Node) Style(prop string) string {
	return n.StyleProps()[strings.ToLower(prop)]
}

// IsDisplayed reports whether the node itself is displayed (no
// display:none / visibility:hidden inline style, no hidden attribute).
func (n *Node) IsDisplayed() bool {
	if n.Type != ElementNode {
		return true
	}
	if _, hidden := n.Attr("hidden"); hidden {
		return false
	}
	props := n.StyleProps()
	if props["display"] == "none" {
		return false
	}
	if v := props["visibility"]; v == "hidden" || v == "collapse" {
		return false
	}
	if props["opacity"] == "0" {
		return false
	}
	return true
}

// IsVisible reports whether n and all its light-DOM ancestors are
// displayed. Shadow hosts count as ancestors for nodes inside shadow
// roots.
func (n *Node) IsVisible() bool {
	for cur := n; cur != nil; {
		if !cur.IsDisplayed() {
			return false
		}
		if cur.Parent != nil {
			cur = cur.Parent
			continue
		}
		// Climb out of a shadow fragment to its host.
		if cur.Type == DocumentNode {
			if host := hostOf(cur); host != nil {
				cur = host
				continue
			}
		}
		break
	}
	return true
}

// hostOf returns the shadow host for a shadow fragment root, if this
// document fragment is a shadow root.
func hostOf(fragment *Node) *Node {
	// The fragment keeps no back pointer; hosts are discovered by the
	// ShadowRoot struct. We thread it via a hidden attribute-free map
	// would be overkill: instead, shadow fragments are created only by
	// AttachShadow, which we can detect by scanning the host chain.
	// To keep this O(1), AttachShadow tags the fragment.
	if fragment.shadowHost != nil {
		return fragment.shadowHost
	}
	return nil
}

// IsOverlay reports whether the element looks like a page overlay:
// position fixed/sticky/absolute with a z-index, or a dialog role, or
// class/id hints commonly used by consent layers. This mirrors the
// visual "covers the page" heuristic BannerClick applies.
func (n *Node) IsOverlay() bool {
	if n.Type != ElementNode {
		return false
	}
	props := n.StyleProps()
	pos := props["position"]
	if pos == "fixed" || pos == "sticky" {
		return true
	}
	if pos == "absolute" && props["z-index"] != "" {
		return true
	}
	if role, _ := n.Attr("role"); role == "dialog" || role == "alertdialog" {
		return true
	}
	if _, ok := n.Attr("aria-modal"); ok {
		return true
	}
	hint := strings.ToLower(n.AttrOr("class", "") + " " + n.AttrOr("id", ""))
	for _, kw := range []string{"overlay", "modal", "popup", "consent-layer", "cmp-container", "banner"} {
		if strings.Contains(hint, kw) {
			return true
		}
	}
	return false
}
