package dom

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// skipTextTag reports elements whose text content is never
// user-visible. A string switch compiles to a length-bucketed
// comparison tree — measurably cheaper than a map probe on the
// per-node text path.
func skipTextTag(tag string) bool {
	switch tag {
	case "script", "style", "template", "noscript", "head", "title":
		return true
	}
	return false
}

// blockTag reports elements that separate words when extracting text,
// mirroring layout.
func blockTag(tag string) bool {
	switch tag {
	case "address", "article", "aside", "blockquote", "br", "button",
		"div", "dl", "dt", "dd", "fieldset", "footer", "form",
		"h1", "h2", "h3", "h4", "h5", "h6", "header", "hr", "li",
		"main", "nav", "ol", "option", "p", "pre", "section", "select",
		"table", "td", "th", "tr", "ul":
		return true
	}
	return false
}

// Text returns the user-visible text of n's subtree with whitespace
// normalized: runs of Unicode space (including NBSP from &nbsp;)
// collapse to single ASCII spaces and block boundaries insert spaces.
// It does not descend into shadow roots or iframes — callers that need
// pierced text (the cookiewall detector) collect those explicitly.
//
// Extraction and normalization happen in one streaming pass — the text
// never exists un-normalized, halving the string work of the old
// extract-then-NormalizeSpace pipeline while producing identical
// bytes (the normalizer is fed the same chunk sequence the old code
// concatenated).
func (n *Node) Text() string {
	var t textNormalizer
	appendText(&t, n)
	return t.b.String()
}

// textNormalizer streams chunks through the NormalizeSpace state
// machine: runs of Unicode whitespace collapse to single ASCII spaces,
// leading and trailing whitespace never gets written.
type textNormalizer struct {
	b     strings.Builder
	space bool // pending whitespace run
	wrote bool // a non-space rune has been written
}

func (t *textNormalizer) writeString(s string) {
	for i := 0; i < len(s); {
		// ASCII bytes skip rune decoding and WriteRune; the unicode
		// space set restricted to ASCII is exactly \t\n\v\f\r and ' '.
		if c := s[i]; c < utf8.RuneSelf {
			i++
			if c == ' ' || (c >= '\t' && c <= '\r') {
				t.space = true
				continue
			}
			if t.space && t.wrote {
				t.b.WriteByte(' ')
			}
			t.space = false
			t.wrote = true
			t.b.WriteByte(c)
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		i += size
		if unicode.IsSpace(r) {
			t.space = true
			continue
		}
		if t.space && t.wrote {
			t.b.WriteByte(' ')
		}
		t.space = false
		t.wrote = true
		t.b.WriteRune(r)
	}
}

func (t *textNormalizer) writeSpace() { t.space = true }

func appendText(t *textNormalizer, n *Node) {
	switch n.Type {
	case TextNode:
		t.writeString(n.Data)
		return
	case CommentNode, DoctypeNode:
		return
	case ElementNode:
		if skipTextTag(n.Tag) {
			return
		}
		if blockTag(n.Tag) {
			t.writeSpace()
		}
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		appendText(t, c)
	}
	if n.Type == ElementNode && blockTag(n.Tag) {
		t.writeSpace()
	}
}

// DeepText returns the text of n's subtree including all shadow roots
// and loaded iframe documents beneath it. This is what a screenshot
// shows, and what manual annotation in the paper would read.
func (n *Node) DeepText() string {
	var parts []string
	if t := n.Text(); t != "" {
		parts = append(parts, t)
	}
	for _, sr := range n.ShadowRoots() {
		if t := sr.Root.Text(); t != "" {
			parts = append(parts, t)
		}
	}
	for _, fd := range n.FrameDocs() {
		if t := fd.Text(); t != "" {
			parts = append(parts, t)
		}
	}
	return NormalizeSpace(strings.Join(parts, " "))
}

// NormalizeSpace folds every run of Unicode whitespace (including
// non-breaking spaces) into a single ASCII space and trims the ends.
// Price matching depends on this: "3,99&nbsp;€" must compare equal to
// "3,99 €".
func NormalizeSpace(s string) string {
	var t textNormalizer
	t.b.Grow(len(s))
	t.writeString(s)
	return t.b.String()
}

// --- inline style and visibility heuristics ------------------------------

// StyleProps parses the element's style attribute into a property map
// with lower-cased keys and trimmed values. Malformed declarations are
// skipped.
func (n *Node) StyleProps() map[string]string {
	style, ok := n.Attr("style")
	if !ok || style == "" {
		return nil
	}
	props := make(map[string]string)
	for _, decl := range strings.Split(style, ";") {
		colon := strings.IndexByte(decl, ':')
		if colon < 0 {
			continue
		}
		key := strings.ToLower(strings.TrimSpace(decl[:colon]))
		val := strings.TrimSpace(decl[colon+1:])
		if key != "" && val != "" {
			props[key] = val
		}
	}
	return props
}

// Style returns one inline style property value ("" when absent).
func (n *Node) Style(prop string) string {
	return n.styleVal(strings.ToLower(prop))
}

// styleVal scans the style attribute for one property without building
// the StyleProps map — visibility checks run per element on the
// detection hot path. Like the map (where later declarations
// overwrite earlier ones), the LAST well-formed declaration wins.
// prop must be lower-case.
func (n *Node) styleVal(prop string) string {
	style, ok := n.Attr("style")
	if !ok || style == "" {
		return ""
	}
	val := ""
	for len(style) > 0 {
		decl := style
		if semi := strings.IndexByte(style, ';'); semi >= 0 {
			decl, style = style[:semi], style[semi+1:]
		} else {
			style = ""
		}
		colon := strings.IndexByte(decl, ':')
		if colon < 0 {
			continue
		}
		key := strings.TrimSpace(decl[:colon])
		if !strings.EqualFold(key, prop) {
			continue
		}
		if v := strings.TrimSpace(decl[colon+1:]); v != "" {
			val = v
		}
	}
	return val
}

// IsDisplayed reports whether the node itself is displayed (no
// display:none / visibility:hidden inline style, no hidden attribute).
func (n *Node) IsDisplayed() bool {
	if n.Type != ElementNode {
		return true
	}
	if _, hidden := n.Attr("hidden"); hidden {
		return false
	}
	if n.styleVal("display") == "none" {
		return false
	}
	if v := n.styleVal("visibility"); v == "hidden" || v == "collapse" {
		return false
	}
	if n.styleVal("opacity") == "0" {
		return false
	}
	return true
}

// IsVisible reports whether n and all its light-DOM ancestors are
// displayed. Shadow hosts count as ancestors for nodes inside shadow
// roots.
func (n *Node) IsVisible() bool {
	for cur := n; cur != nil; {
		if !cur.IsDisplayed() {
			return false
		}
		if cur.Parent != nil {
			cur = cur.Parent
			continue
		}
		// Climb out of a shadow fragment to its host.
		if cur.Type == DocumentNode {
			if host := hostOf(cur); host != nil {
				cur = host
				continue
			}
		}
		break
	}
	return true
}

// hostOf returns the shadow host for a shadow fragment root, if this
// document fragment is a shadow root.
func hostOf(fragment *Node) *Node {
	// The fragment keeps no back pointer; hosts are discovered by the
	// ShadowRoot struct. We thread it via a hidden attribute-free map
	// would be overkill: instead, shadow fragments are created only by
	// AttachShadow, which we can detect by scanning the host chain.
	// To keep this O(1), AttachShadow tags the fragment.
	if fragment.shadowHost != nil {
		return fragment.shadowHost
	}
	return nil
}

// IsOverlay reports whether the element looks like a page overlay:
// position fixed/sticky/absolute with a z-index, or a dialog role, or
// class/id hints commonly used by consent layers. This mirrors the
// visual "covers the page" heuristic BannerClick applies.
func (n *Node) IsOverlay() bool {
	if n.Type != ElementNode {
		return false
	}
	pos := n.styleVal("position")
	if pos == "fixed" || pos == "sticky" {
		return true
	}
	if pos == "absolute" && n.styleVal("z-index") != "" {
		return true
	}
	if role, _ := n.Attr("role"); role == "dialog" || role == "alertdialog" {
		return true
	}
	if _, ok := n.Attr("aria-modal"); ok {
		return true
	}
	return hintsOverlay(n.AttrOr("class", "")) || hintsOverlay(n.AttrOr("id", ""))
}

// overlayHints are the class/id substrings consent layers use. None
// contains a space, so checking class and id separately is equivalent
// to the old scan of their space-joined concatenation.
var overlayHints = [...]string{
	"overlay", "modal", "popup", "consent-layer", "cmp-container", "banner",
}

func hintsOverlay(attr string) bool {
	if attr == "" {
		return false
	}
	// ToLower returns the input unchanged (no copy) for the usual
	// already-lower-case markup.
	lower := strings.ToLower(attr)
	for _, kw := range overlayHints {
		if strings.Contains(lower, kw) {
			return true
		}
	}
	return false
}
