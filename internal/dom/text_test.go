package dom

import (
	"testing"
)

func TestTextNormalization(t *testing.T) {
	doc := Parse("<div><p>Hello\n\t  world</p><p>3,99 €</p></div>")
	got := doc.Body().Text()
	want := "Hello world 3,99 €"
	if got != want {
		t.Fatalf("Text = %q, want %q", got, want)
	}
}

func TestTextSkipsScriptStyle(t *testing.T) {
	doc := Parse(`<div>visible<script>var hidden=1;</script><style>.x{}</style></div>`)
	if got := doc.Body().Text(); got != "visible" {
		t.Fatalf("Text = %q", got)
	}
}

func TestTextBlockBoundaries(t *testing.T) {
	doc := Parse(`<div>one</div><div>two</div><span>three</span><span>four</span>`)
	got := doc.Body().Text()
	// Blocks insert spaces; inline elements do not.
	if got != "one two threefour" {
		t.Fatalf("Text = %q", got)
	}
}

func TestDeepTextIncludesShadowAndFrames(t *testing.T) {
	doc := Parse(`<div id="host"><template shadowrootmode="open"><p>in shadow</p></template><p>in light</p></div>`)
	host := doc.ByID("host")
	frameDoc := Parse(`<body><p>in frame</p></body>`)
	iframe := NewElement("iframe", "src", "https://cmp.example/banner")
	iframe.FrameDoc = frameDoc
	host.AppendChild(iframe)

	got := host.DeepText()
	for _, want := range []string{"in light", "in shadow", "in frame"} {
		if !contains(got, want) {
			t.Errorf("DeepText = %q, missing %q", got, want)
		}
	}
	// Plain Text must contain only light DOM.
	if plain := host.Text(); contains(plain, "in shadow") || contains(plain, "in frame") {
		t.Fatalf("Text leaked pierced content: %q", plain)
	}
}

func contains(haystack, needle string) bool {
	return len(haystack) >= len(needle) && (func() bool {
		for i := 0; i+len(needle) <= len(haystack); i++ {
			if haystack[i:i+len(needle)] == needle {
				return true
			}
		}
		return false
	})()
}

func TestNormalizeSpace(t *testing.T) {
	cases := map[string]string{
		"  a  b  ":        "a b",
		"a b":             "a b",
		"\t\n x \r\n y  ": "x y",
		"":                "",
		"   ":             "",
		"solo":            "solo",
	}
	for in, want := range cases {
		if got := NormalizeSpace(in); got != want {
			t.Errorf("NormalizeSpace(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStyleProps(t *testing.T) {
	n := NewElement("div", "style", "position: fixed; Z-INDEX: 9999; bottom:0;; broken")
	props := n.StyleProps()
	if props["position"] != "fixed" {
		t.Fatalf("position = %q", props["position"])
	}
	if props["z-index"] != "9999" {
		t.Fatalf("z-index = %q", props["z-index"])
	}
	if _, ok := props["broken"]; ok {
		t.Fatal("malformed declaration kept")
	}
	if n.Style("POSITION") != "fixed" {
		t.Fatal("Style must be case-insensitive on key")
	}
}

func TestIsDisplayed(t *testing.T) {
	cases := []struct {
		html string
		want bool
	}{
		{`<div id="x">v</div>`, true},
		{`<div id="x" style="display:none">v</div>`, false},
		{`<div id="x" style="visibility:hidden">v</div>`, false},
		{`<div id="x" style="opacity:0">v</div>`, false},
		{`<div id="x" hidden>v</div>`, false},
		{`<div id="x" style="display:block">v</div>`, true},
	}
	for _, c := range cases {
		doc := Parse(c.html)
		if got := doc.ByID("x").IsDisplayed(); got != c.want {
			t.Errorf("%s: IsDisplayed = %v", c.html, got)
		}
	}
}

func TestIsVisibleClimbsAncestors(t *testing.T) {
	doc := Parse(`<div style="display:none"><p id="p">hidden by parent</p></div>`)
	if doc.ByID("p").IsVisible() {
		t.Fatal("child of display:none must be invisible")
	}
}

func TestIsVisibleClimbsOutOfShadow(t *testing.T) {
	doc := Parse(`<div id="host" style="display:none"><template shadowrootmode="open"><p id="sp">x</p></template></div>`)
	sp := doc.ByID("host").Shadow.Root.ByID("sp")
	if sp == nil {
		t.Fatal("shadow content missing")
	}
	if sp.IsVisible() {
		t.Fatal("shadow content of hidden host must be invisible")
	}
}

func TestIsOverlay(t *testing.T) {
	cases := []struct {
		html string
		want bool
	}{
		{`<div id="x" style="position:fixed;bottom:0">b</div>`, true},
		{`<div id="x" style="position:absolute;z-index:100">b</div>`, true},
		{`<div id="x" role="dialog">b</div>`, true},
		{`<div id="x" aria-modal="true">b</div>`, true},
		{`<div id="x" class="cookie-overlay">b</div>`, true},
		{`<div id="x" class="cmp-container">b</div>`, true},
		{`<div id="x" class="article">b</div>`, false},
		{`<div id="x" style="position:static">b</div>`, false},
	}
	for _, c := range cases {
		doc := Parse(c.html)
		if got := doc.ByID("x").IsOverlay(); got != c.want {
			t.Errorf("%s: IsOverlay = %v, want %v", c.html, got, c.want)
		}
	}
}

func TestFrameDocsIncludesShadowHostedFrames(t *testing.T) {
	doc := Parse(`<div id="host"><template shadowrootmode="open"><iframe id="f"></iframe></template></div>`)
	f := doc.ByID("host").Shadow.Root.ByID("f")
	f.FrameDoc = Parse(`<p>frame content</p>`)
	if n := len(doc.Root().FrameDocs()); n != 1 {
		t.Fatalf("FrameDocs = %d", n)
	}
}
