package dom

import (
	"strings"

	"cookiewalk/internal/htmlx"
)

// Render serializes n's subtree back to HTML. Declarative shadow roots
// are emitted as <template shadowrootmode=...> so a render/parse round
// trip preserves shadow structure. iframe content documents are NOT
// inlined (they are separate resources).
func Render(n *Node) string {
	var b strings.Builder
	renderNode(&b, n)
	return b.String()
}

func renderNode(b *strings.Builder, n *Node) {
	switch n.Type {
	case DocumentNode:
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			renderNode(b, c)
		}
	case DoctypeNode:
		b.WriteString("<!DOCTYPE ")
		b.WriteString(n.Data)
		b.WriteString(">")
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
	case TextNode:
		if n.Parent != nil && n.Parent.Type == ElementNode && htmlx.IsRawText(n.Parent.Tag) {
			b.WriteString(n.Data)
		} else {
			b.WriteString(htmlx.EscapeText(n.Data))
		}
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Key)
			if a.Val != "" {
				b.WriteString(`="`)
				b.WriteString(htmlx.EscapeAttr(a.Val))
				b.WriteByte('"')
			}
		}
		if htmlx.IsVoid(n.Tag) {
			b.WriteString(">")
			return
		}
		b.WriteByte('>')
		if n.Shadow != nil {
			b.WriteString(`<template shadowrootmode="`)
			b.WriteString(string(n.Shadow.Mode))
			b.WriteString(`">`)
			for c := n.Shadow.Root.FirstChild; c != nil; c = c.NextSibling {
				renderNode(b, c)
			}
			b.WriteString("</template>")
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			renderNode(b, c)
		}
		b.WriteString("</")
		b.WriteString(n.Tag)
		b.WriteByte('>')
	}
}

// OuterHTML is Render restricted to element nodes, matching the DOM
// property of the same name.
func (n *Node) OuterHTML() string { return Render(n) }

// InnerHTML serializes only n's children.
func (n *Node) InnerHTML() string {
	var b strings.Builder
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		renderNode(&b, c)
	}
	return b.String()
}
