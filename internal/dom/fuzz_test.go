package dom

import (
	"testing"
)

// FuzzParse exercises the tree builder with adversarial input. In
// normal test runs the seed corpus executes; `go test -fuzz=FuzzParse`
// explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<html><body><p>ok</p></body></html>",
		"<div><template shadowrootmode=\"open\"><b>x</b></template></div>",
		"</template></div><template shadowrootmode=closed>",
		"<p><p><p><li><tr><td></div></span>",
		"<script>while(1){}</script><iframe src=x>",
		"<<<>>><!---><!doctype  ><?php ?>",
		"<a href='unterminated",
		"<template shadowrootmode=open><template shadowrootmode=open>",
		"\x00\xff<div \x00 id=\"a\">",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		doc := Parse(input)
		if doc == nil {
			t.Fatal("nil document")
		}
		if doc.Body() == nil {
			t.Fatal("no body scaffold")
		}
		// Serialization must be total and re-parseable.
		out := Render(doc)
		doc2 := Parse(out)
		if doc2 == nil || doc2.Body() == nil {
			t.Fatal("re-parse failed")
		}
		// Render is a fixed point after one round trip (idempotent
		// serialization), which keeps snapshots stable.
		if again := Render(doc2); again != Render(Parse(again)) {
			t.Fatalf("render not idempotent for %q", input)
		}
	})
}

// FuzzSelectors ensures arbitrary selector sources never panic the
// engine, compiled or rejected.
func FuzzSelectors(f *testing.F) {
	for _, s := range []string{
		"div", "#a", ".b.c", "a[b=c]", "x > y z", "a,b,c", "*",
		"[href^='https://']", "div.banner#x[role=dialog]", ">", "[", "..",
	} {
		f.Add(s)
	}
	doc := Parse(selectorFixture)
	f.Fuzz(func(t *testing.T, src string) {
		sel, err := CompileSelector(src)
		if err != nil {
			return
		}
		_ = doc.QueryAll(sel)
	})
}
