package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestKnownSequence(t *testing.T) {
	// Golden values pin the SplitMix64 implementation. If these change,
	// every generated registry changes; that must never happen silently.
	r := New(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x6c45d188009454f}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("step %d: got %#x want %#x", i, got, w)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(7)
	f1 := r.Fork("alpha")
	f2 := r.Fork("beta")
	f1again := r.Fork("alpha")
	if f1.Uint64() != f1again.Uint64() {
		t.Fatal("same-label forks must match")
	}
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("different-label forks should differ")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) out of range: %d", v)
		}
		seen[v] = true
	}
	for v := 5; v <= 9; v++ {
		if !seen[v] {
			t.Errorf("value %d never produced", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %g too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %g too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %g too far from 1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(1, 0.5); v <= 0 {
			t.Fatalf("log-normal produced non-positive %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestWeightedIndex(t *testing.T) {
	r := New(23)
	counts := make([]int, 3)
	weights := []float64{1, 0, 3}
	for i := 0; i < 40000; i++ {
		counts[r.WeightedIndex(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio %g too far from 3", ratio)
	}
}

func TestWeightedIndexPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).WeightedIndex([]float64{0, -1})
}

func TestHash64Stability(t *testing.T) {
	// FNV-1a golden values.
	if got := Hash64(""); got != 14695981039346656037 {
		t.Fatalf("Hash64(\"\") = %d", got)
	}
	if Hash64("a") == Hash64("b") {
		t.Fatal("trivial collision")
	}
}

func TestSubSeedOrderMatters(t *testing.T) {
	if SubSeed(1, "a", "b") == SubSeed(1, "b", "a") {
		t.Fatal("SubSeed must be order-sensitive")
	}
	if SubSeed(1, "a") == SubSeed(2, "a") {
		t.Fatal("SubSeed must depend on base seed")
	}
}

func TestShuffleStringsAndPick(t *testing.T) {
	r := New(31)
	s := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), s...)
	r.ShuffleStrings(s)
	seen := map[string]bool{}
	for _, v := range s {
		seen[v] = true
	}
	for _, v := range orig {
		if !seen[v] {
			t.Fatalf("shuffle lost element %q", v)
		}
	}
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		counts[r.Pick(orig)]++
	}
	for _, v := range orig {
		if counts[v] == 0 {
			t.Fatalf("Pick never chose %q", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(37)
	n := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.25) {
			n++
		}
	}
	if n < 23500 || n > 26500 {
		t.Fatalf("Bool(0.25) hit %d/100000", n)
	}
}

func TestIntRangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).IntRange(5, 4)
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		v := New(seed).Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubSeedDeterministic(t *testing.T) {
	f := func(seed uint64, a, b string) bool {
		return SubSeed(seed, a, b) == SubSeed(seed, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
