// Package xrand provides a small, fully deterministic pseudo-random
// number generator used throughout cookiewalk.
//
// The generator is based on SplitMix64 (Steele, Lea, Flood 2014), which
// has a tiny state, passes BigCrush when used as a 64-bit generator, and
// — unlike math/rand — is guaranteed to produce identical sequences on
// every platform and Go release. Determinism is a hard requirement: the
// synthetic web registry, page contents, cookie jitter and toplists must
// be byte-identical across runs so that experiments are reproducible.
//
// xrand also exposes a stable string hash (Hash64, an FNV-1a variant)
// used to derive independent sub-seeds from (domain, vantage, repetition)
// tuples without any shared mutable state, which keeps concurrent crawls
// race-free by construction.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator.
// It is NOT safe for concurrent use; derive one per goroutine with Fork.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Fork derives an independent generator from r and a label. Two forks
// with different labels produce uncorrelated streams; forking does not
// advance r.
func (r *Rand) Fork(label string) *Rand {
	return New(mix(r.state ^ Hash64(label)))
}

// Uint64 returns the next value in the SplitMix64 sequence.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be faster,
	// but modulo bias is negligible for n << 2^64 and simpler to audit.
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform int in [lo, hi]. It panics if hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	// Avoid log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns a log-normally distributed value with the given
// location mu and scale sigma of the underlying normal distribution.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher-Yates).
func (r *Rand) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// ShuffleStrings shuffles s in place (Fisher-Yates).
func (r *Rand) ShuffleStrings(s []string) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Pick returns a uniformly chosen element of s. It panics on empty s.
func (r *Rand) Pick(s []string) string {
	return s[r.Intn(len(s))]
}

// WeightedIndex returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Non-positive weights are treated as zero.
// It panics if the total weight is zero.
func (r *Rand) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("xrand: WeightedIndex with zero total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Hash64 returns a stable 64-bit FNV-1a hash of s. The function is
// platform-independent and never changes between releases; persisted
// artefacts may rely on it.
func Hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Mix64 folds v into h with full 64-bit avalanche (the SplitMix64
// finalizer). It is the building block for incremental fingerprints:
// chains of Mix64 calls are order-sensitive and stable across
// platforms and releases, like Hash64.
func Mix64(h, v uint64) uint64 {
	return mix(h ^ v)
}

// SubSeed derives a stable seed from a base seed and any number of
// string labels. It is the canonical way to obtain per-entity
// generators: SubSeed(seed, domain, "cookies", "rep3").
func SubSeed(seed uint64, labels ...string) uint64 {
	h := mix(seed)
	for _, l := range labels {
		h = mix(h ^ Hash64(l))
	}
	return h
}

// JitterDuration maps (seed, call, attempt) to a delay in [base/2, base]
// — the decorrelated-jitter discipline shared by every retry loop in
// the tree (the fleet client's backoff and the browser's visit
// retries). Full determinism for tests, decorrelation across workers
// and calls for a fleet: peers that fail at the same instant spread
// their retries instead of returning as a synchronized thundering herd.
func JitterDuration[D ~int64](seed, call uint64, attempt int, base D) D {
	half := base / 2
	h := Mix64(Mix64(seed, call), uint64(attempt))
	return half + D(h%uint64(half+1))
}
