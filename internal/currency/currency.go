// Package currency implements the price-detection half of the paper's
// cookiewall classifier (§3) and the subscription-price normalization
// of §4.2.
//
// The paper checks banner text for "currency words and symbols" of the
// top-10 global currencies plus each vantage point's currency (EUR,
// USD, CHF, AUD, GBP, Rs, BRL, CNY, ZAR) combined with an amount in
// any order and spacing: "$3.99", "3.99$", "3.99 $", "3.99 $". For
// §4.2 prices are normalized to EUR per month using fixed conversion
// rates (the paper converted manually; our rate table is pinned so
// results are reproducible).
package currency

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Period is the billing period attached to a detected price.
type Period int

const (
	// PeriodUnknown means no period wording was found near the price;
	// normalization treats it as monthly (the dominant case on
	// cookiewalls).
	PeriodUnknown Period = iota
	// PeriodMonth is an explicit per-month price.
	PeriodMonth
	// PeriodYear is an explicit per-year price.
	PeriodYear
	// PeriodWeek is an explicit per-week price.
	PeriodWeek
)

// String implements fmt.Stringer.
func (p Period) String() string {
	switch p {
	case PeriodMonth:
		return "month"
	case PeriodYear:
		return "year"
	case PeriodWeek:
		return "week"
	}
	return "unknown"
}

// Price is one price found in text.
type Price struct {
	Amount float64
	// Code is the ISO 4217 currency code.
	Code   string
	Period Period
	// Raw is the matched substring, for debugging and reports.
	Raw string
}

// def describes one currency's detectable tokens. Longer tokens are
// matched first so "R$" wins over "R" and "A$" over "$".
type def struct {
	code   string
	tokens []string
}

// defs covers the paper's currency corpus plus SEK (Sweden is a
// vantage point) and Rs both with and without a dot.
var defs = []def{
	{"EUR", []string{"€", "euro", "eur"}},
	{"BRL", []string{"r$", "brl"}},
	{"AUD", []string{"a$", "aud"}},
	{"USD", []string{"$", "usd"}},
	{"GBP", []string{"£", "gbp"}},
	{"CHF", []string{"chf", "sfr"}},
	{"INR", []string{"₹", "rs.", "rs", "inr"}},
	{"CNY", []string{"¥", "cny", "rmb", "yuan"}},
	{"ZAR", []string{"zar", "r"}},
	{"SEK", []string{"sek", "kr"}},
}

// eurRates converts one unit of the currency to EUR. Pinned rates
// (mid-2023) keep every experiment reproducible; the paper's numbers
// (3 EUR ≈ 3.25 USD) anchor the EUR/USD rate.
var eurRates = map[string]float64{
	"EUR": 1.0,
	"USD": 0.923,
	"GBP": 1.16,
	"CHF": 1.02,
	"AUD": 0.61,
	"INR": 0.0112,
	"BRL": 0.19,
	"CNY": 0.13,
	"ZAR": 0.049,
	"SEK": 0.088,
}

// EURRate returns the pinned EUR conversion rate for an ISO code
// (0 for unknown codes).
func EURRate(code string) float64 { return eurRates[strings.ToUpper(code)] }

var (
	tokenToCode = map[string]string{}
	priceRe     *regexp.Regexp
)

func init() {
	var tokens []string
	for _, d := range defs {
		for _, t := range d.tokens {
			tokenToCode[t] = d.code
			tokens = append(tokens, regexp.QuoteMeta(t))
		}
	}
	// Sort-by-length is already implied by defs ordering for the
	// critical prefixes (r$ before $; rs before r), but alternation in
	// Go regexp is leftmost-first, so preserve defs order exactly.
	sym := "(?:" + strings.Join(tokens, "|") + ")"
	num := `\d{1,4}(?:[.,]\d{1,3})*`
	// Two orders: symbol-first and amount-first, with optional space.
	priceRe = regexp.MustCompile(`(?i)(?:(` + sym + `)\s?(` + num + `)|(` + num + `)\s?(` + sym + `))`)
}

// wordish tokens (letters only) must sit on word boundaries to avoid
// matching "kr" inside "krank", "r" inside "für", or "eur" inside
// "europe". The check is Unicode-aware: 'ü' counts as a letter.
func boundaryOK(text string, start, end int, token string) bool {
	alpha := true
	for i := 0; i < len(token); i++ {
		c := token[i]
		if !((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) && c != '.' {
			alpha = false
			break
		}
	}
	if !alpha {
		return true
	}
	if start > 0 {
		if r, _ := utf8.DecodeLastRuneInString(text[:start]); unicode.IsLetter(r) {
			return false
		}
	}
	if end < len(text) {
		if r, _ := utf8.DecodeRuneInString(text[end:]); unicode.IsLetter(r) {
			return false
		}
	}
	return true
}

// FindPrices extracts all currency-amount combinations from text.
// The text should be whitespace-normalized (dom.NormalizeSpace) so that
// non-breaking spaces do not break adjacency.
//
// Matching scans manually rather than with FindAll: a candidate that
// fails validation (word boundary, malformed amount) must only advance
// the scan by one byte, otherwise "für 2,99 €" would consume "r 2,99"
// as a rejected ZAR candidate and never see the Euro price.
func FindPrices(text string) []Price {
	// Every alternative of the price pattern contains an amount (\d+),
	// so text without a single digit can never match. Most consent
	// banners carry no digits at all, which makes this check the
	// difference between "no regexp work" and a full backtracking scan
	// on the crawl's hot path.
	if !containsDigit(text) {
		return nil
	}
	var out []Price
	offset := 0
	for offset < len(text) {
		m := priceRe.FindStringSubmatchIndex(text[offset:])
		if m == nil {
			break
		}
		for i := range m {
			if m[i] >= 0 {
				m[i] += offset
			}
		}
		var symStart, symEnd, numStart, numEnd int
		if m[2] >= 0 { // symbol-first alternative
			symStart, symEnd, numStart, numEnd = m[2], m[3], m[4], m[5]
		} else {
			numStart, numEnd, symStart, symEnd = m[6], m[7], m[8], m[9]
		}
		token := strings.ToLower(text[symStart:symEnd])
		code, tokenOK := tokenToCode[token]
		amount, amountOK := parseAmount(text[numStart:numEnd])
		if !tokenOK || !amountOK || !boundaryOK(text, symStart, symEnd, token) {
			offset = m[0] + 1 // rejected: re-scan from the next byte
			continue
		}
		out = append(out, Price{
			Amount: amount,
			Code:   code,
			Period: detectPeriod(text, m[0], m[1]),
			Raw:    text[m[0]:m[1]],
		})
		offset = m[1]
	}
	return out
}

func containsDigit(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			return true
		}
	}
	return false
}

// parseAmount handles both decimal conventions: "3.99", "3,99",
// "1.299,00" (German thousands), "1,299.00" (English thousands).
func parseAmount(s string) (float64, bool) {
	lastDot := strings.LastIndexByte(s, '.')
	lastComma := strings.LastIndexByte(s, ',')
	switch {
	case lastDot < 0 && lastComma < 0:
		// integer
	case lastDot >= 0 && lastComma >= 0:
		// Later separator is the decimal mark; strip the other.
		if lastDot > lastComma {
			s = strings.ReplaceAll(s, ",", "")
		} else {
			s = strings.ReplaceAll(s, ".", "")
			s = strings.Replace(s, ",", ".", 1)
		}
	case lastComma >= 0:
		// Single comma: decimal if followed by 1-2 digits, else thousands.
		if len(s)-lastComma-1 <= 2 {
			s = strings.Replace(s, ",", ".", 1)
		} else {
			s = strings.ReplaceAll(s, ",", "")
		}
	default:
		// Single dot: decimal if followed by 1-2 digits, else thousands.
		if len(s)-lastDot-1 > 2 {
			s = strings.ReplaceAll(s, ".", "")
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// periodWords maps lower-case period markers to a Period. The corpus
// covers the languages of the detected cookiewall sites: German,
// English, Italian, French, Spanish, Portuguese, Swedish, Dutch.
var periodWords = []struct {
	word   string
	period Period
}{
	{"/month", PeriodMonth}, {"per month", PeriodMonth}, {"monthly", PeriodMonth},
	{"/mo", PeriodMonth}, {"a month", PeriodMonth},
	{"pro monat", PeriodMonth}, {"monatlich", PeriodMonth}, {"im monat", PeriodMonth},
	{"/monat", PeriodMonth}, {"mtl", PeriodMonth},
	{"al mese", PeriodMonth}, {"mensile", PeriodMonth},
	{"par mois", PeriodMonth}, {"/mois", PeriodMonth},
	{"al mes", PeriodMonth}, {"/mes", PeriodMonth},
	{"por mês", PeriodMonth}, {"ao mês", PeriodMonth},
	{"per månad", PeriodMonth}, {"/månad", PeriodMonth}, {"i månaden", PeriodMonth},
	{"per maand", PeriodMonth}, {"/maand", PeriodMonth},

	{"/year", PeriodYear}, {"per year", PeriodYear}, {"yearly", PeriodYear},
	{"annually", PeriodYear}, {"a year", PeriodYear},
	{"pro jahr", PeriodYear}, {"jährlich", PeriodYear}, {"im jahr", PeriodYear},
	{"/jahr", PeriodYear},
	{"all'anno", PeriodYear}, {"annuo", PeriodYear},
	{"par an", PeriodYear}, {"/an", PeriodYear},
	{"al año", PeriodYear}, {"/año", PeriodYear},
	{"por ano", PeriodYear}, {"ao ano", PeriodYear},
	{"per år", PeriodYear}, {"/år", PeriodYear},
	{"per jaar", PeriodYear}, {"/jaar", PeriodYear},

	{"/week", PeriodWeek}, {"per week", PeriodWeek}, {"weekly", PeriodWeek},
	{"pro woche", PeriodWeek}, {"/woche", PeriodWeek},
}

// detectPeriod inspects a window around the matched price for period
// wording and returns the marker NEAREST to the price. Proximity
// matters when two prices share a sentence ("2,99 € pro Monat bzw.
// 29,99 € pro Jahr"): each price must bind to its own period.
func detectPeriod(text string, start, end int) Period {
	lo := start - 24
	if lo < 0 {
		lo = 0
	}
	hi := end + 32
	if hi > len(text) {
		hi = len(text)
	}
	window := strings.ToLower(text[lo:hi])
	priceLo, priceHi := start-lo, end-lo

	best := PeriodUnknown
	bestDist := 1 << 30
	for _, pw := range periodWords {
		from := 0
		for {
			idx := strings.Index(window[from:], pw.word)
			if idx < 0 {
				break
			}
			idx += from
			var dist int
			switch {
			case idx >= priceHi:
				dist = idx - priceHi
			case idx+len(pw.word) <= priceLo:
				dist = priceLo - (idx + len(pw.word))
			default:
				dist = 0
			}
			if dist < bestDist {
				bestDist = dist
				best = pw.period
			}
			from = idx + 1
		}
	}
	return best
}

// MonthlyEUR normalizes a price to EUR per month. Unknown periods are
// treated as monthly; unknown currencies yield 0.
func (p Price) MonthlyEUR() float64 {
	rate := EURRate(p.Code)
	if rate == 0 {
		return 0
	}
	eur := p.Amount * rate
	switch p.Period {
	case PeriodYear:
		return eur / 12
	case PeriodWeek:
		return eur * 52 / 12
	default:
		return eur
	}
}

// Bucket assigns a monthly EUR price to the Figure-2 integer buckets:
// bucket b holds prices in (b-1, b]. Prices above 10 land in bucket 10,
// negative or zero prices in bucket 0.
func Bucket(monthlyEUR float64) int {
	if monthlyEUR <= 0 || math.IsNaN(monthlyEUR) {
		return 0
	}
	if monthlyEUR > 10 {
		return 10 // clamp before Ceil: int conversion overflows on huge floats
	}
	return int(math.Ceil(monthlyEUR - 1e-9))
}

// CheapestMonthly returns the lowest positive normalized monthly price
// among the detected prices, or (0, false) when none is usable. This is
// the subscription price a user would actually compare.
func CheapestMonthly(prices []Price) (float64, bool) {
	best := math.Inf(1)
	found := false
	for _, p := range prices {
		if m := p.MonthlyEUR(); m > 0 && m < best {
			best = m
			found = true
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}
