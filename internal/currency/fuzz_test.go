package currency

import "testing"

// FuzzFindPrices hardens the price scanner against adversarial banner
// text: it must terminate, never panic, and only emit valid prices.
func FuzzFindPrices(f *testing.F) {
	for _, s := range []string{
		"3,99 € pro Monat",
		"$3.99 3.99$ 3.99 $ $ 3.99",
		"für 2,99 € bzw. 29,99 € pro Jahr",
		"R$9,90 A$5 Rs. 99 ¥25 34 kr",
		"€€€€ 1,2,3,4 .... $$",
		"1.299,00 € und 1,299.00 $",
		"€" + "9999999999999",
		"kr kr kr 5 kr",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		for _, p := range FindPrices(text) {
			if p.Amount < 0 {
				t.Fatalf("negative amount %g", p.Amount)
			}
			if EURRate(p.Code) == 0 {
				t.Fatalf("unknown code %q", p.Code)
			}
			if p.Raw == "" {
				t.Fatal("empty raw match")
			}
			if m := p.MonthlyEUR(); m < 0 {
				t.Fatalf("negative monthly %g", m)
			}
		}
	})
}
