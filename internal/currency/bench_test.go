package currency

import "testing"

func BenchmarkFindPrices(b *testing.B) {
	text := "Mit Werbung kostenlos weiterlesen oder werbefrei im Abo für nur 2,99 € pro Monat bzw. 29,99 € pro Jahr. Jetzt abonnieren und ohne Tracking lesen."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(FindPrices(text)) != 2 {
			b.Fatal("wrong count")
		}
	}
}

func BenchmarkFindPricesNoMatch(b *testing.B) {
	text := "We and our partners use cookies to personalise content and analyse our traffic on this website."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(FindPrices(text)) != 0 {
			b.Fatal("unexpected match")
		}
	}
}
