package currency

import (
	"math"
	"testing"
	"testing/quick"
)

func one(t *testing.T, text string) Price {
	t.Helper()
	ps := FindPrices(text)
	if len(ps) != 1 {
		t.Fatalf("FindPrices(%q) = %v, want exactly 1", text, ps)
	}
	return ps[0]
}

func TestPaperCombinationOrders(t *testing.T) {
	// The four combination shapes from §3 of the paper.
	for _, text := range []string{"$3.99", "3.99$", "3.99 $", "$ 3.99"} {
		p := one(t, text)
		if p.Code != "USD" || math.Abs(p.Amount-3.99) > 1e-9 {
			t.Errorf("%q -> %+v", text, p)
		}
	}
}

func TestEuroFormats(t *testing.T) {
	cases := []string{"€3,99", "3,99€", "3,99 €", "3.99 EUR", "nur 3,99 Euro im Monat"}
	for _, text := range cases {
		p := one(t, text)
		if p.Code != "EUR" || math.Abs(p.Amount-3.99) > 1e-9 {
			t.Errorf("%q -> %+v", text, p)
		}
	}
}

func TestCurrencyTokens(t *testing.T) {
	cases := map[string]string{
		"£2.50":    "GBP",
		"CHF 4.90": "CHF",
		"A$5.99":   "AUD",
		"R$9,90":   "BRL",
		"Rs. 99":   "INR",
		"Rs 99":    "INR",
		"₹199":     "INR",
		"¥25":      "CNY",
		"R49,99":   "ZAR",
		"39 kr":    "SEK",
		"ZAR 49":   "ZAR",
	}
	for text, code := range cases {
		p := one(t, text)
		if p.Code != code {
			t.Errorf("%q -> %s, want %s", text, p.Code, code)
		}
	}
}

func TestWordBoundaries(t *testing.T) {
	// "kr" inside a word, "r" inside words, "eur" inside "europe"
	// must not produce prices.
	for _, text := range []string{
		"krank 5 tage", "wir 7 zwerge", "europe 2020 report",
		"user 3 profile", "Vers 5 Kapitel",
	} {
		if ps := FindPrices(text); len(ps) != 0 {
			t.Errorf("FindPrices(%q) = %v, want none", text, ps)
		}
	}
}

func TestAmountParsing(t *testing.T) {
	cases := map[string]float64{
		"€3,99":     3.99,
		"€3.99":     3.99,
		"€1.299,00": 1299.0,
		"€1,299.00": 1299.0,
		"€1.299":    1299.0, // dot followed by 3 digits = thousands
		"€12":       12,
		"€0,50":     0.5,
	}
	for text, want := range cases {
		p := one(t, text)
		if math.Abs(p.Amount-want) > 1e-9 {
			t.Errorf("%q -> %g, want %g", text, p.Amount, want)
		}
	}
}

func TestPeriodDetection(t *testing.T) {
	cases := map[string]Period{
		"3,99 € pro Monat":         PeriodMonth,
		"3,99 € monatlich kündbar": PeriodMonth,
		"$4.33 per month":          PeriodMonth,
		"€36 pro Jahr":             PeriodYear,
		"£24 billed annually":      PeriodYear,
		"2,99 € al mese":           PeriodMonth,
		"9,99 € all'anno":          PeriodYear,
		"29 kr per månad":          PeriodMonth,
		"monatlich nur 2,99 €":     PeriodMonth,
		"€5 just like that":        PeriodUnknown,
		"1,00 € pro Woche":         PeriodWeek,
	}
	for text, want := range cases {
		p := one(t, text)
		if p.Period != want {
			t.Errorf("%q -> %v, want %v", text, p.Period, want)
		}
	}
}

func TestMonthlyEUR(t *testing.T) {
	cases := []struct {
		p    Price
		want float64
	}{
		{Price{Amount: 3, Code: "EUR", Period: PeriodMonth}, 3},
		{Price{Amount: 3, Code: "EUR", Period: PeriodUnknown}, 3},
		{Price{Amount: 36, Code: "EUR", Period: PeriodYear}, 3},
		{Price{Amount: 3, Code: "USD", Period: PeriodMonth}, 2.769},
		{Price{Amount: 12, Code: "EUR", Period: PeriodWeek}, 52},
		{Price{Amount: 5, Code: "XXX", Period: PeriodMonth}, 0},
	}
	for _, c := range cases {
		if got := c.p.MonthlyEUR(); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("%+v -> %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPaperAnchorRate(t *testing.T) {
	// §4.2: "3 Euro (3.25 USD)" — our pinned USD rate must reproduce
	// the paper's anchor within a cent.
	usd := 3.0 / EURRate("USD")
	if math.Abs(usd-3.25) > 0.01 {
		t.Fatalf("3 EUR = %.4f USD, want ~3.25", usd)
	}
}

func TestBucket(t *testing.T) {
	cases := map[float64]int{
		-1:   0,
		0:    0,
		0.5:  1,
		1.0:  1,
		1.01: 2,
		2.99: 3,
		3.0:  3,
		3.01: 4,
		9.5:  10,
		25:   10,
	}
	for in, want := range cases {
		if got := Bucket(in); got != want {
			t.Errorf("Bucket(%g) = %d, want %d", in, got, want)
		}
	}
}

func TestCheapestMonthly(t *testing.T) {
	ps := []Price{
		{Amount: 36, Code: "EUR", Period: PeriodYear}, // 3/mo
		{Amount: 4.99, Code: "EUR", Period: PeriodMonth},
		{Amount: 1, Code: "XXX"},
	}
	got, ok := CheapestMonthly(ps)
	if !ok || math.Abs(got-3) > 1e-9 {
		t.Fatalf("got %g, %v", got, ok)
	}
	if _, ok := CheapestMonthly(nil); ok {
		t.Fatal("empty input must not find a price")
	}
	if _, ok := CheapestMonthly([]Price{{Amount: 1, Code: "XXX"}}); ok {
		t.Fatal("unknown currency must not count")
	}
}

func TestMultiplePrices(t *testing.T) {
	text := "Mit Werbung kostenlos oder werbefrei für 2,99 € pro Monat bzw. 29,99 € pro Jahr."
	ps := FindPrices(text)
	if len(ps) != 2 {
		t.Fatalf("found %d prices: %v", len(ps), ps)
	}
	cheapest, _ := CheapestMonthly(ps)
	if math.Abs(cheapest-29.99/12) > 1e-9 {
		t.Fatalf("cheapest = %g", cheapest)
	}
}

func TestNoFalsePositivesOnPlainText(t *testing.T) {
	for _, text := range []string{
		"We use cookies to improve your experience.",
		"Wir verwenden Cookies und ähnliche Technologien.",
		"Accept all or manage settings.",
		"Published in 2023 by the team",
	} {
		if ps := FindPrices(text); len(ps) != 0 {
			t.Errorf("%q -> %v", text, ps)
		}
	}
}

func TestPeriodString(t *testing.T) {
	if PeriodMonth.String() != "month" || PeriodUnknown.String() != "unknown" ||
		PeriodYear.String() != "year" || PeriodWeek.String() != "week" {
		t.Fatal("Period.String wrong")
	}
}

// Property: FindPrices never panics and every returned price has a
// known currency code and non-negative amount.
func TestQuickFindPricesTotal(t *testing.T) {
	f := func(s string) bool {
		for _, p := range FindPrices(s) {
			if p.Amount < 0 || EURRate(p.Code) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Bucket is monotonic.
func TestQuickBucketMonotonic(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return Bucket(a) <= Bucket(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
