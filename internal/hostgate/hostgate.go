// Package hostgate enforces per-host politeness for a crawl: a
// token-bucket rate limiter (requests per second with a burst
// allowance) and a circuit breaker (open after N consecutive
// request-level failures, half-open single probe after a cooldown).
// One Gate is shared by every worker goroutine and every shard of a
// campaign, so the politeness cap holds across the whole process no
// matter how the crawl is parallelized.
//
// Protocol. The breaker is consulted once per LOGICAL request with
// Admit — which may claim the host's single half-open probe slot —
// while the rate limiter is consulted once per wire ATTEMPT with Wait
// (in-request retries pay politeness, not re-admission). An admitted
// request owes the gate exactly one terminal call on every exit path:
// Report when its final outcome is a verdict on transport health, or
// Abandon when it is not (ctx cancellation, deterministic web-content
// failures). A claimed probe slot that is never settled would deny the
// host forever, so the pairing is an invariant, not a courtesy.
//
// Determinism contract. The breaker counts only *final* request
// outcomes — a request that succeeds after in-request retries reports
// success — so on a transport whose every target eventually succeeds
// within the retry budget the breaker never accumulates a failure and
// never opens: the gate is provably inert and cannot perturb
// byte-identical golden runs. The rate limiter can only delay
// requests, never reorder or fail them (except via ctx cancellation),
// which the campaign layer's re-sequencing absorbs.
package hostgate

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Config tunes a Gate. Zero values disable the corresponding
// mechanism: PerHostRPS <= 0 means no rate limiting, BreakerThreshold
// <= 0 means no circuit breaking.
type Config struct {
	// PerHostRPS caps sustained request rate per host.
	PerHostRPS float64
	// Burst is the token-bucket depth (default 1 when rate limiting is
	// enabled): how many requests may go out back-to-back before the
	// sustained cap bites.
	Burst int
	// BreakerThreshold opens a host's breaker after this many
	// consecutive failed requests (final outcomes, post-retry).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker blocks a host before
	// admitting a half-open probe (default 30s).
	BreakerCooldown time.Duration

	// Now and Sleep are injectable for tests. Nil means real time.
	// Sleep must honor ctx and return its cancellation cause.
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error
}

// ErrCircuitOpen is returned (wrapped, with the host name) by Acquire
// while a host's breaker is open. It is definitive for the current
// request: retrying immediately cannot help, the visit should fail
// fast and be accounted as a visit error.
type circuitOpenError struct{ host string }

func (e *circuitOpenError) Error() string {
	return fmt.Sprintf("hostgate: circuit open for host %q", e.host)
}

// CircuitOpen marks the error structurally so callers can classify it
// without importing this package.
func (e *circuitOpenError) CircuitOpen() bool { return true }

// IsCircuitOpen reports whether err (or anything it wraps) is a
// breaker fail-fast from a Gate.
func IsCircuitOpen(err error) bool {
	type co interface{ CircuitOpen() bool }
	for err != nil {
		if c, ok := err.(co); ok && c.CircuitOpen() {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

type hostState struct {
	mu sync.Mutex

	// Token bucket: tokens at time last, continuously refilled at
	// PerHostRPS up to Burst.
	tokens float64
	last   time.Time

	// Breaker.
	state    breakerState
	failures int       // consecutive final failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

// Gate is the shared per-host admission controller. The zero Gate is
// not usable; construct with New.
type Gate struct {
	cfg   Config
	mu    sync.Mutex // guards hosts map only
	hosts map[string]*hostState

	trips   int64 // breaker open transitions (under mu)
	denials int64 // Acquire calls refused by an open breaker (under mu)
}

// New returns a Gate for cfg. A nil return means cfg enables nothing —
// callers can skip the gate entirely.
func New(cfg Config) *Gate {
	if cfg.PerHostRPS <= 0 && cfg.BreakerThreshold <= 0 {
		return nil
	}
	if cfg.PerHostRPS > 0 && cfg.Burst <= 0 {
		cfg.Burst = 1
	}
	if cfg.BreakerThreshold > 0 && cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	return &Gate{cfg: cfg, hosts: make(map[string]*hostState)}
}

func (g *Gate) now() time.Time {
	if g.cfg.Now != nil {
		return g.cfg.Now()
	}
	return time.Now()
}

func (g *Gate) sleep(ctx context.Context, d time.Duration) error {
	if g.cfg.Sleep != nil {
		return g.cfg.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

func (g *Gate) host(host string) *hostState {
	g.mu.Lock()
	defer g.mu.Unlock()
	h := g.hosts[host]
	if h == nil {
		h = &hostState{
			tokens: float64(g.cfg.Burst),
			last:   g.now(),
		}
		g.hosts[host] = h
	}
	return h
}

// Acquire is the single-shot composition of Admit and Wait for callers
// whose logical request is exactly one attempt: breaker admission, then
// a rate-limiter token. When the limiter wait fails after admission
// (ctx canceled), the admission is abandoned internally before the
// error returns — the caller holds nothing. A nil return means the
// caller was admitted and owes the gate one Report or Abandon.
func (g *Gate) Acquire(ctx context.Context, host string) error {
	if err := g.Admit(host); err != nil {
		return err
	}
	if err := g.Wait(ctx, host); err != nil {
		g.Abandon(host)
		return err
	}
	return nil
}

// Admit checks host's breaker and admits or refuses one logical
// request: it fails fast with a circuit-open error while the breaker is
// open (counting a denial), and admits a single half-open probe when
// the cooldown has elapsed. Call it once per logical request — the
// breaker judges final outcomes, and the probe slot belongs to the
// whole request including its in-request retries. An admitted caller
// MUST settle the admission with exactly one Report or Abandon on
// every exit path.
func (g *Gate) Admit(host string) error {
	if g == nil || g.cfg.BreakerThreshold <= 0 {
		return nil
	}
	h := g.host(host)
	h.mu.Lock()
	switch h.state {
	case breakerOpen:
		if g.now().Sub(h.openedAt) >= g.cfg.BreakerCooldown {
			// Cooldown elapsed: admit exactly one probe.
			h.state = breakerHalfOpen
			h.probing = true
		} else {
			h.mu.Unlock()
			g.mu.Lock()
			g.denials++
			g.mu.Unlock()
			return &circuitOpenError{host: host}
		}
	case breakerHalfOpen:
		if h.probing {
			// Another request owns the probe; fail fast rather than
			// pile onto a host we believe is down.
			h.mu.Unlock()
			g.mu.Lock()
			g.denials++
			g.mu.Unlock()
			return &circuitOpenError{host: host}
		}
		h.probing = true
	}
	h.mu.Unlock()
	return nil
}

// Wait blocks until host's token bucket admits one request attempt
// (honoring ctx). Call it once per attempt, including in-request
// retries — politeness applies to wire traffic, not to logical
// requests.
func (g *Gate) Wait(ctx context.Context, host string) error {
	if g == nil || g.cfg.PerHostRPS <= 0 {
		return nil
	}
	h := g.host(host)
	for {
		h.mu.Lock()
		now := g.now()
		elapsed := now.Sub(h.last).Seconds()
		if elapsed > 0 {
			h.tokens += elapsed * g.cfg.PerHostRPS
			if max := float64(g.cfg.Burst); h.tokens > max {
				h.tokens = max
			}
			h.last = now
		}
		if h.tokens >= 1 {
			h.tokens--
			h.mu.Unlock()
			return nil
		}
		wait := time.Duration((1 - h.tokens) / g.cfg.PerHostRPS * float64(time.Second))
		h.mu.Unlock()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		if err := g.sleep(ctx, wait); err != nil {
			return err
		}
	}
}

// Report records a request's FINAL outcome for host (after the
// browser's in-request retries resolved it) and returns true when this
// report tripped the breaker open. Success closes a half-open breaker
// and clears the failure streak; failure in half-open re-opens
// immediately; BreakerThreshold consecutive failures open a closed
// breaker.
func (g *Gate) Report(host string, failed bool) bool {
	if g == nil || g.cfg.BreakerThreshold <= 0 {
		return false
	}
	h := g.host(host)
	h.mu.Lock()
	tripped := false
	switch h.state {
	case breakerClosed:
		if failed {
			h.failures++
			if h.failures >= g.cfg.BreakerThreshold {
				h.state = breakerOpen
				h.openedAt = g.now()
				tripped = true
			}
		} else {
			h.failures = 0
		}
	case breakerHalfOpen:
		h.probing = false
		if failed {
			// The probe failed: back to open, restart the cooldown.
			h.state = breakerOpen
			h.openedAt = g.now()
			h.failures = g.cfg.BreakerThreshold
			tripped = true
		} else {
			h.state = breakerClosed
			h.failures = 0
		}
	case breakerOpen:
		// A straggler request admitted before the breaker opened is
		// still informative: success heals the host early.
		if !failed {
			h.state = breakerClosed
			h.failures = 0
		}
	}
	h.mu.Unlock()
	if tripped {
		g.mu.Lock()
		g.trips++
		g.mu.Unlock()
	}
	return tripped
}

// Abandon settles an admission without a verdict on transport health:
// it releases the half-open probe slot (when the host is mid-probe)
// and leaves failure streaks, breaker state and the cooldown clock
// untouched. Use it when an admitted request ends in ctx cancellation
// or a failure that is deterministic web content rather than weather —
// outcomes the breaker must not count, but whose claimed probe slot
// must not outlive the request.
func (g *Gate) Abandon(host string) {
	if g == nil || g.cfg.BreakerThreshold <= 0 {
		return
	}
	h := g.host(host)
	h.mu.Lock()
	if h.state == breakerHalfOpen {
		h.probing = false
	}
	h.mu.Unlock()
}

// Counters returns the running totals of breaker open transitions and
// fail-fast denials across all hosts.
func (g *Gate) Counters() (trips, denials int64) {
	if g == nil {
		return 0, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.trips, g.denials
}
