package hostgate

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock shared by Now and Sleep so
// rate-limiter tests never wait on real time.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := context.Cause(ctx); err != nil {
		return err
	}
	c.Advance(d)
	return nil
}

func TestNewNilWhenDisabled(t *testing.T) {
	if g := New(Config{}); g != nil {
		t.Fatalf("New with zero config = %v, want nil", g)
	}
	var g *Gate
	if err := g.Acquire(context.Background(), "a.example"); err != nil {
		t.Fatalf("nil gate Acquire: %v", err)
	}
	if g.Report("a.example", true) {
		t.Fatal("nil gate Report tripped")
	}
}

func TestRateLimiterPacesRequests(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{PerHostRPS: 10, Burst: 2, Now: clk.Now, Sleep: clk.Sleep})
	ctx := context.Background()
	start := clk.Now()
	// Burst of 2 goes through instantly; the next 8 must each wait for
	// a 100ms refill.
	for i := 0; i < 10; i++ {
		if err := g.Acquire(ctx, "a.example"); err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
	}
	elapsed := clk.Now().Sub(start)
	want := 800 * time.Millisecond
	if elapsed < want || elapsed > want+50*time.Millisecond {
		t.Fatalf("10 acquires at 10 rps burst 2 took %v, want ~%v", elapsed, want)
	}
	// A different host has its own bucket: no waiting.
	before := clk.Now()
	if err := g.Acquire(ctx, "b.example"); err != nil {
		t.Fatalf("Acquire other host: %v", err)
	}
	if d := clk.Now().Sub(before); d != 0 {
		t.Fatalf("fresh host waited %v, want 0", d)
	}
}

func TestRateLimiterHonorsContext(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{PerHostRPS: 1, Burst: 1, Now: clk.Now, Sleep: func(ctx context.Context, d time.Duration) error {
		return context.Canceled
	}})
	ctx := context.Background()
	if err := g.Acquire(ctx, "a.example"); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	if err := g.Acquire(ctx, "a.example"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire after cancel = %v, want context.Canceled", err)
	}
}

func TestBreakerOpensHalfOpensAndCloses(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{BreakerThreshold: 3, BreakerCooldown: time.Second, Now: clk.Now, Sleep: clk.Sleep})
	ctx := context.Background()
	host := "dead.example"

	// Two failures: still closed.
	for i := 0; i < 2; i++ {
		if err := g.Acquire(ctx, host); err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
		if g.Report(host, true) {
			t.Fatalf("Report %d tripped early", i)
		}
	}
	// Third consecutive failure trips it.
	if err := g.Acquire(ctx, host); err != nil {
		t.Fatalf("Acquire 3: %v", err)
	}
	if !g.Report(host, true) {
		t.Fatal("threshold-th failure did not trip the breaker")
	}
	// Open: fail fast.
	err := g.Acquire(ctx, host)
	if !IsCircuitOpen(err) {
		t.Fatalf("Acquire while open = %v, want circuit-open", err)
	}
	if IsCircuitOpen(fmt.Errorf("wrapped: %w", errors.New("other"))) {
		t.Fatal("IsCircuitOpen misclassified an unrelated error")
	}
	if !IsCircuitOpen(fmt.Errorf("visit: %w", err)) {
		t.Fatal("IsCircuitOpen failed to see through wrapping")
	}

	// After the cooldown a single probe is admitted; a second caller
	// still fails fast while the probe is in flight.
	clk.Advance(time.Second)
	if err := g.Acquire(ctx, host); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if err := g.Acquire(ctx, host); !IsCircuitOpen(err) {
		t.Fatalf("second caller during probe = %v, want circuit-open", err)
	}
	// Probe fails: straight back to open, cooldown restarted.
	if !g.Report(host, true) {
		t.Fatal("failed probe did not re-trip")
	}
	if err := g.Acquire(ctx, host); !IsCircuitOpen(err) {
		t.Fatalf("after failed probe = %v, want circuit-open", err)
	}

	// Next probe succeeds: breaker closes, traffic flows again.
	clk.Advance(time.Second)
	if err := g.Acquire(ctx, host); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	if g.Report(host, false) {
		t.Fatal("successful probe reported as trip")
	}
	if err := g.Acquire(ctx, host); err != nil {
		t.Fatalf("post-recovery Acquire: %v", err)
	}

	trips, denials := g.Counters()
	if trips != 2 {
		t.Fatalf("trips = %d, want 2", trips)
	}
	if denials < 3 {
		t.Fatalf("denials = %d, want >= 3", denials)
	}
}

// TestAbandonReleasesProbe: an admitted half-open probe whose request
// resolves without a health verdict (ctx canceled, deterministic web
// content error) must free the probe slot via Abandon — otherwise the
// host is denied forever.
func TestAbandonReleasesProbe(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{BreakerThreshold: 1, BreakerCooldown: time.Second, Now: clk.Now, Sleep: clk.Sleep})
	ctx := context.Background()
	host := "probe.example"

	if err := g.Acquire(ctx, host); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if !g.Report(host, true) {
		t.Fatal("threshold-1 failure did not trip")
	}
	clk.Advance(time.Second)
	if err := g.Acquire(ctx, host); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	// The probe's request dies without an outcome (say, its visit
	// deadline expired mid-flight): abandon, don't report.
	g.Abandon(host)
	// The slot is free again — the next caller becomes the probe
	// instead of being denied until the end of time.
	if err := g.Acquire(ctx, host); err != nil {
		t.Fatalf("probe slot leaked after Abandon: %v", err)
	}
	if g.Report(host, false) {
		t.Fatal("successful probe reported as trip")
	}
	if err := g.Acquire(ctx, host); err != nil {
		t.Fatalf("post-recovery Acquire: %v", err)
	}
	g.Report(host, false)
}

// TestAcquireReleasesProbeOnCanceledWait: when Acquire's rate-limiter
// wait fails AFTER breaker admission claimed the probe slot, Acquire
// must release the slot before returning — the caller holds nothing
// and will never call Report or Abandon.
func TestAcquireReleasesProbeOnCanceledWait(t *testing.T) {
	clk := newFakeClock()
	canceled := false
	g := New(Config{
		// A refill rate this slow guarantees the probe attempt must
		// sleep for a token (the burst token is spent up front).
		PerHostRPS:       0.001,
		Burst:            1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Second,
		Now:              clk.Now,
		Sleep: func(ctx context.Context, d time.Duration) error {
			if canceled {
				return context.Canceled
			}
			clk.Advance(d)
			return nil
		},
	})
	ctx := context.Background()
	host := "slow.example"

	if err := g.Acquire(ctx, host); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	g.Report(host, true) // trips (threshold 1)
	clk.Advance(time.Second)
	canceled = true
	// Admission claims the probe; the limiter wait then dies.
	if err := g.Acquire(ctx, host); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire with canceled wait = %v, want context.Canceled", err)
	}
	// The probe slot must have been released internally.
	if err := g.Admit(host); err != nil {
		t.Fatalf("probe slot leaked after canceled wait: %v", err)
	}
	g.Abandon(host)
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	g := New(Config{BreakerThreshold: 2})
	host := "flaky.example"
	g.Report(host, true)
	g.Report(host, false) // streak reset
	if g.Report(host, true) {
		t.Fatal("tripped without threshold consecutive failures")
	}
	if !g.Report(host, true) {
		t.Fatal("did not trip after threshold consecutive failures")
	}
}

// TestGateHammer drives one Gate from many goroutines across a few
// hosts with mixed outcomes — the -race gate for the shared mutable
// state (buckets, breakers, counters). Invariant checked at the end:
// every denial corresponds to a breaker that was open, and the gate
// never deadlocks.
func TestGateHammer(t *testing.T) {
	clk := newFakeClock()
	g := New(Config{
		PerHostRPS:       1000,
		Burst:            4,
		BreakerThreshold: 5,
		BreakerCooldown:  10 * time.Millisecond,
		Now:              clk.Now,
		Sleep:            clk.Sleep,
	})
	ctx := context.Background()
	hosts := []string{"a.example", "b.example", "c.example", "d.example"}
	var wg sync.WaitGroup
	var ok, denied atomic.Int64
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				host := hosts[(w+i)%len(hosts)]
				err := g.Acquire(ctx, host)
				if IsCircuitOpen(err) {
					denied.Add(1)
					continue
				}
				if err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				ok.Add(1)
				// host "d.example" always fails; the rest always succeed.
				g.Report(host, host == "d.example")
			}
		}(w)
	}
	wg.Wait()
	trips, denials := g.Counters()
	if ok.Load() == 0 {
		t.Fatal("no request ever admitted")
	}
	if trips == 0 {
		t.Fatal("always-failing host never tripped its breaker")
	}
	if denials != denied.Load() {
		t.Fatalf("gate counted %d denials, callers saw %d", denials, denied.Load())
	}
}
