package hostgate

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkGateContention measures the breaker-only admission cycle
// (Admit + Report, the per-request gate traffic of a resilient crawl)
// with every P hitting the gate at once across a realistic host
// spread. Run with -cpu 1,4: per-host state carries its own lock, so
// only the hosts-map lookup is shared and scaling should be close to
// linear.
func BenchmarkGateContention(b *testing.B) {
	g := New(Config{BreakerThreshold: 1 << 30, BreakerCooldown: time.Hour})
	const hosts = 1024
	names := make([]string, hosts)
	for i := range names {
		names[i] = fmt.Sprintf("site-%04d.example", i)
		g.host(names[i]) // pre-populate: steady state, no map growth
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h := names[i%hosts]
			if err := g.Admit(h); err != nil {
				b.Fatal(err)
			}
			g.Report(h, false)
			i++
		}
	})
}
