package htmlx

import (
	"strconv"
	"strings"
	"unicode/utf8"
)

// namedEntities maps entity names (without & and ;) to their replacement
// text. The table covers the references that occur in practice on cookie
// banners and consent dialogs: structural characters, typography,
// currency symbols (essential for price detection), and the Latin-1
// letters used by German, French, Italian, Spanish, Swedish and
// Portuguese banner texts.
var namedEntities = map[string]string{
	// Structural.
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	// Spaces and typography.
	"nbsp": " ", "ensp": " ", "emsp": " ", "thinsp": " ",
	"ndash": "–", "mdash": "—", "hellip": "…",
	"lsquo": "‘", "rsquo": "’", "ldquo": "“", "rdquo": "”",
	"laquo": "«", "raquo": "»", "bull": "•", "middot": "·",
	"shy": "­", "times": "×", "divide": "÷", "deg": "°",
	"plusmn": "±", "sect": "§", "para": "¶", "micro": "µ",
	// Currency — load-bearing for cookiewall price extraction.
	"euro": "€", "pound": "£", "yen": "¥", "cent": "¢",
	"curren": "¤", "dollar": "$",
	// Legal marks.
	"copy": "©", "reg": "®", "trade": "™",
	// German.
	"auml": "ä", "Auml": "Ä", "ouml": "ö", "Ouml": "Ö",
	"uuml": "ü", "Uuml": "Ü", "szlig": "ß",
	// French / Italian / Portuguese / Spanish.
	"agrave": "à", "Agrave": "À", "aacute": "á", "Aacute": "Á",
	"acirc": "â", "atilde": "ã", "eacute": "é", "Eacute": "É",
	"egrave": "è", "Egrave": "È", "ecirc": "ê", "euml": "ë",
	"iacute": "í", "igrave": "ì", "icirc": "î", "iuml": "ï",
	"oacute": "ó", "ograve": "ò", "ocirc": "ô", "otilde": "õ",
	"uacute": "ú", "ugrave": "ù", "ucirc": "û",
	"ccedil": "ç", "Ccedil": "Ç", "ntilde": "ñ", "Ntilde": "Ñ",
	// Swedish / Danish / Norwegian.
	"aring": "å", "Aring": "Å", "oslash": "ø", "Oslash": "Ø",
	"aelig": "æ", "AElig": "Æ",
}

// UnescapeEntities decodes HTML character references in s: named
// references (&euro;), decimal (&#8364;) and hexadecimal (&#x20AC;)
// numeric references. Unknown or malformed references are passed
// through verbatim, matching browser behaviour for text content.
func UnescapeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	s = s[amp:]
	for len(s) > 0 {
		if s[0] != '&' {
			next := strings.IndexByte(s, '&')
			if next < 0 {
				b.WriteString(s)
				break
			}
			b.WriteString(s[:next])
			s = s[next:]
			continue
		}
		repl, consumed := decodeEntity(s)
		if consumed == 0 {
			b.WriteByte('&')
			s = s[1:]
			continue
		}
		b.WriteString(repl)
		s = s[consumed:]
	}
	return b.String()
}

// decodeEntity decodes a single reference at the start of s (which must
// begin with '&'). It returns the replacement string and the number of
// input bytes consumed, or ("", 0) if s does not start a valid reference.
func decodeEntity(s string) (string, int) {
	if len(s) < 3 { // shortest is &x;
		return "", 0
	}
	if s[1] == '#' {
		return decodeNumericEntity(s)
	}
	// Named reference: letters/digits up to ';' (max name length 32).
	end := -1
	for i := 1; i < len(s) && i < 34; i++ {
		c := s[i]
		switch {
		case c == ';':
			end = i
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			continue
		default:
			// Invalid character before ';' — not a reference.
		}
		break
	}
	if end < 0 {
		return "", 0
	}
	if repl, ok := namedEntities[s[1:end]]; ok {
		return repl, end + 1
	}
	return "", 0
}

func decodeNumericEntity(s string) (string, int) {
	i := 2
	base := 10
	if i < len(s) && (s[i] == 'x' || s[i] == 'X') {
		base = 16
		i++
	}
	start := i
	for i < len(s) && isDigitInBase(s[i], base) {
		i++
	}
	if i == start || i >= len(s) || s[i] != ';' {
		return "", 0
	}
	n, err := strconv.ParseInt(s[start:i], base, 32)
	if err != nil || n <= 0 || n > utf8.MaxRune {
		return "�", i + 1
	}
	r := rune(n)
	if !utf8.ValidRune(r) {
		r = '�'
	}
	return string(r), i + 1
}

func isDigitInBase(c byte, base int) bool {
	if c >= '0' && c <= '9' {
		return true
	}
	if base == 16 {
		return (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
	}
	return false
}
