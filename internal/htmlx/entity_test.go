package htmlx

import "testing"

func TestNamedEntityTable(t *testing.T) {
	// Currency entities are load-bearing for price detection.
	cases := map[string]string{
		"&euro;":   "€",
		"&pound;":  "£",
		"&yen;":    "¥",
		"&cent;":   "¢",
		"&szlig;":  "ß",
		"&auml;":   "ä",
		"&eacute;": "é",
		"&aring;":  "å",
		"&copy;":   "©",
		"&mdash;":  "—",
		"&hellip;": "…",
	}
	for in, want := range cases {
		if got := UnescapeEntities(in); got != want {
			t.Errorf("UnescapeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEntityEdges(t *testing.T) {
	cases := map[string]string{
		"&":  "&",  // lone ampersand
		"&x": "&x", // too short
		"&;": "&;", // empty name
		"&verylongentitynamethatexceedsthelimitxyz;": "&verylongentitynamethatexceedsthelimitxyz;",
		"a&amp":       "a&amp",  // unterminated named
		"&amp;&amp;":  "&&",     // consecutive
		"pre&euro;in": "pre€in", // embedded
		"&EURO;":      "&EURO;", // names are case-sensitive
		"&Auml;":      "Ä",      // except where both cases are real entities
	}
	for in, want := range cases {
		if got := UnescapeEntities(in); got != want {
			t.Errorf("UnescapeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTokenTypeStrings(t *testing.T) {
	want := map[TokenType]string{
		ErrorToken: "Error", TextToken: "Text", StartTagToken: "StartTag",
		EndTagToken: "EndTag", SelfClosingTagToken: "SelfClosingTag",
		CommentToken: "Comment", DoctypeToken: "Doctype",
		TokenType(99): "Unknown",
	}
	for tt, s := range want {
		if tt.String() != s {
			t.Errorf("%d.String() = %q, want %q", tt, tt.String(), s)
		}
	}
}

func TestUnterminatedConstructs(t *testing.T) {
	// Every unterminated construct must terminate the tokenizer cleanly.
	inputs := []string{
		"<!-- never closed",
		"<!DOCTYPE html",
		"<?php never closed",
		"</div",
		"<div attr='open",
		"<div attr=\"open",
	}
	for _, in := range inputs {
		z := NewTokenizer(in)
		for i := 0; i < 50; i++ {
			if z.Next().Type == ErrorToken {
				break
			}
			if i == 49 {
				t.Errorf("tokenizer stuck on %q", in)
			}
		}
	}
}

func TestIndexFoldASCII(t *testing.T) {
	cases := []struct {
		s, pattern string
		want       int
	}{
		{"</script>", "</script", 0},
		{"x</SCRIPT>", "</script", 1},
		{"abc</ScRiPt foo>", "</script", 3},
		{"no closer here", "</script", -1},
		{"", "</script", -1},
		// Invalid UTF-8 must not shift the index (the old whole-string
		// Unicode lowering re-encoded bad bytes and misaligned offsets).
		{"\xa7\xff</TITLE>", "</title", 2},
		{"ÄÖÜ</style>", "</style", 6},
		{"", "", 0},
	}
	for _, c := range cases {
		if got := indexFoldASCII(c.s, c.pattern); got != c.want {
			t.Errorf("indexFoldASCII(%q, %q) = %d, want %d", c.s, c.pattern, got, c.want)
		}
	}
}
