package htmlx

import "strings"

// Tokenizer splits HTML input into Tokens. It operates on a string and
// never mutates it; Tokens reference freshly built strings, so input
// buffers may be reused by callers.
//
// Usage follows the x/net/html pattern:
//
//	z := htmlx.NewTokenizer(page)
//	for {
//		tok := z.Next()
//		if tok.Type == htmlx.ErrorToken {
//			break
//		}
//		...
//	}
type Tokenizer struct {
	input string
	pos   int
	// rawTag, when non-empty, is the element name whose raw-text content
	// we are inside (script, style, title, textarea, xmp).
	rawTag string
	// attrs is this input's attribute arena: every start tag's
	// attributes are appended here and sliced out with a capped
	// three-index slice, so one page's attributes cost one or two chunk
	// allocations instead of one per tag. The arena escapes into the
	// emitted tokens (and from there into DOM nodes), so Reset drops it
	// instead of truncating it.
	attrs []Attribute
}

// NewTokenizer returns a Tokenizer reading from input.
func NewTokenizer(input string) *Tokenizer {
	return &Tokenizer{input: input}
}

// Reset re-targets the tokenizer at a new input, allowing pooled reuse
// of the struct. Previously emitted tokens stay valid: the attribute
// arena is abandoned to them, never overwritten.
func (z *Tokenizer) Reset(input string) {
	z.input = input
	z.pos = 0
	z.rawTag = ""
	z.attrs = nil
}

// Next returns the next token. At end of input it returns a token with
// Type ErrorToken forever after.
func (z *Tokenizer) Next() Token {
	if z.pos >= len(z.input) {
		return Token{Type: ErrorToken}
	}
	if z.rawTag != "" {
		return z.nextRawText()
	}
	if z.input[z.pos] == '<' {
		return z.nextTag()
	}
	return z.nextText()
}

// nextText consumes character data up to the next plausible tag-open.
func (z *Tokenizer) nextText() Token {
	start := z.pos
	for z.pos < len(z.input) {
		i := strings.IndexByte(z.input[z.pos:], '<')
		if i < 0 {
			z.pos = len(z.input)
			break
		}
		z.pos += i
		// Only '<' followed by a letter, '/', '!' or '?' opens markup;
		// a bare '<' (e.g. "1 < 2") is text, per the HTML5 tokenizer.
		if z.pos+1 < len(z.input) && isTagStarter(z.input[z.pos+1]) {
			break
		}
		z.pos++
	}
	return Token{Type: TextToken, Data: UnescapeEntities(z.input[start:z.pos])}
}

func isTagStarter(c byte) bool {
	return c == '/' || c == '!' || c == '?' || isASCIILetter(c)
}

func isASCIILetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// nextRawText consumes content inside a raw-text element until the
// matching end tag, emitting the content first and the end tag on the
// following call.
func (z *Tokenizer) nextRawText() Token {
	closer := "</" + z.rawTag
	// Byte-wise ASCII case folding (not strings.ToLower): Unicode
	// lowering re-encodes invalid UTF-8 bytes as U+FFFD and CHANGES
	// STRING LENGTH, which would misalign idx against the raw input
	// (found by fuzzing). indexFoldASCII also avoids copying the whole
	// remaining input just to search it.
	idx := indexFoldASCII(z.input[z.pos:], closer)
	if idx < 0 {
		// Unterminated raw text: everything remaining is content.
		data := z.input[z.pos:]
		z.pos = len(z.input)
		z.rawTag = ""
		return Token{Type: TextToken, Data: data}
	}
	if idx > 0 {
		data := z.input[z.pos : z.pos+idx]
		z.pos += idx
		// Leave rawTag set; the next call re-finds the closer at idx 0.
		return Token{Type: TextToken, Data: data}
	}
	// At the end tag itself.
	name := z.rawTag
	z.rawTag = ""
	// Consume "</name" plus anything to '>'.
	z.pos += len(closer)
	if gt := strings.IndexByte(z.input[z.pos:], '>'); gt >= 0 {
		z.pos += gt + 1
	} else {
		z.pos = len(z.input)
	}
	return Token{Type: EndTagToken, Data: name}
}

// nextTag handles everything that begins with '<'.
func (z *Tokenizer) nextTag() Token {
	// Invariant: z.input[z.pos] == '<'.
	if z.pos+1 >= len(z.input) {
		z.pos = len(z.input)
		return Token{Type: TextToken, Data: "<"}
	}
	switch c := z.input[z.pos+1]; {
	case c == '!':
		return z.nextMarkupDeclaration()
	case c == '?':
		return z.nextBogusComment(z.pos + 2)
	case c == '/':
		return z.nextEndTag()
	case isASCIILetter(c):
		return z.nextStartTag()
	default:
		// Lone '<': emit as text (handled by nextText normally, but be
		// defensive if called directly).
		z.pos++
		return Token{Type: TextToken, Data: "<"}
	}
}

func (z *Tokenizer) nextMarkupDeclaration() Token {
	rest := z.input[z.pos+2:]
	switch {
	case strings.HasPrefix(rest, "--"):
		return z.nextComment()
	case len(rest) >= 7 && strings.EqualFold(rest[:7], "doctype"):
		end := strings.IndexByte(rest, '>')
		if end < 0 {
			z.pos = len(z.input)
			return Token{Type: DoctypeToken, Data: strings.TrimSpace(rest[7:])}
		}
		tok := Token{Type: DoctypeToken, Data: strings.TrimSpace(rest[7:end])}
		z.pos += 2 + end + 1
		return tok
	default:
		return z.nextBogusComment(z.pos + 2)
	}
}

func (z *Tokenizer) nextComment() Token {
	// z.pos is at "<!--".
	start := z.pos + 4
	end := strings.Index(z.input[start:], "-->")
	if end < 0 {
		tok := Token{Type: CommentToken, Data: z.input[start:]}
		z.pos = len(z.input)
		return tok
	}
	tok := Token{Type: CommentToken, Data: z.input[start : start+end]}
	z.pos = start + end + 3
	return tok
}

// nextBogusComment consumes from start to the next '>' as a comment,
// matching the spec's bogus-comment state (<? ... > and <!x ... >).
func (z *Tokenizer) nextBogusComment(start int) Token {
	end := strings.IndexByte(z.input[start:], '>')
	if end < 0 {
		tok := Token{Type: CommentToken, Data: z.input[start:]}
		z.pos = len(z.input)
		return tok
	}
	tok := Token{Type: CommentToken, Data: z.input[start : start+end]}
	z.pos = start + end + 1
	return tok
}

func (z *Tokenizer) nextEndTag() Token {
	// z.pos at "</".
	i := z.pos + 2
	nameStart := i
	for i < len(z.input) && isNameByte(z.input[i]) {
		i++
	}
	name := internName(strings.ToLower(z.input[nameStart:i]))
	// Skip to '>'.
	for i < len(z.input) && z.input[i] != '>' {
		i++
	}
	if i < len(z.input) {
		i++
	}
	z.pos = i
	if name == "" {
		// "</>" — the spec drops it entirely; emit nothing by recursing.
		return z.Next()
	}
	return Token{Type: EndTagToken, Data: name}
}

func (z *Tokenizer) nextStartTag() Token {
	i := z.pos + 1
	nameStart := i
	for i < len(z.input) && isNameByte(z.input[i]) {
		i++
	}
	name := internName(strings.ToLower(z.input[nameStart:i]))
	tok := Token{Type: StartTagToken, Data: name}
	arenaStart := len(z.attrs)
	// Attribute loop.
	for {
		i = skipSpace(z.input, i)
		if i >= len(z.input) {
			break
		}
		if z.input[i] == '>' {
			i++
			break
		}
		if z.input[i] == '/' {
			// Possible self-closing.
			if i+1 < len(z.input) && z.input[i+1] == '>' {
				tok.Type = SelfClosingTagToken
				i += 2
				break
			}
			i++ // stray '/': skip
			continue
		}
		var attr Attribute
		attr, i = parseAttribute(z.input, i)
		if attr.Key != "" && !hasAttr(z.attrs[arenaStart:], attr.Key) {
			if z.attrs == nil {
				z.attrs = make([]Attribute, 0, 32)
			}
			z.attrs = append(z.attrs, attr)
		}
	}
	if end := len(z.attrs); end > arenaStart {
		tok.Attr = z.attrs[arenaStart:end:end]
	}
	z.pos = i
	if tok.Type == StartTagToken && IsRawText(name) {
		z.rawTag = name
	}
	return tok
}

// internedNames canonicalizes the tag and attribute names the farm and
// real-world consent markup use constantly. Interning matters in two
// ways: lower-cased names of already-lower-case input are substrings of
// the page body, and swapping them for the canonical constant both
// releases the page string for collection and lets downstream string
// comparisons hit the pointer-equality fast path.
var internedNames = func() map[string]string {
	m := make(map[string]string, 64)
	for _, n := range []string{
		"a", "article", "aside", "body", "br", "button", "div", "footer",
		"form", "h1", "h2", "h3", "head", "header", "html", "iframe",
		"img", "input", "li", "link", "main", "meta", "nav", "noscript",
		"ol", "option", "p", "script", "section", "select", "span",
		"style", "table", "td", "template", "th", "title", "tr", "ul",
		// attribute names
		"action", "alt", "aria-modal", "async", "charset", "class",
		"data-action", "data-cw-if-blocked", "data-cw-inject",
		"data-scroll-lock-if-blocked", "data-target", "height", "hidden",
		"href", "id", "lang", "method", "name", "rel", "role",
		"shadowroot", "shadowrootmode", "src", "type", "width",
	} {
		m[n] = n
	}
	return m
}()

// internName returns the canonical instance of a (lower-case) tag or
// attribute name when it is a common one.
func internName(s string) string {
	if c, ok := internedNames[s]; ok {
		return c
	}
	return s
}

func hasAttr(attrs []Attribute, key string) bool {
	for _, a := range attrs {
		if a.Key == key {
			return true
		}
	}
	return false
}

// parseAttribute parses one attribute starting at s[i] and returns it
// with the new position. The key is lower-cased and the value entity-
// decoded.
func parseAttribute(s string, i int) (Attribute, int) {
	keyStart := i
	for i < len(s) && !isAttrKeyEnd(s[i]) {
		i++
	}
	key := internName(strings.ToLower(s[keyStart:i]))
	i = skipSpace(s, i)
	if i >= len(s) || s[i] != '=' {
		return Attribute{Key: key}, i
	}
	i = skipSpace(s, i+1)
	if i >= len(s) {
		return Attribute{Key: key}, i
	}
	switch q := s[i]; q {
	case '"', '\'':
		i++
		valStart := i
		for i < len(s) && s[i] != q {
			i++
		}
		val := UnescapeEntities(s[valStart:i])
		if i < len(s) {
			i++ // closing quote
		}
		return Attribute{Key: key, Val: val}, i
	default:
		valStart := i
		for i < len(s) && !isSpaceByte(s[i]) && s[i] != '>' {
			i++
		}
		return Attribute{Key: key, Val: UnescapeEntities(s[valStart:i])}, i
	}
}

func isAttrKeyEnd(c byte) bool {
	return isSpaceByte(c) || c == '=' || c == '>' || c == '/'
}

func isNameByte(c byte) bool {
	return isASCIILetter(c) || (c >= '0' && c <= '9') || c == '-' || c == '_' || c == ':'
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

// indexFoldASCII returns the index of the first occurrence of pattern
// in s under byte-wise ASCII case folding, or -1. pattern must already
// be lower-case ASCII (raw-text closers are). Folding byte-by-byte
// preserves length even for invalid UTF-8 input.
func indexFoldASCII(s, pattern string) int {
	if len(pattern) == 0 {
		return 0
	}
	c0 := pattern[0]
	u0 := c0
	if c0 >= 'a' && c0 <= 'z' {
		u0 = c0 - 32
	}
	for i := 0; i+len(pattern) <= len(s); i++ {
		if s[i] != c0 && s[i] != u0 {
			continue
		}
		j := 1
		for ; j < len(pattern); j++ {
			c := s[i+j]
			if c >= 'A' && c <= 'Z' {
				c += 32
			}
			if c != pattern[j] {
				break
			}
		}
		if j == len(pattern) {
			return i
		}
	}
	return -1
}

func skipSpace(s string, i int) int {
	for i < len(s) && isSpaceByte(s[i]) {
		i++
	}
	return i
}
