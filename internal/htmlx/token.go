// Package htmlx implements an HTML5-flavoured tokenizer, character
// reference (entity) decoding, and text escaping.
//
// The Go standard library has no HTML parser, and this project is
// stdlib-only, so htmlx provides the lexical layer from scratch. It is
// deliberately a pragmatic subset of the WHATWG tokenizer: it handles
// everything real-world cookie banners and our synthetic web farm emit
// — nested elements, single/double/unquoted attributes, comments,
// doctypes, raw-text elements (script, style, title, textarea), named
// and numeric character references — while skipping exotica such as
// CDATA in foreign content and most parse-error recovery subtleties.
//
// Tree construction on top of these tokens lives in package dom,
// mirroring the tokenizer/tree-builder split of the WHATWG spec.
package htmlx

import "strings"

// TokenType identifies the kind of a Token.
type TokenType int

const (
	// ErrorToken signals end of input (or an unrecoverable state).
	ErrorToken TokenType = iota
	// TextToken is a run of character data (entities already decoded).
	TextToken
	// StartTagToken is <name attr...>.
	StartTagToken
	// EndTagToken is </name>.
	EndTagToken
	// SelfClosingTagToken is <name attr.../>.
	SelfClosingTagToken
	// CommentToken is <!--data-->.
	CommentToken
	// DoctypeToken is <!DOCTYPE data>.
	DoctypeToken
)

// String returns a human-readable name for the token type.
func (t TokenType) String() string {
	switch t {
	case ErrorToken:
		return "Error"
	case TextToken:
		return "Text"
	case StartTagToken:
		return "StartTag"
	case EndTagToken:
		return "EndTag"
	case SelfClosingTagToken:
		return "SelfClosingTag"
	case CommentToken:
		return "Comment"
	case DoctypeToken:
		return "Doctype"
	}
	return "Unknown"
}

// Attribute is a single key="value" pair on a tag. Keys are
// lower-cased; values have character references decoded.
type Attribute struct {
	Key string
	Val string
}

// Token is one lexical unit of HTML input.
type Token struct {
	Type TokenType
	// Data is the tag name (lower-cased) for tag tokens, the text for
	// TextToken, and the raw content for comments and doctypes.
	Data string
	Attr []Attribute
}

// AttrVal returns the value of the named attribute and whether it exists.
func (t *Token) AttrVal(key string) (string, bool) {
	for _, a := range t.Attr {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// voidElements are elements that never have end tags or children.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// IsVoid reports whether the element never takes children (e.g. <img>).
func IsVoid(name string) bool { return voidElements[name] }

// rawTextElements switch the tokenizer into raw-text mode: their content
// is not parsed for tags until the matching close tag.
var rawTextElements = map[string]bool{
	"script": true, "style": true, "textarea": true, "title": true,
	"xmp": true, "iframe-srcdoc": true,
}

// IsRawText reports whether the element's content is raw text.
func IsRawText(name string) bool { return rawTextElements[name] }

// EscapeText escapes s for use as HTML text content.
func EscapeText(s string) string {
	return textEscaper.Replace(s)
}

// EscapeAttr escapes s for use inside a double-quoted attribute value.
func EscapeAttr(s string) string {
	return attrEscaper.Replace(s)
}

var (
	textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	attrEscaper = strings.NewReplacer("&", "&amp;", `"`, "&quot;", "<", "&lt;")
)
