package htmlx

import (
	"strings"
	"testing"
	"testing/quick"
)

// collect tokenizes the whole input.
func collect(t *testing.T, input string) []Token {
	t.Helper()
	z := NewTokenizer(input)
	var out []Token
	for i := 0; i < 10000; i++ {
		tok := z.Next()
		if tok.Type == ErrorToken {
			return out
		}
		out = append(out, tok)
	}
	t.Fatal("tokenizer did not terminate")
	return nil
}

func TestSimpleElement(t *testing.T) {
	toks := collect(t, `<p>Hello</p>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].Type != StartTagToken || toks[0].Data != "p" {
		t.Fatalf("bad start: %+v", toks[0])
	}
	if toks[1].Type != TextToken || toks[1].Data != "Hello" {
		t.Fatalf("bad text: %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "p" {
		t.Fatalf("bad end: %+v", toks[2])
	}
}

func TestAttributes(t *testing.T) {
	toks := collect(t, `<div id="main" class='banner overlay' data-x=42 hidden>`)
	if len(toks) != 1 {
		t.Fatalf("got %d tokens", len(toks))
	}
	want := []Attribute{
		{"id", "main"}, {"class", "banner overlay"}, {"data-x", "42"}, {"hidden", ""},
	}
	got := toks[0].Attr
	if len(got) != len(want) {
		t.Fatalf("attrs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("attr %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDuplicateAttributeKeepsFirst(t *testing.T) {
	toks := collect(t, `<a href="first" href="second">`)
	v, ok := toks[0].AttrVal("href")
	if !ok || v != "first" {
		t.Fatalf("href = %q, %v", v, ok)
	}
}

func TestUppercaseNormalized(t *testing.T) {
	toks := collect(t, `<DIV CLASS="X">text</DIV>`)
	if toks[0].Data != "div" || toks[0].Attr[0].Key != "class" {
		t.Fatalf("not lower-cased: %+v", toks[0])
	}
	if toks[0].Attr[0].Val != "X" {
		t.Fatal("attribute values must keep case")
	}
	if toks[2].Data != "div" {
		t.Fatalf("end tag not lower-cased: %+v", toks[2])
	}
}

func TestSelfClosing(t *testing.T) {
	toks := collect(t, `<br/><img src="x.png" />`)
	if toks[0].Type != SelfClosingTagToken || toks[0].Data != "br" {
		t.Fatalf("bad br: %+v", toks[0])
	}
	if toks[1].Type != SelfClosingTagToken || toks[1].Data != "img" {
		t.Fatalf("bad img: %+v", toks[1])
	}
	if v, _ := toks[1].AttrVal("src"); v != "x.png" {
		t.Fatalf("src = %q", v)
	}
}

func TestComment(t *testing.T) {
	toks := collect(t, `a<!-- hidden -->b`)
	if len(toks) != 3 || toks[1].Type != CommentToken || toks[1].Data != " hidden " {
		t.Fatalf("tokens: %+v", toks)
	}
}

func TestCommentWithTagsInside(t *testing.T) {
	toks := collect(t, `<!-- <div>not a tag</div> -->x`)
	if toks[0].Type != CommentToken || !strings.Contains(toks[0].Data, "<div>") {
		t.Fatalf("comment mangled: %+v", toks[0])
	}
	if toks[1].Type != TextToken || toks[1].Data != "x" {
		t.Fatalf("text after comment: %+v", toks[1])
	}
}

func TestDoctype(t *testing.T) {
	toks := collect(t, `<!DOCTYPE html><html></html>`)
	if toks[0].Type != DoctypeToken || toks[0].Data != "html" {
		t.Fatalf("doctype: %+v", toks[0])
	}
}

func TestScriptRawText(t *testing.T) {
	toks := collect(t, `<script>if (a < b) { x = "<div>"; }</script><p>after</p>`)
	if toks[0].Type != StartTagToken || toks[0].Data != "script" {
		t.Fatalf("start: %+v", toks[0])
	}
	if toks[1].Type != TextToken || !strings.Contains(toks[1].Data, `x = "<div>"`) {
		t.Fatalf("script content parsed as markup: %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "script" {
		t.Fatalf("end: %+v", toks[2])
	}
	if toks[3].Data != "p" {
		t.Fatalf("resume after script: %+v", toks[3])
	}
}

func TestStyleRawText(t *testing.T) {
	toks := collect(t, `<style>.x > .y { color: red }</style>`)
	if toks[1].Type != TextToken || !strings.Contains(toks[1].Data, "> .y") {
		t.Fatalf("style content: %+v", toks[1])
	}
}

func TestScriptCaseInsensitiveClose(t *testing.T) {
	toks := collect(t, `<script>var a=1;</SCRIPT>done`)
	if toks[2].Type != EndTagToken || toks[2].Data != "script" {
		t.Fatalf("end: %+v", toks)
	}
	if toks[3].Data != "done" {
		t.Fatalf("after: %+v", toks[3])
	}
}

func TestUnterminatedScript(t *testing.T) {
	toks := collect(t, `<script>never closed`)
	if len(toks) != 2 || toks[1].Type != TextToken || toks[1].Data != "never closed" {
		t.Fatalf("tokens: %+v", toks)
	}
}

func TestRawTextInvalidUTF8(t *testing.T) {
	// Regression (found by fuzzing): invalid UTF-8 inside raw text must
	// not misalign the end-tag search — strings.ToLower re-encodes
	// broken bytes and changes lengths.
	input := "<sCript>\xa7\xa7\xa7\xa7\xa7\xa7\xa7\xa7\xd5\xd9\xdf\xd2"
	toks := collect(t, input)
	if len(toks) != 2 || toks[1].Type != TextToken {
		t.Fatalf("tokens: %+v", toks)
	}
	if toks[1].Data != input[len("<sCript>"):] {
		t.Fatalf("raw content mangled: %q", toks[1].Data)
	}
	// And a closer after broken bytes is still found at the right spot.
	toks = collect(t, "<script>\xa7\xff CODE</script><p>after</p>")
	if toks[2].Type != EndTagToken || toks[2].Data != "script" {
		t.Fatalf("end tag lost: %+v", toks)
	}
	if toks[3].Data != "p" {
		t.Fatalf("resume failed: %+v", toks[3])
	}
}

func TestEntitiesInText(t *testing.T) {
	toks := collect(t, `<span>3.99&nbsp;&euro; &amp; more &#8364; &#x20AC;</span>`)
	// &nbsp; decodes to U+00A0, not an ASCII space; downstream text
	// normalization folds it. This matters for price matching.
	want := "3.99 € & more € €"
	if toks[1].Data != want {
		t.Fatalf("text = %q, want %q", toks[1].Data, want)
	}
}

func TestEntitiesInAttr(t *testing.T) {
	toks := collect(t, `<a title="Tom &amp; Jerry &euro;5">x</a>`)
	if v, _ := toks[0].AttrVal("title"); v != "Tom & Jerry €5" {
		t.Fatalf("title = %q", v)
	}
}

func TestUnknownEntityPassthrough(t *testing.T) {
	toks := collect(t, `<p>&notanentity; &broken</p>`)
	if toks[1].Data != "&notanentity; &broken" {
		t.Fatalf("text = %q", toks[1].Data)
	}
}

func TestBareLessThanIsText(t *testing.T) {
	toks := collect(t, `<p>1 < 2 and 3 <4? no</p>`)
	// "<4" is not a tag (digit), so it stays text.
	joined := ""
	for _, tok := range toks {
		if tok.Type == TextToken {
			joined += tok.Data
		}
	}
	if !strings.Contains(joined, "1 < 2") || !strings.Contains(joined, "<4? no") {
		t.Fatalf("joined text = %q", joined)
	}
}

func TestBogusComment(t *testing.T) {
	toks := collect(t, `<?xml version="1.0"?><p>x</p>`)
	if toks[0].Type != CommentToken {
		t.Fatalf("expected bogus comment, got %+v", toks[0])
	}
	if toks[1].Data != "p" {
		t.Fatalf("resume: %+v", toks[1])
	}
}

func TestEmptyEndTagDropped(t *testing.T) {
	toks := collect(t, `a</>b`)
	var text string
	for _, tok := range toks {
		if tok.Type == TextToken {
			text += tok.Data
		}
	}
	if text != "ab" {
		t.Fatalf("text = %q", text)
	}
}

func TestUnterminatedTagAtEOF(t *testing.T) {
	toks := collect(t, `<div class="x`)
	if len(toks) != 1 || toks[0].Type != StartTagToken || toks[0].Data != "div" {
		t.Fatalf("tokens: %+v", toks)
	}
}

func TestTrailingLessThan(t *testing.T) {
	toks := collect(t, `abc<`)
	var text string
	for _, tok := range toks {
		text += tok.Data
	}
	if text != "abc<" {
		t.Fatalf("text = %q", text)
	}
}

func TestNewlinesInAttributes(t *testing.T) {
	toks := collect(t, "<div\n  id=\"a\"\n  class=\"b\"\n>x</div>")
	if len(toks[0].Attr) != 2 {
		t.Fatalf("attrs: %v", toks[0].Attr)
	}
}

func TestStrayslashInTag(t *testing.T) {
	toks := collect(t, `<div / id="x">y</div>`)
	if toks[0].Type != StartTagToken {
		t.Fatalf("type: %v", toks[0].Type)
	}
	if v, ok := toks[0].AttrVal("id"); !ok || v != "x" {
		t.Fatalf("id = %q %v", v, ok)
	}
}

func TestIsVoidAndRawText(t *testing.T) {
	if !IsVoid("br") || IsVoid("div") {
		t.Fatal("IsVoid wrong")
	}
	if !IsRawText("script") || IsRawText("span") {
		t.Fatal("IsRawText wrong")
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	cases := []string{"a<b", `x&y`, `"quoted"`, "3,99 €", "plain"}
	for _, c := range cases {
		if got := UnescapeEntities(EscapeText(c)); got != c {
			t.Errorf("text round-trip %q -> %q", c, got)
		}
	}
}

func TestEscapeAttrRoundTrip(t *testing.T) {
	cases := []string{`val"ue`, "a&b<c", "€3.99"}
	for _, c := range cases {
		if got := UnescapeEntities(EscapeAttr(c)); got != c {
			t.Errorf("attr round-trip %q -> %q", c, got)
		}
	}
}

func TestNumericEntityEdgeCases(t *testing.T) {
	cases := map[string]string{
		"&#0;":        "�", // NUL is replaced
		"&#65;":       "A",
		"&#x41;":      "A",
		"&#xD800;":    "�",    // surrogate
		"&#99999999;": "�",    // out of range
		"&#;":         "&#;",  // malformed passes through
		"&#x;":        "&#x;", // malformed passes through
		"&#12":        "&#12", // unterminated
	}
	for in, want := range cases {
		if got := UnescapeEntities(in); got != want {
			t.Errorf("UnescapeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: the tokenizer terminates and never panics on arbitrary input.
func TestQuickTokenizerTotal(t *testing.T) {
	f := func(s string) bool {
		z := NewTokenizer(s)
		for i := 0; i < len(s)+10; i++ {
			if z.Next().Type == ErrorToken {
				return true
			}
		}
		return false // did not terminate within bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: escaping then unescaping is the identity for any string.
func TestQuickEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return UnescapeEntities(EscapeText(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTokenizeBannerPage(b *testing.B) {
	page := strings.Repeat(`<div class="banner"><p>We value your privacy &euro;3.99</p><button id="accept">Accept all</button></div>`, 50)
	b.ReportAllocs()
	b.SetBytes(int64(len(page)))
	for i := 0; i < b.N; i++ {
		z := NewTokenizer(page)
		for z.Next().Type != ErrorToken {
		}
	}
}
