package adblock

import "testing"

func BenchmarkShouldBlock(b *testing.B) {
	e := NewEngine(BaseList(), AnnoyancesList())
	urls := []string{
		"https://cdn.contentpass.example/cw.js?site=a.de",
		"https://cdnassets.example/app.js",
		"https://sync.trackpix7.example/p.gif?n=3",
		"https://www.spiegel.de/article/1",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.ShouldBlock("spiegel.de", urls[i%len(urls)])
	}
}

func BenchmarkNewEngine(b *testing.B) {
	base, annoy := BaseList(), AnnoyancesList()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewEngine(base, annoy)
	}
}
