package adblock

import (
	"strings"

	"cookiewalk/internal/trackdb"
)

// BaseList returns the default-on filter list (the Easylist role):
// network rules for every blocklisted tracker domain. uBlock Origin
// ships with such lists enabled, so tracker subresources are blocked
// whenever the extension is active.
func BaseList() string {
	var b strings.Builder
	b.WriteString("! cookiewalk base list — tracker domains (Easylist role)\n")
	for _, d := range trackdb.Domains() {
		b.WriteString("||")
		b.WriteString(d)
		b.WriteString("^\n")
	}
	return b.String()
}

// AnnoyancesList returns the curated cookie-banner/cookiewall list that
// the paper enables for §4.5 ("we enable the by default disabled
// Annoyances filter lists to block cookiewalls"). It targets the
// third-party delivery domains of Subscription and Consent Management
// Platforms — the same shape as the real-world rules the paper quotes
// (*cdn.opencmp.net/*, *consentmanager.net/*, *usercentrics.eu/*).
//
// Cookiewalls served from the site's own domain, or from lesser-known
// hosts absent from this list, evade blocking — producing the paper's
// 70% block rate.
func AnnoyancesList() string {
	return `! cookiewalk annoyances list — cookie banners & cookiewalls
! Subscription Management Platform CDNs
||contentpass.example^
||cdn.contentpass.example^
||freechoice.example^
||cdn.freechoice.example^
! Consent Management Platforms that also deliver cookiewalls
*cdn.opencmp.example/*
*consentmango.example/*
*usercentrade.example/*
! Stand-alone cookiewall kits
||cwkit.example^
||purabo.example^
||adfreepass.example^
! Cosmetic fallback for locally-served overlays that reuse stock markup
##div.cw-smp-overlay
`
}
