// Package adblock implements an Adblock-Plus-syntax filter engine and
// the curated filter lists used for the §4.5 bypass experiment, where
// uBlock Origin with the (normally disabled) Annoyances lists blocks
// 70% of cookiewalls.
//
// Supported rule grammar (the subset that Easylist-style cookiewall
// rules actually use — including the patterns quoted in the paper's
// footnote 7, e.g. *cdn.opencmp.net/*, *consentmanager.net/*):
//
//	||domain^          — domain anchor: the URL's host is domain or a
//	                     subdomain of it
//	*substring*        — wildcard substring match on the full URL
//	plain/path         — substring match
//	@@||domain^        — exception rule (never block)
//	! comment          — ignored
//	##selector         — cosmetic (element-hiding) rule; collected but
//	                     applied by the browser, not the network layer
//	domain##selector   — cosmetic rule restricted to one site
//
// The engine answers ShouldBlock(pageHost, resourceURL) for network
// requests and CosmeticSelectors(pageHost) for element hiding.
package adblock

import (
	"strings"

	"cookiewalk/internal/dom"
	"cookiewalk/internal/publicsuffix"
	"cookiewalk/internal/xrand"
)

// Rule is one parsed network rule.
type Rule struct {
	Raw string
	// exception marks @@ rules.
	exception bool
	// domainAnchor is set for ||domain^ rules.
	domainAnchor string
	// substrings are the ordered fragments of a wildcard pattern; a URL
	// matches when all fragments occur left-to-right.
	substrings []string
}

// CosmeticRule hides elements matching Selector on matching sites.
type CosmeticRule struct {
	Raw string
	// Domain restricts the rule to one registrable domain; empty means
	// all sites.
	Domain   string
	Selector string
	// compiled is the parsed selector, built once at engine
	// construction; nil when the selector does not compile (such rules
	// are skipped at apply time, like real blockers do).
	compiled *dom.Selector
}

// Engine evaluates filter rules. Build one with NewEngine; it is
// immutable afterwards and safe for concurrent use.
type Engine struct {
	block      []Rule
	exceptions []Rule
	cosmetic   []CosmeticRule
	// globalCosmetics is the precompiled selector list of the
	// unscoped cosmetic rules, in rule order — the no-allocation answer
	// for the (overwhelmingly common) hosts with no scoped rules.
	globalCosmetics []*dom.Selector
	// hasScopedCosmetics records whether any rule is domain-scoped.
	hasScopedCosmetics bool
	// fp is the content hash of the engine's lists, computed once at
	// construction (see Fingerprint).
	fp uint64
}

// NewEngine parses filter-list text (one rule per line) into an engine.
// Unparseable lines are skipped, like real ad blockers do.
func NewEngine(lists ...string) *Engine {
	e := &Engine{fp: xrand.Hash64("adblock.Engine")}
	for _, list := range lists {
		e.fp = xrand.Mix64(e.fp, xrand.Hash64(list))
		for _, line := range strings.Split(list, "\n") {
			e.addLine(strings.TrimSpace(line))
		}
	}
	return e
}

// Fingerprint returns a stable content hash of the engine's filter
// lists (order-sensitive, computed once at construction). Two engines
// built from identical list text share a fingerprint even across
// separate NewEngine calls — which lets page-analysis memoization key
// on blocker CONFIGURATION rather than engine identity.
func (e *Engine) Fingerprint() uint64 { return e.fp }

func (e *Engine) addLine(line string) {
	if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "[") {
		return
	}
	// Cosmetic rules.
	if idx := strings.Index(line, "##"); idx >= 0 {
		cr := CosmeticRule{
			Raw:      line,
			Domain:   strings.ToLower(strings.TrimSpace(line[:idx])),
			Selector: strings.TrimSpace(line[idx+2:]),
		}
		// Compile once here instead of on every page load.
		cr.compiled, _ = dom.CompileSelector(cr.Selector)
		e.cosmetic = append(e.cosmetic, cr)
		if cr.Domain == "" {
			if cr.compiled != nil {
				e.globalCosmetics = append(e.globalCosmetics, cr.compiled)
			}
		} else {
			e.hasScopedCosmetics = true
		}
		return
	}
	rule := Rule{Raw: line}
	body := line
	if strings.HasPrefix(body, "@@") {
		rule.exception = true
		body = body[2:]
	}
	// Strip option suffix ($third-party etc.) — we block regardless of
	// options, which is conservative and matches how the cookiewall
	// rules behave in practice.
	if idx := strings.LastIndex(body, "$"); idx > 0 {
		body = body[:idx]
	}
	if strings.HasPrefix(body, "||") {
		d := strings.TrimPrefix(body, "||")
		d = strings.TrimSuffix(d, "^")
		d = strings.TrimSuffix(d, "/")
		if d == "" {
			return
		}
		if strings.ContainsAny(d, "/*") {
			// ||domain/path anchors degrade to substring matching:
			// close enough for the path-scoped exception rules in use.
			rule.substrings = splitWildcards(d)
		} else {
			rule.domainAnchor = strings.ToLower(d)
		}
	} else {
		frags := splitWildcards(body)
		if len(frags) == 0 {
			return
		}
		rule.substrings = frags
	}
	if rule.exception {
		e.exceptions = append(e.exceptions, rule)
	} else {
		e.block = append(e.block, rule)
	}
}

func splitWildcards(pattern string) []string {
	var frags []string
	for _, f := range strings.Split(pattern, "*") {
		if f != "" {
			frags = append(frags, strings.ToLower(f))
		}
	}
	return frags
}

// matches reports whether the rule matches the resource URL (lowercase).
func (r *Rule) matches(host, url string) bool {
	if r.domainAnchor != "" {
		return host == r.domainAnchor || strings.HasSuffix(host, "."+r.domainAnchor)
	}
	pos := 0
	for _, frag := range r.substrings {
		idx := strings.Index(url[pos:], frag)
		if idx < 0 {
			return false
		}
		pos += idx + len(frag)
	}
	return true
}

// ShouldBlock reports whether a request from a page on pageHost to
// resourceURL must be blocked. Exception rules override block rules.
func (e *Engine) ShouldBlock(pageHost, resourceURL string) bool {
	url := strings.ToLower(resourceURL)
	host := hostOf(url)
	blocked := false
	for i := range e.block {
		if e.block[i].matches(host, url) {
			blocked = true
			break
		}
	}
	if !blocked {
		return false
	}
	for i := range e.exceptions {
		if e.exceptions[i].matches(host, url) {
			return false
		}
	}
	return true
}

// CosmeticSelectors returns the element-hiding selectors that apply on
// pageHost: global rules plus rules scoped to the page's registrable
// domain.
func (e *Engine) CosmeticSelectors(pageHost string) []string {
	site, _ := publicsuffix.ETLDPlusOne(pageHost)
	host := strings.ToLower(pageHost)
	var out []string
	for _, c := range e.cosmetic {
		if c.Domain == "" || c.Domain == host || c.Domain == site {
			out = append(out, c.Selector)
		}
	}
	return out
}

// CompiledCosmetics returns the precompiled element-hiding selectors
// that apply on pageHost, in rule order — the same rules
// CosmeticSelectors reports, minus any whose selector does not
// compile. Hosts without scoped rules share one precompiled slice;
// callers must not mutate the result.
func (e *Engine) CompiledCosmetics(pageHost string) []*dom.Selector {
	if !e.hasScopedCosmetics {
		return e.globalCosmetics
	}
	site, _ := publicsuffix.ETLDPlusOne(pageHost)
	host := strings.ToLower(pageHost)
	scoped := false
	for i := range e.cosmetic {
		if d := e.cosmetic[i].Domain; d != "" && (d == host || d == site) {
			scoped = true
			break
		}
	}
	if !scoped {
		return e.globalCosmetics
	}
	out := make([]*dom.Selector, 0, len(e.globalCosmetics)+4)
	for i := range e.cosmetic {
		c := &e.cosmetic[i]
		if c.compiled == nil {
			continue
		}
		if c.Domain == "" || c.Domain == host || c.Domain == site {
			out = append(out, c.compiled)
		}
	}
	return out
}

// RuleCount returns (block, exception, cosmetic) rule counts, for
// diagnostics.
func (e *Engine) RuleCount() (int, int, int) {
	return len(e.block), len(e.exceptions), len(e.cosmetic)
}

func hostOf(url string) string {
	s := url
	if idx := strings.Index(s, "://"); idx >= 0 {
		s = s[idx+3:]
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '/', '?', '#', ':':
			return s[:i]
		}
	}
	return s
}
