package adblock

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDomainAnchorRule(t *testing.T) {
	e := NewEngine("||cdn.contentpass.example^")
	if !e.ShouldBlock("spiegel.de", "https://cdn.contentpass.example/cw.js") {
		t.Fatal("exact domain not blocked")
	}
	if !e.ShouldBlock("spiegel.de", "https://eu.cdn.contentpass.example/cw.js") {
		t.Fatal("subdomain not blocked")
	}
	if e.ShouldBlock("spiegel.de", "https://notcdn.contentpass.example.evil.de/x") {
		t.Fatal("suffix-similar host blocked")
	}
	if e.ShouldBlock("spiegel.de", "https://contentpass.example/cw.js") {
		t.Fatal("parent domain wrongly blocked by subdomain anchor")
	}
}

func TestWildcardRule(t *testing.T) {
	// The exact pattern shape quoted in the paper's footnote 7.
	e := NewEngine("*cdn.opencmp.example/*")
	if !e.ShouldBlock("a.de", "https://cdn.opencmp.example/banner.js") {
		t.Fatal("wildcard rule failed")
	}
	if e.ShouldBlock("a.de", "https://cdn.opencmp.example") {
		t.Fatal("no trailing path should not match the /-anchored pattern")
	}
	if !e.ShouldBlock("a.de", "http://x.cdn.opencmp.example/y/z?q=1") {
		t.Fatal("wildcard with subdomain and query failed")
	}
}

func TestPlainSubstringRule(t *testing.T) {
	e := NewEngine("/cookiewall-loader.")
	if !e.ShouldBlock("a.de", "https://host.example/static/cookiewall-loader.js") {
		t.Fatal("substring rule failed")
	}
}

func TestOrderedWildcardFragments(t *testing.T) {
	e := NewEngine("*banner*loader*")
	if !e.ShouldBlock("a.de", "https://x.example/banner/v2/loader.js") {
		t.Fatal("ordered fragments should match")
	}
	if e.ShouldBlock("a.de", "https://x.example/loader/v2/banner.js") {
		t.Fatal("fragments out of order must not match")
	}
}

func TestExceptionRule(t *testing.T) {
	e := NewEngine("||ads.example^\n@@||ads.example/acceptable^")
	if !e.ShouldBlock("a.de", "https://ads.example/bad.js") {
		t.Fatal("block rule inactive")
	}
	if e.ShouldBlock("a.de", "https://ads.example/acceptable/ok.js") {
		t.Fatal("exception not honoured")
	}
}

func TestCommentsAndJunkSkipped(t *testing.T) {
	e := NewEngine("! comment\n[Adblock Plus 2.0]\n\n||real.example^\n*\n||^")
	b, x, c := e.RuleCount()
	if b != 1 || x != 0 || c != 0 {
		t.Fatalf("counts = %d %d %d", b, x, c)
	}
}

func TestOptionSuffixStripped(t *testing.T) {
	e := NewEngine("||tracker.example^$third-party,script")
	if !e.ShouldBlock("a.de", "https://tracker.example/t.js") {
		t.Fatal("rule with options not applied")
	}
}

func TestCosmeticRules(t *testing.T) {
	e := NewEngine("##div.cw-overlay\nspiegel.de##.paywall")
	all := e.CosmeticSelectors("www.zeit.de")
	if len(all) != 1 || all[0] != "div.cw-overlay" {
		t.Fatalf("global cosmetic = %v", all)
	}
	sp := e.CosmeticSelectors("www.spiegel.de")
	if len(sp) != 2 {
		t.Fatalf("scoped cosmetic = %v", sp)
	}
}

func TestCaseInsensitive(t *testing.T) {
	e := NewEngine("||CDN.Contentpass.Example^")
	if !e.ShouldBlock("a.de", "HTTPS://CDN.CONTENTPASS.EXAMPLE/CW.JS") {
		t.Fatal("matching must be case-insensitive")
	}
}

func TestBaseListBlocksAllTrackers(t *testing.T) {
	e := NewEngine(BaseList())
	for _, d := range []string{"trackpix1.example", "adsync2.example", "doubleclick.net"} {
		if !e.ShouldBlock("site.de", "https://sync."+d+"/p.gif") {
			t.Errorf("base list does not block %s", d)
		}
	}
	if e.ShouldBlock("site.de", "https://cdnassets.example/app.js") {
		t.Fatal("base list blocks benign CDN")
	}
}

func TestAnnoyancesListBlocksSMPs(t *testing.T) {
	e := NewEngine(AnnoyancesList())
	blocked := []string{
		"https://cdn.contentpass.example/cw.js",
		"https://cdn.freechoice.example/wall.js",
		"https://cdn.opencmp.example/banner.js",
		"https://cwkit.example/kit.js",
	}
	for _, u := range blocked {
		if !e.ShouldBlock("site.de", u) {
			t.Errorf("annoyances list does not block %s", u)
		}
	}
	// Lesser-known hosts evade (paper §4.5).
	if e.ShouldBlock("site.de", "https://nichewall.example/cw.js") {
		t.Fatal("unlisted host wrongly blocked")
	}
	// Without annoyances, SMP CDNs are not blocked (default uBlock).
	base := NewEngine(BaseList())
	if base.ShouldBlock("site.de", "https://cdn.contentpass.example/cw.js") {
		t.Fatal("base list must not cover SMP CDNs")
	}
}

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"https://a.b.example/path?q=1": "a.b.example",
		"http://x.de":                  "x.de",
		"x.de/path":                    "x.de",
		"https://h.example:8443/p":     "h.example",
	}
	for in, want := range cases {
		if got := hostOf(strings.ToLower(in)); got != want {
			t.Errorf("hostOf(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: the engine never panics and ShouldBlock is deterministic.
func TestQuickEngineTotal(t *testing.T) {
	e := NewEngine(BaseList(), AnnoyancesList())
	f := func(host, url string) bool {
		return e.ShouldBlock(host, url) == e.ShouldBlock(host, url)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary filter text never crashes the parser.
func TestQuickParserTotal(t *testing.T) {
	f := func(list string) bool {
		e := NewEngine(list)
		return e != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
