package campaign

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeRecords journals the given (index, err, value) triples into one
// shard file and closes it.
func writeRecords(t *testing.T, path string, recs []struct {
	index int
	err   string
	value string
}) {
	t.Helper()
	jw, err := openJournal(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := jw.append(r.index, r.err, []byte(r.value)); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.close(); err != nil {
		t.Fatal(err)
	}
}

func sampleRecords(n int) []struct {
	index int
	err   string
	value string
} {
	recs := make([]struct {
		index int
		err   string
		value string
	}, n)
	for i := range recs {
		recs[i].index = i
		recs[i].value = fmt.Sprintf("value-%d", i)
		if i%5 == 3 {
			recs[i].err = fmt.Sprintf("visit %d: unreachable", i)
		}
	}
	return recs
}

// TestJournalRoundTrip: append → scan reproduces every record exactly.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0000.cwj")
	recs := sampleRecords(20)
	writeRecords(t, path, recs)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []struct {
		index int
		rec   journalRecord
	}
	n, valid := scanJournal(data, func(index int, rec journalRecord) {
		got = append(got, struct {
			index int
			rec   journalRecord
		}{index, rec})
	})
	if n != len(recs) || valid != len(data) {
		t.Fatalf("scan: %d records, %d/%d bytes valid", n, valid, len(data))
	}
	for i, g := range got {
		want := recs[i]
		if g.index != want.index || g.rec.errStr != want.err || string(g.rec.value) != want.value {
			t.Fatalf("record %d: got (%d, %q, %q), want (%d, %q, %q)",
				i, g.index, g.rec.errStr, g.rec.value, want.index, want.err, want.value)
		}
	}
}

// TestJournalTruncatedTail: a torn final record (the crash case) is
// dropped; every preceding record survives.
func TestJournalTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard-0000.cwj")
	recs := sampleRecords(10)
	writeRecords(t, path, recs)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the tail one at a time down to an empty file: the
	// scanner must never panic, never invent records, and must keep a
	// record exactly until one of its bytes is gone.
	fullLens := recordOffsets(t, data)
	for cut := len(data) - 1; cut >= 0; cut-- {
		n, valid := scanJournal(data[:cut], nil)
		wantN := 0
		for _, end := range fullLens {
			if end <= cut {
				wantN++
			}
		}
		if n != wantN {
			t.Fatalf("cut at %d: %d records, want %d", cut, n, wantN)
		}
		if valid > cut {
			t.Fatalf("cut at %d: valid offset %d beyond data", cut, valid)
		}
	}
}

// recordOffsets returns the end offset of every record in a journal.
func recordOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	var ends []int
	prev := len(journalMagic)
	n, _ := scanJournal(data, nil)
	for i := 0; i < n; i++ {
		// Re-scan prefixes to find each record boundary (test-only
		// quadratic is fine at this size).
		for off := prev + 1; off <= len(data); off++ {
			if cnt, valid := scanJournal(data[:off], nil); cnt == i+1 && valid == off {
				ends = append(ends, off)
				prev = off
				break
			}
		}
	}
	if len(ends) != n {
		t.Fatalf("found %d record ends, want %d", len(ends), n)
	}
	return ends
}

// TestJournalCorruptTailFlippedBit: flipping a byte in the last record
// invalidates it (checksum) without touching earlier records.
func TestJournalCorruptTailFlippedBit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0000.cwj")
	writeRecords(t, path, sampleRecords(5))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	clean4, _ := scanJournal(data, nil)
	if clean4 != 5 {
		t.Fatalf("precondition: %d records", clean4)
	}
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-1] ^= 0xff
	n, valid := scanJournal(corrupt, nil)
	if n != 4 {
		t.Fatalf("corrupt tail: %d records survived, want 4", n)
	}
	// A writer reopening the file truncates to the last valid record
	// and can append cleanly.
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	jw, err := openJournal(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.append(99, "", []byte("appended-after-repair")); err != nil {
		t.Fatal(err)
	}
	if err := jw.close(); err != nil {
		t.Fatal(err)
	}
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repaired[:valid], corrupt[:valid]) {
		t.Fatal("repair rewrote the valid prefix")
	}
	var indices []int
	n2, valid2 := scanJournal(repaired, func(index int, _ journalRecord) { indices = append(indices, index) })
	if n2 != 5 || valid2 != len(repaired) {
		t.Fatalf("after repair: %d records, %d/%d valid", n2, valid2, len(repaired))
	}
	if indices[4] != 99 {
		t.Fatalf("appended record index = %d", indices[4])
	}
}

// TestJournalGarbageFile: a file that is not a journal at all loads as
// empty (and a writer rewrites it from scratch).
func TestJournalGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0000.cwj")
	if err := os.WriteFile(path, []byte("this is not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, valid := scanJournal([]byte("this is not a journal"), nil); n != 0 || valid != 0 {
		t.Fatalf("garbage scanned to %d records, %d valid bytes", n, valid)
	}
	jw, err := openJournal(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.append(7, "", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := jw.close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n, valid := scanJournal(data, nil)
	if n != 1 || valid != len(data) {
		t.Fatalf("rewritten garbage file: %d records, %d/%d valid", n, valid, len(data))
	}
}

// TestLoadJournalsMergesFiles: records spread over several shard files
// (as different shard layouts would leave them) merge by index.
func TestLoadJournalsMergesFiles(t *testing.T) {
	dir := t.TempDir()
	writeRecords(t, shardFile(dir, 0), sampleRecords(4))
	writeRecords(t, shardFile(dir, 7), []struct {
		index int
		err   string
		value string
	}{{index: 10, value: "ten"}, {index: 11, err: "boom", value: "eleven"}})
	replay, err := loadJournals(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 6 {
		t.Fatalf("merged %d records, want 6", len(replay))
	}
	if string(replay[10].value) != "ten" || replay[11].errStr != "boom" {
		t.Fatalf("replay[10] = %+v, replay[11] = %+v", replay[10], replay[11])
	}
}

// FuzzScanJournal: arbitrary bytes never panic the scanner, and the
// reported valid offset is always consistent (a re-scan of the valid
// prefix yields the same records).
func FuzzScanJournal(f *testing.F) {
	path := filepath.Join(f.TempDir(), "seed.cwj")
	jw, err := openJournal(path, 1)
	if err != nil {
		f.Fatal(err)
	}
	jw.append(3, "err", []byte("value"))
	jw.append(4, "", []byte{0, 1, 2, 255})
	jw.close()
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(journalMagic))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, valid := scanJournal(data, nil)
		if valid > len(data) {
			t.Fatalf("valid %d > len %d", valid, len(data))
		}
		n2, valid2 := scanJournal(data[:valid], nil)
		if n2 != n || (valid > 0 && valid2 != valid) {
			t.Fatalf("re-scan of valid prefix: %d/%d records, %d/%d bytes", n2, n, valid2, valid)
		}
	})
}

// FuzzJournalRecordRoundTrip: any (index, err, value) triple survives
// the journal byte-exactly.
func FuzzJournalRecordRoundTrip(f *testing.F) {
	f.Add(0, "", []byte(nil))
	f.Add(45221, "no such host", []byte("observation bytes"))
	f.Add(1<<40, "x", bytes.Repeat([]byte{0xab}, 300))
	f.Fuzz(func(t *testing.T, index int, errStr string, value []byte) {
		if index < 0 {
			index = -index
		}
		path := filepath.Join(t.TempDir(), "f.cwj")
		jw, err := openJournal(path, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := jw.append(index, errStr, value); err != nil {
			t.Fatal(err)
		}
		if err := jw.close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		found := 0
		n, valid := scanJournal(data, func(gotIndex int, rec journalRecord) {
			found++
			if gotIndex != index || rec.errStr != errStr || !bytes.Equal(rec.value, value) {
				t.Fatalf("round trip: got (%d, %q, %x), want (%d, %q, %x)",
					gotIndex, rec.errStr, rec.value, index, errStr, value)
			}
		})
		if n != 1 || found != 1 || valid != len(data) {
			t.Fatalf("scan: %d records, %d/%d bytes", n, valid, len(data))
		}
	})
}
