package campaign

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBudgetBoundsConcurrentCampaigns runs several campaigns
// concurrently on one shared budget and asserts the combined in-flight
// visit count never exceeds the budget, while every campaign still
// delivers its full result sequence in order.
func TestBudgetBoundsConcurrentCampaigns(t *testing.T) {
	const slots = 3
	b := NewBudget(slots)
	var cur, peak atomic.Int32
	visit := func(_ context.Context, x int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return x * 2, nil
	}
	targets := make([]int, 64)
	for i := range targets {
		targets[i] = i
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var got []int
			stats, err := Run(context.Background(),
				Config{Workers: 8, Shards: 2, Budget: b}, targets, visit,
				func(r Result[int]) { got = append(got, r.Value) })
			if err != nil {
				t.Errorf("Run: %v", err)
				return
			}
			if stats.Done != int64(len(targets)) {
				t.Errorf("done = %d, want %d", stats.Done, len(targets))
			}
			for i, v := range got {
				if v != 2*i {
					t.Errorf("out-of-order delivery: got[%d] = %d", i, v)
					return
				}
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > slots {
		t.Fatalf("peak concurrent visits = %d, budget %d", p, slots)
	}
	if p := peak.Load(); p == 0 {
		t.Fatal("no visit ever ran")
	}
}

// TestBudgetCancellationWhileWaiting cancels a campaign whose workers
// are blocked waiting for budget slots held by a stalled visit: Run
// must return promptly with every target accounted, and the blocked
// acquirers must not leak.
func TestBudgetCancellationWhileWaiting(t *testing.T) {
	b := NewBudget(1)
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started atomic.Int32
	visit := func(ctx context.Context, x int) (int, error) {
		if started.Add(1) == 1 {
			// First visit squats on the only slot until canceled.
			select {
			case <-release:
			case <-ctx.Done():
			}
		}
		return x, nil
	}
	targets := make([]int, 50)
	done := make(chan struct{})
	var stats Stats
	var runErr error
	go func() {
		defer close(done)
		stats, runErr = Run(ctx, Config{Workers: 4, Budget: b}, targets, visit, nil)
	}()
	for started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return within 5s of cancellation")
	}
	close(release)
	if runErr == nil {
		t.Fatal("expected cancellation error")
	}
	if stats.Done+stats.Canceled != int64(len(targets)) {
		t.Fatalf("done %d + canceled %d != %d targets", stats.Done, stats.Canceled, len(targets))
	}
	if stats.Canceled == 0 {
		t.Fatal("expected canceled targets (workers were blocked on the budget)")
	}
}

// TestNilBudgetIsUnbounded: a nil *Budget grants immediately (the
// default, budget-free path must stay allocation- and contention-free).
func TestNilBudgetIsUnbounded(t *testing.T) {
	var b *Budget
	if !b.acquire(context.Background()) {
		t.Fatal("nil budget refused a slot")
	}
	b.release()
	stats, err := Run(context.Background(), Config{Workers: 2, Budget: nil},
		[]int{1, 2, 3}, func(_ context.Context, x int) (int, error) { return x, nil }, nil)
	if err != nil || stats.Done != 3 {
		t.Fatalf("stats %+v, err %v", stats, err)
	}
}
