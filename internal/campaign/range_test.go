package campaign

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// rangeCodec mirrors the resume tests' string codec.
type rangeCodec struct{}

func (rangeCodec) Encode(v any) ([]byte, error) { return []byte(v.(string)), nil }
func (rangeCodec) Decode(data []byte) (any, error) {
	return string(data), nil
}

// TestShardRangeMatchesRun pins the contract that makes distribution
// sound: ShardRange must partition targets exactly as Run does, with
// contiguous gap-free coverage.
func TestShardRangeMatchesRun(t *testing.T) {
	for _, tc := range []struct{ total, shards int }{
		{10, 1}, {10, 3}, {7, 7}, {100, 16}, {3, 5}, {0, 1},
	} {
		prev := 0
		for s := 0; s < tc.shards; s++ {
			lo, hi := ShardRange(tc.total, tc.shards, s)
			if lo != prev {
				t.Fatalf("total %d shards %d: shard %d starts at %d, want %d", tc.total, tc.shards, s, lo, prev)
			}
			if hi < lo {
				t.Fatalf("total %d shards %d: shard %d is [%d,%d)", tc.total, tc.shards, s, lo, hi)
			}
			prev = hi
		}
		if prev != tc.total {
			t.Fatalf("total %d shards %d: coverage ends at %d", tc.total, tc.shards, prev)
		}
	}
}

// TestRunRangeAssembly is the distribution-soundness test at the
// engine level: every shard range executed independently via RunRange
// (each in its own checkpoint dir, as remote workers would), the
// resulting journals assembled into one directory, and Resume replays
// the assembled campaign with the exact delivery sequence of a local
// Run — every record replayed, none re-visited.
func TestRunRangeAssembly(t *testing.T) {
	const n, shards = 23, 4
	targets := make([]string, n)
	for i := range targets {
		targets[i] = fmt.Sprintf("site-%02d.example", i)
	}
	visit := func(_ context.Context, d string) (string, error) {
		if d == "site-07.example" {
			return "", fmt.Errorf("unreachable %s", d)
		}
		return "visited:" + d, nil
	}
	record := func(out *[]string) func(Result[string]) {
		return func(r Result[string]) {
			if r.Err != nil {
				*out = append(*out, fmt.Sprintf("%d err %v", r.Index, r.Err))
				return
			}
			*out = append(*out, fmt.Sprintf("%d ok %s", r.Index, r.Value))
		}
	}

	// Reference: one local run.
	var want []string
	cfg := Config{Label: "assembly", Shards: shards, Workers: 2}
	if _, err := Run(context.Background(), cfg, targets, visit, record(&want)); err != nil {
		t.Fatal(err)
	}

	// Distributed: each range in its own dir, then assemble.
	hash := HashTargets(targets)
	assembled := filepath.Join(t.TempDir(), "assembled")
	if err := InitCheckpointDir(assembled, "assembly", n, hash); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < shards; s++ {
		lo, hi := ShardRange(n, shards, s)
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("worker-%d", s))
		rcfg := cfg
		rcfg.Checkpoint = &Checkpoint{Dir: dir, Codec: rangeCodec{}, TargetsHash: hash}
		stats, err := RunRange(context.Background(), rcfg, targets, s, shards, lo, hi, visit, nil)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if stats.Done != int64(hi-lo) {
			t.Fatalf("shard %d: done %d of %d", s, stats.Done, hi-lo)
		}
		data, err := os.ReadFile(filepath.Join(dir, ShardFilename(s)))
		if err != nil {
			t.Fatal(err)
		}
		// What the coordinator runs before merging.
		if err := CheckJournal(data, lo, hi); err != nil {
			t.Fatalf("shard %d journal: %v", s, err)
		}
		if err := os.WriteFile(filepath.Join(assembled, ShardFilename(s)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var got []string
	rcfg := cfg
	rcfg.Shards = 3 // resume under a different geometry, like PR 4's tests
	rcfg.Checkpoint = &Checkpoint{Dir: assembled, Codec: rangeCodec{}, TargetsHash: hash}
	stats, err := Resume(context.Background(), rcfg, targets,
		func(_ context.Context, d string) (string, error) {
			t.Errorf("assembled resume re-visited %s", d)
			return "", nil
		}, record(&got))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != n {
		t.Fatalf("replayed %d of %d", stats.Replayed, n)
	}
	if len(got) != len(want) {
		t.Fatalf("delivered %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("delivery %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

// TestCheckJournalRejects covers the coordinator's merge guard: torn
// tails, trailing garbage, incomplete coverage and wrong ranges are
// all refused.
func TestCheckJournalRejects(t *testing.T) {
	const n = 8
	targets := make([]string, n)
	for i := range targets {
		targets[i] = fmt.Sprintf("t%d", i)
	}
	dir := t.TempDir()
	cfg := Config{Label: "guard", Checkpoint: &Checkpoint{Dir: dir, Codec: rangeCodec{}}}
	if _, err := RunRange(context.Background(), cfg, targets, 0, 2, 0, 4,
		func(_ context.Context, d string) (string, error) { return d, nil }, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, ShardFilename(0)))
	if err != nil {
		t.Fatal(err)
	}

	if err := CheckJournal(data, 0, 4); err != nil {
		t.Fatalf("valid journal rejected: %v", err)
	}
	if err := CheckJournal(data[:len(data)-3], 0, 4); err == nil {
		t.Fatal("torn tail accepted")
	}
	if err := CheckJournal(append(append([]byte(nil), data...), 'x'), 0, 4); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if err := CheckJournal(data, 0, 5); err == nil {
		t.Fatal("incomplete coverage accepted")
	}
	if err := CheckJournal(data, 4, 8); err == nil {
		t.Fatal("wrong range accepted")
	}
	if err := CheckJournal([]byte("not a journal"), 0, 4); err == nil {
		t.Fatal("garbage header accepted")
	}
	if err := CheckJournal([]byte(journalMagic), 0, 0); err != nil {
		t.Fatalf("empty-range journal rejected: %v", err)
	}
}
