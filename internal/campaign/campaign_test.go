package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// spin burns a little CPU proportional to x so visits finish out of
// order under concurrency without nondeterministic sleeps.
func spin(x int) int {
	h := x
	for i := 0; i < (x%7)*500; i++ {
		h = h*31 + i
	}
	return h
}

// TestRunDeliversInOrder pins the engine's core guarantee: the sink
// sees every result exactly once, in input order, for ANY combination
// of worker and shard counts — so a streaming aggregator's output can
// never depend on scheduling.
func TestRunDeliversInOrder(t *testing.T) {
	targets := make([]int, 503)
	for i := range targets {
		targets[i] = i
	}
	visit := func(_ context.Context, x int) (string, error) {
		spin(x)
		return fmt.Sprintf("v%d", x), nil
	}
	var reference []string
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, shards := range []int{1, 3, 7} {
			var got []string
			lastIdx := -1
			stats, err := Run(context.Background(),
				Config{Workers: workers, Shards: shards, Window: 8},
				targets, visit, func(r Result[string]) {
					if r.Index != lastIdx+1 {
						t.Fatalf("w=%d s=%d: index %d delivered after %d", workers, shards, r.Index, lastIdx)
					}
					lastIdx = r.Index
					got = append(got, r.Value)
				})
			if err != nil {
				t.Fatalf("w=%d s=%d: %v", workers, shards, err)
			}
			if stats.Done != int64(len(targets)) || stats.Errors != 0 || stats.Canceled != 0 {
				t.Fatalf("w=%d s=%d: stats = %+v", workers, shards, stats)
			}
			if len(stats.Shards) != shards {
				t.Fatalf("w=%d s=%d: %d shard stats", workers, shards, len(stats.Shards))
			}
			if reference == nil {
				reference = got
				continue
			}
			if strings.Join(got, ",") != strings.Join(reference, ",") {
				t.Fatalf("w=%d s=%d: delivery sequence differs", workers, shards)
			}
		}
	}
}

// TestRunOrderedAppendMaterialization checks the streaming contract
// the experiment paths build on since Map's removal: appending each
// delivered value reproduces the positional layout (out[i] belongs to
// targets[i]), with errored visits keeping their partial value in
// place.
func TestRunOrderedAppendMaterialization(t *testing.T) {
	targets := []string{"a", "b", "c", "d"}
	out := make([]string, 0, len(targets))
	stats, err := Run(context.Background(), Config{Workers: 3}, targets,
		func(_ context.Context, s string) (string, error) {
			if s == "c" {
				return "C!", errors.New("boom")
			}
			return strings.ToUpper(s), nil
		},
		func(r Result[string]) {
			if r.Index != len(out) {
				t.Errorf("delivery index %d out of order (have %d values)", r.Index, len(out))
			}
			out = append(out, r.Value)
		})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"A", "B", "C!", "D"}; fmt.Sprint(out) != fmt.Sprint(want) {
		t.Fatalf("out = %v", out)
	}
	if stats.Errors != 1 || stats.Done != 4 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestPerShardErrorAccounting injects failures at known indices and
// checks they land in the right shard's ledger.
func TestPerShardErrorAccounting(t *testing.T) {
	const n, shards = 100, 4
	failing := map[int]bool{3: true, 24: true, 25: true, 26: true, 99: true}
	targets := make([]int, n)
	for i := range targets {
		targets[i] = i
	}
	stats, err := Run(context.Background(), Config{Workers: 4, Shards: shards}, targets,
		func(_ context.Context, x int) (int, error) {
			if failing[x] {
				return 0, errors.New("injected")
			}
			return x, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != int64(len(failing)) {
		t.Fatalf("total errors = %d, want %d", stats.Errors, len(failing))
	}
	// Shards are contiguous equal ranges: [0,25) [25,50) [50,75) [75,100).
	wantPerShard := []int{2, 2, 0, 1}
	for i, sh := range stats.Shards {
		if sh.Targets != 25 {
			t.Fatalf("shard %d targets = %d", i, sh.Targets)
		}
		if sh.Errors != int64(wantPerShard[i]) {
			t.Fatalf("shard %d errors = %d, want %d", i, sh.Errors, wantPerShard[i])
		}
	}
}

// TestCancellationPromptNoLeaks cancels a campaign whose visits block
// on the context and asserts Run returns promptly, accounts every
// target, and leaves no goroutine behind.
func TestCancellationPromptNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	targets := make([]int, 200)
	for i := range targets {
		targets[i] = i
	}
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	visit := func(ctx context.Context, x int) (int, error) {
		if started.Add(1) > 20 {
			// Visits after the 20th hang until canceled — the engine must
			// not wait on the undispatched tail.
			<-ctx.Done()
			return 0, ctx.Err()
		}
		return x, nil
	}
	done := make(chan struct{})
	var stats Stats
	var runErr error
	go func() {
		defer close(done)
		stats, runErr = Run(ctx, Config{Workers: 4, Shards: 2, Window: 8}, targets, visit, nil)
	}()
	for started.Load() <= 20 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return within 5s of cancellation")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", runErr)
	}
	if stats.Done+stats.Canceled != int64(len(targets)) {
		t.Fatalf("done %d + canceled %d != %d targets", stats.Done, stats.Canceled, len(targets))
	}
	if stats.Canceled == 0 {
		t.Fatal("expected canceled targets")
	}
	// Engine goroutines must all have exited (give the runtime a moment).
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelBeforeRun: an already-canceled context visits nothing.
func TestCancelBeforeRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sinkCalls := 0
	stats, err := Run(ctx, Config{Shards: 3}, []int{1, 2, 3, 4, 5},
		func(_ context.Context, x int) (int, error) { return x, nil },
		func(Result[int]) { sinkCalls++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if stats.Canceled != 5 || stats.Done != 0 || sinkCalls != 0 {
		t.Fatalf("stats = %+v, sink calls = %d", stats, sinkCalls)
	}
}

// TestCancellationCause propagates context.Cause through Run.
func TestCancellationCause(t *testing.T) {
	cause := errors.New("operator abort")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	_, err := Run(ctx, Config{}, []int{1, 2},
		func(_ context.Context, x int) (int, error) { return x, nil }, nil)
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want cause", err)
	}
}

// TestWorkerConcurrencyBound: never more simultaneous visits than the
// per-shard pool size.
func TestWorkerConcurrencyBound(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	targets := make([]int, 64)
	_, err := Run(context.Background(), Config{Workers: workers, Shards: 2}, targets,
		func(_ context.Context, x int) (int, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			spin(x + 5)
			inFlight.Add(-1)
			return x, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrent visits = %d > %d workers", p, workers)
	}
}

// TestProgressMonotonic: progress snapshots count up and end at Total.
func TestProgressMonotonic(t *testing.T) {
	targets := make([]int, 40)
	var snaps []Progress
	_, err := Run(context.Background(),
		Config{Workers: 2, Shards: 4, ProgressEvery: 3, Label: "probe",
			OnProgress: func(p Progress) { snaps = append(snaps, p) }},
		targets,
		func(_ context.Context, x int) (int, error) { return x, nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress callbacks")
	}
	var lastDone int64 = -1
	for _, p := range snaps {
		if p.Label != "probe" || p.Total != 40 {
			t.Fatalf("snapshot = %+v", p)
		}
		if p.Done < lastDone {
			t.Fatalf("progress went backwards: %d after %d", p.Done, lastDone)
		}
		lastDone = p.Done
	}
	if final := snaps[len(snaps)-1]; final.Done != 40 || final.Shard != 4 {
		t.Fatalf("final snapshot = %+v", final)
	}
}

// TestDefaultShards pins the derivation used for paper-scale campaigns.
func TestDefaultShards(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 1}, {1, 1}, {4096, 1}, {4097, 2}, {45222, 12}, {1 << 20, 64},
	} {
		if got := DefaultShards(tc.n); got != tc.want {
			t.Errorf("DefaultShards(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestEmptyTargets: a zero-target campaign completes trivially.
func TestEmptyTargets(t *testing.T) {
	stats, err := Run(context.Background(), Config{}, nil,
		func(_ context.Context, x int) (int, error) { return x, nil }, nil)
	if err != nil || stats.Done != 0 || len(stats.Shards) != 1 {
		t.Fatalf("stats = %+v, err = %v", stats, err)
	}
}
