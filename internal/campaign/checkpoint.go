package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"cookiewalk/internal/xrand"
)

// Codec serializes result values for the checkpoint journal. Both
// methods must be safe for concurrent use (encoding runs on worker
// goroutines) and must round-trip exactly: Decode(Encode(v)) must be
// indistinguishable from v to the campaign's sink, or resumed runs
// cannot be byte-identical to uninterrupted ones.
type Codec interface {
	// Encode serializes one result value.
	Encode(v any) ([]byte, error)
	// Decode reverses Encode. The returned value must have the
	// campaign's result type R. A decode error is not fatal: the engine
	// falls back to re-visiting that target fresh.
	Decode(data []byte) (any, error)
}

// Checkpoint makes a campaign durable: every delivered result is
// appended to a per-shard journal under Dir, and Resume replays those
// journals instead of re-visiting. See journal.go for the on-disk
// format and its crash-safety argument.
type Checkpoint struct {
	// Dir holds the manifest and the per-shard journal files. Each
	// campaign needs its own directory — Run wipes stale journals from
	// prior runs, and Resume refuses a manifest describing a different
	// campaign.
	Dir string
	// FlushEvery is the flush interval in records: the journal's
	// buffered writer is flushed to the OS after every FlushEvery
	// appended records (default 64), and always flushed + fsynced at
	// shard completion. Smaller values shrink the window a crash can
	// lose at the cost of more write syscalls.
	FlushEvery int
	// Codec serializes result values. Required.
	Codec Codec
	// TargetsHash, when nonzero, pins the identity of the target list
	// (e.g. HashTargets for string targets). It is stored in the
	// manifest; Resume refuses journals recorded for a different hash,
	// so a checkpoint can never silently replay onto the wrong targets.
	TargetsHash uint64
}

// defaultFlushEvery is the journal flush interval when
// Checkpoint.FlushEvery is zero.
const defaultFlushEvery = 64

// manifestName is the campaign-identity file inside a checkpoint dir.
const manifestName = "manifest.json"

// manifest records which campaign a checkpoint dir belongs to.
type manifest struct {
	Label       string `json:"label"`
	Targets     int    `json:"targets"`
	TargetsHash uint64 `json:"targets_hash"`
}

// PathLabel renders a campaign label as a filesystem-safe checkpoint
// subdirectory component ("landscape US East" → "landscape-us-east").
// Every layer that maps labels to journal directories — the study's
// per-experiment checkpointing and the fleet coordinator's journal
// assembly — must agree on this mapping, so it lives here.
func PathLabel(label string) string {
	return strings.ToLower(strings.ReplaceAll(label, " ", "-"))
}

// InitCheckpointDir prepares dir as the checkpoint directory of the
// given campaign identity: creates it, wipes journals left by any
// prior run, and writes the manifest — exactly the state a fresh
// checkpointed Run establishes before its first delivery. The fleet
// coordinator uses it to assemble worker-shipped shard journals into a
// directory Resume accepts as this campaign's own, so the PR-4
// manifest guard covers distributed merges too: a journal can never
// replay into a campaign with a different label, target count or
// targets hash.
func InitCheckpointDir(dir, label string, targets int, targetsHash uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("campaign: checkpoint dir: %w", err)
	}
	if err := removeJournals(dir); err != nil {
		return fmt.Errorf("campaign: reset checkpoint dir: %w", err)
	}
	return writeManifest(dir, manifest{Label: label, Targets: targets, TargetsHash: targetsHash})
}

// EnsureCheckpointDir prepares dir as the checkpoint directory of the
// given campaign identity WITHOUT wiping journals already present —
// the recovery-path sibling of InitCheckpointDir. A restarted fleet
// coordinator uses it when it resumes an interrupted assembly: the
// shard journals merged before the crash must survive the restart, and
// the manifest is (re)written from the authoritative campaign specs so
// Resume still accepts the directory as this campaign's own.
func EnsureCheckpointDir(dir, label string, targets int, targetsHash uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("campaign: checkpoint dir: %w", err)
	}
	return writeManifest(dir, manifest{Label: label, Targets: targets, TargetsHash: targetsHash})
}

// HashTargets folds a string target list into a stable identity hash
// for Checkpoint.TargetsHash (order-sensitive, platform-independent).
func HashTargets(targets []string) uint64 {
	h := xrand.Hash64("campaign-targets")
	for _, t := range targets {
		h = xrand.Mix64(h, xrand.Hash64(t))
	}
	return h
}

// checkpointState is the engine's per-run journaling context: the
// validated configuration plus the first journal error, which disables
// further journaling without aborting the campaign (results stay
// correct; only durability is lost, and the error is reported when Run
// returns). fail is called from worker goroutines and the delivery
// loop alike, hence the mutex.
type checkpointState struct {
	cp Checkpoint

	// dead flips once on the first failure so workers can stop paying
	// for Codec.Encode the moment durability is lost (the encoded bytes
	// would only be dropped by the delivery loop anyway).
	dead atomic.Bool

	mu  sync.Mutex
	err error
}

func (ck *checkpointState) fail(err error) {
	ck.dead.Store(true)
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.err == nil {
		ck.err = fmt.Errorf("campaign: checkpoint: %w", err)
	}
}

// firstErr returns the first recorded journal error, if any.
func (ck *checkpointState) firstErr() error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.err
}

// prepareCheckpoint validates cfg.Checkpoint and readies Dir. A fresh
// Run wipes leftover journals and writes the manifest; a Resume has
// already validated the manifest (writing it if the dir was empty).
func prepareCheckpoint(cfg Config, nTargets int, resuming bool) (*checkpointState, error) {
	cp := *cfg.Checkpoint
	if cp.Dir == "" {
		return nil, fmt.Errorf("campaign: Checkpoint.Dir is empty")
	}
	if cp.Codec == nil {
		return nil, fmt.Errorf("campaign: Checkpoint.Codec is nil")
	}
	if err := os.MkdirAll(cp.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint dir: %w", err)
	}
	if !resuming {
		if err := removeJournals(cp.Dir); err != nil {
			return nil, fmt.Errorf("campaign: reset checkpoint dir: %w", err)
		}
		if err := writeManifest(cp.Dir, manifest{
			Label: cfg.Label, Targets: nTargets, TargetsHash: cp.TargetsHash,
		}); err != nil {
			return nil, err
		}
	}
	return &checkpointState{cp: cp}, nil
}

func writeManifest(dir string, m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: write manifest: %w", err)
	}
	return nil
}

// loadCheckpoint validates the manifest against the resuming campaign
// and loads every journaled record. A missing manifest means nothing
// was ever journaled here: Resume then degrades to a fresh Run (it
// writes the manifest and journals from scratch).
func loadCheckpoint(cfg Config, nTargets int) (map[int]journalRecord, error) {
	cp := cfg.Checkpoint
	data, err := os.ReadFile(filepath.Join(cp.Dir, manifestName))
	if os.IsNotExist(err) {
		if err := os.MkdirAll(cp.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: checkpoint dir: %w", err)
		}
		// No manifest means no trustworthy journal — wipe any stray .cwj
		// files before journaling from scratch. Without this, journals
		// orphaned by a torn/deleted manifest would survive next to the
		// manifest written below, and a LATER resume would replay their
		// checksummed-but-foreign records as this campaign's results.
		if err := removeJournals(cp.Dir); err != nil {
			return nil, fmt.Errorf("campaign: reset checkpoint dir: %w", err)
		}
		if err := writeManifest(cp.Dir, manifest{
			Label: cfg.Label, Targets: nTargets, TargetsHash: cp.TargetsHash,
		}); err != nil {
			return nil, err
		}
		return map[int]journalRecord{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("campaign: parse manifest %s: %w", filepath.Join(cp.Dir, manifestName), err)
	}
	if m.Label != cfg.Label || m.Targets != nTargets || m.TargetsHash != cp.TargetsHash {
		return nil, fmt.Errorf(
			"campaign: checkpoint %s belongs to a different campaign: journal (label %q, %d targets, hash %#x) vs resume (label %q, %d targets, hash %#x)",
			cp.Dir, m.Label, m.Targets, m.TargetsHash, cfg.Label, nTargets, cp.TargetsHash)
	}
	replay, err := loadJournals(cp.Dir)
	if err != nil {
		return nil, fmt.Errorf("campaign: load journals: %w", err)
	}
	return replay, nil
}

// Resume is Run for a campaign that may have already partially run
// with the same Checkpoint configuration: journaled results are
// replayed — decoded and delivered to the sink in order, without
// calling visit — and only the targets missing from the journal are
// scheduled, their results appended to the journal exactly as an
// uninterrupted Run would have. The delivered sequence (and therefore
// any deterministic sink's output) is byte-identical to an
// uninterrupted Run's for ANY kill point and ANY Workers/Shards
// setting, on either run.
//
// An empty or absent checkpoint directory makes Resume equivalent to
// Run. A journal recorded for a different campaign (label, target
// count or TargetsHash mismatch) is refused. Stats counts replayed
// deliveries in both Done and Replayed.
func Resume[T, R any](ctx context.Context, cfg Config, targets []T,
	visit func(context.Context, T) (R, error), sink func(Result[R])) (Stats, error) {

	if cfg.Checkpoint == nil {
		return Stats{}, fmt.Errorf("campaign: Resume requires Config.Checkpoint")
	}
	if cfg.Checkpoint.Codec == nil {
		return Stats{}, fmt.Errorf("campaign: Checkpoint.Codec is nil")
	}
	replay, err := loadCheckpoint(cfg, len(targets))
	if err != nil {
		return Stats{}, err
	}
	return run(ctx, cfg, targets, visit, sink, replay)
}
