// Package campaign is the streaming, sharded execution engine behind
// every measurement crawl. It replaces the ad-hoc materialize-then-scan
// plumbing (run all visits, collect a giant result slice, fold it) with
// a pipeline that streams each visit's result into an incrementally
// updated aggregator the moment it becomes available — in input order,
// so aggregation is byte-for-byte deterministic regardless of worker
// count, shard count, or scheduling.
//
// A campaign partitions its target list into contiguous shards. Shards
// run one after another, each with its own worker pool; inside a shard,
// visits run concurrently but their results are re-sequenced through a
// bounded in-flight window before reaching the sink. The window gives
// backpressure (at most Window results are ever buffered, never the
// full target list) and the re-sequencing gives determinism: the sink
// observes results exactly as if the targets had been visited one by
// one, left to right.
//
// Cancellation is first-class: cancel the context and the engine stops
// dispatching, lets in-flight visits finish (visit functions receive
// the context and may abort early), accounts every undone target as
// canceled, and returns context.Cause promptly with no goroutine left
// behind. Per-shard counters (done / errors / canceled) survive in the
// returned Stats, so callers can report exactly which slice of the
// campaign failed or was cut short.
package campaign

import (
	"context"
	"runtime"
	"sync"
)

// Config parameterizes one campaign run.
type Config struct {
	// Label names the campaign in progress callbacks
	// ("landscape Germany", "cookies accept", ...).
	Label string
	// Workers is the per-shard worker pool size (default GOMAXPROCS).
	Workers int
	// Shards is the number of contiguous target partitions. Zero picks
	// DefaultShards(len(targets)). Sharding never changes results — it
	// bounds the re-sequencing scope and structures progress/error
	// accounting into reportable units.
	Shards int
	// Window bounds in-flight results awaiting in-order delivery
	// (default 4×Workers, minimum 16). Larger windows absorb more
	// per-visit latency skew at the cost of buffered results.
	Window int
	// OnProgress, when set, receives progress snapshots from the
	// delivery goroutine: every ProgressEvery deliveries and at every
	// shard boundary. Callbacks never influence results.
	OnProgress func(Progress)
	// ProgressEvery is the delivery interval between progress callbacks
	// (default 1000).
	ProgressEvery int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) window() int {
	if c.Window > 0 {
		return c.Window
	}
	w := 4 * c.workers()
	if w < 16 {
		w = 16
	}
	return w
}

func (c Config) shards(n int) int {
	s := c.Shards
	if s <= 0 {
		s = DefaultShards(n)
	}
	if n > 0 && s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// DefaultShards derives a shard count from the target-list size: one
// shard per 4096 targets, at least 1, at most 64. The paper-scale
// 45 222-target list lands at 12 shards.
func DefaultShards(n int) int {
	s := (n + 4095) / 4096
	if s < 1 {
		return 1
	}
	if s > 64 {
		return 64
	}
	return s
}

// Progress is a point-in-time snapshot of a running campaign.
type Progress struct {
	Label  string
	Shard  int // 1-based index of the shard in flight
	Shards int
	Done   int64 // visits delivered so far, across all shards
	Total  int64
	Errors int64
}

// Result carries one visit's outcome to the sink.
type Result[R any] struct {
	// Index is the global position in the target list.
	Index int
	// Shard is the 0-based shard the target belongs to.
	Shard int
	// Value is visit's return value (also populated when Err != nil:
	// visits may return partial results alongside their error).
	Value R
	// Err is the visit error, counted in the shard's error tally.
	Err error
}

// ShardStats is the per-shard account of one campaign.
type ShardStats struct {
	Shard   int
	Targets int
	// Done counts visits that ran (successes and errors alike).
	Done int
	// Errors counts visits whose visit function returned an error.
	Errors int
	// Canceled counts targets never visited because the campaign was
	// canceled first.
	Canceled int
}

// Stats is the whole-campaign account, the sum of its shards.
type Stats struct {
	Targets  int
	Done     int
	Errors   int
	Canceled int
	Shards   []ShardStats
}

func (s *Stats) add(sh ShardStats) {
	s.Done += sh.Done
	s.Errors += sh.Errors
	s.Canceled += sh.Canceled
	s.Shards = append(s.Shards, sh)
}

// Run executes visit over targets and streams every Result — in
// strictly increasing Index order, from the calling goroutine — into
// sink. It returns when every target is accounted for: visited, failed,
// or canceled. The error is non-nil exactly when ctx was canceled
// before the campaign finished; Stats is valid either way.
//
// sink may be nil when only Stats are wanted. It needs no locking: the
// engine never calls it concurrently.
func Run[T, R any](ctx context.Context, cfg Config, targets []T,
	visit func(context.Context, T) (R, error), sink func(Result[R])) (Stats, error) {

	nShards := cfg.shards(len(targets))
	stats := Stats{Targets: len(targets)}
	total := int64(len(targets))
	for shard := 0; shard < nShards; shard++ {
		lo := shard * len(targets) / nShards
		hi := (shard + 1) * len(targets) / nShards
		if ctx.Err() != nil {
			// Campaign cut short: account the remaining shards without
			// spinning up their pools. Progress consumers still see each
			// skipped shard so the final snapshot reaches Shards/Shards.
			stats.add(ShardStats{Shard: shard, Targets: hi - lo, Canceled: hi - lo})
		} else {
			stats.add(runShard(ctx, cfg, targets, visit, sink, shard, nShards, lo, hi, &stats, total))
		}
		if cfg.OnProgress != nil {
			cfg.OnProgress(Progress{
				Label: cfg.Label, Shard: shard + 1, Shards: nShards,
				Done: int64(stats.Done), Total: total, Errors: int64(stats.Errors),
			})
		}
	}
	if stats.Canceled > 0 || ctx.Err() != nil {
		if err := context.Cause(ctx); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// shardResult pairs a Result with the engine-internal cancellation
// marker (canceled targets never reach the sink but must be accounted
// and re-sequenced like everything else).
type shardResult[R any] struct {
	res      Result[R]
	canceled bool
}

// runShard runs one contiguous target range [lo, hi) through a fresh
// worker pool and delivers its results in order.
func runShard[T, R any](ctx context.Context, cfg Config, targets []T,
	visit func(context.Context, T) (R, error), sink func(Result[R]),
	shard, nShards, lo, hi int, sofar *Stats, total int64) ShardStats {

	window := cfg.window()
	workers := cfg.workers()
	if workers > hi-lo {
		// Never more goroutines than targets: single-visit campaigns
		// (AnalyzeOne) and tiny tail shards get a right-sized pool.
		workers = hi - lo
	}
	idxCh := make(chan int)
	resCh := make(chan shardResult[R], window)
	// tokens caps dispatched-but-undelivered visits at window, which
	// bounds the re-sequencing buffer below.
	tokens := make(chan struct{}, window)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				r := Result[R]{Index: i, Shard: shard}
				if ctx.Err() != nil {
					// Dispatched before cancellation won the race: report
					// the target as unvisited rather than calling visit.
					resCh <- shardResult[R]{res: r, canceled: true}
					continue
				}
				r.Value, r.Err = visit(ctx, targets[i])
				resCh <- shardResult[R]{res: r}
			}
		}()
	}
	go func() { // dispatcher
		defer close(idxCh)
		for i := lo; i < hi; i++ {
			select {
			case tokens <- struct{}{}:
			case <-ctx.Done():
				return
			}
			select {
			case idxCh <- i:
			case <-ctx.Done():
				// The token for this index is never consumed; harmless,
				// the channel is garbage-collected with the shard.
				return
			}
		}
	}()
	go func() { wg.Wait(); close(resCh) }()

	sh := ShardStats{Shard: shard, Targets: hi - lo}
	progressEvery := cfg.ProgressEvery
	if progressEvery <= 0 {
		progressEvery = 1000
	}
	next := lo
	pending := make(map[int]shardResult[R], window)
	for r := range resCh {
		pending[r.res.Index] = r
		for {
			q, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			<-tokens
			next++
			if q.canceled {
				sh.Canceled++
				continue
			}
			sh.Done++
			if q.res.Err != nil {
				sh.Errors++
			}
			if sink != nil {
				sink(q.res)
			}
			if cfg.OnProgress != nil && (sh.Done+sh.Canceled)%progressEvery == 0 {
				cfg.OnProgress(Progress{
					Label: cfg.Label, Shard: shard + 1, Shards: nShards,
					Done:   int64(sofar.Done + sh.Done),
					Total:  total,
					Errors: int64(sofar.Errors + sh.Errors),
				})
			}
		}
	}
	// Dispatch stopped early on cancellation: the never-dispatched tail.
	sh.Canceled += (hi - lo) - sh.Done - sh.Canceled
	return sh
}
