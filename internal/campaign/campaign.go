// Package campaign is the streaming, sharded execution engine behind
// every measurement crawl. It replaces the ad-hoc materialize-then-scan
// plumbing (run all visits, collect a giant result slice, fold it) with
// a pipeline that streams each visit's result into an incrementally
// updated aggregator the moment it becomes available — in input order,
// so aggregation is byte-for-byte deterministic regardless of worker
// count, shard count, or scheduling.
//
// A campaign partitions its target list into contiguous shards. Shards
// run one after another, each with its own worker pool; inside a shard,
// visits run concurrently but their results are re-sequenced through a
// bounded in-flight window before reaching the sink. The window gives
// backpressure (at most Window results are ever buffered, never the
// full target list) and the re-sequencing gives determinism: the sink
// observes results exactly as if the targets had been visited one by
// one, left to right.
//
// Cancellation is first-class: cancel the context and the engine stops
// dispatching, lets in-flight visits finish (visit functions receive
// the context and may abort early), accounts every undone target as
// canceled, and returns context.Cause promptly with no goroutine left
// behind. Per-shard counters (done / errors / canceled) survive in the
// returned Stats, so callers can report exactly which slice of the
// campaign failed or was cut short.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Config parameterizes one campaign run.
type Config struct {
	// Label names the campaign in progress callbacks
	// ("landscape Germany", "cookies accept", ...).
	Label string
	// Workers is the per-shard worker pool size (default GOMAXPROCS).
	Workers int
	// Shards is the number of contiguous target partitions. Zero picks
	// DefaultShards(len(targets)). Sharding never changes results — it
	// bounds the re-sequencing scope and structures progress/error
	// accounting into reportable units.
	Shards int
	// Window bounds in-flight results awaiting in-order delivery
	// (default 4×Workers, minimum 16). Larger windows absorb more
	// per-visit latency skew at the cost of buffered results.
	Window int
	// OnProgress, when set, receives progress snapshots from the
	// delivery goroutine: every ProgressEvery deliveries and at every
	// shard boundary. Callbacks never influence results.
	OnProgress func(Progress)
	// ProgressEvery is the delivery interval between progress callbacks
	// (default 1000).
	ProgressEvery int
	// Checkpoint, when set, journals every delivered result to durable
	// per-shard files so a killed campaign can continue with Resume
	// instead of starting over. Run starts a FRESH journal (wiping any
	// leftover files in the directory); Resume replays one. See the
	// Checkpoint type and journal.go for the format and crash-safety
	// guarantees.
	Checkpoint *Checkpoint
	// Budget, when set, is a weighted worker budget shared across
	// campaigns: every visit holds one budget slot while it runs, so N
	// campaigns executing concurrently draw from one bounded pool
	// instead of oversubscribing the machine with N × Workers busy
	// goroutines. Replayed (journaled) deliveries never consume a slot.
	// Purely a scheduling knob — results are identical with or without
	// it.
	Budget *Budget
}

// Budget is a weighted visit budget shared by concurrent campaigns.
// Each in-flight visit holds one slot; campaigns block dispatching
// further visits while the pool is exhausted. A nil *Budget is valid
// and grants every request immediately.
type Budget struct {
	slots chan struct{}
}

// NewBudget returns a budget of n concurrent visit slots (n <= 0 means
// GOMAXPROCS).
func NewBudget(n int) *Budget {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Budget{slots: make(chan struct{}, n)}
}

// acquire blocks until a slot is free or ctx is canceled; it reports
// whether a slot was obtained (and must be released).
func (b *Budget) acquire(ctx context.Context) bool {
	if b == nil {
		return true
	}
	select {
	case b.slots <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

func (b *Budget) release() {
	if b != nil {
		<-b.slots
	}
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) window() int {
	if c.Window > 0 {
		return c.Window
	}
	w := 4 * c.workers()
	if w < 16 {
		w = 16
	}
	return w
}

func (c Config) shards(n int) int {
	s := c.Shards
	if s <= 0 {
		s = DefaultShards(n)
	}
	if n > 0 && s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// DefaultShards derives a shard count from the target-list size: one
// shard per 4096 targets, at least 1, at most 64. The paper-scale
// 45 222-target list lands at 12 shards.
func DefaultShards(n int) int {
	s := (n + 4095) / 4096
	if s < 1 {
		return 1
	}
	if s > 64 {
		return 64
	}
	return s
}

// Progress is a point-in-time snapshot of a running campaign.
type Progress struct {
	Label  string
	Shard  int // 1-based index of the shard in flight
	Shards int
	Done   int64 // visits delivered so far, across all shards
	Total  int64
	Errors int64
	// Replayed counts deliveries served from a checkpoint journal
	// (always ≤ Done; zero outside Resume). Done - Replayed is the
	// fresh-visit count.
	Replayed int64
	// Retries counts retried request attempts across all visits so far
	// (see Meter) — zero unless the visit layer runs with resilience
	// enabled.
	Retries int64
	// BreakerTrips counts per-host circuit breakers tripped open.
	BreakerTrips int64
	// BreakerDenials counts requests refused outright by an open
	// breaker.
	BreakerDenials int64
}

// Fresh returns the deliveries that ran a real visit (Done - Replayed).
func (p Progress) Fresh() int64 { return p.Done - p.Replayed }

// Meter accumulates resilience events — retries, breaker trips,
// breaker denials — from a campaign's visit functions. The engine
// creates one per campaign and injects it into every visit's context;
// visits (or the browser layer beneath them) retrieve it with
// MeterFrom and report events. All methods are safe for concurrent
// use and on a nil receiver, so visit code never needs a guard.
type Meter struct {
	retries        atomic.Int64
	breakerTrips   atomic.Int64
	breakerDenials atomic.Int64
}

// VisitRetry counts one retried request attempt.
func (m *Meter) VisitRetry() {
	if m != nil {
		m.retries.Add(1)
	}
}

// BreakerTrip counts one circuit breaker opening.
func (m *Meter) BreakerTrip() {
	if m != nil {
		m.breakerTrips.Add(1)
	}
}

// BreakerDenial counts one request refused by an open breaker.
func (m *Meter) BreakerDenial() {
	if m != nil {
		m.breakerDenials.Add(1)
	}
}

func (m *Meter) counts() (retries, trips, denials int64) {
	if m == nil {
		return 0, 0, 0
	}
	return m.retries.Load(), m.breakerTrips.Load(), m.breakerDenials.Load()
}

type meterKey struct{}

// MeterFrom returns the campaign's Meter from a visit context, or nil
// when the visit is not running under a campaign engine (direct
// Visit calls, tests). The nil Meter is fully usable.
func MeterFrom(ctx context.Context) *Meter {
	m, _ := ctx.Value(meterKey{}).(*Meter)
	return m
}

func withMeter(ctx context.Context, m *Meter) context.Context {
	return context.WithValue(ctx, meterKey{}, m)
}

// Affinity is a worker-affine scratch slot. Every worker goroutine of a
// campaign carries its own Affinity in the visit context, so the visit
// layer can keep expensive per-session state (a browser, its parser
// arenas, its cookie-jar map) pinned to one worker instead of bouncing
// it through a global sync.Pool on every visit. A worker runs its
// visits strictly sequentially, so the slot needs no locking; it must
// never be shared outside the visit that read it from its context.
//
// The slot holds state only between visits of one worker: take the
// value with Take at acquire time (leaving the slot empty guards
// against nested acquires aliasing one session) and Put it back at
// release time. Visits running outside a campaign (direct calls,
// tests) see a nil *Affinity, on which both methods are safe no-ops —
// callers fall back to their global pool.
type Affinity struct {
	val any
}

// Take removes and returns the slot's value (nil when empty or when a
// is nil).
func (a *Affinity) Take() any {
	if a == nil {
		return nil
	}
	v := a.val
	a.val = nil
	return v
}

// Put stores v in the slot (no-op on a nil receiver).
func (a *Affinity) Put(v any) {
	if a != nil {
		a.val = v
	}
}

type affinityKey struct{}

// AffinityFrom returns the worker's Affinity slot from a visit
// context, or nil outside a campaign worker.
func AffinityFrom(ctx context.Context) *Affinity {
	a, _ := ctx.Value(affinityKey{}).(*Affinity)
	return a
}

func withAffinity(ctx context.Context, a *Affinity) context.Context {
	return context.WithValue(ctx, affinityKey{}, a)
}

// Result carries one visit's outcome to the sink.
type Result[R any] struct {
	// Index is the global position in the target list.
	Index int
	// Shard is the 0-based shard the target belongs to.
	Shard int
	// Value is visit's return value (also populated when Err != nil:
	// visits may return partial results alongside their error).
	Value R
	// Err is the visit error, counted in the shard's error tally.
	Err error
}

// ShardStats is the per-shard account of one campaign. All counters
// share Progress's int64 width, so accounting never narrows on its
// way to a progress line.
type ShardStats struct {
	Shard   int
	Targets int
	// Done counts delivered results (successes and errors alike),
	// replayed or fresh.
	Done int64
	// Errors counts deliveries whose visit returned an error (replayed
	// errors included — a resumed run's ledger matches the
	// uninterrupted one's).
	Errors int64
	// Canceled counts targets never visited because the campaign was
	// canceled first.
	Canceled int64
	// Replayed counts deliveries served from the checkpoint journal
	// instead of a fresh visit (always ≤ Done; zero outside Resume).
	Replayed int64
	// Retries, BreakerTrips and BreakerDenials account the resilience
	// events this shard's visits reported to the campaign Meter (zero
	// when the visit layer runs without retries/breakers).
	Retries        int64
	BreakerTrips   int64
	BreakerDenials int64
}

// Fresh returns the shard's fresh-visit count (Done - Replayed).
func (s ShardStats) Fresh() int64 { return s.Done - s.Replayed }

// Stats is the whole-campaign account, the sum of its shards.
type Stats struct {
	Targets  int
	Done     int64
	Errors   int64
	Canceled int64
	// Replayed counts deliveries served from the checkpoint journal
	// (see ShardStats.Replayed).
	Replayed int64
	// Retries, BreakerTrips and BreakerDenials sum the per-shard
	// resilience counters (see ShardStats).
	Retries        int64
	BreakerTrips   int64
	BreakerDenials int64
	Shards         []ShardStats
}

// Fresh returns the campaign's fresh-visit count (Done - Replayed).
func (s Stats) Fresh() int64 { return s.Done - s.Replayed }

func (s *Stats) add(sh ShardStats) {
	s.Done += sh.Done
	s.Errors += sh.Errors
	s.Canceled += sh.Canceled
	s.Replayed += sh.Replayed
	s.Retries += sh.Retries
	s.BreakerTrips += sh.BreakerTrips
	s.BreakerDenials += sh.BreakerDenials
	s.Shards = append(s.Shards, sh)
}

// Run executes visit over targets and streams every Result — in
// strictly increasing Index order, from the calling goroutine — into
// sink. It returns when every target is accounted for: visited, failed,
// or canceled. The error is non-nil exactly when ctx was canceled
// before the campaign finished, or — for checkpointed campaigns — when
// the journal could not be set up or written (setup failures abort
// before any visit; write failures let the campaign finish correctly
// and are reported at the end, since only durability was lost). Stats
// is valid either way.
//
// sink may be nil when only Stats are wanted. It needs no locking: the
// engine never calls it concurrently.
func Run[T, R any](ctx context.Context, cfg Config, targets []T,
	visit func(context.Context, T) (R, error), sink func(Result[R])) (Stats, error) {
	return run(ctx, cfg, targets, visit, sink, nil)
}

// run is the engine shared by Run and Resume. A nil replay map means a
// fresh campaign; non-nil (possibly empty) means resume mode, where
// journaled indices are replayed instead of visited.
func run[T, R any](ctx context.Context, cfg Config, targets []T,
	visit func(context.Context, T) (R, error), sink func(Result[R]),
	replay map[int]journalRecord) (Stats, error) {

	var ck *checkpointState
	if cfg.Checkpoint != nil {
		var err error
		ck, err = prepareCheckpoint(cfg, len(targets), replay != nil)
		if err != nil {
			return Stats{}, err
		}
	}
	nShards := cfg.shards(len(targets))
	stats := Stats{Targets: len(targets)}
	total := int64(len(targets))
	// One Meter per campaign: visits report resilience events into it
	// through their context, and per-shard deltas are cut at shard
	// boundaries (shards run strictly one after another).
	meter := &Meter{}
	for shard := 0; shard < nShards; shard++ {
		lo, hi := ShardRange(len(targets), nShards, shard)
		if ctx.Err() != nil {
			// Campaign cut short: account the remaining shards without
			// spinning up their pools. Progress consumers still see each
			// skipped shard so the final snapshot reaches Shards/Shards.
			stats.add(ShardStats{Shard: shard, Targets: hi - lo, Canceled: int64(hi - lo)})
		} else {
			preR, preT, preD := meter.counts()
			sh := runShard(ctx, cfg, targets, visit, sink, shard, nShards, lo, hi, &stats, total, meter, ck, replay)
			postR, postT, postD := meter.counts()
			sh.Retries = postR - preR
			sh.BreakerTrips = postT - preT
			sh.BreakerDenials = postD - preD
			stats.add(sh)
		}
		if cfg.OnProgress != nil {
			cfg.OnProgress(Progress{
				Label: cfg.Label, Shard: shard + 1, Shards: nShards,
				Done: stats.Done, Total: total, Errors: stats.Errors,
				Replayed: stats.Replayed,
				Retries:  stats.Retries, BreakerTrips: stats.BreakerTrips,
				BreakerDenials: stats.BreakerDenials,
			})
		}
	}
	if stats.Canceled > 0 || ctx.Err() != nil {
		if err := context.Cause(ctx); err != nil {
			return stats, err
		}
	}
	if ck != nil {
		if err := ck.firstErr(); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// shardResult pairs a Result with the engine-internal markers:
// canceled targets never reach the sink but must be accounted and
// re-sequenced like everything else; replayed results came from the
// journal (never re-journaled, counted separately); enc carries the
// journal encoding of a fresh result, serialized on the worker so the
// single-threaded delivery loop only writes bytes.
type shardResult[R any] struct {
	res      Result[R]
	canceled bool
	replayed bool
	enc      []byte
	encOK    bool
}

// runShard runs one contiguous target range [lo, hi) through a fresh
// worker pool and delivers its results in order. With a checkpoint,
// indices present in replay are decoded from the journal instead of
// visited, and fresh results are journaled at delivery time — in index
// order, so the journal is always a prefix-consistent log.
func runShard[T, R any](ctx context.Context, cfg Config, targets []T,
	visit func(context.Context, T) (R, error), sink func(Result[R]),
	shard, nShards, lo, hi int, sofar *Stats, total int64,
	meter *Meter, ck *checkpointState, replay map[int]journalRecord) ShardStats {

	var jw *journalWriter
	if ck != nil && !ck.dead.Load() {
		var err error
		if jw, err = openJournal(shardFile(ck.cp.Dir, shard), ck.cp.FlushEvery); err != nil {
			ck.fail(err)
			jw = nil
		}
	}

	window := cfg.window()
	workers := cfg.workers()
	if workers > hi-lo {
		// Never more goroutines than targets: single-visit campaigns
		// (AnalyzeOne) and tiny tail shards get a right-sized pool.
		workers = hi - lo
	}
	idxCh := make(chan int)
	// Workers hand results to the delivery loop in batches, amortizing
	// the per-visit channel synchronization: a worker keeps appending to
	// its private batch while more work is immediately available and
	// flushes when the batch fills OR before it would block on idxCh —
	// so under load batches run full, and when the pipeline drains (or
	// the dispatcher stalls on the token window) every partial batch is
	// flushed rather than held. Batch boundaries are therefore pure
	// scheduling: the re-sequencer below delivers the same results in
	// the same order regardless of how they were grouped in transit.
	batchCap := 1
	if workers > 0 {
		batchCap = window / workers
	}
	if batchCap < 1 {
		batchCap = 1
	}
	if batchCap > 32 {
		batchCap = 32
	}
	resCh := make(chan []shardResult[R], workers)
	// freeCh recycles drained batch slices back to the workers.
	freeCh := make(chan []shardResult[R], workers)
	// tokens caps dispatched-but-undelivered visits at window, which
	// bounds the re-sequencing buffer below.
	tokens := make(chan struct{}, window)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One context wrap per worker goroutine, not per visit: the
			// meter and the worker-affine scratch slot ride to the visit
			// layer as context values.
			vctx := withAffinity(withMeter(ctx, meter), &Affinity{})
			var batch []shardResult[R]
			flush := func() {
				if len(batch) > 0 {
					resCh <- batch
					batch = nil
				}
			}
			for {
				var i int
				var ok bool
				if len(batch) == 0 {
					i, ok = <-idxCh
				} else {
					select {
					case i, ok = <-idxCh:
					default:
						// Nothing immediately dispatchable: flush the
						// partial batch before blocking, so the delivery
						// loop (and through it the token window) can make
						// progress on what this worker already finished.
						flush()
						i, ok = <-idxCh
					}
				}
				if !ok {
					break
				}
				if batch == nil {
					select {
					case batch = <-freeCh:
					default:
						batch = make([]shardResult[R], 0, batchCap)
					}
				}
				r := Result[R]{Index: i, Shard: shard}
				if ctx.Err() != nil {
					// Dispatched before cancellation won the race: report
					// the target as unvisited rather than calling visit.
					batch = append(batch, shardResult[R]{res: r, canceled: true})
					if len(batch) == cap(batch) {
						flush()
					}
					continue
				}
				if rec, ok := replay[i]; ok {
					if v, err := ck.cp.Codec.Decode(rec.value); err == nil {
						if val, ok := v.(R); ok {
							r.Value = val
							if rec.errStr != "" {
								r.Err = errors.New(rec.errStr)
							}
							batch = append(batch, shardResult[R]{res: r, replayed: true})
							if len(batch) == cap(batch) {
								flush()
							}
							continue
						}
					}
					// An undecodable record (codec change, bit rot that
					// slipped past the checksum) is not fatal: fall through
					// and re-visit the target fresh.
				}
				// A real visit holds one slot of the (possibly shared)
				// worker budget; cancellation while waiting accounts the
				// target as canceled, exactly like the dispatch-race path
				// above.
				if !cfg.Budget.acquire(ctx) {
					batch = append(batch, shardResult[R]{res: r, canceled: true})
					if len(batch) == cap(batch) {
						flush()
					}
					continue
				}
				r.Value, r.Err = visit(vctx, targets[i])
				cfg.Budget.release()
				sr := shardResult[R]{res: r}
				if ck != nil && !ck.dead.Load() {
					// Serialize on the worker so the single-threaded
					// delivery loop below only appends bytes. Once
					// journaling has failed, skip the (dropped-anyway)
					// encoding work for the rest of the campaign.
					if enc, err := ck.cp.Codec.Encode(r.Value); err == nil {
						sr.enc, sr.encOK = enc, true
					} else {
						ck.fail(fmt.Errorf("encode index %d: %w", i, err))
					}
				}
				batch = append(batch, sr)
				if len(batch) == cap(batch) {
					flush()
				}
			}
			flush()
		}()
	}
	go func() { // dispatcher
		defer close(idxCh)
		for i := lo; i < hi; i++ {
			select {
			case tokens <- struct{}{}:
			case <-ctx.Done():
				return
			}
			select {
			case idxCh <- i:
			case <-ctx.Done():
				// The token for this index is never consumed; harmless,
				// the channel is garbage-collected with the shard.
				return
			}
		}
	}()
	go func() { wg.Wait(); close(resCh) }()

	sh := ShardStats{Shard: shard, Targets: hi - lo}
	progressEvery := int64(cfg.ProgressEvery)
	if progressEvery <= 0 {
		progressEvery = 1000
	}
	next := lo
	// Re-sequencing ring: the token window caps dispatched-but-
	// undelivered indices at `window`, and delivery below frees a token
	// only when `next` advances — so every in-flight index i satisfies
	// next <= i < next+window, and i%window addresses a unique live
	// slot. A fixed ring therefore replaces the old pending map: no
	// per-result map assignment/deletion, no rehashing, same order.
	ring := make([]shardResult[R], window)
	ringSet := make([]bool, window)
	for batch := range resCh {
		for _, r := range batch {
			slot := r.res.Index % window
			ring[slot] = r
			ringSet[slot] = true
		}
		// Recycle the drained batch slice (clearing it first so pooled
		// slices don't pin delivered result values).
		clear(batch)
		select {
		case freeCh <- batch[:0]:
		default:
		}
		for {
			slot := next % window
			if !ringSet[slot] {
				break
			}
			q := ring[slot]
			ring[slot] = shardResult[R]{}
			ringSet[slot] = false
			<-tokens
			next++
			if q.canceled {
				sh.Canceled++
				continue
			}
			sh.Done++
			if q.replayed {
				sh.Replayed++
			}
			if q.res.Err != nil {
				sh.Errors++
			}
			if sink != nil {
				sink(q.res)
			}
			if jw != nil && q.encOK {
				// Journal AFTER the sink observed the result: a record on
				// disk always describes a delivery that really happened.
				if err := jw.append(q.res.Index, errString(q.res.Err), q.enc); err != nil {
					ck.fail(err)
					jw.close()
					jw = nil
				}
			}
			if cfg.OnProgress != nil && (sh.Done+sh.Canceled)%progressEvery == 0 {
				retries, trips, denials := meter.counts()
				cfg.OnProgress(Progress{
					Label: cfg.Label, Shard: shard + 1, Shards: nShards,
					Done:     sofar.Done + sh.Done,
					Total:    total,
					Errors:   sofar.Errors + sh.Errors,
					Replayed: sofar.Replayed + sh.Replayed,
					// The meter counts campaign-globally and shards run
					// sequentially, so its totals are exact here.
					Retries: retries, BreakerTrips: trips, BreakerDenials: denials,
				})
			}
		}
	}
	if jw != nil {
		// Shard complete (or canceled): make its journal durable.
		if err := jw.close(); err != nil {
			ck.fail(err)
		}
	}
	// Dispatch stopped early on cancellation: the never-dispatched tail.
	sh.Canceled += int64(hi-lo) - sh.Done - sh.Canceled
	return sh
}

// errString renders a visit error for the journal ("" for success).
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
