package campaign

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The journal is the campaign engine's durable record of delivered
// results: one append-only file per shard, written in delivery order
// (strictly increasing target index), so a crash at ANY byte leaves a
// prefix-consistent log — every fully framed record describes a result
// that the sink really observed, and at most the torn tail record is
// lost (its target simply re-runs on resume).
//
// File layout:
//
//	file   := magic record*
//	magic  := "cwjl1\n"
//	record := uvarint(len(payload)) u64le(checksum) payload
//	payload:= uvarint(index) uvarint(len(err)) err value
//
// The checksum is FNV-1a over the payload bytes (the same function as
// xrand.Hash64, which never changes between releases); value is the
// caller codec's encoding of the result, opaque to the journal. A
// record whose length prefix overruns the file, whose checksum
// mismatches, or whose payload is malformed invalidates the file FROM
// THAT OFFSET ON: loading stops there, and a writer reopening the file
// truncates the invalid tail before appending — torn writes can never
// poison a journal, they only shrink it.

// journalMagic identifies (and versions) journal files.
const journalMagic = "cwjl1\n"

// maxJournalRecord bounds a single record's payload. It exists purely
// to reject absurd length prefixes when scanning a corrupted file, not
// to limit real results (64 MiB dwarfs any serialized observation).
const maxJournalRecord = 64 << 20

// journalRecord is one replayable result loaded from a journal.
type journalRecord struct {
	// errStr is the visit error's message ("" for success); the value
	// bytes are the codec's encoding of the result value.
	errStr string
	value  []byte
}

// hashPayload is FNV-1a over bytes — bit-identical to xrand.Hash64 on
// the equivalent string, without the string conversion.
func hashPayload(p []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// appendUvarint / appendString build payloads.
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ShardFilename returns the journal file name of shard s inside a
// checkpoint directory ("shard-0003.cwj") — shared by the engine's
// writers and the fleet layer's journal shipping, so a worker-produced
// range journal lands under exactly the name a local run would use.
func ShardFilename(s int) string {
	return fmt.Sprintf("shard-%04d.cwj", s)
}

// shardFile names shard s's journal inside a checkpoint dir. Loading
// never relies on the name — records are self-describing — so resumes
// with a different shard count interoperate with existing files.
func shardFile(dir string, shard int) string {
	return filepath.Join(dir, ShardFilename(shard))
}

// CheckJournal verifies that data is a COMPLETE, well-formed journal of
// the global target range [lo, hi): intact magic, every frame valid
// with no trailing bytes, and record indices exactly lo..hi-1 in
// delivery order. The fleet coordinator runs it on every shipped shard
// journal before merging, so a torn upload, a half-finished range or a
// journal from the wrong range can never poison an assembled campaign.
func CheckJournal(data []byte, lo, hi int) error {
	if len(data) < len(journalMagic) || string(data[:len(journalMagic)]) != journalMagic {
		return fmt.Errorf("campaign: journal missing magic header")
	}
	next, firstBad := lo, -1
	records, valid := scanJournal(data, func(index int, rec journalRecord) {
		if index != next && firstBad < 0 {
			firstBad = index
		}
		next++
	})
	if valid == 0 {
		valid = len(journalMagic) // magic-only file: scanJournal reports offset 0
	}
	if valid != len(data) {
		return fmt.Errorf("campaign: journal invalid after %d of %d bytes (%d valid records)", valid, len(data), records)
	}
	if firstBad >= 0 {
		return fmt.Errorf("campaign: journal out of order: saw index %d where %d..%d expected in sequence", firstBad, lo, hi-1)
	}
	if records != hi-lo {
		return fmt.Errorf("campaign: journal covers %d of %d records for range [%d,%d)", records, hi-lo, lo, hi)
	}
	return nil
}

// journalWriter appends framed records to one shard's journal file,
// buffered, flushing every flushEvery records and syncing on close.
type journalWriter struct {
	f     *os.File
	w     *bufio.Writer
	buf   []byte // frame scratch, reused across appends
	every int
	since int
}

// openJournal opens (or creates) a shard journal for appending. An
// existing file is scanned first and truncated to its last valid
// record, so appends always extend a consistent prefix.
func openJournal(path string, flushEvery int) (*journalWriter, error) {
	if flushEvery <= 0 {
		flushEvery = defaultFlushEvery
	}
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			return nil, err
		}
		w := bufio.NewWriter(f)
		if _, err := w.WriteString(journalMagic); err != nil {
			f.Close()
			return nil, err
		}
		return &journalWriter{f: f, w: w, every: flushEvery}, nil
	case err != nil:
		return nil, err
	}
	_, valid := scanJournal(data, nil)
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, err
	}
	jw := &journalWriter{f: f, w: bufio.NewWriter(f), every: flushEvery}
	if valid == 0 {
		// The file existed but even the magic was torn: rewrite it.
		if _, err := jw.w.WriteString(journalMagic); err != nil {
			f.Close()
			return nil, err
		}
	}
	return jw, nil
}

// append frames and buffers one record.
func (jw *journalWriter) append(index int, errStr string, value []byte) error {
	p := jw.buf[:0]
	p = appendUvarint(p, uint64(index))
	p = appendString(p, errStr)
	p = append(p, value...)
	jw.buf = p // keep the grown scratch for the next record

	var frame [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(frame[:], uint64(len(p)))
	if _, err := jw.w.Write(frame[:n]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(frame[:8], hashPayload(p))
	if _, err := jw.w.Write(frame[:8]); err != nil {
		return err
	}
	if _, err := jw.w.Write(p); err != nil {
		return err
	}
	jw.since++
	if jw.since >= jw.every {
		jw.since = 0
		return jw.w.Flush()
	}
	return nil
}

// close flushes, syncs and closes the journal. Called at shard end, it
// makes the shard's whole record sequence durable.
func (jw *journalWriter) close() error {
	err := jw.w.Flush()
	if serr := jw.f.Sync(); err == nil {
		err = serr
	}
	if cerr := jw.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// scanJournal parses one journal's bytes, calling emit for every valid
// record, and returns the record count and the byte offset of the end
// of the last valid record (the truncation point for writers). Parsing
// stops at the first invalid frame — a torn length prefix, an
// overrunning length, a checksum mismatch or a malformed payload — so
// only a prefix-consistent slice of the file is ever trusted.
func scanJournal(data []byte, emit func(index int, rec journalRecord)) (records, valid int) {
	if len(data) < len(journalMagic) || string(data[:len(journalMagic)]) != journalMagic {
		return 0, 0
	}
	off := len(journalMagic)
	for off < len(data) {
		plen, n := binary.Uvarint(data[off:])
		if n <= 0 || plen > maxJournalRecord {
			return records, off
		}
		rest := data[off+n:]
		if uint64(len(rest)) < 8+plen {
			return records, off
		}
		sum := binary.LittleEndian.Uint64(rest[:8])
		payload := rest[8 : 8+plen]
		if hashPayload(payload) != sum {
			return records, off
		}
		index, errStr, value, ok := parsePayload(payload)
		if !ok {
			return records, off
		}
		if emit != nil {
			emit(index, journalRecord{errStr: errStr, value: value})
		}
		records++
		off += n + 8 + int(plen)
		valid = off
	}
	return records, valid
}

// parsePayload splits a record payload into (index, errStr, value).
func parsePayload(p []byte) (index int, errStr string, value []byte, ok bool) {
	idx, n := binary.Uvarint(p)
	if n <= 0 || idx > 1<<62 {
		return 0, "", nil, false
	}
	p = p[n:]
	elen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < elen {
		return 0, "", nil, false
	}
	errStr = string(p[n : n+int(elen)])
	value = p[n+int(elen):]
	return int(idx), errStr, value, true
}

// loadJournals reads every journal file in dir and returns the union
// of their valid records keyed by target index. Records are
// self-describing, so the map is correct even when the files were
// written under a different shard layout than the resuming run's.
func loadJournals(dir string) (map[int]journalRecord, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return map[int]journalRecord{}, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".cwj") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	replay := make(map[int]journalRecord)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		scanJournal(data, func(index int, rec journalRecord) {
			replay[index] = rec
		})
	}
	return replay, nil
}

// removeJournals deletes every journal file (and manifest) in dir —
// the fresh-start path of a checkpointed Run.
func removeJournals(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".cwj") || e.Name() == manifestName {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}
